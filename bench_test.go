// Repository-level benchmarks: one testing.B entry per figure of the
// paper's evaluation (§IV) plus the DESIGN.md ablations. Each benchmark
// runs a reduced sweep suitable for `go test -bench`; cmd/probbench runs the
// full experiments and prints the paper-style tables.
package main_test

import (
	"fmt"
	"math/rand"
	"testing"

	"probdb/internal/bench"
	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
	"probdb/internal/workload"
)

// BenchmarkFig4AccuracyVsSampleSize regenerates Fig. 4: range-query error
// of histogram vs discrete approximations across sample sizes.
func BenchmarkFig4AccuracyVsSampleSize(b *testing.B) {
	cfg := bench.Fig4Config{Readings: 100, Queries: 100, SampleSizes: []int{5, 10, 15, 20, 25}, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4(cfg)
		if i == 0 {
			r := rows[0]
			b.ReportMetric(r.HistMeanErr, "histErr@5")
			b.ReportMetric(r.DiscMeanErr, "discErr@5")
		}
	}
}

// BenchmarkFig5DiscretizedPDFs regenerates Fig. 5 at one sweep point per
// representation: cold range-query scans over heap files, at parallelism 1
// (the original sequential loop) and 0 (one worker per CPU).
func BenchmarkFig5DiscretizedPDFs(b *testing.B) {
	for _, repr := range []bench.Repr{bench.ReprDiscrete25, bench.ReprHist5, bench.ReprSymbolic} {
		for _, par := range []int{1, 0} {
			b.Run(fmt.Sprintf("%s/par%d", repr, par), func(b *testing.B) {
				cfg := bench.Fig5Config{
					Sizes:       []int{20_000},
					Reprs:       []bench.Repr{repr},
					Queries:     1,
					PoolPages:   16,
					Threshold:   0.5,
					Seed:        2,
					Dir:         b.TempDir(),
					Parallelism: par,
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rows, err := bench.Fig5(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(rows[0].PageReads), "pageReads")
						b.ReportMetric(rows[0].BytesPerTuple, "B/tuple")
					}
				}
			})
		}
	}
}

// BenchmarkFigJoinParallel is the join benchmark of the parallelism work:
// a hash equi-join whose residual atom compares the two sides' uncertain
// attributes (forcing per-pair floor/merge work), probed sequentially and
// morsel-parallel. Identical result cardinality is asserted every run.
func BenchmarkFigJoinParallel(b *testing.B) {
	build := func(name string, reg *core.Registry, r *rand.Rand, n int) *core.Table {
		schema := core.MustSchema(
			core.Column{Name: "k", Type: core.IntType},
			core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
		)
		t := core.MustTable(name, schema, nil, reg)
		for i := 0; i < n; i++ {
			if err := t.Insert(core.Row{
				Values: map[string]core.Value{"k": core.Int(int64(r.Intn(n / 2)))},
				PDFs: []core.PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussian(
					r.Float64()*50, 1+r.Float64()*4)}},
			}); err != nil {
				b.Fatal(err)
			}
		}
		return t
	}
	const n = 600
	for _, par := range []int{1, 0} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.ReportAllocs()
			want := -1
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r := rand.New(rand.NewSource(9))
				reg := core.NewRegistry()
				l, err := build("L", reg, r, n).Prefixed("l.")
				if err != nil {
					b.Fatal(err)
				}
				rt, err := build("R", reg, r, n).Prefixed("r.")
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := l.WithParallelism(par).EquiJoin(rt, "l.k", "r.k",
					core.Cmp(core.Col("l.x"), region.LT, core.Col("r.x")))
				if err != nil {
					b.Fatal(err)
				}
				if want == -1 {
					want = res.Len()
					b.ReportMetric(float64(want), "pairs")
				} else if res.Len() != want {
					b.Fatalf("cardinality changed: %d vs %d", res.Len(), want)
				}
			}
		})
	}
}

// BenchmarkFig6HistoryOverhead regenerates Fig. 6 at one sweep point: the
// join+project pipeline with and without history maintenance.
func BenchmarkFig6HistoryOverhead(b *testing.B) {
	cfg := bench.Fig6Config{Sizes: []int{1000}, HistBins: 8, Discrete: true, Seed: 3, Repeats: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].JoinOverheadPct, "joinOverhead%")
		}
	}
}

// BenchmarkAblationSymbolicFloors measures symbolic floors against eager
// histogram conversion (DESIGN.md ablation 1).
func BenchmarkAblationSymbolicFloors(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := bench.AblationSymbolicFloors(500, 4)
		if i == 0 {
			b.ReportMetric(float64(r.CollapsedTime)/float64(r.SymbolicTime), "collapsed/symbolic")
		}
	}
}

// BenchmarkAblationLazyEagerMerge measures lazy vs eager dependency-set
// merging (DESIGN.md ablation 2).
func BenchmarkAblationLazyEagerMerge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := bench.AblationLazyEagerMerge(300, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.EagerTime)/float64(r.LazyTime), "eager/lazy")
		}
	}
}

// BenchmarkAblationHistoryReplay measures floor composition against the
// replay alternative the paper rejects (DESIGN.md ablation 3).
func BenchmarkAblationHistoryReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := bench.AblationHistoryReplay(50, []int{8}, 6)
		if i == 0 {
			b.ReportMetric(float64(rows[0].ReplayTime)/float64(rows[0].ComposedTime), "replay/composed")
		}
	}
}

// BenchmarkAblationBufferPool measures buffer-pool sensitivity of the
// Fig. 5 scan (DESIGN.md ablation 4).
func BenchmarkAblationBufferPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationBufferPool(20_000, []int{16, 1 << 20}, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQueryPerRepresentation is the microbenchmark under Fig. 4/5:
// one range-probability evaluation per representation.
func BenchmarkRangeQueryPerRepresentation(b *testing.B) {
	gen := workload.NewGen(8)
	rd := gen.Reading(0)
	q := gen.RangeQuery()
	reprs := map[string]dist.Dist{
		"symbolic":   rd.Value,
		"hist5":      dist.ToHistogram(rd.Value, 5),
		"discrete25": dist.Discretize(rd.Value, 25),
	}
	for name, d := range reprs {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = dist.MassInterval(d, q.Lo, q.Hi)
			}
		})
	}
}
