// Command probbench regenerates the paper's evaluation (§IV): one
// experiment per figure, plus the ablation studies of DESIGN.md and the
// operator-parallelism speedup sweep. Output is the textual table behind
// each plot; -json additionally writes every executed experiment's rows as
// a machine-readable document.
//
// Usage:
//
//	probbench [-exp fig4|fig5|fig6|ablations|parallel|planner|stream|txn|columnar|cluster|all] [-full] [-seed N] [-json out.json]
//
// -full runs Fig. 5 at the paper's 0.5M-3M tuple scale (gigabytes of page
// files and several minutes); the default sweep is scaled down by 10x while
// preserving the size ratios.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"probdb/internal/bench"
)

// jsonDoc is the machine-readable output of one probbench invocation: the
// environment the numbers were measured in, then one entry per executed
// experiment holding the same rows the textual tables render.
type jsonDoc struct {
	Generated   string         `json:"generated"`
	GoVersion   string         `json:"go_version"`
	NumCPU      int            `json:"num_cpu"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Seed        int64          `json:"seed,omitempty"`
	Experiments map[string]any `json:"experiments"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig4, fig5, fig6, ablations, parallel, planner, stream, txn, columnar, cluster, all")
	full := flag.Bool("full", false, "run Fig. 5 at the paper's 0.5M-3M tuple scale")
	seed := flag.Int64("seed", 0, "override workload seed (0 = per-experiment defaults)")
	fig6hist := flag.Bool("fig6-hist", false, "run Fig. 6 over histogram pdfs instead of discrete ones")
	jsonOut := flag.String("json", "", "also write the executed experiments' rows as JSON to this file")
	flag.Parse()

	doc := &jsonDoc{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Seed:        *seed,
		Experiments: map[string]any{},
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ok := false

	if run("fig4") {
		ok = true
		cfg := bench.DefaultFig4
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows := bench.Fig4(cfg)
		doc.Experiments["fig4"] = rows
		fmt.Print(bench.FormatFig4(rows))
		fmt.Println()
	}
	if run("fig5") {
		ok = true
		cfg := bench.DefaultFig5
		if *full {
			cfg.Sizes = []int{500_000, 1_000_000, 1_500_000, 2_000_000, 2_500_000, 3_000_000}
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Fig5(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Experiments["fig5"] = rows
		fmt.Print(bench.FormatFig5(rows))
		fmt.Println()
	}
	if run("fig6") {
		ok = true
		cfg := bench.DefaultFig6
		if *fig6hist {
			cfg.Discrete = false
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Fig6(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Experiments["fig6"] = rows
		fmt.Print(bench.FormatFig6(rows))
		fmt.Println()
	}
	if run("ablations") {
		ok = true
		fl := bench.AblationSymbolicFloors(5000, 20080404)
		mg, err := bench.AblationLazyEagerMerge(5000, 20080405)
		if err != nil {
			fatal(err)
		}
		rp := bench.AblationHistoryReplay(500, []int{1, 2, 4, 8, 16}, 20080406)
		bp, err := bench.AblationBufferPool(100_000, []int{64, 256, 1024, 4096, 1 << 20}, 20080407)
		if err != nil {
			fatal(err)
		}
		depth := bench.AblationEquiDepth(300, 300, []int{5, 10, 15, 20, 25}, 20080409)
		doc.Experiments["ablations"] = map[string]any{
			"symbolic_floors": fl,
			"lazy_eager":      mg,
			"history_replay":  rp,
			"buffer_pool":     bp,
			"equi_depth":      depth,
		}
		fmt.Print(bench.FormatAblations(fl, mg, rp, bp))
		fmt.Print(bench.FormatAblationDepth(depth))
	}
	if run("parallel") {
		ok = true
		cfg := bench.DefaultParallel
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Parallel(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Experiments["parallel"] = rows
		fmt.Print(bench.FormatParallel(rows))
		fmt.Println()
	}
	if run("planner") {
		ok = true
		cfg := bench.DefaultPlanner
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Planner(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Experiments["planner"] = rows
		fmt.Print(bench.FormatPlanner(rows))
		fmt.Println()
	}
	if run("stream") {
		ok = true
		cfg := bench.DefaultStream
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Stream(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Experiments["stream"] = rows
		fmt.Print(bench.FormatStream(rows))
		fmt.Println()
	}
	if run("txn") {
		ok = true
		cfg := bench.DefaultTxn
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Txn(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Experiments["txn"] = rows
		fmt.Print(bench.FormatTxn(rows))
		fmt.Println()
	}
	if run("columnar") {
		ok = true
		cfg := bench.DefaultColumnar
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Columnar(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Experiments["columnar"] = rows
		fmt.Print(bench.FormatColumnar(rows))
		fmt.Println()
	}
	if run("cluster") {
		ok = true
		cfg := bench.DefaultCluster
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Cluster(cfg)
		if err != nil {
			fatal(err)
		}
		doc.Experiments["cluster"] = rows
		fmt.Print(bench.FormatCluster(rows))
		fmt.Println()
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "probbench: wrote %s\n", *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probbench:", err)
	os.Exit(1)
}
