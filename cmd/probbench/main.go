// Command probbench regenerates the paper's evaluation (§IV): one
// experiment per figure, plus the ablation studies of DESIGN.md. Output is
// the textual table behind each plot.
//
// Usage:
//
//	probbench [-exp fig4|fig5|fig6|ablations|all] [-full] [-seed N]
//
// -full runs Fig. 5 at the paper's 0.5M–3M tuple scale (gigabytes of page
// files and several minutes); the default sweep is scaled down by 10x while
// preserving the size ratios.
package main

import (
	"flag"
	"fmt"
	"os"

	"probdb/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig4, fig5, fig6, ablations, all")
	full := flag.Bool("full", false, "run Fig. 5 at the paper's 0.5M-3M tuple scale")
	seed := flag.Int64("seed", 0, "override workload seed (0 = per-experiment defaults)")
	fig6hist := flag.Bool("fig6-hist", false, "run Fig. 6 over histogram pdfs instead of discrete ones")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ok := false

	if run("fig4") {
		ok = true
		cfg := bench.DefaultFig4
		if *seed != 0 {
			cfg.Seed = *seed
		}
		fmt.Print(bench.FormatFig4(bench.Fig4(cfg)))
		fmt.Println()
	}
	if run("fig5") {
		ok = true
		cfg := bench.DefaultFig5
		if *full {
			cfg.Sizes = []int{500_000, 1_000_000, 1_500_000, 2_000_000, 2_500_000, 3_000_000}
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Fig5(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatFig5(rows))
		fmt.Println()
	}
	if run("fig6") {
		ok = true
		cfg := bench.DefaultFig6
		if *fig6hist {
			cfg.Discrete = false
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		rows, err := bench.Fig6(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatFig6(rows))
		fmt.Println()
	}
	if run("ablations") {
		ok = true
		fl := bench.AblationSymbolicFloors(5000, 20080404)
		mg, err := bench.AblationLazyEagerMerge(5000, 20080405)
		if err != nil {
			fatal(err)
		}
		rp := bench.AblationHistoryReplay(500, []int{1, 2, 4, 8, 16}, 20080406)
		bp, err := bench.AblationBufferPool(100_000, []int{64, 256, 1024, 4096, 1 << 20}, 20080407)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatAblations(fl, mg, rp, bp))
		fmt.Print(bench.FormatAblationDepth(
			bench.AblationEquiDepth(300, 300, []int{5, 10, 15, 20, 25}, 20080409)))
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probbench:", err)
	os.Exit(1)
}
