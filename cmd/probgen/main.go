// Command probgen generates the paper's synthetic workloads (§IV) as
// stand-alone artifacts: a Readings(rid, value) heap file in a chosen pdf
// representation, and a text file of range queries. The files feed external
// tooling or repeated probbench runs without regeneration.
//
// Usage:
//
//	probgen -n 100000 -repr symbolic|hist5|discrete25 -out readings.pages \
//	        -queries 1000 -qout queries.txt [-seed N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"probdb/internal/bench"
	"probdb/internal/storage"
	"probdb/internal/workload"
)

func main() {
	n := flag.Int("n", 100_000, "number of readings")
	repr := flag.String("repr", "symbolic", "pdf representation: symbolic, hist5, discrete25")
	out := flag.String("out", "readings.pages", "output heap file")
	nq := flag.Int("queries", 1000, "number of range queries")
	qout := flag.String("qout", "queries.txt", "output query file (lo hi per line)")
	seed := flag.Int64("seed", 20080408, "workload seed")
	skew := flag.Float64("skew", 0, "power-law skew of the value means (0 = paper-uniform); "+
		"skewed datasets give ANALYZE histograms a non-flat profile to estimate from")
	flag.Parse()

	rp := bench.Repr(*repr)
	switch rp {
	case bench.ReprSymbolic, bench.ReprHist5, bench.ReprDiscrete25:
	default:
		fatal(fmt.Errorf("unknown representation %q", *repr))
	}

	if err := os.Remove(*out); err != nil && !os.IsNotExist(err) {
		fatal(err)
	}
	fp, err := storage.OpenFile(*out)
	if err != nil {
		fatal(err)
	}
	pool := storage.NewPool(fp, 64)
	heap := storage.NewHeap(pool)
	gen := workload.NewGen(*seed)
	var bytes int64
	for i := 0; i < *n; i++ {
		var rd workload.Reading
		if *skew > 0 {
			rd = gen.SkewedReading(int64(i), *skew)
		} else {
			rd = gen.Reading(int64(i))
		}
		rec := workload.EncodeReading(workload.Reading{RID: rd.RID, Value: bench.ConvertRepr(rp, rd.Value)})
		bytes += int64(len(rec))
		if _, err := heap.Append(rec); err != nil {
			fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		fatal(err)
	}
	if err := fp.Sync(); err != nil {
		fatal(err)
	}
	if err := fp.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d readings (%s, %.1f B/tuple, %d pages) to %s\n",
		*n, rp, float64(bytes)/float64(*n), heap.NumPages(), *out)

	qf, err := os.Create(*qout)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(qf)
	for _, q := range gen.RangeQueries(*nq) {
		fmt.Fprintf(w, "%g %g\n", q.Lo, q.Hi)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := qf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d range queries to %s\n", *nq, *qout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probgen:", err)
	os.Exit(1)
}
