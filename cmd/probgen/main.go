// Command probgen generates the paper's synthetic workloads (§IV) as
// stand-alone artifacts: a Readings(rid, value) heap file in a chosen pdf
// representation, and a text file of range queries. The files feed external
// tooling or repeated probbench runs without regeneration.
//
// With -connect it instead becomes a continuous-ingest load generator: N
// writer connections stream INSERTs of tuple-level-uncertain readings
// (partial DISCRETE pdfs, whose mass deficit is the probability the tuple
// does not exist) at a probserve server for a fixed duration — the write
// traffic the group-commit WAL is built for.
//
// Usage:
//
//	probgen -n 100000 -repr symbolic|hist5|discrete25 -out readings.pages \
//	        -queries 1000 -qout queries.txt [-seed N]
//	probgen -connect localhost:7432 -writers 8 -duration 10s [-txn 4]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"probdb/internal/bench"
	"probdb/internal/govern"
	"probdb/internal/storage"
	"probdb/internal/wire"
	"probdb/internal/workload"
)

func main() {
	n := flag.Int("n", 100_000, "number of readings")
	repr := flag.String("repr", "symbolic", "pdf representation: symbolic, hist5, discrete25")
	out := flag.String("out", "readings.pages", "output heap file")
	nq := flag.Int("queries", 1000, "number of range queries")
	qout := flag.String("qout", "queries.txt", "output query file (lo hi per line)")
	seed := flag.Int64("seed", 20080408, "workload seed")
	skew := flag.Float64("skew", 0, "power-law skew of the value means (0 = paper-uniform); "+
		"skewed datasets give ANALYZE histograms a non-flat profile to estimate from")
	connect := flag.String("connect", "", "host:port of a probserve server: stream INSERTs instead of writing files")
	writers := flag.Int("writers", 4, "with -connect, concurrent writer connections")
	duration := flag.Duration("duration", 10*time.Second, "with -connect, how long to sustain the ingest")
	txnSize := flag.Int("txn", 0, "with -connect, INSERTs per transaction (0 = autocommit)")
	table := flag.String("table", "ingest", "with -connect, target table (created if absent)")
	flag.Parse()

	if *connect != "" {
		if err := runIngest(*connect, *table, *writers, *txnSize, *duration, *seed); err != nil {
			fatal(err)
		}
		return
	}

	rp := bench.Repr(*repr)
	switch rp {
	case bench.ReprSymbolic, bench.ReprHist5, bench.ReprDiscrete25:
	default:
		fatal(fmt.Errorf("unknown representation %q", *repr))
	}

	if err := os.Remove(*out); err != nil && !os.IsNotExist(err) {
		fatal(err)
	}
	fp, err := storage.OpenFile(*out)
	if err != nil {
		fatal(err)
	}
	pool := storage.NewPool(fp, 64)
	heap := storage.NewHeap(pool)
	gen := workload.NewGen(*seed)
	var bytes int64
	for i := 0; i < *n; i++ {
		var rd workload.Reading
		if *skew > 0 {
			rd = gen.SkewedReading(int64(i), *skew)
		} else {
			rd = gen.Reading(int64(i))
		}
		rec := workload.EncodeReading(workload.Reading{RID: rd.RID, Value: bench.ConvertRepr(rp, rd.Value)})
		bytes += int64(len(rec))
		if _, err := heap.Append(rec); err != nil {
			fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		fatal(err)
	}
	if err := fp.Sync(); err != nil {
		fatal(err)
	}
	if err := fp.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d readings (%s, %.1f B/tuple, %d pages) to %s\n",
		*n, rp, float64(bytes)/float64(*n), heap.NumPages(), *out)

	qf, err := os.Create(*qout)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(qf)
	for _, q := range gen.RangeQueries(*nq) {
		fmt.Fprintf(w, "%g %g\n", q.Lo, q.Hi)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := qf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d range queries to %s\n", *nq, *qout)
}

// runIngest drives the continuous-ingest mode: each writer owns one
// connection and streams INSERTs of tuple-level-uncertain readings until the
// deadline, optionally grouped into transactions. Conflicted transactions
// (first-writer-wins losers) are retried and counted, not fatal.
func runIngest(addr, table string, writers, txnSize int, d time.Duration, seed int64) error {
	setup, err := wire.DialRetry(addr, wire.RetryConfig{Attempts: 5})
	if err != nil {
		return err
	}
	if _, err := setup.Query(fmt.Sprintf("CREATE TABLE %s (rid INT, value FLOAT UNCERTAIN)", table)); err != nil {
		if !strings.Contains(err.Error(), "exists") {
			setup.Close() //nolint:errcheck
			return err
		}
	}
	setup.Close() //nolint:errcheck

	type tally struct {
		rows, commits, fsyncs, groupSum, conflicts uint64
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total tally
		werr  error
	)
	deadline := time.Now().Add(d)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := wire.DialRetry(addr, wire.RetryConfig{Attempts: 5})
			if err != nil {
				mu.Lock()
				if werr == nil {
					werr = err
				}
				mu.Unlock()
				return
			}
			defer c.Close() //nolint:errcheck
			r := rand.New(rand.NewSource(seed + int64(w)))
			var local tally
			rid := int64(w) << 32
			insert := func() (*wire.Result, error) {
				rid++
				// A partial pdf: the two points' mass sums below 1, the
				// deficit being the probability the reading never happened
				// (paper §2: tuple-level uncertainty).
				v := 10 + r.Float64()*40
				exist := 0.6 + r.Float64()*0.35
				p1 := exist * (0.3 + 0.4*r.Float64())
				sql := fmt.Sprintf(
					"INSERT INTO %s (rid, value) VALUES (%d, DISCRETE(%.3f:%.3f, %.3f:%.3f))",
					table, rid, v, p1, v+1, exist-p1)
				if txnSize <= 0 {
					// Autocommit: a typed overload/budget refusal was never
					// executed, so resubmitting with backoff is safe.
					return c.QueryRetry(sql, 5)
				}
				return c.Query(sql)
			}
			commit := func() error {
				if txnSize <= 0 {
					res, err := insert()
					if err != nil {
						return err
					}
					local.rows++
					local.commits++
					local.fsyncs += res.Stats.WALFsyncs
					local.groupSum += res.Stats.WALGroupSize
					return nil
				}
				// A lost first-writer-wins race aborts the whole
				// transaction; re-run it from BEGIN with capped exponential
				// backoff before giving up on the batch.
				const maxConflictRetries = 5
				for attempt := 0; ; attempt++ {
					if _, err := c.Query("BEGIN"); err != nil {
						return err
					}
					for i := 0; i < txnSize; i++ {
						if _, err := insert(); err != nil {
							c.Query("ROLLBACK") //nolint:errcheck
							return err
						}
					}
					res, err := c.Query("COMMIT")
					if err != nil {
						if strings.Contains(err.Error(), "conflict") {
							local.conflicts++
							if attempt < maxConflictRetries {
								time.Sleep(govern.Backoff(attempt, 5*time.Millisecond, 250*time.Millisecond))
								continue
							}
							return nil // capped out; move on to fresh rows
						}
						return err
					}
					local.rows += uint64(txnSize)
					local.commits++
					local.fsyncs += res.Stats.WALFsyncs
					local.groupSum += res.Stats.WALGroupSize
					return nil
				}
			}
			for time.Now().Before(deadline) {
				if err := commit(); err != nil {
					mu.Lock()
					if werr == nil {
						werr = fmt.Errorf("writer %d: %w", w, err)
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			total.rows += local.rows
			total.commits += local.commits
			total.fsyncs += local.fsyncs
			total.groupSum += local.groupSum
			total.conflicts += local.conflicts
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if werr != nil {
		return werr
	}
	if total.commits == 0 {
		return errors.New("ingest made no progress")
	}
	secs := d.Seconds()
	fmt.Printf("ingested %d rows in %d commits over %v with %d writers (%.0f rows/s)\n",
		total.rows, total.commits, d, writers, float64(total.rows)/secs)
	fmt.Printf("group commit: %.3f fsyncs/commit, mean group %.1f records; %d txn conflicts\n",
		float64(total.fsyncs)/float64(total.commits),
		float64(total.groupSum)/float64(total.commits), total.conflicts)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probgen:", err)
	os.Exit(1)
}
