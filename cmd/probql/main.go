// Command probql is an interactive shell (and script runner) for the
// probabilistic database: the front door the paper's PostgreSQL+Orion stack
// provided via psql. It runs either against an embedded in-process engine or,
// with -connect, as a network client of a probserve server.
//
// Usage:
//
//	probql                        # interactive, embedded engine
//	probql -f demo.sql            # run a script, embedded engine
//	probql -connect localhost:7432            # interactive, remote server
//	probql -connect localhost:7432 -f demo.sql
//
// Example session:
//
//	probql> CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN);
//	probql> INSERT INTO readings (rid, value) VALUES (1, GAUSSIAN(20, 5));
//	probql> SELECT rid FROM readings WHERE value < 25 AND PROB(value) > 0.5;
//
// In remote mode tabular results stream: rows print as the server's
// RowBatch frames arrive, so the first rows of a large scan appear before
// the scan finishes. Each result is followed by the server's per-query
// stats (rows, latency, buffer-pool page reads/hits/writes).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"probdb/internal/govern"
	"probdb/internal/query"
	"probdb/internal/wire"
)

// executor abstracts over the embedded engine and a remote connection so the
// REPL loop is shared.
type executor interface {
	execScript(sql string) error // prints results; returns first error
	openTxn() bool               // a BEGIN is pending (prompt indicator)
	close()
}

func main() {
	script := flag.String("f", "", "execute the statements in this file and exit")
	connect := flag.String("connect", "", "host:port of a probserve server (default: embedded engine)")
	showStats := flag.Bool("stats", true, "in remote mode, print per-query I/O stats")
	timeout := flag.Duration("timeout", wire.DefaultCallTimeout,
		"in remote mode, per-query deadline (0 disables)")
	retries := flag.Int("retries", 5,
		"in remote mode, connection attempts with backoff (a restarting server may still be replaying its WAL)")
	flag.Parse()

	var ex executor
	if *connect != "" {
		c, err := wire.DialRetry(*connect, wire.RetryConfig{Attempts: *retries})
		if err != nil {
			fatal(err)
		}
		c.SetCallTimeout(*timeout)
		if err := c.Ping(); err != nil {
			fatal(fmt.Errorf("ping %s: %w", *connect, err))
		}
		ex = &remoteExec{c: c, stats: *showStats}
	} else {
		ex = &localExec{db: query.Open()}
	}
	defer ex.close()

	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		if err := ex.execScript(string(src)); err != nil {
			fatal(err)
		}
		return
	}

	if *connect != "" {
		fmt.Printf("probdb shell — connected to %s; statements end with ';', \\q quits\n", *connect)
	} else {
		fmt.Println("probdb shell — statements end with ';', \\q quits")
	}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "probql> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		if buf.Len() == 0 {
			trimmed := strings.TrimSpace(line)
			if trimmed == `\q` || trimmed == "quit" || trimmed == "exit" {
				return
			}
			if trimmed == "" {
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "   ...> "
			continue
		}
		if err := ex.execScript(buf.String()); err != nil {
			fmt.Println("error:", err)
		}
		buf.Reset()
		if ex.openTxn() {
			prompt = "probql*> " // inside a transaction: COMMIT or ROLLBACK ends it
		} else {
			prompt = "probql> "
		}
	}
}

type localExec struct{ db *query.DB }

func (l *localExec) execScript(sql string) error {
	results, err := l.db.ExecScript(sql)
	for _, r := range results {
		fmt.Println(r)
	}
	return err
}

func (l *localExec) openTxn() bool { return false } // embedded engine is autocommit-only

func (l *localExec) close() {}

type remoteExec struct {
	c     *wire.Client
	stats bool
	inTxn bool // last result's transaction flag, for the prompt indicator
}

// queryStreamRetry submits one statement, resubmitting after retryable
// server refusals — overload, budget pressure, queue deadlines, declared
// read-only: all guaranteed never executed — honoring the server's
// RetryAfter hint (jittered) when one was sent. Inside an explicit
// transaction it never retries: a refused statement aborts the txn's
// intent, and replaying one statement is not replaying the transaction.
func (r *remoteExec) queryStreamRetry(stmt string) (*wire.Stream, error) {
	const attempts = 5
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			se, _ := lastErr.(*wire.ServerError)
			if se != nil && se.RetryAfter > 0 {
				time.Sleep(govern.Jitter(se.RetryAfter))
			} else {
				time.Sleep(govern.Backoff(i-1, 50*time.Millisecond, 2*time.Second))
			}
		}
		st, err := r.c.QueryStream(stmt)
		if err == nil {
			return st, nil
		}
		var se *wire.ServerError
		if r.inTxn || !errors.As(err, &se) || !se.Retryable() {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "probql: server refused (%v); backing off and retrying\n", err)
		lastErr = err
	}
	return nil, lastErr
}

func (r *remoteExec) execScript(sql string) error {
	for _, stmt := range splitStatements(sql) {
		st, err := r.queryStreamRetry(stmt)
		if err != nil {
			return err
		}
		var res *wire.Result
		if cols := st.Columns(); cols != nil {
			// Tabular result: print the header now and each batch as it
			// arrives, so a long scan shows its first rows immediately.
			fmt.Println(wire.HeaderLine(st.Name(), cols))
			for {
				rows, err := st.NextBatch()
				if err != nil {
					return err
				}
				if rows == nil {
					break
				}
				for _, row := range rows {
					fmt.Println(wire.RenderRow(cols, row))
				}
			}
			if res, err = st.Result(); err != nil {
				return err
			}
			fmt.Println()
		} else {
			// Command result (INSERT, CREATE, ...): a message, no rows.
			if res, err = st.Drain(); err != nil {
				return err
			}
			fmt.Println(res)
		}
		r.inTxn = res.InTxn
		if r.stats {
			s := res.Stats
			fmt.Printf("-- %d rows, %dµs, %d page reads, %d hits, %d writes, %d WAL bytes, mass cache %d/%d\n",
				s.Rows, s.LatencyMicros, s.PageReads, s.PageHits, s.PageWrites, s.WALBytes,
				s.MassCacheHits, s.MassCacheHits+s.MassCacheMiss)
			fmt.Printf("-- planner: %d index probes, %d pruned, %d fallbacks\n",
				s.IndexProbes, s.IndexPruned, s.PlannerFallbacks)
			if s.VecTuples > 0 || s.ScalarTuples > 0 {
				fmt.Printf("-- kernels: %d tuples vectorized, %d scalar\n",
					s.VecTuples, s.ScalarTuples)
			}
			if s.WALGroupSize > 0 || s.TxnConflicts > 0 {
				fmt.Printf("-- txn: %d fsyncs, group of %d records, %d conflicts\n",
					s.WALFsyncs, s.WALGroupSize, s.TxnConflicts)
			}
			if s.QueueWaitMicros > 0 || s.Rejections > 0 || s.ShedBytes > 0 {
				fmt.Printf("-- govern: %dµs queue wait; server totals: %d rejections, %d bytes shed\n",
					s.QueueWaitMicros, s.Rejections, s.ShedBytes)
			}
		}
	}
	return nil
}

func (r *remoteExec) openTxn() bool { return r.inTxn }

func (r *remoteExec) close() { r.c.Close() } //nolint:errcheck

// splitStatements cuts a script at top-level semicolons, respecting
// single-quoted strings (” escapes a quote, as in the SQL lexer).
func splitStatements(sql string) []string {
	var out []string
	var b strings.Builder
	inStr := false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		switch {
		case c == '\'':
			inStr = !inStr
			b.WriteByte(c)
		case c == ';' && !inStr:
			if s := strings.TrimSpace(b.String()); s != "" {
				out = append(out, s)
			}
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(b.String()); s != "" {
		out = append(out, s)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probql:", err)
	os.Exit(1)
}
