// Command probql is an interactive shell (and script runner) for the
// probabilistic database: the front door the paper's PostgreSQL+Orion stack
// provided via psql.
//
// Usage:
//
//	probql              # interactive; statements end with ';'
//	probql -f demo.sql  # run a script
//
// Example session:
//
//	probql> CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN);
//	probql> INSERT INTO readings (rid, value) VALUES (1, GAUSSIAN(20, 5));
//	probql> SELECT rid FROM readings WHERE value < 25 AND PROB(value) > 0.5;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"probdb/internal/query"
)

func main() {
	script := flag.String("f", "", "execute the statements in this file and exit")
	flag.Parse()

	db := query.Open()
	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		results, err := db.ExecScript(string(src))
		for _, r := range results {
			fmt.Println(r)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println("probdb shell — statements end with ';', \\q quits")
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "probql> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		if buf.Len() == 0 {
			trimmed := strings.TrimSpace(line)
			if trimmed == `\q` || trimmed == "quit" || trimmed == "exit" {
				return
			}
			if trimmed == "" {
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "   ...> "
			continue
		}
		results, err := db.ExecScript(buf.String())
		for _, r := range results {
			fmt.Println(r)
		}
		if err != nil {
			fmt.Println("error:", err)
		}
		buf.Reset()
		prompt = "probql> "
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "probql:", err)
	os.Exit(1)
}
