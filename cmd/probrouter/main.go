// Command probrouter fronts a sharded probserve cluster: it speaks the same
// wire protocol as probserve, hash-partitions every table across the named
// shards by its first column, and merges scatter-gathered SELECT streams
// back into single-node order. Reads degrade to a shard's replica when its
// leader is down; writes to a down shard are refused with a retryable
// error. The partition map persists in a checksummed manifest under
// -data-dir (see docs/CLUSTER.md).
//
// Usage:
//
//	probrouter -addr :7433 -data-dir ./router \
//	    -shard 127.0.0.1:7441 -shard 127.0.0.1:7442,replica=127.0.0.1:7452
//
// Each -shard flag names one shard's leader, optionally followed by
// ",replica=host:port". Shard order is the partition order and must be
// identical on every restart.
//
// Connect with:
//
//	probql -connect localhost:7433
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probdb/internal/cluster"
)

// shardFlags collects repeated -shard flags in order.
type shardFlags []cluster.ShardSpec

func (s *shardFlags) String() string {
	var parts []string
	for _, sp := range *s {
		parts = append(parts, sp.Addr)
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	addr, rest, _ := strings.Cut(v, ",")
	spec := cluster.ShardSpec{Addr: strings.TrimSpace(addr)}
	if spec.Addr == "" {
		return fmt.Errorf("empty shard address")
	}
	if rest != "" {
		rep, ok := strings.CutPrefix(strings.TrimSpace(rest), "replica=")
		if !ok || rep == "" {
			return fmt.Errorf("bad shard option %q (want replica=host:port)", rest)
		}
		spec.Replica = rep
	}
	*s = append(*s, spec)
	return nil
}

func main() {
	var shards shardFlags
	addr := flag.String("addr", ":7433", "TCP listen address")
	dataDir := flag.String("data-dir", "", "directory for the cluster's partition manifest (required)")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent client connections")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "per-shard dial budget")
	callTimeout := flag.Duration("call-timeout", 30*time.Second, "per-shard round-trip / stream-frame budget")
	retryAfter := flag.Duration("retry-after", 0, "backoff hint sent with shard-unavailable refusals (default 250ms)")
	flag.Var(&shards, "shard", "shard leader address, optionally ,replica=host:port (repeat per shard, in partition order)")
	flag.Parse()

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "probrouter: -data-dir is required (it holds the partition manifest)")
		os.Exit(1)
	}
	r, err := cluster.NewRouter(cluster.Config{
		Addr:           *addr,
		Shards:         shards,
		Dir:            *dataDir,
		MaxConns:       *maxConns,
		DialTimeout:    *dialTimeout,
		CallTimeout:    *callTimeout,
		RetryAfterHint: *retryAfter,
		Logf:           log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "probrouter:", err)
		os.Exit(1)
	}
	if err := r.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "probrouter:", err)
		os.Exit(1)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Println("probrouter: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "probrouter: shutdown:", err)
		os.Exit(1)
	}
}
