// Command probserve runs the probabilistic database as a network server:
// a TCP listener speaking the internal/wire protocol, a bounded worker pool
// executing queries, and optional crash-safe persistence of base tables
// under a data directory (write-ahead log + checksummed heap snapshots; see
// docs/DURABILITY.md). On startup the server recovers the directory —
// replaying any log records a crash left behind — before accepting clients.
//
// Usage:
//
//	probserve -addr :7432 -data-dir ./data -workers 4 -max-conns 64
//
// Connect with:
//
//	probql -connect localhost:7432
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"probdb/internal/server"
)

func main() {
	addr := flag.String("addr", ":7432", "TCP listen address")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent client connections")
	workers := flag.Int("workers", 4, "maximum concurrently executing queries")
	queueDepth := flag.Int("queue-depth", 0, "queries queued behind the workers (default 4×workers)")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-query budget: queue wait plus execution")
	dataDir := flag.String("data-dir", "", "directory for WAL + table heap snapshots (empty: in-memory only)")
	poolPages := flag.Int("pool-pages", 64, "buffer-pool capacity per table, in pages")
	ckptBytes := flag.Int64("checkpoint-bytes", 1<<20,
		"checkpoint (fold the WAL into heap snapshots) when the log exceeds this many bytes; <0 disables auto-checkpointing")
	parallelism := flag.Int("parallelism", 0,
		"degree of parallelism inside each query's operators (0: one worker per CPU, 1: sequential)")
	memBudget := flag.Int64("mem-budget", 0,
		"server-wide memory budget in bytes for operator buffers, caches and snapshots (0: accounting off)")
	sessionMem := flag.Int64("session-mem", 0, "per-connection memory cap in bytes (0: unlimited within -mem-budget)")
	queryMem := flag.Int64("query-mem", 0, "per-query memory cap in bytes (0: unlimited within -session-mem)")
	admitReads := flag.Int("admit-reads", 0, "read statements queued or running at once (default workers+queue-depth)")
	admitWrites := flag.Int("admit-writes", 0, "write statements queued or running at once (default workers+queue-depth)")
	admitTxns := flag.Int("admit-txns", 0, "transaction statements queued or running at once (default workers+queue-depth)")
	retryAfter := flag.Duration("retry-after", 0, "backoff hint sent with overload rejections (default 100ms)")
	minDiskFree := flag.Int64("min-disk-free", 0,
		"flip the engine read-only when the data dir's filesystem has fewer free bytes than this (0: watchdog off)")
	shipWAL := flag.Bool("ship-wal", false,
		"serve WAL segments to replicas (leader side of replication; implies keeping segments a replica may still need)")
	replicaOf := flag.String("replica-of", "",
		"run as a read replica tailing this leader's WAL (host:port); the server is read-only")
	replicaPoll := flag.Duration("replica-poll", 0, "replica poll interval when the leader has no new WAL (default 250ms)")
	flag.Parse()

	if *dataDir != "" {
		log.Printf("probserve: opening data dir %s (recovery replays any WAL tail)", *dataDir)
	}
	s, err := server.New(server.Config{
		Addr:            *addr,
		MaxConns:        *maxConns,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		QueryTimeout:    *queryTimeout,
		DataDir:         *dataDir,
		PoolPages:       *poolPages,
		CheckpointBytes: *ckptBytes,
		Parallelism:     *parallelism,
		Logf:            log.Printf,
		MemBudget:       *memBudget,
		SessionMem:      *sessionMem,
		QueryMem:        *queryMem,
		AdmitReads:      *admitReads,
		AdmitWrites:     *admitWrites,
		AdmitTxns:       *admitTxns,
		RetryAfterHint:  *retryAfter,
		MinDiskFree:     *minDiskFree,
		ShipWAL:         *shipWAL,
		ReplicaOf:       *replicaOf,
		ReplicaPoll:     *replicaPoll,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "probserve:", err)
		os.Exit(1)
	}
	// Degraded-but-up is a state worth shouting about: recovery may have
	// skipped records it could not apply (the tables involved are
	// quarantined). HEALTH reports the same list to clients.
	if rerrs := s.Engine().ReplayErrors(); len(rerrs) > 0 {
		log.Printf("probserve: recovery skipped %d WAL record(s); affected tables are quarantined:", len(rerrs))
		for _, re := range rerrs {
			log.Printf("probserve:   replay: %v", re)
		}
	}
	if err := s.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "probserve:", err)
		os.Exit(1)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Println("probserve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "probserve: shutdown:", err)
		os.Exit(1)
	}
}
