// Data cleansing: discrete/categorical uncertainty and tuple uncertainty.
// A dirty customer feed offers multiple alternatives per record ("multiple
// alternatives for an incorrect value", §I); categorical values are
// dictionary-encoded onto integers, whole-tuple uncertainty is a joint
// dependency set over all attributes (the Δ = {T} extreme of §II-A), and
// the Fig. 3 pipeline shows why derived tables must remember where their
// pdfs came from.
//
// Run with: go run ./examples/cleansing
package main

import (
	"fmt"
	"log"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

// cities dictionary-encodes the categorical domain.
var cities = []string{"Lafayette", "Indianapolis", "Chicago", "Baton Rouge"}

func main() {
	// Each record: a certain customer id, and a *jointly distributed*
	// (city, zip) pair — the cleaner's alternatives are row-level, so city
	// and zip are correlated (Δ = {{city, zip}} is tuple uncertainty).
	schema := core.MustSchema(
		core.Column{Name: "cust", Type: core.IntType},
		core.Column{Name: "city", Type: core.IntType, Uncertain: true},
		core.Column{Name: "zip", Type: core.IntType, Uncertain: true},
	)
	feed := core.MustTable("Feed", schema, [][]string{{"city", "zip"}}, nil)

	insert := func(cust int64, alts []dist.Point) {
		err := feed.Insert(core.Row{
			Values: map[string]core.Value{"cust": core.Int(cust)},
			PDFs:   []core.PDF{{Attrs: []string{"city", "zip"}, Dist: dist.NewDiscreteJoint(2, alts)}},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	// Customer 1: cleaner is 80% sure it's Lafayette/47906, else Chicago.
	insert(1, []dist.Point{
		{X: []float64{0, 47906}, P: 0.8},
		{X: []float64{2, 60601}, P: 0.2},
	})
	// Customer 2: the record may be spurious — alternatives sum to 0.7, so
	// with probability 0.3 the tuple does not exist (a partial pdf, §II-B).
	insert(2, []dist.Point{
		{X: []float64{1, 46202}, P: 0.4},
		{X: []float64{3, 70802}, P: 0.3},
	})

	fmt.Println("dirty feed (city dictionary-encoded):")
	printFeed(feed)

	// Route mail for Indiana zips only: 46000 <= zip < 48000.
	indiana, err := feed.Select(
		core.Cmp(core.Col("zip"), region.GE, core.LitI(46000)),
		core.Cmp(core.Col("zip"), region.LT, core.LitI(48000)),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecords routable to Indiana (zip floors the joint):")
	printFeed(indiana)

	// Fig. 3 in cleansing terms: project city and zip into separate derived
	// tables, then join them back. Without histories the rejoin invents
	// combinations that never existed (Lafayette with Chicago's zip).
	cityView, err := feed.Project("cust", "city")
	if err != nil {
		log.Fatal(err)
	}
	cityView, err = cityView.Renamed(map[string]string{"cust": "c1"})
	if err != nil {
		log.Fatal(err)
	}
	zipView, err := feed.Project("cust", "zip")
	if err != nil {
		log.Fatal(err)
	}
	zipView, err = zipView.Renamed(map[string]string{"cust": "c2"})
	if err != nil {
		log.Fatal(err)
	}
	rejoined, err := cityView.EquiJoin(zipView, "c1", "c2")
	if err != nil {
		log.Fatal(err)
	}
	merged, err := rejoined.MergeDeps("city", "zip")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrejoined views (history keeps city–zip pairs consistent):")
	for _, tup := range merged.Tuples() {
		c, _ := merged.Value(tup, "c1")
		n, err := merged.NodeOf(tup, "city")
		if err != nil {
			log.Fatal(err)
		}
		dd := n.Dist.(*dist.Discrete)
		fmt.Printf("  cust=%s:", c.Render())
		for _, p := range dd.Points() {
			fmt.Printf("  (%s, %05.0f):%.2f", cities[int(p.X[0])], p.X[1], p.P)
		}
		fmt.Println()
	}
	for _, tup := range merged.Tuples() {
		n, _ := merged.NodeOf(tup, "city")
		dd := n.Dist.(*dist.Discrete)
		for _, p := range dd.Points() {
			if int(p.X[0]) == 0 && p.X[1] != 47906 {
				log.Fatal("BUG: Lafayette paired with a foreign zip — history broken")
			}
		}
	}
	fmt.Println("\nno cross-contaminated (city, zip) pairs — Fig. 3's bug does not occur ✓")
}

func printFeed(t *core.Table) {
	for _, tup := range t.Tuples() {
		c, _ := t.Value(tup, "cust")
		n, err := t.NodeOf(tup, "city")
		if err != nil {
			log.Fatal(err)
		}
		dd, ok := n.Dist.(*dist.Discrete)
		if !ok {
			fmt.Printf("  cust=%s: %v\n", c.Render(), n.Dist)
			continue
		}
		fmt.Printf("  cust=%s:", c.Render())
		for _, p := range dd.Points() {
			fmt.Printf("  (%s, %05.0f):%.2f", cities[int(p.X[0])], p.X[1], p.P)
		}
		if pr := t.ExistenceProb(tup); pr < 1 {
			fmt.Printf("   [Pr(exists)=%.2f]", pr)
		}
		fmt.Println()
	}
}
