// Moving objects: intra-tuple correlation via jointly distributed
// attributes (§II-A). A location tracker stores each object's (x, y)
// position as a single 2-D pdf — "instead of specifying two independent
// pdfs over x and y, we have a single joint pdf over these two attributes"
// — and queries floor the joint.
//
// Run with: go run ./examples/movingobjects
package main

import (
	"fmt"
	"log"
	"math/rand"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

func main() {
	schema := core.MustSchema(
		core.Column{Name: "oid", Type: core.IntType},
		core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
		core.Column{Name: "y", Type: core.FloatType, Uncertain: true},
	)
	objects := core.MustTable("Objects", schema, [][]string{{"x", "y"}}, nil)

	// Object 1 moves along a road: x and y are strongly correlated. The
	// joint is a 2-D grid concentrated near the diagonal.
	road := diagonalGrid(0, 10, 16, 1.5)
	// Object 2 is stationary with isotropic GPS noise: an independent
	// product of two Gaussians.
	gps := dist.ProductOf(dist.NewGaussian(3, 0.8), dist.NewGaussian(7, 0.8))
	// Object 3 drifts northeast: an exact joint Gaussian with correlated
	// coordinates (covariance 0.9 between x and y).
	drift := dist.MustMultiGaussian(
		[]float64{6, 4},
		[][]float64{{1.5, 0.9}, {0.9, 1.0}},
	)

	for i, d := range []dist.Dist{road, gps, drift} {
		err := objects.Insert(core.Row{
			Values: map[string]core.Value{"oid": core.Int(int64(i + 1))},
			PDFs:   []core.PDF{{Attrs: []string{"x", "y"}, Dist: d}},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("objects with 2-D location pdfs:")
	fmt.Print(objects.Render())

	// Window query: which objects are inside the patrol window
	// [2,5] × [2,5] with probability ≥ 0.25?
	window := region.Box{region.Closed(2, 5), region.Closed(2, 5)}
	fmt.Println("\nPr(location ∈ [2,5]×[2,5]) per object:")
	for _, tup := range objects.Tuples() {
		n, err := objects.NodeOf(tup, "x")
		if err != nil {
			log.Fatal(err)
		}
		oid, _ := objects.Value(tup, "oid")
		fmt.Printf("  oid=%s: %.4f\n", oid.Render(), n.Dist.MassIn(window))
	}

	// Selection over one dimension of the joint floors the whole 2-D pdf:
	// the y-marginal shifts because x and y are correlated.
	sel, err := objects.Select(core.Cmp(core.Col("x"), region.GE, core.LitF(5)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter σ_{x ≥ 5} — correlated y marginals shift:")
	for _, tup := range sel.Tuples() {
		oid, _ := sel.Value(tup, "oid")
		dy, err := sel.DistOf(tup, "y")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  oid=%s: E[y | x ≥ 5, exists] = %.3f (was %.3f), Pr(exists) = %.3f\n",
			oid.Render(), dy.Mean(0), originalMeanY(objects, oid.I), sel.ExistenceProb(tup))
	}

	// Sampling from the joint — e.g. to drive a particle filter downstream.
	r := rand.New(rand.NewSource(1))
	n, _ := objects.NodeOf(objects.Tuples()[0], "x")
	fmt.Println("\nfive samples from object 1's joint pdf (x ≈ y on the road):")
	for i := 0; i < 5; i++ {
		p := n.Dist.Sample(r)
		fmt.Printf("  (%.2f, %.2f)\n", p[0], p[1])
	}
}

func originalMeanY(t *core.Table, oid int64) float64 {
	for _, tup := range t.Tuples() {
		v, _ := t.Value(tup, "oid")
		if v.I == oid {
			d, err := t.DistOf(tup, "y")
			if err != nil {
				log.Fatal(err)
			}
			return d.Mean(0)
		}
	}
	return 0
}

// diagonalGrid builds a 2-D grid over [lo,hi]² whose mass hugs the y≈x
// diagonal with the given spread.
func diagonalGrid(lo, hi float64, bins int, spread float64) dist.Dist {
	edges := make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + float64(i)*(hi-lo)/float64(bins)
	}
	axes := []dist.Axis{
		{Kind: dist.KindContinuous, Edges: edges},
		{Kind: dist.KindContinuous, Edges: edges},
	}
	w := make([]float64, bins*bins)
	total := 0.0
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			cx := (edges[i] + edges[i+1]) / 2
			cy := (edges[j] + edges[j+1]) / 2
			d := (cx - cy) / spread
			v := 1.0 / (1 + d*d*d*d)
			w[i*bins+j] = v
			total += v
		}
	}
	for i := range w {
		w[i] /= total
	}
	return dist.NewGrid(axes, w)
}
