// Quickstart: the shortest end-to-end tour of the probabilistic database —
// create a table with an uncertain attribute, insert symbolic pdfs, run a
// selection that floors them, and ask a threshold query (§III-E).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

func main() {
	// Readings(rid, value): value is an uncertain (pdf-valued) attribute.
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "value", Type: core.FloatType, Uncertain: true},
	)
	readings := core.MustTable("Readings", schema, nil, nil)

	// The paper's Table I: Gaus(mean, variance) per sensor.
	for _, r := range []struct {
		rid      int64
		mu, vari float64
	}{{1, 20, 5}, {2, 25, 4}, {3, 13, 1}} {
		err := readings.Insert(core.Row{
			Values: map[string]core.Value{"rid": core.Int(r.rid)},
			PDFs:   []core.PDF{{Attrs: []string{"value"}, Dist: dist.NewGaussianVar(r.mu, r.vari)}},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("base table:")
	fmt.Print(readings.Render())

	// σ_{value < 25}: symbolic floors — each Gaussian keeps its closed form.
	flooded, err := readings.Select(core.Cmp(core.Col("value"), region.LT, core.LitF(25)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter SELECT ... WHERE value < 25:")
	fmt.Print(flooded.Render())

	// Threshold query (§III-E): keep tuples that still exist with
	// probability above 0.4.
	confident, err := flooded.SelectWhereProb([]string{"value"}, region.GT, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter ... AND PROB(value) > 0.4:")
	fmt.Print(confident.Render())

	// Per-tuple range probabilities — the primitive behind the paper's
	// experiments.
	fmt.Println("\nPr(value ∈ [18, 22]) per surviving tuple:")
	for _, tup := range confident.Tuples() {
		rid, _ := confident.Value(tup, "rid")
		p, err := confident.ProbInRange(tup, "value", 18, 22)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rid=%s: %.4f\n", rid.Render(), p)
	}
}
