// Sensors: the paper's running example in full — Table I's Gaussian sensor
// database, Table II's discrete relation, its possible worlds (Table III),
// and the σ_{a<b} selection of §III-C, cross-checked against brute-force
// possible-worlds enumeration.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"sort"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/pws"
	"probdb/internal/region"
)

func main() {
	tableI()
	tableIIandIII()
}

func tableI() {
	fmt.Println("== Table I: sensor database with Gaussian location pdfs ==")
	schema := core.MustSchema(
		core.Column{Name: "id", Type: core.IntType},
		core.Column{Name: "location", Type: core.FloatType, Uncertain: true},
	)
	sensors := core.MustTable("Sensors", schema, nil, nil)
	for _, r := range []struct {
		id       int64
		mu, vari float64
	}{{1, 20, 5}, {2, 25, 4}, {3, 13, 1}} {
		err := sensors.Insert(core.Row{
			Values: map[string]core.Value{"id": core.Int(r.id)},
			PDFs:   []core.PDF{{Attrs: []string{"location"}, Dist: dist.NewGaussianVar(r.mu, r.vari)}},
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(sensors.Render())

	// §III-C case 1: σ_{id=1} copies the tuple and its pdf verbatim.
	one, err := sensors.Select(core.Cmp(core.Col("id"), region.EQ, core.LitI(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("σ_{id=1}:")
	fmt.Print(one.Render())
	fmt.Println()
}

func tableIIandIII() {
	fmt.Println("== Table II: discrete probabilistic relation ==")
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "a", Type: core.IntType, Uncertain: true},
		core.Column{Name: "b", Type: core.IntType, Uncertain: true},
	)
	tbl := core.MustTable("T", schema, [][]string{{"a"}, {"b"}}, nil)
	rows := []core.Row{
		{
			Values: map[string]core.Value{"k": core.Int(1)},
			PDFs: []core.PDF{
				{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{0, 1}, []float64{0.1, 0.9})},
				{Attrs: []string{"b"}, Dist: dist.NewDiscrete([]float64{1, 2}, []float64{0.6, 0.4})},
			},
		},
		{
			Values: map[string]core.Value{"k": core.Int(2)},
			PDFs: []core.PDF{
				{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{7}, []float64{1})},
				{Attrs: []string{"b"}, Dist: dist.NewDiscrete([]float64{3}, []float64{1})},
			},
		},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(tbl.Render())

	fmt.Println("\n== Table III: its possible worlds ==")
	worlds, err := pws.Enumerate(tbl, "k")
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(worlds, func(i, j int) bool { return worlds[i].Prob > worlds[j].Prob })
	for _, w := range worlds {
		fmt.Printf("  Pr=%.2f:", w.Prob)
		for _, r := range w.Rows {
			fmt.Printf("  (a=%g, b=%g)", r.Vals["a"], r.Vals["b"])
		}
		fmt.Println()
	}

	fmt.Println("\n== σ_{a<b}: the paper's case 2(b) example ==")
	sel, err := tbl.Select(core.Cmp(core.Col("a"), region.LT, core.Col("b")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Δ after closure Ω: %v\n", sel.DepSets())
	for _, tup := range sel.Tuples() {
		n, err := sel.NodeOf(tup, "a")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  joint pdf: %v   Pr(exists)=%.2f\n", n.Dist, sel.ExistenceProb(tup))
	}

	// Cross-check against the possible-worlds oracle (Theorem 1).
	oracle := pws.Collapse(pws.Filter(worlds, func(r pws.Row) bool {
		return r.Vals["a"] < r.Vals["b"]
	}), []string{"a", "b"})
	got, err := pws.FromTable(sel, []string{"k"}, []string{"a", "b"})
	if err != nil {
		log.Fatal(err)
	}
	if d := pws.Diff(oracle, got, 1e-9); d != "" {
		log.Fatalf("PWS mismatch: %s", d)
	}
	fmt.Println("\nPWS check: model output matches world-by-world evaluation ✓")
}
