-- probdb demo script: the paper's running example through SQL.
-- Run with: go run ./cmd/probql -f examples/sql/demo.sql

CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN);

INSERT INTO readings (rid, value) VALUES
    (1, GAUSSIAN(20, 5)),
    (2, GAUSSIAN(25, 4)),
    (3, GAUSSIAN(13, 1));

-- Symbolic floors: the pdfs stay closed-form.
SELECT rid, value FROM readings WHERE value < 25;

-- Threshold query (§III-E) with ranking.
SELECT rid, value FROM readings
  WHERE value < 25 AND PROB(value) > 0.4
  ORDER BY PROB(value) DESC;

-- Probabilistic range threshold.
SELECT rid FROM readings WHERE PROB(value IN [18, 22]) >= 0.5;

-- Probabilistic aggregates.
SELECT SUM(value) FROM readings;
SELECT COUNT(*) FROM readings;

-- Correlated joint attributes (Δ = {{x, y}}).
CREATE TABLE objects (oid INT, x FLOAT UNCERTAIN, y FLOAT UNCERTAIN, DEPENDENT(x, y));
INSERT INTO objects (oid, (x, y)) VALUES
    (1, DISCRETE((4,5):0.9, (2,3):0.1)),
    (2, MVN((0, 0):((1, 0.7), (0.7, 1))));
SELECT * FROM objects WHERE x > 0;
DESCRIBE objects;
