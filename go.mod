module probdb

go 1.22
