// Cross-subsystem integration tests: SQL front end, persistence, and the
// threshold index working against each other on the same data.
package main_test

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"probdb/internal/btree"
	"probdb/internal/core"
	"probdb/internal/index"
	"probdb/internal/query"
	"probdb/internal/region"
	"probdb/internal/storage"
	"probdb/internal/store"
	"probdb/internal/workload"
)

// TestSQLPersistReloadQuery drives the full stack: create and fill a table
// through SQL, persist it to a page file, reload into a fresh database, and
// check that queries agree before and after the round trip.
func TestSQLPersistReloadQuery(t *testing.T) {
	db := query.Open()
	mustExec(t, db, "CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN)")
	gen := workload.NewGen(4242)
	for i, rd := range gen.Readings(200) {
		g := rd.Value.(interface{ Mean(int) float64 })
		sigma2 := rd.Value.Variance(0)
		mustExecf(t, db, "INSERT INTO readings (rid, value) VALUES (%d, GAUSSIAN(%g, %g))",
			i, g.Mean(0), sigma2)
	}
	before := mustExec(t, db, "SELECT rid FROM readings WHERE PROB(value IN [40, 60]) >= 0.9")

	// Persist.
	tbl, ok := db.Table("readings")
	if !ok {
		t.Fatal("table missing")
	}
	path := filepath.Join(t.TempDir(), "readings.pages")
	fp, err := storage.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heap := storage.NewHeap(storage.NewPool(fp, 32))
	if err := store.SaveTable(tbl, heap); err != nil {
		t.Fatal(err)
	}
	if err := fp.Sync(); err != nil {
		t.Fatal(err)
	}
	fp.Close()

	// Reload into a fresh world.
	fp2, err := storage.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	loaded, err := store.LoadTable(storage.NewHeap(storage.NewPool(fp2, 32)), nil)
	if err != nil {
		t.Fatal(err)
	}
	after, err := loaded.SelectRangeThreshold("value", 40, 60, region.GE, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if before.Table.Len() != after.Len() {
		t.Fatalf("result size changed across persistence: %d vs %d", before.Table.Len(), after.Len())
	}
	wantIDs := collectRIDs(t, before.Table, "rid")
	gotIDs := collectRIDs(t, after, "rid")
	for i := range wantIDs {
		if wantIDs[i] != gotIDs[i] {
			t.Fatalf("rid mismatch at %d: %d vs %d", i, wantIDs[i], gotIDs[i])
		}
	}
}

// TestIndexAgreesWithModelLayer: the threshold index answers the same
// queries as the model layer's scan-based SelectRangeThreshold.
func TestIndexAgreesWithModelLayer(t *testing.T) {
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "value", Type: core.FloatType, Uncertain: true},
	)
	tbl := core.MustTable("R", schema, nil, nil)
	gen := workload.NewGen(777)
	var items []index.Item
	for _, rd := range gen.Readings(400) {
		if err := tbl.Insert(core.Row{
			Values: map[string]core.Value{"rid": core.Int(rd.RID)},
			PDFs:   []core.PDF{{Attrs: []string{"value"}, Dist: rd.Value}},
		}); err != nil {
			t.Fatal(err)
		}
		items = append(items, index.Item{RID: rd.RID, Dist: rd.Value})
	}
	ix := index.Build(items)
	for _, q := range gen.RangeQueries(25) {
		for _, p := range []float64{0.2, 0.5, 0.9} {
			viaIndex, _ := ix.RangeThreshold(q.Lo, q.Hi, p)
			viaScan, err := tbl.SelectRangeThreshold("value", q.Lo, q.Hi, region.GE, p)
			if err != nil {
				t.Fatal(err)
			}
			scanIDs := collectRIDs(t, viaScan, "rid")
			if len(viaIndex) != len(scanIDs) {
				t.Fatalf("q=[%v,%v] p=%v: index %d vs scan %d results", q.Lo, q.Hi, p, len(viaIndex), len(scanIDs))
			}
			for i := range viaIndex {
				if viaIndex[i] != scanIDs[i] {
					t.Fatalf("q=[%v,%v] p=%v: id mismatch %d vs %d", q.Lo, q.Hi, p, viaIndex[i], scanIDs[i])
				}
			}
		}
	}
}

// TestAggregateAgreesWithEnumeration: SQL-level SUM over a table small
// enough to enumerate matches the brute-force expectation.
func TestAggregateAgreesWithEnumeration(t *testing.T) {
	db := query.Open()
	mustExec(t, db, "CREATE TABLE t (k INT, x INT UNCERTAIN)")
	mustExec(t, db, `INSERT INTO t (k, x) VALUES
		(1, DISCRETE(1:0.25, 3:0.75)),
		(2, DISCRETE(2:0.5)),
		(3, DISCRETE(0:0.1, 5:0.9))`)
	tbl, _ := db.Table("t")
	s, err := tbl.AggregateSum("x", core.AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over the 2*2*2 (with absence) worlds.
	type world struct{ v, p float64 }
	x1 := []world{{1, 0.25}, {3, 0.75}}
	x2 := []world{{2, 0.5}, {0, 0.5}}
	x3 := []world{{0, 0.1}, {5, 0.9}}
	want := map[float64]float64{}
	for _, a := range x1 {
		for _, b := range x2 {
			for _, c := range x3 {
				want[a.v+b.v+c.v] += a.p * b.p * c.p
			}
		}
	}
	for v, p := range want {
		if got := s.At([]float64{v}); math.Abs(got-p) > 1e-12 {
			t.Errorf("P(sum=%v) = %v, want %v", v, got, p)
		}
	}
}

func collectRIDs(t *testing.T, tbl *core.Table, col string) []int64 {
	t.Helper()
	out := make([]int64, 0, tbl.Len())
	for _, tup := range tbl.Tuples() {
		v, ok := tbl.Value(tup, col)
		if !ok {
			t.Fatalf("missing %s", col)
		}
		out = append(out, v.I)
	}
	return out
}

func mustExec(t *testing.T, db *query.DB, sql string) *query.Result {
	t.Helper()
	r, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return r
}

func mustExecf(t *testing.T, db *query.DB, format string, args ...any) *query.Result {
	t.Helper()
	return mustExec(t, db, fmt.Sprintf(format, args...))
}

// TestBTreeOverReadingsHeap builds a B+-tree keyed by rid over a persisted
// readings heap and checks point lookups against a full scan.
func TestBTreeOverReadingsHeap(t *testing.T) {
	heap := storage.NewHeap(storage.NewPool(storage.NewMemPager(), 32))
	gen := workload.NewGen(1001)
	for _, rd := range gen.Readings(5000) {
		if _, err := heap.Append(workload.EncodeReading(rd)); err != nil {
			t.Fatal(err)
		}
	}
	idxPool := storage.NewPool(storage.NewMemPager(), 32)
	tree, err := btree.Create(idxPool)
	if err != nil {
		t.Fatal(err)
	}
	if err := heap.Scan(func(r storage.RID, rec []byte) error {
		rd, err := workload.DecodeReading(rec)
		if err != nil {
			return err
		}
		return tree.Insert(rd.RID, r)
	}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []int64{0, 1, 2500, 4999} {
		rids, err := tree.Get(want)
		if err != nil || len(rids) != 1 {
			t.Fatalf("Get(%d) = %v, %v", want, rids, err)
		}
		rec, err := heap.Get(rids[0])
		if err != nil {
			t.Fatal(err)
		}
		rd, err := workload.DecodeReading(rec)
		if err != nil {
			t.Fatal(err)
		}
		if rd.RID != want {
			t.Fatalf("looked up rid %d, got %d", want, rd.RID)
		}
	}
	// Range scan over the index covers a contiguous rid band.
	n := 0
	if err := tree.Range(100, 199, func(int64, storage.RID) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("range matched %d, want 100", n)
	}
}
