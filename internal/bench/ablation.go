package bench

import (
	"fmt"
	"math"
	"time"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
	"probdb/internal/storage"
	"probdb/internal/workload"
)

// AblationFloorsRow compares symbolic floors against eager histogram
// conversion (DESIGN.md ablation 1): the same selection floor applied to N
// Gaussians symbolically ("[Gaus, Floor{…}]") versus by collapsing to a
// histogram first, then a follow-up range-probability computation on each.
type AblationFloorsRow struct {
	N             int
	SymbolicTime  time.Duration
	CollapsedTime time.Duration
	SymbolicErr   float64 // mean |error| vs closed form (0 by construction)
	CollapsedErr  float64
}

// AblationSymbolicFloors measures why the model keeps floors symbolic.
func AblationSymbolicFloors(n int, seed int64) AblationFloorsRow {
	gen := workload.NewGen(seed)
	readings := gen.Readings(n)
	queries := gen.RangeQueries(n)
	cut := region.Compare(region.LT, 50)

	exact := make([]float64, n)
	row := AblationFloorsRow{N: n}

	start := time.Now()
	var symVals []float64
	for i, rd := range readings {
		f := rd.Value.Floor(0, cut)
		symVals = append(symVals, dist.MassInterval(f, queries[i].Lo, queries[i].Hi))
	}
	row.SymbolicTime = time.Since(start)

	start = time.Now()
	var colVals []float64
	for i, rd := range readings {
		f := dist.Collapse(rd.Value, dist.DefaultOptions).Floor(0, cut)
		colVals = append(colVals, dist.MassInterval(f, queries[i].Lo, queries[i].Hi))
	}
	row.CollapsedTime = time.Since(start)

	for i, rd := range readings {
		exact[i] = dist.MassInterval(rd.Value.Floor(0, cut), queries[i].Lo, queries[i].Hi)
		row.SymbolicErr += math.Abs(symVals[i] - exact[i])
		row.CollapsedErr += math.Abs(colVals[i] - exact[i])
	}
	row.SymbolicErr /= float64(n)
	row.CollapsedErr /= float64(n)
	return row
}

// AblationMergeRow compares lazy versus eager dependency merging (§III-D
// leaves the choice to the implementation; DESIGN.md ablation 2). The
// workload applies a single-attribute selection to a table with two
// independent uncertain attributes: lazy evaluation floors the attribute's
// own small pdf; eager merging pays for the joint first.
type AblationMergeRow struct {
	N         int
	LazyTime  time.Duration
	EagerTime time.Duration
}

// AblationLazyEagerMerge measures the cost of merging dependency sets
// before they are needed.
func AblationLazyEagerMerge(n int, seed int64) (AblationMergeRow, error) {
	build := func() (*core.Table, error) {
		tbl := core.MustTable("T", core.MustSchema(
			core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
			core.Column{Name: "y", Type: core.FloatType, Uncertain: true},
		), nil, nil)
		gen := workload.NewGen(seed)
		for i := 0; i < n; i++ {
			err := tbl.Insert(core.Row{PDFs: []core.PDF{
				{Attrs: []string{"x"}, Dist: dist.Discretize(gen.Reading(0).Value, 8)},
				{Attrs: []string{"y"}, Dist: dist.Discretize(gen.Reading(0).Value, 8)},
			}})
			if err != nil {
				return nil, err
			}
		}
		return tbl, nil
	}
	row := AblationMergeRow{N: n}
	tbl, err := build()
	if err != nil {
		return row, err
	}
	sel := core.Cmp(core.Col("x"), region.LT, core.LitF(50))

	start := time.Now()
	if _, err := tbl.Select(sel); err != nil {
		return row, err
	}
	row.LazyTime = time.Since(start)

	start = time.Now()
	merged, err := tbl.MergeDeps("x", "y")
	if err != nil {
		return row, err
	}
	if _, err := merged.Select(sel); err != nil {
		return row, err
	}
	row.EagerTime = time.Since(start)
	return row, nil
}

// AblationReplayRow compares the model's symbolic floor composition against
// the replay alternative the paper rejects (§III-A footnote: re-applying
// all prior operations "is very inefficient and will not scale with ... the
// number of operations"). Depth is the length of the selection chain.
type AblationReplayRow struct {
	Depth        int
	ComposedTime time.Duration // incremental Floored composition (ours)
	ReplayTime   time.Duration // re-applying all i floors at step i
}

// AblationHistoryReplay measures floor-composition scaling for chained
// selections over n Gaussians.
func AblationHistoryReplay(n int, depths []int, seed int64) []AblationReplayRow {
	gen := workload.NewGen(seed)
	readings := gen.Readings(n)
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	// A chain of progressively tighter two-sided cuts.
	cuts := make([]region.Set, maxDepth)
	for i := range cuts {
		w := 50.0 / float64(i+1)
		cuts[i] = region.NewSet(region.Closed(50-w, 50+w))
	}

	rows := make([]AblationReplayRow, 0, len(depths))
	for _, depth := range depths {
		var composed, replay time.Duration
		start := time.Now()
		for _, rd := range readings {
			d := rd.Value
			for i := 0; i < depth; i++ {
				d = d.Floor(0, cuts[i]) // Floored ∘ Floored intersects regions
			}
			_ = d.Mass()
		}
		composed = time.Since(start)

		start = time.Now()
		for _, rd := range readings {
			// Replay: at every step rebuild from the base pdf by
			// re-applying every floor so far.
			for step := 1; step <= depth; step++ {
				d := rd.Value
				for i := 0; i < step; i++ {
					d = d.Floor(0, cuts[i])
				}
				_ = d.Mass()
			}
		}
		replay = time.Since(start)
		rows = append(rows, AblationReplayRow{Depth: depth, ComposedTime: composed, ReplayTime: replay})
	}
	return rows
}

// AblationPoolRow is one point of the buffer-pool sensitivity sweep
// (DESIGN.md ablation 4): page reads and time of a Fig. 5-style scan as the
// pool grows from a sliver of the file to larger than it.
type AblationPoolRow struct {
	PoolPages int
	FilePages int
	ScanTime  time.Duration
	PageReads uint64
}

// AblationBufferPool sweeps the pool size over a fixed histogram-represented
// table and scans it twice, reporting the second (warm-if-it-fits) scan.
func AblationBufferPool(nTuples int, poolSizes []int, seed int64) ([]AblationPoolRow, error) {
	gen := workload.NewGen(seed)
	recs := make([][]byte, nTuples)
	for i := range recs {
		rd := gen.Reading(int64(i))
		recs[i] = workload.EncodeReading(workload.Reading{RID: rd.RID, Value: dist.ToHistogram(rd.Value, 5)})
	}
	var rows []AblationPoolRow
	for _, pp := range poolSizes {
		pool := storage.NewPool(storage.NewMemPager(), pp)
		heap := storage.NewHeap(pool)
		for _, rec := range recs {
			if _, err := heap.Append(rec); err != nil {
				return nil, err
			}
		}
		scan := func() error {
			return heap.Scan(func(_ storage.RID, rec []byte) error {
				d, err := workload.DecodeReadingValue(rec)
				if err != nil {
					return err
				}
				_ = dist.MassInterval(d, 40, 60)
				return nil
			})
		}
		if err := scan(); err != nil { // first pass warms what fits
			return nil, err
		}
		pool.ResetStats()
		start := time.Now()
		if err := scan(); err != nil {
			return nil, err
		}
		rows = append(rows, AblationPoolRow{
			PoolPages: pp,
			FilePages: int(heap.NumPages()),
			ScanTime:  time.Since(start),
			PageReads: pool.Stats().PageReads,
		})
	}
	return rows, nil
}

// FormatAblations renders all four ablation studies.
func FormatAblations(fl AblationFloorsRow, mg AblationMergeRow, rp []AblationReplayRow, bp []AblationPoolRow) string {
	s := "Ablation 1 — symbolic floors vs eager histogram conversion\n"
	s += fmt.Sprintf("  n=%d  symbolic: %v (err %.2g)   collapsed: %v (err %.2g)\n",
		fl.N, fl.SymbolicTime.Round(time.Microsecond), fl.SymbolicErr,
		fl.CollapsedTime.Round(time.Microsecond), fl.CollapsedErr)
	s += "Ablation 2 — lazy vs eager dependency merging (single-attribute selection)\n"
	s += fmt.Sprintf("  n=%d  lazy: %v   eager: %v\n",
		mg.N, mg.LazyTime.Round(time.Microsecond), mg.EagerTime.Round(time.Microsecond))
	s += "Ablation 3 — floor composition vs operation replay (selection chains)\n"
	for _, r := range rp {
		s += fmt.Sprintf("  depth=%-3d composed: %-12v replay: %v\n",
			r.Depth, r.ComposedTime.Round(time.Microsecond), r.ReplayTime.Round(time.Microsecond))
	}
	s += "Ablation 4 — buffer pool sensitivity (warm scan)\n"
	for _, r := range bp {
		s += fmt.Sprintf("  pool=%-5d filePages=%-5d reads=%-6d time=%v\n",
			r.PoolPages, r.FilePages, r.PageReads, r.ScanTime.Round(time.Microsecond))
	}
	return s
}

// AblationDepthRow compares equi-width and equi-depth histograms at the
// same bucket budget on the paper's range-query workload (ablation 5: the
// paper's Hist is equi-width; equi-depth is the standard DB alternative).
type AblationDepthRow struct {
	Bins         int
	EquiWidthErr float64
	EquiDepthErr float64
	DiscreteErr  float64
}

// AblationEquiDepth measures mean absolute range-query error per
// representation at the given budgets.
func AblationEquiDepth(nReadings, nQueries int, bins []int, seed int64) []AblationDepthRow {
	gen := workload.NewGen(seed)
	readings := gen.Readings(nReadings)
	queries := gen.RangeQueries(nQueries)
	rows := make([]AblationDepthRow, 0, len(bins))
	for _, b := range bins {
		var ew, ed, dc errAccum
		for _, rd := range readings {
			w := dist.ToHistogram(rd.Value, b)
			d := dist.ToHistogramEquiDepth(rd.Value, b)
			s := dist.Discretize(rd.Value, b)
			for _, q := range queries {
				exact := dist.MassInterval(rd.Value, q.Lo, q.Hi)
				ew.add(math.Abs(dist.MassInterval(w, q.Lo, q.Hi) - exact))
				ed.add(math.Abs(dist.MassInterval(d, q.Lo, q.Hi) - exact))
				dc.add(math.Abs(dist.MassInterval(s, q.Lo, q.Hi) - exact))
			}
		}
		rows = append(rows, AblationDepthRow{
			Bins: b, EquiWidthErr: ew.mean(), EquiDepthErr: ed.mean(), DiscreteErr: dc.mean(),
		})
	}
	return rows
}

// FormatAblationDepth renders ablation 5.
func FormatAblationDepth(rows []AblationDepthRow) string {
	s := "Ablation 5 — equi-width vs equi-depth histograms (mean |error| of range-query mass)\n"
	s += fmt.Sprintf("  %-6s %-12s %-12s %-12s\n", "bins", "equi-width", "equi-depth", "discrete")
	for _, r := range rows {
		s += fmt.Sprintf("  %-6d %-12.5f %-12.5f %-12.5f\n", r.Bins, r.EquiWidthErr, r.EquiDepthErr, r.DiscreteErr)
	}
	return s
}
