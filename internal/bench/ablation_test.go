package bench

import (
	"strings"
	"testing"
)

func TestAblationSymbolicFloors(t *testing.T) {
	r := AblationSymbolicFloors(200, 11)
	if r.SymbolicErr > 1e-12 {
		t.Errorf("symbolic floors must be exact, err = %v", r.SymbolicErr)
	}
	if r.CollapsedErr <= r.SymbolicErr {
		t.Errorf("collapsed path should lose accuracy: %v vs %v", r.CollapsedErr, r.SymbolicErr)
	}
	if r.SymbolicTime <= 0 || r.CollapsedTime <= 0 {
		t.Error("non-positive timings")
	}
}

func TestAblationLazyEagerMerge(t *testing.T) {
	r, err := AblationLazyEagerMerge(500, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Eager merging materializes 64-point joints before a selection that
	// only needed an 8-point pdf: it must cost more.
	if r.EagerTime <= r.LazyTime {
		t.Errorf("eager (%v) should cost more than lazy (%v)", r.EagerTime, r.LazyTime)
	}
}

func TestAblationHistoryReplay(t *testing.T) {
	rows := AblationHistoryReplay(100, []int{2, 8}, 13)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Replay is quadratic in depth; at depth 8 it must exceed composition.
	last := rows[len(rows)-1]
	if last.ReplayTime <= last.ComposedTime {
		t.Errorf("replay (%v) should exceed composition (%v) at depth %d",
			last.ReplayTime, last.ComposedTime, last.Depth)
	}
}

func TestAblationBufferPool(t *testing.T) {
	rows, err := AblationBufferPool(5000, []int{4, 1 << 20}, 14)
	if err != nil {
		t.Fatal(err)
	}
	small, huge := rows[0], rows[1]
	if small.PageReads == 0 {
		t.Error("tiny pool should miss on a big scan")
	}
	if huge.PageReads != 0 {
		t.Errorf("pool larger than file should serve the warm scan with 0 reads, got %d", huge.PageReads)
	}
	out := FormatAblations(AblationSymbolicFloors(10, 1), AblationMergeRow{N: 1}, nil, rows)
	if !strings.Contains(out, "Ablation 4") {
		t.Error("format output missing sections")
	}
}

func TestAblationEquiDepth(t *testing.T) {
	rows := AblationEquiDepth(60, 60, []int{5, 10}, 15)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The ablation's finding: the paper's equi-width choice wins on
		// range queries over smooth unimodal pdfs — equi-depth spends its
		// budget on the bulk and leaves enormous tail buckets whose uniform
		// interpolation is poor.
		if r.EquiWidthErr >= r.DiscreteErr {
			t.Errorf("bins=%d: equi-width (%v) should beat discrete (%v)",
				r.Bins, r.EquiWidthErr, r.DiscreteErr)
		}
		if r.EquiWidthErr >= r.EquiDepthErr {
			t.Errorf("bins=%d: equi-width (%v) should beat equi-depth (%v) on this workload",
				r.Bins, r.EquiWidthErr, r.EquiDepthErr)
		}
		if r.EquiDepthErr <= 0 || r.EquiWidthErr <= 0 {
			t.Errorf("bins=%d: zero error is implausible", r.Bins)
		}
	}
	if rows[1].EquiDepthErr >= rows[0].EquiDepthErr {
		t.Error("equi-depth error should shrink with more bins")
	}
	out := FormatAblationDepth(rows)
	if !strings.Contains(out, "Ablation 5") {
		t.Error("format output wrong")
	}
}
