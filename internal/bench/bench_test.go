package bench

import (
	"strings"
	"testing"
	"time"
)

func TestFig4Shape(t *testing.T) {
	cfg := Fig4Config{Readings: 60, Queries: 60, SampleSizes: []int{5, 25}, Seed: 1}
	rows := Fig4(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r5, r25 := rows[0], rows[1]
	// The paper's claims: histogram beats discrete at every size; accuracy
	// improves with more samples; discrete error variance exceeds histogram.
	if r5.HistMeanErr >= r5.DiscMeanErr {
		t.Errorf("5 samples: hist %v should beat disc %v", r5.HistMeanErr, r5.DiscMeanErr)
	}
	if r25.DiscMeanErr >= r5.DiscMeanErr {
		t.Errorf("discrete error should shrink with samples: %v -> %v", r5.DiscMeanErr, r25.DiscMeanErr)
	}
	if r5.HistStdDev >= r5.DiscStdDev {
		t.Errorf("discrete stddev %v should exceed histogram %v", r5.DiscStdDev, r5.HistStdDev)
	}
	// "With only five sampling points, the accuracy is around ±0.01."
	if r5.HistMeanErr > 0.02 {
		t.Errorf("5-bin histogram mean error %v should be ~0.01", r5.HistMeanErr)
	}
	// "A discrete approximation requires over twenty-five sampling points"
	// to match the 5-bin histogram.
	if r25.DiscMeanErr < r5.HistMeanErr/3 {
		t.Errorf("25-point discrete (%v) should not dramatically beat 5-bin histogram (%v)",
			r25.DiscMeanErr, r5.HistMeanErr)
	}
	out := FormatFig4(rows)
	if !strings.Contains(out, "Fig. 4") || !strings.Contains(out, "5") {
		t.Errorf("format output wrong:\n%s", out)
	}
}

func TestFig5Shape(t *testing.T) {
	cfg := Fig5Config{
		Sizes:     []int{2000, 4000},
		Reprs:     []Repr{ReprDiscrete25, ReprHist5, ReprSymbolic},
		Queries:   2,
		PoolPages: 8,
		Threshold: 0.5,
		Seed:      2,
	}
	rows, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]Fig5Row{}
	for _, r := range rows {
		byKey[string(r.Repr)+"@"+itoa(r.NTuples)] = r
	}
	// The discrete representation reads more pages than the histogram at
	// every size (bigger tuples), and the symbolic fewer still.
	for _, n := range cfg.Sizes {
		d := byKey["discrete25@"+itoa(n)]
		h := byKey["hist5@"+itoa(n)]
		s := byKey["symbolic@"+itoa(n)]
		if !(d.PageReads > h.PageReads && h.PageReads > s.PageReads) {
			t.Errorf("n=%d: page reads ordering violated: disc=%d hist=%d sym=%d",
				n, d.PageReads, h.PageReads, s.PageReads)
		}
		if !(d.BytesPerTuple > h.BytesPerTuple && h.BytesPerTuple > s.BytesPerTuple) {
			t.Errorf("n=%d: bytes/tuple ordering violated", n)
		}
	}
	// Cost rises with table size for each representation.
	if byKey["discrete25@4000"].PageReads <= byKey["discrete25@2000"].PageReads {
		t.Error("page reads should grow with table size")
	}
	out := FormatFig5(rows)
	if !strings.Contains(out, "Fig. 5") {
		t.Errorf("format output wrong:\n%s", out)
	}
}

func TestFig6Shape(t *testing.T) {
	cfg := Fig6Config{Sizes: []int{300}, HistBins: 6, Seed: 3, Repeats: 2}
	rows, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.JoinWith <= 0 || r.JoinWithout <= 0 || r.ProjWith <= 0 || r.ProjWithout <= 0 {
		t.Errorf("non-positive timings: %+v", r)
	}
	// History maintenance cannot plausibly dominate: the paper reports
	// 5–20%; allow generous slack for timing noise at this tiny size but
	// reject pathological blowups.
	if r.JoinOverheadPct > 150 {
		t.Errorf("join overhead %v%% is pathological", r.JoinOverheadPct)
	}
	out := FormatFig6(rows)
	if !strings.Contains(out, "Fig. 6") {
		t.Errorf("format output wrong:\n%s", out)
	}
	_ = time.Millisecond
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
