package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"probdb/internal/cluster"
	"probdb/internal/server"
	"probdb/internal/wire"
)

// ClusterConfig parameterizes the scatter-gather experiment: the same
// workload — bulk load, full scan, a mass-evaluating PROB-floor filter,
// and a top-k — pushed through a router over 1, 2 and 4 shards. Two
// quantities of interest: how the CPU-bound PROB filter scales with shard
// count (the scatter), and how many rows the shards ship for the top-k
// versus the scan (the pushdown: each shard answers ORDER BY ... LIMIT k
// with its local top k, not its whole partition).
type ClusterConfig struct {
	Shards []int // shard counts to sweep
	Rows   int   // total rows loaded per sweep point
	TopK   int   // LIMIT of the pushdown query
	Seed   int64
}

// DefaultCluster is the committed BENCH_cluster.json setup.
var DefaultCluster = ClusterConfig{
	Shards: []int{1, 2, 4},
	Rows:   40_000,
	TopK:   10,
	Seed:   20080801,
}

// ClusterRow is one shard-count sweep point. Cores records the host's CPU
// count: with every shard in-process, wall-clock speedup is bounded by
// min(shards, cores), so the scatter's scaling only shows on multi-core
// hosts — on one core the interesting column is the pushdown reduction.
type ClusterRow struct {
	Shards        int           `json:"shards"`
	Cores         int           `json:"cores"`
	Rows          int           `json:"rows"`
	LoadWall      time.Duration `json:"load_wall_ns"`
	ScanWall      time.Duration `json:"scan_wall_ns"`
	ScanShipped   uint64        `json:"scan_rows_shipped"`
	ProbWall      time.Duration `json:"prob_filter_wall_ns"`
	ProbSpeedup   float64       `json:"prob_filter_speedup_vs_1shard"`
	TopKWall      time.Duration `json:"topk_wall_ns"`
	TopKShipped   uint64        `json:"topk_rows_shipped"`
	TopKReduced   float64       `json:"topk_pushdown_reduction"` // scan shipped / topk shipped
	TopKDelivered int           `json:"topk_rows_delivered"`
}

// Cluster runs the experiment: each sweep point builds a fresh cluster
// (shards + router, all in-process on loopback), loads the same rows, and
// times the query suite through one client connection.
func Cluster(cfg ClusterConfig) ([]ClusterRow, error) {
	if len(cfg.Shards) == 0 {
		cfg = DefaultCluster
	}
	var out []ClusterRow
	var base time.Duration
	for _, n := range cfg.Shards {
		row, err := clusterPoint(n, cfg.Rows, cfg.TopK, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: cluster shards=%d: %w", n, err)
		}
		if base == 0 {
			base = row.ProbWall
		}
		if row.ProbWall > 0 {
			row.ProbSpeedup = float64(base) / float64(row.ProbWall)
		}
		out = append(out, row)
	}
	return out, nil
}

func clusterPoint(shards, rows, topk int, seed int64) (ClusterRow, error) {
	row := ClusterRow{Shards: shards, Cores: runtime.NumCPU(), Rows: rows}
	var srvs []*server.Server
	defer func() {
		for _, s := range srvs {
			s.Shutdown(context.Background()) //nolint:errcheck
		}
	}()
	var specs []cluster.ShardSpec
	for i := 0; i < shards; i++ {
		dir, err := os.MkdirTemp("", "probdb-clusterbench-*")
		if err != nil {
			return row, err
		}
		defer os.RemoveAll(dir) //nolint:errcheck
		// Parallelism 1 keeps intra-operator parallelism out of the
		// scaling signal: speedup must come from sharding alone.
		s, err := server.New(server.Config{Addr: "127.0.0.1:0", DataDir: dir, Parallelism: 1})
		if err != nil {
			return row, err
		}
		if err := s.Start(); err != nil {
			return row, err
		}
		srvs = append(srvs, s)
		specs = append(specs, cluster.ShardSpec{Addr: s.Addr().String()})
	}
	rdir, err := os.MkdirTemp("", "probdb-clusterbench-router-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(rdir) //nolint:errcheck
	r, err := cluster.NewRouter(cluster.Config{Addr: "127.0.0.1:0", Dir: rdir, Shards: specs})
	if err != nil {
		return row, err
	}
	if err := r.Start(); err != nil {
		return row, err
	}
	defer r.Shutdown(context.Background()) //nolint:errcheck

	c, err := wire.Dial(r.Addr().String())
	if err != nil {
		return row, err
	}
	defer c.Close() //nolint:errcheck

	if _, err := c.Query(`CREATE TABLE pts (id INT, val FLOAT UNCERTAIN, score FLOAT)`); err != nil {
		return row, err
	}
	rng := rand.New(rand.NewSource(seed))
	t0 := time.Now()
	const chunk = 1000
	for base := 0; base < rows; base += chunk {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO pts (id, val, score) VALUES `)
		for i := base; i < base+chunk && i < rows; i++ {
			if i > base {
				sb.WriteString(", ")
			}
			mean := 30 + rng.Float64()*40
			fmt.Fprintf(&sb, "(%d, GAUSSIAN(%.4f, %.4f), %.4f)",
				i, mean, 2+rng.Float64()*6, rng.Float64()*100)
		}
		if _, err := c.Query(sb.String()); err != nil {
			return row, err
		}
	}
	row.LoadWall = time.Since(t0)

	drain := func(sql string) (int, *wire.Result, time.Duration, error) {
		t0 := time.Now()
		st, err := c.QueryStream(sql)
		if err != nil {
			return 0, nil, 0, err
		}
		n := 0
		for {
			batch, err := st.NextBatch()
			if err != nil {
				return 0, nil, 0, err
			}
			if batch == nil {
				break
			}
			n += len(batch)
		}
		res, err := st.Result()
		if err != nil {
			return 0, nil, 0, err
		}
		return n, res, time.Since(t0), nil
	}

	// Each timed leg takes the best of three runs: the sweep boots five
	// processes' worth of goroutines on shared hardware, and one noisy
	// scheduling quantum would otherwise swamp a 20ms query.
	best := func(sql string) (int, *wire.Result, time.Duration, error) {
		var bn int
		var bres *wire.Result
		bwall := time.Duration(-1)
		for i := 0; i < 3; i++ {
			n, res, wall, err := drain(sql)
			if err != nil {
				return 0, nil, 0, err
			}
			if bwall < 0 || wall < bwall {
				bn, bres, bwall = n, res, wall
			}
		}
		return bn, bres, bwall, nil
	}

	// Full scan: every row ships from its shard through the merge.
	n, res, wall, err := best(`SELECT * FROM pts`)
	if err != nil {
		return row, err
	}
	if n != rows {
		return row, fmt.Errorf("scan returned %d rows, want %d", n, rows)
	}
	row.ScanWall, row.ScanShipped = wall, res.Stats.Rows

	// PROB-floor ranking: per-row range-event mass evaluation plus a
	// probability top-k on every shard — the CPU-bound scatter whose wall
	// time should drop with shard count.
	if _, _, wall, err = best(`SELECT id, val FROM pts WHERE PROB(val IN [30, 70]) >= 0.5 ORDER BY PROB(val) DESC LIMIT 100`); err != nil {
		return row, err
	}
	row.ProbWall = wall

	// Top-k with pushdown: each shard ships only its local top k.
	n, res, wall, err = best(fmt.Sprintf(`SELECT id, score FROM pts ORDER BY score DESC LIMIT %d`, topk))
	if err != nil {
		return row, err
	}
	row.TopKWall, row.TopKShipped, row.TopKDelivered = wall, res.Stats.Rows, n
	if row.TopKShipped > 0 {
		row.TopKReduced = float64(row.ScanShipped) / float64(row.TopKShipped)
	}
	return row, nil
}

// FormatCluster renders the sweep as the console table probbench prints.
func FormatCluster(rows []ClusterRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: scatter-gather scaling and LIMIT pushdown (%d cores; speedup is bounded by min(shards, cores))\n", runtime.NumCPU())
	b.WriteString("shards |   rows | load (ms) | scan (ms) | prob filter (ms) | speedup | topk shipped/scan shipped | reduction\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d | %6d | %9.1f | %9.1f | %16.1f | %6.2fx | %11d / %-11d | %8.0fx\n",
			r.Shards, r.Rows,
			float64(r.LoadWall)/1e6, float64(r.ScanWall)/1e6, float64(r.ProbWall)/1e6,
			r.ProbSpeedup, r.TopKShipped, r.ScanShipped, r.TopKReduced)
	}
	return b.String()
}
