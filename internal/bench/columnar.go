package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

// ColumnarConfig parameterizes the vectorized-kernel experiment: each
// workload runs the same probability-threshold scan twice per repetition —
// once on the scalar per-tuple reference, once on the columnar batch kernels
// — and reports the speedup. Query bounds shift every repetition so the
// scalar path's per-interval mass memoization cannot serve repeats; what is
// measured is kernel evaluation, not cache lookups.
type ColumnarConfig struct {
	Tuples      int // single-family headline table size
	MixedTuples int // mixed-family and fallback-heavy table sizes
	Reps        int // timed repetitions; the best per mode is kept
	Par         int // degree of parallelism (identical for both modes)
	Seed        int64
}

// DefaultColumnar is the committed BENCH_columnar.json configuration: a
// 100k-tuple Gaussian scan as the headline, 30k-tuple mixed and
// fallback-heavy tables as the boundary cases.
var DefaultColumnar = ColumnarConfig{
	Tuples:      100_000,
	MixedTuples: 30_000,
	Reps:        3,
	Par:         1,
	Seed:        20080410,
}

// ColumnarRow is one workload's comparison: best scalar and vectorized wall
// times over identical queries, the resulting speedup, and the vectorized
// run's kernel mix (how many tuples evaluated on the flat lanes vs the
// per-tuple fallback).
type ColumnarRow struct {
	Workload     string
	Tuples       int
	Rows         int // result cardinality (asserted identical across modes)
	ScalarTime   time.Duration
	VecTime      time.Duration
	Speedup      float64
	VecTuples    uint64
	ScalarTuples uint64
	Families     []string
}

// columnarGaussianTable is the headline input: one family, varied
// parameters, so the whole scan is one run per batch with no
// consecutive-equal shortcuts.
func columnarGaussianTable(n int, seed int64) *core.Table {
	r := rand.New(rand.NewSource(seed))
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
	)
	t := core.MustTable("G", schema, nil, core.NewRegistry())
	for i := 0; i < n; i++ {
		if err := t.Insert(core.Row{
			Values: map[string]core.Value{"rid": core.Int(int64(i))},
			PDFs: []core.PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussian(
				r.Float64()*100, 0.5+r.Float64()*9.5)}},
		}); err != nil {
			panic(err)
		}
	}
	return t
}

// columnarMixedTable interleaves runs of every family; fallbackShare of the
// rows are triangular or floored pdfs that only evaluate per tuple.
func columnarMixedTable(n int, fallbackShare float64, seed int64) *core.Table {
	r := rand.New(rand.NewSource(seed))
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
	)
	t := core.MustTable("M", schema, nil, core.NewRegistry())
	for i := 0; i < n; i++ {
		var d dist.Dist
		if r.Float64() < fallbackShare {
			if i%2 == 0 {
				d = dist.NewTriangular(0, 20+r.Float64()*30, 100)
			} else {
				d = dist.NewGaussian(r.Float64()*100, 5).Floor(0,
					region.Compare(region.LT, 30+r.Float64()*40))
			}
		} else {
			switch (i / 23) % 5 { // runs of 23 equal-family tuples
			case 0:
				d = dist.NewGaussian(r.Float64()*100, 0.5+r.Float64()*9.5)
			case 1:
				d = dist.NewUniform(r.Float64()*50, 50+r.Float64()*50)
			case 2:
				d = dist.NewExponential(0.02 + r.Float64()*0.2)
			case 3:
				d = dist.NewPoisson(float64(20 + r.Intn(8)))
			default:
				d = dist.NewGeometric(0.02 + r.Float64()*0.2)
			}
		}
		if err := t.Insert(core.Row{
			Values: map[string]core.Value{"rid": core.Int(int64(i))},
			PDFs:   []core.PDF{{Attrs: []string{"x"}, Dist: d}},
		}); err != nil {
			panic(err)
		}
	}
	return t
}

// columnarOnce times one full-scan range-threshold ProbSelection in the
// given mode and returns the kernel report alongside.
func columnarOnce(t *core.Table, vec bool, lo, hi float64) (time.Duration, int, core.KernelReport, error) {
	core.SetVectorizedKernels(vec)
	defer core.SetVectorizedKernels(true)
	sel := t.PlanRangeThreshold("x", lo, hi, region.GE, 0.5)
	start := time.Now()
	res, err := t.RunProbSelection(sel)
	if err != nil {
		return 0, 0, core.KernelReport{}, err
	}
	return time.Since(start), res.Len(), sel.Report(), nil
}

// columnarMassOnce is the mass-threshold variant (PROB(x) ≥ p); p shifts
// per repetition for the same anti-memoization reason.
func columnarMassOnce(t *core.Table, vec bool, p float64) (time.Duration, int, core.KernelReport, error) {
	core.SetVectorizedKernels(vec)
	defer core.SetVectorizedKernels(true)
	sel := t.PlanProbSelect([]string{"x"}, region.GE, p)
	start := time.Now()
	res, err := t.RunProbSelection(sel)
	if err != nil {
		return 0, 0, core.KernelReport{}, err
	}
	return time.Since(start), res.Len(), sel.Report(), nil
}

// Columnar runs the vectorized-vs-scalar comparison. Each repetition runs
// both modes over the same shifted bounds and asserts identical result
// cardinality — the benchmark doubles as a coarse differential check. One
// untimed vectorized warmup precedes timing so the steady state (columnar
// encodings cached) is what is measured; the scalar mode has no equivalent
// warm state because every repetition queries a fresh interval.
func Columnar(cfg ColumnarConfig) ([]ColumnarRow, error) {
	if cfg.Tuples == 0 {
		cfg = DefaultColumnar
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.Par < 1 {
		cfg.Par = 1
	}
	type workload struct {
		name   string
		table  *core.Table
		runOne func(t *core.Table, vec bool, rep int) (time.Duration, int, core.KernelReport, error)
	}
	rangeRun := func(t *core.Table, vec bool, rep int) (time.Duration, int, core.KernelReport, error) {
		// Shift both bounds per repetition: every interval is new to the
		// scalar path's mass memo.
		return columnarOnce(t, vec, 30+0.37*float64(rep), 70+0.11*float64(rep))
	}
	workloads := []workload{
		{"gaussian-scan", columnarGaussianTable(cfg.Tuples, cfg.Seed), rangeRun},
		{"mixed-families", columnarMixedTable(cfg.MixedTuples, 0, cfg.Seed+1), rangeRun},
		{"fallback-heavy", columnarMixedTable(cfg.MixedTuples, 0.5, cfg.Seed+2), rangeRun},
		{"mass-threshold", columnarMixedTable(cfg.MixedTuples, 0.3, cfg.Seed+3),
			func(t *core.Table, vec bool, rep int) (time.Duration, int, core.KernelReport, error) {
				return columnarMassOnce(t, vec, 0.3+0.01*float64(rep))
			}},
	}
	var out []ColumnarRow
	for _, w := range workloads {
		w.table.SetParallelism(cfg.Par)
		// Untimed warmup populates the columnar encoding cache (and the
		// existence-mass lane shared with the scalar path).
		if _, _, _, err := w.runOne(w.table, true, -1); err != nil {
			return nil, fmt.Errorf("bench: %s warmup: %w", w.name, err)
		}
		row := ColumnarRow{Workload: w.name, Tuples: w.table.Len()}
		var rep0 core.KernelReport
		for rep := 0; rep < cfg.Reps; rep++ {
			st, srows, _, err := w.runOne(w.table, false, rep)
			if err != nil {
				return nil, fmt.Errorf("bench: %s scalar rep %d: %w", w.name, rep, err)
			}
			vt, vrows, kr, err := w.runOne(w.table, true, rep)
			if err != nil {
				return nil, fmt.Errorf("bench: %s vectorized rep %d: %w", w.name, rep, err)
			}
			if srows != vrows {
				return nil, fmt.Errorf("bench: %s rep %d: scalar kept %d rows, vectorized kept %d",
					w.name, rep, srows, vrows)
			}
			if rep == 0 || st < row.ScalarTime {
				row.ScalarTime = st
			}
			if rep == 0 || vt < row.VecTime {
				row.VecTime = vt
				rep0 = kr
			}
			row.Rows = srows
		}
		row.Speedup = float64(row.ScalarTime) / float64(row.VecTime)
		row.VecTuples = rep0.Vec
		row.ScalarTuples = rep0.Scalar
		row.Families = rep0.Families
		out = append(out, row)
	}
	return out, nil
}

// FormatColumnar renders the comparison table.
func FormatColumnar(rows []ColumnarRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Vectorized columnar kernels vs scalar reference (full-scan ProbSelection)\n")
	fmt.Fprintf(&b, "%-16s %9s %8s %12s %12s %8s  %s\n",
		"workload", "tuples", "rows", "scalar", "vectorized", "speedup", "kernel mix")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %9d %8d %12s %12s %7.2fx  %d vec / %d scalar (%s)\n",
			r.Workload, r.Tuples, r.Rows, r.ScalarTime.Round(time.Microsecond),
			r.VecTime.Round(time.Microsecond), r.Speedup,
			r.VecTuples, r.ScalarTuples, strings.Join(r.Families, ","))
	}
	return b.String()
}
