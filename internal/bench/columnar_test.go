package bench

import "testing"

// TestColumnarSmoke runs a miniature vectorized-vs-scalar comparison end to
// end: every workload completes, cardinalities agree between modes (the
// in-benchmark differential), and the kernel reports are populated.
func TestColumnarSmoke(t *testing.T) {
	cfg := ColumnarConfig{
		Tuples:      3000,
		MixedTuples: 1500,
		Reps:        1,
		Par:         2,
		Seed:        20080410,
	}
	rows, err := Columnar(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Rows == 0 {
			t.Errorf("%s kept no rows", r.Workload)
		}
		if r.VecTuples == 0 {
			t.Errorf("%s reported no vectorized tuples", r.Workload)
		}
		if r.ScalarTime <= 0 || r.VecTime <= 0 || r.Speedup <= 0 {
			t.Errorf("%s has degenerate timings: %+v", r.Workload, r)
		}
		if len(r.Families) == 0 {
			t.Errorf("%s reported no families", r.Workload)
		}
	}
	if rows[2].Workload != "fallback-heavy" || rows[2].ScalarTuples == 0 {
		t.Errorf("fallback-heavy should report scalar-path tuples: %+v", rows[2])
	}
	t.Log("\n" + FormatColumnar(rows))
}
