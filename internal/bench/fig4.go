// Package bench implements the paper's experiments (§IV): one entry point
// per figure, returning the same rows/series the paper plots, plus the
// ablation studies called out in DESIGN.md. cmd/probbench and the
// repository-level benchmarks are thin wrappers around this package.
package bench

import (
	"fmt"
	"math"

	"probdb/internal/dist"
	"probdb/internal/numeric"
	"probdb/internal/workload"
)

// Fig4Config parameterizes the accuracy-vs-sample-size experiment. The
// paper evaluates histogram and discrete approximations of random Gaussian
// pdfs on random range queries, sweeping the number of samples (buckets or
// points).
type Fig4Config struct {
	Readings    int   // number of random Gaussian pdfs
	Queries     int   // number of random range queries
	SampleSizes []int // representation budgets to sweep
	Seed        int64
}

// DefaultFig4 mirrors the paper's sweep of 5..25 samples.
var DefaultFig4 = Fig4Config{
	Readings:    400,
	Queries:     250,
	SampleSizes: []int{5, 10, 15, 20, 25},
	Seed:        20080401,
}

// Fig4Row is one point per series of Fig. 4: the mean absolute error of the
// range-query probability mass and the standard deviation of the error, for
// the histogram and discrete representations at one sample size.
type Fig4Row struct {
	SampleSize  int
	HistMeanErr float64
	HistStdDev  float64
	DiscMeanErr float64
	DiscStdDev  float64
}

// Fig4 runs the accuracy-vs-sample-size experiment: for every (pdf, query)
// pair it compares the exact Gaussian probability mass in the query range
// against the mass computed from the histogram and discrete approximations.
func Fig4(cfg Fig4Config) []Fig4Row {
	if cfg.Readings == 0 {
		cfg = DefaultFig4
	}
	gen := workload.NewGen(cfg.Seed)
	readings := gen.Readings(cfg.Readings)
	queries := gen.RangeQueries(cfg.Queries)

	rows := make([]Fig4Row, 0, len(cfg.SampleSizes))
	for _, n := range cfg.SampleSizes {
		hists := make([]dist.Dist, len(readings))
		discs := make([]dist.Dist, len(readings))
		for i, rd := range readings {
			hists[i] = dist.ToHistogram(rd.Value, n)
			discs[i] = dist.Discretize(rd.Value, n)
		}
		var hErr, dErr errAccum
		for i, rd := range readings {
			for _, q := range queries {
				exact := dist.MassInterval(rd.Value, q.Lo, q.Hi)
				hErr.add(math.Abs(dist.MassInterval(hists[i], q.Lo, q.Hi) - exact))
				dErr.add(math.Abs(dist.MassInterval(discs[i], q.Lo, q.Hi) - exact))
			}
		}
		rows = append(rows, Fig4Row{
			SampleSize:  n,
			HistMeanErr: hErr.mean(),
			HistStdDev:  hErr.stddev(),
			DiscMeanErr: dErr.mean(),
			DiscStdDev:  dErr.stddev(),
		})
	}
	return rows
}

// errAccum accumulates error magnitudes with compensated summation.
type errAccum struct {
	sum, sum2 numeric.KahanSum
	n         int
}

func (e *errAccum) add(v float64) {
	e.sum.Add(v)
	e.sum2.Add(v * v)
	e.n++
}

func (e *errAccum) mean() float64 {
	if e.n == 0 {
		return 0
	}
	return e.sum.Value() / float64(e.n)
}

func (e *errAccum) stddev() float64 {
	if e.n == 0 {
		return 0
	}
	m := e.mean()
	v := e.sum2.Value()/float64(e.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// FormatFig4 renders rows as the table behind Fig. 4.
func FormatFig4(rows []Fig4Row) string {
	s := "Fig. 4 — Accuracy vs Sample Size (mean |error| of range-query mass)\n"
	s += fmt.Sprintf("%-12s %-14s %-14s %-14s %-14s\n",
		"samples", "hist meanErr", "hist stddev", "disc meanErr", "disc stddev")
	for _, r := range rows {
		s += fmt.Sprintf("%-12d %-14.5f %-14.5f %-14.5f %-14.5f\n",
			r.SampleSize, r.HistMeanErr, r.HistStdDev, r.DiscMeanErr, r.DiscStdDev)
	}
	return s
}
