package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"probdb/internal/dist"
	"probdb/internal/exec"
	"probdb/internal/storage"
	"probdb/internal/workload"
)

// Repr names a pdf representation under test in Fig. 5.
type Repr string

// The representations the paper compares: 25-point discrete sampling and
// 5-bin histograms ("an equivalent level of accuracy", §IV-B), plus the
// symbolic form whose runtimes the paper reports as "just under the
// five-bin histogram times".
const (
	ReprDiscrete25 Repr = "discrete25"
	ReprHist5      Repr = "hist5"
	ReprSymbolic   Repr = "symbolic"
)

// ConvertRepr renders a symbolic pdf into the named representation (the
// per-representation build step of Fig. 5, also used by cmd/probgen).
func ConvertRepr(rp Repr, d dist.Dist) dist.Dist { return rp.convert(d) }

// convert renders a symbolic reading into the representation.
func (rp Repr) convert(d dist.Dist) dist.Dist {
	switch rp {
	case ReprDiscrete25:
		return dist.Discretize(d, 25)
	case ReprHist5:
		return dist.ToHistogram(d, 5)
	case ReprSymbolic:
		return d
	}
	panic(fmt.Sprintf("bench: unknown representation %q", rp))
}

// Fig5Config parameterizes the performance experiment: table sizes, the
// representations, the number of scan queries per measurement, and the
// buffer pool size (kept far below the file sizes so scans are I/O-bound,
// as in the paper's 2 GB machine against multi-GB tables).
type Fig5Config struct {
	Sizes     []int
	Reprs     []Repr
	Queries   int
	PoolPages int
	Threshold float64
	Dir       string // working directory for page files ("" = temp)
	Seed      int64
	// Parallelism is the degree of parallelism for the per-record decode
	// and mass evaluation during the scan (0 = one worker per CPU,
	// 1 = the original sequential loop). The scan I/O stays sequential.
	Parallelism int
}

// DefaultFig5 scales the paper's 0.5M–3M tuples down to laptop-friendly
// sizes while preserving the size ratios between points; cmd/probbench can
// run the full-scale sweep.
var DefaultFig5 = Fig5Config{
	Sizes:     []int{50_000, 100_000, 150_000, 200_000, 250_000, 300_000},
	Reprs:     []Repr{ReprDiscrete25, ReprHist5, ReprSymbolic},
	Queries:   3,
	PoolPages: 256, // 2 MiB — far below every file size
	Threshold: 0.5,
	Seed:      20080402,
}

// Fig5Row is one point of Fig. 5: the average runtime of a probabilistic
// threshold range query (full scan) over a table of NTuples readings in the
// given representation, with the page I/O that produced it.
type Fig5Row struct {
	NTuples       int
	Repr          Repr
	Pages         int
	BytesPerTuple float64
	BuildTime     time.Duration
	QueryTime     time.Duration // average per query
	PageReads     uint64        // average per query
	Matches       int           // result size of the last query (sanity)
}

// Fig5 runs the performance-of-discretized-pdfs experiment: it materializes
// Readings(rid, value) heap files per representation and size, then times
// cold range-query scans (Pr(value ∈ [lo,hi]) ≥ threshold).
func Fig5(cfg Fig5Config) ([]Fig5Row, error) {
	if len(cfg.Sizes) == 0 {
		cfg = DefaultFig5
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "probdb-fig5-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	var rows []Fig5Row
	for _, n := range cfg.Sizes {
		for _, rp := range cfg.Reprs {
			row, err := fig5One(cfg, dir, n, rp)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func fig5One(cfg Fig5Config, dir string, n int, rp Repr) (Fig5Row, error) {
	path := filepath.Join(dir, fmt.Sprintf("readings-%s-%d.pages", rp, n))
	fp, err := storage.OpenFile(path)
	if err != nil {
		return Fig5Row{}, err
	}
	defer func() {
		fp.Close()
		os.Remove(path)
	}()
	pool := storage.NewPool(fp, cfg.PoolPages)
	heap := storage.NewHeap(pool)

	gen := workload.NewGen(cfg.Seed)
	buildStart := time.Now()
	var bytes int64
	for i := 0; i < n; i++ {
		rd := gen.Reading(int64(i))
		rec := workload.EncodeReading(workload.Reading{RID: rd.RID, Value: rp.convert(rd.Value)})
		bytes += int64(len(rec))
		if _, err := heap.Append(rec); err != nil {
			return Fig5Row{}, err
		}
	}
	if err := pool.Flush(); err != nil {
		return Fig5Row{}, err
	}
	buildTime := time.Since(buildStart)

	queries := gen.RangeQueries(cfg.Queries)
	var totalQuery time.Duration
	var totalReads uint64
	matches := 0
	for _, q := range queries {
		// Each query runs twice from a cold pool; the faster run is kept so
		// one-off system hiccups do not distort the sweep.
		var best time.Duration
		var bestReads uint64
		for rep := 0; rep < 2; rep++ {
			if err := pool.Invalidate(); err != nil {
				return Fig5Row{}, err
			}
			pool.ResetStats()
			start := time.Now()
			matches = 0
			var err error
			if par := exec.Resolve(cfg.Parallelism); par > 1 {
				matches, err = scanParallel(heap, par, q, cfg.Threshold)
			} else {
				err = heap.Scan(func(_ storage.RID, rec []byte) error {
					d, err := workload.DecodeReadingValue(rec)
					if err != nil {
						return err
					}
					if dist.MassInterval(d, q.Lo, q.Hi) >= cfg.Threshold {
						matches++
					}
					return nil
				})
			}
			if err != nil {
				return Fig5Row{}, err
			}
			elapsed := time.Since(start)
			if rep == 0 || elapsed < best {
				best = elapsed
				bestReads = pool.Stats().PageReads
			}
		}
		totalQuery += best
		totalReads += bestReads
	}
	nq := len(queries)
	return Fig5Row{
		NTuples:       n,
		Repr:          rp,
		Pages:         int(heap.NumPages()),
		BytesPerTuple: float64(bytes) / float64(n),
		BuildTime:     buildTime,
		QueryTime:     totalQuery / time.Duration(nq),
		PageReads:     totalReads / uint64(nq),
		Matches:       matches,
	}, nil
}

// scanParallel is the morsel-parallel decode/evaluate path of fig5One: the
// heap scan itself stays sequential (one reader per file), but records are
// buffered in batches whose decode + mass-interval evaluation fan out over
// the worker pool. Matches are summed, so the count equals the sequential
// scan's exactly.
func scanParallel(heap *storage.Heap, par int, q workload.RangeQuery, threshold float64) (int, error) {
	const batchSize = 4096
	matches := 0
	recs := make([][]byte, 0, batchSize)
	flush := func() error {
		if len(recs) == 0 {
			return nil
		}
		var nm int64
		err := exec.For(par, len(recs), func(lo, hi int) error {
			local := int64(0)
			for i := lo; i < hi; i++ {
				d, err := workload.DecodeReadingValue(recs[i])
				if err != nil {
					return err
				}
				if dist.MassInterval(d, q.Lo, q.Hi) >= threshold {
					local++
				}
			}
			atomic.AddInt64(&nm, local)
			return nil
		})
		matches += int(nm)
		recs = recs[:0]
		return err
	}
	err := heap.Scan(func(_ storage.RID, rec []byte) error {
		// The record slice aliases the page buffer, which the sequential
		// scan may recycle before the batch evaluates; copy it out.
		recs = append(recs, append([]byte(nil), rec...))
		if len(recs) == batchSize {
			return flush()
		}
		return nil
	})
	if err != nil {
		return matches, err
	}
	return matches, flush()
}

// FormatFig5 renders rows as the table behind Fig. 5.
func FormatFig5(rows []Fig5Row) string {
	s := "Fig. 5 — Performance of Discretized PDFs (cold scan range query)\n"
	s += fmt.Sprintf("%-10s %-12s %-9s %-8s %-12s %-12s %-10s\n",
		"tuples", "repr", "pages", "B/tuple", "build", "query", "pageReads")
	for _, r := range rows {
		s += fmt.Sprintf("%-10d %-12s %-9d %-8.1f %-12v %-12v %-10d\n",
			r.NTuples, r.Repr, r.Pages, r.BytesPerTuple,
			r.BuildTime.Round(time.Millisecond), r.QueryTime.Round(time.Millisecond), r.PageReads)
	}
	return s
}
