package bench

import (
	"fmt"
	"runtime"
	"time"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
	"probdb/internal/workload"
)

// Fig6Config parameterizes the history-overhead experiment: the pipeline of
// §IV-C — joins over range selections (floors and products) and projections
// of the resulting correlated data — run with and without history
// maintenance.
type Fig6Config struct {
	Sizes    []int
	HistBins int // histogram resolution of the uncertain attributes
	// Discrete switches the uncertain attributes to discretized pdfs
	// (HistBins points). Joint operations on small discrete pdfs are cheap,
	// which makes the history bookkeeping a visible fraction of the cost —
	// the regime where the paper's 5-20% overhead band lives.
	Discrete bool
	Seed     int64
	Repeats  int // timing repetitions per point (min is reported)
}

// DefaultFig6 mirrors the paper's 1K–5K tuple sweep.
var DefaultFig6 = Fig6Config{
	Sizes:    []int{1000, 2000, 3000, 4000, 5000},
	HistBins: 8,
	Discrete: true,
	Seed:     20080403,
	Repeats:  5,
}

// Fig6Row is one point of Fig. 6: the runtime of the join and projection
// phases with and without history maintenance, and the relative overhead.
type Fig6Row struct {
	NTuples         int
	JoinWith        time.Duration
	JoinWithout     time.Duration
	JoinOverheadPct float64
	ProjWith        time.Duration
	ProjWithout     time.Duration
	ProjOverheadPct float64
}

// Fig6 measures the cost of maintaining histories (Λ): the same
// join-then-project pipeline runs with tracking on and off. Without
// tracking the results are incorrect whenever pdfs are dependent (Fig. 3);
// the experiment quantifies what correctness costs on independent data,
// where the bookkeeping is pure overhead.
func Fig6(cfg Fig6Config) ([]Fig6Row, error) {
	if len(cfg.Sizes) == 0 {
		cfg = DefaultFig6
	}
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	rows := make([]Fig6Row, 0, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		left, right, err := fig6Build(cfg, n)
		if err != nil {
			return nil, err
		}
		row := Fig6Row{NTuples: n}
		for rep := 0; rep < cfg.Repeats; rep++ {
			for _, history := range []bool{true, false} {
				left.SetTrackHistory(history)
				right.SetTrackHistory(history)
				jt, pt, err := fig6Run(left, right)
				if err != nil {
					return nil, err
				}
				if history {
					if rep == 0 || jt < row.JoinWith {
						row.JoinWith = jt
					}
					if rep == 0 || pt < row.ProjWith {
						row.ProjWith = pt
					}
				} else {
					if rep == 0 || jt < row.JoinWithout {
						row.JoinWithout = jt
					}
					if rep == 0 || pt < row.ProjWithout {
						row.ProjWithout = pt
					}
				}
			}
		}
		row.JoinOverheadPct = overheadPct(row.JoinWith, row.JoinWithout)
		row.ProjOverheadPct = overheadPct(row.ProjWith, row.ProjWithout)
		rows = append(rows, row)
	}
	return rows, nil
}

func overheadPct(with, without time.Duration) float64 {
	if without == 0 {
		return 0
	}
	return 100 * (float64(with) - float64(without)) / float64(without)
}

// fig6Build materializes the two base sensor tables for one sweep point.
func fig6Build(cfg Fig6Config, n int) (*core.Table, *core.Table, error) {
	reg := core.NewRegistry()
	left := core.MustTable("L", core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
	), nil, reg)
	right := core.MustTable("R", core.MustSchema(
		core.Column{Name: "k2", Type: core.IntType},
		core.Column{Name: "y", Type: core.FloatType, Uncertain: true},
	), nil, reg)

	gen := workload.NewGen(cfg.Seed)
	for i := 0; i < n; i++ {
		var lx, ry dist.Dist
		if cfg.Discrete {
			lx = dist.Discretize(gen.Reading(int64(i)).Value, cfg.HistBins)
			ry = dist.Discretize(gen.Reading(int64(i)).Value, cfg.HistBins)
		} else {
			lx = dist.ToHistogram(gen.Reading(int64(i)).Value, cfg.HistBins)
			ry = dist.ToHistogram(gen.Reading(int64(i)).Value, cfg.HistBins)
		}
		if err := left.Insert(core.Row{
			Values: map[string]core.Value{"k": core.Int(int64(i))},
			PDFs:   []core.PDF{{Attrs: []string{"x"}, Dist: lx}},
		}); err != nil {
			return nil, nil, err
		}
		if err := right.Insert(core.Row{
			Values: map[string]core.Value{"k2": core.Int(int64(i))},
			PDFs:   []core.PDF{{Attrs: []string{"y"}, Dist: ry}},
		}); err != nil {
			return nil, nil, err
		}
	}
	return left, right, nil
}

// fig6Run times the pipeline over prebuilt tables: a join over a range
// selection (floors and products), then a projection of the correlated
// result including materialization of the 1-D marginals — the "collapse of
// the 2D pdfs" of §IV-C.
func fig6Run(left, right *core.Table) (joinT, projT time.Duration, err error) {
	runtime.GC() // isolate the timings from earlier runs' garbage
	start := time.Now()
	sel, err := left.Select(core.Cmp(core.Col("x"), region.GE, core.LitF(25)))
	if err != nil {
		return 0, 0, err
	}
	joined, err := sel.EquiJoin(right, "k", "k2", core.Cmp(core.Col("x"), region.LT, core.Col("y")))
	if err != nil {
		return 0, 0, err
	}
	joinT = time.Since(start)

	runtime.GC()
	start = time.Now()
	proj, err := joined.Project("k", "x")
	if err != nil {
		return 0, 0, err
	}
	for _, tup := range proj.Tuples() {
		if _, err := proj.DistOf(tup, "x"); err != nil {
			return 0, 0, err
		}
	}
	projT = time.Since(start)
	return joinT, projT, nil
}

// FormatFig6 renders rows as the table behind Fig. 6.
func FormatFig6(rows []Fig6Row) string {
	s := "Fig. 6 — Overhead of Histories (join over range selections; projection of correlated data)\n"
	s += fmt.Sprintf("%-8s %-14s %-14s %-10s %-14s %-14s %-10s\n",
		"tuples", "join+hist", "join-hist", "overhead", "proj+hist", "proj-hist", "overhead")
	for _, r := range rows {
		s += fmt.Sprintf("%-8d %-14v %-14v %-9.1f%% %-14v %-14v %-9.1f%%\n",
			r.NTuples,
			r.JoinWith.Round(time.Millisecond), r.JoinWithout.Round(time.Millisecond), r.JoinOverheadPct,
			r.ProjWith.Round(time.Millisecond), r.ProjWithout.Round(time.Millisecond), r.ProjOverheadPct)
	}
	return s
}
