package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/exec"
	"probdb/internal/mc"
	"probdb/internal/region"
)

// ParallelConfig parameterizes the operator-parallelism speedup sweep: each
// workload (threshold select, hash equi-join with an uncertain residual
// predicate, Monte-Carlo world sampling) runs at every degree of parallelism
// in Pars, and each row reports its speedup relative to the sequential run.
type ParallelConfig struct {
	SelectTuples int   // table size for the threshold-select workload
	JoinTuples   int   // per-side size for the equi-join workload
	Worlds       int   // Monte-Carlo sample count
	McTuples     int   // table size for the Monte-Carlo workload
	Reps         int   // timed repetitions per point; the best is kept
	Pars         []int // degrees of parallelism to sweep
	Seed         int64
}

// DefaultParallel sweeps 1, 2, 4, ... up to the machine's CPU count
// (always at least 1 and 4 so the sweep is meaningful even on small
// containers, where >NumCPU degrees just measure scheduling overhead).
var DefaultParallel = ParallelConfig{
	SelectTuples: 20_000,
	JoinTuples:   4_000,
	Worlds:       400,
	McTuples:     500,
	Reps:         3,
	Pars:         defaultPars(),
	Seed:         20080403,
}

func defaultPars() []int {
	pars := []int{1, 2, 4}
	for p := 8; p <= runtime.NumCPU(); p *= 2 {
		pars = append(pars, p)
	}
	return pars
}

// ParallelRow is one point of the sweep: a workload at one degree of
// parallelism, with its best-of-Reps wall time and the speedup over the
// same workload's par=1 row. CacheHits/CacheMisses report the pdf-mass
// cache traffic of the timed run (the select workload is the only one that
// evaluates symbolic masses).
type ParallelRow struct {
	Workload    string
	Par         int
	Time        time.Duration
	Speedup     float64
	Rows        int // result cardinality (sanity: identical across pars)
	CacheHits   uint64
	CacheMisses uint64
}

// Parallel runs the speedup sweep. Every (workload, par) point rebuilds its
// input tables from the same seed, so all runs start from identical state
// with a cold mass cache; result cardinalities are asserted identical
// across degrees of parallelism.
func Parallel(cfg ParallelConfig) ([]ParallelRow, error) {
	if cfg.SelectTuples == 0 {
		cfg = DefaultParallel
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if len(cfg.Pars) == 0 {
		cfg.Pars = defaultPars()
	}
	workloads := []struct {
		name string
		run  func(par int) (time.Duration, int, exec.CacheStats, error)
	}{
		{"select-threshold", func(par int) (time.Duration, int, exec.CacheStats, error) {
			return parSelectOnce(cfg, par)
		}},
		{"equi-join", func(par int) (time.Duration, int, exec.CacheStats, error) {
			return parJoinOnce(cfg, par)
		}},
		{"mc-sample", func(par int) (time.Duration, int, exec.CacheStats, error) {
			return parSampleOnce(cfg, par)
		}},
	}
	var out []ParallelRow
	for _, w := range workloads {
		var base time.Duration
		baseRows := -1
		for _, par := range cfg.Pars {
			best := time.Duration(0)
			rows := 0
			var cache exec.CacheStats
			for rep := 0; rep < cfg.Reps; rep++ {
				elapsed, n, cs, err := w.run(par)
				if err != nil {
					return nil, fmt.Errorf("bench: %s par=%d: %w", w.name, par, err)
				}
				if rep == 0 || elapsed < best {
					best, rows, cache = elapsed, n, cs
				}
			}
			if baseRows == -1 {
				base, baseRows = best, rows
			} else if rows != baseRows {
				return nil, fmt.Errorf("bench: %s par=%d returned %d rows, par=%d returned %d",
					w.name, par, rows, cfg.Pars[0], baseRows)
			}
			out = append(out, ParallelRow{
				Workload:    w.name,
				Par:         par,
				Time:        best,
				Speedup:     float64(base) / float64(best),
				Rows:        rows,
				CacheHits:   cache.Hits,
				CacheMisses: cache.Misses,
			})
		}
	}
	return out, nil
}

// parSelectTable builds the threshold-select input: n tuples with Gaussian
// readings (the Fig. 5 shape, held in memory so only operator time is
// measured).
func parSelectTable(n int, seed int64) *core.Table {
	r := rand.New(rand.NewSource(seed))
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "value", Type: core.FloatType, Uncertain: true},
	)
	t := core.MustTable("readings", schema, nil, nil)
	for i := 0; i < n; i++ {
		if err := t.Insert(core.Row{
			Values: map[string]core.Value{"rid": core.Int(int64(i))},
			PDFs: []core.PDF{{Attrs: []string{"value"}, Dist: dist.NewGaussian(
				r.Float64()*100, 0.5+r.Float64()*9.5)}},
		}); err != nil {
			panic(err)
		}
	}
	return t
}

func parSelectOnce(cfg ParallelConfig, par int) (time.Duration, int, exec.CacheStats, error) {
	t := parSelectTable(cfg.SelectTuples, cfg.Seed)
	start := time.Now()
	res, err := t.WithParallelism(par).SelectRangeThreshold("value", 40, 60, region.GE, 0.5)
	if err != nil {
		return 0, 0, exec.CacheStats{}, err
	}
	return time.Since(start), res.Len(), t.Registry().MassCache().Stats(), nil
}

// parJoinTables builds the equi-join input: two tables sharing a registry,
// with clustered certain keys (so the hash join produces real multi-match
// fan-out) and uncertain attributes compared by a residual atom, which
// forces the per-pair floor/merge machinery — the expensive part the
// parallel probe is meant to hide.
func parJoinTables(cfg ParallelConfig) (*core.Table, *core.Table, error) {
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	reg := core.NewRegistry()
	build := func(name string, n int) *core.Table {
		schema := core.MustSchema(
			core.Column{Name: "k", Type: core.IntType},
			core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
		)
		t := core.MustTable(name, schema, nil, reg)
		for i := 0; i < n; i++ {
			if err := t.Insert(core.Row{
				Values: map[string]core.Value{"k": core.Int(int64(r.Intn(n / 2)))},
				PDFs: []core.PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussian(
					r.Float64()*50, 1+r.Float64()*4)}},
			}); err != nil {
				panic(err)
			}
		}
		return t
	}
	l, err := build("L", cfg.JoinTuples).Prefixed("l.")
	if err != nil {
		return nil, nil, err
	}
	rt, err := build("R", cfg.JoinTuples).Prefixed("r.")
	if err != nil {
		return nil, nil, err
	}
	return l, rt, nil
}

func parJoinOnce(cfg ParallelConfig, par int) (time.Duration, int, exec.CacheStats, error) {
	l, r, err := parJoinTables(cfg)
	if err != nil {
		return 0, 0, exec.CacheStats{}, err
	}
	start := time.Now()
	res, err := l.WithParallelism(par).EquiJoin(r, "l.k", "r.k",
		core.Cmp(core.Col("l.x"), region.LT, core.Col("r.x")))
	if err != nil {
		return 0, 0, exec.CacheStats{}, err
	}
	return time.Since(start), res.Len(), l.Registry().MassCache().Stats(), nil
}

func parSampleOnce(cfg ParallelConfig, par int) (time.Duration, int, exec.CacheStats, error) {
	t := parSelectTable(cfg.McTuples, cfg.Seed+2)
	start := time.Now()
	worlds := mc.SampleWorldsPar(t, cfg.Worlds, cfg.Seed, par, "rid")
	return time.Since(start), len(worlds), exec.CacheStats{}, nil
}

// FormatParallel renders the sweep as a table.
func FormatParallel(rows []ParallelRow) string {
	s := fmt.Sprintf("Parallel operator speedup (%d CPUs)\n", runtime.NumCPU())
	s += fmt.Sprintf("%-18s %-5s %-12s %-9s %-9s %-16s\n",
		"workload", "par", "time", "speedup", "rows", "cache hit/miss")
	for _, r := range rows {
		s += fmt.Sprintf("%-18s %-5d %-12v %-9.2f %-9d %d/%d\n",
			r.Workload, r.Par, r.Time.Round(time.Microsecond), r.Speedup, r.Rows,
			r.CacheHits, r.CacheMisses)
	}
	return s
}
