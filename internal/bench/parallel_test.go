package bench

import "testing"

// TestParallelSweepSmoke runs a miniature sweep end to end: every workload
// completes, cardinalities agree across parallelism, and the par=1 rows
// report speedup exactly 1.
func TestParallelSweepSmoke(t *testing.T) {
	cfg := ParallelConfig{
		SelectTuples: 2000,
		JoinTuples:   400,
		Worlds:       50,
		McTuples:     100,
		Reps:         1,
		Pars:         []int{1, 4},
		Seed:         20080403,
	}
	rows, err := Parallel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows: %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Par == 1 && r.Speedup != 1 {
			t.Errorf("%s par=1 speedup = %v, want 1", r.Workload, r.Speedup)
		}
		if r.Rows == 0 {
			t.Errorf("%s par=%d returned no rows", r.Workload, r.Par)
		}
	}
	t.Log("\n" + FormatParallel(rows))
}
