package bench

import (
	"fmt"
	"time"

	"probdb/internal/core"
	"probdb/internal/query"
	"probdb/internal/workload"
)

// PlannerConfig parameterizes the access-path selectivity sweep: one
// Readings(rid, value) table per execution mode, a PTI over the uncertain
// value column on the indexed side, and one probability-range query per
// target selectivity (the query interval is centered at 50 and widened
// until roughly the target fraction of tuples qualifies).
type PlannerConfig struct {
	Tuples        int
	Selectivities []float64 // target fractions of the table per query
	Threshold     float64   // probability threshold of the range queries
	Seed          int64
}

// DefaultPlanner sweeps the selectivities the planner trade-off pivots on:
// the PTI must win clearly at <= 10% and degrade gracefully toward a full
// scan as the query covers more of the table.
var DefaultPlanner = PlannerConfig{
	Tuples:        20_000,
	Selectivities: []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.50},
	Threshold:     0.5,
	Seed:          20080410,
}

// PlannerRow is one selectivity point: the same query executed as a forced
// full scan and through the PTI access path. PdfEvals counts probability
// integrations — the scan evaluates every tuple's mass, the index only the
// candidates its x-bounds could not prune (Tuples - IndexPruned).
type PlannerRow struct {
	TargetSel   float64       `json:"target_selectivity"`
	Lo, Hi      float64       `json:"-"`
	Rows        int           `json:"rows"`
	Selectivity float64       `json:"selectivity"` // measured: Rows / Tuples
	ScanTime    time.Duration `json:"scan_ns"`
	IndexTime   time.Duration `json:"index_ns"`
	ScanEvals   int           `json:"scan_pdf_evals"`
	IndexEvals  int           `json:"index_pdf_evals"`
	IndexProbes uint64        `json:"index_probes"`
	IndexPruned uint64        `json:"index_pruned"`
	Speedup     float64       `json:"speedup"`
}

// plannerDB builds a Readings table on a fresh catalog. The scan side gets
// no index (its planner has nothing to probe); the indexed side gets a PTI
// over value plus ANALYZE statistics. Separate catalogs keep both sides'
// pdf-mass caches cold, so the timings compare like with like.
func plannerDB(cfg PlannerConfig, indexed bool) (*query.DB, error) {
	db := query.Open()
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "value", Type: core.FloatType, Uncertain: true},
	)
	t := core.MustTable("readings", schema, nil, db.Registry())
	gen := workload.NewGen(cfg.Seed)
	for _, rd := range gen.Readings(cfg.Tuples) {
		if err := t.Insert(core.Row{
			Values: map[string]core.Value{"rid": core.Int(rd.RID)},
			PDFs:   []core.PDF{{Attrs: []string{"value"}, Dist: rd.Value}},
		}); err != nil {
			return nil, err
		}
	}
	if err := db.Attach(t); err != nil {
		return nil, err
	}
	if indexed {
		if _, err := db.Exec("CREATE INDEX ON readings (value)"); err != nil {
			return nil, err
		}
		if _, err := db.Exec("ANALYZE readings"); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Planner runs the sweep. Both sides must return identical cardinalities —
// the planner's core contract — and the indexed side's pruning is reported
// so the pdf-evaluation saving is visible even where wall times are noisy.
func Planner(cfg PlannerConfig) ([]PlannerRow, error) {
	if cfg.Tuples == 0 {
		cfg = DefaultPlanner
	}
	scanDB, err := plannerDB(cfg, false)
	if err != nil {
		return nil, err
	}
	ixDB, err := plannerDB(cfg, true)
	if err != nil {
		return nil, err
	}
	var out []PlannerRow
	for _, sel := range cfg.Selectivities {
		// Means are uniform in [0, 100], so a tuple passes "mass >= 0.5"
		// roughly when its mean lies inside the interval shrunk by the
		// half-mass displacement ~0.674*sigma on each side. Widening by that
		// margin makes the measured selectivity track the target even at 1%,
		// where the raw width would be smaller than the pdfs themselves.
		width := (workload.MeanHi-workload.MeanLo)*sel + 2*0.674*workload.SigmaMean
		mid := (workload.MeanHi + workload.MeanLo) / 2
		lo, hi := mid-width/2, mid+width/2
		sql := fmt.Sprintf("SELECT rid FROM readings WHERE PROB(value IN [%g, %g]) >= %g",
			lo, hi, cfg.Threshold)

		start := time.Now()
		scanRes, err := scanDB.Exec(sql)
		if err != nil {
			return nil, fmt.Errorf("bench: planner scan sel=%g: %w", sel, err)
		}
		scanTime := time.Since(start)

		start = time.Now()
		ixRes, err := ixDB.Exec(sql)
		if err != nil {
			return nil, fmt.Errorf("bench: planner index sel=%g: %w", sel, err)
		}
		ixTime := time.Since(start)

		if scanRes.Table.Len() != ixRes.Table.Len() {
			return nil, fmt.Errorf("bench: planner sel=%g: scan %d rows, index %d rows",
				sel, scanRes.Table.Len(), ixRes.Table.Len())
		}
		if ixRes.Planner.IndexProbes == 0 {
			return nil, fmt.Errorf("bench: planner sel=%g: index side never probed", sel)
		}
		rows := ixRes.Table.Len()
		out = append(out, PlannerRow{
			TargetSel:   sel,
			Lo:          lo,
			Hi:          hi,
			Rows:        rows,
			Selectivity: float64(rows) / float64(cfg.Tuples),
			ScanTime:    scanTime,
			IndexTime:   ixTime,
			ScanEvals:   cfg.Tuples,
			IndexEvals:  cfg.Tuples - int(ixRes.Planner.IndexPruned),
			IndexProbes: ixRes.Planner.IndexProbes,
			IndexPruned: ixRes.Planner.IndexPruned,
			Speedup:     float64(scanTime) / float64(ixTime),
		})
	}
	return out, nil
}

// FormatPlanner renders the sweep as a table.
func FormatPlanner(rows []PlannerRow) string {
	s := "Planner access-path sweep (PTI vs full scan)\n"
	s += fmt.Sprintf("%-8s %-7s %-9s %-12s %-12s %-11s %-11s %-8s\n",
		"sel", "rows", "measured", "scan time", "index time", "scan evals", "idx evals", "speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-8.2f %-7d %-9.3f %-12v %-12v %-11d %-11d %-8.2f\n",
			r.TargetSel, r.Rows, r.Selectivity,
			r.ScanTime.Round(time.Microsecond), r.IndexTime.Round(time.Microsecond),
			r.ScanEvals, r.IndexEvals, r.Speedup)
	}
	return s
}
