package bench

import "testing"

// TestPlannerSweep is the acceptance check of the access-path experiment:
// at low selectivity the PTI must evaluate strictly fewer pdfs than the
// scan (IndexPruned > 0), with identical result cardinalities (asserted
// inside Planner).
func TestPlannerSweep(t *testing.T) {
	cfg := PlannerConfig{
		Tuples:        2_000,
		Selectivities: []float64{0.05, 0.10, 0.50},
		Threshold:     0.5,
		Seed:          20080410,
	}
	rows, err := Planner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Selectivities) {
		t.Fatalf("got %d rows, want %d", len(rows), len(cfg.Selectivities))
	}
	for _, r := range rows {
		if r.IndexProbes == 0 {
			t.Errorf("sel=%.2f: no index probe", r.TargetSel)
		}
		if r.TargetSel <= 0.10 {
			if r.IndexPruned == 0 {
				t.Errorf("sel=%.2f: index pruned nothing", r.TargetSel)
			}
			if r.IndexEvals >= r.ScanEvals {
				t.Errorf("sel=%.2f: index evaluated %d pdfs, scan %d — no saving",
					r.TargetSel, r.IndexEvals, r.ScanEvals)
			}
		}
		if r.Rows == 0 {
			t.Errorf("sel=%.2f: empty result; the sweep measures nothing", r.TargetSel)
		}
	}
}
