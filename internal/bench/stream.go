package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"probdb/internal/core"
	"probdb/internal/query"
	"probdb/internal/workload"
)

// StreamConfig parameterizes the pipelined-executor experiment: one
// Readings(rid, value) table, one SELECT with a pass-everything certain
// predicate (so the legacy executor materializes the full filtered
// relation), executed at several LIMITs by both strategies. The quantities
// of interest are the bytes each strategy allocates and how long the first
// row takes to surface — the two things pipelining exists to change; total
// wall time rides along as a sanity check.
type StreamConfig struct {
	Tuples int
	Limits []int // 0 = no LIMIT (full result)
	Seed   int64
}

// DefaultStream is the acceptance setup: 100k rows, LIMIT 1 / 10 / 100 /
// full result.
var DefaultStream = StreamConfig{
	Tuples: 100_000,
	Limits: []int{1, 10, 100, 0},
	Seed:   20080411,
}

// StreamRow is one LIMIT point, both execution strategies side by side.
// AllocRatio is materialized bytes over pipelined bytes: under a small
// LIMIT it should be orders of magnitude (the pipeline stops after one
// batch; the legacy path filters all 100k rows first), and FirstRow should
// be far below PipeTime whenever the result is large.
type StreamRow struct {
	Limit      int           `json:"limit"` // 0 = all rows
	Rows       int           `json:"rows"`
	MatTime    time.Duration `json:"materialized_ns"`
	MatAlloc   uint64        `json:"materialized_alloc_bytes"`
	PipeTime   time.Duration `json:"pipelined_ns"`
	FirstRow   time.Duration `json:"pipelined_first_row_ns"`
	PipeAlloc  uint64        `json:"pipelined_alloc_bytes"`
	Batches    int           `json:"batches"`
	AllocRatio float64       `json:"alloc_ratio"`
}

// streamDB builds the Readings table on a fresh catalog.
func streamDB(cfg StreamConfig) (*query.DB, error) {
	db := query.Open()
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "value", Type: core.FloatType, Uncertain: true},
	)
	t := core.MustTable("readings", schema, nil, db.Registry())
	gen := workload.NewGen(cfg.Seed)
	for _, rd := range gen.Readings(cfg.Tuples) {
		if err := t.Insert(core.Row{
			Values: map[string]core.Value{"rid": core.Int(rd.RID)},
			PDFs:   []core.PDF{{Attrs: []string{"value"}, Dist: rd.Value}},
		}); err != nil {
			return nil, err
		}
	}
	if err := db.Attach(t); err != nil {
		return nil, err
	}
	return db, nil
}

// measureAlloc runs f between two GC-settled memory readings and returns
// its wall time and the bytes allocated while it ran.
func measureAlloc(f func() error) (time.Duration, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.TotalAlloc - m0.TotalAlloc, err
}

// Stream runs the experiment. Both strategies must agree on the row count —
// the differential suite already proves byte-identity; here the counts
// guard against measuring different queries.
func Stream(cfg StreamConfig) ([]StreamRow, error) {
	if cfg.Tuples == 0 {
		cfg = DefaultStream
	}
	db, err := streamDB(cfg)
	if err != nil {
		return nil, err
	}
	var out []StreamRow
	for _, limit := range cfg.Limits {
		// SELECT * rather than an explicit column list: a projection is a
		// pipeline breaker (phantom retention inspects tuple masses), which
		// would hide the streaming first-row behavior this experiment exists
		// to show. The WHERE conjunct passes every row but forces the legacy
		// executor through a full materializing Select.
		sql := "SELECT * FROM readings WHERE rid >= 0"
		if limit > 0 {
			sql = fmt.Sprintf("%s LIMIT %d", sql, limit)
		}

		db.SetLegacyExec(true)
		var matRows int
		matTime, matAlloc, err := measureAlloc(func() error {
			res, err := db.Exec(sql)
			if err != nil {
				return err
			}
			matRows = res.Table.Len()
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: stream limit=%d materialized: %w", limit, err)
		}

		db.SetLegacyExec(false)
		var pipeRows, batches int
		var firstRow time.Duration
		pipeTime, pipeAlloc, err := measureAlloc(func() error {
			start := time.Now()
			res, err := db.ExecStream(context.Background(), sql,
				func(hdr *core.Table, batch []*core.Tuple) error {
					if batches == 0 {
						firstRow = time.Since(start)
					}
					batches++
					pipeRows += len(batch)
					return nil
				})
			if err != nil {
				return err
			}
			if res.Affected != pipeRows {
				return fmt.Errorf("affected %d, streamed %d", res.Affected, pipeRows)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: stream limit=%d pipelined: %w", limit, err)
		}
		if matRows != pipeRows {
			return nil, fmt.Errorf("bench: stream limit=%d: materialized %d rows, pipelined %d",
				limit, matRows, pipeRows)
		}

		ratio := float64(matAlloc)
		if pipeAlloc > 0 {
			ratio = float64(matAlloc) / float64(pipeAlloc)
		}
		out = append(out, StreamRow{
			Limit:      limit,
			Rows:       pipeRows,
			MatTime:    matTime,
			MatAlloc:   matAlloc,
			PipeTime:   pipeTime,
			FirstRow:   firstRow,
			PipeAlloc:  pipeAlloc,
			Batches:    batches,
			AllocRatio: ratio,
		})
	}
	return out, nil
}

// FormatStream renders the experiment as a table.
func FormatStream(rows []StreamRow) string {
	s := "Pipelined executor: allocation and time-to-first-row vs materialization\n"
	s += fmt.Sprintf("%-8s %-8s %-12s %-12s %-12s %-12s %-12s %-8s %-8s\n",
		"limit", "rows", "mat time", "mat alloc", "pipe time", "first row", "pipe alloc", "batches", "ratio")
	for _, r := range rows {
		lim := fmt.Sprintf("%d", r.Limit)
		if r.Limit == 0 {
			lim = "all"
		}
		s += fmt.Sprintf("%-8s %-8d %-12v %-12s %-12v %-12v %-12s %-8d %-8.1f\n",
			lim, r.Rows,
			r.MatTime.Round(time.Microsecond), fmtBytes(r.MatAlloc),
			r.PipeTime.Round(time.Microsecond), r.FirstRow.Round(time.Microsecond),
			fmtBytes(r.PipeAlloc), r.Batches, r.AllocRatio)
	}
	return s
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
