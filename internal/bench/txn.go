package bench

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"probdb/internal/server"
)

// TxnConfig parameterizes the group-commit experiment: one persistent
// engine, swept over session counts; every session issues small autocommit
// INSERTs (each a transaction of its own) as fast as the WAL acks them. The
// quantity of interest is fsyncs per transaction — group commit exists to
// push it below 1 under concurrency — with commit latency and throughput
// alongside.
type TxnConfig struct {
	Sessions []int // concurrent committers per sweep point
	Commits  int   // commits per session
	Seed     int64
}

// DefaultTxn is the acceptance setup: 1..16 sessions, 300 commits each.
// The acceptance bar is fsyncs/txn < 1 from 8 sessions up.
var DefaultTxn = TxnConfig{
	Sessions: []int{1, 2, 4, 8, 16},
	Commits:  300,
	Seed:     20080412,
}

// TxnRow is one session-count sweep point.
type TxnRow struct {
	Sessions     int           `json:"sessions"`
	Commits      int           `json:"commits"`
	Wall         time.Duration `json:"wall_ns"`
	Fsyncs       uint64        `json:"fsyncs"`
	FsyncsPerTxn float64       `json:"fsyncs_per_txn"`
	MeanGroup    float64       `json:"mean_group_records"`
	MaxGroup     uint64        `json:"max_group_records"`
	MeanCommit   time.Duration `json:"mean_commit_latency_ns"`
	P95Commit    time.Duration `json:"p95_commit_latency_ns"`
	CommitsPerS  float64       `json:"commits_per_sec"`
}

// Txn runs the experiment. Each sweep point gets a fresh data directory so
// WAL growth from one point never shapes the next.
func Txn(cfg TxnConfig) ([]TxnRow, error) {
	if len(cfg.Sessions) == 0 {
		cfg = DefaultTxn
	}
	var out []TxnRow
	for _, n := range cfg.Sessions {
		row, err := txnPoint(n, cfg.Commits)
		if err != nil {
			return nil, fmt.Errorf("bench: txn sessions=%d: %w", n, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func txnPoint(sessions, commits int) (TxnRow, error) {
	dir, err := os.MkdirTemp("", "probdb-txnbench-*")
	if err != nil {
		return TxnRow{}, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck
	// Auto-checkpointing stays off: a checkpoint mid-sweep would fold the
	// WAL and pollute the fsync count with snapshot I/O.
	e, err := server.OpenEngine(server.EngineConfig{Dir: dir, PoolPages: 64, CheckpointBytes: -1})
	if err != nil {
		return TxnRow{}, err
	}
	defer e.Close() //nolint:errcheck
	if _, err := e.Execute("CREATE TABLE ingest (rid INT, value FLOAT UNCERTAIN)"); err != nil {
		return TxnRow{}, err
	}
	base := e.GroupCommitStats()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []time.Duration
		ferr error
	)
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ses := e.NewSession()
			defer ses.Close()
			local := make([]time.Duration, 0, commits)
			for i := 0; i < commits; i++ {
				rid := s*commits + i
				sql := fmt.Sprintf(
					"INSERT INTO ingest (rid, value) VALUES (%d, GAUSSIAN(%d, 4))", rid, 10+rid%50)
				t0 := time.Now()
				if _, err := ses.Execute(sql); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	if ferr != nil {
		return TxnRow{}, ferr
	}
	st := e.GroupCommitStats()
	fsyncs := st.Fsyncs - base.Fsyncs
	records := st.Records - base.Records
	total := sessions * commits
	if int(records) != total {
		return TxnRow{}, fmt.Errorf("WAL saw %d records, expected %d commits", records, total)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return TxnRow{
		Sessions:     sessions,
		Commits:      total,
		Wall:         wall,
		Fsyncs:       fsyncs,
		FsyncsPerTxn: float64(fsyncs) / float64(total),
		MeanGroup:    float64(records) / float64(fsyncs),
		MaxGroup:     st.MaxGroup,
		MeanCommit:   sum / time.Duration(len(lats)),
		P95Commit:    lats[len(lats)*95/100],
		CommitsPerS:  float64(total) / wall.Seconds(),
	}, nil
}

// FormatTxn renders the experiment as a table.
func FormatTxn(rows []TxnRow) string {
	s := "Group-commit WAL: fsyncs per transaction and commit latency vs concurrent sessions\n"
	s += fmt.Sprintf("%-10s %-9s %-10s %-8s %-11s %-10s %-10s %-12s %-12s\n",
		"sessions", "commits", "wall", "fsyncs", "fsyncs/txn", "avg group", "max group", "mean commit", "p95 commit")
	for _, r := range rows {
		s += fmt.Sprintf("%-10d %-9d %-10v %-8d %-11.3f %-10.1f %-10d %-12v %-12v\n",
			r.Sessions, r.Commits, r.Wall.Round(time.Millisecond), r.Fsyncs,
			r.FsyncsPerTxn, r.MeanGroup, r.MaxGroup,
			r.MeanCommit.Round(time.Microsecond), r.P95Commit.Round(time.Microsecond))
	}
	return s
}
