// Package btree is a disk-backed B+-tree over the storage engine's buffer
// pool: the access path for certain (precise) keys, complementing the
// probabilistic threshold index of internal/index. Keys are int64, values
// are heap RIDs; duplicate keys are allowed. The tree supports insertion
// with node splits and ordered range scans; deletion is by rebuild, which
// matches the append-mostly workloads of the benchmarks (and of the paper's
// sensor-feed setting).
package btree

import (
	"encoding/binary"
	"fmt"

	"probdb/internal/storage"
)

// Page layout. Page 0 is the meta page; all other pages are nodes.
//
//	meta:     magic uint32 | root uint32 | height uint16
//	node:     kind byte (0 leaf, 1 internal) | n uint16 | payload
//	leaf:     next uint32 | n × (key int64, page uint32, slot uint16)
//	internal: n × (key int64) | (n+1) × (child uint32)
const (
	magic = 0xB7EE0001

	metaRootOff   = 4
	metaHeightOff = 8

	nodeKindOff  = 0
	nodeCountOff = 1
	leafNextOff  = 3
	leafHdrSize  = 7
	leafEntry    = 14 // key 8 + page 4 + slot 2
	innerHdrSize = 3
	innerKey     = 8
	innerChild   = 4
)

// maxLeafEntries and maxInnerKeys are the node capacities for 8 KiB pages.
var (
	maxLeafEntries = (storage.PageSize - leafHdrSize) / leafEntry
	maxInnerKeys   = (storage.PageSize - innerHdrSize - innerChild) / (innerKey + innerChild)
)

// Tree is a B+-tree handle. It is not safe for concurrent writers.
type Tree struct {
	pool *storage.Pool
	root storage.PageID
	// height is the number of internal levels above the leaves (0 = the
	// root is a leaf).
	height int
}

// Create initializes a new tree in an empty pager.
func Create(pool *storage.Pool) (*Tree, error) {
	if pool == nil {
		return nil, fmt.Errorf("btree: nil pool")
	}
	metaID, meta, err := pool.PinNew()
	if err != nil {
		return nil, err
	}
	if metaID != 0 {
		pool.Unpin(metaID, false)
		return nil, fmt.Errorf("btree: Create requires an empty pager (meta landed on page %d)", metaID)
	}
	rootID, root, err := pool.PinNew()
	if err != nil {
		pool.Unpin(metaID, false)
		return nil, err
	}
	initLeaf(root)
	binary.LittleEndian.PutUint32(meta.Data[0:4], magic)
	binary.LittleEndian.PutUint32(meta.Data[metaRootOff:metaRootOff+4], uint32(rootID))
	binary.LittleEndian.PutUint16(meta.Data[metaHeightOff:metaHeightOff+2], 0)
	if err := pool.Unpin(rootID, true); err != nil {
		return nil, err
	}
	if err := pool.Unpin(metaID, true); err != nil {
		return nil, err
	}
	return &Tree{pool: pool, root: rootID}, nil
}

// Open loads an existing tree from its pager.
func Open(pool *storage.Pool) (*Tree, error) {
	meta, err := pool.Pin(0)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(0, false)
	if binary.LittleEndian.Uint32(meta.Data[0:4]) != magic {
		return nil, fmt.Errorf("btree: bad magic (not a btree file)")
	}
	return &Tree{
		pool:   pool,
		root:   storage.PageID(binary.LittleEndian.Uint32(meta.Data[metaRootOff : metaRootOff+4])),
		height: int(binary.LittleEndian.Uint16(meta.Data[metaHeightOff : metaHeightOff+2])),
	}, nil
}

// Height returns the number of internal levels (0 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

func initLeaf(p *storage.Page) {
	for i := range p.Data {
		p.Data[i] = 0
	}
	p.Data[nodeKindOff] = 0
	binary.LittleEndian.PutUint32(p.Data[leafNextOff:leafNextOff+4], 0)
}

func initInner(p *storage.Page) {
	for i := range p.Data {
		p.Data[i] = 0
	}
	p.Data[nodeKindOff] = 1
}

func nodeCount(p *storage.Page) int {
	return int(binary.LittleEndian.Uint16(p.Data[nodeCountOff : nodeCountOff+2]))
}

func setNodeCount(p *storage.Page, n int) {
	binary.LittleEndian.PutUint16(p.Data[nodeCountOff:nodeCountOff+2], uint16(n))
}

func leafKey(p *storage.Page, i int) int64 {
	off := leafHdrSize + i*leafEntry
	return int64(binary.LittleEndian.Uint64(p.Data[off : off+8]))
}

func leafRID(p *storage.Page, i int) storage.RID {
	off := leafHdrSize + i*leafEntry + 8
	return storage.RID{
		Page: storage.PageID(binary.LittleEndian.Uint32(p.Data[off : off+4])),
		Slot: binary.LittleEndian.Uint16(p.Data[off+4 : off+6]),
	}
}

func setLeafEntry(p *storage.Page, i int, key int64, rid storage.RID) {
	off := leafHdrSize + i*leafEntry
	binary.LittleEndian.PutUint64(p.Data[off:off+8], uint64(key))
	binary.LittleEndian.PutUint32(p.Data[off+8:off+12], uint32(rid.Page))
	binary.LittleEndian.PutUint16(p.Data[off+12:off+14], rid.Slot)
}

func leafNext(p *storage.Page) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(p.Data[leafNextOff : leafNextOff+4]))
}

func setLeafNext(p *storage.Page, id storage.PageID) {
	binary.LittleEndian.PutUint32(p.Data[leafNextOff:leafNextOff+4], uint32(id))
}

func innerKeyAt(p *storage.Page, i int) int64 {
	off := innerHdrSize + i*innerKey
	return int64(binary.LittleEndian.Uint64(p.Data[off : off+8]))
}

func setInnerKey(p *storage.Page, i int, key int64) {
	off := innerHdrSize + i*innerKey
	binary.LittleEndian.PutUint64(p.Data[off:off+8], uint64(key))
}

func innerChildAt(p *storage.Page, n, i int) storage.PageID {
	off := innerHdrSize + maxInnerKeys*innerKey + i*innerChild
	_ = n
	return storage.PageID(binary.LittleEndian.Uint32(p.Data[off : off+4]))
}

func setInnerChild(p *storage.Page, i int, id storage.PageID) {
	off := innerHdrSize + maxInnerKeys*innerKey + i*innerChild
	binary.LittleEndian.PutUint32(p.Data[off:off+4], uint32(id))
}

// Insert adds a key→rid entry. Duplicate keys are allowed and returned in
// insertion order within a key by Range.
func (t *Tree) Insert(key int64, rid storage.RID) error {
	promoted, newChild, err := t.insertInto(t.root, t.height, key, rid)
	if err != nil {
		return err
	}
	if newChild == 0 {
		return nil
	}
	// Root split: grow the tree by one level.
	newRootID, rootPage, err := t.pool.PinNew()
	if err != nil {
		return err
	}
	initInner(rootPage)
	setNodeCount(rootPage, 1)
	setInnerKey(rootPage, 0, promoted)
	setInnerChild(rootPage, 0, t.root)
	setInnerChild(rootPage, 1, newChild)
	if err := t.pool.Unpin(newRootID, true); err != nil {
		return err
	}
	t.root = newRootID
	t.height++
	return t.writeMeta()
}

func (t *Tree) writeMeta() error {
	meta, err := t.pool.Pin(0)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(meta.Data[metaRootOff:metaRootOff+4], uint32(t.root))
	binary.LittleEndian.PutUint16(meta.Data[metaHeightOff:metaHeightOff+2], uint16(t.height))
	return t.pool.Unpin(0, true)
}

// insertInto descends to the leaf, inserting and splitting upward. It
// returns the promoted separator key and the new right sibling's page ID
// when the node split (0 otherwise).
func (t *Tree) insertInto(id storage.PageID, level int, key int64, rid storage.RID) (int64, storage.PageID, error) {
	p, err := t.pool.Pin(id)
	if err != nil {
		return 0, 0, err
	}
	if level == 0 {
		sep, right, err2 := t.leafInsert(id, p, key, rid)
		return sep, right, err2
	}
	// Internal: find child.
	n := nodeCount(p)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if key < innerKeyAt(p, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	child := innerChildAt(p, n, lo)
	if err := t.pool.Unpin(id, false); err != nil {
		return 0, 0, err
	}
	promoted, newChild, err := t.insertInto(child, level-1, key, rid)
	if err != nil || newChild == 0 {
		return 0, 0, err
	}
	// Insert separator into this node (re-pin: the recursive call may have
	// evicted it).
	p, err = t.pool.Pin(id)
	if err != nil {
		return 0, 0, err
	}
	return t.innerInsert(id, p, lo, promoted, newChild)
}

func (t *Tree) leafInsert(id storage.PageID, p *storage.Page, key int64, rid storage.RID) (int64, storage.PageID, error) {
	n := nodeCount(p)
	// Position: after all entries with key <= new key (stable duplicates).
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if key < leafKey(p, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if n < maxLeafEntries {
		for i := n; i > lo; i-- {
			setLeafEntry(p, i, leafKey(p, i-1), leafRID(p, i-1))
		}
		setLeafEntry(p, lo, key, rid)
		setNodeCount(p, n+1)
		return 0, 0, t.pool.Unpin(id, true)
	}
	// Split: left keeps the first half, right gets the rest.
	rightID, right, err := t.pool.PinNew()
	if err != nil {
		t.pool.Unpin(id, false)
		return 0, 0, err
	}
	initLeaf(right)
	half := n / 2
	// Gather all n+1 entries in order, then redistribute.
	type entry struct {
		k int64
		r storage.RID
	}
	all := make([]entry, 0, n+1)
	for i := 0; i < n; i++ {
		if i == lo {
			all = append(all, entry{key, rid})
		}
		all = append(all, entry{leafKey(p, i), leafRID(p, i)})
	}
	if lo == n {
		all = append(all, entry{key, rid})
	}
	for i := 0; i < half; i++ {
		setLeafEntry(p, i, all[i].k, all[i].r)
	}
	setNodeCount(p, half)
	for i := half; i < len(all); i++ {
		setLeafEntry(right, i-half, all[i].k, all[i].r)
	}
	setNodeCount(right, len(all)-half)
	setLeafNext(right, leafNext(p))
	setLeafNext(p, rightID)
	sep := all[half].k
	if err := t.pool.Unpin(rightID, true); err != nil {
		return 0, 0, err
	}
	return sep, rightID, t.pool.Unpin(id, true)
}

func (t *Tree) innerInsert(id storage.PageID, p *storage.Page, at int, key int64, child storage.PageID) (int64, storage.PageID, error) {
	n := nodeCount(p)
	if n < maxInnerKeys {
		for i := n; i > at; i-- {
			setInnerKey(p, i, innerKeyAt(p, i-1))
		}
		for i := n + 1; i > at+1; i-- {
			setInnerChild(p, i, innerChildAt(p, n, i-1))
		}
		setInnerKey(p, at, key)
		setInnerChild(p, at+1, child)
		setNodeCount(p, n+1)
		return 0, 0, t.pool.Unpin(id, true)
	}
	// Split internal node.
	keys := make([]int64, 0, n+1)
	children := make([]storage.PageID, 0, n+2)
	for i := 0; i <= n; i++ {
		children = append(children, innerChildAt(p, n, i))
	}
	for i := 0; i < n; i++ {
		keys = append(keys, innerKeyAt(p, i))
	}
	keys = append(keys[:at], append([]int64{key}, keys[at:]...)...)
	children = append(children[:at+1], append([]storage.PageID{child}, children[at+1:]...)...)

	mid := len(keys) / 2
	sep := keys[mid]
	rightID, right, err := t.pool.PinNew()
	if err != nil {
		t.pool.Unpin(id, false)
		return 0, 0, err
	}
	initInner(right)
	// Left: keys[:mid], children[:mid+1].
	for i := 0; i < mid; i++ {
		setInnerKey(p, i, keys[i])
	}
	for i := 0; i <= mid; i++ {
		setInnerChild(p, i, children[i])
	}
	setNodeCount(p, mid)
	// Right: keys[mid+1:], children[mid+1:].
	rKeys := keys[mid+1:]
	rChildren := children[mid+1:]
	for i, k := range rKeys {
		setInnerKey(right, i, k)
	}
	for i, c := range rChildren {
		setInnerChild(right, i, c)
	}
	setNodeCount(right, len(rKeys))
	if err := t.pool.Unpin(rightID, true); err != nil {
		return 0, 0, err
	}
	return sep, rightID, t.pool.Unpin(id, true)
}

// Get returns the RIDs stored under key, in insertion order.
func (t *Tree) Get(key int64) ([]storage.RID, error) {
	var out []storage.RID
	err := t.Range(key, key, func(_ int64, rid storage.RID) error {
		out = append(out, rid)
		return nil
	})
	return out, err
}

// Range calls fn for every entry with lo <= key <= hi in key order
// (duplicates in insertion order). Returning a non-nil error from fn aborts
// the scan with that error.
func (t *Tree) Range(lo, hi int64, fn func(key int64, rid storage.RID) error) error {
	id := t.root
	// Descend to the leftmost leaf that may contain lo. The comparison is a
	// lower bound (equality goes left): duplicates of a separator key may
	// straddle the split, and the leaf chain walk below picks up the rest.
	for level := t.height; level > 0; level-- {
		p, err := t.pool.Pin(id)
		if err != nil {
			return err
		}
		n := nodeCount(p)
		a, b := 0, n
		for a < b {
			mid := (a + b) / 2
			if lo <= innerKeyAt(p, mid) {
				b = mid
			} else {
				a = mid + 1
			}
		}
		next := innerChildAt(p, n, a)
		if err := t.pool.Unpin(id, false); err != nil {
			return err
		}
		id = next
	}
	// Walk the leaf chain.
	for id != 0 {
		p, err := t.pool.Pin(id)
		if err != nil {
			return err
		}
		n := nodeCount(p)
		for i := 0; i < n; i++ {
			k := leafKey(p, i)
			if k < lo {
				continue
			}
			if k > hi {
				t.pool.Unpin(id, false)
				return nil
			}
			if err := fn(k, leafRID(p, i)); err != nil {
				t.pool.Unpin(id, false)
				return err
			}
		}
		next := leafNext(p)
		if err := t.pool.Unpin(id, false); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// Len returns the number of entries (by full scan — a statistic for tests
// and tools, not a hot path).
func (t *Tree) Len() (int, error) {
	n := 0
	err := t.Range(minInt64, maxInt64, func(int64, storage.RID) error {
		n++
		return nil
	})
	return n, err
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)
