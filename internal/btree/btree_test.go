package btree

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"probdb/internal/storage"
)

func memTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := Create(storage.NewPool(storage.NewMemPager(), 64))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func rid(n int) storage.RID {
	return storage.RID{Page: storage.PageID(n / 100), Slot: uint16(n % 100)}
}

func TestInsertAndGet(t *testing.T) {
	tr := memTree(t)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(int64(i*3), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		got, err := tr.Get(int64(i * 3))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != rid(i) {
			t.Fatalf("Get(%d) = %v", i*3, got)
		}
	}
	if got, _ := tr.Get(1); len(got) != 0 {
		t.Errorf("missing key returned %v", got)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := memTree(t)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(42, rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := tr.Get(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("duplicates = %d", len(got))
	}
}

// shrinkNodes temporarily reduces node capacities so small tests exercise
// deep trees.
func shrinkNodes(t *testing.T, leaf, inner int) {
	t.Helper()
	oldLeaf, oldInner := maxLeafEntries, maxInnerKeys
	maxLeafEntries, maxInnerKeys = leaf, inner
	t.Cleanup(func() { maxLeafEntries, maxInnerKeys = oldLeaf, oldInner })
}

func TestSplitsAndOrder(t *testing.T) {
	shrinkNodes(t, 16, 8) // 50k entries force a tree several levels deep
	tr := memTree(t)
	const n = 50_000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, k := range perm {
		if err := tr.Insert(int64(k), rid(k)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected a multi-level tree", tr.Height())
	}
	count, err := tr.Len()
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("Len = %d, want %d", count, n)
	}
	// Full scan returns sorted keys.
	prev := int64(-1)
	seen := 0
	err = tr.Range(minInt64, maxInt64, func(k int64, r storage.RID) error {
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if r != rid(int(k)) {
			t.Fatalf("key %d has rid %v", k, r)
		}
		prev = k
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("scanned %d", seen)
	}
	// Point lookups after heavy splitting.
	for _, k := range []int{0, 1, n / 2, n - 1} {
		got, err := tr.Get(int64(k))
		if err != nil || len(got) != 1 || got[0] != rid(k) {
			t.Fatalf("Get(%d) = %v, %v", k, got, err)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr := memTree(t)
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(int64(i), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	var keys []int64
	err := tr.Range(500, 600, func(k int64, _ storage.RID) error {
		keys = append(keys, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 101 || keys[0] != 500 || keys[100] != 600 {
		t.Fatalf("range = %d keys [%d..%d]", len(keys), keys[0], keys[len(keys)-1])
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Error("range keys unsorted")
	}
	// Empty range.
	n := 0
	tr.Range(10_000, 20_000, func(int64, storage.RID) error { n++; return nil })
	if n != 0 {
		t.Errorf("empty range returned %d", n)
	}
}

func TestRangeAbortsOnError(t *testing.T) {
	tr := memTree(t)
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i), rid(i))
	}
	n := 0
	err := tr.Range(0, 99, func(int64, storage.RID) error {
		n++
		if n == 5 {
			return errStop
		}
		return nil
	})
	if err != errStop || n != 5 {
		t.Errorf("abort: n=%d err=%v", n, err)
	}
}

var errStop = &stopErr{}

type stopErr struct{}

func (*stopErr) Error() string { return "stop" }

func TestNegativeKeys(t *testing.T) {
	tr := memTree(t)
	for _, k := range []int64{-5, -1, 0, 1, 5, minInt64 + 1, maxInt64 - 1} {
		if err := tr.Insert(k, rid(int(k&0xff))); err != nil {
			t.Fatal(err)
		}
	}
	var keys []int64
	tr.Range(minInt64, maxInt64, func(k int64, _ storage.RID) error {
		keys = append(keys, k)
		return nil
	})
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Errorf("negative keys unsorted: %v", keys)
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.pages")
	fp, err := storage.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := storage.NewPool(fp, 32)
	tr, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := tr.Insert(int64(i), rid(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	fp.Close()

	fp2, err := storage.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fp2.Close()
	tr2, err := Open(storage.NewPool(fp2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Height() != tr.Height() {
		t.Errorf("height %d != %d", tr2.Height(), tr.Height())
	}
	got, err := tr2.Get(4321)
	if err != nil || len(got) != 1 || got[0] != rid(4321) {
		t.Fatalf("Get after reopen = %v, %v", got, err)
	}
	n, _ := tr2.Len()
	if n != 5000 {
		t.Errorf("Len after reopen = %d", n)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	pool := storage.NewPool(storage.NewMemPager(), 8)
	id, pg, err := pool.PinNew()
	if err != nil {
		t.Fatal(err)
	}
	pg.Reset()
	pool.Unpin(id, true)
	if _, err := Open(pool); err == nil {
		t.Error("garbage meta page should fail Open")
	}
}

func TestCreateRequiresEmptyPager(t *testing.T) {
	pool := storage.NewPool(storage.NewMemPager(), 8)
	if _, err := Create(pool); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(pool); err == nil {
		t.Error("second Create on the same pager should fail")
	}
}

func TestRandomizedAgainstSortedMap(t *testing.T) {
	shrinkNodes(t, 16, 8)
	r := rand.New(rand.NewSource(99))
	tr := memTree(t)
	ref := map[int64][]storage.RID{}
	for i := 0; i < 20_000; i++ {
		k := int64(r.Intn(3000)) // plenty of duplicates
		v := rid(i)
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		ref[k] = append(ref[k], v)
	}
	for k, want := range ref {
		got, err := tr.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("key %d: %d vs %d rids", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("key %d rid %d: %v vs %v (insertion order lost)", k, i, got[i], want[i])
			}
		}
	}
}
