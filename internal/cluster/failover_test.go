package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"probdb/internal/server"
	"probdb/internal/wire"
)

// startReplica boots a read replica tailing leaderAddr's WAL.
func startReplica(t *testing.T, dir, leaderAddr string) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Addr: "127.0.0.1:0", DataDir: dir, ReplicaOf: leaderAddr,
		ReplicaPoll: 5 * time.Millisecond, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

// waitCaughtUp blocks until the replica's applied LSN reaches the leader's
// durable frontier — the precondition of every "replica has everything"
// assertion.
func waitCaughtUp(t *testing.T, leader, replica *server.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		want, err := leader.Engine().DurableLSN()
		if err != nil {
			t.Fatal(err)
		}
		if replica.Replica().LSN() >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at LSN %d, leader at %d", replica.Replica().LSN(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterLeaderKillReplicaFailover is the WAL-shipping acceptance test:
// every shard has a replica tailing its leader's WAL; after the leaders are
// crash-killed, the router must serve the same reads from the replicas —
// byte-identical to the answers the live leaders gave — while writes come
// back as typed retryable refusals.
func TestClusterLeaderKillReplicaFailover(t *testing.T) {
	h := newHarness(t, 2)
	replicas := make([]*server.Server, len(h.shards))
	for i, s := range h.shards {
		replicas[i] = startReplica(t, t.TempDir(), s.Addr().String())
		h.specs[i].Replica = replicas[i].Addr().String()
	}
	t.Cleanup(func() {
		for _, r := range replicas {
			r.Shutdown(context.Background()) //nolint:errcheck
		}
	})
	// Rebuild the router with the replica addresses wired in.
	if err := h.router.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.router = startRouter(t, h.dir, h.specs)
	addr := h.router.Addr().String()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	mustExec := func(sql string) {
		t.Helper()
		if _, err := c.Query(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE m (id INT, temp FLOAT UNCERTAIN, score FLOAT)`)
	for i := 0; i < 30; i++ {
		mustExec(fmt.Sprintf(
			`INSERT INTO m (id, temp, score) VALUES (%d, GAUSSIAN(%d.0, 2.0), %d.5)`, i, i, i%5))
	}
	mustExec(`DELETE FROM m WHERE score > 4.0`)

	queries := []string{
		`SELECT * FROM m`,
		`SELECT id, score FROM m ORDER BY score DESC LIMIT 8`,
		`SELECT * FROM m WHERE PROB(temp) >= 0.5 ORDER BY PROB(temp) LIMIT 6`,
		`SELECT * FROM m WHERE id = 3`,
	}
	before := make([]string, len(queries))
	for i, q := range queries {
		before[i] = render(t, addr, q)
	}

	// Let both replicas reach their leader's durable frontier, then crash
	// both leaders.
	for i := range h.shards {
		waitCaughtUp(t, h.shards[i], replicas[i])
	}
	h.killShard(0)
	h.killShard(1)

	// Reads must degrade to the replicas and return exactly what the live
	// leaders returned: the replicas hold every committed write. A fresh
	// connection proves failover works without prior session state.
	for i, q := range queries {
		if got := render(t, addr, q); got != before[i] {
			t.Fatalf("replica read diverged for %s\n--- replicas ---\n%s--- leaders ---\n%s", q, got, before[i])
		}
	}

	// Writes cannot degrade: the replica is read-only, so the router
	// refuses with a typed retryable error.
	_, err = c.Query(`INSERT INTO m (id, temp, score) VALUES (99, GAUSSIAN(1.0, 1.0), 0.5)`)
	var se *wire.ServerError
	if !errors.As(err, &se) || se.Code != wire.ErrShardUnavailable {
		t.Fatalf("write with dead leaders: %v, want ErrShardUnavailable", err)
	}
	if !se.Retryable() {
		t.Fatal("shard-unavailable must be retryable")
	}

	// HEALTH reflects the degradation.
	res, err := c.Query(`HEALTH`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "down") {
		t.Fatalf("router HEALTH after leader kill = %q", res.Message)
	}
}
