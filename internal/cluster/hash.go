package cluster

import (
	"hash/fnv"

	"probdb/internal/core"
)

// Partition maps a partition-key literal to its shard: FNV-1a over the
// value's canonical rendering, modulo the shard count. Hashing the rendered
// text (not the in-memory representation) keeps the mapping stable across
// process versions and independent of how the literal was spelled — the
// parser already canonicalized "1e1" and "10.0" into the same core.Value.
func Partition(v core.Value, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(v.Render())) //nolint:errcheck
	return int(h.Sum64() % uint64(shards))
}
