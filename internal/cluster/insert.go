package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"probdb/internal/query"
)

// GseqCol is the hidden column the router appends to every partitioned
// table: a router-assigned global sequence number, one per inserted row,
// issued under the router's DML lock. It gives the cluster a total
// insertion order — each shard's local storage order agrees with it, so a
// merge by (ORDER BY key, _gseq) reproduces the single-node result exactly,
// including stable-sort ties and top-k boundary ties. It is stripped from
// every result before rows reach the client.
const GseqCol = "_gseq"

// SplitInsert partitions one INSERT across the shards. Each row's partition
// key (its value for keyCol) is hashed to pick the owning shard, and the
// row's original source text — sliced out by the parser's own lexer, since
// pdf literals cannot be re-rendered — is forwarded verbatim with ", <seq>"
// injected before its closing paren. Row i gets sequence nextSeq+i, so the
// statement's row order is preserved in the global order. It returns the
// per-shard statements (keyed by shard index) and the next unused sequence.
func SplitInsert(sql string, st query.Insert, keyCol string, shards int, nextSeq int64) (map[int]string, int64, error) {
	keyIdx := -1
	for i, tgt := range st.Targets {
		for _, c := range tgt.Cols {
			if c == GseqCol {
				return nil, 0, fmt.Errorf("cluster: column %s is reserved for the router", GseqCol)
			}
			if c == keyCol {
				if tgt.Group {
					return nil, 0, fmt.Errorf("cluster: partition key %q cannot be part of a dependency group", keyCol)
				}
				keyIdx = i
			}
		}
	}
	if keyIdx < 0 {
		return nil, 0, fmt.Errorf("cluster: INSERT INTO %s must assign the partition key %q", st.Table, keyCol)
	}
	spans, err := query.InsertRowSpans(sql)
	if err != nil {
		return nil, 0, err
	}
	if len(spans) != len(st.Rows) {
		return nil, 0, fmt.Errorf("cluster: sliced %d VALUES rows, parsed %d", len(spans), len(st.Rows))
	}

	var prefix strings.Builder
	prefix.WriteString("INSERT INTO " + st.Table + " (")
	for i, tgt := range st.Targets {
		if i > 0 {
			prefix.WriteString(", ")
		}
		if tgt.Group {
			prefix.WriteString("(" + strings.Join(tgt.Cols, ", ") + ")")
		} else {
			prefix.WriteString(tgt.Cols[0])
		}
	}
	prefix.WriteString(", " + GseqCol + ") VALUES ")

	rows := make(map[int][]string, shards)
	for i, row := range st.Rows {
		lit, ok := row[keyIdx].(query.LitExpr)
		if !ok {
			return nil, 0, fmt.Errorf("cluster: partition key %q must be a plain literal, not a pdf", keyCol)
		}
		shard := Partition(lit.V, shards)
		text := sql[spans[i][0]:spans[i][1]]
		seq := strconv.FormatInt(nextSeq+int64(i), 10)
		rows[shard] = append(rows[shard], text[:len(text)-1]+", "+seq+")")
	}
	stmts := make(map[int]string, len(rows))
	for shard, rs := range rows {
		stmts[shard] = prefix.String() + strings.Join(rs, ", ")
	}
	return stmts, nextSeq + int64(len(st.Rows)), nil
}
