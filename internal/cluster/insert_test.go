package cluster

import (
	"strings"
	"testing"

	"probdb/internal/query"
)

func parseInsert(t *testing.T, sql string) query.Insert {
	t.Helper()
	stmt, err := query.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ins, ok := stmt.(query.Insert)
	if !ok {
		t.Fatalf("%q parsed to %T", sql, stmt)
	}
	return ins
}

func TestSplitInsertInjectsSequences(t *testing.T) {
	sql := `INSERT INTO t (id, temp) VALUES (1, GAUSSIAN(20.0, 1.0)), (2, 21.5), (3, 19.0)`
	st := parseInsert(t, sql)
	stmts, next, err := SplitInsert(sql, st, "id", 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if next != 103 {
		t.Fatalf("next seq = %d, want 103", next)
	}
	total := 0
	for shard, stmt := range stmts {
		if !strings.HasPrefix(stmt, "INSERT INTO t (id, temp, _gseq) VALUES ") {
			t.Fatalf("shard %d statement prefix wrong: %s", shard, stmt)
		}
		// Each forwarded statement must round-trip through the parser.
		re := parseInsert(t, stmt)
		total += len(re.Rows)
		for _, row := range re.Rows {
			if len(row) != 3 {
				t.Fatalf("shard %d row has %d values: %s", shard, len(row), stmt)
			}
		}
	}
	if total != 3 {
		t.Fatalf("split scattered %d rows, want 3", total)
	}
	// Sequences 100..102 must appear exactly once across the statements,
	// in the key rows they were assigned to.
	all := ""
	for _, stmt := range stmts {
		all += stmt + "\n"
	}
	for _, want := range []string{", 100)", ", 101)", ", 102)"} {
		if strings.Count(all, want) != 1 {
			t.Fatalf("sequence %q appears %d times in:\n%s", want, strings.Count(all, want), all)
		}
	}
	// The pdf literal must have been forwarded verbatim.
	if !strings.Contains(all, "GAUSSIAN(20.0, 1.0)") {
		t.Fatalf("pdf literal not preserved:\n%s", all)
	}
}

func TestSplitInsertGroupTargetsAndComments(t *testing.T) {
	sql := "INSERT INTO obs (site, (temp, hum)) VALUES -- a comment with (parens\n" +
		`('a''b', MVN((0, 0):((1, 0.5), (0.5, 1))));`
	st := parseInsert(t, sql)
	stmts, next, err := SplitInsert(sql, st, "site", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != 1 || len(stmts) != 1 {
		t.Fatalf("next=%d stmts=%v", next, stmts)
	}
	for _, stmt := range stmts {
		if !strings.Contains(stmt, "(site, (temp, hum), _gseq)") {
			t.Fatalf("group target list mangled: %s", stmt)
		}
		if !strings.Contains(stmt, "'a''b'") {
			t.Fatalf("escaped string mangled: %s", stmt)
		}
		re := parseInsert(t, stmt)
		if len(re.Rows) != 1 || len(re.Rows[0]) != 3 {
			t.Fatalf("forwarded statement reparse: %+v", re.Rows)
		}
	}
}

func TestSplitInsertRejections(t *testing.T) {
	cases := []struct {
		sql, key, wantErr string
	}{
		{`INSERT INTO t (id, v) VALUES (1, 2)`, "other", "must assign the partition key"},
		{`INSERT INTO t (id, _gseq) VALUES (1, 2)`, "id", "reserved"},
		{`INSERT INTO t ((id, v)) VALUES (MVN((0, 0):((1, 0), (0, 1))))`, "id", "dependency group"},
		{`INSERT INTO t (id, v) VALUES (GAUSSIAN(1.0, 1.0), 2)`, "id", "plain literal"},
	}
	for _, tc := range cases {
		st := parseInsert(t, tc.sql)
		_, _, err := SplitInsert(tc.sql, st, tc.key, 2, 0)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want %q", tc.sql, err, tc.wantErr)
		}
	}
}

func TestInsertRowSpans(t *testing.T) {
	sql := "INSERT INTO t (a, b) VALUES (1, 'x;(y'), (2, GAUSSIAN(0.0, 1.0)) ; "
	spans, err := query.InsertRowSpans(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if got := sql[spans[0][0]:spans[0][1]]; got != "(1, 'x;(y')" {
		t.Fatalf("span 0 = %q", got)
	}
	if got := sql[spans[1][0]:spans[1][1]]; got != "(2, GAUSSIAN(0.0, 1.0))" {
		t.Fatalf("span 1 = %q", got)
	}
	if _, err := query.InsertRowSpans("INSERT INTO t (a) VALUES (1) garbage"); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := query.InsertRowSpans("SELECT 1"); err == nil {
		t.Fatal("non-INSERT accepted")
	}
}
