// Package cluster is the scatter-gather layer over probserve shards: a
// router that hash-partitions every table across N shards by its first
// column, forwards DDL and DML to the shards that own the rows, and merges
// streamed SELECT results back into the single-node order — so a client
// speaking the ordinary wire protocol cannot tell the cluster from one
// server (the differential tests assert exactly that, byte for byte).
//
// The partition map lives in a checksummed manifest in the router's data
// directory, mirroring the engine's MANIFEST idiom: written to a tmp file,
// fsynced, renamed over the live file, directory fsynced — so at every
// instant exactly one complete partition map is visible. The shard count is
// fixed at cluster creation; reopening a manifest with a different count is
// refused (repartitioning would scatter existing rows to the wrong shards).
package cluster

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"probdb/internal/vfs"
)

const (
	manifestName   = "CLUSTER"
	manifestHeader = "probdb-cluster v1"
)

var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// TableEntry is one partitioned table in the manifest: its name, the
// partition-key column (always the first user column), and the full user
// column list in creation order — what the router expands SELECT * into,
// since the shards' physical tables carry the hidden _gseq column too.
type TableEntry struct {
	Name   string
	KeyCol string
	Cols   []string
}

// Manifest is the cluster's partition map.
type Manifest struct {
	Shards int
	Tables []TableEntry
}

// Lookup returns the entry for a table, or nil.
func (m *Manifest) Lookup(name string) *TableEntry {
	for i := range m.Tables {
		if m.Tables[i].Name == name {
			return &m.Tables[i]
		}
	}
	return nil
}

// encode renders the manifest in its line-oriented format:
//
//	probdb-cluster v1
//	shards 3
//	table readings temp temp,site,hum
//	crc 89ab12cd
//
// Column lists are comma-joined — identifiers cannot contain commas or
// whitespace, so every line stays Sscanf-safe.
func (m *Manifest) encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", manifestHeader)
	fmt.Fprintf(&b, "shards %d\n", m.Shards)
	sort.Slice(m.Tables, func(i, j int) bool { return m.Tables[i].Name < m.Tables[j].Name })
	for _, e := range m.Tables {
		fmt.Fprintf(&b, "table %s %s %s\n", e.Name, e.KeyCol, strings.Join(e.Cols, ","))
	}
	body := b.String()
	sum := crc32.Checksum([]byte(body), castagnoliTable)
	return []byte(fmt.Sprintf("%scrc %08x\n", body, sum))
}

func decodeManifest(raw []byte) (*Manifest, error) {
	text := string(raw)
	idx := strings.LastIndex(text, "crc ")
	if idx < 0 || idx > 0 && text[idx-1] != '\n' {
		return nil, fmt.Errorf("cluster: manifest has no checksum line")
	}
	body, tail := text[:idx], text[idx:]
	var sum uint32
	if _, err := fmt.Sscanf(tail, "crc %x", &sum); err != nil {
		return nil, fmt.Errorf("cluster: manifest checksum line: %w", err)
	}
	if got := crc32.Checksum([]byte(body), castagnoliTable); got != sum {
		return nil, fmt.Errorf("cluster: manifest checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 2 || lines[0] != manifestHeader {
		return nil, fmt.Errorf("cluster: manifest header %q unsupported", lines[0])
	}
	m := &Manifest{}
	if _, err := fmt.Sscanf(lines[1], "shards %d", &m.Shards); err != nil {
		return nil, fmt.Errorf("cluster: manifest shards line: %w", err)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("cluster: manifest names %d shards", m.Shards)
	}
	for _, ln := range lines[2:] {
		if !strings.HasPrefix(ln, "table ") {
			return nil, fmt.Errorf("cluster: manifest entry %q: unknown kind", ln)
		}
		var e TableEntry
		var cols string
		if _, err := fmt.Sscanf(ln, "table %s %s %s", &e.Name, &e.KeyCol, &cols); err != nil {
			return nil, fmt.Errorf("cluster: manifest entry %q: %w", ln, err)
		}
		e.Cols = strings.Split(cols, ",")
		m.Tables = append(m.Tables, e)
	}
	return m, nil
}

// ReadManifest loads and validates the router's partition map. A missing
// file returns os.ErrNotExist (a fresh cluster).
func ReadManifest(fsys vfs.FS, dir string) (*Manifest, error) {
	path := filepath.Join(dir, manifestName)
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	raw := make([]byte, st.Size())
	if _, err := f.ReadAt(raw, 0); err != nil && st.Size() > 0 {
		return nil, fmt.Errorf("cluster: read manifest: %w", err)
	}
	m, err := decodeManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return m, nil
}

// WriteManifest atomically replaces the partition map: tmp write, fsync,
// rename over the live file, directory fsync.
func WriteManifest(fsys vfs.FS, dir string, m *Manifest) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: manifest tmp: %w", err)
	}
	if _, err := f.WriteAt(m.encode(), 0); err != nil {
		f.Close()
		return fmt.Errorf("cluster: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("cluster: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("cluster: manifest rename: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("cluster: manifest dir sync: %w", err)
	}
	return nil
}
