package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probdb/internal/core"
	"probdb/internal/vfs"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Shards: 3,
		Tables: []TableEntry{
			{Name: "readings", KeyCol: "site", Cols: []string{"site", "temp", "hum"}},
			{Name: "events", KeyCol: "id", Cols: []string{"id", "kind"}},
		},
	}
	if err := WriteManifest(vfs.OS, dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 3 || len(got.Tables) != 2 {
		t.Fatalf("round trip lost shape: %+v", got)
	}
	// encode sorts entries by name, so events comes first.
	if got.Tables[0].Name != "events" || got.Tables[1].KeyCol != "site" {
		t.Fatalf("entries wrong: %+v", got.Tables)
	}
	if strings.Join(got.Tables[1].Cols, ",") != "site,temp,hum" {
		t.Fatalf("cols wrong: %v", got.Tables[1].Cols)
	}
	if e := got.Lookup("readings"); e == nil || e.KeyCol != "site" {
		t.Fatalf("Lookup(readings) = %+v", e)
	}
	if got.Lookup("nope") != nil {
		t.Fatal("Lookup(nope) found something")
	}
}

func TestManifestMissingIsNotExist(t *testing.T) {
	_, err := ReadManifest(vfs.OS, t.TempDir())
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("want os.ErrNotExist, got %v", err)
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(vfs.OS, dir, &Manifest{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the body: the checksum must catch it.
	raw[len(manifestHeader)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(vfs.OS, dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt manifest accepted: %v", err)
	}
	// Truncating away the checksum line must also refuse.
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(vfs.OS, dir); err == nil {
		t.Fatal("truncated manifest accepted")
	}
}

func TestPartitionStableAndInRange(t *testing.T) {
	vals := []core.Value{
		core.Int(0), core.Int(1), core.Int(-7), core.Int(1 << 40),
		core.Float(3.25), core.Str("alpha"), core.Str(""), core.Bool(true),
	}
	for _, v := range vals {
		p := Partition(v, 3)
		if p < 0 || p >= 3 {
			t.Fatalf("Partition(%v, 3) = %d out of range", v, p)
		}
		for i := 0; i < 10; i++ {
			if Partition(v, 3) != p {
				t.Fatalf("Partition(%v) unstable", v)
			}
		}
		if Partition(v, 1) != 0 {
			t.Fatal("single shard must map to 0")
		}
	}
	// The int 10 and the float 10.0 render differently ("10" vs "10"), so
	// check the equality the router actually relies on: the same literal
	// re-parsed maps to the same shard.
	if Partition(core.Int(42), 4) != Partition(core.Int(42), 4) {
		t.Fatal("unstable")
	}
	// Distribution sanity: 256 keys should hit every one of 4 shards.
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		seen[Partition(core.Int(int64(i)), 4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("256 int keys covered only %d/4 shards", len(seen))
	}
}
