package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"probdb/internal/core"
	"probdb/internal/pipe"
	"probdb/internal/query"
	"probdb/internal/wire"
)

// mergeBatchRows is how many merged rows the router accumulates before
// flushing a RowBatch frame to the client.
const mergeBatchRows = 256

// ordMode discriminates the merge key the scatter-gather uses.
type ordMode int

const (
	ordGseq  ordMode = iota // no ORDER BY: global insertion order
	ordValue                // ORDER BY col: certain value, NULLS LAST
	ordProb                 // ORDER BY PROB(col): marginal pdf mass
)

// mrow is one shard row staged in the merge, with its sort key decoded up
// front so the heap comparisons stay allocation-free.
type mrow struct {
	row  wire.Row
	val  core.Value
	prob float64
	gseq int64
}

// shardStream is one shard's open result stream plus the bookkeeping the
// error path needs: which shard, and whether the stream is being served by
// the replica.
type shardStream struct {
	shard   int
	replica bool
	st      *wire.Stream
	done    bool
}

// streamErr tags an error with the shard stream it came from so the merge's
// error path can gate the right shard.
type streamErr struct {
	ss  *shardStream
	err error
}

func (e *streamErr) Error() string { return e.err.Error() }
func (e *streamErr) Unwrap() error { return e.err }

// errClientGone aborts the merge when the router cannot write to its own
// client anymore; the session just ends.
var errClientGone = errors.New("cluster: client connection lost")

// scatterSelect executes one SELECT across the shards and streams the
// merged result to the client. The forwarded per-shard query carries the
// whole WHERE clause, the ORDER BY, and the LIMIT (pushdown: each shard
// filters and top-k's locally), plus the hidden _gseq column and — when
// absent from the projection — the ORDER BY column, both stripped again
// before rows reach the client. The merge key is (ORDER BY key, _gseq):
// each shard's stream is sorted under that composite (the engine's sort is
// stable and scan order is _gseq order), and the composite resolves
// cross-shard ties exactly the way a single node's stable sort resolves
// them — by insertion order.
func (s *session) scatterSelect(sel query.SelectStmt) bool {
	if sel.Agg != "" {
		return s.fail(fmt.Errorf("cluster: cross-shard aggregates are not supported through the router; connect to a shard"))
	}
	if len(sel.From) != 1 {
		return s.fail(fmt.Errorf("cluster: joins are not supported through the router"))
	}
	s.r.dml.Lock()
	entry := s.r.man.Lookup(sel.From[0].Name)
	s.r.dml.Unlock()
	if entry == nil {
		return s.fail(fmt.Errorf("cluster: no table %q", sel.From[0].Name))
	}

	userCols := sel.Cols
	if sel.Star {
		userCols = entry.Cols
	}

	// Rewrite the query the shards see: explicit projection with the
	// ORDER BY key (if hidden) and _gseq appended.
	fwd := sel
	fwd.Star = false
	fwd.Cols = append([]string{}, userCols...)
	mode := ordGseq
	keyIdx := -1
	if sel.OrderCol != "" {
		mode = ordValue
		if sel.OrderProb {
			mode = ordProb
		}
		for i, c := range userCols {
			if c == sel.OrderCol {
				keyIdx = i
				break
			}
		}
		if keyIdx < 0 {
			keyIdx = len(fwd.Cols)
			fwd.Cols = append(fwd.Cols, sel.OrderCol)
		}
	}
	gseqIdx := len(fwd.Cols)
	fwd.Cols = append(fwd.Cols, GseqCol)
	rendered, err := query.Render(fwd)
	if err != nil {
		return s.fail(err)
	}

	targets := s.pruneTargets(entry, sel.Where)
	streams := make([]*shardStream, 0, len(targets))
	defer func() {
		// Any stream not read to completion leaves its connection
		// desynchronized; discard those without gating the shard.
		for _, ss := range streams {
			if ss.done {
				continue
			}
			if ss.replica {
				s.dropReplica(ss.shard)
			} else {
				s.discardLeader(ss.shard)
			}
		}
	}()
	// Open the shard streams concurrently: QueryStream blocks until the
	// shard's first frame, and for sort/top-k queries that is the whole
	// per-shard execution — a sequential scatter would serialize the very
	// work sharding exists to spread out.
	type opened struct {
		ss  *shardStream
		err error
	}
	results := make([]opened, len(targets))
	var wg sync.WaitGroup
	for idx, i := range targets {
		wg.Add(1)
		go func(idx, i int) {
			defer wg.Done()
			ss, err := s.openStream(i, rendered)
			results[idx] = opened{ss, err}
		}(idx, i)
	}
	wg.Wait()
	var openErr error
	for _, o := range results {
		if o.ss != nil {
			streams = append(streams, o.ss)
		}
		if o.err != nil && openErr == nil {
			openErr = o.err
		}
	}
	if openErr != nil {
		return s.fail(openErr) // the deferred sweep discards the opened streams
	}

	// All shards run the same rewritten query, so any header describes the
	// merged stream; the appended key/_gseq columns are cut off.
	full := streams[0].st.Columns()
	if len(full) != len(fwd.Cols) {
		return s.fail(fmt.Errorf("cluster: shard %d returned %d columns, expected %d",
			streams[0].shard, len(full), len(fwd.Cols)))
	}
	header := full[:len(userCols)]
	name := streams[0].st.Name()
	if sel.Star {
		// SELECT * runs with no projection on a single node, but the
		// shards execute an explicit column list (to append _gseq), which
		// wraps the result name in one extra π(...). Peel it so the header
		// matches the single-node byte for byte.
		if inner, ok := strings.CutPrefix(name, "π("); ok {
			name = strings.TrimSuffix(inner, ")")
		}
	}

	cursors := make([]pipe.Cursor[mrow], len(streams))
	for i, ss := range streams {
		cursors[i] = s.rowCursor(ss, mode, keyIdx, gseqIdx)
	}
	less := makeLess(mode, sel.OrderDesc)
	limit := -1
	if sel.Limit != nil {
		limit = *sel.Limit
	}

	var (
		out     []wire.Row
		nextSeq uint64
	)
	flush := func() error {
		b := &wire.RowBatch{Seq: nextSeq, Rows: out}
		if nextSeq == 0 {
			b.Name, b.Cols = name, header
		}
		if !s.writeFrame(wire.FrameRowBatch, wire.EncodeRowBatch(b)) {
			return errClientGone
		}
		nextSeq++
		out = out[:0]
		return nil
	}
	emit := func(m mrow) error {
		m.row.Cells = m.row.Cells[:len(userCols)]
		out = append(out, m.row)
		if len(out) >= mergeBatchRows {
			return flush()
		}
		return nil
	}

	if err := pipe.MergeSorted(cursors, less, limit, emit); err != nil {
		if errors.Is(err, errClientGone) {
			return false
		}
		var se *streamErr
		if errors.As(err, &se) {
			se.ss.done = true // its connection is handled here, not by the deferred sweep
			return s.failStream(se)
		}
		return s.fail(err)
	}
	// Flush the tail — and always batch 0, so even an empty result carries
	// its header, exactly like a single server's stream.
	if len(out) > 0 || nextSeq == 0 {
		if err := flush(); err != nil {
			return false
		}
	}

	// Drain the leftovers a LIMIT cut off (bounded: the pushdown already
	// capped each shard at the limit) and sum the shards' stats.
	res := &wire.Result{}
	for _, ss := range streams {
		for {
			batch, err := ss.st.NextBatch()
			if err != nil {
				se := &streamErr{ss: ss, err: err}
				ss.done = true
				return s.failStream(se)
			}
			if batch == nil {
				break
			}
		}
		ss.done = true
		sres, err := ss.st.Result()
		if err != nil {
			return s.fail(err)
		}
		addStats(&res.Stats, sres.Stats)
	}
	// Stats stay cluster-wide sums: Rows is what the shards produced, not
	// what the merge delivered (they differ when a LIMIT cut the tail) —
	// it is how a client observes pushdown doing its job.
	return s.writeFrame(wire.FrameResultEnd, wire.EncodeResultEnd(res))
}

// failStream reports a mid-stream shard failure. A ServerError passes
// through unchanged (the shard's engine refused the query — same answer a
// single node would give); a transport failure gates the shard and becomes
// a retryable ErrShardUnavailable, because the client discards partial rows
// on an error frame and re-running a read is safe.
func (s *session) failStream(se *streamErr) bool {
	var serr *wire.ServerError
	if errors.As(se.err, &serr) {
		return s.fail(serr)
	}
	addr := s.r.shards[se.ss.shard].spec.Addr
	if se.ss.replica {
		addr = s.r.shards[se.ss.shard].spec.Replica
		s.dropReplica(se.ss.shard)
	} else {
		s.dropLeader(se.ss.shard)
	}
	return s.fail(&errShardUnavailable{
		shard: se.ss.shard,
		addr:  addr,
		cause: fmt.Errorf("shard died mid-stream (partial rows discarded): %w", se.err),
	})
}

// openStream starts the forwarded query on one shard, degrading from
// leader to replica when the leader is gated or unreachable. Engine errors
// (ServerError) do not fail over — the replica would refuse identically.
func (s *session) openStream(i int, sql string) (*shardStream, error) {
	var lastErr error
	if ok, _ := s.r.shards[i].available(); ok {
		c, err := s.leaderClient(i)
		if err == nil {
			st, err := c.QueryStream(sql)
			if err == nil {
				return &shardStream{shard: i, st: st}, nil
			}
			var se *wire.ServerError
			if errors.As(err, &se) {
				return nil, se
			}
			s.dropLeader(i)
		}
		lastErr = err
	}
	c, err := s.replicaClient(i)
	if err != nil {
		if lastErr != nil {
			var su *errShardUnavailable
			if errors.As(err, &su) && su.cause != nil {
				su.cause = fmt.Errorf("%v (leader: %v)", su.cause, lastErr)
			}
		}
		return nil, err
	}
	st, err := c.QueryStream(sql)
	if err != nil {
		var se *wire.ServerError
		if errors.As(err, &se) {
			return nil, se
		}
		s.dropReplica(i)
		return nil, &errShardUnavailable{shard: i, addr: s.r.shards[i].spec.Replica, cause: err}
	}
	return &shardStream{shard: i, replica: true, st: st}, nil
}

// rowCursor adapts one shard stream into a merge cursor, decoding each
// row's sort key as it is pulled.
func (s *session) rowCursor(ss *shardStream, mode ordMode, keyIdx, gseqIdx int) pipe.Cursor[mrow] {
	var buf []wire.Row
	return func() (mrow, bool, error) {
		if len(buf) == 0 {
			batch, err := ss.st.NextBatch()
			if err != nil {
				return mrow{}, false, &streamErr{ss: ss, err: err}
			}
			if batch == nil {
				ss.done = true
				return mrow{}, false, nil
			}
			buf = batch
		}
		r := buf[0]
		buf = buf[1:]
		m, err := makeMRow(ss.shard, r, mode, keyIdx, gseqIdx)
		if err != nil {
			return mrow{}, false, err
		}
		return m, true, nil
	}
}

func makeMRow(shard int, r wire.Row, mode ordMode, keyIdx, gseqIdx int) (mrow, error) {
	m := mrow{row: r}
	if gseqIdx >= len(r.Cells) {
		return m, fmt.Errorf("cluster: shard %d returned a %d-cell row, expected %d", shard, len(r.Cells), gseqIdx+1)
	}
	g := r.Cells[gseqIdx]
	if g.Kind != wire.CellValue || g.Value.Kind != core.IntValue {
		return m, fmt.Errorf("cluster: shard %d returned a malformed %s cell", shard, GseqCol)
	}
	m.gseq = g.Value.I
	switch mode {
	case ordValue:
		// The engine rejects ORDER BY over uncertain columns, so the key
		// cell is a plain value; an absent value sorts as NULL, exactly as
		// the single-node comparator sees it.
		if c := r.Cells[keyIdx]; c.Kind == wire.CellValue {
			m.val = c.Value
		} else {
			m.val = core.Null
		}
	case ordProb:
		// Key = the tuple's probability for the column: an uncertain
		// cell's marginal mass; certain cells contribute 1, like the
		// engine's Prob.
		m.prob = 1
		if c := r.Cells[keyIdx]; c.Kind == wire.CellPDF && c.PDF != nil {
			m.prob = c.PDF.Mass()
		}
	}
	return m, nil
}

// makeLess builds the composite merge comparator: the ORDER BY key first
// (NULLS LAST in both directions, incomparable values tying — mirroring the
// engine's comparator), then _gseq ascending. The _gseq tie-break is never
// flipped by DESC: a single node's stable sort keeps equal keys in
// insertion order regardless of direction.
func makeLess(mode ordMode, desc bool) func(a, b mrow) bool {
	return func(a, b mrow) bool {
		c := 0
		switch mode {
		case ordValue:
			an, bn := a.val.IsNull(), b.val.IsNull()
			switch {
			case an && bn:
			case an:
				c = 1
			case bn:
				c = -1
			default:
				if cc, ok := a.val.Compare(b.val); ok {
					c = cc
					if desc {
						c = -c
					}
				}
			}
		case ordProb:
			switch {
			case a.prob < b.prob:
				c = -1
			case a.prob > b.prob:
				c = 1
			}
			if desc {
				c = -c
			}
		}
		if c != 0 {
			return c < 0
		}
		return a.gseq < b.gseq
	}
}

// discardLeader closes a session's cached leader connection without gating
// the shard — for healthy streams abandoned when a sibling shard failed.
func (s *session) discardLeader(i int) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if c := s.leader[i]; c != nil {
		c.Close() //nolint:errcheck
		delete(s.leader, i)
	}
}
