package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"probdb/internal/core"
	"probdb/internal/govern"
	"probdb/internal/query"
	"probdb/internal/region"
	"probdb/internal/vfs"
	"probdb/internal/wire"
)

// ShardSpec names one shard: its leader and, optionally, a read replica the
// router degrades reads to when the leader is unreachable.
type ShardSpec struct {
	Addr    string
	Replica string
}

// Config tunes a Router. Zero values take the documented defaults.
type Config struct {
	// Addr is the TCP listen address, e.g. ":7433" (default) or
	// "127.0.0.1:0" for an ephemeral test port.
	Addr string
	// Shards is the fixed shard set in partition order. The count is
	// persisted in the manifest; reopening with a different count refuses.
	Shards []ShardSpec
	// Dir holds the checksummed partition manifest (required).
	Dir string
	// DialTimeout bounds one shard dial. Default 2s.
	DialTimeout time.Duration
	// CallTimeout bounds each shard round trip / stream frame. Default 30s.
	CallTimeout time.Duration
	// RetryAfterHint is the backoff suggested with ErrShardUnavailable
	// refusals. Default 250ms.
	RetryAfterHint time.Duration
	// MaxConns bounds concurrent client sessions. Default 64.
	MaxConns int
	// FS overrides the filesystem the manifest persists through (tests).
	FS vfs.FS
	// Logf, when set, receives router lifecycle and session errors.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.Addr == "" {
		c.Addr = ":7433"
	}
	if len(c.Shards) == 0 {
		return fmt.Errorf("cluster: no shards configured")
	}
	if c.Dir == "" {
		return fmt.Errorf("cluster: router needs a manifest directory")
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = 250 * time.Millisecond
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.FS == nil {
		c.FS = vfs.OS
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// shardState is the router's per-shard availability bookkeeping: after a
// transport failure the shard is gated behind a jittered exponential backoff
// so a dead shard costs each statement one refusal, not one dial timeout.
type shardState struct {
	spec ShardSpec

	mu        sync.Mutex
	fails     int
	gateUntil time.Time
}

// available reports whether the leader may be dialed now; when gated it
// returns the remaining wait as a client RetryAfter hint.
func (st *shardState) available() (bool, time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if wait := time.Until(st.gateUntil); wait > 0 {
		return false, wait
	}
	return true, 0
}

func (st *shardState) markDown() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.fails++
	st.gateUntil = time.Now().Add(govern.Backoff(st.fails-1, 250*time.Millisecond, 5*time.Second))
}

func (st *shardState) markUp() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.fails = 0
	st.gateUntil = time.Time{}
}

func (st *shardState) down() bool {
	ok, _ := st.available()
	return !ok
}

// errShardUnavailable is the router-side refusal behind wire's
// ErrShardUnavailable code: the statement either never reached the shard or
// its partial results were discarded, so resubmitting after the hint is safe.
type errShardUnavailable struct {
	shard int
	addr  string
	after time.Duration
	cause error
}

func (e *errShardUnavailable) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s) unavailable: %v", e.shard, e.addr, e.cause)
}

// Router is the cluster front end: it speaks the ordinary wire protocol to
// clients and to shards, hash-partitions DML by each table's first column,
// and merges streamed SELECT results back into single-node order. DML is
// serialized under one router-wide lock — that is what makes the hidden
// _gseq sequence agree with every shard's local storage order, which the
// SELECT merge depends on.
type Router struct {
	cfg Config
	man *Manifest
	ln  net.Listener

	quit   chan struct{}
	grp    sync.WaitGroup
	sessWG sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	// dml serializes every mutating statement and guards man + gseq.
	dml sync.Mutex
	// gseq is the next unissued sequence per table; absent means unknown
	// (recovered lazily from the shards' max _gseq on first INSERT).
	gseq map[string]int64

	shards []*shardState
}

// NewRouter opens (or creates) the partition manifest and builds the router
// without listening yet.
func NewRouter(cfg Config) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	man, err := ReadManifest(cfg.FS, cfg.Dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		man = &Manifest{Shards: len(cfg.Shards)}
		if err := WriteManifest(cfg.FS, cfg.Dir, man); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	case man.Shards != len(cfg.Shards):
		return nil, fmt.Errorf("cluster: manifest partitions across %d shards, config names %d (repartitioning is not supported)",
			man.Shards, len(cfg.Shards))
	}
	r := &Router{
		cfg:   cfg,
		man:   man,
		quit:  make(chan struct{}),
		conns: map[net.Conn]struct{}{},
		gseq:  map[string]int64{},
	}
	for _, spec := range cfg.Shards {
		r.shards = append(r.shards, &shardState{spec: spec})
	}
	return r, nil
}

// Start binds the listener and launches the accept loop.
func (r *Router) Start() error {
	ln, err := net.Listen("tcp", r.cfg.Addr)
	if err != nil {
		return err
	}
	r.ln = ln
	r.grp.Add(1)
	go r.acceptLoop()
	r.cfg.Logf("probrouter: listening on %s (%d shards)", ln.Addr(), len(r.shards))
	return nil
}

// Addr returns the bound listen address (after Start).
func (r *Router) Addr() net.Addr { return r.ln.Addr() }

// Shutdown stops accepting connections and waits for sessions to drain; if
// ctx expires first, remaining connections are severed.
func (r *Router) Shutdown(ctx context.Context) error {
	close(r.quit)
	r.ln.Close() //nolint:errcheck
	r.mu.Lock()
	for c := range r.conns {
		c.SetReadDeadline(time.Now()) //nolint:errcheck
	}
	r.mu.Unlock()
	drained := make(chan struct{})
	go func() { r.sessWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
		r.mu.Lock()
		for c := range r.conns {
			c.Close() //nolint:errcheck
		}
		r.mu.Unlock()
		<-drained
	}
	r.grp.Wait()
	r.cfg.Logf("probrouter: shut down")
	return nil
}

func (r *Router) stopping() bool {
	select {
	case <-r.quit:
		return true
	default:
		return false
	}
}

func (r *Router) acceptLoop() {
	defer r.grp.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			if r.stopping() {
				return
			}
			r.cfg.Logf("probrouter: accept: %v", err)
			return
		}
		r.mu.Lock()
		if len(r.conns) >= r.cfg.MaxConns {
			r.mu.Unlock()
			conn.SetWriteDeadline(time.Now().Add(2 * time.Second))                         //nolint:errcheck
			wire.WriteFrame(conn, wire.FrameError, []byte("router: too many connections")) //nolint:errcheck
			conn.Close()                                                                   //nolint:errcheck
			continue
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.sessWG.Add(1)
		go r.session(conn)
	}
}

// session is one client connection's state: the frame loop plus cached
// shard connections. wire.Client is single-request, so each session owns
// its own — concurrent sessions scatter over separate connections. cmu
// guards the two maps: a scatter opens its shard streams from concurrent
// goroutines (one per shard, so two goroutines never share a client, but
// map headers still need the lock).
type session struct {
	r       *Router
	conn    net.Conn
	bw      *bufio.Writer
	cmu     sync.Mutex
	leader  map[int]*wire.Client
	replica map[int]*wire.Client
}

func (s *session) cachedLeader(i int) *wire.Client {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.leader[i]
}

func (s *session) cachedReplica(i int) *wire.Client {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.replica[i]
}

func (r *Router) session(conn net.Conn) {
	defer r.sessWG.Done()
	s := &session{
		r: r, conn: conn, bw: bufio.NewWriter(conn),
		leader: map[int]*wire.Client{}, replica: map[int]*wire.Client{},
	}
	defer func() {
		s.cmu.Lock()
		for _, c := range s.leader {
			c.Close() //nolint:errcheck
		}
		for _, c := range s.replica {
			c.Close() //nolint:errcheck
		}
		s.cmu.Unlock()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		conn.Close() //nolint:errcheck
	}()
	defer func() {
		if p := recover(); p != nil {
			r.cfg.Logf("probrouter: session panicked: %v\n%s", p, debug.Stack())
		}
	}()
	br := bufio.NewReader(conn)
	for {
		if r.stopping() {
			return
		}
		ft, payload, err := wire.ReadFrame(br)
		if err != nil {
			if !isDisconnect(err) && !r.stopping() {
				s.writeFrame(wire.FrameError, []byte("protocol: "+err.Error()))
			}
			return
		}
		switch ft {
		case wire.FramePing:
			if !s.writeFrame(wire.FramePong, nil) {
				return
			}
		case wire.FrameQuery:
			if !s.handleQuery(string(payload)) {
				return
			}
		default:
			if !s.writeFrame(wire.FrameError,
				[]byte(fmt.Sprintf("protocol: unexpected %v frame", ft))) {
				return
			}
		}
	}
}

// writeFrame writes one response frame under a write deadline; false means
// the client is gone and the session should end.
func (s *session) writeFrame(ft wire.FrameType, payload []byte) bool {
	s.conn.SetWriteDeadline(time.Now().Add(s.r.cfg.CallTimeout)) //nolint:errcheck
	if err := wire.WriteFrame(s.bw, ft, payload); err != nil {
		return false
	}
	return s.bw.Flush() == nil
}

// fail writes err as an Error frame: shard ServerErrors pass through with
// their code and hint intact, router refusals carry ErrShardUnavailable,
// everything else is generic.
func (s *session) fail(err error) bool {
	var (
		se *wire.ServerError
		su *errShardUnavailable
	)
	switch {
	case errors.As(err, &se):
		return s.writeFrame(wire.FrameError, wire.EncodeError(se.Code, se.RetryAfter, se.Msg))
	case errors.As(err, &su):
		after := su.after
		if after <= 0 {
			after = s.r.cfg.RetryAfterHint
		}
		return s.writeFrame(wire.FrameError, wire.EncodeError(wire.ErrShardUnavailable, after, su.Error()))
	}
	return s.writeFrame(wire.FrameError, wire.EncodeError(wire.ErrGeneric, 0, err.Error()))
}

func (s *session) result(res *wire.Result) bool {
	return s.writeFrame(wire.FrameResult, wire.EncodeResult(res))
}

// handleQuery routes one statement. It reports whether the session should
// continue.
func (s *session) handleQuery(sql string) bool {
	trimmed := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
	switch {
	case strings.EqualFold(trimmed, "HEALTH"):
		return s.result(s.r.healthResult())
	case strings.EqualFold(trimmed, "CHECKPOINT"):
		res, err := s.fanoutWrite(nil, sql, "checkpointed")
		if err != nil {
			return s.fail(err)
		}
		return s.result(res)
	}
	stmt, err := query.Parse(sql)
	if err != nil {
		return s.fail(err)
	}
	if err := rejectGseq(stmt); err != nil {
		return s.fail(err)
	}
	switch st := stmt.(type) {
	case query.SelectStmt:
		return s.scatterSelect(st)
	case query.CreateTable:
		res, err := s.createTable(st)
		if err != nil {
			return s.fail(err)
		}
		return s.result(res)
	case query.Insert:
		res, err := s.insert(sql, st)
		if err != nil {
			return s.fail(err)
		}
		return s.result(res)
	case query.Delete:
		res, err := s.deleteRows(st)
		if err != nil {
			return s.fail(err)
		}
		return s.result(res)
	case query.Drop:
		res, err := s.dropTable(st)
		if err != nil {
			return s.fail(err)
		}
		return s.result(res)
	case query.Analyze, query.CreateIndex:
		rendered, err := query.Render(stmt)
		if err != nil {
			return s.fail(err)
		}
		res, err := s.fanoutWrite(nil, rendered, "")
		if err != nil {
			return s.fail(err)
		}
		return s.result(res)
	case query.ShowTables, query.Describe:
		rendered, err := query.Render(stmt)
		if err != nil {
			return s.fail(err)
		}
		res, err := s.readAny(rendered)
		if err != nil {
			return s.fail(err)
		}
		return s.result(res)
	case query.Explain:
		return s.fail(fmt.Errorf("cluster: EXPLAIN is not supported through the router; connect to a shard"))
	case query.Begin, query.Commit, query.Rollback:
		return s.fail(fmt.Errorf("cluster: transactions are single-shard; connect to a shard directly"))
	}
	return s.fail(fmt.Errorf("cluster: unsupported statement %T", stmt))
}

// rejectGseq refuses any user statement that names the router's hidden
// column — it exists only between router and shards.
func rejectGseq(stmt query.Stmt) error {
	reserved := fmt.Errorf("cluster: column %s is reserved for the router", GseqCol)
	mentions := func(conds []query.Cond) bool {
		for _, c := range conds {
			if c.Left.Col == GseqCol || c.Right.Col == GseqCol {
				return true
			}
			for _, pc := range c.ProbCols {
				if pc == GseqCol {
					return true
				}
			}
		}
		return false
	}
	switch st := stmt.(type) {
	case query.SelectStmt:
		for _, c := range st.Cols {
			if c == GseqCol {
				return reserved
			}
		}
		if st.OrderCol == GseqCol || st.AggCol == GseqCol || mentions(st.Where) {
			return reserved
		}
	case query.CreateTable:
		for _, c := range st.Cols {
			if c.Name == GseqCol {
				return reserved
			}
		}
	case query.Delete:
		if mentions(st.Where) {
			return reserved
		}
	case query.CreateIndex:
		if st.Col == GseqCol {
			return reserved
		}
	case query.Insert:
		// SplitInsert checks the target list.
	}
	return nil
}

// leaderClient returns the session's cached connection to a shard's leader,
// dialing if needed. A gated (recently failed) shard refuses immediately.
func (s *session) leaderClient(i int) (*wire.Client, error) {
	if c := s.cachedLeader(i); c != nil {
		return c, nil
	}
	st := s.r.shards[i]
	ok, wait := st.available()
	if !ok {
		return nil, &errShardUnavailable{shard: i, addr: st.spec.Addr, after: wait,
			cause: fmt.Errorf("backing off after earlier failure")}
	}
	conn, err := net.DialTimeout("tcp", st.spec.Addr, s.r.cfg.DialTimeout)
	if err != nil {
		st.markDown()
		return nil, &errShardUnavailable{shard: i, addr: st.spec.Addr, cause: err}
	}
	st.markUp()
	c := wire.NewClient(conn)
	c.SetCallTimeout(s.r.cfg.CallTimeout)
	s.cmu.Lock()
	s.leader[i] = c
	s.cmu.Unlock()
	return c, nil
}

// replicaClient dials a shard's read replica (reads only).
func (s *session) replicaClient(i int) (*wire.Client, error) {
	if c := s.cachedReplica(i); c != nil {
		return c, nil
	}
	spec := s.r.shards[i].spec
	if spec.Replica == "" {
		return nil, &errShardUnavailable{shard: i, addr: spec.Addr,
			cause: fmt.Errorf("leader unreachable and no replica configured")}
	}
	conn, err := net.DialTimeout("tcp", spec.Replica, s.r.cfg.DialTimeout)
	if err != nil {
		return nil, &errShardUnavailable{shard: i, addr: spec.Replica, cause: err}
	}
	c := wire.NewClient(conn)
	c.SetCallTimeout(s.r.cfg.CallTimeout)
	s.cmu.Lock()
	s.replica[i] = c
	s.cmu.Unlock()
	return c, nil
}

// ensureLeader makes sure the session holds a live leader connection
// before a write executes anywhere: a cached connection is pinged (it may
// have died since last use — a stale socket must become an up-front typed
// refusal, not a mid-write ambiguity), a missing one is dialed.
func (s *session) ensureLeader(i int) error {
	if c := s.cachedLeader(i); c != nil {
		if err := c.Ping(); err == nil {
			return nil
		}
		s.discardLeader(i)
	}
	_, err := s.leaderClient(i)
	return err
}

// dropLeader discards a session's leader connection after a transport
// failure and gates the shard.
func (s *session) dropLeader(i int) {
	s.cmu.Lock()
	if c := s.leader[i]; c != nil {
		c.Close() //nolint:errcheck
		delete(s.leader, i)
	}
	s.cmu.Unlock()
	s.r.shards[i].markDown()
}

func (s *session) dropReplica(i int) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if c := s.replica[i]; c != nil {
		c.Close() //nolint:errcheck
		delete(s.replica, i)
	}
}

// writeShard runs one statement on one shard leader. A transport failure
// gates the shard and reports whether anything may have executed.
func (s *session) writeShard(i int, sql string) (*wire.Result, error) {
	c, err := s.leaderClient(i)
	if err != nil {
		return nil, err
	}
	res, err := c.Query(sql)
	if err != nil {
		var se *wire.ServerError
		if errors.As(err, &se) {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, se)
		}
		s.dropLeader(i)
		return nil, fmt.Errorf("cluster: shard %d (%s) died mid-write; the statement may be partially applied: %w",
			i, s.r.shards[i].spec.Addr, err)
	}
	return res, nil
}

// fanoutWrite runs one statement on every shard (or the given subset),
// sequentially in shard order, under the router's DML lock. All target
// shards must be reachable before anything executes — a known-dead shard
// refuses the whole statement up front with a retryable error rather than
// leaving the cluster half-applied.
func (s *session) fanoutWrite(targets []int, sql, msg string) (*wire.Result, error) {
	s.r.dml.Lock()
	defer s.r.dml.Unlock()
	return s.fanoutWriteLocked(targets, sql, msg)
}

func (s *session) fanoutWriteLocked(targets []int, sql, msg string) (*wire.Result, error) {
	if targets == nil {
		for i := range s.r.shards {
			targets = append(targets, i)
		}
	}
	for _, i := range targets {
		if err := s.ensureLeader(i); err != nil {
			return nil, err
		}
	}
	out := &wire.Result{Message: msg}
	for _, i := range targets {
		res, err := s.writeShard(i, sql)
		if err != nil {
			return nil, err
		}
		out.Affected += res.Affected
		addStats(&out.Stats, res.Stats)
		if out.Message == "" {
			out.Message = res.Message
		}
	}
	return out, nil
}

// readAny runs one statement on the first reachable shard, degrading from
// leader to replica per shard — for catalog reads any shard's answer is
// authoritative, since DDL fans out to all of them.
func (s *session) readAny(sql string) (*wire.Result, error) {
	var lastErr error
	for i := range s.r.shards {
		if ok, _ := s.r.shards[i].available(); ok {
			c, err := s.leaderClient(i)
			if err == nil {
				res, err := c.Query(sql)
				if err == nil {
					return res, nil
				}
				var se *wire.ServerError
				if errors.As(err, &se) {
					return nil, se
				}
				s.dropLeader(i)
			}
			lastErr = err
		}
		c, err := s.replicaClient(i)
		if err != nil {
			lastErr = err
			continue
		}
		res, err := c.Query(sql)
		if err == nil {
			return res, nil
		}
		var se *wire.ServerError
		if errors.As(err, &se) {
			return nil, se
		}
		s.dropReplica(i)
		lastErr = err
	}
	return nil, fmt.Errorf("cluster: no shard reachable: %w", lastErr)
}

func (s *session) createTable(st query.CreateTable) (*wire.Result, error) {
	if len(st.Cols) == 0 {
		return nil, fmt.Errorf("cluster: CREATE TABLE needs at least one column")
	}
	key := st.Cols[0]
	if key.Uncertain {
		return nil, fmt.Errorf("cluster: partition key %q (the first column) must be certain", key.Name)
	}
	s.r.dml.Lock()
	defer s.r.dml.Unlock()
	if s.r.man.Lookup(st.Name) != nil {
		return nil, fmt.Errorf("cluster: table %q already exists", st.Name)
	}
	shardStmt := st
	shardStmt.Cols = append(append([]core.Column{}, st.Cols...), core.Column{Name: GseqCol, Type: core.IntType})
	rendered, err := query.Render(shardStmt)
	if err != nil {
		return nil, err
	}
	res, err := s.fanoutWriteLocked(nil, rendered, "")
	if err != nil {
		return nil, err
	}
	entry := TableEntry{Name: st.Name, KeyCol: key.Name}
	for _, c := range st.Cols {
		entry.Cols = append(entry.Cols, c.Name)
	}
	s.r.man.Tables = append(s.r.man.Tables, entry)
	if err := WriteManifest(s.r.cfg.FS, s.r.cfg.Dir, s.r.man); err != nil {
		return nil, err
	}
	s.r.gseq[st.Name] = 0
	return res, nil
}

func (s *session) dropTable(st query.Drop) (*wire.Result, error) {
	s.r.dml.Lock()
	defer s.r.dml.Unlock()
	if s.r.man.Lookup(st.Name) == nil {
		return nil, fmt.Errorf("cluster: no table %q", st.Name)
	}
	res, err := s.fanoutWriteLocked(nil, "DROP TABLE "+st.Name, "")
	if err != nil {
		return nil, err
	}
	for i, e := range s.r.man.Tables {
		if e.Name == st.Name {
			s.r.man.Tables = append(s.r.man.Tables[:i], s.r.man.Tables[i+1:]...)
			break
		}
	}
	if err := WriteManifest(s.r.cfg.FS, s.r.cfg.Dir, s.r.man); err != nil {
		return nil, err
	}
	delete(s.r.gseq, st.Name)
	return res, nil
}

func (s *session) deleteRows(st query.Delete) (*wire.Result, error) {
	entry := s.r.man.Lookup(st.Table)
	if entry == nil {
		return nil, fmt.Errorf("cluster: no table %q", st.Table)
	}
	rendered, err := query.Render(st)
	if err != nil {
		return nil, err
	}
	targets := s.pruneTargets(entry, st.Where)
	res, err := s.fanoutWrite(targets, rendered, "")
	if err != nil {
		return nil, err
	}
	if res.Message == "" || len(targets) != 1 {
		res.Message = fmt.Sprintf("deleted %d", res.Affected)
	}
	return res, nil
}

func (s *session) insert(sql string, st query.Insert) (*wire.Result, error) {
	entry := s.r.man.Lookup(st.Table)
	if entry == nil {
		return nil, fmt.Errorf("cluster: no table %q", st.Table)
	}
	s.r.dml.Lock()
	defer s.r.dml.Unlock()
	next, err := s.nextSeqLocked(st.Table)
	if err != nil {
		return nil, err
	}
	stmts, advanced, err := SplitInsert(sql, st, entry.KeyCol, len(s.r.shards), next)
	if err != nil {
		return nil, err
	}
	targets := make([]int, 0, len(stmts))
	for i := range stmts {
		targets = append(targets, i)
	}
	sort.Ints(targets)
	for _, i := range targets {
		if err := s.ensureLeader(i); err != nil {
			return nil, err
		}
	}
	out := &wire.Result{}
	for _, i := range targets {
		res, err := s.writeShard(i, stmts[i])
		if err != nil {
			return nil, err
		}
		out.Affected += res.Affected
		addStats(&out.Stats, res.Stats)
	}
	s.r.gseq[st.Table] = advanced
	out.Message = fmt.Sprintf("inserted %d", out.Affected)
	return out, nil
}

// nextSeqLocked returns the table's next unissued sequence, recovering it
// from the shards' max _gseq after a router restart. Recovery reads each
// shard (replica fallback included), so a freshly restarted router can
// resume issuing sequences above every live row's.
func (s *session) nextSeqLocked(table string) (int64, error) {
	if next, ok := s.r.gseq[table]; ok {
		return next, nil
	}
	probe := fmt.Sprintf("SELECT %s FROM %s ORDER BY %s DESC LIMIT 1", GseqCol, table, GseqCol)
	var next int64
	for i := range s.r.shards {
		res, err := s.shardRead(i, probe)
		if err != nil {
			return 0, fmt.Errorf("cluster: recovering %s sequence: %w", table, err)
		}
		for _, row := range res.Table.Rows {
			if len(row.Cells) == 1 && row.Cells[0].Kind == wire.CellValue {
				if g := row.Cells[0].Value.I; g+1 > next {
					next = g + 1
				}
			}
		}
	}
	s.r.gseq[table] = next
	return next, nil
}

// shardRead runs one read on a specific shard, leader first, degrading to
// its replica.
func (s *session) shardRead(i int, sql string) (*wire.Result, error) {
	if ok, _ := s.r.shards[i].available(); ok {
		c, err := s.leaderClient(i)
		if err == nil {
			res, err := c.Query(sql)
			if err == nil {
				return res, nil
			}
			var se *wire.ServerError
			if errors.As(err, &se) {
				return nil, se
			}
			s.dropLeader(i)
		}
	}
	c, err := s.replicaClient(i)
	if err != nil {
		return nil, err
	}
	res, err := c.Query(sql)
	if err != nil {
		var se *wire.ServerError
		if errors.As(err, &se) {
			return nil, se
		}
		s.dropReplica(i)
		return nil, &errShardUnavailable{shard: i, addr: s.r.shards[i].spec.Replica, cause: err}
	}
	return res, nil
}

// pruneTargets narrows a statement's shard set: an equality conjunct on the
// partition key means only the key's hash shard can hold matching rows.
func (s *session) pruneTargets(entry *TableEntry, where []query.Cond) []int {
	for _, c := range where {
		if c.Kind != query.CondCmp || c.Op != region.EQ {
			continue
		}
		var lit core.Value
		switch {
		case c.Left.IsCol && c.Left.Col == entry.KeyCol && !c.Right.IsCol:
			lit = c.Right.Lit
		case c.Right.IsCol && c.Right.Col == entry.KeyCol && !c.Left.IsCol:
			lit = c.Left.Lit
		default:
			continue
		}
		return []int{Partition(lit, len(s.r.shards))}
	}
	targets := make([]int, len(s.r.shards))
	for i := range targets {
		targets[i] = i
	}
	return targets
}

// healthResult composes the router's HEALTH report: the partition map size
// and each shard's availability.
func (r *Router) healthResult() *wire.Result {
	var b strings.Builder
	r.dml.Lock()
	tables := len(r.man.Tables)
	r.dml.Unlock()
	fmt.Fprintf(&b, "router: %d shards, %d tables\n", len(r.shards), tables)
	for i, st := range r.shards {
		status := "up"
		if st.down() {
			status = "down"
		}
		rep := ""
		if st.spec.Replica != "" {
			rep = fmt.Sprintf(" (replica %s)", st.spec.Replica)
		}
		fmt.Fprintf(&b, "shard %d: %s %s%s\n", i, st.spec.Addr, status, rep)
	}
	return &wire.Result{Message: strings.TrimRight(b.String(), "\n")}
}

// addStats sums shard-side execution counters into the router's result —
// the cluster-wide cost of the statement.
func addStats(dst *wire.Stats, src wire.Stats) {
	dst.Rows += src.Rows
	dst.LatencyMicros += src.LatencyMicros
	dst.PageReads += src.PageReads
	dst.PageHits += src.PageHits
	dst.PageWrites += src.PageWrites
	dst.WALBytes += src.WALBytes
	dst.MassCacheHits += src.MassCacheHits
	dst.MassCacheMiss += src.MassCacheMiss
	dst.IndexProbes += src.IndexProbes
	dst.IndexPruned += src.IndexPruned
	dst.PlannerFallbacks += src.PlannerFallbacks
	dst.WALFsyncs += src.WALFsyncs
	dst.WALGroupSize += src.WALGroupSize
	dst.TxnConflicts += src.TxnConflicts
	dst.Rejections += src.Rejections
	dst.ShedBytes += src.ShedBytes
	dst.QueueWaitMicros += src.QueueWaitMicros
	dst.VecTuples += src.VecTuples
	dst.ScalarTuples += src.ScalarTuples
}

func isDisconnect(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE)
}
