package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"probdb/internal/cluster"
	"probdb/internal/server"
	"probdb/internal/wire"
)

// harness is one differential fixture: a 3-shard cluster behind a router
// and an identical single-node reference, fed the same statements.
type harness struct {
	t      *testing.T
	shards []*server.Server
	router *cluster.Router
	ref    *server.Server
	dir    string
	specs  []cluster.ShardSpec
}

func newHarness(t *testing.T, nshards int) *harness {
	t.Helper()
	h := &harness{t: t, dir: t.TempDir()}
	for i := 0; i < nshards; i++ {
		s := startShard(t, t.TempDir())
		h.shards = append(h.shards, s)
		h.specs = append(h.specs, cluster.ShardSpec{Addr: s.Addr().String()})
	}
	h.router = startRouter(t, h.dir, h.specs)
	h.ref = startShard(t, t.TempDir())
	t.Cleanup(func() {
		h.router.Shutdown(context.Background()) //nolint:errcheck
		for _, s := range h.shards {
			if s != nil {
				s.Shutdown(context.Background()) //nolint:errcheck
			}
		}
		h.ref.Shutdown(context.Background()) //nolint:errcheck
	})
	return h
}

func startShard(t *testing.T, dir string) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{
		Addr: "127.0.0.1:0", DataDir: dir, ShipWAL: true, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func startRouter(t *testing.T, dir string, specs []cluster.ShardSpec) *cluster.Router {
	t.Helper()
	r, err := cluster.NewRouter(cluster.Config{
		Addr: "127.0.0.1:0", Dir: dir, Shards: specs,
		DialTimeout: time.Second, RetryAfterHint: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	return r
}

// exec runs one statement on both sides and fails the test if either
// errors.
func (h *harness) exec(sql string) {
	h.t.Helper()
	for _, addr := range []string{h.router.Addr().String(), h.ref.Addr().String()} {
		c, err := wire.Dial(addr)
		if err != nil {
			h.t.Fatal(err)
		}
		_, err = c.Query(sql)
		c.Close() //nolint:errcheck
		if err != nil {
			h.t.Fatalf("%s on %s: %v", sql, addr, err)
		}
	}
}

// render drains one SELECT on addr and renders the streamed result exactly
// as a client would: header line, then one line per row, in arrival order.
func render(t *testing.T, addr, sql string) string {
	t.Helper()
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	st, err := c.QueryStream(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var b strings.Builder
	b.WriteString(wire.HeaderLine(st.Name(), st.Columns()))
	b.WriteByte('\n')
	for {
		rows, err := st.NextBatch()
		if err != nil {
			t.Fatalf("%s: mid-stream: %v", sql, err)
		}
		if rows == nil {
			break
		}
		for _, r := range rows {
			b.WriteString(wire.RenderRow(st.Columns(), r))
			b.WriteByte('\n')
		}
	}
	if _, err := st.Result(); err != nil {
		t.Fatalf("%s: result: %v", sql, err)
	}
	return b.String()
}

// diff asserts a SELECT renders byte-identically through the router and on
// the single-node reference.
func (h *harness) diff(sql string) {
	h.t.Helper()
	got := render(h.t, h.router.Addr().String(), sql)
	want := render(h.t, h.ref.Addr().String(), sql)
	if got != want {
		h.t.Fatalf("%s diverged\n--- router ---\n%s--- single node ---\n%s", sql, got, want)
	}
}

// seed loads the standard differential corpus: uncertain temps (some with
// partial mass, giving Pr(exists) < 1 and PROB-floor selectivity),
// duplicate scores (sort ties across shards), NULLs, and strings.
func (h *harness) seed() {
	h.t.Helper()
	h.exec(`CREATE TABLE readings (site INT, temp FLOAT UNCERTAIN, label TEXT, score FLOAT)`)
	for i := 0; i < 40; i += 4 {
		h.exec(fmt.Sprintf(
			`INSERT INTO readings (site, temp, label, score) VALUES `+
				`(%d, GAUSSIAN(%d.0, 4.0), 'n%02d', %d.5), `+
				`(%d, HISTOGRAM((10, 20, 30):(0.3, 0.4)), 'n%02d', %d.5), `+
				`(%d, UNIFORM(0.0, 50.0), 'dup', 7.5), `+
				`(%d, HISTOGRAM((0, 5):(0.25)), NULL, NULL)`,
			i, 10+i, i, i%3,
			i+1, i+1, i%3,
			i+2,
			i+3))
	}
	h.exec(`DELETE FROM readings WHERE site = 6`)
	h.exec(`INSERT INTO readings (site, temp, label, score) VALUES (6, GAUSSIAN(16.0, 4.0), 'back', 7.5)`)
	h.exec(`ANALYZE readings`)
}

var diffQueries = []string{
	`SELECT * FROM readings`,
	`SELECT site, label FROM readings`,
	`SELECT site, score FROM readings WHERE score > 1.0`,
	`SELECT * FROM readings WHERE temp > 18.0`,
	`SELECT * FROM readings WHERE PROB(temp) >= 0.5`,
	`SELECT site, label FROM readings WHERE PROB(temp IN [5, 25]) >= 0.3`,
	`SELECT site, score FROM readings ORDER BY score LIMIT 7`,
	`SELECT site, score FROM readings ORDER BY score DESC LIMIT 7`,
	`SELECT site FROM readings ORDER BY score DESC LIMIT 9`,
	`SELECT label, site FROM readings ORDER BY label`,
	`SELECT * FROM readings ORDER BY PROB(temp) DESC LIMIT 5`,
	`SELECT site, temp FROM readings ORDER BY PROB(temp) LIMIT 12`,
	`SELECT * FROM readings WHERE site = 7`,
	`SELECT * FROM readings WHERE site = 9999`,
	`SELECT site FROM readings LIMIT 10`,
	`SELECT * FROM readings WHERE score > 5.0 ORDER BY score DESC LIMIT 3`,
	`SELECT site, score FROM readings ORDER BY score`,
}

// TestClusterDifferential is the tentpole acceptance test: every supported
// SELECT shape — plain scans, filters, PROB floors, ORDER BY ... LIMIT in
// both directions, partition-key pruning — must come back from a 3-shard
// scatter-gather byte-identical to a single node fed the same DML.
func TestClusterDifferential(t *testing.T) {
	h := newHarness(t, 3)
	h.seed()
	for _, q := range diffQueries {
		h.diff(q)
	}
}

// TestClusterDifferentialConcurrent runs the whole differential corpus from
// 8 goroutines at once — concurrent sessions scatter over separate shard
// connections and must not perturb each other (the -race build is the
// point).
func TestClusterDifferentialConcurrent(t *testing.T) {
	h := newHarness(t, 3)
	h.seed()
	want := map[string]string{}
	for _, q := range diffQueries {
		want[q] = render(t, h.ref.Addr().String(), q)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, q := range diffQueries {
				got := render(t, h.router.Addr().String(), diffQueries[(i+g)%len(diffQueries)])
				_ = q
				exp := want[diffQueries[(i+g)%len(diffQueries)]]
				if got != exp {
					errs <- fmt.Sprintf("goroutine %d: %s diverged", g, diffQueries[(i+g)%len(diffQueries)])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestClusterRouterRestart reopens the router over its manifest and checks
// both the partition map and the _gseq sequence survive: rows inserted
// after the restart must still merge in insertion order behind rows from
// before it.
func TestClusterRouterRestart(t *testing.T) {
	h := newHarness(t, 3)
	h.seed()
	if err := h.router.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.router = startRouter(t, h.dir, h.specs)
	h.exec(`INSERT INTO readings (site, temp, label, score) VALUES ` +
		`(50, GAUSSIAN(25.0, 1.0), 'post', 7.5), (51, GAUSSIAN(26.0, 1.0), 'post', 0.5)`)
	for _, q := range []string{
		`SELECT * FROM readings`,
		`SELECT site, score FROM readings ORDER BY score LIMIT 11`,
		`SELECT site, label FROM readings ORDER BY label DESC`,
	} {
		h.diff(q)
	}
}

// TestClusterShardCountMismatch: a manifest partitioned across 3 shards
// must refuse to open with a different shard list size.
func TestClusterShardCountMismatch(t *testing.T) {
	h := newHarness(t, 2)
	h.exec(`CREATE TABLE t (id INT, v FLOAT)`)
	if err := h.router.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := cluster.NewRouter(cluster.Config{
		Addr: "127.0.0.1:0", Dir: h.dir, Shards: h.specs[:1],
	})
	if err == nil || !strings.Contains(err.Error(), "repartitioning") {
		t.Fatalf("shard-count mismatch accepted: %v", err)
	}
	h.router = startRouter(t, h.dir, h.specs) // Cleanup expects a live router
}

// TestClusterRefusals checks the router's statement surface: reserved
// column, unknown table, transactions, joins, aggregates.
func TestClusterRefusals(t *testing.T) {
	h := newHarness(t, 2)
	h.exec(`CREATE TABLE t (id INT, v FLOAT UNCERTAIN)`)
	c, err := wire.Dial(h.router.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	cases := []struct{ sql, want string }{
		{`SELECT _gseq FROM t`, "reserved"},
		{`CREATE TABLE u (_gseq INT, v FLOAT)`, "reserved"},
		{`CREATE TABLE u (v FLOAT UNCERTAIN)`, "must be certain"},
		{`SELECT * FROM nope`, `no table "nope"`},
		{`INSERT INTO t (v) VALUES (GAUSSIAN(1.0, 1.0))`, "partition key"},
		{`BEGIN`, "transactions"},
		{`SELECT SUM(v) FROM t`, "aggregates"},
		{`SELECT * FROM t, t`, "joins"},
		{`EXPLAIN SELECT * FROM t`, "EXPLAIN"},
	}
	for _, tc := range cases {
		_, err := c.Query(tc.sql)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.sql, err, tc.want)
		}
	}
	// The session must still be usable after every refusal.
	if _, err := c.Query(`SELECT * FROM t`); err != nil {
		t.Fatalf("session dead after refusals: %v", err)
	}
	// HEALTH through the router reports the shard map, not an engine.
	res, err := c.Query(`HEALTH`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "router: 2 shards") {
		t.Fatalf("router HEALTH = %q", res.Message)
	}
}

// killShard crash-kills one shard: connections are severed immediately (an
// already-canceled shutdown context), the closest in-process stand-in for
// kill -9.
func (h *harness) killShard(i int) {
	h.t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.shards[i].Shutdown(ctx) //nolint:errcheck
	h.shards[i] = nil
}

// TestClusterShardDeathMidStream kills one shard while a scatter-gather is
// mid-stream and asserts the client sees a typed, retryable
// ErrShardUnavailable — never a silent truncation. The rows are wide
// (~0.5 KB) and numerous enough that each shard's remaining frames cannot
// hide in socket buffers when the shard dies.
func TestClusterShardDeathMidStream(t *testing.T) {
	h := newHarness(t, 3)
	c, err := wire.Dial(h.router.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if _, err := c.Query(`CREATE TABLE big (id INT, pad TEXT, v FLOAT)`); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 500)
	for base := 0; base < 24000; base += 1500 {
		var sb strings.Builder
		sb.WriteString(`INSERT INTO big (id, pad, v) VALUES `)
		for i := base; i < base+1500; i++ {
			if i > base {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, '%s', %d.25)", i, pad, i)
		}
		if _, err := c.Query(sb.String()); err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.QueryStream(`SELECT * FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	// Pull one batch so the stream is demonstrably underway, then kill a
	// shard out from under it.
	if _, err := st.NextBatch(); err != nil {
		t.Fatal(err)
	}
	h.killShard(1)
	var got error
	for {
		rows, err := st.NextBatch()
		if err != nil {
			got = err
			break
		}
		if rows == nil {
			break
		}
	}
	var se *wire.ServerError
	if !errors.As(got, &se) {
		t.Fatalf("mid-stream shard death returned %v, want *wire.ServerError", got)
	}
	if se.Code != wire.ErrShardUnavailable {
		t.Fatalf("code = %v, want ErrShardUnavailable", se.Code)
	}
	if !se.Retryable() {
		t.Fatal("shard-unavailable must be retryable")
	}

	// Writes touching the dead shard are refused up front, typed the same.
	_, err = c.Query(`INSERT INTO big (id, v) VALUES (90001, 1.0)`)
	for i := 0; err == nil && i < 100; i++ {
		// The row may hash to a live shard; walk ids until one lands on
		// the dead shard's partition.
		_, err = c.Query(fmt.Sprintf(`INSERT INTO big (id, v) VALUES (%d, 1.0)`, 90002+i))
	}
	if !errors.As(err, &se) || se.Code != wire.ErrShardUnavailable {
		t.Fatalf("write to dead shard: %v, want ErrShardUnavailable", err)
	}
}
