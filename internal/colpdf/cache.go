package colpdf

import (
	"sync"
	"sync/atomic"

	"probdb/internal/govern"
)

// CacheKey identifies one cached columnar encoding: the owning table's
// identity and DML version, the dependency set and marginal dimension the
// encoding covers, and the tuple batch [From, From+N) it was built over —
// executors encode per batch, so a LIMIT query never pays for encoding
// tuples it will not read. Versions bump on every Insert/Delete, so a stale
// entry can never be read — invalidation only reclaims its memory early.
type CacheKey struct {
	Table, Ver uint64
	Dep, Dim   int32
	From, N    int32
}

type cacheEntry struct {
	val  *Block
	cost int64
}

// Cache holds columnar encodings keyed by table version. Like the pdf-mass
// cache it is nil-safe (a nil *Cache ignores every call), optionally charged
// to a govern budget, and sheddable under memory pressure. The encoding is
// pure acceleration state: dropping any entry only forces a re-encode.
type Cache struct {
	mu    sync.Mutex
	m     map[CacheKey]cacheEntry
	bytes int64
	// bud, when set, is charged per entry by estimated block cost. The
	// server registers Shed between the mass cache and the cached MVCC
	// snapshot in the reclaim order.
	bud    atomic.Pointer[govern.Budget]
	hits   atomic.Uint64
	misses atomic.Uint64
	// shed accumulates the bytes Shed has reclaimed over the cache's
	// lifetime — the HEALTH report's measure of how often memory pressure
	// has cost this cache its contents.
	shed atomic.Int64
}

// maxEntries bounds the cache so version churn on unbudgeted servers cannot
// grow it without limit; eviction is arbitrary (any entry re-encodes).
// Batch-granular entries are small, so the cap stays generous enough to
// hold a few full large-table scans.
const maxEntries = 4096

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[CacheKey]cacheEntry)} }

// SetBudget attaches a budget charged per cached encoding. Safe to call
// while the cache is in use; entries cached before the call are charged
// when they are eventually evicted, not retroactively.
func (c *Cache) SetBudget(b *govern.Budget) {
	if c == nil || b == nil {
		return
	}
	c.bud.Store(b)
}

// Get returns the cached block for k, or nil.
func (c *Cache) Get(k CacheKey) *Block {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	e, ok := c.m[k]
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return e.val
}

// Put caches v with the given cost estimate. It reports false when the
// budget rejects the charge (the caller keeps its scratch encoding and
// nothing is cached — governance stays inert when unconfigured because a
// nil budget accepts everything).
func (c *Cache) Put(k CacheKey, v *Block, cost int64) bool {
	if c == nil {
		return false
	}
	bud := c.bud.Load()
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.m[k]; ok {
		delete(c.m, k)
		c.bytes -= old.cost
		bud.Release(old.cost)
	}
	for key := range c.m {
		if len(c.m) < maxEntries {
			break
		}
		e := c.m[key]
		delete(c.m, key)
		c.bytes -= e.cost
		bud.Release(e.cost)
	}
	if err := bud.Reserve(cost); err != nil {
		return false
	}
	c.m[k] = cacheEntry{val: v, cost: cost}
	c.bytes += cost
	return true
}

// InvalidateTable drops every entry belonging to the table, releasing their
// budget charges. DML calls it on version bump so superseded encodings do
// not linger until eviction.
func (c *Cache) InvalidateTable(tid uint64) {
	if c == nil {
		return
	}
	bud := c.bud.Load()
	c.mu.Lock()
	var freed int64
	for k, e := range c.m {
		if k.Table == tid {
			delete(c.m, k)
			c.bytes -= e.cost
			freed += e.cost
		}
	}
	c.mu.Unlock()
	bud.Release(freed)
}

// Shed drops entries until at least want bytes are freed (everything when
// want <= 0 would free less), returning the bytes released. It is the
// cache's govern.Reclaimer.
func (c *Cache) Shed(want int64) int64 {
	if c == nil {
		return 0
	}
	bud := c.bud.Load()
	c.mu.Lock()
	var freed int64
	for k, e := range c.m {
		if want > 0 && freed >= want {
			break
		}
		delete(c.m, k)
		c.bytes -= e.cost
		freed += e.cost
	}
	c.mu.Unlock()
	bud.Release(freed)
	c.shed.Add(freed)
	return freed
}

// ShedTotal returns the cumulative bytes Shed has reclaimed.
func (c *Cache) ShedTotal() int64 {
	if c == nil {
		return 0
	}
	return c.shed.Load()
}

// Bytes returns the estimated bytes currently cached.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of cached encodings.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Counters returns the hit/miss totals.
func (c *Cache) Counters() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
