package colpdf

import (
	"testing"

	"probdb/internal/dist"
	"probdb/internal/govern"
)

func testBlock() *Block {
	return Encode([]dist.Dist{dist.NewGaussian(0, 1), dist.NewUniform(0, 1)}, 0, nil)
}

func key(tid, ver uint64, from int32) CacheKey {
	return CacheKey{Table: tid, Ver: ver, From: from, N: 2}
}

func TestCacheNilSafety(t *testing.T) {
	var c *Cache
	c.SetBudget(govern.NewBudget("x", 1))
	if c.Get(key(1, 1, 0)) != nil {
		t.Error("nil cache returned a block")
	}
	if c.Put(key(1, 1, 0), testBlock(), 10) {
		t.Error("nil cache accepted a Put")
	}
	c.InvalidateTable(1)
	if c.Shed(1) != 0 || c.Bytes() != 0 || c.Len() != 0 {
		t.Error("nil cache reported state")
	}
	if h, m := c.Counters(); h != 0 || m != 0 {
		t.Error("nil cache reported counters")
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache()
	k := key(1, 1, 0)
	if c.Get(k) != nil {
		t.Fatal("empty cache hit")
	}
	b := testBlock()
	if !c.Put(k, b, b.MemCost()) {
		t.Fatal("unbudgeted Put rejected")
	}
	if c.Get(k) != b {
		t.Fatal("cached block not returned")
	}
	if h, m := c.Counters(); h != 1 || m != 1 {
		t.Fatalf("counters = %d hits, %d misses", h, m)
	}
	if c.Len() != 1 || c.Bytes() != b.MemCost() {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	// Replacing the same key swaps the charge instead of accumulating it.
	if !c.Put(k, b, 5) {
		t.Fatal("replace rejected")
	}
	if c.Len() != 1 || c.Bytes() != 5 {
		t.Fatalf("after replace len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestCacheInvalidateTable(t *testing.T) {
	c := NewCache()
	c.Put(key(1, 1, 0), testBlock(), 10)
	c.Put(key(1, 1, 256), testBlock(), 10)
	c.Put(key(2, 1, 0), testBlock(), 10)
	c.InvalidateTable(1)
	if c.Get(key(1, 1, 0)) != nil || c.Get(key(1, 1, 256)) != nil {
		t.Error("invalidated entries survive")
	}
	if c.Get(key(2, 1, 0)) == nil {
		t.Error("other table's entry dropped")
	}
	if c.Bytes() != 10 || c.Len() != 1 {
		t.Errorf("bytes=%d len=%d after invalidate", c.Bytes(), c.Len())
	}
}

func TestCacheShed(t *testing.T) {
	c := NewCache()
	for i := int32(0); i < 8; i++ {
		c.Put(key(1, 1, i*256), testBlock(), 10)
	}
	if freed := c.Shed(15); freed < 15 {
		t.Errorf("Shed(15) freed %d", freed)
	}
	before := c.Bytes()
	if before >= 80 {
		t.Errorf("nothing shed: %d bytes", before)
	}
	// want <= 0 empties the cache.
	if freed := c.Shed(-1); freed != before {
		t.Errorf("Shed(-1) freed %d, want %d", freed, before)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("cache not empty after full shed: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

// TestCacheBudget: a govern budget caps what the cache may pin; rejected
// Puts cache nothing, and invalidation releases the charge back.
func TestCacheBudget(t *testing.T) {
	bud := govern.NewBudget("col", 25)
	c := NewCache()
	c.SetBudget(bud)
	if !c.Put(key(1, 1, 0), testBlock(), 10) || !c.Put(key(1, 1, 256), testBlock(), 10) {
		t.Fatal("within-budget Put rejected")
	}
	if bud.Used() != 20 {
		t.Fatalf("budget used = %d, want 20", bud.Used())
	}
	if c.Put(key(1, 1, 512), testBlock(), 10) {
		t.Fatal("over-budget Put accepted")
	}
	if c.Get(key(1, 1, 512)) != nil {
		t.Fatal("rejected Put still cached")
	}
	// Shedding and invalidation hand the charge back to the budget.
	c.InvalidateTable(1)
	if bud.Used() != 0 {
		t.Fatalf("budget used = %d after invalidate, want 0", bud.Used())
	}
	if !c.Put(key(1, 2, 0), testBlock(), 20) {
		t.Fatal("Put after release rejected")
	}
	if freed := c.Shed(-1); freed != 20 {
		t.Fatalf("Shed freed %d, want 20", freed)
	}
	if bud.Used() != 0 {
		t.Fatalf("budget used = %d after shed, want 0", bud.Used())
	}
}

func TestCacheEvictsAtMaxEntries(t *testing.T) {
	c := NewCache()
	b := testBlock()
	for i := 0; i < maxEntries+64; i++ {
		c.Put(CacheKey{Table: 1, Ver: 1, From: int32(i)}, b, 1)
	}
	if c.Len() > maxEntries {
		t.Fatalf("cache grew to %d entries (cap %d)", c.Len(), maxEntries)
	}
	if int64(c.Len()) != c.Bytes() {
		t.Fatalf("bytes accounting drifted: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}
