package colpdf

import (
	"encoding/binary"
	"fmt"
	"math"

	"probdb/internal/dist"
)

// Binary block format (version 1), little-endian floats, uvarint counts:
//
//	byte    version (1)
//	uvarint n, dim, numRuns
//	n × f64 existence-mass lane
//	per run:
//	  byte fam, uvarint N           (Start is implicit: runs are contiguous)
//	  Gaussian/Uniform:   2 lanes × N × f64
//	  Exponential:        1 lane × N × f64
//	  Poisson/Geometric:  uvarint dictLen, dictLen × f64 params,
//	                      N × uvarint dict indices (the parameter lane and
//	                      shared point supports are rebuilt from the dict —
//	                      enumeration is deterministic)
//	  Grid:               uvarint dictLen, dictLen × dist-encoded grids,
//	                      N × uvarint dict indices
//	  Fallback:           N × dist-encoded distributions
//
// Decoding validates every parameter with the same limits the hardened
// internal/dist codec enforces (finite mu, sigma > 0, lo < hi, rate > 0,
// bounded lambda, non-denormal geometric p), bounds every count, and rejects
// malformed input with *CorruptBlockError — never a panic, never a block
// that would later panic a kernel.

const (
	codecVersion = 1
	// maxCount mirrors internal/dist's maxDecodeCount: no hostile header can
	// make the decoder allocate more than this many elements.
	maxCount = 1 << 26
	// maxLambda bounds Poisson dictionary parameters: decoding re-enumerates
	// the point support from lambda (≈ lambda points per dictionary slot),
	// so the bound caps what a hostile block can make the decoder allocate.
	// Larger lambdas fall back to scalar evaluation at encode time.
	maxLambda = 1e4
	// minGeomP mirrors the dist decoder's denormal-p overflow guard.
	minGeomP = 1e-6
)

// CorruptBlockError reports malformed columnar input: where decoding
// stopped and why.
type CorruptBlockError struct {
	Off int
	Msg string
}

func (e *CorruptBlockError) Error() string {
	return fmt.Sprintf("colpdf: decode at offset %d: %s", e.Off, e.Msg)
}

// UnencodableError reports a fallback distribution the dist codec has no
// representation for, surfaced by Marshal instead of the codec's panic.
type UnencodableError struct {
	Dist string
}

func (e *UnencodableError) Error() string {
	return fmt.Sprintf("colpdf: fallback distribution %s is not encodable", e.Dist)
}

// Marshal serializes the block. Fallback runs holding distributions the
// dist codec cannot represent return *UnencodableError.
func Marshal(b *Block) ([]byte, error) {
	buf := []byte{codecVersion}
	buf = binary.AppendUvarint(buf, uint64(b.n))
	buf = binary.AppendUvarint(buf, uint64(b.dim))
	buf = binary.AppendUvarint(buf, uint64(len(b.runs)))
	for _, m := range b.mass {
		buf = appendFloat(buf, m)
	}
	for i := range b.runs {
		r := &b.runs[i]
		buf = append(buf, byte(r.Fam))
		buf = binary.AppendUvarint(buf, uint64(r.N))
		switch r.Fam {
		case FamGaussian, FamUniform, FamExponential:
			for _, lane := range r.Lanes {
				for _, v := range lane {
					buf = appendFloat(buf, v)
				}
			}
		case FamPoisson, FamGeometric:
			buf = binary.AppendUvarint(buf, uint64(len(r.Params)))
			for _, p := range r.Params {
				buf = appendFloat(buf, p)
			}
			for _, slot := range r.DictIdx {
				buf = binary.AppendUvarint(buf, uint64(slot))
			}
		case FamGrid:
			buf = binary.AppendUvarint(buf, uint64(len(r.Grids)))
			var err error
			for _, g := range r.Grids {
				if buf, err = appendDist(buf, g); err != nil {
					return nil, err
				}
			}
			for _, slot := range r.DictIdx {
				buf = binary.AppendUvarint(buf, uint64(slot))
			}
		default:
			var err error
			for _, d := range r.FB {
				if buf, err = appendDist(buf, d); err != nil {
					return nil, err
				}
			}
		}
	}
	return buf, nil
}

// appendDist encodes one distribution, converting the dist codec's
// unknown-type panic into a typed error.
func appendDist(buf []byte, d dist.Dist) (out []byte, err error) {
	defer func() {
		if recover() != nil {
			out, err = nil, &UnencodableError{Dist: d.String()}
		}
	}()
	return dist.AppendEncode(buf, d), nil
}

// blockDecoder carries the cursor and first error through decoding.
type blockDecoder struct {
	buf []byte
	off int
	err error
}

func (d *blockDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = &CorruptBlockError{Off: d.off, Msg: fmt.Sprintf(format, args...)}
	}
}

func (d *blockDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *blockDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// count reads a uvarint bounded by limit — the allocation guard.
func (d *blockDecoder) count(what string, limit uint64) int {
	v := d.uvarint()
	if d.err == nil && v > limit {
		d.fail("%s %d exceeds limit %d", what, v, limit)
	}
	return int(v)
}

func (d *blockDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *blockDecoder) dist() dist.Dist {
	if d.err != nil {
		return nil
	}
	v, n, err := dist.Decode(d.buf[d.off:])
	if err != nil {
		d.fail("embedded distribution: %v", err)
		return nil
	}
	d.off += n
	return v
}

// dictIdx reads N dictionary indices, each < dictLen.
func (d *blockDecoder) dictIdx(n, dictLen int) []int32 {
	idx := make([]int32, 0, n)
	for j := 0; j < n; j++ {
		v := d.uvarint()
		if d.err != nil {
			return nil
		}
		if v >= uint64(dictLen) {
			d.fail("dictionary index %d out of range (dict has %d slots)", v, dictLen)
			return nil
		}
		idx = append(idx, int32(v))
	}
	return idx
}

// Unmarshal decodes a block, validating every parameter and count. The
// returned block is safe for the kernels: no index can run off a lane, no
// parameter violates its family's domain.
func Unmarshal(buf []byte) (*Block, error) {
	d := &blockDecoder{buf: buf}
	if v := d.byte(); d.err == nil && v != codecVersion {
		d.fail("unsupported version %d", v)
	}
	n := d.count("tuple count", maxCount)
	dim := d.count("dimension", 1<<16)
	numRuns := d.count("run count", maxCount)
	if d.err == nil && numRuns > n {
		d.fail("%d runs cannot cover %d tuples", numRuns, n)
	}
	if d.err != nil {
		return nil, d.err
	}
	b := &Block{n: n, dim: dim, mass: make([]float64, 0, n)}
	for i := 0; i < n; i++ {
		m := d.float()
		if d.err != nil {
			return nil, d.err
		}
		if !(m >= 0 && m <= 1) {
			d.fail("existence mass %v outside [0,1]", m)
			return nil, d.err
		}
		b.mass = append(b.mass, m)
	}
	start := 0
	for ri := 0; ri < numRuns; ri++ {
		fam := Family(d.byte())
		if d.err == nil && fam >= famCount {
			d.fail("unknown family %d", fam)
		}
		rn := d.count("run length", uint64(n))
		if d.err != nil {
			return nil, d.err
		}
		if rn < 1 || start+rn > n {
			d.fail("run of %d tuples at %d overflows %d-tuple block", rn, start, n)
			return nil, d.err
		}
		run := Run{Fam: fam, Start: start, N: rn}
		switch fam {
		case FamGaussian, FamUniform, FamExponential:
			run.Lanes = make([][]float64, fam.lanes())
			for li := range run.Lanes {
				lane := make([]float64, rn)
				for j := range lane {
					lane[j] = d.float()
				}
				run.Lanes[li] = lane
			}
			if d.err != nil {
				return nil, d.err
			}
			if err := validateContinuous(&run, d); err != nil {
				return nil, err
			}
		case FamPoisson, FamGeometric:
			dictLen := d.count("dictionary size", uint64(rn))
			if d.err == nil && dictLen < 1 {
				d.fail("empty dictionary")
			}
			params := make([]float64, dictLen)
			for j := range params {
				params[j] = d.float()
			}
			if d.err != nil {
				return nil, d.err
			}
			for _, p := range params {
				if fam == FamPoisson && !(p >= 0 && p <= maxLambda) {
					d.fail("poisson lambda %v outside [0, %g]", p, float64(maxLambda))
					return nil, d.err
				}
				if fam == FamGeometric && !(p > minGeomP && p <= 1) {
					d.fail("geometric p %v outside (%g, 1]", p, float64(minGeomP))
					return nil, d.err
				}
			}
			run.DictIdx = d.dictIdx(rn, dictLen)
			if d.err != nil {
				return nil, d.err
			}
			// Rebuild the parameter lane and shared point supports from the
			// dictionary; enumeration is deterministic, so the points equal
			// the original tuples' backings element-wise.
			run.Pts = make([][]dist.Point, dictLen)
			for j, p := range params {
				if fam == FamPoisson {
					run.Pts[j] = dist.BackingPoints(dist.NewPoisson(p))
				} else {
					run.Pts[j] = dist.BackingPoints(dist.NewGeometric(p))
				}
			}
			lane := make([]float64, rn)
			for j, slot := range run.DictIdx {
				lane[j] = params[slot]
			}
			run.Lanes = [][]float64{lane}
			run.Params = params
		case FamGrid:
			dictLen := d.count("dictionary size", uint64(rn))
			if d.err == nil && dictLen < 1 {
				d.fail("empty dictionary")
			}
			if d.err != nil {
				return nil, d.err
			}
			run.Grids = make([]*dist.Grid, 0, dictLen)
			for j := 0; j < dictLen; j++ {
				dec := d.dist()
				if d.err != nil {
					return nil, d.err
				}
				g, ok := dec.(*dist.Grid)
				if !ok || g.Dim() != 1 {
					d.fail("grid dictionary slot %d holds %T", j, dec)
					return nil, d.err
				}
				run.Grids = append(run.Grids, g)
			}
			run.DictIdx = d.dictIdx(rn, dictLen)
			if d.err != nil {
				return nil, d.err
			}
		default:
			run.FB = make([]dist.Dist, 0, rn)
			for j := 0; j < rn; j++ {
				fd := d.dist()
				if d.err != nil {
					return nil, d.err
				}
				if fd.Dim() > 1 && dim >= fd.Dim() {
					d.fail("fallback slot %d has %d dims but block marginal is %d", j, fd.Dim(), dim)
					return nil, d.err
				}
				run.FB = append(run.FB, fd)
			}
		}
		b.runs = append(b.runs, run)
		start += rn
	}
	if d.err == nil && start != n {
		d.fail("runs cover %d of %d tuples", start, n)
	}
	if d.err == nil && d.off != len(buf) {
		d.fail("%d trailing bytes", len(buf)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	return b, nil
}

// validateContinuous applies the dist codec's parameter limits to decoded
// lanes: finite mu and sigma > 0, lo < hi, rate > 0 and finite.
func validateContinuous(run *Run, d *blockDecoder) error {
	for j := 0; j < run.N; j++ {
		switch run.Fam {
		case FamGaussian:
			mu, sg := run.Lanes[0][j], run.Lanes[1][j]
			if !(sg > 0) || math.IsInf(sg, 0) || math.IsNaN(mu) || math.IsInf(mu, 0) {
				d.fail("gaussian (mu=%v, sigma=%v) invalid", mu, sg)
				return d.err
			}
		case FamUniform:
			lo, hi := run.Lanes[0][j], run.Lanes[1][j]
			if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
				d.fail("uniform (lo=%v, hi=%v) invalid", lo, hi)
				return d.err
			}
		case FamExponential:
			rate := run.Lanes[0][j]
			if !(rate > 0) || math.IsInf(rate, 0) {
				d.fail("exponential rate %v invalid", rate)
				return d.err
			}
		}
	}
	return nil
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}
