package colpdf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
)

func TestCodecRoundTrip(t *testing.T) {
	b := Encode(mixedDists(), 0, nil)
	buf, err := Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Re-marshalling the decoded block reproduces the bytes: the dictionary
	// parameters are canonical and the rebuilt point supports never leak
	// into the encoding.
	buf2, err := Marshal(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatalf("re-marshal differs: %d vs %d bytes", len(buf), len(buf2))
	}
	// The decoded block evaluates bit-identically to the original.
	n := b.Len()
	for _, iv := range cornerIntervals() {
		got, want := make([]float64, n), make([]float64, n)
		b2.EvalInterval(0, n, iv, got, 0)
		b.EvalInterval(0, n, iv, want, 0)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Errorf("iv=%v tuple %d: decoded %v != original %v", iv, i, got[i], want[i])
			}
		}
	}
	for i, m := range b.Mass() {
		if math.Float64bits(b2.Mass()[i]) != math.Float64bits(m) {
			t.Errorf("mass[%d]: %v != %v", i, b2.Mass()[i], m)
		}
	}
}

// opaqueDist wraps a distribution so neither the columnar encoder nor the
// dist codec recognizes its type — the "odd pdf" correctness net.
type opaqueDist struct{ dist.Dist }

func TestMarshalUnencodableFallback(t *testing.T) {
	b := Encode([]dist.Dist{opaqueDist{dist.NewGaussian(0, 1)}}, 0, nil)
	if b.NumRuns() != 1 || b.RunAt(0).Fam != FamFallback {
		t.Fatalf("opaque distribution should land in a fallback run")
	}
	// It still evaluates through the interface...
	out := make([]float64, 1)
	b.EvalInterval(0, 1, region.Closed(-1, 1), out, 0)
	want := scalarMass(dist.NewGaussian(0, 1), 0, region.Closed(-1, 1))
	if math.Float64bits(out[0]) != math.Float64bits(want) {
		t.Errorf("opaque eval %v != %v", out[0], want)
	}
	// ...but Marshal reports a typed error instead of panicking.
	var ue *UnencodableError
	if _, err := Marshal(b); !errors.As(err, &ue) {
		t.Fatalf("Marshal = %v, want *UnencodableError", err)
	}
}

// corrupt returns a copy of buf with the byte at off replaced.
func corrupt(buf []byte, off int, b byte) []byte {
	out := append([]byte(nil), buf...)
	out[off] = b
	return out
}

func TestUnmarshalRejectsHostileInput(t *testing.T) {
	valid, err := Marshal(Encode(mixedDists(), 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built hostile headers. Every case must produce a typed
	// *CorruptBlockError — no panic, no block that could crash a kernel.
	hugeCount := binary.AppendUvarint([]byte{codecVersion}, maxCount+1)
	undersizedRuns := func() []byte {
		// One tuple, one gaussian run that claims zero tuples.
		buf := []byte{codecVersion}
		buf = binary.AppendUvarint(buf, 1) // n
		buf = binary.AppendUvarint(buf, 0) // dim
		buf = binary.AppendUvarint(buf, 1) // runs
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(0.5))
		buf = append(buf, byte(FamGaussian))
		buf = binary.AppendUvarint(buf, 0) // run length 0
		return buf
	}()
	badDictIdx := func() []byte {
		// One poisson tuple whose dictionary index points past the dict.
		buf := []byte{codecVersion}
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.AppendUvarint(buf, 0)
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(1))
		buf = append(buf, byte(FamPoisson))
		buf = binary.AppendUvarint(buf, 1) // run length
		buf = binary.AppendUvarint(buf, 1) // dict size
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(3))
		buf = binary.AppendUvarint(buf, 7) // index 7 into a 1-slot dict
		return buf
	}()
	badSigma := func() []byte {
		buf := []byte{codecVersion}
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.AppendUvarint(buf, 0)
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(1))
		buf = append(buf, byte(FamGaussian))
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(0))  // mu
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(-1)) // sigma < 0
		return buf
	}()
	cases := map[string][]byte{
		"empty":           {},
		"bad version":     corrupt(valid, 0, 99),
		"truncated":       valid[:len(valid)/2],
		"trailing bytes":  append(append([]byte(nil), valid...), 0),
		"huge count":      hugeCount,
		"undersized runs": undersizedRuns,
		"bad dict index":  badDictIdx,
		"bad sigma":       badSigma,
		"mass above one":  corrupt(valid, 4, 0xFF), // clobber the mass lane
	}
	for name, buf := range cases {
		b, err := Unmarshal(buf)
		var ce *CorruptBlockError
		if !errors.As(err, &ce) {
			t.Errorf("%s: err = %v, want *CorruptBlockError", name, err)
		}
		if b != nil {
			t.Errorf("%s: got a block alongside the error", name)
		}
		if err != nil && err.Error() == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
}

// FuzzColPdfRoundTrip feeds arbitrary bytes to Unmarshal. Accepted inputs
// must re-marshal, and the re-marshalled form must be a fixed point —
// Marshal ∘ Unmarshal is idempotent on everything the decoder lets through.
// Rejections must be typed, never panics.
func FuzzColPdfRoundTrip(f *testing.F) {
	if buf, err := Marshal(Encode(mixedDists(), 0, nil)); err == nil {
		f.Add(buf)
	}
	if buf, err := Marshal(Encode([]dist.Dist{dist.NewPoisson(3), dist.NewPoisson(3)}, 0, nil)); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{codecVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Unmarshal(data)
		if err != nil {
			var ce *CorruptBlockError
			if !errors.As(err, &ce) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		buf, err := Marshal(b)
		if err != nil {
			t.Fatalf("decoded block does not re-marshal: %v", err)
		}
		b2, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("re-marshalled block does not decode: %v", err)
		}
		buf2, err := Marshal(b2)
		if err != nil {
			t.Fatalf("second re-marshal: %v", err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("marshal not a fixed point: %d vs %d bytes", len(buf), len(buf2))
		}
	})
}
