// Package colpdf is the columnar batch representation of uncertain columns.
// A Block holds one distribution per tuple, re-organized for vectorized
// evaluation: consecutive tuples of the same closed-form family form a Run
// whose parameters live in contiguous float lanes (Gaussian mu/sigma,
// Uniform lo/hi, Exponential rate), discrete families (Poisson, Geometric)
// and grids dictionary-share their expanded representation across tuples
// with equal parameters, and anything without a closed form lands in a
// per-tuple fallback slot — so correctness never depends on encodability.
//
// The batch kernels (kernels.go) switch on family once per run and then loop
// over the flat lanes with no interface dispatch and no per-tuple
// allocation. They replicate the scalar reference arithmetic of
// internal/dist operation for operation — same cdf calls, same Kahan
// summation, same clamping, same NaN/±Inf handling through
// region.Interval.Empty/Contains — so vectorized results are bit-identical
// to the per-tuple path. The differential suites in this package and in
// internal/core enforce that contract.
package colpdf

import (
	"math"

	"probdb/internal/dist"
)

// Family classifies the distributions a run can hold.
type Family uint8

const (
	// FamFallback marks a run of per-tuple dist.Dist values evaluated
	// through the ordinary interface — the correctness net under every
	// distribution the encoder has no columnar form for.
	FamFallback Family = iota
	FamGaussian
	FamUniform
	FamExponential
	FamPoisson
	FamGeometric
	FamGrid
	famCount
)

// String returns the family name used in EXPLAIN kernel-strategy lines.
func (f Family) String() string {
	switch f {
	case FamFallback:
		return "fallback"
	case FamGaussian:
		return "gaussian"
	case FamUniform:
		return "uniform"
	case FamExponential:
		return "exponential"
	case FamPoisson:
		return "poisson"
	case FamGeometric:
		return "geometric"
	case FamGrid:
		return "grid"
	}
	return "unknown"
}

// lanes returns how many per-tuple parameter lanes the family stores.
func (f Family) lanes() int {
	switch f {
	case FamGaussian, FamUniform:
		return 2
	case FamExponential, FamPoisson, FamGeometric:
		return 1
	}
	return 0
}

// dictionary reports whether the family shares an expanded representation
// across tuples with equal parameters.
func (f Family) dictionary() bool {
	return f == FamPoisson || f == FamGeometric || f == FamGrid
}

// Run is one maximal stretch of consecutive tuples sharing a family.
type Run struct {
	Fam   Family
	Start int // first tuple index (within the Block)
	N     int // tuple count

	// Lanes holds the per-tuple parameters, one slice per lane, each of
	// length N: Gaussian {mu, sigma}, Uniform {lo, hi}, Exponential {rate},
	// Poisson {lambda}, Geometric {p}. Empty for Grid and Fallback runs.
	Lanes [][]float64

	// DictIdx maps each tuple of a dictionary family to its dictionary
	// slot (length N). Tuples with equal parameters share a slot.
	DictIdx []int32
	// Params is the dictionary parameter per slot for Poisson (lambda) and
	// Geometric (p) runs — the canonical value the codec serializes.
	Params []float64
	// Pts is the shared enumerated point support per dictionary slot
	// (Poisson, Geometric). Enumeration from the parameter is
	// deterministic, so the shared points are element-wise identical to
	// what every tuple's own backing would hold.
	Pts [][]dist.Point
	// Grids is the shared distribution per dictionary slot (Grid family).
	Grids []*dist.Grid

	// FB holds the original per-tuple distributions of a fallback run.
	FB []dist.Dist
}

// Block is the columnar encoding of one uncertain column (one dependency
// set, one marginal dimension) over a contiguous range of tuples.
type Block struct {
	n   int
	dim int // marginal dimension a multi-dim fallback pdf is reduced to
	// mass is the per-tuple existence mass lane (the node's Dist.Mass()),
	// present for every tuple including fallback ones — so PROB(col)
	// thresholds vectorize regardless of family.
	mass []float64
	runs []Run
}

// Len returns the number of tuples encoded.
func (b *Block) Len() int { return b.n }

// Dim returns the marginal dimension fallback evaluation reduces to.
func (b *Block) Dim() int { return b.dim }

// NumRuns returns the number of runs.
func (b *Block) NumRuns() int { return len(b.runs) }

// RunAt returns run r. The returned pointer and its slices are read-only.
func (b *Block) RunAt(r int) *Run { return &b.runs[r] }

// Mass returns the per-tuple existence-mass lane. Read-only.
func (b *Block) Mass() []float64 { return b.mass }

// MemCost estimates the bytes the block holds — the value charged against a
// govern budget by the encoding cache. Deliberately coarse but stable.
func (b *Block) MemCost() int64 {
	c := int64(64) + 8*int64(len(b.mass)) + 96*int64(len(b.runs))
	for i := range b.runs {
		r := &b.runs[i]
		for _, l := range r.Lanes {
			c += 8 * int64(len(l))
		}
		c += 4*int64(len(r.DictIdx)) + 8*int64(len(r.Params))
		for _, p := range r.Pts {
			c += 40 * int64(len(p))
		}
		c += 64 * int64(len(r.Grids))
		c += 16 * int64(len(r.FB))
	}
	return c
}

// classify maps one distribution to its family and parameters. pts/grid are
// set for dictionary families.
func classify(d dist.Dist) (fam Family, p0, p1 float64, pts []dist.Point, grid *dist.Grid) {
	switch m := dist.Model(d).(type) {
	case dist.Gaussian:
		return FamGaussian, m.Mu, m.Sigma, nil, nil
	case dist.Uniform:
		return FamUniform, m.Lo, m.Hi, nil, nil
	case dist.Exponential:
		return FamExponential, m.Rate, 0, nil, nil
	case dist.Poisson:
		// Parameters outside the codec's decode limits (maxLambda mirrors
		// the hardened dist decoder's enumeration bound) stay scalar so
		// Marshal and Unmarshal accept exactly the same blocks.
		if !(m.Lambda <= maxLambda) {
			break
		}
		return FamPoisson, m.Lambda, 0, dist.BackingPoints(d), nil
	case dist.Geometric:
		if !(m.P > minGeomP) {
			break
		}
		return FamGeometric, m.P, 0, dist.BackingPoints(d), nil
	}
	if g, ok := d.(*dist.Grid); ok && g.Dim() == 1 {
		return FamGrid, 0, 0, nil, g
	}
	return FamFallback, 0, 0, nil, nil
}

// Encode builds the columnar form of one distribution per tuple. dim is the
// marginal dimension fallback evaluation reduces multi-dimensional pdfs to
// (the same reduction Table.DistOf performs on the scalar path). mass, when
// non-nil, supplies the per-tuple existence-mass lane (length len(dists));
// when nil the lane is computed from each distribution directly.
func Encode(dists []dist.Dist, dim int, mass []float64) *Block {
	b := &Block{n: len(dists), dim: dim}
	if mass != nil {
		b.mass = append([]float64(nil), mass...)
	} else {
		b.mass = make([]float64, len(dists))
		for i, d := range dists {
			b.mass[i] = d.Mass()
		}
	}
	var cur *Run
	// dict maps a parameter (or grid identity) to its dictionary slot in
	// the current run. Keyed by the float bit pattern so -0 and NaN behave
	// as distinct stable keys.
	var dict map[uint64]int32
	var gdict map[*dist.Grid]int32
	for i, d := range dists {
		fam, p0, p1, pts, grid := classify(d)
		if cur == nil || cur.Fam != fam {
			b.runs = append(b.runs, Run{Fam: fam, Start: i})
			cur = &b.runs[len(b.runs)-1]
			if ln := fam.lanes(); ln > 0 {
				cur.Lanes = make([][]float64, ln)
			}
			dict, gdict = nil, nil
			if fam.dictionary() {
				dict = make(map[uint64]int32)
				gdict = make(map[*dist.Grid]int32)
			}
		}
		cur.N++
		switch fam {
		case FamGaussian, FamUniform:
			cur.Lanes[0] = append(cur.Lanes[0], p0)
			cur.Lanes[1] = append(cur.Lanes[1], p1)
		case FamExponential:
			cur.Lanes[0] = append(cur.Lanes[0], p0)
		case FamPoisson, FamGeometric:
			cur.Lanes[0] = append(cur.Lanes[0], p0)
			key := math.Float64bits(p0)
			slot, ok := dict[key]
			if !ok {
				slot = int32(len(cur.Pts))
				dict[key] = slot
				cur.Pts = append(cur.Pts, pts)
				cur.Params = append(cur.Params, p0)
			}
			cur.DictIdx = append(cur.DictIdx, slot)
		case FamGrid:
			slot, ok := gdict[grid]
			if !ok {
				slot = int32(len(cur.Grids))
				gdict[grid] = slot
				cur.Grids = append(cur.Grids, grid)
			}
			cur.DictIdx = append(cur.DictIdx, slot)
		default:
			cur.FB = append(cur.FB, d)
		}
	}
	return b
}

// RangeStats summarizes how a tuple range [from, to) would evaluate:
// vectorized vs fallback tuple counts, the runs touched, and a bitmask of
// the families involved. EXPLAIN renders it as the kernel strategy.
type RangeStats struct {
	Vec, Fallback int
	Runs          int
	FamMask       uint16
}

// StatsIn computes RangeStats for the tuple range [from, to).
func (b *Block) StatsIn(from, to int) RangeStats {
	var s RangeStats
	for i := range b.runs {
		r := &b.runs[i]
		lo, hi := max(from, r.Start), min(to, r.Start+r.N)
		if lo >= hi {
			continue
		}
		s.Runs++
		s.FamMask |= 1 << r.Fam
		if r.Fam == FamFallback {
			s.Fallback += hi - lo
		} else {
			s.Vec += hi - lo
		}
	}
	return s
}

// FamilyNames expands a RangeStats family bitmask into sorted names.
func FamilyNames(mask uint16) []string {
	var out []string
	for f := Family(0); f < famCount; f++ {
		if mask&(1<<f) != 0 {
			out = append(out, f.String())
		}
	}
	return out
}
