package colpdf

import (
	"math"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
)

// mixedDists builds a batch covering every family the encoder knows plus the
// fallback slot: runs of Gaussians, Uniforms, Exponentials, dictionary-shared
// Poissons and Geometrics, shared grids, and a tail of odd distributions
// (triangular, floored, generic discrete) that only evaluate through the
// per-tuple interface.
func mixedDists() []dist.Dist {
	sharedGrid := dist.NewHistogram([]float64{0, 1, 2, 4}, []float64{0.2, 0.5, 0.3})
	ds := []dist.Dist{
		dist.NewGaussian(20, 5),
		dist.NewGaussian(20, 5), // repeats the previous parameters (memo path)
		dist.NewGaussian(-3, 0.5),
		dist.NewUniform(0, 10),
		dist.NewUniform(-2, 2),
		dist.NewExponential(0.7),
		dist.NewExponential(1.3),
		dist.NewPoisson(4),
		dist.NewPoisson(7),
		dist.NewPoisson(4), // dictionary shares the lambda=4 slot
		dist.NewGeometric(0.25),
		dist.NewGeometric(0.25),
		sharedGrid,
		sharedGrid, // dictionary shares the grid pointer
		dist.NewHistogram([]float64{-1, 0, 1}, []float64{0.5, 0.5}),
		dist.NewTriangular(0, 2, 6),
		dist.NewGaussian(20, 5).Floor(0, region.Compare(region.LT, 18)),
		dist.NewDiscrete([]float64{1, 2, 3}, []float64{0.2, 0.3, 0.5}),
	}
	return ds
}

// scalarMass is the per-tuple reference the kernels must match bit for bit:
// Table.DistOf's marginal reduction followed by MassIn over the interval box.
func scalarMass(d dist.Dist, dim int, iv region.Interval) float64 {
	if d.Dim() != 1 {
		d = d.Marginal([]int{dim})
	}
	return d.MassIn(region.Box{iv})
}

// cornerIntervals exercises the interval semantics the kernels transcribe:
// empty and reversed intervals, point queries, half-lines, infinite bounds,
// and NaN endpoints.
func cornerIntervals() []region.Interval {
	inf := math.Inf(1)
	nan := math.NaN()
	return []region.Interval{
		region.Closed(-1, 3),
		region.Closed(15, 25),
		region.Closed(3, -1), // reversed → empty
		region.Open(2, 2),    // empty
		region.Point(2),
		region.Point(4), // exact Poisson support point
		region.Below(0.5, false),
		region.Below(0.5, true),
		region.Above(1, false),
		region.Above(1, true),
		region.Closed(-inf, inf),
		region.Closed(-inf, 1.5),
		region.Closed(1.5, inf),
		{Lo: nan, Hi: 2},
		{Lo: nan, Hi: nan},
		region.Closed(-1e300, 1e300),
	}
}

func TestEncodeRunStructure(t *testing.T) {
	ds := mixedDists()
	b := Encode(ds, 0, nil)
	if b.Len() != len(ds) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(ds))
	}
	wantFams := []Family{FamGaussian, FamUniform, FamExponential, FamPoisson,
		FamGeometric, FamGrid, FamFallback}
	if b.NumRuns() != len(wantFams) {
		t.Fatalf("NumRuns = %d, want %d", b.NumRuns(), len(wantFams))
	}
	covered := 0
	for i, want := range wantFams {
		r := b.RunAt(i)
		if r.Fam != want {
			t.Errorf("run %d family = %v, want %v", i, r.Fam, want)
		}
		if r.Start != covered {
			t.Errorf("run %d starts at %d, want %d", i, r.Start, covered)
		}
		covered += r.N
	}
	if covered != len(ds) {
		t.Fatalf("runs cover %d of %d tuples", covered, len(ds))
	}
	// The Poisson dictionary shares the repeated lambda=4 slot.
	pois := b.RunAt(3)
	if len(pois.Params) != 2 || pois.DictIdx[0] != pois.DictIdx[2] {
		t.Errorf("poisson dictionary not shared: params=%v idx=%v", pois.Params, pois.DictIdx)
	}
	// The grid dictionary shares by pointer identity.
	grid := b.RunAt(5)
	if len(grid.Grids) != 2 || grid.DictIdx[0] != grid.DictIdx[1] {
		t.Errorf("grid dictionary not shared: %d slots, idx=%v", len(grid.Grids), grid.DictIdx)
	}
	// The existence-mass lane equals each distribution's own mass bitwise.
	for i, d := range ds {
		if math.Float64bits(b.Mass()[i]) != math.Float64bits(d.Mass()) {
			t.Errorf("mass[%d] = %v, want %v", i, b.Mass()[i], d.Mass())
		}
	}
}

// TestKernelDifferentialScalar is the bit-exactness contract: every batch
// kernel output equals the scalar per-tuple reference via Float64bits — not
// approximately, identically — across families, fallback, and interval
// corner cases.
func TestKernelDifferentialScalar(t *testing.T) {
	ds := mixedDists()
	b := Encode(ds, 0, nil)
	n := len(ds)
	for _, iv := range cornerIntervals() {
		out := make([]float64, n)
		b.EvalInterval(0, n, iv, out, 0)
		for i, d := range ds {
			want := scalarMass(d, 0, iv)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Errorf("iv=%v tuple %d (%s): vec %v != scalar %v", iv, i, d, out[i], want)
			}
		}
	}
}

// TestKernelDifferentialSplits proves any morsel split is bit-identical to
// the whole-range evaluation: per-element results must not depend on where
// range boundaries fall (memo reuse included).
func TestKernelDifferentialSplits(t *testing.T) {
	ds := mixedDists()
	b := Encode(ds, 0, nil)
	n := len(ds)
	iv := region.Closed(0.5, 5)
	whole := make([]float64, n)
	b.EvalInterval(0, n, iv, whole, 0)
	for _, step := range []int{1, 2, 3, 5, n} {
		got := make([]float64, n)
		for from := 0; from < n; from += step {
			to := min(from+step, n)
			b.EvalInterval(from, to, iv, got[from:to], from)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(whole[i]) {
				t.Errorf("step %d tuple %d: %v != %v", step, i, got[i], whole[i])
			}
		}
	}
	// Per-run evaluation through RunRange covers the same contract for the
	// run-parallel driver.
	got := make([]float64, n)
	r0, r1 := b.RunRange(0, n)
	if r0 != 0 || r1 != b.NumRuns() {
		t.Fatalf("RunRange(0, n) = [%d, %d), want [0, %d)", r0, r1, b.NumRuns())
	}
	for r := r0; r < r1; r++ {
		b.EvalIntervalRun(r, 0, n, iv, got, 0)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(whole[i]) {
			t.Errorf("per-run tuple %d: %v != %v", i, got[i], whole[i])
		}
	}
}

func TestBatchFormsMatchScalar(t *testing.T) {
	ds := mixedDists()
	b := Encode(ds, 0, nil)
	n := len(ds)

	out := make([]float64, n)
	b.MassIntervalVec(0, n, 1, 8, out)
	for i, d := range ds {
		want := scalarMass(d, 0, region.Closed(1, 8))
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Errorf("MassIntervalVec[%d]: %v != %v", i, out[i], want)
		}
	}

	b.CDFVec(0, n, 2.5, out)
	for i, d := range ds {
		want := scalarMass(d, 0, region.Below(2.5, false))
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Errorf("CDFVec[%d]: %v != %v", i, out[i], want)
		}
	}

	b.MassInBoxVec(0, n, region.Box{region.Open(0, 3)}, out)
	for i, d := range ds {
		want := scalarMass(d, 0, region.Open(0, 3))
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Errorf("MassInBoxVec[%d]: %v != %v", i, out[i], want)
		}
	}

	b.MassVec(3, 9, out[:6])
	for i := 0; i < 6; i++ {
		if math.Float64bits(out[i]) != math.Float64bits(ds[3+i].Mass()) {
			t.Errorf("MassVec[%d]: %v != %v", i, out[i], ds[3+i].Mass())
		}
	}
}

// TestFallbackMarginalReduction pins the multi-dimensional fallback path: a
// joint pdf reduces to the block's marginal dimension exactly as the scalar
// DistOf path does.
func TestFallbackMarginalReduction(t *testing.T) {
	mg, err := dist.NewMultiGaussian([]float64{1, 5}, [][]float64{{2, 0.3}, {0.3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 2; dim++ {
		b := Encode([]dist.Dist{mg, mg}, dim, nil)
		if b.Dim() != dim {
			t.Fatalf("Dim = %d, want %d", b.Dim(), dim)
		}
		if b.NumRuns() != 1 || b.RunAt(0).Fam != FamFallback {
			t.Fatalf("joint pdf should land in a fallback run")
		}
		iv := region.Closed(0, 4)
		out := make([]float64, 2)
		b.EvalInterval(0, 2, iv, out, 0)
		want := scalarMass(mg, dim, iv)
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Errorf("dim %d tuple %d: %v != %v", dim, i, out[i], want)
			}
		}
	}
}

func TestStatsInAndFamilyNames(t *testing.T) {
	ds := mixedDists()
	b := Encode(ds, 0, nil)
	s := b.StatsIn(0, b.Len())
	if s.Fallback != 3 {
		t.Errorf("Fallback = %d, want 3", s.Fallback)
	}
	if s.Vec != b.Len()-3 {
		t.Errorf("Vec = %d, want %d", s.Vec, b.Len()-3)
	}
	if s.Runs != b.NumRuns() {
		t.Errorf("Runs = %d, want %d", s.Runs, b.NumRuns())
	}
	names := FamilyNames(s.FamMask)
	want := []string{"fallback", "gaussian", "uniform", "exponential", "poisson", "geometric", "grid"}
	if len(names) != len(want) {
		t.Fatalf("FamilyNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("FamilyNames = %v, want %v", names, want)
		}
	}
	// A sub-range touching only the Gaussian run.
	s = b.StatsIn(0, 3)
	if s.Vec != 3 || s.Fallback != 0 || s.Runs != 1 || s.FamMask != 1<<FamGaussian {
		t.Errorf("gaussian sub-range stats = %+v", s)
	}
	// An empty range.
	if s = b.StatsIn(5, 5); s != (RangeStats{}) {
		t.Errorf("empty range stats = %+v", s)
	}
}

// TestEncodeOverflowParamsStayScalar: parameters outside the codec's decode
// limits must not be encoded into runs Marshal would refuse or Unmarshal
// would reject — they fall back to per-tuple evaluation.
func TestEncodeOverflowParamsStayScalar(t *testing.T) {
	// A geometric p below minGeomP is not even constructible (enumeration
	// overflows first), so the oversized lambda is the reachable case.
	ds := []dist.Dist{
		dist.NewPoisson(2e4), // lambda above maxLambda
		dist.NewPoisson(2e4),
	}
	b := Encode(ds, 0, nil)
	for r := 0; r < b.NumRuns(); r++ {
		if fam := b.RunAt(r).Fam; fam != FamFallback {
			t.Errorf("run %d family = %v, want fallback", r, fam)
		}
	}
	iv := region.Closed(0, 1e5)
	out := make([]float64, len(ds))
	b.EvalInterval(0, len(ds), iv, out, 0)
	for i, d := range ds {
		want := scalarMass(d, 0, iv)
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Errorf("tuple %d: %v != %v", i, out[i], want)
		}
	}
}

func TestEncodeExplicitMassLane(t *testing.T) {
	ds := []dist.Dist{dist.NewGaussian(0, 1), dist.NewUniform(0, 1)}
	mass := []float64{0.25, 0.75}
	b := Encode(ds, 0, mass)
	mass[0] = 0.99 // the block must have copied the lane
	if b.Mass()[0] != 0.25 || b.Mass()[1] != 0.75 {
		t.Errorf("mass lane = %v", b.Mass())
	}
	if b.MemCost() <= 0 {
		t.Errorf("MemCost = %d", b.MemCost())
	}
}
