package colpdf

import (
	"math"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

// This file holds the vectorized batch kernels. Each kernel switches on
// family once per run and then loops over the flat parameter lanes. The
// per-element arithmetic is a verbatim transcription of the scalar reference
// in internal/dist — intervalMassCont for the continuous families,
// Discrete.MassIn (Kahan summation over Interval.Contains) for the discrete
// ones, Grid.MassIn called directly for grids — so the floats coming out are
// bit-identical to the per-tuple interface path, including the NaN and ±Inf
// corner semantics that region.Interval.Empty/Contains define.

// MassIntervalVec writes Pr(X ∈ [lo, hi]) for each tuple in [from, to) into
// out (out[i-from] for tuple i). It is the batch form of dist.MassInterval.
func (b *Block) MassIntervalVec(from, to int, lo, hi float64, out []float64) {
	b.EvalInterval(from, to, region.Closed(lo, hi), out, from)
}

// CDFVec writes Pr(X ≤ x) for each tuple in [from, to) into out. It is the
// batch form of dist.CDF.
func (b *Block) CDFVec(from, to int, x float64, out []float64) {
	b.EvalInterval(from, to, region.Below(x, false), out, from)
}

// MassInBoxVec writes the mass inside a one-dimensional box for each tuple
// in [from, to) into out. It is the batch form of Dist.MassIn over the
// block's marginal.
func (b *Block) MassInBoxVec(from, to int, box region.Box, out []float64) {
	if len(box) != 1 {
		panic("colpdf: MassInBoxVec box dimensionality mismatch")
	}
	b.EvalInterval(from, to, box[0], out, from)
}

// MassVec copies the per-tuple existence masses for [from, to) into out —
// the batch form of Dist.Mass(), a lane read.
func (b *Block) MassVec(from, to int, out []float64) {
	copy(out, b.mass[from:to])
}

// RunRange returns the half-open run index range [r0, r1) overlapping the
// tuple range [from, to) — the unit the morsel pool parallelizes over.
func (b *Block) RunRange(from, to int) (r0, r1 int) {
	for r0 < len(b.runs) && b.runs[r0].Start+b.runs[r0].N <= from {
		r0++
	}
	r1 = r0
	for r1 < len(b.runs) && b.runs[r1].Start < to {
		r1++
	}
	return r0, r1
}

// EvalIntervalRun evaluates one run's tuples restricted to [from, to),
// writing Pr(X ∈ iv) into out[i-off] for tuple i. Disjoint runs write
// disjoint out regions, so workers evaluate runs concurrently without
// synchronization.
func (b *Block) EvalIntervalRun(r, from, to int, iv region.Interval, out []float64, off int) {
	run := &b.runs[r]
	lo, hi := max(from, run.Start), min(to, run.Start+run.N)
	if lo >= hi {
		return
	}
	switch run.Fam {
	case FamGaussian, FamUniform, FamExponential:
		evalContinuous(run, lo, hi, iv, out, off)
	case FamPoisson, FamGeometric:
		evalDiscrete(run, lo, hi, iv, out, off)
	case FamGrid:
		evalGrid(run, lo, hi, iv, out, off)
	default:
		b.evalFallback(run, lo, hi, iv, out, off)
	}
}

// EvalInterval evaluates Pr(X ∈ iv) for every tuple in [from, to), writing
// into out[i-off] for tuple i. Overlapping runs evaluate sequentially;
// morsel workers hand each other disjoint [from, to) ranges, so the same
// call serves both the serial and the parallel drivers.
func (b *Block) EvalInterval(from, to int, iv region.Interval, out []float64, off int) {
	r0, r1 := b.RunRange(from, to)
	for r := r0; r < r1; r++ {
		b.EvalIntervalRun(r, from, to, iv, out, off)
	}
}

// evalContinuous is the flat-lane transcription of intervalMassCont: empty
// interval → 0, infinite endpoints pin the cdf at 0/1, result clamped.
// Tuples repeating the previous tuple's parameters reuse its result.
func evalContinuous(run *Run, lo, hi int, iv region.Interval, out []float64, off int) {
	if iv.Empty() {
		for i := lo; i < hi; i++ {
			out[i-off] = 0
		}
		return
	}
	loInf := math.IsInf(iv.Lo, -1)
	hiInf := math.IsInf(iv.Hi, 1)
	switch run.Fam {
	case FamGaussian:
		mu, sg := run.Lanes[0], run.Lanes[1]
		for i := lo; i < hi; i++ {
			j := i - run.Start
			if i > lo && mu[j] == mu[j-1] && sg[j] == sg[j-1] {
				out[i-off] = out[i-off-1]
				continue
			}
			cl, ch := 0.0, 1.0
			if !loInf {
				cl = numeric.NormalCDF(iv.Lo, mu[j], sg[j])
			}
			if !hiInf {
				ch = numeric.NormalCDF(iv.Hi, mu[j], sg[j])
			}
			out[i-off] = numeric.Clamp01(ch - cl)
		}
	case FamUniform:
		ul, uh := run.Lanes[0], run.Lanes[1]
		for i := lo; i < hi; i++ {
			j := i - run.Start
			if i > lo && ul[j] == ul[j-1] && uh[j] == uh[j-1] {
				out[i-off] = out[i-off-1]
				continue
			}
			cl, ch := 0.0, 1.0
			if !loInf {
				cl = uniformCDF(iv.Lo, ul[j], uh[j])
			}
			if !hiInf {
				ch = uniformCDF(iv.Hi, ul[j], uh[j])
			}
			out[i-off] = numeric.Clamp01(ch - cl)
		}
	case FamExponential:
		rate := run.Lanes[0]
		for i := lo; i < hi; i++ {
			j := i - run.Start
			if i > lo && rate[j] == rate[j-1] {
				out[i-off] = out[i-off-1]
				continue
			}
			cl, ch := 0.0, 1.0
			if !loInf {
				cl = expCDF(iv.Lo, rate[j])
			}
			if !hiInf {
				ch = expCDF(iv.Hi, rate[j])
			}
			out[i-off] = numeric.Clamp01(ch - cl)
		}
	}
}

// uniformCDF is Uniform.cdf from internal/dist, transcribed so the lane loop
// needs no value-boxing into the contModel interface.
func uniformCDF(x, lo, hi float64) float64 {
	switch {
	case x <= lo:
		return 0
	case x >= hi:
		return 1
	default:
		return (x - lo) / (hi - lo)
	}
}

// expCDF is Exponential.cdf from internal/dist.
func expCDF(x, rate float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-rate * x)
}

// evalDiscrete walks the dictionary-shared point support exactly as
// Discrete.MassIn does: Kahan summation over the points the interval
// contains, clamped. Each dictionary slot is evaluated once per call when
// the dictionary is small relative to the run; otherwise tuples repeating
// the previous slot reuse its result.
func evalDiscrete(run *Run, lo, hi int, iv region.Interval, out []float64, off int) {
	memo := len(run.Pts) <= 64 || len(run.Pts)*4 <= run.N
	var vals []float64
	var seen []bool
	if memo {
		vals = make([]float64, len(run.Pts))
		seen = make([]bool, len(run.Pts))
	}
	for i := lo; i < hi; i++ {
		j := i - run.Start
		slot := run.DictIdx[j]
		if memo && seen[slot] {
			out[i-off] = vals[slot]
			continue
		}
		if !memo && i > lo && slot == run.DictIdx[j-1] {
			out[i-off] = out[i-off-1]
			continue
		}
		var s numeric.KahanSum
		for _, p := range run.Pts[slot] {
			if iv.Contains(p.X[0]) {
				s.Add(p.P)
			}
		}
		v := numeric.Clamp01(s.Value())
		out[i-off] = v
		if memo {
			vals[slot], seen[slot] = v, true
		}
	}
}

// evalGrid asks each dictionary-shared grid for its own mass — the same
// Grid.MassIn method the scalar path calls, so equality is by construction.
// The box is hoisted once per call.
func evalGrid(run *Run, lo, hi int, iv region.Interval, out []float64, off int) {
	box := region.Box{iv}
	vals := make([]float64, len(run.Grids))
	seen := make([]bool, len(run.Grids))
	for i := lo; i < hi; i++ {
		slot := run.DictIdx[i-run.Start]
		if !seen[slot] {
			vals[slot], seen[slot] = run.Grids[slot].MassIn(box), true
		}
		out[i-off] = vals[slot]
	}
}

// evalFallback is the per-tuple interface path for odd distributions,
// mirroring Table.DistOf + dist.MassInterval: multi-dimensional pdfs reduce
// to the block's marginal dimension, then answer MassIn over the hoisted
// box.
func (b *Block) evalFallback(run *Run, lo, hi int, iv region.Interval, out []float64, off int) {
	box := region.Box{iv}
	for i := lo; i < hi; i++ {
		d := run.FB[i-run.Start]
		if d.Dim() != 1 {
			d = d.Marginal([]int{b.dim})
		}
		out[i-off] = d.MassIn(box)
	}
}
