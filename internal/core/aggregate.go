package core

import (
	"fmt"
	"math"

	"probdb/internal/dist"
)

// AggOptions tunes probabilistic aggregation. The paper motivates exactly
// this trade-off (§I): "even in situations where the base uncertain data is
// discrete, some queries (e.g. aggregates) can produce results that are
// very expensive to represent using discrete pdfs ... the resulting
// uncertain attribute can have an exponential number of possible values. In
// such cases, one can save space as well as time by approximating with a
// continuous pdf." Exact discrete convolution runs while the support stays
// within MaxExactSupport; beyond it (and always for continuous inputs) the
// aggregate is the moment-matched Gaussian.
type AggOptions struct {
	// MaxExactSupport caps the support size of exact convolution. Zero
	// means DefaultAggOptions.MaxExactSupport.
	MaxExactSupport int
}

// DefaultAggOptions is the default aggregation configuration.
var DefaultAggOptions = AggOptions{MaxExactSupport: 4096}

func (o AggOptions) normalized() AggOptions {
	if o.MaxExactSupport <= 0 {
		o.MaxExactSupport = DefaultAggOptions.MaxExactSupport
	}
	return o
}

// AggregateSum returns the distribution of Σ attr over the table under
// possible worlds semantics: every tuple contributes its attribute value in
// the worlds where it exists and nothing where it does not (partial pdfs),
// with tuples independent (base-table assumption, Definition 2). The result
// is an exact Discrete while the support stays small, otherwise the
// moment-matched Gaussian of the paper's continuous-approximation proposal.
// Certain numeric attributes contribute point masses.
func (t *Table) AggregateSum(attr string, opts AggOptions) (dist.Dist, error) {
	opts = opts.normalized()
	contribs, err := t.sumContributions(attr)
	if err != nil {
		return nil, err
	}
	if len(contribs) == 0 {
		return dist.Unit(0), nil
	}

	// Moments of each contribution (existence-weighted, absent = 0).
	var mean, variance float64
	for _, c := range contribs {
		m := c.Mass()
		cm := c.Mean(0)
		cv := c.Variance(0)
		em := m * cm           // E[X]
		e2 := m * (cv + cm*cm) // E[X²]
		mean += em
		variance += e2 - em*em
	}

	// Try exact convolution of discrete contributions.
	exact := allDiscrete(contribs)
	if exact != nil {
		acc := withAbsenceZero(exact[0])
		ok := true
		for _, c := range exact[1:] {
			acc = dist.ConvolveDiscrete(acc, withAbsenceZero(c))
			if len(acc.Points()) > opts.MaxExactSupport {
				ok = false
				break
			}
		}
		if ok {
			return acc, nil
		}
	}
	if variance <= 0 {
		return dist.Unit(mean), nil
	}
	return dist.NewGaussian(mean, math.Sqrt(variance)), nil
}

// AggregateCount returns the distribution of the number of existing tuples:
// a Poisson–binomial over the tuples' existence probabilities, computed by
// exact dynamic programming up to MaxExactSupport tuples and by Gaussian
// approximation beyond.
func (t *Table) AggregateCount(opts AggOptions) (dist.Dist, error) {
	opts = opts.normalized()
	probs := make([]float64, 0, len(t.tuples))
	for _, tup := range t.tuples {
		probs = append(probs, t.ExistenceProb(tup))
	}
	n := len(probs)
	if n == 0 {
		return dist.Unit(0), nil
	}
	if n+1 <= opts.MaxExactSupport {
		// DP over P[count = k].
		pk := make([]float64, n+1)
		pk[0] = 1
		for _, p := range probs {
			for k := len(pk) - 1; k >= 1; k-- {
				pk[k] = pk[k]*(1-p) + pk[k-1]*p
			}
			pk[0] *= 1 - p
		}
		vals := make([]float64, 0, n+1)
		masses := make([]float64, 0, n+1)
		for k, p := range pk {
			if p > 0 {
				vals = append(vals, float64(k))
				masses = append(masses, p)
			}
		}
		return dist.NewDiscrete(vals, masses), nil
	}
	var mean, variance float64
	for _, p := range probs {
		mean += p
		variance += p * (1 - p)
	}
	if variance <= 0 {
		return dist.Unit(mean), nil
	}
	return dist.NewGaussian(mean, math.Sqrt(variance)), nil
}

// AggregateAvg returns the distribution of (Σ attr)/N with N the table's
// tuple count — the fixed-denominator average. (A random-denominator
// average SUM/COUNT has no closed representation in the model; the paper's
// aggregate discussion concerns representation size, which the fixed form
// already exhibits.)
func (t *Table) AggregateAvg(attr string, opts AggOptions) (dist.Dist, error) {
	s, err := t.AggregateSum(attr, opts)
	if err != nil {
		return nil, err
	}
	n := len(t.tuples)
	if n == 0 {
		return s, nil
	}
	return dist.Affine(s, 1/float64(n), 0), nil
}

// ExpectedValue returns the existence-weighted expectation of the attribute
// over one tuple: mass · E[X | exists] for uncertain attributes, the value
// itself for certain numeric ones.
func (t *Table) ExpectedValue(tup *Tuple, attr string) (float64, error) {
	col, ok := t.schema.Lookup(attr)
	if !ok {
		return 0, fmt.Errorf("core: unknown column %q", attr)
	}
	if !col.Uncertain {
		v, _ := t.Value(tup, attr)
		f, numeric := v.AsFloat()
		if !numeric {
			return 0, fmt.Errorf("core: column %q is not numeric", attr)
		}
		return f, nil
	}
	d, err := t.DistOf(tup, attr)
	if err != nil {
		return 0, err
	}
	return d.Mass() * d.Mean(0), nil
}

// sumContributions returns one 1-D distribution per tuple: the marginal of
// the attribute (certain values become point masses) with the tuple's
// *other* dependency sets' masses folded in, so that each contribution's
// total mass is the tuple's existence probability.
func (t *Table) sumContributions(attr string) ([]dist.Dist, error) {
	col, ok := t.schema.Lookup(attr)
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q", attr)
	}
	if !col.Type.Numeric() {
		return nil, fmt.Errorf("core: cannot aggregate non-numeric column %q", attr)
	}
	out := make([]dist.Dist, 0, len(t.tuples))
	for _, tup := range t.tuples {
		var d dist.Dist
		otherMass := 1.0
		if col.Uncertain {
			di := t.depOf(t.idOf(attr))
			node := tup.nodes[di]
			dim := t.deps[di].dimOf(t.idOf(attr))
			if node.Dist.Dim() == 1 {
				d = node.Dist
			} else {
				d = node.Dist.Marginal([]int{dim})
			}
			for j, n := range tup.nodes {
				if j != di {
					otherMass *= n.Dist.Mass()
				}
			}
		} else {
			v, _ := t.Value(tup, attr)
			f, numeric := v.AsFloat()
			if !numeric {
				return nil, fmt.Errorf("core: NULL/non-numeric value in certain column %q", attr)
			}
			d = dist.Unit(f)
			otherMass = t.ExistenceProb(tup)
		}
		if otherMass < 1 {
			d = scaleMass(d, otherMass)
		}
		out = append(out, d)
	}
	return out, nil
}

// scaleMass multiplies a distribution's total mass by s in (0, 1] by
// folding s into a zero-dimensional... there is no such thing, so it scales
// via the generic representations.
func scaleMass(d dist.Dist, s float64) dist.Dist {
	switch v := dist.Collapse(d, dist.DefaultOptions).(type) {
	case *dist.Discrete:
		pts := make([]dist.Point, len(v.Points()))
		for i, p := range v.Points() {
			pts[i] = dist.Point{X: p.X, P: p.P * s}
		}
		return dist.NewDiscreteJoint(1, pts)
	case *dist.Grid:
		w := make([]float64, len(v.Weights()))
		for i, x := range v.Weights() {
			w[i] = x * s
		}
		return dist.NewGrid(v.Axes(), w)
	}
	return d
}

// allDiscrete collapses every contribution to *Discrete, or returns nil if
// any is continuous.
func allDiscrete(ds []dist.Dist) []*dist.Discrete {
	out := make([]*dist.Discrete, len(ds))
	for i, d := range ds {
		dd, ok := dist.Collapse(d, dist.DefaultOptions).(*dist.Discrete)
		if !ok {
			return nil
		}
		out[i] = dd
	}
	return out
}

// withAbsenceZero completes a partial contribution by assigning the missing
// mass to the value 0 (the tuple contributes nothing to the sum in worlds
// where it does not exist).
func withAbsenceZero(d *dist.Discrete) *dist.Discrete {
	miss := 1 - d.Mass()
	if miss <= 1e-15 {
		return d
	}
	pts := make([]dist.Point, 0, len(d.Points())+1)
	pts = append(pts, d.Points()...)
	pts = append(pts, dist.Point{X: []float64{0}, P: miss})
	return dist.NewDiscreteJoint(1, pts)
}
