package core

import (
	"math"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
)

func discreteTable(t *testing.T, rows [][2][]float64) *Table {
	t.Helper()
	schema := MustSchema(
		Column{Name: "k", Type: IntType},
		Column{Name: "x", Type: IntType, Uncertain: true},
	)
	tbl := MustTable("T", schema, nil, nil)
	for i, r := range rows {
		if err := tbl.Insert(Row{
			Values: map[string]Value{"k": Int(int64(i))},
			PDFs:   []PDF{{Attrs: []string{"x"}, Dist: dist.NewDiscrete(r[0], r[1])}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAggregateSumExact(t *testing.T) {
	// X1 ∈ {1:0.5, 2:0.5}, X2 ∈ {10:1}. Sum ∈ {11:0.5, 12:0.5}.
	tbl := discreteTable(t, [][2][]float64{
		{{1, 2}, {0.5, 0.5}},
		{{10}, {1}},
	})
	s, err := tbl.AggregateSum("x", AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := s.(*dist.Discrete)
	if !ok {
		t.Fatalf("small sum should be exact, got %T", s)
	}
	if got := d.At([]float64{11}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("P(11) = %v", got)
	}
	if got := d.At([]float64{12}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("P(12) = %v", got)
	}
}

func TestAggregateSumPartialContributesZero(t *testing.T) {
	// A tuple existing with probability 0.5 contributes 0 when absent.
	tbl := discreteTable(t, [][2][]float64{
		{{4}, {0.5}},
	})
	s, err := tbl.AggregateSum("x", AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := s.(*dist.Discrete)
	if got := d.At([]float64{0}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("P(0) = %v, want 0.5 (absence)", got)
	}
	if got := d.At([]float64{4}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("P(4) = %v", got)
	}
}

func TestAggregateSumSwitchesToGaussian(t *testing.T) {
	// 40 tuples with 3-point supports: 3^40 worlds — the exponential blowup
	// of §I. The aggregate must come back as the continuous approximation.
	rows := make([][2][]float64, 40)
	for i := range rows {
		rows[i] = [2][]float64{{0, 1, 2}, {0.25, 0.5, 0.25}}
	}
	tbl := discreteTable(t, rows)
	s, err := tbl.AggregateSum("x", AggOptions{MaxExactSupport: 64})
	if err != nil {
		t.Fatal(err)
	}
	if dist.KindOf(s) != dist.KindContinuous {
		t.Fatalf("large sum should be continuous, got %T", s)
	}
	// Moment match: mean 40·1 = 40, variance 40·0.5 = 20.
	if !almostEqual(s.Mean(0), 40, 1e-9) {
		t.Errorf("mean = %v", s.Mean(0))
	}
	if !almostEqual(s.Variance(0), 20, 1e-9) {
		t.Errorf("variance = %v", s.Variance(0))
	}
}

func TestAggregateSumContinuousInputs(t *testing.T) {
	schema := MustSchema(Column{Name: "x", Type: FloatType, Uncertain: true})
	tbl := MustTable("T", schema, nil, nil)
	for i := 0; i < 3; i++ {
		if err := tbl.Insert(Row{PDFs: []PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussian(10, 2)}}}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.AggregateSum("x", AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Mean(0), 30, 1e-9) || !almostEqual(s.Variance(0), 12, 1e-9) {
		t.Errorf("sum of gaussians: mean %v var %v", s.Mean(0), s.Variance(0))
	}
}

func TestAggregateSumOverCertainColumn(t *testing.T) {
	schema := MustSchema(
		Column{Name: "v", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("T", schema, nil, nil)
	for i := int64(1); i <= 3; i++ {
		if err := tbl.Insert(Row{
			Values: map[string]Value{"v": Int(i)},
			PDFs:   []PDF{{Attrs: []string{"x"}, Dist: dist.NewUniform(0, 1)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.AggregateSum("v", AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := s.(*dist.Discrete)
	if got := d.At([]float64{6}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("certain sum should be the point mass 6, got P(6)=%v: %v", got, d)
	}
}

func TestAggregateCountExactPoissonBinomial(t *testing.T) {
	tbl := discreteTable(t, [][2][]float64{
		{{1}, {0.5}}, // exists w.p. 0.5
		{{2}, {1.0}}, // certain
	})
	c, err := tbl.AggregateCount(AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := c.(*dist.Discrete)
	if got := d.At([]float64{1}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("P(count=1) = %v", got)
	}
	if got := d.At([]float64{2}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("P(count=2) = %v", got)
	}
}

func TestAggregateCountGaussianFallback(t *testing.T) {
	rows := make([][2][]float64, 50)
	for i := range rows {
		rows[i] = [2][]float64{{1}, {0.5}}
	}
	tbl := discreteTable(t, rows)
	c, err := tbl.AggregateCount(AggOptions{MaxExactSupport: 10})
	if err != nil {
		t.Fatal(err)
	}
	if dist.KindOf(c) != dist.KindContinuous {
		t.Fatalf("large count should be continuous, got %T", c)
	}
	if !almostEqual(c.Mean(0), 25, 1e-9) || !almostEqual(c.Variance(0), 12.5, 1e-9) {
		t.Errorf("count moments: %v / %v", c.Mean(0), c.Variance(0))
	}
}

func TestAggregateAvg(t *testing.T) {
	tbl := discreteTable(t, [][2][]float64{
		{{2}, {1}},
		{{4}, {1}},
	})
	a, err := tbl.AggregateAvg("x", AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a.Mean(0), 3, 1e-12) {
		t.Errorf("avg mean = %v", a.Mean(0))
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	schema := MustSchema(Column{Name: "x", Type: FloatType, Uncertain: true})
	tbl := MustTable("T", schema, nil, nil)
	s, err := tbl.AggregateSum("x", AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At([]float64{0}); got != 1 {
		t.Errorf("empty sum should be the point mass 0, got %v", got)
	}
	c, err := tbl.AggregateCount(AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At([]float64{0}); got != 1 {
		t.Errorf("empty count should be the point mass 0, got %v", got)
	}
}

func TestAggregateErrors(t *testing.T) {
	schema := MustSchema(
		Column{Name: "s", Type: StringType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("T", schema, nil, nil)
	if _, err := tbl.AggregateSum("zz", AggOptions{}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := tbl.AggregateSum("s", AggOptions{}); err == nil {
		t.Error("string column should fail")
	}
}

func TestExpectedValue(t *testing.T) {
	tbl := sensorTable(t)
	sel, err := tbl.Select(Cmp(Col("x"), region.LT, LitF(20)))
	if err != nil {
		t.Fatal(err)
	}
	// Sensor 1 floored at its mean: mass 0.5, conditional mean < 20, so the
	// existence-weighted expectation is below 10.
	ev, err := sel.ExpectedValue(sel.Tuples()[0], "x")
	if err != nil {
		t.Fatal(err)
	}
	if !(ev > 5 && ev < 10) {
		t.Errorf("weighted expectation = %v", ev)
	}
	id, err := sel.ExpectedValue(sel.Tuples()[0], "id")
	if err != nil || id != 1 {
		t.Errorf("certain expectation = %v, %v", id, err)
	}
}

func TestAggregateMatchesMonteCarloSanity(t *testing.T) {
	// The Gaussian approximation of a sum of partial uniforms has the right
	// CDF at a few probe points (within CLT error).
	schema := MustSchema(Column{Name: "x", Type: FloatType, Uncertain: true})
	tbl := MustTable("T", schema, nil, nil)
	n := 30
	for i := 0; i < n; i++ {
		if err := tbl.Insert(Row{PDFs: []PDF{{Attrs: []string{"x"}, Dist: dist.NewUniform(0, 1)}}}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tbl.AggregateSum("x", AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Irwin–Hall(30): mean 15, var 30/12 = 2.5.
	if !almostEqual(s.Mean(0), 15, 1e-9) || !almostEqual(s.Variance(0), 2.5, 1e-9) {
		t.Fatalf("moments %v/%v", s.Mean(0), s.Variance(0))
	}
	if p := dist.CDF(s, 15); !almostEqual(p, 0.5, 1e-6) {
		t.Errorf("median CDF = %v", p)
	}
	_ = math.Pi
}
