package core

import (
	"sync/atomic"

	"probdb/internal/colpdf"
	"probdb/internal/dist"
	"probdb/internal/exec"
)

// This file routes the filter kernels through the columnar batch
// representation (internal/colpdf). The executors hand kernels contiguous
// 256-tuple batches; colBlockFor turns one dependency set of one batch into
// a colpdf.Block — from the registry's encoding cache when the batch is a
// verified slice of a base table, re-encoded as per-batch scratch otherwise
// — and the batch kernels in kernels.go evaluate the block's flat lanes in
// place of the per-tuple interface walk. The scalar per-tuple path remains
// the reference implementation: SetVectorizedKernels(false) forces it, and
// the differential suites prove both paths byte-identical.

// colBatchSize is the tuple granularity of cached columnar encodings. It
// matches pipe.BatchSize so the pipelined executor's scan batches and the
// legacy whole-table operators share cache entries.
const colBatchSize = 256

// vectorizedOff flips the engine onto the scalar reference path. The zero
// value (vectorization on) is the default.
var vectorizedOff atomic.Bool

// SetVectorizedKernels toggles the vectorized columnar kernels process-wide.
// Differential tests and the columnar benchmark use it to compare the
// vectorized path against the scalar reference; production leaves it on.
func SetVectorizedKernels(on bool) { vectorizedOff.Store(!on) }

// VectorizedKernels reports whether the vectorized kernels are enabled.
func VectorizedKernels() bool { return !vectorizedOff.Load() }

// kernelStats counts how a kernel's tuples were evaluated. Counters are
// atomic: batches within one query evaluate on worker goroutines.
type kernelStats struct {
	vec    atomic.Uint64
	scalar atomic.Uint64
	runs   atomic.Uint64
	fams   atomic.Uint32
}

// note folds one batch's range statistics in. massOnly marks kernels whose
// per-tuple work is an existence-mass lane read, which vectorizes for every
// family including fallback.
func (s *kernelStats) note(rs colpdf.RangeStats, massOnly bool) {
	if massOnly {
		s.vec.Add(uint64(rs.Vec + rs.Fallback))
	} else {
		s.vec.Add(uint64(rs.Vec))
		s.scalar.Add(uint64(rs.Fallback))
	}
	s.runs.Add(uint64(rs.Runs))
	if rs.FamMask != 0 {
		for {
			old := s.fams.Load()
			if old|uint32(rs.FamMask) == old || s.fams.CompareAndSwap(old, old|uint32(rs.FamMask)) {
				break
			}
		}
	}
}

// KernelReport is one filter kernel's evaluation summary: how many tuples
// took the vectorized lanes vs the scalar path, over how many runs and
// which families. EXPLAIN renders it as the kernel strategy; the per-query
// totals feed wire.Stats VecTuples/ScalarTuples.
type KernelReport struct {
	Name     string
	Vec      uint64
	Scalar   uint64
	Runs     uint64
	Families []string
}

func (s *kernelStats) report(name string) KernelReport {
	return KernelReport{
		Name:     name,
		Vec:      s.vec.Load(),
		Scalar:   s.scalar.Load(),
		Runs:     s.runs.Load(),
		Families: colpdf.FamilyNames(uint16(s.fams.Load())),
	}
}

// forColBatches splits [0, n) into colBatchSize-aligned batches and runs fn
// over them on the morsel pool — the vectorized whole-table drivers' outer
// loop. Alignment to colBatchSize keeps the cached encodings shared between
// the legacy and pipelined executors regardless of parallelism.
func forColBatches(par, n int, fn func(from, to int) error) error {
	nb := (n + colBatchSize - 1) / colBatchSize
	return exec.For(par, nb, func(lo, hi int) error {
		for bi := lo; bi < hi; bi++ {
			from := bi * colBatchSize
			to := from + colBatchSize
			if to > n {
				to = n
			}
			if err := fn(from, to); err != nil {
				return err
			}
		}
		return nil
	})
}

// batchAt verifies that in is exactly t.tuples[at : at+len(in)] — the
// precondition for serving a cached encoding. Pointer equality per tuple:
// cheap next to evaluation, and immune to every way an upstream operator
// can reorder, filter, or rebuild tuples.
func (t *Table) batchAt(at int, in []*Tuple) bool {
	if at < 0 || at+len(in) > len(t.tuples) {
		return false
	}
	for i, tup := range in {
		if t.tuples[at+i] != tup {
			return false
		}
	}
	return true
}

// colBlockFor returns the columnar encoding of dependency set di (marginal
// dimension dim) over the batch in. at is the batch's verified offset into
// t.tuples, or -1 for a batch that is not a slice of the table — cached in
// the registry's encoding cache in the first case (keyed by table identity,
// DML version, dep, dim, and batch range), per-call scratch in the second.
// The existence-mass lane goes through nodeMass, so it is memoized exactly
// like the scalar path's and the floats agree bit for bit.
func (t *Table) colBlockFor(di, dim, at int, in []*Tuple) *colpdf.Block {
	var key colpdf.CacheKey
	cached := t.tid != 0 && at >= 0
	if cached {
		key = colpdf.CacheKey{
			Table: t.tid, Ver: t.ver,
			Dep: int32(di), Dim: int32(dim),
			From: int32(at), N: int32(len(in)),
		}
		if b := t.reg.colenc.Get(key); b != nil {
			return b
		}
	}
	dists := make([]dist.Dist, len(in))
	mass := make([]float64, len(in))
	for i, tup := range in {
		n := tup.nodes[di]
		dists[i] = n.Dist
		mass[i] = t.nodeMass(n)
	}
	b := colpdf.Encode(dists, dim, mass)
	if cached {
		t.reg.colenc.Put(key, b, b.MemCost())
	}
	return b
}
