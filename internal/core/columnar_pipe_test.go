package core_test

import (
	"context"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/pipe"
	"probdb/internal/region"
)

// pipeColTable is the exported-API twin of mixedColTable for the pipelined
// differential: families interleave row by row, fallback included.
func pipeColTable(t testing.TB, n int) *core.Table {
	t.Helper()
	schema := core.MustSchema(
		core.Column{Name: "id", Type: core.IntType},
		core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
	)
	tbl := core.MustTable("P", schema, [][]string{{"x"}}, core.NewRegistry())
	for i := 0; i < n; i++ {
		var d dist.Dist
		switch i % 5 {
		case 0:
			d = dist.NewGaussian(float64(i%20), 2)
		case 1:
			d = dist.NewUniform(0, float64(4+i%6))
		case 2:
			d = dist.NewPoisson(float64(2 + i%5))
		case 3:
			d = dist.NewTriangular(0, 3, 9) // fallback
		default:
			d = dist.NewGaussian(float64(i%15), 3).Floor(0, region.Compare(region.GT, 4))
		}
		if err := tbl.Insert(core.Row{
			Values: map[string]core.Value{"id": core.Int(int64(i))},
			PDFs:   []core.PDF{{Attrs: []string{"x"}, Dist: d}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestPipelinedDifferential drains a scan→filter→prob-filter tree with a
// batch size misaligned to the 256-tuple encoding granularity, vectorized
// vs scalar, and requires identical results.
func TestPipelinedDifferential(t *testing.T) {
	tbl := pipeColTable(t, 700)
	run := func(vec bool, batch int) *core.Table {
		t.Helper()
		core.SetVectorizedKernels(vec)
		defer core.SetVectorizedKernels(true)
		sel, err := tbl.PlanSelect(core.Cmp(core.Col("id"), region.GE, core.LitI(10)))
		if err != nil {
			t.Fatal(err)
		}
		sc := pipe.NewScan(tbl)
		sc.SetBatch(batch)
		var root pipe.Operator = pipe.NewFilter(sc, sel)
		root = pipe.NewProbFilter(root, tbl.PlanRangeThreshold("x", 1, 7, region.GT, 0.25))
		out, err := pipe.Drain(context.Background(), root)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, batch := range []int{3, 97, 256, 1000} {
		vec, scalar := run(true, batch), run(false, batch)
		if vec.Len() != scalar.Len() {
			t.Fatalf("batch %d: vec kept %d, scalar kept %d", batch, vec.Len(), scalar.Len())
		}
		if vr, sr := vec.Render(), scalar.Render(); vr != sr {
			t.Fatalf("batch %d: rendered results differ:\nvec:\n%s\nscalar:\n%s", batch, vr, sr)
		}
	}
}

// TestPipelinedDMLMidScanDifferential interleaves DML with an open scan: the
// batch kernel must keep matching the per-tuple oracle on every batch even
// as inserts and deletes bump the table version (invalidating cached
// encodings) and shift tuples out from under the cursor.
func TestPipelinedDMLMidScanDifferential(t *testing.T) {
	core.SetVectorizedKernels(true)
	tbl := pipeColTable(t, 60)
	sel := tbl.PlanRangeThreshold("x", 1, 8, region.GT, 0.2)
	sc := pipe.NewScan(tbl)
	sc.SetBatch(7)
	if err := sc.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	pulled := 0
	for {
		batch, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		keep := make([]bool, len(batch))
		if err := sel.KeepBatch(batch, 1, keep); err != nil {
			t.Fatal(err)
		}
		for i, tup := range batch {
			want, err := sel.Keep(tup)
			if err != nil {
				t.Fatal(err)
			}
			if keep[i] != want {
				t.Fatalf("batch %d tuple %d: vec %v, scalar oracle %v", pulled, i, keep[i], want)
			}
		}
		pulled++
		switch pulled {
		case 2:
			// Append mid-scan: the version bump retires cached encodings.
			if err := tbl.Insert(core.Row{
				Values: map[string]core.Value{"id": core.Int(999)},
				PDFs:   []core.PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussian(4, 1)}},
			}); err != nil {
				t.Fatal(err)
			}
		case 4:
			// Delete mid-scan: later tuples shift, so the cursor's batch
			// offsets no longer line up and the kernel must re-verify.
			tbl.Delete(func(tb *core.Table, tup *core.Tuple) bool {
				v, _ := tb.Value(tup, "id")
				return v.I%7 == 3
			})
		}
	}
	if pulled < 6 {
		t.Fatalf("scan ended after %d batches", pulled)
	}
}
