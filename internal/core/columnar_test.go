package core

import (
	"math"
	"reflect"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
)

// mixedColTable builds a base table whose uncertain column x cycles through
// every kernel family plus fallback distributions (triangular, floored). The
// first half interleaves families row by row (maximal run fragmentation);
// the second half holds runs of 23 equal-family rows (the vectorized sweet
// spot) — so every batch crosses vectorized/fallback boundaries both ways.
func mixedColTable(t testing.TB, n int) *Table {
	t.Helper()
	schema := MustSchema(
		Column{Name: "id", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("T", schema, [][]string{{"x"}}, NewRegistry())
	for i := 0; i < n; i++ {
		fam := i % 7
		if i >= n/2 {
			fam = (i / 23) % 7
		}
		var d dist.Dist
		switch fam {
		case 0:
			d = dist.NewGaussian(float64(i%40), 1+float64(i%5))
		case 1:
			d = dist.NewUniform(float64(i%10), float64(i%10)+5)
		case 2:
			d = dist.NewExponential(0.1 + 0.3*float64(i%7))
		case 3:
			d = dist.NewPoisson(float64(3 + i%4))
		case 4:
			d = dist.NewGeometric(0.2 + 0.1*float64(i%5))
		case 5:
			d = dist.NewTriangular(0, float64(2+i%3), 10) // fallback
		default:
			// Floored pdf: fallback family with partial existence mass.
			d = dist.NewGaussian(float64(i%30), 4).Floor(0, region.Compare(region.LT, float64(10+i%20)))
		}
		if err := tbl.Insert(Row{
			Values: map[string]Value{"id": Int(int64(i))},
			PDFs:   []PDF{{Attrs: []string{"x"}, Dist: d}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// diffRun evaluates f twice — vectorized and scalar reference — at the given
// parallelism and requires identical outcomes: same error (by message), and
// for tables the exact same kept length.
func diffRun(t *testing.T, tbl *Table, par int, f func() (*Table, error)) (vec, scalar *Table) {
	t.Helper()
	tbl.SetParallelism(par)
	SetVectorizedKernels(true)
	vec, vecErr := f()
	SetVectorizedKernels(false)
	scalar, scErr := f()
	SetVectorizedKernels(true)
	if (vecErr == nil) != (scErr == nil) || (vecErr != nil && vecErr.Error() != scErr.Error()) {
		t.Fatalf("par %d: vec err %v, scalar err %v", par, vecErr, scErr)
	}
	return vec, scalar
}

// sameKeptTuples requires both tables to hold the identical tuple pointers
// in the identical order — the strictest possible equality for filters that
// pass tuples through.
func sameKeptTuples(t *testing.T, label string, vec, scalar *Table) {
	t.Helper()
	if vec == nil || scalar == nil {
		return
	}
	if len(vec.tuples) != len(scalar.tuples) {
		t.Fatalf("%s: vec kept %d, scalar kept %d", label, len(vec.tuples), len(scalar.tuples))
	}
	for i := range vec.tuples {
		if vec.tuples[i] != scalar.tuples[i] {
			t.Fatalf("%s: tuple %d differs (vec %p, scalar %p)", label, i, vec.tuples[i], scalar.tuples[i])
		}
	}
}

// sameBuiltTuples compares tuples rebuilt by Selection: certain values by
// deep equality, pdf nodes by pointer (both paths share the input nodes).
func sameBuiltTuples(t *testing.T, label string, vec, scalar *Table) {
	t.Helper()
	if vec == nil || scalar == nil {
		return
	}
	if len(vec.tuples) != len(scalar.tuples) {
		t.Fatalf("%s: vec built %d, scalar built %d", label, len(vec.tuples), len(scalar.tuples))
	}
	for i := range vec.tuples {
		v, s := vec.tuples[i], scalar.tuples[i]
		if !reflect.DeepEqual(v.certain, s.certain) {
			t.Fatalf("%s: tuple %d certain %v != %v", label, i, v.certain, s.certain)
		}
		if len(v.nodes) != len(s.nodes) {
			t.Fatalf("%s: tuple %d node count %d != %d", label, i, len(v.nodes), len(s.nodes))
		}
		for j := range v.nodes {
			if v.nodes[j] != s.nodes[j] {
				t.Fatalf("%s: tuple %d node %d not shared", label, i, j)
			}
		}
	}
}

func TestSelectDifferential(t *testing.T) {
	tbl := mixedColTable(t, 600)
	for _, par := range []int{1, 8} {
		vec, scalar := diffRun(t, tbl, par, func() (*Table, error) {
			return tbl.Select(Cmp(Col("id"), region.GE, LitI(57)), Cmp(Col("id"), region.LT, LitI(489)))
		})
		sameBuiltTuples(t, "σ(id)", vec, scalar)
		if len(vec.tuples) != 489-57 {
			t.Fatalf("kept %d, want %d", len(vec.tuples), 489-57)
		}
	}
}

func TestProbSelectDifferential(t *testing.T) {
	tbl := mixedColTable(t, 600)
	cases := []struct {
		op region.Op
		p  float64
	}{
		{region.GT, 0.9},
		{region.GE, 0.5},
		{region.LT, 1},
		{region.LE, 0.25},
	}
	for _, par := range []int{1, 8} {
		for _, c := range cases {
			vec, scalar := diffRun(t, tbl, par, func() (*Table, error) {
				return tbl.SelectWhereProb([]string{"x"}, c.op, c.p)
			})
			sameKeptTuples(t, "σPr", vec, scalar)
			if c.op == region.LT && c.p == 1 && len(vec.tuples) == 0 {
				t.Fatal("floored rows should have mass < 1")
			}
		}
	}
}

func TestRangeThresholdDifferential(t *testing.T) {
	tbl := mixedColTable(t, 600)
	inf := math.Inf(1)
	cases := []struct {
		lo, hi float64
		op     region.Op
		p      float64
	}{
		{0, 10, region.GE, 0.5},
		{3, 4, region.GT, 0.05},
		{-inf, 5, region.LT, 0.9},
		{18, inf, region.GE, 0.1},
		{7, 2, region.LE, 0}, // reversed interval: Pr = 0 everywhere
	}
	for _, par := range []int{1, 8} {
		for _, c := range cases {
			vec, scalar := diffRun(t, tbl, par, func() (*Table, error) {
				return tbl.SelectRangeThreshold("x", c.lo, c.hi, c.op, c.p)
			})
			sameKeptTuples(t, "σPr∈", vec, scalar)
		}
	}
}

// TestResolveErrorDifferential: unresolvable thresholds (unknown column,
// certain column) must fail identically on both paths — the vectorized
// kernel routes them through the scalar reference so the per-tuple error is
// reproduced verbatim.
func TestResolveErrorDifferential(t *testing.T) {
	tbl := mixedColTable(t, 8)
	diffRun(t, tbl, 1, func() (*Table, error) {
		return tbl.SelectWhereProb([]string{"nope"}, region.GT, 0.5)
	})
	diffRun(t, tbl, 1, func() (*Table, error) {
		return tbl.SelectRangeThreshold("id", 0, 1, region.GT, 0.5)
	})
	diffRun(t, tbl, 1, func() (*Table, error) {
		return tbl.SelectRangeThreshold("zz", 0, 1, region.GT, 0.5)
	})
}

// TestDerivedTableDifferential runs the threshold kernels over a derived
// table (tid 0, floored post-selection pdfs, no cacheable identity): the
// scratch-encoding path must match the scalar reference exactly.
func TestDerivedTableDifferential(t *testing.T) {
	tbl := mixedColTable(t, 400)
	der, err := tbl.Select(Cmp(Col("x"), region.LT, LitF(8)))
	if err != nil {
		t.Fatal(err)
	}
	if der.tid != 0 {
		t.Fatalf("derived table has base identity %d", der.tid)
	}
	for _, par := range []int{1, 8} {
		vec, scalar := diffRun(t, der, par, func() (*Table, error) {
			return der.SelectWhereProb([]string{"x"}, region.GT, 0.3)
		})
		sameKeptTuples(t, "derived σPr", vec, scalar)
		vec, scalar = diffRun(t, der, par, func() (*Table, error) {
			return der.SelectRangeThreshold("x", 1, 6, region.GE, 0.2)
		})
		sameKeptTuples(t, "derived σPr∈", vec, scalar)
	}
}

// TestJointMarginalDifferential: a multi-attribute dependency set evaluates
// range thresholds over one marginal dimension — the fallback kernel must
// reduce exactly like the scalar DistOf path.
func TestJointMarginalDifferential(t *testing.T) {
	schema := MustSchema(
		Column{Name: "id", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
		Column{Name: "y", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("J", schema, [][]string{{"x", "y"}}, NewRegistry())
	for i := 0; i < 60; i++ {
		mg, err := dist.NewMultiGaussian(
			[]float64{float64(i % 9), float64(5 + i%4)},
			[][]float64{{2, 0.5}, {0.5, 1}})
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(Row{
			Values: map[string]Value{"id": Int(int64(i))},
			PDFs:   []PDF{{Attrs: []string{"x", "y"}, Dist: mg}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, attr := range []string{"x", "y"} {
		for _, par := range []int{1, 8} {
			vec, scalar := diffRun(t, tbl, par, func() (*Table, error) {
				return tbl.SelectRangeThreshold(attr, 2, 7, region.GE, 0.4)
			})
			sameKeptTuples(t, "joint "+attr, vec, scalar)
		}
	}
}

// TestDMLInvalidationDifferential: DML between queries bumps the table
// version and drops its cached encodings, so a repeat query re-encodes the
// new tuple layout instead of serving stale blocks.
func TestDMLInvalidationDifferential(t *testing.T) {
	tbl := mixedColTable(t, 300)
	q := func() (*Table, error) { return tbl.SelectRangeThreshold("x", 2, 9, region.GE, 0.3) }

	vec, scalar := diffRun(t, tbl, 4, q)
	sameKeptTuples(t, "pre-DML", vec, scalar)
	if tbl.reg.colenc.Len() == 0 {
		t.Fatal("vectorized run did not warm the encoding cache")
	}

	// Deleting from the middle shifts every later tuple into a different
	// batch slot — a stale encoding would evaluate the wrong pdfs.
	if removed := tbl.Delete(func(tb *Table, tup *Tuple) bool {
		v, _ := tb.Value(tup, "id")
		return v.I%5 == 2
	}); removed == 0 {
		t.Fatal("delete removed nothing")
	}
	if tbl.reg.colenc.Len() != 0 {
		t.Fatalf("delete left %d stale encodings cached", tbl.reg.colenc.Len())
	}
	if err := tbl.Insert(Row{
		Values: map[string]Value{"id": Int(1000)},
		PDFs:   []PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussian(5, 1)}},
	}); err != nil {
		t.Fatal(err)
	}

	vec, scalar = diffRun(t, tbl, 4, q)
	sameKeptTuples(t, "post-DML", vec, scalar)
}

// TestFallbackBoundaryDifferential sweeps batch sizes around the fallback
// boundaries: tables sized to put family transitions at the first, last, and
// straddling positions of the 256-tuple encoding batches.
func TestFallbackBoundaryDifferential(t *testing.T) {
	for _, n := range []int{1, 7, 255, 256, 257, 511, 513} {
		tbl := mixedColTable(t, n)
		vec, scalar := diffRun(t, tbl, 8, func() (*Table, error) {
			return tbl.SelectRangeThreshold("x", 1, 8, region.GT, 0.2)
		})
		sameKeptTuples(t, "boundary", vec, scalar)
		vec, scalar = diffRun(t, tbl, 8, func() (*Table, error) {
			return tbl.SelectWhereProb([]string{"x"}, region.LE, 0.95)
		})
		sameKeptTuples(t, "boundary mass", vec, scalar)
	}
}
