package core

import (
	"fmt"

	"probdb/internal/exec"
)

// EquiJoin returns t ⋈ o restricted to pairs whose certain key columns are
// equal, then applies the remaining atoms as a selection. Semantically it
// equals Join(o, Cmp(Col(leftKey), EQ, Col(rightKey)), atoms...) — a cross
// product followed by selection (§III-D) — but pairs tuples through a hash
// table on the key instead of materializing the full cross product, which
// is what makes join benchmarks over thousands of tuples feasible.
func (t *Table) EquiJoin(o *Table, leftKey, rightKey string, atoms ...Atom) (*Table, error) {
	lcol, ok := t.schema.Lookup(leftKey)
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q", leftKey)
	}
	rcol, ok := o.schema.Lookup(rightKey)
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q", rightKey)
	}
	if lcol.Uncertain || rcol.Uncertain {
		return nil, fmt.Errorf("core: EquiJoin keys must be certain columns (use Join for uncertain predicates)")
	}

	// Build the product table structure exactly as CrossProduct does, but
	// with an empty tuple set...
	empty := &Table{Name: o.Name, schema: o.schema, ids: o.ids, deps: o.deps, reg: o.reg, trackHistory: o.trackHistory}
	out, err := t.CrossProduct(empty)
	if err != nil {
		return nil, err
	}
	out.Name = fmt.Sprintf("%s⋈%s", t.Name, o.Name)

	// ... then pair tuples via a hash table on the rendered key value.
	index := make(map[string][]*Tuple, o.Len())
	ri := o.schema.Index(rightKey)
	for _, tup := range o.tuples {
		v := tup.certain[ri]
		if v.IsNull() {
			continue // NULL joins nothing
		}
		index[v.Render()] = append(index[v.Render()], tup)
	}
	// Probing and pair construction are morsel-parallel over the left
	// tuples (the hash index is read-only by now); per-left-tuple slots are
	// assembled in order afterwards, reproducing the sequential pair order.
	li := t.schema.Index(leftKey)
	matched := make([][]*Tuple, len(t.tuples))
	_ = exec.For(t.par, len(t.tuples), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			a := t.tuples[i]
			v := a.certain[li]
			if v.IsNull() {
				continue
			}
			bs := index[v.Render()]
			if len(bs) == 0 {
				continue
			}
			pairs := make([]*Tuple, len(bs))
			for j, b := range bs {
				pairs[j] = &Tuple{
					certain: append(append([]Value(nil), a.certain...), b.certain...),
					nodes:   append(append([]*PDFNode(nil), a.nodes...), b.nodes...),
				}
			}
			matched[i] = pairs
		}
		return nil
	})
	for _, pairs := range matched {
		for _, nt := range pairs {
			out.tuples = append(out.tuples, nt)
			out.retainTuple(nt)
		}
	}
	if len(atoms) == 0 {
		return out, nil
	}
	sel, err := out.Select(atoms...)
	if err != nil {
		return nil, err
	}
	sel.Name = out.Name
	return sel, nil
}
