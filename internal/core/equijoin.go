package core

import (
	"probdb/internal/exec"
)

// EquiJoin returns t ⋈ o restricted to pairs whose certain key columns are
// equal, then applies the remaining atoms as a selection. Semantically it
// equals Join(o, Cmp(Col(leftKey), EQ, Col(rightKey)), atoms...) — a cross
// product followed by selection (§III-D) — but pairs tuples through a hash
// table on the key instead of materializing the full cross product, which
// is what makes join benchmarks over thousands of tuples feasible.
func (t *Table) EquiJoin(o *Table, leftKey, rightKey string, atoms ...Atom) (*Table, error) {
	k, err := t.PlanEquiJoin(o, leftKey, rightKey)
	if err != nil {
		return nil, err
	}
	out := k.Out()
	// Probing and pair construction are morsel-parallel over the left
	// tuples (the kernel's hash index is read-only); per-left-tuple slots
	// are assembled in order afterwards, reproducing the sequential pair
	// order.
	matched := make([][]*Tuple, len(t.tuples))
	_ = exec.For(t.par, len(t.tuples), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			matched[i] = k.Matches(t.tuples[i])
		}
		return nil
	})
	for _, pairs := range matched {
		for _, nt := range pairs {
			out.Append(nt)
		}
	}
	if len(atoms) == 0 {
		return out, nil
	}
	sel, err := out.Select(atoms...)
	if err != nil {
		return nil, err
	}
	sel.Name = out.Name
	return sel, nil
}
