package core_test

import (
	"fmt"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

// Example builds the paper's Table I sensor relation, floors it with a
// selection, and reads the symbolic result.
func Example() {
	schema := core.MustSchema(
		core.Column{Name: "id", Type: core.IntType},
		core.Column{Name: "loc", Type: core.FloatType, Uncertain: true},
	)
	sensors := core.MustTable("Sensors", schema, nil, nil)
	sensors.Insert(core.Row{
		Values: map[string]core.Value{"id": core.Int(2)},
		PDFs:   []core.PDF{{Attrs: []string{"loc"}, Dist: dist.NewGaussianVar(25, 4)}},
	})
	sel, _ := sensors.Select(core.Cmp(core.Col("loc"), region.LT, core.LitF(25)))
	d, _ := sel.DistOf(sel.Tuples()[0], "loc")
	fmt.Println(d)
	fmt.Printf("Pr(exists) = %.2f\n", sel.ExistenceProb(sel.Tuples()[0]))
	// Output:
	// [Gaus(25,4), Floor{[25, +Inf)}]
	// Pr(exists) = 0.50
}

// ExampleTable_Select reproduces the paper's σ_{a<b} over Table II: the
// predicate spans two dependency sets, so Ω merges them into a joint pdf.
func ExampleTable_Select() {
	schema := core.MustSchema(
		core.Column{Name: "a", Type: core.IntType, Uncertain: true},
		core.Column{Name: "b", Type: core.IntType, Uncertain: true},
	)
	t := core.MustTable("T", schema, [][]string{{"a"}, {"b"}}, nil)
	t.Insert(core.Row{PDFs: []core.PDF{
		{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{0, 1}, []float64{0.1, 0.9})},
		{Attrs: []string{"b"}, Dist: dist.NewDiscrete([]float64{1, 2}, []float64{0.6, 0.4})},
	}})
	sel, _ := t.Select(core.Cmp(core.Col("a"), region.LT, core.Col("b")))
	n, _ := sel.NodeOf(sel.Tuples()[0], "a")
	fmt.Println(n.Dist)
	// Output:
	// Discrete({0,1}:0.06, {0,2}:0.04, {1,2}:0.36)
}

// ExampleTable_AggregateSum shows the continuous approximation kicking in
// when an exact aggregate would need an exponential discrete support.
func ExampleTable_AggregateSum() {
	schema := core.MustSchema(core.Column{Name: "x", Type: core.IntType, Uncertain: true})
	t := core.MustTable("T", schema, nil, nil)
	for i := 0; i < 100; i++ {
		t.Insert(core.Row{PDFs: []core.PDF{{
			Attrs: []string{"x"},
			Dist:  dist.NewDiscrete([]float64{0, 1, 2}, []float64{0.25, 0.5, 0.25}),
		}}})
	}
	sum, _ := t.AggregateSum("x", core.AggOptions{MaxExactSupport: 64})
	fmt.Printf("mean=%.0f variance=%.0f kind=%v\n", sum.Mean(0), sum.Variance(0), dist.KindOf(sum))
	// Output:
	// mean=100 variance=50 kind=continuous
}
