package core

import (
	"fmt"
	"sort"
	"sync"

	"probdb/internal/colpdf"
	"probdb/internal/dist"
	"probdb/internal/exec"
)

// NodeID identifies a base pdf in the registry. Base pdfs are the
// "top-level ancestors" of §II-C: every derived pdf points back at the base
// pdfs it came from.
type NodeID uint64

// AncestorSet is the history Λ of one pdf: the sorted set of base pdf IDs it
// derives from (Definition 2). For a freshly inserted pdf the set contains
// just the pdf's own ID.
type AncestorSet []NodeID

// newAncestorSet normalizes ids into a sorted, deduplicated set.
func newAncestorSet(ids ...NodeID) AncestorSet {
	if len(ids) == 0 {
		return nil
	}
	out := make(AncestorSet, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:1]
	for _, id := range out[1:] {
		if id != dedup[len(dedup)-1] {
			dedup = append(dedup, id)
		}
	}
	return dedup
}

// Union merges two ancestor sets (Definition 2: a derived pdf's history is
// the union of its sources' histories).
func (a AncestorSet) Union(b AncestorSet) AncestorSet {
	return newAncestorSet(append(append(AncestorSet{}, a...), b...)...)
}

// Intersect returns the common ancestors of two sets.
func (a AncestorSet) Intersect(b AncestorSet) AncestorSet {
	var out AncestorSet
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Dependent reports whether the two histories share an ancestor
// (Definition 3: historically dependent pdfs).
func (a AncestorSet) Dependent(b AncestorSet) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Contains reports membership.
func (a AncestorSet) Contains(id NodeID) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= id })
	return i < len(a) && a[i] == id
}

// baseRecord is the registry entry for one base pdf: the attributes it is
// jointly distributed over, the original (unfloored, complete) distribution,
// and a reference count. When the owning tuple is deleted while derived
// tuples still reference the record, it survives as a phantom node until the
// count reaches zero (§II-C).
type baseRecord struct {
	attrs   []AttrID
	d       dist.Dist
	refs    int
	phantom bool // owning tuple deleted; record kept for derived tuples
}

// Registry is the database-wide store of base pdfs. All tables produced
// from one another share a registry so that histories remain meaningful
// across operations.
type Registry struct {
	mu   sync.Mutex
	next NodeID
	base map[NodeID]*baseRecord
	// mass memoizes mass/CDF/interval evaluations of pristine base pdfs,
	// keyed by NodeID (never reused, so entries can't alias a later pdf).
	// Records freed by release evict their entries.
	mass *exec.MassCache
	// colenc caches columnar encodings of base tables, keyed by table
	// identity + DML version (see columnar.go). Invalidated by version
	// bumps; sheddable under memory pressure.
	colenc *colpdf.Cache
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{next: 1, base: make(map[NodeID]*baseRecord), mass: exec.NewMassCache(), colenc: colpdf.NewCache()}
}

// MassCache returns the registry's pdf-evaluation memoization cache (its
// hit/miss counters feed EXPLAIN and the server's per-query stats).
func (r *Registry) MassCache() *exec.MassCache { return r.mass }

// ColCache returns the registry's columnar-encoding cache.
func (r *Registry) ColCache() *colpdf.Cache { return r.colenc }

// register records a new base pdf over the given attributes and returns its
// ID. The initial reference count 1 belongs to the inserting tuple's own
// node.
func (r *Registry) register(attrs []AttrID, d dist.Dist) NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.next
	r.next++
	a := make([]AttrID, len(attrs))
	copy(a, attrs)
	r.base[id] = &baseRecord{attrs: a, d: d, refs: 1}
	return id
}

// lookup returns the base record for id. It panics on unknown IDs — a
// registry/table mismatch is a programming error, not a data condition.
func (r *Registry) lookup(id NodeID) (attrs []AttrID, d dist.Dist) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.base[id]
	if !ok {
		panic(fmt.Sprintf("core: unknown base pdf %d", id))
	}
	return rec.attrs, rec.d
}

// retain adds one reference to every listed ancestor.
func (r *Registry) retain(ids AncestorSet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		if rec, ok := r.base[id]; ok {
			rec.refs++
		}
	}
}

// release drops one reference from every listed ancestor, deleting records
// that reach zero references.
func (r *Registry) release(ids AncestorSet) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		rec, ok := r.base[id]
		if !ok {
			continue
		}
		rec.refs--
		if rec.refs <= 0 {
			delete(r.base, id)
			r.mass.Invalidate(uint64(id))
		}
	}
}

// retainTuples adds one reference to every ancestor of every pdf node in
// tups, under a single lock acquisition. Freeze uses it so a snapshot can
// pin the base pdfs its tuples derive from against concurrent deletes.
func (r *Registry) retainTuples(tups []*Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tup := range tups {
		for _, n := range tup.nodes {
			for _, id := range n.Anc {
				if rec, ok := r.base[id]; ok {
					rec.refs++
				}
			}
		}
	}
}

// releaseTuples drops the references retainTuples took, freeing records
// whose counts reach zero.
func (r *Registry) releaseTuples(tups []*Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, tup := range tups {
		for _, n := range tup.nodes {
			for _, id := range n.Anc {
				rec, ok := r.base[id]
				if !ok {
					continue
				}
				rec.refs--
				if rec.refs <= 0 {
					delete(r.base, id)
					r.mass.Invalidate(uint64(id))
				}
			}
		}
	}
}

// Clone returns a private copy of the registry: the same node IDs mapped to
// fresh records (sharing the immutable attr slices and distributions, with
// independent reference counts), the same next-ID counter, and a fresh mass
// cache. A transaction overlay clones the registry so its speculative
// inserts and deletes never touch the authoritative refcounts — discarding
// the overlay is then free.
func (r *Registry) Clone() *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Registry{next: r.next, base: make(map[NodeID]*baseRecord, len(r.base)), mass: exec.NewMassCache(), colenc: colpdf.NewCache()}
	for id, rec := range r.base {
		cp := *rec
		c.base[id] = &cp
	}
	return c
}

// markPhantom flags the record as belonging to a deleted base tuple. The
// record stays alive while derived tuples reference it.
func (r *Registry) markPhantom(id NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec, ok := r.base[id]; ok {
		rec.phantom = true
	}
}

// Len returns the number of live base records (including phantoms).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.base)
}

// PhantomCount returns the number of phantom records kept alive by derived
// references.
func (r *Registry) PhantomCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rec := range r.base {
		if rec.phantom {
			n++
		}
	}
	return n
}
