package core

import (
	"fmt"

	"probdb/internal/region"
)

// This file is the compiled (planned) form of the relational operators: each
// Plan* constructor runs an operator's per-table analysis once — schema and
// dependency-set work, atom classification, the closure Ω — and returns a
// kernel holding the derived table's shape plus a pure per-tuple function.
// The Table methods in ops.go call these kernels inside their materializing
// loops, and internal/pipe's streaming operators call the same kernels one
// batch at a time, which is what makes the two execution strategies
// byte-identical: same planning state, same per-tuple floats, same order.
//
// Planning only reads Σ, Δ, ids and the registry — never the tuples — so a
// kernel planned against an empty derived table evaluates tuples of any
// table sharing that shape. (Project is the exception: its phantom-retention
// mode depends on the tuples' masses, so it stays a whole-table operator and
// the streaming executor materializes before projecting.)

// Selection is a compiled Select: the derived table shape and the planned
// atoms (certain filters, rectangular floors, closure merges, joint floors).
type Selection struct {
	in  *Table
	out *Table

	cls          []classified
	promotedCols map[int]bool
	plans        []*mergePlan
	oldToNew     []int
	planDep      []int
	floors       []floorOp
	crosses      []crossOp
}

type floorOp struct {
	dep  int
	dim  int
	keep region.Set
}

type crossOp struct {
	dep        int
	ldim, rdim int
	op         region.Op
}

// PlanSelect compiles a conjunction of atoms against the table (§III-C):
// atom classification, the closure Ω over dependency sets linked by cross
// atoms, merged-set planning, and the floor operations located in the
// derived structure. The returned kernel's Out table is empty; Eval maps
// input tuples to output tuples.
func (t *Table) PlanSelect(atoms ...Atom) (*Selection, error) {
	cls := make([]classified, len(atoms))
	for i, a := range atoms {
		c, err := t.classify(a)
		if err != nil {
			return nil, err
		}
		cls[i] = c
	}

	groups, err := t.mergeGroups(cls)
	if err != nil {
		return nil, err
	}

	// Build the derived table structure: surviving dependency sets plus one
	// merged set per group, and a schema where promoted certain columns
	// become uncertain.
	merged := map[int]bool{}       // old dep index -> part of a merge
	promotedCols := map[int]bool{} // visible column index -> promoted
	plans := make([]*mergePlan, len(groups))
	for gi, g := range groups {
		for _, si := range g.setIdxs {
			merged[si] = true
		}
		for _, ci := range g.promoted {
			promotedCols[ci] = true
		}
		plan, err := t.planMerge(g.setIdxs, g.promoted)
		if err != nil {
			return nil, err
		}
		plans[gi] = plan
	}

	cols := append([]Column(nil), t.schema.Columns()...)
	for ci := range promotedCols {
		cols[ci].Uncertain = true
	}
	newSchema, err := NewSchema(cols)
	if err != nil {
		return nil, err
	}

	out := &Table{
		Name:         fmt.Sprintf("σ(%s)", t.Name),
		schema:       newSchema,
		ids:          t.ids,
		reg:          t.reg,
		trackHistory: t.trackHistory,
		par:          t.par,
	}
	oldToNew := make([]int, len(t.deps))
	for si, d := range t.deps {
		if merged[si] {
			oldToNew[si] = -1
			continue
		}
		oldToNew[si] = len(out.deps)
		out.deps = append(out.deps, d)
	}
	planDep := make([]int, len(plans))
	for gi, plan := range plans {
		planDep[gi] = len(out.deps)
		out.deps = append(out.deps, plan.merged)
	}

	// Locate every pdf-level atom in the new structure once.
	var floors []floorOp
	var crosses []crossOp
	for _, c := range cls {
		switch c.class {
		case atomUncertainConst:
			dep, dim := out.locate(t.idOf(c.colName))
			floors = append(floors, floorOp{dep: dep, dim: dim, keep: c.keep})
		case atomCross:
			ldep, ldim := out.locate(t.idOf(c.leftCol))
			rdep, rdim := out.locate(t.idOf(c.rightCol))
			if ldep != rdep {
				return nil, fmt.Errorf("core: internal: closure failed to merge %q and %q", c.leftCol, c.rightCol)
			}
			crosses = append(crosses, crossOp{dep: ldep, ldim: ldim, rdim: rdim, op: c.atom.Op})
		}
	}
	return &Selection{
		in: t, out: out,
		cls: cls, promotedCols: promotedCols, plans: plans,
		oldToNew: oldToNew, planDep: planDep, floors: floors, crosses: crosses,
	}, nil
}

// Out returns the (empty) derived table the selection produces tuples for.
func (s *Selection) Out() *Table { return s.out }

// Eval evaluates one tuple against the planned atoms: filter, merge, floor,
// and the final zero-mass check. It returns nil (no error) when the tuple is
// filtered. Everything it touches is either read-only planning state or the
// tuple's own nodes, so tuples evaluate independently on worker goroutines.
func (s *Selection) Eval(tup *Tuple) (*Tuple, error) {
	t := s.in
	// Case 1: certain predicates filter outright.
	for _, c := range s.cls {
		if c.class == atomCertain && !t.evalCertain(c.atom, tup) {
			return nil, nil
		}
	}
	// A NULL in a certain column about to be promoted into a joint can
	// satisfy no predicate: the tuple is filtered, matching SQL's
	// three-valued logic collapsed to false.
	for ci := range s.promotedCols {
		if _, numeric := tup.certain[ci].AsFloat(); !numeric {
			return nil, nil
		}
	}
	nodes := make([]*PDFNode, len(s.out.deps))
	for si := range t.deps {
		if s.oldToNew[si] >= 0 {
			nodes[s.oldToNew[si]] = tup.nodes[si]
		}
	}
	for gi, plan := range s.plans {
		n, err := t.mergeTupleNodes(plan, tup)
		if err != nil {
			return nil, err
		}
		nodes[s.planDep[gi]] = n
	}
	// Case 2a: rectangular floors.
	for _, f := range s.floors {
		n := nodes[f.dep]
		nodes[f.dep] = withDist(n, n.Dist.Floor(f.dim, f.keep))
	}
	// Case 2b: predicate floors over the merged joint.
	for _, c := range s.crosses {
		n := nodes[c.dep]
		op := c.op
		l, r := c.ldim, c.rdim
		nodes[c.dep] = withDist(n, n.Dist.FloorWhere(func(x []float64) bool {
			return op.Eval(x[l], x[r])
		}))
	}
	// Remove tuples whose pdfs were completely floored.
	for _, n := range nodes {
		if t.nodeMass(n) <= 0 {
			return nil, nil
		}
	}
	newCertain := append([]Value(nil), tup.certain...)
	for ci := range s.promotedCols {
		newCertain[ci] = Null // value now lives in the joint pdf
	}
	return &Tuple{certain: newCertain, nodes: nodes}, nil
}

// ProbSelection is a compiled probability-threshold selection (§III-E): a
// pure per-tuple keep/drop decision over probability values — no pdf is
// floored, histories are copied over unchanged.
type ProbSelection struct {
	out  *Table
	keep func(*Tuple) (bool, error)
}

// PlanProbSelect compiles "keep tuples whose Pr(attrs) op p".
func (t *Table) PlanProbSelect(attrs []string, op region.Op, p float64) *ProbSelection {
	return &ProbSelection{
		out: t.shallowDerived(fmt.Sprintf("σPr(%s)", t.Name)),
		keep: func(tup *Tuple) (bool, error) {
			pr, err := t.Prob(tup, attrs...)
			if err != nil {
				return false, err
			}
			return op.Eval(pr, p), nil
		},
	}
}

// PlanRangeThreshold compiles "keep tuples with Pr(attr ∈ [lo, hi]) op p".
func (t *Table) PlanRangeThreshold(attr string, lo, hi float64, op region.Op, p float64) *ProbSelection {
	return &ProbSelection{
		out: t.shallowDerived(fmt.Sprintf("σPr∈(%s)", t.Name)),
		keep: func(tup *Tuple) (bool, error) {
			pr, err := t.ProbInRange(tup, attr, lo, hi)
			if err != nil {
				return false, err
			}
			return op.Eval(pr, p), nil
		},
	}
}

// Out returns the (empty) derived table the selection produces tuples for.
// Kept tuples pass through unchanged (Append them as-is).
func (p *ProbSelection) Out() *Table { return p.out }

// Keep reports whether the tuple's probability value satisfies the
// threshold. Safe to call concurrently: it reads only planning state, the
// tuple, and the registry's (sharded, locked) mass cache.
func (p *ProbSelection) Keep(tup *Tuple) (bool, error) { return p.keep(tup) }

// CrossKernel is a compiled cross product: the product table's shape (built
// once, with the identity-collision analysis of §III-D) and a pair function
// concatenating one left and one right tuple.
type CrossKernel struct {
	out *Table
}

// PlanCross compiles t × o: registry and identity checks, the concatenated
// schema, and the product dependency structure. The returned kernel's Out
// table is empty; Pair builds one product tuple.
func (t *Table) PlanCross(o *Table) (*CrossKernel, error) {
	if t.reg != o.reg {
		return nil, fmt.Errorf("core: cross product across registries (%s × %s)", t.Name, o.Name)
	}
	seen := map[AttrID]bool{}
	for _, id := range t.ids {
		seen[id] = true
	}
	for _, d := range t.deps {
		for _, id := range d.ids {
			seen[id] = true
		}
	}
	// Certain columns carried through both branches (e.g. a key that was
	// projected into both sides) collide in identity but carry no history —
	// a constant is trivially independent of itself — so the right side gets
	// fresh identities for them. Colliding *uncertain* attributes mean the
	// operand really is a dependent copy of the receiver, which the model
	// does not define semantics for (self-joins need duplicate semantics the
	// paper leaves as ongoing work).
	oIDs := append([]AttrID(nil), o.ids...)
	for i, id := range oIDs {
		if !seen[id] {
			continue
		}
		if o.schema.Columns()[i].Uncertain {
			return nil, fmt.Errorf("core: cross product of %s with a dependent copy of itself is not supported", t.Name)
		}
		oIDs[i] = newAttrID()
	}
	for _, d := range o.deps {
		for _, id := range d.ids {
			if seen[id] {
				return nil, fmt.Errorf("core: cross product of %s with a dependent copy of itself is not supported", t.Name)
			}
		}
	}
	cols := append(append([]Column(nil), t.schema.Columns()...), o.schema.Columns()...)
	newSchema, err := NewSchema(cols)
	if err != nil {
		return nil, fmt.Errorf("core: cross product %s × %s: %v (rename columns first)", t.Name, o.Name, err)
	}
	out := &Table{
		Name:         fmt.Sprintf("%s×%s", t.Name, o.Name),
		schema:       newSchema,
		ids:          append(append([]AttrID(nil), t.ids...), oIDs...),
		reg:          t.reg,
		trackHistory: t.trackHistory && o.trackHistory,
		par:          t.par,
	}
	out.deps = append(append([]*depSet(nil), t.deps...), o.deps...)
	return &CrossKernel{out: out}, nil
}

// Out returns the (empty) product table.
func (k *CrossKernel) Out() *Table { return k.out }

// Pair concatenates one left and one right tuple into a product tuple.
func (k *CrossKernel) Pair(a, b *Tuple) *Tuple {
	return &Tuple{
		certain: append(append([]Value(nil), a.certain...), b.certain...),
		nodes:   append(append([]*PDFNode(nil), a.nodes...), b.nodes...),
	}
}

// EquiJoinKernel is a compiled hash equi-join: the product table's shape and
// a hash index over the right operand's tuples keyed by the (certain) join
// column. Matches streams the left side one tuple at a time.
type EquiJoinKernel struct {
	cross *CrossKernel
	out   *Table
	index map[string][]*Tuple
	li    int
}

// PlanEquiJoin compiles t ⋈ o on certain key columns: the product shape via
// PlanCross (over an empty right shape, exactly as EquiJoin builds it) and
// the hash index over o's tuples. NULL keys join nothing.
func (t *Table) PlanEquiJoin(o *Table, leftKey, rightKey string) (*EquiJoinKernel, error) {
	lcol, ok := t.schema.Lookup(leftKey)
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q", leftKey)
	}
	rcol, ok := o.schema.Lookup(rightKey)
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q", rightKey)
	}
	if lcol.Uncertain || rcol.Uncertain {
		return nil, fmt.Errorf("core: EquiJoin keys must be certain columns (use Join for uncertain predicates)")
	}
	empty := &Table{Name: o.Name, schema: o.schema, ids: o.ids, deps: o.deps, reg: o.reg, trackHistory: o.trackHistory}
	cross, err := t.PlanCross(empty)
	if err != nil {
		return nil, err
	}
	cross.out.Name = fmt.Sprintf("%s⋈%s", t.Name, o.Name)

	index := make(map[string][]*Tuple, o.Len())
	ri := o.schema.Index(rightKey)
	for _, tup := range o.tuples {
		v := tup.certain[ri]
		if v.IsNull() {
			continue // NULL joins nothing
		}
		index[v.Render()] = append(index[v.Render()], tup)
	}
	return &EquiJoinKernel{
		cross: cross,
		out:   cross.out,
		index: index,
		li:    t.schema.Index(leftKey),
	}, nil
}

// Out returns the (empty) join result table.
func (k *EquiJoinKernel) Out() *Table { return k.out }

// BuildSize estimates the bytes the hash build side holds: the indexed
// tuple references plus per-key map overhead. Operators charge it against
// the query budget when they adopt the kernel.
func (k *EquiJoinKernel) BuildSize() int64 {
	var n int64
	for _, bs := range k.index {
		n += int64(len(bs)) * 24 // slice entry + amortized tuple ref
	}
	return n + int64(len(k.index))*64 // map buckets + key strings
}

// Matches returns the product tuples the left tuple contributes, in the
// right operand's tuple order (the sequential nested-loop pair order), or
// nil when the key is NULL or unmatched. Safe to call concurrently once the
// kernel is built: the index is read-only.
func (k *EquiJoinKernel) Matches(a *Tuple) []*Tuple {
	v := a.certain[k.li]
	if v.IsNull() {
		return nil
	}
	bs := k.index[v.Render()]
	if len(bs) == 0 {
		return nil
	}
	pairs := make([]*Tuple, len(bs))
	for j, b := range bs {
		pairs[j] = k.cross.Pair(a, b)
	}
	return pairs
}

// Append adds a tuple produced by one of the table's kernels (or shared from
// the kernel's input, for pure filters) to the table, retaining its pdf
// ancestry. It is the assembly half of the streaming executor: kernels
// produce tuples, Append owns them.
func (t *Table) Append(tup *Tuple) {
	t.tuples = append(t.tuples, tup)
	t.retainTuple(tup)
}
