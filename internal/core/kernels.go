package core

import (
	"fmt"

	"probdb/internal/colpdf"
	"probdb/internal/exec"
	"probdb/internal/region"
)

// This file is the compiled (planned) form of the relational operators: each
// Plan* constructor runs an operator's per-table analysis once — schema and
// dependency-set work, atom classification, the closure Ω — and returns a
// kernel holding the derived table's shape plus a pure per-tuple function.
// The Table methods in ops.go call these kernels inside their materializing
// loops, and internal/pipe's streaming operators call the same kernels one
// batch at a time, which is what makes the two execution strategies
// byte-identical: same planning state, same per-tuple floats, same order.
//
// Planning only reads Σ, Δ, ids and the registry — never the tuples — so a
// kernel planned against an empty derived table evaluates tuples of any
// table sharing that shape. (Project is the exception: its phantom-retention
// mode depends on the tuples' masses, so it stays a whole-table operator and
// the streaming executor materializes before projecting.)

// Selection is a compiled Select: the derived table shape and the planned
// atoms (certain filters, rectangular floors, closure merges, joint floors).
type Selection struct {
	in  *Table
	out *Table

	cls          []classified
	promotedCols map[int]bool
	plans        []*mergePlan
	oldToNew     []int
	planDep      []int
	floors       []floorOp
	crosses      []crossOp

	// cursor tracks where the next streamed batch is expected to start in
	// the input table, so EvalBatch can serve cached columnar encodings.
	// Touched only by the (single-threaded) batch driver.
	cursor int
	stats  kernelStats
}

type floorOp struct {
	dep  int
	dim  int
	keep region.Set
}

type crossOp struct {
	dep        int
	ldim, rdim int
	op         region.Op
}

// PlanSelect compiles a conjunction of atoms against the table (§III-C):
// atom classification, the closure Ω over dependency sets linked by cross
// atoms, merged-set planning, and the floor operations located in the
// derived structure. The returned kernel's Out table is empty; Eval maps
// input tuples to output tuples.
func (t *Table) PlanSelect(atoms ...Atom) (*Selection, error) {
	cls := make([]classified, len(atoms))
	for i, a := range atoms {
		c, err := t.classify(a)
		if err != nil {
			return nil, err
		}
		cls[i] = c
	}

	groups, err := t.mergeGroups(cls)
	if err != nil {
		return nil, err
	}

	// Build the derived table structure: surviving dependency sets plus one
	// merged set per group, and a schema where promoted certain columns
	// become uncertain.
	merged := map[int]bool{}       // old dep index -> part of a merge
	promotedCols := map[int]bool{} // visible column index -> promoted
	plans := make([]*mergePlan, len(groups))
	for gi, g := range groups {
		for _, si := range g.setIdxs {
			merged[si] = true
		}
		for _, ci := range g.promoted {
			promotedCols[ci] = true
		}
		plan, err := t.planMerge(g.setIdxs, g.promoted)
		if err != nil {
			return nil, err
		}
		plans[gi] = plan
	}

	cols := append([]Column(nil), t.schema.Columns()...)
	for ci := range promotedCols {
		cols[ci].Uncertain = true
	}
	newSchema, err := NewSchema(cols)
	if err != nil {
		return nil, err
	}

	out := &Table{
		Name:         fmt.Sprintf("σ(%s)", t.Name),
		schema:       newSchema,
		ids:          t.ids,
		reg:          t.reg,
		trackHistory: t.trackHistory,
		par:          t.par,
	}
	oldToNew := make([]int, len(t.deps))
	for si, d := range t.deps {
		if merged[si] {
			oldToNew[si] = -1
			continue
		}
		oldToNew[si] = len(out.deps)
		out.deps = append(out.deps, d)
	}
	planDep := make([]int, len(plans))
	for gi, plan := range plans {
		planDep[gi] = len(out.deps)
		out.deps = append(out.deps, plan.merged)
	}

	// Locate every pdf-level atom in the new structure once.
	var floors []floorOp
	var crosses []crossOp
	for _, c := range cls {
		switch c.class {
		case atomUncertainConst:
			dep, dim := out.locate(t.idOf(c.colName))
			floors = append(floors, floorOp{dep: dep, dim: dim, keep: c.keep})
		case atomCross:
			ldep, ldim := out.locate(t.idOf(c.leftCol))
			rdep, rdim := out.locate(t.idOf(c.rightCol))
			if ldep != rdep {
				return nil, fmt.Errorf("core: internal: closure failed to merge %q and %q", c.leftCol, c.rightCol)
			}
			crosses = append(crosses, crossOp{dep: ldep, ldim: ldim, rdim: rdim, op: c.atom.Op})
		}
	}
	return &Selection{
		in: t, out: out,
		cls: cls, promotedCols: promotedCols, plans: plans,
		oldToNew: oldToNew, planDep: planDep, floors: floors, crosses: crosses,
	}, nil
}

// Out returns the (empty) derived table the selection produces tuples for.
func (s *Selection) Out() *Table { return s.out }

// Eval evaluates one tuple against the planned atoms: filter, merge, floor,
// and the final zero-mass check. It returns nil (no error) when the tuple is
// filtered. Everything it touches is either read-only planning state or the
// tuple's own nodes, so tuples evaluate independently on worker goroutines.
func (s *Selection) Eval(tup *Tuple) (*Tuple, error) {
	t := s.in
	// Case 1: certain predicates filter outright.
	for _, c := range s.cls {
		if c.class == atomCertain && !t.evalCertain(c.atom, tup) {
			return nil, nil
		}
	}
	// A NULL in a certain column about to be promoted into a joint can
	// satisfy no predicate: the tuple is filtered, matching SQL's
	// three-valued logic collapsed to false.
	for ci := range s.promotedCols {
		if _, numeric := tup.certain[ci].AsFloat(); !numeric {
			return nil, nil
		}
	}
	nodes := make([]*PDFNode, len(s.out.deps))
	for si := range t.deps {
		if s.oldToNew[si] >= 0 {
			nodes[s.oldToNew[si]] = tup.nodes[si]
		}
	}
	for gi, plan := range s.plans {
		n, err := t.mergeTupleNodes(plan, tup)
		if err != nil {
			return nil, err
		}
		nodes[s.planDep[gi]] = n
	}
	// Case 2a: rectangular floors.
	for _, f := range s.floors {
		n := nodes[f.dep]
		nodes[f.dep] = withDist(n, n.Dist.Floor(f.dim, f.keep))
	}
	// Case 2b: predicate floors over the merged joint.
	for _, c := range s.crosses {
		n := nodes[c.dep]
		op := c.op
		l, r := c.ldim, c.rdim
		nodes[c.dep] = withDist(n, n.Dist.FloorWhere(func(x []float64) bool {
			return op.Eval(x[l], x[r])
		}))
	}
	// Remove tuples whose pdfs were completely floored.
	for _, n := range nodes {
		if t.nodeMass(n) <= 0 {
			return nil, nil
		}
	}
	newCertain := append([]Value(nil), tup.certain...)
	for ci := range s.promotedCols {
		newCertain[ci] = Null // value now lives in the joint pdf
	}
	return &Tuple{certain: newCertain, nodes: nodes}, nil
}

// Report returns the kernel's evaluation summary for EXPLAIN and stats.
func (s *Selection) Report() KernelReport { return s.stats.report(s.out.Name) }

// vectorizable reports whether the selection passes tuples through
// structurally unchanged: no merges, promotions, floors, or cross floors.
// Such selections are certain filters plus the zero-mass check, which the
// columnar mass lane answers without touching any pdf.
func (s *Selection) vectorizable() bool {
	return len(s.plans) == 0 && len(s.floors) == 0 && len(s.crosses) == 0 && len(s.promotedCols) == 0
}

// EvalBatch evaluates one streamed batch, writing the produced tuple (or
// nil for a filtered one) into slots[i] for in[i]. Batches arrive in table
// order from the pipelined executor, so a sequential cursor locates them in
// the input table for encoding-cache reuse.
func (s *Selection) EvalBatch(in []*Tuple, par int, slots []*Tuple) error {
	at := -1
	if s.in.batchAt(s.cursor, in) {
		at = s.cursor
	} else if s.cursor != 0 && s.in.batchAt(0, in) {
		at = 0 // the source was re-scanned from the top
	}
	if at >= 0 {
		s.cursor = at + len(in)
	}
	return s.evalBatchAt(in, at, par, slots)
}

// evalBatchAt is the batch body shared by EvalBatch and the legacy
// whole-table driver, which passes the batch offset explicitly (at < 0
// means "not a table slice": evaluate with a scratch encoding).
func (s *Selection) evalBatchAt(in []*Tuple, at, par int, slots []*Tuple) error {
	n := len(in)
	if n == 0 {
		return nil
	}
	if !VectorizedKernels() || !s.vectorizable() {
		s.stats.scalar.Add(uint64(n))
		return exec.For(par, n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				nt, err := s.Eval(in[i])
				if err != nil {
					return err
				}
				slots[i] = nt
			}
			return nil
		})
	}
	t := s.in
	blocks := make([]*colpdf.Block, len(t.deps))
	for di := range t.deps {
		blocks[di] = t.colBlockFor(di, 0, at, in)
		s.stats.note(blocks[di].StatsIn(0, n), true)
	}
	if len(t.deps) == 0 {
		s.stats.vec.Add(uint64(n)) // certain-only table: nothing to encode
	}
	return exec.For(par, n, func(lo, hi int) error {
	tuples:
		for i := lo; i < hi; i++ {
			tup := in[i]
			for _, c := range s.cls {
				if c.class == atomCertain && !t.evalCertain(c.atom, tup) {
					continue tuples // slots[i] stays nil
				}
			}
			// The zero-mass check over the (unchanged) nodes, answered from
			// the mass lanes. Node order does not matter: a tuple drops iff
			// any node's mass is ≤ 0, and the lane holds nodeMass's floats.
			for _, b := range blocks {
				if b.Mass()[i] <= 0 {
					continue tuples
				}
			}
			nodes := make([]*PDFNode, len(s.out.deps))
			for si := range t.deps {
				if s.oldToNew[si] >= 0 {
					nodes[s.oldToNew[si]] = tup.nodes[si]
				}
			}
			slots[i] = &Tuple{certain: append([]Value(nil), tup.certain...), nodes: nodes}
		}
		return nil
	})
}

// probKind distinguishes the two probability-value selections: a tuple
// existence-mass threshold (Pr(attrs) op p) and a range-probability
// threshold (Pr(attr ∈ [lo, hi]) op p).
type probKind uint8

const (
	probMass probKind = iota
	probRange
)

// ProbSelection is a compiled probability-threshold selection (§III-E): a
// pure per-tuple keep/drop decision over probability values — no pdf is
// floored, histories are copied over unchanged. The plan carries the
// resolved dependency-set targets so KeepBatch can evaluate whole batches
// through the columnar kernels; Keep remains the scalar reference.
type ProbSelection struct {
	in   *Table
	out  *Table
	op   region.Op
	p    float64
	kind probKind

	// probMass: the Pr(attrs) argument list, and the distinct dependency
	// sets it touches in first-occurrence order — the exact multiplication
	// order the scalar Prob uses.
	attrs []string
	deps  []int

	// probRange: the target column and its location.
	attr   string
	dep    int
	dim    int
	lo, hi float64

	// resolveErr records a plan-time resolution failure (unknown or certain
	// column). The scalar path reproduces the identical per-tuple error, so
	// batches route there instead of vectorizing.
	resolveErr error

	// cursor tracks where the next streamed batch is expected to start in
	// the input table. Touched only by the (single-threaded) batch driver.
	cursor int
	stats  kernelStats
}

// PlanProbSelect compiles "keep tuples whose Pr(attrs) op p".
func (t *Table) PlanProbSelect(attrs []string, op region.Op, p float64) *ProbSelection {
	ps := &ProbSelection{
		in:    t,
		out:   t.shallowDerived(fmt.Sprintf("σPr(%s)", t.Name)),
		op:    op,
		p:     p,
		kind:  probMass,
		attrs: append([]string(nil), attrs...),
	}
	seen := map[int]bool{}
	for _, a := range attrs {
		col, ok := t.schema.Lookup(a)
		if !ok {
			ps.resolveErr = fmt.Errorf("core: unknown column %q", a)
			break
		}
		if !col.Uncertain {
			continue
		}
		if di := t.depOf(t.idOf(a)); !seen[di] {
			seen[di] = true
			ps.deps = append(ps.deps, di)
		}
	}
	return ps
}

// PlanRangeThreshold compiles "keep tuples with Pr(attr ∈ [lo, hi]) op p".
func (t *Table) PlanRangeThreshold(attr string, lo, hi float64, op region.Op, p float64) *ProbSelection {
	ps := &ProbSelection{
		in:   t,
		out:  t.shallowDerived(fmt.Sprintf("σPr∈(%s)", t.Name)),
		op:   op,
		p:    p,
		kind: probRange,
		attr: attr,
		lo:   lo,
		hi:   hi,
	}
	id := t.idOf(attr)
	if id == 0 {
		ps.resolveErr = fmt.Errorf("core: unknown column %q", attr)
		return ps
	}
	di := t.depOf(id)
	if di < 0 {
		ps.resolveErr = fmt.Errorf("core: column %q is certain", attr)
		return ps
	}
	ps.dep = di
	ps.dim = t.deps[di].dimOf(id)
	return ps
}

// Out returns the (empty) derived table the selection produces tuples for.
// Kept tuples pass through unchanged (Append them as-is).
func (p *ProbSelection) Out() *Table { return p.out }

// Keep reports whether the tuple's probability value satisfies the
// threshold — the scalar reference path. Safe to call concurrently: it
// reads only planning state, the tuple, and the registry's (sharded,
// locked) mass cache.
func (p *ProbSelection) Keep(tup *Tuple) (bool, error) {
	var pr float64
	var err error
	if p.kind == probMass {
		pr, err = p.in.Prob(tup, p.attrs...)
	} else {
		pr, err = p.in.ProbInRange(tup, p.attr, p.lo, p.hi)
	}
	if err != nil {
		return false, err
	}
	return p.op.Eval(pr, p.p), nil
}

// Report returns the kernel's evaluation summary for EXPLAIN and stats.
func (p *ProbSelection) Report() KernelReport { return p.stats.report(p.out.Name) }

// KeepBatch evaluates one streamed batch, writing keep decisions into keep
// (len(keep) == len(in)). It serves the pipelined executor: batches arrive
// in table order, so a sequential cursor locates them in the input table
// for encoding-cache reuse; a batch that is not a verified slice of the
// table still vectorizes, with a scratch encoding.
func (p *ProbSelection) KeepBatch(in []*Tuple, par int, keep []bool) error {
	at := -1
	if p.in.batchAt(p.cursor, in) {
		at = p.cursor
	} else if p.cursor != 0 && p.in.batchAt(0, in) {
		at = 0 // the source was re-scanned from the top
	}
	if at >= 0 {
		p.cursor = at + len(in)
	}
	return p.keepBatchAt(in, at, par, keep)
}

// keepBatchAt is the batch body shared by KeepBatch and the legacy
// whole-table driver, which passes the batch offset explicitly (at < 0
// means "not a table slice": evaluate with a scratch encoding).
func (p *ProbSelection) keepBatchAt(in []*Tuple, at, par int, keep []bool) error {
	n := len(in)
	if n == 0 {
		return nil
	}
	if !VectorizedKernels() || p.resolveErr != nil {
		p.stats.scalar.Add(uint64(n))
		return exec.For(par, n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				k, err := p.Keep(in[i])
				if err != nil {
					return err
				}
				keep[i] = k
			}
			return nil
		})
	}
	vals := make([]float64, n)
	if p.kind == probMass {
		for i := range vals {
			vals[i] = 1
		}
		for _, di := range p.deps {
			b := p.in.colBlockFor(di, 0, at, in)
			m := b.Mass()
			for i := 0; i < n; i++ {
				vals[i] *= m[i]
			}
			p.stats.note(b.StatsIn(0, n), true)
		}
		if len(p.deps) == 0 {
			p.stats.vec.Add(uint64(n)) // Pr over certain columns is 1
		}
	} else {
		b := p.in.colBlockFor(p.dep, p.dim, at, in)
		iv := region.Closed(p.lo, p.hi)
		if err := exec.For(par, n, func(lo, hi int) error {
			b.EvalInterval(lo, hi, iv, vals[lo:hi], lo)
			return nil
		}); err != nil {
			return err
		}
		p.stats.note(b.StatsIn(0, n), false)
	}
	for i := 0; i < n; i++ {
		keep[i] = p.op.Eval(vals[i], p.p)
	}
	return nil
}

// CrossKernel is a compiled cross product: the product table's shape (built
// once, with the identity-collision analysis of §III-D) and a pair function
// concatenating one left and one right tuple.
type CrossKernel struct {
	out *Table
}

// PlanCross compiles t × o: registry and identity checks, the concatenated
// schema, and the product dependency structure. The returned kernel's Out
// table is empty; Pair builds one product tuple.
func (t *Table) PlanCross(o *Table) (*CrossKernel, error) {
	if t.reg != o.reg {
		return nil, fmt.Errorf("core: cross product across registries (%s × %s)", t.Name, o.Name)
	}
	seen := map[AttrID]bool{}
	for _, id := range t.ids {
		seen[id] = true
	}
	for _, d := range t.deps {
		for _, id := range d.ids {
			seen[id] = true
		}
	}
	// Certain columns carried through both branches (e.g. a key that was
	// projected into both sides) collide in identity but carry no history —
	// a constant is trivially independent of itself — so the right side gets
	// fresh identities for them. Colliding *uncertain* attributes mean the
	// operand really is a dependent copy of the receiver, which the model
	// does not define semantics for (self-joins need duplicate semantics the
	// paper leaves as ongoing work).
	oIDs := append([]AttrID(nil), o.ids...)
	for i, id := range oIDs {
		if !seen[id] {
			continue
		}
		if o.schema.Columns()[i].Uncertain {
			return nil, fmt.Errorf("core: cross product of %s with a dependent copy of itself is not supported", t.Name)
		}
		oIDs[i] = newAttrID()
	}
	for _, d := range o.deps {
		for _, id := range d.ids {
			if seen[id] {
				return nil, fmt.Errorf("core: cross product of %s with a dependent copy of itself is not supported", t.Name)
			}
		}
	}
	cols := append(append([]Column(nil), t.schema.Columns()...), o.schema.Columns()...)
	newSchema, err := NewSchema(cols)
	if err != nil {
		return nil, fmt.Errorf("core: cross product %s × %s: %v (rename columns first)", t.Name, o.Name, err)
	}
	out := &Table{
		Name:         fmt.Sprintf("%s×%s", t.Name, o.Name),
		schema:       newSchema,
		ids:          append(append([]AttrID(nil), t.ids...), oIDs...),
		reg:          t.reg,
		trackHistory: t.trackHistory && o.trackHistory,
		par:          t.par,
	}
	out.deps = append(append([]*depSet(nil), t.deps...), o.deps...)
	return &CrossKernel{out: out}, nil
}

// Out returns the (empty) product table.
func (k *CrossKernel) Out() *Table { return k.out }

// Pair concatenates one left and one right tuple into a product tuple.
func (k *CrossKernel) Pair(a, b *Tuple) *Tuple {
	return &Tuple{
		certain: append(append([]Value(nil), a.certain...), b.certain...),
		nodes:   append(append([]*PDFNode(nil), a.nodes...), b.nodes...),
	}
}

// EquiJoinKernel is a compiled hash equi-join: the product table's shape and
// a hash index over the right operand's tuples keyed by the (certain) join
// column. Matches streams the left side one tuple at a time.
type EquiJoinKernel struct {
	cross *CrossKernel
	out   *Table
	index map[string][]*Tuple
	li    int
}

// PlanEquiJoin compiles t ⋈ o on certain key columns: the product shape via
// PlanCross (over an empty right shape, exactly as EquiJoin builds it) and
// the hash index over o's tuples. NULL keys join nothing.
func (t *Table) PlanEquiJoin(o *Table, leftKey, rightKey string) (*EquiJoinKernel, error) {
	lcol, ok := t.schema.Lookup(leftKey)
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q", leftKey)
	}
	rcol, ok := o.schema.Lookup(rightKey)
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q", rightKey)
	}
	if lcol.Uncertain || rcol.Uncertain {
		return nil, fmt.Errorf("core: EquiJoin keys must be certain columns (use Join for uncertain predicates)")
	}
	empty := &Table{Name: o.Name, schema: o.schema, ids: o.ids, deps: o.deps, reg: o.reg, trackHistory: o.trackHistory}
	cross, err := t.PlanCross(empty)
	if err != nil {
		return nil, err
	}
	cross.out.Name = fmt.Sprintf("%s⋈%s", t.Name, o.Name)

	index := make(map[string][]*Tuple, o.Len())
	ri := o.schema.Index(rightKey)
	for _, tup := range o.tuples {
		v := tup.certain[ri]
		if v.IsNull() {
			continue // NULL joins nothing
		}
		index[v.Render()] = append(index[v.Render()], tup)
	}
	return &EquiJoinKernel{
		cross: cross,
		out:   cross.out,
		index: index,
		li:    t.schema.Index(leftKey),
	}, nil
}

// Out returns the (empty) join result table.
func (k *EquiJoinKernel) Out() *Table { return k.out }

// BuildSize estimates the bytes the hash build side holds: the indexed
// tuple references plus per-key map overhead. Operators charge it against
// the query budget when they adopt the kernel.
func (k *EquiJoinKernel) BuildSize() int64 {
	var n int64
	for _, bs := range k.index {
		n += int64(len(bs)) * 24 // slice entry + amortized tuple ref
	}
	return n + int64(len(k.index))*64 // map buckets + key strings
}

// Matches returns the product tuples the left tuple contributes, in the
// right operand's tuple order (the sequential nested-loop pair order), or
// nil when the key is NULL or unmatched. Safe to call concurrently once the
// kernel is built: the index is read-only.
func (k *EquiJoinKernel) Matches(a *Tuple) []*Tuple {
	v := a.certain[k.li]
	if v.IsNull() {
		return nil
	}
	bs := k.index[v.Render()]
	if len(bs) == 0 {
		return nil
	}
	pairs := make([]*Tuple, len(bs))
	for j, b := range bs {
		pairs[j] = k.cross.Pair(a, b)
	}
	return pairs
}

// Append adds a tuple produced by one of the table's kernels (or shared from
// the kernel's input, for pure filters) to the table, retaining its pdf
// ancestry. It is the assembly half of the streaming executor: kernels
// produce tuples, Append owns them.
func (t *Table) Append(tup *Tuple) {
	t.tuples = append(t.tuples, tup)
	t.retainTuple(tup)
}
