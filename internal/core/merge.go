package core

import (
	"fmt"

	"probdb/internal/dist"
)

// varRef identifies a random variable: one dimension of one base pdf. Two
// pdf dimensions are the same variable exactly when their varRefs are equal;
// this is what lets two projections of the same base tuple recognize that
// "their" a and b are the same a and b when they meet again in a join
// (Fig. 3).
type varRef struct {
	base NodeID
	dim  int
}

// mergePlan is the table-level structure of a dependency-set merge produced
// by the closure Ω: which dependency sets fuse, which certain columns are
// promoted to uncertain, and the target attribute order of the resulting
// joint. Phantom attributes of the fusing sets participate in the merge —
// their floors are propagated — but are marginalized out of the result, so
// the merged set lists only visible and promoted attributes.
type mergePlan struct {
	setIdxs  []int // indexes into Table.deps, ascending
	promoted []int // visible column indexes of promoted certain attributes
	merged   *depSet
	// targetDims[i] locates merged attribute i within its source dependency
	// set: which of plan.setIdxs (or -1 for promoted) and which dim.
	srcSet []int
	srcDim []int
}

// planMerge builds the merged dependency set: the visible attributes of the
// fusing sets (in set order), followed by the promoted certain attributes.
func (t *Table) planMerge(setIdxs, promoted []int) (*mergePlan, error) {
	p := &mergePlan{setIdxs: setIdxs, promoted: promoted, merged: &depSet{}}
	for i, si := range setIdxs {
		d := t.deps[si]
		for dim, id := range d.ids {
			if !t.visibleID(id) {
				continue // phantom: participates, then marginalized away
			}
			p.merged.ids = append(p.merged.ids, id)
			p.merged.names = append(p.merged.names, d.names[dim])
			p.merged.types = append(p.merged.types, d.types[dim])
			p.srcSet = append(p.srcSet, i)
			p.srcDim = append(p.srcDim, dim)
		}
	}
	for _, ci := range promoted {
		col := t.schema.Columns()[ci]
		if !col.Type.Numeric() {
			return nil, fmt.Errorf("core: cannot merge non-numeric certain column %q into a joint pdf", col.Name)
		}
		p.merged.ids = append(p.merged.ids, t.ids[ci])
		p.merged.names = append(p.merged.names, col.Name)
		p.merged.types = append(p.merged.types, col.Type)
		p.srcSet = append(p.srcSet, -1)
		p.srcDim = append(p.srcDim, len(p.srcDim))
	}
	if len(p.merged.ids) == 0 {
		return nil, fmt.Errorf("core: merge produces no visible attributes")
	}
	return p, nil
}

// mergeTupleNodes implements the paper's product operation (§III-A) for one
// tuple: the joint pdf over the variables of the plan's dependency sets.
//
// Historically independent inputs multiply directly and stay factored.
// Historically dependent inputs are reconstructed from their base ancestors
// — the joint is the product of the (marginalized) base pdfs with the floors
// of each input propagated on top, which is the paper's
//
//	f(x_S') = 0 where f1 or f2 is 0, else f(x_D1)·f(x_D2)·∏j f(x_Cj).
//
// Inputs that share variables outright (two projections of the same base
// joint, as in Fig. 3) contribute each shared variable once; every input's
// floors still apply. Promoted certain attributes enter as the identity pdf
// f0 (§III-C case 2(b)) and are registered as fresh base pdfs. Finally the
// joint is marginalized onto the plan's target attributes, dropping the
// phantom dimensions whose floors have just been folded in.
func (t *Table) mergeTupleNodes(plan *mergePlan, tup *Tuple) (*PDFNode, error) {
	nodes := make([]*PDFNode, len(plan.setIdxs))
	for i, si := range plan.setIdxs {
		nodes[i] = tup.nodes[si]
	}
	promotedVals := make([]float64, len(plan.promoted))
	for i, ci := range plan.promoted {
		v := tup.certain[ci]
		f, ok := v.AsFloat()
		if !ok {
			return nil, fmt.Errorf("core: cannot merge NULL/non-numeric value of column %q into a joint pdf",
				t.schema.Columns()[ci].Name)
		}
		promotedVals[i] = f
	}

	dependent := false
	if t.trackHistory {
		for i := 0; i < len(nodes) && !dependent; i++ {
			for j := i + 1; j < len(nodes); j++ {
				if nodes[i].Anc.Dependent(nodes[j].Anc) {
					dependent = true
					break
				}
			}
		}
	}

	var joint dist.Dist
	var vars []varRef
	var anc AncestorSet
	var err error
	if dependent {
		joint, vars, anc, err = t.buildDependent(nodes)
	} else {
		joint, vars, anc = t.buildIndependent(nodes)
	}
	if err != nil {
		return nil, err
	}

	// Promoted certain attributes: identity pdf f0, fresh base.
	if len(promotedVals) > 0 {
		unit := dist.Unit(promotedVals...)
		ids := plan.merged.ids[len(plan.merged.ids)-len(promotedVals):]
		joint = dist.ProductOf(joint, unit)
		var unitID NodeID
		if t.trackHistory {
			unitID = t.reg.register(ids, unit)
			anc = anc.Union(newAncestorSet(unitID))
		}
		for i := range promotedVals {
			vars = append(vars, varRef{base: unitID, dim: i})
		}
	}

	// Locate each target attribute's variable in the joint and marginalize
	// phantom dimensions away.
	keep := make([]int, len(plan.merged.ids))
	outVars := make([]varRef, len(plan.merged.ids))
	for i := range plan.merged.ids {
		var v varRef
		if plan.srcSet[i] < 0 {
			// Promoted attribute: its unit dims sit at the tail of vars.
			v = vars[len(vars)-len(promotedVals)+(i-(len(plan.merged.ids)-len(promotedVals)))]
		} else {
			node := nodes[plan.srcSet[i]]
			v = node.vars[plan.srcDim[i]]
		}
		dim := indexOfVar(vars, v)
		if dim < 0 {
			return nil, fmt.Errorf("core: internal: variable %+v missing from merged joint", v)
		}
		keep[i] = dim
		outVars[i] = v
	}
	if !isIdentity(keep) || len(keep) != joint.Dim() {
		joint = joint.Marginal(keep)
	}
	if !t.trackHistory {
		anc = nil
	}
	return &PDFNode{Dist: joint, Anc: anc, vars: outVars}, nil
}

// buildIndependent multiplies pdfs with no shared history. The factored
// product preserves symbolic representations.
func (t *Table) buildIndependent(nodes []*PDFNode) (dist.Dist, []varRef, AncestorSet) {
	factors := make([]dist.Dist, 0, len(nodes))
	var vars []varRef
	anc := AncestorSet{}
	for _, n := range nodes {
		factors = append(factors, n.Dist)
		vars = append(vars, n.vars...)
		anc = anc.Union(n.Anc)
	}
	return dist.ProductOf(factors...), vars, anc
}

// buildDependent reconstructs the joint of historically dependent inputs
// from their base ancestors and re-applies every input's floors.
func (t *Table) buildDependent(nodes []*PDFNode) (dist.Dist, []varRef, AncestorSet, error) {
	anc := AncestorSet{}
	for _, n := range nodes {
		anc = anc.Union(n.Anc)
	}
	// The variables of the result: union (dedup) of the inputs' variables,
	// first occurrence order.
	var allVars []varRef
	for _, n := range nodes {
		for _, v := range n.vars {
			if indexOfVar(allVars, v) < 0 {
				allVars = append(allVars, v)
			}
		}
	}

	// Base reconstruction: one factor per ancestor that still contributes
	// variables, marginalized onto the needed dimensions. Ancestors whose
	// variables were all dropped by earlier merges influence the result only
	// through the inputs' floors below.
	var factors []dist.Dist
	var vars []varRef
	for _, aid := range anc {
		_, base := t.reg.lookup(aid)
		var keepDims []int
		for dim := 0; dim < base.Dim(); dim++ {
			if indexOfVar(allVars, varRef{base: aid, dim: dim}) >= 0 {
				keepDims = append(keepDims, dim)
			}
		}
		if len(keepDims) == 0 {
			continue
		}
		f := base
		if len(keepDims) != base.Dim() {
			f = base.Marginal(keepDims)
		}
		factors = append(factors, f)
		for _, dim := range keepDims {
			vars = append(vars, varRef{base: aid, dim: dim})
		}
	}
	if len(vars) != len(allVars) {
		return nil, nil, nil, fmt.Errorf("core: internal: reconstructed %d of %d variables", len(vars), len(allVars))
	}
	joint := dist.ProductOf(factors...)

	// Propagate each input's floors: zero the joint wherever an input pdf
	// is zero (the regions whose possible worlds "did not survive" earlier
	// selections). Pristine nodes are exactly their base pdfs — no floors.
	for _, n := range nodes {
		if n.pristine {
			continue
		}
		dims := make([]int, len(n.vars))
		for i, v := range n.vars {
			dims[i] = indexOfVar(vars, v)
		}
		joint = floorByNodeSupport(joint, n, dims)
	}
	return joint, vars, anc, nil
}

// floorByNodeSupport zeroes the joint outside the support of the node's
// distribution along the given dimensions. For 1-D symbolically floored
// inputs the floor is applied as an exact rectangular region; otherwise the
// support indicator is evaluated pointwise.
func floorByNodeSupport(joint dist.Dist, n *PDFNode, dims []int) dist.Dist {
	if fl, ok := n.Dist.(dist.Floored); ok && len(dims) == 1 {
		return joint.Floor(dims[0], fl.Keep())
	}
	sub := make([]float64, len(dims))
	return joint.FloorWhere(func(x []float64) bool {
		for k, d := range dims {
			sub[k] = x[d]
		}
		return n.Dist.At(sub) > 0
	})
}

func indexOfVar(vars []varRef, v varRef) int {
	for i, w := range vars {
		if w == v {
			return i
		}
	}
	return -1
}

func isIdentity(perm []int) bool {
	for i, p := range perm {
		if p != i {
			return false
		}
	}
	return true
}
