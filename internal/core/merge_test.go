package core

import (
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
)

// threeWayTable builds a table whose three uncertain attributes are one
// joint base pdf — the hardest input for dependent merges, since any two
// projections of it share ancestry.
func threeWayTable(t *testing.T) *Table {
	t.Helper()
	schema := MustSchema(
		Column{Name: "k", Type: IntType},
		Column{Name: "a", Type: IntType, Uncertain: true},
		Column{Name: "b", Type: IntType, Uncertain: true},
		Column{Name: "c", Type: IntType, Uncertain: true},
	)
	tbl := MustTable("W", schema, [][]string{{"a", "b", "c"}}, nil)
	if err := tbl.Insert(Row{
		Values: map[string]Value{"k": Int(1)},
		PDFs: []PDF{{Attrs: []string{"a", "b", "c"}, Dist: dist.NewDiscreteJoint(3, []dist.Point{
			{X: []float64{1, 2, 3}, P: 0.5},
			{X: []float64{4, 5, 6}, P: 0.3},
			{X: []float64{7, 8, 9}, P: 0.2},
		})}},
	}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestThreeWayProjectionsRejoin splits one joint base pdf into three
// single-attribute views, floors two of them differently, and rejoins all
// three: the dependent reconstruction must recover the single-ancestor joint
// with every floor applied.
func TestThreeWayProjectionsRejoin(t *testing.T) {
	tbl := threeWayTable(t)

	va, err := tbl.Project("k", "a")
	if err != nil {
		t.Fatal(err)
	}
	va, err = va.Renamed(map[string]string{"k": "k1"})
	if err != nil {
		t.Fatal(err)
	}
	selB, err := tbl.Select(Cmp(Col("b"), region.GT, LitI(2))) // drops (1,2,3)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := selB.Project("k", "b")
	if err != nil {
		t.Fatal(err)
	}
	vb, err = vb.Renamed(map[string]string{"k": "k2", "b": "b2"})
	if err != nil {
		t.Fatal(err)
	}
	selC, err := tbl.Select(Cmp(Col("c"), region.LT, LitI(9))) // drops (7,8,9)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := selC.Project("k", "c")
	if err != nil {
		t.Fatal(err)
	}
	vc, err = vc.Renamed(map[string]string{"k": "k3", "c": "c2"})
	if err != nil {
		t.Fatal(err)
	}

	j1, err := va.EquiJoin(vb, "k1", "k2")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := j1.EquiJoin(vc, "k1", "k3")
	if err != nil {
		t.Fatal(err)
	}
	merged, err := j2.MergeDeps("a", "b2", "c2")
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 1 {
		t.Fatalf("rows = %d", merged.Len())
	}
	n, err := merged.NodeOf(merged.Tuples()[0], "a")
	if err != nil {
		t.Fatal(err)
	}
	joint, ok := n.Dist.(*dist.Discrete)
	if !ok {
		t.Fatalf("joint is %T", n.Dist)
	}
	// Only (4,5,6) survives both floors (b>2 kills nothing there; c<9 kills
	// (7,8,9); b>2 kills (1,2,3)).
	if got := joint.At([]float64{4, 5, 6}); !almostEqual(got, 0.3, 1e-12) {
		t.Errorf("P(4,5,6) = %v, want 0.3", got)
	}
	if got := joint.Mass(); !almostEqual(got, 0.3, 1e-12) {
		t.Errorf("mass = %v, want 0.3 (world-consistent)", got)
	}
	// Independence would have produced mass 1.0·0.8·0.5 = 0.4 at spurious
	// combinations; assert none exist.
	if got := joint.At([]float64{1, 5, 3}); got != 0 {
		t.Errorf("spurious combination has probability %v", got)
	}
}

// TestDependentMergeWithBothSidesFloored floors both projections of the
// same base and rejoins: floors from both inputs compose on the single
// reconstructed ancestor.
func TestDependentMergeWithBothSidesFloored(t *testing.T) {
	tbl := fig3Table(t)
	selA, err := tbl.Select(Cmp(Col("a"), region.GT, LitI(2))) // keeps (4,5) of t1, (7,3) of t2
	if err != nil {
		t.Fatal(err)
	}
	ta, err := selA.Project("a")
	if err != nil {
		t.Fatal(err)
	}
	selB, err := tbl.Select(Cmp(Col("b"), region.GT, LitI(4))) // keeps (4,5) of t1 only
	if err != nil {
		t.Fatal(err)
	}
	tb, err := selB.Project("b")
	if err != nil {
		t.Fatal(err)
	}
	tb, err = tb.Renamed(map[string]string{"b": "b2"})
	if err != nil {
		t.Fatal(err)
	}
	cross, err := ta.CrossProduct(tb)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := cross.MergeDeps("a", "b2")
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (t1-derived, t1-derived) dependent; (t2-derived, t1-derived)
	// independent.
	if merged.Len() != 2 {
		t.Fatalf("rows = %d", merged.Len())
	}
	n1, _ := merged.NodeOf(merged.Tuples()[0], "a")
	if got := n1.Dist.At([]float64{4, 5}); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("dependent pair P(4,5) = %v, want 0.9", got)
	}
	if got := n1.Dist.Mass(); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("dependent pair mass = %v, want 0.9", got)
	}
	n2, _ := merged.NodeOf(merged.Tuples()[1], "a")
	if got := n2.Dist.At([]float64{7, 5}); !almostEqual(got, 0.63, 1e-12) {
		t.Errorf("independent pair P(7,5) = %v, want 0.7*0.9", got)
	}
}

// TestDependentMergeContinuous rejoins two projections of a correlated
// continuous joint: the reconstruction goes through the grid fallback but
// must keep the correlation (mass well below the independent product).
func TestDependentMergeContinuous(t *testing.T) {
	schema := MustSchema(
		Column{Name: "k", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
		Column{Name: "y", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("C", schema, [][]string{{"x", "y"}}, nil)
	mvn := dist.MustMultiGaussian([]float64{0, 0}, [][]float64{{1, 0.9}, {0.9, 1}})
	if err := tbl.Insert(Row{
		Values: map[string]Value{"k": Int(1)},
		PDFs:   []PDF{{Attrs: []string{"x", "y"}, Dist: mvn}},
	}); err != nil {
		t.Fatal(err)
	}
	selX, err := tbl.Select(Cmp(Col("x"), region.GT, LitF(1))) // mass ≈ 0.1587
	if err != nil {
		t.Fatal(err)
	}
	vx, err := selX.Project("k", "x")
	if err != nil {
		t.Fatal(err)
	}
	vx, err = vx.Renamed(map[string]string{"k": "k1"})
	if err != nil {
		t.Fatal(err)
	}
	selY, err := tbl.Select(Cmp(Col("y"), region.LT, LitF(-1))) // mass ≈ 0.1587
	if err != nil {
		t.Fatal(err)
	}
	vy, err := selY.Project("k", "y")
	if err != nil {
		t.Fatal(err)
	}
	vy, err = vy.Renamed(map[string]string{"k": "k2", "y": "y2"})
	if err != nil {
		t.Fatal(err)
	}
	j, err := vx.EquiJoin(vy, "k1", "k2")
	if err != nil {
		t.Fatal(err)
	}
	merged, err := j.MergeDeps("x", "y2")
	if err != nil {
		t.Fatal(err)
	}
	n, err := merged.NodeOf(merged.Tuples()[0], "x")
	if err != nil {
		t.Fatal(err)
	}
	// With rho = 0.9, P[X>1 ∧ Y<-1] ≈ 0.0049 — more than 30x below the
	// independent product 0.0252. The grid reconstruction must land near
	// the correlated value.
	mass := n.Dist.Mass()
	if mass > 0.012 {
		t.Errorf("dependent mass = %v — looks like an independence assumption (0.0252)", mass)
	}
	if mass <= 0 {
		t.Error("mass vanished entirely")
	}
}
