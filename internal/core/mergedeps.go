package core

import "fmt"

// MergeDeps eagerly collapses the dependency sets containing the named
// uncertain attributes into a single joint pdf per tuple, using history to
// reconstruct correlations (§III-D: "we can, in principle, apply the
// algorithm explained in Section III-C to collapse the intra-tuple
// dependencies implied by Λ into Δ ... the decision of whether to merge the
// intra-tuple dependencies eagerly or lazily is left to the
// implementation"). Select performs the same merge lazily, only when a
// predicate forces it; MergeDeps is the eager alternative and the direct
// way to materialize the joint distributions of Fig. 3.
func (t *Table) MergeDeps(names ...string) (*Table, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("core: MergeDeps needs at least two attributes")
	}
	setIdx := map[int]bool{}
	for _, n := range names {
		col, ok := t.schema.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("core: unknown column %q", n)
		}
		if !col.Uncertain {
			return nil, fmt.Errorf("core: MergeDeps of certain column %q (use Select to promote)", n)
		}
		setIdx[t.depOf(t.idOf(n))] = true
	}
	if len(setIdx) < 2 {
		// Already jointly distributed.
		return t, nil
	}
	var setIdxs []int
	for si := range setIdx {
		setIdxs = append(setIdxs, si)
	}
	sortInts(setIdxs)
	plan, err := t.planMerge(setIdxs, nil)
	if err != nil {
		return nil, err
	}

	out := t.shallowDerived(fmt.Sprintf("merge(%s)", t.Name))
	out.deps = nil
	oldToNew := make([]int, len(t.deps))
	for si, d := range t.deps {
		if setIdx[si] {
			oldToNew[si] = -1
			continue
		}
		oldToNew[si] = len(out.deps)
		out.deps = append(out.deps, d)
	}
	mergedAt := len(out.deps)
	out.deps = append(out.deps, plan.merged)

	for _, tup := range t.tuples {
		nodes := make([]*PDFNode, len(out.deps))
		for si := range t.deps {
			if oldToNew[si] >= 0 {
				nodes[oldToNew[si]] = tup.nodes[si]
			}
		}
		n, err := t.mergeTupleNodes(plan, tup)
		if err != nil {
			return nil, err
		}
		nodes[mergedAt] = n
		nt := &Tuple{certain: tup.certain, nodes: nodes}
		out.tuples = append(out.tuples, nt)
		out.retainTuple(nt)
	}
	return out, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
