package core

import (
	"fmt"
	"sort"

	"probdb/internal/dist"
	"probdb/internal/exec"
	"probdb/internal/region"
)

// withDist derives a new node from n with a different distribution. The
// ancestors carry over (selection copies histories, §III-C); the node is no
// longer pristine.
func withDist(n *PDFNode, d dist.Dist) *PDFNode {
	return &PDFNode{Dist: d, Anc: n.Anc, vars: n.vars, self: n.self}
}

// Select evaluates the conjunction of atoms over the table and returns the
// resulting table (§III-C). Predicates over certain attributes filter
// tuples outright (case 1). Predicates comparing an uncertain attribute
// with a constant floor the attribute's pdf (case 2a, symbolically where
// possible). Predicates spanning attributes merge the involved dependency
// sets per the closure Ω (Definition 4), promoting certain attributes into
// the joint via the identity pdf, and floor the joint over the predicate
// region (case 2b). Tuples whose pdfs are completely floored are removed.
//
// Planning and per-tuple evaluation live in the Selection kernel
// (kernels.go); this method runs the kernel over the whole table.
func (t *Table) Select(atoms ...Atom) (*Table, error) {
	sel, err := t.PlanSelect(atoms...)
	if err != nil {
		return nil, err
	}
	return t.RunSelection(sel)
}

// RunSelection applies a compiled selection over the whole table. Callers
// that need the kernel afterwards (EXPLAIN harvests its Report) plan and
// run separately; Select is the plan-and-run convenience.
func (t *Table) RunSelection(sel *Selection) (*Table, error) {
	var err error
	out := sel.Out()

	// Morsel-parallel evaluation into index-aligned slots, then in-order
	// assembly of the survivors: parallel output is byte-identical to
	// sequential output (same tuples, same floats, same order). The
	// vectorized driver morsels over encoding-aligned batches so workers
	// share cached columnar blocks; the scalar reference walks tuples.
	slots := make([]*Tuple, len(t.tuples))
	if VectorizedKernels() && sel.vectorizable() {
		err = forColBatches(t.par, len(t.tuples), func(from, to int) error {
			return sel.evalBatchAt(t.tuples[from:to], from, 1, slots[from:to])
		})
	} else {
		sel.stats.scalar.Add(uint64(len(t.tuples)))
		err = exec.For(t.par, len(t.tuples), func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				nt, serr := sel.Eval(t.tuples[i])
				if serr != nil {
					return serr
				}
				slots[i] = nt
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	for _, nt := range slots {
		if nt == nil {
			continue
		}
		out.Append(nt)
	}
	return out, nil
}

// locate returns the dependency-set index and dimension of the attribute id
// in the (derived) table. It panics on certain/unknown attributes — callers
// establish membership during planning.
func (t *Table) locate(id AttrID) (dep, dim int) {
	for di, d := range t.deps {
		if k := d.dimOf(id); k >= 0 {
			return di, k
		}
	}
	panic(fmt.Sprintf("core: attribute %d not in any dependency set", id))
}

// mergeGroup is one connected component of the closure Ω that actually
// requires merging.
type mergeGroup struct {
	setIdxs  []int
	promoted []int
}

// mergeGroups computes the closure Ω (Definition 4) over the dependency
// sets linked by cross atoms and returns the components that need merging:
// those touching more than one dependency set or promoting a certain column.
func (t *Table) mergeGroups(cls []classified) ([]mergeGroup, error) {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(b)] = find(a) }

	item := func(colName string) (string, error) {
		col, ok := t.schema.Lookup(colName)
		if !ok {
			return "", fmt.Errorf("core: unknown column %q", colName)
		}
		if col.Uncertain {
			di := t.depOf(t.idOf(colName))
			return fmt.Sprintf("d%d", di), nil
		}
		return fmt.Sprintf("c%d", t.schema.Index(colName)), nil
	}

	touched := map[string]bool{}
	for _, c := range cls {
		if c.class != atomCross {
			continue
		}
		li, err := item(c.leftCol)
		if err != nil {
			return nil, err
		}
		ri, err := item(c.rightCol)
		if err != nil {
			return nil, err
		}
		union(li, ri)
		touched[li], touched[ri] = true, true
	}

	comp := map[string]*mergeGroup{}
	var roots []string
	for it := range touched {
		r := find(it)
		g, ok := comp[r]
		if !ok {
			g = &mergeGroup{}
			comp[r] = g
			roots = append(roots, r)
		}
		var idx int
		fmt.Sscanf(it[1:], "%d", &idx)
		if it[0] == 'd' {
			g.setIdxs = append(g.setIdxs, idx)
		} else {
			g.promoted = append(g.promoted, idx)
		}
	}
	sort.Strings(roots)
	var out []mergeGroup
	for _, r := range roots {
		g := comp[r]
		sort.Ints(g.setIdxs)
		sort.Ints(g.promoted)
		if len(g.setIdxs)+len(g.promoted) > 1 || len(g.promoted) > 0 {
			out = append(out, *g)
		}
	}
	return out, nil
}

// Project returns Π_names(t) (§III-B). With history tracking on, dependency
// sets overlapping the projection keep their full joint pdfs — the
// projected-out attributes become phantom attributes so no floors or
// correlations are lost — and invisible sets with partial pdfs anywhere are
// retained wholly as phantoms (they carry tuple-existence probability).
// With tracking off, overlapping sets are eagerly marginalized onto the
// visible attributes and everything else is dropped (the incorrect baseline
// of Fig. 6). Duplicate elimination is not performed, per the paper.
func (t *Table) Project(names ...string) (*Table, error) {
	newSchema, err := t.schema.Project(names)
	if err != nil {
		return nil, err
	}
	newIDs := make([]AttrID, len(names))
	visible := map[AttrID]bool{}
	for i, n := range names {
		newIDs[i] = t.idOf(n)
		visible[newIDs[i]] = true
	}

	out := &Table{
		Name:         fmt.Sprintf("π(%s)", t.Name),
		schema:       newSchema,
		ids:          newIDs,
		reg:          t.reg,
		trackHistory: t.trackHistory,
		par:          t.par,
	}

	type keepMode int
	const (
		dropSet keepMode = iota
		keepFull
		marginalize
	)
	modes := make([]keepMode, len(t.deps))
	margDims := make([][]int, len(t.deps))
	for si, d := range t.deps {
		var vis []int
		for dim, id := range d.ids {
			if visible[id] {
				vis = append(vis, dim)
			}
		}
		switch {
		case len(vis) == 0:
			// Invisible set: keep as phantom only when some tuple's pdf is
			// partial (its mass is tuple-existence information).
			modes[si] = dropSet
			if t.trackHistory {
				for _, tup := range t.tuples {
					if tup.nodes[si].Dist.Mass() < 1 {
						modes[si] = keepFull
						break
					}
				}
			}
		case t.trackHistory:
			modes[si] = keepFull
		default:
			modes[si] = marginalize
			margDims[si] = vis
		}
		if modes[si] == keepFull {
			// Phantom positions get fresh attribute identities: the column
			// label is gone from the visible schema, and reusing the old id
			// would collide when two projections of the same table meet in a
			// cross product. The node's vars keep the true variable identity.
			nd := d.clone()
			for dim, id := range nd.ids {
				if !visible[id] {
					nd.ids[dim] = newAttrID()
				}
			}
			out.deps = append(out.deps, nd)
		} else if modes[si] == marginalize {
			nd := &depSet{}
			for _, dim := range vis {
				nd.ids = append(nd.ids, d.ids[dim])
				nd.names = append(nd.names, d.names[dim])
				nd.types = append(nd.types, d.types[dim])
			}
			out.deps = append(out.deps, nd)
		}
	}

	for _, tup := range t.tuples {
		certain := make([]Value, len(names))
		for i, n := range names {
			oi := t.schema.Index(n)
			certain[i] = tup.certain[oi]
		}
		var nodes []*PDFNode
		for si := range t.deps {
			switch modes[si] {
			case keepFull:
				nodes = append(nodes, tup.nodes[si])
			case marginalize:
				n := tup.nodes[si]
				var d dist.Dist
				if len(margDims[si]) == n.Dist.Dim() {
					d = n.Dist
				} else {
					d = n.Dist.Marginal(margDims[si])
				}
				vars := make([]varRef, len(margDims[si]))
				for i, dim := range margDims[si] {
					vars[i] = n.vars[dim]
				}
				nodes = append(nodes, &PDFNode{Dist: d, vars: vars})
			}
		}
		nt := &Tuple{certain: certain, nodes: nodes}
		out.tuples = append(out.tuples, nt)
		out.retainTuple(nt)
	}
	return out, nil
}

// CrossProduct returns t × o (§III-D). Both tables must share a registry
// and have disjoint column names; rename first if needed. A table cannot be
// crossed with a derivation of itself whose tuples share attribute
// identities (self-joins of dependent copies are outside the paper's model,
// which does not define duplicate semantics).
func (t *Table) CrossProduct(o *Table) (*Table, error) {
	k, err := t.PlanCross(o)
	if err != nil {
		return nil, err
	}
	out := k.Out()
	// Pair materialization is morsel-parallel over the left tuples; the
	// (i, j) slot layout reproduces the sequential nested-loop order.
	na, nb := len(t.tuples), len(o.tuples)
	if na > 0 && nb > 0 {
		pairs := make([]*Tuple, na*nb)
		_ = exec.For(t.par, na, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				a := t.tuples[i]
				for j, b := range o.tuples {
					pairs[i*nb+j] = k.Pair(a, b)
				}
			}
			return nil
		})
		out.tuples = pairs
		for _, nt := range pairs {
			out.retainTuple(nt)
		}
	}
	return out, nil
}

// Join returns t ⋈_atoms o: a cross product followed by selection (§III-D).
func (t *Table) Join(o *Table, atoms ...Atom) (*Table, error) {
	x, err := t.CrossProduct(o)
	if err != nil {
		return nil, err
	}
	j, err := x.Select(atoms...)
	if err != nil {
		return nil, err
	}
	j.Name = fmt.Sprintf("%s⋈%s", t.Name, o.Name)
	return j, nil
}

// Renamed returns a view of the table with columns renamed per mapping
// (old name → new name). Attribute identities are preserved, so histories
// keep working across the rename.
func (t *Table) Renamed(mapping map[string]string) (*Table, error) {
	cols := append([]Column(nil), t.schema.Columns()...)
	for i, c := range cols {
		if nn, ok := mapping[c.Name]; ok {
			cols[i].Name = nn
		}
	}
	newSchema, err := NewSchema(cols)
	if err != nil {
		return nil, err
	}
	out := &Table{
		Name:         t.Name,
		schema:       newSchema,
		ids:          t.ids,
		reg:          t.reg,
		trackHistory: t.trackHistory,
		par:          t.par,
		tuples:       t.tuples,
	}
	out.deps = make([]*depSet, len(t.deps))
	for i, d := range t.deps {
		nd := d.clone()
		for j, n := range nd.names {
			if nn, ok := mapping[n]; ok {
				nd.names[j] = nn
			}
		}
		out.deps[i] = nd
	}
	for _, tup := range out.tuples {
		out.retainTuple(tup)
	}
	return out, nil
}

// Prefixed returns the table with every column renamed to prefix+name —
// the usual way to disambiguate before a join.
func (t *Table) Prefixed(prefix string) (*Table, error) {
	m := map[string]string{}
	for _, c := range t.schema.Columns() {
		m[c.Name] = prefix + c.Name
	}
	return t.Renamed(m)
}

// Prob returns the probability that the tuple has a value for the given
// attribute set: the product of the masses of the dependency sets the
// attributes touch (certain attributes contribute 1). This is the Pr(A) of
// the paper's §III-E operations on probability values.
func (t *Table) Prob(tup *Tuple, attrs ...string) (float64, error) {
	seen := map[int]bool{}
	p := 1.0
	for _, a := range attrs {
		col, ok := t.schema.Lookup(a)
		if !ok {
			return 0, fmt.Errorf("core: unknown column %q", a)
		}
		if !col.Uncertain {
			continue
		}
		di := t.depOf(t.idOf(a))
		if !seen[di] {
			seen[di] = true
			p *= t.nodeMass(tup.nodes[di])
		}
	}
	return p, nil
}

// SelectWhereProb implements the threshold queries of §III-E: it keeps the
// tuples whose Pr(attrs) satisfies "Pr op p". As an operation on
// probability values it does not floor any pdf; histories are copied over
// unchanged (semantics of case 1).
func (t *Table) SelectWhereProb(attrs []string, op region.Op, p float64) (*Table, error) {
	return t.RunProbSelection(t.PlanProbSelect(attrs, op, p))
}

// RunProbSelection applies a compiled probability-threshold selection over
// the whole table: morsel-parallel keep/drop decisions, in-order assembly.
func (t *Table) RunProbSelection(sel *ProbSelection) (*Table, error) {
	out := sel.Out()
	keep := make([]bool, len(t.tuples))
	var err error
	if VectorizedKernels() && sel.resolveErr == nil {
		err = forColBatches(t.par, len(t.tuples), func(from, to int) error {
			return sel.keepBatchAt(t.tuples[from:to], from, 1, keep[from:to])
		})
	} else {
		sel.stats.scalar.Add(uint64(len(t.tuples)))
		err = exec.For(t.par, len(t.tuples), func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				k, err := sel.Keep(t.tuples[i])
				if err != nil {
					return err
				}
				keep[i] = k
			}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	for i, tup := range t.tuples {
		if keep[i] {
			out.Append(tup)
		}
	}
	return out, nil
}

// ProbInRange returns the probability that the uncertain attribute falls in
// [lo, hi] for the tuple — the probabilistic threshold range query
// primitive the paper's experiments evaluate. Evaluations over pristine
// base pdfs are memoized in the registry's mass cache keyed by base-pdf
// identity, marginal dimension, and interval, so repeated threshold queries
// over a stored table skip both the marginalization and the integration.
func (t *Table) ProbInRange(tup *Tuple, attr string, lo, hi float64) (float64, error) {
	id := t.idOf(attr)
	if id == 0 {
		return 0, fmt.Errorf("core: unknown column %q", attr)
	}
	di := t.depOf(id)
	if di < 0 {
		return 0, fmt.Errorf("core: column %q is certain", attr)
	}
	node := tup.nodes[di]
	var key exec.MassKey
	memo := node.self != 0 && node.pristine
	if memo {
		dim := t.deps[di].dimOf(id)
		key = exec.MassKey{ID: uint64(node.self), Dim: int32(dim), Kind: exec.EvalInterval, Lo: lo, Hi: hi}
		if v, ok := t.reg.mass.Get(key); ok {
			return v, nil
		}
	}
	d, err := t.DistOf(tup, attr)
	if err != nil {
		return 0, err
	}
	v := dist.MassInterval(d, lo, hi)
	if memo {
		t.reg.mass.Put(key, v)
	}
	return v, nil
}

// SelectRangeThreshold keeps tuples with Pr(attr ∈ [lo, hi]) op p — a
// probability-value selection over a derived range probability (§III-E).
// No pdfs are floored.
func (t *Table) SelectRangeThreshold(attr string, lo, hi float64, op region.Op, p float64) (*Table, error) {
	return t.RunProbSelection(t.PlanRangeThreshold(attr, lo, hi, op, p))
}

// Delete removes the tuples for which filter returns true and returns how
// many were removed. Base pdfs of removed tuples that are still referenced
// by derived tables survive as phantom nodes until their reference counts
// fall to zero (§II-C); unreferenced ones are freed.
func (t *Table) Delete(filter func(*Table, *Tuple) bool) int {
	// Compact into a fresh slice rather than in place: frozen snapshots
	// (Freeze) share the old backing array and must keep seeing the
	// pre-delete tuple pointers.
	kept := make([]*Tuple, 0, len(t.tuples))
	removed := 0
	for _, tup := range t.tuples {
		if !filter(t, tup) {
			kept = append(kept, tup)
			continue
		}
		removed++
		for _, n := range tup.nodes {
			if n.self != 0 {
				t.reg.markPhantom(n.self)
			}
			t.reg.release(n.Anc)
		}
	}
	t.tuples = kept
	if removed > 0 {
		t.bumpVersion()
	}
	return removed
}
