package core

import (
	"strings"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
)

func TestInsertValidation(t *testing.T) {
	schema := MustSchema(
		Column{Name: "id", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("T", schema, nil, nil)
	cases := []Row{
		{Values: map[string]Value{"nope": Int(1)}},                                                                                // unknown column
		{Values: map[string]Value{"x": Float(1)}},                                                                                 // certain value for uncertain col
		{Values: map[string]Value{"id": Int(1)}},                                                                                  // missing pdf
		{PDFs: []PDF{{Attrs: []string{"y"}, Dist: dist.NewGaussian(0, 1)}}},                                                       // unknown dep set
		{PDFs: []PDF{{Attrs: []string{"x"}, Dist: nil}}},                                                                          // nil dist
		{PDFs: []PDF{{Attrs: []string{"x"}, Dist: dist.ProductOf(dist.NewGaussian(0, 1), dist.NewGaussian(0, 1))}}},               // dim mismatch
		{PDFs: []PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussian(0, 1)}, {Attrs: []string{"x"}, Dist: dist.NewGaussian(0, 1)}}}, // double assign
	}
	for i, row := range cases {
		if err := tbl.Insert(row); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if tbl.Len() != 0 {
		t.Errorf("failed inserts must not add tuples, have %d", tbl.Len())
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]Column{{Name: "", Type: IntType}}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewSchema([]Column{{Name: "a", Type: IntType}, {Name: "a", Type: IntType}}); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := NewSchema([]Column{{Name: "a", Type: StringType, Uncertain: true}}); err == nil {
		t.Error("uncertain string column should fail")
	}
}

func TestTableDepValidation(t *testing.T) {
	schema := MustSchema(
		Column{Name: "c", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
		Column{Name: "y", Type: FloatType, Uncertain: true},
	)
	cases := [][][]string{
		{{}},                // empty set
		{{"zz"}},            // unknown column
		{{"c"}},             // certain column in dep set
		{{"x"}, {"x", "y"}}, // column in two sets
	}
	for i, deps := range cases {
		if _, err := NewTable("T", schema, deps, nil); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Unmentioned uncertain columns get singletons.
	tbl := MustTable("T", schema, [][]string{{"x"}}, nil)
	if got := len(tbl.DepSets()); got != 2 {
		t.Errorf("expected auto singleton for y, Δ = %v", tbl.DepSets())
	}
}

func TestProjectKeepsPhantomFloors(t *testing.T) {
	// After σ_{b>4}, projecting onto b keeps the (a,b) joint with a as a
	// phantom attribute; the marginal over b reflects the floor.
	tbl := fig3Table(t)
	sel, err := tbl.Select(Cmp(Col("b"), region.GT, LitI(4)))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sel.Project("b")
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Schema().Len(); got != 1 {
		t.Fatalf("visible columns = %d", got)
	}
	ph := tb.PhantomAttrs()
	if len(ph) != 1 || ph[0] != "a" {
		t.Errorf("phantom attrs = %v, want [a]", ph)
	}
	n, err := tb.NodeOf(tb.Tuples()[0], "b")
	if err != nil {
		t.Fatal(err)
	}
	if n.Dist.Dim() != 2 {
		t.Errorf("kept joint should stay 2-D, got %d-D", n.Dist.Dim())
	}
}

func TestProjectDropsCompleteInvisibleSets(t *testing.T) {
	tbl := sensorTable(t)
	p, err := tbl.Project("id")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DepSets()) != 0 {
		t.Errorf("complete invisible pdfs should be dropped, Δ = %v", p.DepSets())
	}
	if p.Len() != 3 {
		t.Errorf("tuples = %d", p.Len())
	}
}

func TestProjectKeepsPartialInvisibleSets(t *testing.T) {
	// A floored pdf carries existence probability; projecting it away must
	// keep it as a fully phantom set.
	tbl := sensorTable(t)
	sel, err := tbl.Select(Cmp(Col("x"), region.LT, LitF(20)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := sel.Project("id")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DepSets()) != 1 {
		t.Fatalf("partial invisible set should be kept, Δ = %v", p.DepSets())
	}
	// Existence probability survives the projection.
	got := p.ExistenceProb(p.Tuples()[0])
	want := sel.ExistenceProb(sel.Tuples()[0])
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("existence after project = %v, want %v", got, want)
	}
}

func TestProjectErrors(t *testing.T) {
	tbl := sensorTable(t)
	if _, err := tbl.Project("nope"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestProjectWithoutHistoryMarginalizes(t *testing.T) {
	tbl := fig3Table(t)
	tbl.SetTrackHistory(false)
	p, err := tbl.Project("a")
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.NodeOf(p.Tuples()[0], "a")
	if err != nil {
		t.Fatal(err)
	}
	if n.Dist.Dim() != 1 {
		t.Errorf("historyless project should marginalize eagerly, got %d-D", n.Dist.Dim())
	}
	if len(p.PhantomAttrs()) != 0 {
		t.Errorf("phantoms = %v", p.PhantomAttrs())
	}
}

func TestSelectWhereProb(t *testing.T) {
	// §III-E threshold query: keep tuples whose Pr(x) exceeds p.
	tbl := sensorTable(t)
	sel, err := tbl.Select(Cmp(Col("x"), region.LT, LitF(20)))
	if err != nil {
		t.Fatal(err)
	}
	// Masses: sensor1 = 0.5, sensor2 = P[N(25,4)<20] ≈ 0.0062, sensor3 ≈ 1.
	r, err := sel.SelectWhereProb([]string{"x"}, region.GT, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("threshold kept %d tuples, want 2", r.Len())
	}
	// Certain attributes contribute probability 1.
	r2, err := sel.SelectWhereProb([]string{"id"}, region.GT, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != sel.Len() {
		t.Error("Pr over certain attrs should be 1 for all tuples")
	}
	if _, err := sel.SelectWhereProb([]string{"zz"}, region.GT, 0.5); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSelectRangeThreshold(t *testing.T) {
	tbl := sensorTable(t)
	// Pr(x ∈ [18,22]): sensor1 high, others near 0.
	r, err := tbl.SelectRangeThreshold("x", 18, 22, region.GE, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("kept %d, want 1", r.Len())
	}
	v, _ := r.Value(r.Tuples()[0], "id")
	if v.I != 1 {
		t.Errorf("kept sensor %v", v.Render())
	}
}

func TestDeletePhantomRefcounts(t *testing.T) {
	tbl := sensorTable(t)
	reg := tbl.Registry()
	if reg.Len() != 3 {
		t.Fatalf("base records = %d", reg.Len())
	}
	// Derive a table referencing sensor 1's pdf.
	derived, err := tbl.Select(Cmp(Col("id"), region.EQ, LitI(1)))
	if err != nil {
		t.Fatal(err)
	}
	if derived.Len() != 1 {
		t.Fatal("derivation missing")
	}
	// Delete sensor 1 from the base table: its pdf must survive as phantom.
	n := tbl.Delete(func(tb *Table, tup *Tuple) bool {
		v, _ := tb.Value(tup, "id")
		return v.I == 1
	})
	if n != 1 || tbl.Len() != 2 {
		t.Fatalf("deleted %d, remaining %d", n, tbl.Len())
	}
	if reg.PhantomCount() != 1 {
		t.Errorf("phantom count = %d, want 1", reg.PhantomCount())
	}
	if reg.Len() != 3 {
		t.Errorf("record count = %d, want 3 (phantom kept)", reg.Len())
	}
	// Deleting the derived tuple drops the last reference.
	derived.Delete(func(*Table, *Tuple) bool { return true })
	if reg.Len() != 2 {
		t.Errorf("record count after release = %d, want 2", reg.Len())
	}
	if reg.PhantomCount() != 0 {
		t.Errorf("phantoms = %d, want 0", reg.PhantomCount())
	}
	// Deleting an unreferenced base frees it immediately.
	tbl.Delete(func(tb *Table, tup *Tuple) bool {
		v, _ := tb.Value(tup, "id")
		return v.I == 2
	})
	if reg.Len() != 1 {
		t.Errorf("record count = %d, want 1", reg.Len())
	}
}

func TestCrossProductErrors(t *testing.T) {
	a := sensorTable(t)
	b := sensorTable(t) // different registry
	if _, err := a.CrossProduct(b); err == nil {
		t.Error("different registries should fail")
	}
	// Same registry but name collision.
	c := MustTable("C", MustSchema(Column{Name: "id", Type: IntType}), nil, a.Registry())
	if err := c.Insert(Row{Values: map[string]Value{"id": Int(9)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CrossProduct(c); err == nil {
		t.Error("column name collision should fail")
	}
	// Self cross product: dependent copies share attribute identities.
	if _, err := a.CrossProduct(a); err == nil {
		t.Error("self cross product should fail")
	}
	ren, err := a.Prefixed("r_")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CrossProduct(ren); err == nil {
		t.Error("cross with renamed self is still a dependent copy")
	}
}

func TestJoinCertainKeys(t *testing.T) {
	reg := NewRegistry()
	sensors := MustTable("S",
		MustSchema(Column{Name: "sid", Type: IntType}, Column{Name: "x", Type: FloatType, Uncertain: true}),
		nil, reg)
	rooms := MustTable("R",
		MustSchema(Column{Name: "rid", Type: IntType}, Column{Name: "name", Type: StringType}),
		nil, reg)
	for i := int64(1); i <= 2; i++ {
		if err := sensors.Insert(Row{
			Values: map[string]Value{"sid": Int(i)},
			PDFs:   []PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussian(float64(10*i), 1)}},
		}); err != nil {
			t.Fatal(err)
		}
		if err := rooms.Insert(Row{Values: map[string]Value{"rid": Int(i), "name": Str(strings.Repeat("r", int(i)))}}); err != nil {
			t.Fatal(err)
		}
	}
	j, err := sensors.Join(rooms, Cmp(Col("sid"), region.EQ, Col("rid")))
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("join size = %d, want 2", j.Len())
	}
	for _, tup := range j.Tuples() {
		s, _ := j.Value(tup, "sid")
		r, _ := j.Value(tup, "rid")
		if s.I != r.I {
			t.Errorf("mismatched join row %v/%v", s.I, r.I)
		}
	}
}

func TestJoinOnUncertainAttrs(t *testing.T) {
	// Join predicate across uncertain attributes of two tables merges
	// dependency sets across the product.
	reg := NewRegistry()
	mk := func(name, col string, mu float64) *Table {
		tbl := MustTable(name,
			MustSchema(Column{Name: col, Type: FloatType, Uncertain: true}), nil, reg)
		if err := tbl.Insert(Row{PDFs: []PDF{{Attrs: []string{col}, Dist: dist.NewGaussian(mu, 1)}}}); err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	a := mk("A", "x", 0)
	b := mk("B", "y", 1)
	j, err := a.Join(b, Cmp(Col("x"), region.LT, Col("y")))
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatal("join should keep the pair")
	}
	got := j.ExistenceProb(j.Tuples()[0])
	if !almostEqual(got, 0.7602, 0.02) {
		t.Errorf("P[X<Y] = %v", got)
	}
}

func TestRenamedPreservesHistory(t *testing.T) {
	tbl := sensorTable(t)
	r, err := tbl.Renamed(map[string]string{"x": "loc"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Has("loc") || r.Schema().Has("x") {
		t.Error("rename not applied")
	}
	n, err := r.NodeOf(r.Tuples()[0], "loc")
	if err != nil {
		t.Fatal(err)
	}
	src, _ := tbl.NodeOf(tbl.Tuples()[0], "x")
	if n.Anc[0] != src.Anc[0] {
		t.Error("rename must preserve history")
	}
	if _, err := tbl.Renamed(map[string]string{"x": "id"}); err == nil {
		t.Error("rename collision should fail")
	}
}

func TestSelectErrors(t *testing.T) {
	tbl := sensorTable(t)
	cases := []Atom{
		Cmp(Col("zz"), region.LT, LitF(1)),
		Cmp(Col("x"), region.EQ, LitS("hello")),
		Cmp(LitF(1), region.LT, LitF(2)),
	}
	for i, a := range cases {
		if _, err := tbl.Select(a); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSelectConstOnLeft(t *testing.T) {
	tbl := sensorTable(t)
	// 25 > x is the same as x < 25.
	r1, err := tbl.Select(Cmp(LitF(25), region.GT, Col("x")))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tbl.Select(Cmp(Col("x"), region.LT, LitF(25)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Tuples() {
		d1, _ := r1.DistOf(r1.Tuples()[i], "x")
		d2, _ := r2.DistOf(r2.Tuples()[i], "x")
		if !almostEqual(d1.Mass(), d2.Mass(), 1e-15) {
			t.Errorf("tuple %d: %v vs %v", i, d1.Mass(), d2.Mass())
		}
	}
}

func TestSelectConjunctionOrderIrrelevant(t *testing.T) {
	tbl := sensorTable(t)
	ab, err := tbl.Select(
		Cmp(Col("x"), region.GT, LitF(18)),
		Cmp(Col("x"), region.LT, LitF(24)),
	)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := tbl.Select(
		Cmp(Col("x"), region.LT, LitF(24)),
		Cmp(Col("x"), region.GT, LitF(18)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Len() != ba.Len() {
		t.Fatalf("lengths differ: %d vs %d", ab.Len(), ba.Len())
	}
	for i := range ab.Tuples() {
		d1, _ := ab.DistOf(ab.Tuples()[i], "x")
		d2, _ := ba.DistOf(ba.Tuples()[i], "x")
		if !almostEqual(d1.Mass(), d2.Mass(), 1e-15) {
			t.Errorf("tuple %d masses differ: %v vs %v", i, d1.Mass(), d2.Mass())
		}
	}
}

func TestSelectDropsZeroMassTuples(t *testing.T) {
	schema := MustSchema(Column{Name: "x", Type: FloatType, Uncertain: true})
	tbl := MustTable("T", schema, nil, nil)
	if err := tbl.Insert(Row{PDFs: []PDF{{Attrs: []string{"x"}, Dist: dist.NewUniform(0, 1)}}}); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Select(Cmp(Col("x"), region.GT, LitF(5)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("completely floored tuple should be removed, got %d", r.Len())
	}
}

func TestValueHelpers(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("numeric cross-kind equality should hold")
	}
	if Null.Equal(Null) {
		t.Error("NULL equals nothing")
	}
	if c, ok := Str("a").Compare(Str("b")); !ok || c != -1 {
		t.Error("string compare wrong")
	}
	if c, ok := Bool(false).Compare(Bool(true)); !ok || c != -1 {
		t.Error("bool compare wrong")
	}
	if _, ok := Str("a").Compare(Int(1)); ok {
		t.Error("mixed compare should fail")
	}
	if Int(5).Render() != "5" || Str("x").Render() != `"x"` || Null.Render() != "NULL" {
		t.Error("render wrong")
	}
	if v := valueFromFloat(3, IntType); v.Kind != IntValue || v.I != 3 {
		t.Errorf("valueFromFloat int = %+v", v)
	}
	if v := valueFromFloat(3.5, IntType); v.Kind != FloatValue {
		t.Errorf("non-integral float should stay float: %+v", v)
	}
}

func TestRenderIncludesPDFs(t *testing.T) {
	tbl := sensorTable(t)
	s := tbl.Render()
	if !strings.Contains(s, "Gaus(20,5)") || !strings.Contains(s, "id=1") {
		t.Errorf("render missing content:\n%s", s)
	}
}

func TestMergeDepsValidation(t *testing.T) {
	tbl := sensorTable(t)
	if _, err := tbl.MergeDeps("x"); err == nil {
		t.Error("single attr should fail")
	}
	if _, err := tbl.MergeDeps("x", "zz"); err == nil {
		t.Error("unknown attr should fail")
	}
	if _, err := tbl.MergeDeps("x", "id"); err == nil {
		t.Error("certain attr should fail")
	}
}

func TestProbOfMultipleSets(t *testing.T) {
	schema := MustSchema(
		Column{Name: "x", Type: FloatType, Uncertain: true},
		Column{Name: "y", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("T", schema, nil, nil)
	if err := tbl.Insert(Row{PDFs: []PDF{
		{Attrs: []string{"x"}, Dist: dist.NewDiscrete([]float64{1}, []float64{0.5})},
		{Attrs: []string{"y"}, Dist: dist.NewDiscrete([]float64{2}, []float64{0.4})},
	}}); err != nil {
		t.Fatal(err)
	}
	p, err := tbl.Prob(tbl.Tuples()[0], "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p, 0.2, 1e-12) {
		t.Errorf("Pr(x,y) = %v, want 0.2", p)
	}
}

func TestInsertAlternativesXTuple(t *testing.T) {
	schema := MustSchema(
		Column{Name: "id", Type: IntType},
		Column{Name: "city", Type: IntType, Uncertain: true},
		Column{Name: "zip", Type: IntType, Uncertain: true},
	)
	tbl := MustTable("X", schema, [][]string{{"city", "zip"}}, nil)
	err := tbl.InsertAlternatives(
		map[string]Value{"id": Int(1)},
		[]Alternative{
			{Values: map[string]float64{"city": 0, "zip": 47906}, Prob: 0.7},
			{Values: map[string]float64{"city": 2, "zip": 60601}, Prob: 0.2},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.ExistenceProb(tbl.Tuples()[0]); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("existence = %v, want 0.9 (maybe x-tuple)", got)
	}
	n, _ := tbl.NodeOf(tbl.Tuples()[0], "city")
	if got := n.Dist.At([]float64{0, 47906}); !almostEqual(got, 0.7, 1e-12) {
		t.Errorf("P(alt 1) = %v", got)
	}
	// Errors: missing attr value, excess attrs, bad Δ shape.
	if err := tbl.InsertAlternatives(nil, []Alternative{{Values: map[string]float64{"city": 1}, Prob: 0.5}}); err == nil {
		t.Error("missing zip should fail")
	}
	if err := tbl.InsertAlternatives(nil, []Alternative{
		{Values: map[string]float64{"city": 1, "zip": 2, "bogus": 3}, Prob: 0.5},
	}); err == nil {
		t.Error("unknown attr should fail")
	}
	if err := tbl.InsertAlternatives(nil, []Alternative{
		{Values: map[string]float64{"city": 1, "zip": 2}, Prob: 1.5},
	}); err == nil {
		t.Error("probability above 1 should fail")
	}
	split := MustTable("Y", schema, [][]string{{"city"}, {"zip"}}, nil)
	if err := split.InsertAlternatives(nil, nil); err == nil {
		t.Error("split dependency sets should fail")
	}
}

func TestSelectDropsNullPromotion(t *testing.T) {
	// A predicate across an uncertain column and a certain column whose
	// value is NULL in some tuple filters that tuple instead of failing.
	schema := MustSchema(
		Column{Name: "c", Type: IntType},
		Column{Name: "a", Type: IntType, Uncertain: true},
	)
	tbl := MustTable("T", schema, nil, nil)
	if err := tbl.Insert(Row{
		Values: map[string]Value{"c": Int(3)},
		PDFs:   []PDF{{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{2}, []float64{1})}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{
		// c omitted: NULL
		PDFs: []PDF{{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{1}, []float64{1})}},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Select(Cmp(Col("a"), region.LT, Col("c")))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (NULL row dropped)", r.Len())
	}
}
