package core

import "sort"

// Sorted returns a table with the tuples reordered by the comparison
// function (stable). Ordering is presentation-level: pdfs, dependency
// information and histories are untouched.
func (t *Table) Sorted(less func(tb *Table, a, b *Tuple) bool) *Table {
	out := t.shallowDerived(t.Name)
	out.tuples = append([]*Tuple(nil), t.tuples...)
	sort.SliceStable(out.tuples, func(i, j int) bool { return less(t, out.tuples[i], out.tuples[j]) })
	for _, tup := range out.tuples {
		out.retainTuple(tup)
	}
	return out
}

// Head returns a table with the first n tuples (all of them when n exceeds
// the table size).
func (t *Table) Head(n int) *Table {
	if n < 0 {
		n = 0
	}
	if n > len(t.tuples) {
		n = len(t.tuples)
	}
	out := t.shallowDerived(t.Name)
	out.tuples = append([]*Tuple(nil), t.tuples[:n]...)
	for _, tup := range out.tuples {
		out.retainTuple(tup)
	}
	return out
}
