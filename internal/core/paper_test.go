package core

import (
	"math"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/numeric"
	"probdb/internal/region"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// sensorTable builds the paper's Table I: Readings(id, location) with
// location ~ Gaus(mean, variance).
func sensorTable(t *testing.T) *Table {
	t.Helper()
	schema := MustSchema(
		Column{Name: "id", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("Readings", schema, nil, nil)
	rows := []struct {
		id       int64
		mu, vari float64
	}{
		{1, 20, 5}, {2, 25, 4}, {3, 13, 1},
	}
	for _, r := range rows {
		err := tbl.Insert(Row{
			Values: map[string]Value{"id": Int(r.id)},
			PDFs:   []PDF{{Attrs: []string{"x"}, Dist: dist.NewGaussianVar(r.mu, r.vari)}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// tableII builds the paper's Table II: two tuples over discrete uncertain
// attributes a and b with Δ = {{a},{b}}.
func tableII(t *testing.T) *Table {
	t.Helper()
	schema := MustSchema(
		Column{Name: "a", Type: IntType, Uncertain: true},
		Column{Name: "b", Type: IntType, Uncertain: true},
	)
	tbl := MustTable("T", schema, [][]string{{"a"}, {"b"}}, nil)
	if err := tbl.Insert(Row{PDFs: []PDF{
		{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{0, 1}, []float64{0.1, 0.9})},
		{Attrs: []string{"b"}, Dist: dist.NewDiscrete([]float64{1, 2}, []float64{0.6, 0.4})},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{PDFs: []PDF{
		{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{7}, []float64{1})},
		{Attrs: []string{"b"}, Dist: dist.NewDiscrete([]float64{3}, []float64{1})},
	}}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestPaperTableISelectByID(t *testing.T) {
	// §III-C case 1: σ_{id=1}(Readings) = [1, Gaus(20,5)].
	tbl := sensorTable(t)
	r, err := tbl.Select(Cmp(Col("id"), region.EQ, LitI(1)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("got %d tuples, want 1", r.Len())
	}
	tup := r.Tuples()[0]
	v, _ := r.Value(tup, "id")
	if v.I != 1 {
		t.Errorf("id = %v", v.Render())
	}
	d, err := r.DistOf(tup, "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "Gaus(20,5)" {
		t.Errorf("pdf = %v", d)
	}
	// History is copied over (case 1): the node's ancestors are unchanged.
	n, _ := r.NodeOf(tup, "x")
	src, _ := tbl.NodeOf(tbl.Tuples()[0], "x")
	if len(n.Anc) != 1 || n.Anc[0] != src.Anc[0] {
		t.Error("selection should copy histories")
	}
}

func TestPaperSelectALessB(t *testing.T) {
	// §III-C case 2(b) worked example: σ_{a<b}(Table II) yields one tuple
	// with Δ = {{a,b}} and joint Discrete({0,1}:0.06, {0,2}:0.04,
	// {1,2}:0.36).
	tbl := tableII(t)
	r, err := tbl.Select(Cmp(Col("a"), region.LT, Col("b")))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("got %d tuples, want 1 (tuple t2 has a=7 ≥ b=3)", r.Len())
	}
	deps := r.DepSets()
	if len(deps) != 1 || len(deps[0]) != 2 {
		t.Fatalf("Δ = %v, want one merged set {a,b}", deps)
	}
	n, err := r.NodeOf(r.Tuples()[0], "a")
	if err != nil {
		t.Fatal(err)
	}
	joint, ok := n.Dist.(*dist.Discrete)
	if !ok {
		t.Fatalf("joint should be discrete, got %T", n.Dist)
	}
	want := map[[2]float64]float64{{0, 1}: 0.06, {0, 2}: 0.04, {1, 2}: 0.36}
	if len(joint.Points()) != len(want) {
		t.Fatalf("joint = %v", joint)
	}
	for k, p := range want {
		if got := joint.At([]float64{k[0], k[1]}); !almostEqual(got, p, 1e-12) {
			t.Errorf("P(a=%v,b=%v) = %v, want %v", k[0], k[1], got, p)
		}
	}
	// The tuple's existence probability is 0.46 = sum of surviving worlds.
	if got := r.ExistenceProb(r.Tuples()[0]); !almostEqual(got, 0.46, 1e-12) {
		t.Errorf("existence = %v, want 0.46", got)
	}
	// History: the new set's ancestors are the union {t1.a, t1.b}.
	if len(n.Anc) != 2 {
		t.Errorf("merged history should have 2 ancestors, got %v", n.Anc)
	}
}

func TestPaperPossibleWorldsTableIII(t *testing.T) {
	// The six possible worlds of Table II and their probabilities
	// (Table III): worlds are (a,b) choices for t1 times the certain t2.
	tbl := tableII(t)
	tup := tbl.Tuples()[0]
	na, _ := tbl.NodeOf(tup, "a")
	nb, _ := tbl.NodeOf(tup, "b")
	worlds := map[[2]float64]float64{
		{0, 1}: 0.06, {0, 2}: 0.04, {1, 1}: 0.54, {1, 2}: 0.36,
	}
	var total numeric.KahanSum
	for w, p := range worlds {
		got := na.Dist.At([]float64{w[0]}) * nb.Dist.At([]float64{w[1]})
		if !almostEqual(got, p, 1e-12) {
			t.Errorf("world %v probability %v, want %v", w, got, p)
		}
		total.Add(got)
	}
	if !almostEqual(total.Value(), 1, 1e-12) {
		t.Errorf("worlds total %v", total.Value())
	}
}

// fig3Table builds the table of Fig. 3: Σ=(a,b), Δ={{a,b}}, with t1 a joint
// over (a,b) and t2 a *partial* joint of mass 0.7.
func fig3Table(t *testing.T) *Table {
	t.Helper()
	schema := MustSchema(
		Column{Name: "a", Type: IntType, Uncertain: true},
		Column{Name: "b", Type: IntType, Uncertain: true},
	)
	tbl := MustTable("T", schema, [][]string{{"a", "b"}}, nil)
	if err := tbl.Insert(Row{PDFs: []PDF{{
		Attrs: []string{"a", "b"},
		Dist: dist.NewDiscreteJoint(2, []dist.Point{
			{X: []float64{4, 5}, P: 0.9},
			{X: []float64{2, 3}, P: 0.1},
		}),
	}}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{PDFs: []PDF{{
		Attrs: []string{"a", "b"},
		Dist: dist.NewDiscreteJoint(2, []dist.Point{
			{X: []float64{7, 3}, P: 0.7},
		}),
	}}}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFig3HistoryJoin(t *testing.T) {
	// The paper's Fig. 3: Ta = π_a(T), Tb = π_b(σ_{b>4}(T)); joining Ta and
	// Tb while honouring histories must produce Discrete({4,5}:0.9) for the
	// t1-derived pair — NOT the incorrect independent product
	// Discrete({4,5}:0.81, {2,5}:0.09) — and Discrete({7,5}:0.63) for the
	// (independent) t2×t1 pair.
	tbl := fig3Table(t)

	ta, err := tbl.Project("a")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tbl.Select(Cmp(Col("b"), region.GT, LitI(4)))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sel.Project("b")
	if err != nil {
		t.Fatal(err)
	}
	// Tb should contain only the t1 derivative: Discrete(5:0.9), partial.
	if tb.Len() != 1 {
		t.Fatalf("Tb has %d tuples, want 1 (t2's b=3 fails b>4)", tb.Len())
	}
	db, err := tb.DistOf(tb.Tuples()[0], "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := db.At([]float64{5}); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("Tb marginal P(b=5) = %v, want 0.9", got)
	}

	// Join: cross product (disjoint names via prefixes), then merge the two
	// uncertain columns into one joint to materialize Fig. 3's result table.
	tbR, err := tb.Renamed(map[string]string{"b": "b2"})
	if err != nil {
		t.Fatal(err)
	}
	cross, err := ta.CrossProduct(tbR)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := cross.MergeDeps("a", "b2")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 2 {
		t.Fatalf("join has %d tuples, want 2", joined.Len())
	}

	// Tuple 1: ta1 (from t1) × tb1 (from t1) — historically dependent.
	n1, err := joined.NodeOf(joined.Tuples()[0], "a")
	if err != nil {
		t.Fatal(err)
	}
	j1, ok := n1.Dist.(*dist.Discrete)
	if !ok {
		t.Fatalf("joint 1 is %T", n1.Dist)
	}
	if got := j1.At([]float64{4, 5}); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("correct P(4,5) = %v, want 0.9 (independence would give 0.81)", got)
	}
	if got := j1.At([]float64{2, 5}); got != 0 {
		t.Errorf("impossible tuple (2,5) has probability %v — this is the Fig. 3 bug", got)
	}

	// Tuple 2: ta2 (from t2) × tb1 (from t1) — independent: 0.7 × 0.9 = 0.63.
	n2, err := joined.NodeOf(joined.Tuples()[1], "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := n2.Dist.At([]float64{7, 5}); !almostEqual(got, 0.63, 1e-12) {
		t.Errorf("independent P(7,5) = %v, want 0.63", got)
	}
}

func TestFig3WithoutHistoriesIsWrong(t *testing.T) {
	// The same pipeline with history tracking off reproduces the incorrect
	// T1 of Fig. 3 — the baseline whose cost Fig. 6 compares against.
	tbl := fig3Table(t)
	tbl.SetTrackHistory(false)

	ta, err := tbl.Project("a")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tbl.Select(Cmp(Col("b"), region.GT, LitI(4)))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sel.Project("b")
	if err != nil {
		t.Fatal(err)
	}
	tbR, err := tb.Renamed(map[string]string{"b": "b2"})
	if err != nil {
		t.Fatal(err)
	}
	cross, err := ta.CrossProduct(tbR)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := cross.MergeDeps("a", "b2")
	if err != nil {
		t.Fatal(err)
	}
	n1, err := joined.NodeOf(joined.Tuples()[0], "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := n1.Dist.At([]float64{4, 5}); !almostEqual(got, 0.81, 1e-12) {
		t.Errorf("historyless P(4,5) = %v, want the incorrect 0.81", got)
	}
	if got := n1.Dist.At([]float64{2, 5}); !almostEqual(got, 0.09, 1e-12) {
		t.Errorf("historyless P(2,5) = %v, want the incorrect 0.09", got)
	}
}

func TestPaperTableIVPartialVsNull(t *testing.T) {
	// Table IV: NULL attribute values versus partial pdfs. Tuple 1 has
	// missing values but certainly exists; tuple 2 exists with probability
	// 0.8.
	schema := MustSchema(
		Column{Name: "a", Type: IntType},
		Column{Name: "b", Type: FloatType, Uncertain: true},
		Column{Name: "c", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("T", schema, [][]string{{"b", "c"}}, nil)
	// Tuple with known pdf of full mass: certainly exists.
	if err := tbl.Insert(Row{
		Values: map[string]Value{"a": Int(1)},
		PDFs: []PDF{{Attrs: []string{"b", "c"}, Dist: dist.NewDiscreteJoint(2, []dist.Point{
			{X: []float64{2, 3}, P: 0.8},
			{X: []float64{4, 4}, P: 0.2},
		})}},
	}); err != nil {
		t.Fatal(err)
	}
	// Tuple with partial pdf: exists with probability 0.8.
	if err := tbl.Insert(Row{
		Values: map[string]Value{"a": Int(2)},
		PDFs: []PDF{{Attrs: []string{"b", "c"}, Dist: dist.NewDiscreteJoint(2, []dist.Point{
			{X: []float64{4, 7}, P: 0.2},
			{X: []float64{4.1, 3.7}, P: 0.6},
		})}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.ExistenceProb(tbl.Tuples()[0]); !almostEqual(got, 1, 1e-12) {
		t.Errorf("tuple 1 existence = %v, want 1", got)
	}
	if got := tbl.ExistenceProb(tbl.Tuples()[1]); !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("tuple 2 existence = %v, want 0.8", got)
	}
}

func TestClosureDefinition4(t *testing.T) {
	// The paper's Ω example: Δ = {{a,b},{c,d},{e,f}}, A = {b,c,g} gives
	// {{a,b,c,d,g},{e,f}}.
	got := closure([][]string{{"a", "b"}, {"c", "d"}, {"e", "f"}, {"b", "c", "g"}})
	if len(got) != 2 {
		t.Fatalf("closure = %v", got)
	}
	want0 := map[string]bool{"a": true, "b": true, "c": true, "d": true, "g": true}
	if len(got[0]) != 5 {
		t.Fatalf("component 0 = %v", got[0])
	}
	for _, a := range got[0] {
		if !want0[a] {
			t.Errorf("unexpected member %q", a)
		}
	}
	if len(got[1]) != 2 || got[1][0] != "e" || got[1][1] != "f" {
		t.Errorf("component 1 = %v", got[1])
	}
}

func TestContinuousSelectSymbolicFloor(t *testing.T) {
	// §III-A: selecting x < 25 on Gaus pdfs floors symbolically.
	tbl := sensorTable(t)
	r, err := tbl.Select(Cmp(Col("x"), region.LT, LitF(25)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("got %d tuples (Gaussian tails never hit zero)", r.Len())
	}
	tup := r.Tuples()[1] // sensor 2: Gaus(25,4) floored at 25 keeps mass 0.5
	d, err := r.DistOf(tup, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(dist.Floored); !ok {
		t.Fatalf("floored gaussian should stay symbolic, got %T", d)
	}
	if !almostEqual(d.Mass(), 0.5, 1e-12) {
		t.Errorf("mass = %v, want 0.5", d.Mass())
	}
	// Sensor 1: mass = P[N(20,5) < 25].
	d1, _ := r.DistOf(r.Tuples()[0], "x")
	want := numeric.NormalCDF(25, 20, math.Sqrt(5))
	if !almostEqual(d1.Mass(), want, 1e-12) {
		t.Errorf("sensor 1 mass = %v, want %v", d1.Mass(), want)
	}
}

func TestContinuousCrossAttributeSelect(t *testing.T) {
	// x < y over two independent uncertain attributes: P[X<Y] for
	// X~N(0,1), Y~N(1,1) is Φ(1/√2) ≈ 0.7602.
	schema := MustSchema(
		Column{Name: "x", Type: FloatType, Uncertain: true},
		Column{Name: "y", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("T", schema, nil, nil)
	if err := tbl.Insert(Row{PDFs: []PDF{
		{Attrs: []string{"x"}, Dist: dist.NewGaussian(0, 1)},
		{Attrs: []string{"y"}, Dist: dist.NewGaussian(1, 1)},
	}}); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Select(Cmp(Col("x"), region.LT, Col("y")))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatal("tuple should survive")
	}
	got := r.ExistenceProb(r.Tuples()[0])
	if !almostEqual(got, 0.7602499389065233, 0.02) {
		t.Errorf("P[X<Y] = %v, want ~0.7602", got)
	}
	if len(r.DepSets()) != 1 {
		t.Errorf("Δ should be merged: %v", r.DepSets())
	}
}

func TestSelectPromotesCertainColumn(t *testing.T) {
	// §III-C case 2(b): a predicate across an uncertain and a certain
	// attribute promotes the certain one into the joint via the identity
	// pdf. Certain c=3; uncertain a ∈ {2:0.5, 4:0.5}; a < c keeps {2}.
	schema := MustSchema(
		Column{Name: "c", Type: IntType},
		Column{Name: "a", Type: IntType, Uncertain: true},
	)
	tbl := MustTable("T", schema, nil, nil)
	if err := tbl.Insert(Row{
		Values: map[string]Value{"c": Int(3)},
		PDFs:   []PDF{{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{2, 4}, []float64{0.5, 0.5})}},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Select(Cmp(Col("a"), region.LT, Col("c")))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatal("tuple should survive with mass 0.5")
	}
	col, _ := r.Schema().Lookup("c")
	if !col.Uncertain {
		t.Error("promoted column should be uncertain in the result schema")
	}
	if got := r.ExistenceProb(r.Tuples()[0]); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("existence = %v, want 0.5", got)
	}
	// The joint marginal over c is still the point mass at 3.
	dc, err := r.DistOf(r.Tuples()[0], "c")
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.At([]float64{3}); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("P(c=3) in partial joint = %v, want 0.5", got)
	}
}

func TestCorrelatedGaussianDependencySet(t *testing.T) {
	// §II-A's moving-object motivation with an exact joint Gaussian: x and
	// y are correlated, so flooring x shifts the y marginal.
	schema := MustSchema(
		Column{Name: "oid", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
		Column{Name: "y", Type: FloatType, Uncertain: true},
	)
	tbl := MustTable("Obj", schema, [][]string{{"x", "y"}}, nil)
	mvn := dist.MustMultiGaussian(
		[]float64{0, 0},
		[][]float64{{1, 0.7}, {0.7, 1}},
	)
	if err := tbl.Insert(Row{
		Values: map[string]Value{"oid": Int(1)},
		PDFs:   []PDF{{Attrs: []string{"x", "y"}, Dist: mvn}},
	}); err != nil {
		t.Fatal(err)
	}
	sel, err := tbl.Select(Cmp(Col("x"), region.GT, LitF(0)))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Len() != 1 {
		t.Fatal("tuple should survive with mass 0.5")
	}
	if got := sel.ExistenceProb(sel.Tuples()[0]); !almostEqual(got, 0.5, 0.02) {
		t.Errorf("existence = %v, want ~0.5", got)
	}
	dy, err := sel.DistOf(sel.Tuples()[0], "y")
	if err != nil {
		t.Fatal(err)
	}
	// E[Y | X > 0] = rho·sqrt(2/pi) ≈ 0.5585 for standard bivariate rho=0.7.
	want := 0.7 * math.Sqrt(2/math.Pi)
	if !almostEqual(dy.Mean(0), want, 0.06) {
		t.Errorf("conditional E[y] = %v, want ~%v", dy.Mean(0), want)
	}
}
