package core

import (
	"math"
	"math/rand"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
)

// randomKeyedTable is randomMixedTable with a caller-controlled name and
// registry, so two tables can be crossed/joined (cross ops require a shared
// registry).
func randomKeyedTable(r *rand.Rand, name string, reg *Registry) *Table {
	schema := MustSchema(
		Column{Name: "k", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
		Column{Name: "a", Type: IntType, Uncertain: true},
		Column{Name: "b", Type: IntType, Uncertain: true},
	)
	tbl := MustTable(name, schema, [][]string{{"a", "b"}}, reg)
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		np := 1 + r.Intn(3)
		pts := make([]dist.Point, np)
		for j := range pts {
			pts[j] = dist.Point{
				X: []float64{float64(r.Intn(5)), float64(r.Intn(5))},
				P: r.Float64() / float64(np),
			}
		}
		var x dist.Dist
		if r.Intn(2) == 0 {
			x = dist.NewGaussian(r.Float64()*100, 0.5+r.Float64()*4)
		} else {
			x = dist.NewUniform(0, 1+r.Float64()*99)
		}
		if err := tbl.Insert(Row{
			Values: map[string]Value{"k": Int(int64(i))},
			PDFs: []PDF{
				{Attrs: []string{"x"}, Dist: x},
				{Attrs: []string{"a", "b"}, Dist: dist.NewDiscreteJoint(2, pts)},
			},
		}); err != nil {
			panic(err)
		}
	}
	return tbl
}

// assertTablesIdentical demands byte-identical results: same cardinality,
// same rendered output (tuple order and pdf text included), and bitwise
// equal existence probabilities.
func assertTablesIdentical(t *testing.T, seq, par *Table) {
	t.Helper()
	if seq.Len() != par.Len() {
		t.Fatalf("cardinality differs: sequential %d, parallel %d", seq.Len(), par.Len())
	}
	if sr, pr := seq.Render(), par.Render(); sr != pr {
		t.Fatalf("rendered output differs:\nsequential:\n%s\nparallel:\n%s", sr, pr)
	}
	for i := range seq.Tuples() {
		sp := seq.ExistenceProb(seq.Tuples()[i])
		pp := par.ExistenceProb(par.Tuples()[i])
		if math.Float64bits(sp) != math.Float64bits(pp) {
			t.Fatalf("tuple %d existence differs bitwise: %v vs %v", i, sp, pp)
		}
	}
}

// TestParallelSelectDifferential: Select at parallelism 8 is byte-identical
// to parallelism 1 across the property-test corpus.
func TestParallelSelectDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(201)) // the properties_test.go corpus seed
	for trial := 0; trial < 60; trial++ {
		tbl := randomMixedTable(r)
		atoms := []Atom{randomAtom(r)}
		if r.Intn(2) == 0 {
			atoms = append(atoms, randomAtom(r))
		}
		seq, err := tbl.WithParallelism(1).Select(atoms...)
		if err != nil {
			t.Fatal(err)
		}
		par, err := tbl.WithParallelism(8).Select(atoms...)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, seq, par)
	}
}

// TestParallelJoinDifferential: Join and EquiJoin (hash pairing, merge,
// cross-attribute floors) at parallelism 8 equal parallelism 1.
func TestParallelJoinDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for trial := 0; trial < 25; trial++ {
		reg := NewRegistry()
		la, err := randomKeyedTable(r, "L", reg).Prefixed("l.")
		if err != nil {
			t.Fatal(err)
		}
		rb, err := randomKeyedTable(r, "R", reg).Prefixed("r.")
		if err != nil {
			t.Fatal(err)
		}
		atom := Cmp(Col("l.x"), region.LT, Col("r.x"))

		seq, err := la.WithParallelism(1).EquiJoin(rb, "l.k", "r.k", atom)
		if err != nil {
			t.Fatal(err)
		}
		par, err := la.WithParallelism(8).EquiJoin(rb, "l.k", "r.k", atom)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, seq, par)

		seqJ, err := la.WithParallelism(1).Join(rb, Cmp(Col("l.k"), region.EQ, Col("r.k")), atom)
		if err != nil {
			t.Fatal(err)
		}
		parJ, err := la.WithParallelism(8).Join(rb, Cmp(Col("l.k"), region.EQ, Col("r.k")), atom)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, seqJ, parJ)
	}
}

// TestParallelCrossProductDifferential: pair order of the parallel
// materialization matches the sequential nested loop.
func TestParallelCrossProductDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	for trial := 0; trial < 25; trial++ {
		reg := NewRegistry()
		la, err := randomKeyedTable(r, "L", reg).Prefixed("l.")
		if err != nil {
			t.Fatal(err)
		}
		rb, err := randomKeyedTable(r, "R", reg).Prefixed("r.")
		if err != nil {
			t.Fatal(err)
		}
		seq, err := la.WithParallelism(1).CrossProduct(rb)
		if err != nil {
			t.Fatal(err)
		}
		par, err := la.WithParallelism(8).CrossProduct(rb)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, seq, par)
	}
}

// TestParallelThresholdDifferential: the probability-value selections
// (§III-E) are identical across parallelism, with and without the mass
// cache warm.
func TestParallelThresholdDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(204))
	for trial := 0; trial < 40; trial++ {
		tbl := randomMixedTable(r)
		lo := r.Float64() * 50
		hi := lo + r.Float64()*50
		p := r.Float64()

		seq, err := tbl.WithParallelism(1).SelectRangeThreshold("x", lo, hi, region.GE, p)
		if err != nil {
			t.Fatal(err)
		}
		// Second run hits the warmed mass cache; results must not change.
		for rep := 0; rep < 2; rep++ {
			par, err := tbl.WithParallelism(8).SelectRangeThreshold("x", lo, hi, region.GE, p)
			if err != nil {
				t.Fatal(err)
			}
			assertTablesIdentical(t, seq, par)
		}

		seqP, err := tbl.WithParallelism(1).SelectWhereProb([]string{"a"}, region.LE, p)
		if err != nil {
			t.Fatal(err)
		}
		parP, err := tbl.WithParallelism(8).SelectWhereProb([]string{"a"}, region.LE, p)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesIdentical(t, seqP, parP)
	}
}

// TestMassCacheConsistency: cached evaluations equal direct evaluations
// bitwise, and hits actually accrue on repetition.
func TestMassCacheConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(205))
	tbl := randomMixedTable(r)
	h0 := tbl.Registry().MassCache().Stats()
	var first []float64
	for _, tup := range tbl.Tuples() {
		pr, err := tbl.ProbInRange(tup, "x", 10, 60)
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, pr)
	}
	for i, tup := range tbl.Tuples() {
		pr, err := tbl.ProbInRange(tup, "x", 10, 60)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(pr) != math.Float64bits(first[i]) {
			t.Fatalf("cached value differs: %v vs %v", pr, first[i])
		}
		// The cache must also agree with a direct, uncached evaluation.
		d, err := tbl.DistOf(tup, "x")
		if err != nil {
			t.Fatal(err)
		}
		direct := dist.MassInterval(d, 10, 60)
		if math.Float64bits(pr) != math.Float64bits(direct) {
			t.Fatalf("cache diverges from direct evaluation: %v vs %v", pr, direct)
		}
	}
	h1 := tbl.Registry().MassCache().Stats()
	if h1.Hits <= h0.Hits {
		t.Fatalf("no cache hits accrued: %+v -> %+v", h0, h1)
	}
}

// TestMassCacheEvictionOnDelete: deleting base tuples frees registry
// records and must evict their memoized evaluations.
func TestMassCacheEvictionOnDelete(t *testing.T) {
	r := rand.New(rand.NewSource(206))
	tbl := randomMixedTable(r)
	for _, tup := range tbl.Tuples() {
		if _, err := tbl.ProbInRange(tup, "x", 0, 100); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Registry().MassCache().Len() == 0 {
		t.Fatal("expected cached entries")
	}
	tbl.Delete(func(*Table, *Tuple) bool { return true })
	if n := tbl.Registry().MassCache().Len(); n != 0 {
		t.Fatalf("%d stale cache entries survived deletion", n)
	}
}
