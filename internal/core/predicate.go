package core

import (
	"fmt"

	"probdb/internal/region"
)

// Operand is one side of a comparison atom: either a column reference or a
// literal value.
type Operand struct {
	attr  string
	lit   Value
	isCol bool
}

// Col references the named column.
func Col(name string) Operand { return Operand{attr: name, isCol: true} }

// Lit wraps a literal value.
func Lit(v Value) Operand { return Operand{lit: v} }

// LitF wraps a float literal.
func LitF(f float64) Operand { return Operand{lit: Float(f)} }

// LitI wraps an integer literal.
func LitI(i int64) Operand { return Operand{lit: Int(i)} }

// LitS wraps a string literal.
func LitS(s string) Operand { return Operand{lit: Str(s)} }

func (o Operand) String() string {
	if o.isCol {
		return o.attr
	}
	return o.lit.Render()
}

// Atom is one comparison predicate: left op right. Selections take
// conjunctions of atoms; because floors commute (§III-A), the atoms may be
// applied in any order.
type Atom struct {
	Left  Operand
	Op    region.Op
	Right Operand
}

// Cmp builds an atom.
func Cmp(left Operand, op region.Op, right Operand) Atom {
	return Atom{Left: left, Op: op, Right: right}
}

func (a Atom) String() string {
	return fmt.Sprintf("%v %v %v", a.Left, a.Op, a.Right)
}

// atomClass classifies an atom against a table for planning.
type atomClass int

const (
	atomCertain        atomClass = iota // no uncertain column involved
	atomUncertainConst                  // one uncertain column vs a constant
	atomCross                           // uncertain column vs column (any kind)
)

// classified is an analyzed atom: operand columns resolved against the
// table, normalized so that an uncertain-vs-constant comparison has the
// column on the left.
type classified struct {
	atom  Atom
	class atomClass
	// For atomUncertainConst: the uncertain column name and the kept region.
	colName string
	keep    region.Set
	// For atomCross: both column names (left, right) as written.
	leftCol, rightCol string
}

// classify resolves an atom against the table. It returns an error for
// unknown columns, comparisons of uncertain columns with non-numeric
// literals, or literal-vs-literal atoms.
func (t *Table) classify(a Atom) (classified, error) {
	c := classified{atom: a}
	leftCol, leftUncertain, err := t.operandInfo(a.Left)
	if err != nil {
		return c, err
	}
	rightCol, rightUncertain, err := t.operandInfo(a.Right)
	if err != nil {
		return c, err
	}
	switch {
	case a.Left.isCol && a.Right.isCol:
		if leftUncertain || rightUncertain {
			c.class = atomCross
			c.leftCol, c.rightCol = leftCol, rightCol
		} else {
			c.class = atomCertain
		}
	case a.Left.isCol && leftUncertain:
		f, ok := a.Right.lit.AsFloat()
		if !ok {
			return c, fmt.Errorf("core: uncertain column %q compared with non-numeric literal %s",
				leftCol, a.Right.lit.Render())
		}
		c.class = atomUncertainConst
		c.colName = leftCol
		c.keep = region.Compare(a.Op, f)
	case a.Right.isCol && rightUncertain:
		f, ok := a.Left.lit.AsFloat()
		if !ok {
			return c, fmt.Errorf("core: uncertain column %q compared with non-numeric literal %s",
				rightCol, a.Left.lit.Render())
		}
		c.class = atomUncertainConst
		c.colName = rightCol
		c.keep = region.Compare(a.Op.Flip(), f)
	case a.Left.isCol || a.Right.isCol:
		c.class = atomCertain
	default:
		return c, fmt.Errorf("core: predicate %v compares two literals", a)
	}
	return c, nil
}

// operandInfo resolves a column operand, returning its name and whether it
// is uncertain. Literal operands return ("", false, nil).
func (t *Table) operandInfo(o Operand) (string, bool, error) {
	if !o.isCol {
		return "", false, nil
	}
	col, ok := t.schema.Lookup(o.attr)
	if !ok {
		return "", false, fmt.Errorf("core: unknown column %q", o.attr)
	}
	return o.attr, col.Uncertain, nil
}

// evalCertain evaluates an atom whose operands are all certain-valued on a
// tuple. NULL comparisons are false (SQL semantics collapsed to boolean).
func (t *Table) evalCertain(a Atom, tup *Tuple) bool {
	lv := t.operandValue(a.Left, tup)
	rv := t.operandValue(a.Right, tup)
	switch a.Op {
	case region.EQ:
		return lv.Equal(rv)
	case region.NE:
		if lv.IsNull() || rv.IsNull() {
			return false
		}
		return !lv.Equal(rv)
	default:
		cmp, ok := lv.Compare(rv)
		if !ok {
			return false
		}
		return a.Op.Eval(float64(cmp), 0)
	}
}

func (t *Table) operandValue(o Operand, tup *Tuple) Value {
	if !o.isCol {
		return o.lit
	}
	return tup.certain[t.schema.Index(o.attr)]
}
