package core

import (
	"math/rand"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
)

// randomMixedTable builds a table with a certain key, a continuous
// uncertain attribute, and two jointly distributed discrete attributes.
func randomMixedTable(r *rand.Rand) *Table {
	schema := MustSchema(
		Column{Name: "k", Type: IntType},
		Column{Name: "x", Type: FloatType, Uncertain: true},
		Column{Name: "a", Type: IntType, Uncertain: true},
		Column{Name: "b", Type: IntType, Uncertain: true},
	)
	tbl := MustTable("R", schema, [][]string{{"a", "b"}}, nil)
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		np := 1 + r.Intn(3)
		pts := make([]dist.Point, np)
		for j := range pts {
			pts[j] = dist.Point{
				X: []float64{float64(r.Intn(5)), float64(r.Intn(5))},
				P: r.Float64() / float64(np),
			}
		}
		var x dist.Dist
		if r.Intn(2) == 0 {
			x = dist.NewGaussian(r.Float64()*100, 0.5+r.Float64()*4)
		} else {
			x = dist.NewUniform(0, 1+r.Float64()*99)
		}
		if err := tbl.Insert(Row{
			Values: map[string]Value{"k": Int(int64(i))},
			PDFs: []PDF{
				{Attrs: []string{"x"}, Dist: x},
				{Attrs: []string{"a", "b"}, Dist: dist.NewDiscreteJoint(2, pts)},
			},
		}); err != nil {
			panic(err)
		}
	}
	return tbl
}

func randomAtom(r *rand.Rand) Atom {
	ops := []region.Op{region.LT, region.LE, region.GT, region.GE, region.EQ, region.NE}
	op := ops[r.Intn(len(ops))]
	switch r.Intn(4) {
	case 0:
		return Cmp(Col("x"), op, LitF(r.Float64()*100))
	case 1:
		return Cmp(Col("a"), op, LitI(int64(r.Intn(5))))
	case 2:
		return Cmp(Col("a"), op, Col("b"))
	default:
		return Cmp(Col("k"), op, LitI(int64(r.Intn(4))))
	}
}

// TestQuickSelectNeverIncreasesExistence: σ can only shrink tuple
// existence probabilities (floors only remove mass).
func TestQuickSelectNeverIncreasesExistence(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	for trial := 0; trial < 80; trial++ {
		tbl := randomMixedTable(r)
		before := map[string]float64{}
		for _, tup := range tbl.Tuples() {
			k, _ := tbl.Value(tup, "k")
			before[k.Render()] = tbl.ExistenceProb(tup)
		}
		sel, err := tbl.Select(randomAtom(r))
		if err != nil {
			t.Fatal(err)
		}
		for _, tup := range sel.Tuples() {
			k, _ := sel.Value(tup, "k")
			if got := sel.ExistenceProb(tup); got > before[k.Render()]+1e-9 {
				t.Fatalf("trial %d: existence grew %v -> %v", trial, before[k.Render()], got)
			}
		}
	}
}

// TestQuickConjunctionEqualsSequentialSelects: σ_{p∧q} = σ_p ∘ σ_q in
// per-tuple existence (floors commute, Theorem 1).
func TestQuickConjunctionEqualsSequentialSelects(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	for trial := 0; trial < 60; trial++ {
		tbl := randomMixedTable(r)
		a1, a2 := randomAtom(r), randomAtom(r)
		conj, err := tbl.Select(a1, a2)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := tbl.Select(a1)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := s1.Select(a2)
		if err != nil {
			t.Fatal(err)
		}
		pc := existenceByKey(conj)
		ps := existenceByKey(seq)
		for k, v := range pc {
			if !almostEqual(v, ps[k], 1e-6) {
				t.Fatalf("trial %d (%v AND %v): key %s: %v vs %v", trial, a1, a2, k, v, ps[k])
			}
		}
		for k := range ps {
			if _, ok := pc[k]; !ok {
				t.Fatalf("trial %d: sequential kept %s, conjunction dropped it", trial, k)
			}
		}
	}
}

func existenceByKey(t *Table) map[string]float64 {
	out := map[string]float64{}
	for _, tup := range t.Tuples() {
		k, _ := t.Value(tup, "k")
		out[k.Render()] = t.ExistenceProb(tup)
	}
	return out
}

// TestQuickProjectPreservesExistence: π keeps tuple existence intact
// (phantom retention, §III-B).
func TestQuickProjectPreservesExistence(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	for trial := 0; trial < 60; trial++ {
		tbl := randomMixedTable(r)
		sel, err := tbl.Select(randomAtom(r))
		if err != nil {
			t.Fatal(err)
		}
		proj, err := sel.Project("k")
		if err != nil {
			t.Fatal(err)
		}
		want := existenceByKey(sel)
		got := existenceByKey(proj)
		for k, v := range want {
			if !almostEqual(v, got[k], 1e-9) {
				t.Fatalf("trial %d: key %s existence %v -> %v", trial, k, v, got[k])
			}
		}
	}
}

// TestQuickThresholdSelectIsSubset: probability-value selections never
// modify surviving pdfs (§III-E) and only filter.
func TestQuickThresholdSelectIsSubset(t *testing.T) {
	r := rand.New(rand.NewSource(204))
	for trial := 0; trial < 60; trial++ {
		tbl := randomMixedTable(r)
		p := r.Float64()
		th, err := tbl.SelectWhereProb([]string{"a"}, region.GE, p)
		if err != nil {
			t.Fatal(err)
		}
		if th.Len() > tbl.Len() {
			t.Fatal("threshold select grew the table")
		}
		before := existenceByKey(tbl)
		for _, tup := range th.Tuples() {
			k, _ := th.Value(tup, "k")
			if !almostEqual(th.ExistenceProb(tup), before[k.Render()], 1e-12) {
				t.Fatalf("trial %d: threshold select changed a pdf", trial)
			}
		}
	}
}

// TestQuickMergeIndependentMassIsProduct: merging independent dependency
// sets multiplies masses.
func TestQuickMergeIndependentMassIsProduct(t *testing.T) {
	r := rand.New(rand.NewSource(205))
	for trial := 0; trial < 60; trial++ {
		tbl := randomMixedTable(r)
		merged, err := tbl.MergeDeps("x", "a")
		if err != nil {
			t.Fatal(err)
		}
		for i, tup := range merged.Tuples() {
			src := tbl.Tuples()[i]
			nx, _ := tbl.NodeOf(src, "x")
			na, _ := tbl.NodeOf(src, "a")
			nm, _ := merged.NodeOf(tup, "x")
			if !almostEqual(nm.Dist.Mass(), nx.Dist.Mass()*na.Dist.Mass(), 1e-9) {
				t.Fatalf("trial %d tuple %d: %v != %v*%v",
					trial, i, nm.Dist.Mass(), nx.Dist.Mass(), na.Dist.Mass())
			}
		}
	}
}

// TestQuickCrossProductCounts: |A × B| = |A|·|B| and existence multiplies.
func TestQuickCrossProductCounts(t *testing.T) {
	r := rand.New(rand.NewSource(206))
	for trial := 0; trial < 40; trial++ {
		reg := NewRegistry()
		mk := func(name, prefix string) *Table {
			schema := MustSchema(
				Column{Name: prefix + "k", Type: IntType},
				Column{Name: prefix + "x", Type: FloatType, Uncertain: true},
			)
			tbl := MustTable(name, schema, nil, reg)
			n := 1 + r.Intn(3)
			for i := 0; i < n; i++ {
				d := dist.NewUniform(0, 10)
				if r.Intn(2) == 0 {
					d = d.Floor(0, region.Compare(region.LT, r.Float64()*10))
				}
				if d.Mass() == 0 {
					d = dist.NewUniform(0, 10)
				}
				if err := tbl.Insert(Row{
					Values: map[string]Value{prefix + "k": Int(int64(i))},
					PDFs:   []PDF{{Attrs: []string{prefix + "x"}, Dist: d}},
				}); err != nil {
					panic(err)
				}
			}
			return tbl
		}
		a, b := mk("A", "a"), mk("B", "b")
		x, err := a.CrossProduct(b)
		if err != nil {
			t.Fatal(err)
		}
		if x.Len() != a.Len()*b.Len() {
			t.Fatalf("trial %d: %d != %d*%d", trial, x.Len(), a.Len(), b.Len())
		}
		idx := 0
		for _, ta := range a.Tuples() {
			for _, tb := range b.Tuples() {
				want := a.ExistenceProb(ta) * b.ExistenceProb(tb)
				if got := x.ExistenceProb(x.Tuples()[idx]); !almostEqual(got, want, 1e-12) {
					t.Fatalf("trial %d pair %d: %v != %v", trial, idx, got, want)
				}
				idx++
			}
		}
	}
}
