package core

import (
	"fmt"
	"sort"
	"strings"
)

// Column declares one visible attribute of a probabilistic schema Σ: a
// name, a type, and whether the attribute is uncertain (pdf-valued).
type Column struct {
	Name      string
	Type      AttrType
	Uncertain bool
}

// Schema is the visible relational schema Σ of a table: column names and
// types, certain and uncertain alike (§II). Phantom attributes — uncertain
// attributes retained by projection only to preserve floors and
// correlations — live in the table's dependency information Δ, not here.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. It returns an error on duplicate
// or empty names, or on uncertain columns with non-numeric types.
func NewSchema(cols []Column) (*Schema, error) {
	s := &Schema{cols: make([]Column, len(cols)), byName: make(map[string]int, len(cols))}
	copy(s.cols, cols)
	for i, c := range s.cols {
		if c.Name == "" {
			return nil, fmt.Errorf("core: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("core: duplicate column %q", c.Name)
		}
		if c.Uncertain && !c.Type.Numeric() {
			return nil, fmt.Errorf("core: uncertain column %q must be numeric (got %v)", c.Name, c.Type)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for literals in tests and
// examples.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// Columns returns the schema's columns in declaration order. The returned
// slice must not be modified.
func (s *Schema) Columns() []Column { return s.cols }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Lookup returns the column with the given name.
func (s *Schema) Lookup(name string) (Column, bool) {
	i, ok := s.byName[name]
	if !ok {
		return Column{}, false
	}
	return s.cols[i], true
}

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool { _, ok := s.byName[name]; return ok }

// UncertainNames returns the names of the uncertain columns in order.
func (s *Schema) UncertainNames() []string {
	var out []string
	for _, c := range s.cols {
		if c.Uncertain {
			out = append(out, c.Name)
		}
	}
	return out
}

// String renders the schema as "(name TYPE [UNCERTAIN], ...)".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		u := ""
		if c.Uncertain {
			u = " UNCERTAIN"
		}
		parts[i] = fmt.Sprintf("%s %v%s", c.Name, c.Type, u)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Project returns a schema containing only the named columns, in the given
// order.
func (s *Schema) Project(names []string) (*Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		c, ok := s.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("core: unknown column %q", n)
		}
		cols = append(cols, c)
	}
	return NewSchema(cols)
}

// closure implements the paper's Ω operation (Definition 4): given the
// existing dependency sets and a new set linking some attributes, it merges
// the connected components of the resulting hypergraph. Returned components
// preserve a deterministic order: components are ordered by their smallest
// member under lexicographic comparison, and members within a component keep
// first-appearance order from the inputs.
func closure(sets [][]string) [][]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	var order []string
	seen := map[string]bool{}
	for _, set := range sets {
		for _, a := range set {
			if !seen[a] {
				seen[a] = true
				order = append(order, a)
			}
			union(set[0], a)
		}
	}
	groups := map[string][]string{}
	for _, a := range order {
		r := find(a)
		groups[r] = append(groups[r], a)
	}
	var roots []string
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		return groups[roots[i]][0] < groups[roots[j]][0]
	})
	out := make([][]string, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}
