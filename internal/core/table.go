package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"probdb/internal/dist"
	"probdb/internal/exec"
)

// AttrID is the internal identity of an attribute. Identities survive
// renames, projections and cross products, so the history machinery can
// match a derived pdf's dimensions against base-table pdfs no matter what
// the columns are called by the time they meet again in a join.
type AttrID uint64

var attrIDCounter atomic.Uint64

func newAttrID() AttrID { return AttrID(attrIDCounter.Add(1)) }

// depSet is one dependency set of Δ: an ordered list of jointly-distributed
// attributes. Attributes may be phantom — retained by a projection to keep
// floors and correlations (§III-B) — in which case they appear here but not
// in the visible schema.
type depSet struct {
	ids   []AttrID
	names []string
	types []AttrType
}

func (d *depSet) clone() *depSet {
	c := &depSet{
		ids:   append([]AttrID(nil), d.ids...),
		names: append([]string(nil), d.names...),
		types: append([]AttrType(nil), d.types...),
	}
	return c
}

// dimOf returns the dimension index of the given attribute id, or -1.
func (d *depSet) dimOf(id AttrID) int {
	for i, x := range d.ids {
		if x == id {
			return i
		}
	}
	return -1
}

// PDFNode is one pdf instance: the distribution of one dependency set in
// one tuple, together with its history Λ (the set of base pdfs it derives
// from, Definition 2).
type PDFNode struct {
	Dist dist.Dist
	Anc  AncestorSet
	// vars identifies the random variable behind each dimension of Dist:
	// which base pdf and which of its dimensions. Variable identity is what
	// lets joins recognize two derivations of the same base pdf (Fig. 3).
	vars []varRef
	// self is the base registry ID when this node was directly inserted
	// (Definition 2: a fresh node is its own ancestor), 0 for derived nodes.
	self NodeID
	// pristine marks a node whose Dist is still exactly the registered base
	// distribution — no floors applied — letting the dependent-product
	// reconstruction skip a redundant floor-propagation pass.
	pristine bool
}

// Tuple is one probabilistic tuple: certain values for the visible columns
// (positions holding uncertain columns are Null) and one PDFNode per
// dependency set of the owning table.
type Tuple struct {
	certain []Value
	nodes   []*PDFNode
}

// Table is a probabilistic relation: a visible schema Σ, dependency
// information Δ (with phantom attributes), a shared base-pdf registry, and
// tuples. Tables are immutable under the relational operators — Select,
// Project, CrossProduct, Join and ThresholdSelect return new tables sharing
// the registry — while Insert and Delete mutate the receiver (base-table
// maintenance).
type Table struct {
	Name   string
	schema *Schema
	ids    []AttrID // identity of each visible column
	deps   []*depSet
	reg    *Registry
	tuples []*Tuple
	// trackHistory enables Λ maintenance. Disabling it reproduces the
	// incorrect-but-cheaper baseline of Fig. 3/Fig. 6: all products are
	// treated as independent.
	trackHistory bool
	// par is the degree of parallelism the operators use for per-tuple
	// work: 0 means one worker per logical CPU, 1 forces sequential
	// execution. Derived tables inherit it. Parallel and sequential
	// execution are byte-identical — tuple order and floats included.
	par int
	// tid identifies the table for the registry's columnar-encoding cache.
	// Base tables (NewTable) and transaction overlays (CloneInto) get a
	// fresh nonzero identity; derived tables stay 0, meaning their
	// encodings are per-batch scratch, never cached.
	tid uint64
	// ver counts the table's DML mutations. It keys cached columnar
	// encodings, so a cached block can never serve a table state it wasn't
	// built from. Read-only views (Freeze, WithParallelism) share it.
	ver uint64
}

var tableIDCounter atomic.Uint64

func newTableID() uint64 { return tableIDCounter.Add(1) }

// bumpVersion advances the DML version and reclaims cached columnar
// encodings of the previous version. Derived tables (tid 0) are never
// cached, so they skip the bump.
func (t *Table) bumpVersion() {
	if t.tid == 0 {
		return
	}
	t.ver++
	t.reg.colenc.InvalidateTable(t.tid)
}

// NewTable creates an empty table with the given visible schema and
// dependency information. deps lists the correlated attribute groups of Δ
// in the order their joint pdfs will be supplied at insert; uncertain
// columns not mentioned get singleton sets automatically (§II-A). The
// registry may be shared across tables; pass nil for a fresh one.
func NewTable(name string, schema *Schema, deps [][]string, reg *Registry) (*Table, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	t := &Table{Name: name, schema: schema, reg: reg, trackHistory: true, tid: newTableID()}
	t.ids = make([]AttrID, schema.Len())
	for i := range t.ids {
		t.ids[i] = newAttrID()
	}
	seen := map[string]bool{}
	for _, set := range deps {
		if len(set) == 0 {
			return nil, fmt.Errorf("core: empty dependency set")
		}
		ds := &depSet{}
		for _, name := range set {
			col, ok := schema.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("core: dependency set references unknown column %q", name)
			}
			if !col.Uncertain {
				return nil, fmt.Errorf("core: dependency set references certain column %q", name)
			}
			if seen[name] {
				return nil, fmt.Errorf("core: column %q appears in two dependency sets", name)
			}
			seen[name] = true
			ds.ids = append(ds.ids, t.ids[schema.Index(name)])
			ds.names = append(ds.names, name)
			ds.types = append(ds.types, col.Type)
		}
		t.deps = append(t.deps, ds)
	}
	// Singleton sets for unmentioned uncertain columns.
	for _, c := range schema.Columns() {
		if c.Uncertain && !seen[c.Name] {
			t.deps = append(t.deps, &depSet{
				ids:   []AttrID{t.ids[schema.Index(c.Name)]},
				names: []string{c.Name},
				types: []AttrType{c.Type},
			})
		}
	}
	return t, nil
}

// MustTable is NewTable that panics on error.
func MustTable(name string, schema *Schema, deps [][]string, reg *Registry) *Table {
	t, err := NewTable(name, schema, deps, reg)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table's visible schema Σ.
func (t *Table) Schema() *Schema { return t.schema }

// Registry returns the base-pdf registry the table shares with its
// derivations.
func (t *Table) Registry() *Registry { return t.reg }

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.tuples) }

// Tuples returns the table's tuples. The returned slice and its contents
// must not be modified.
func (t *Table) Tuples() []*Tuple { return t.tuples }

// TupleCost estimates the in-memory bytes one tuple of this table costs:
// struct headers, the certain-value slice, and one pdf node per dependency
// set. It is an accounting estimate for the govern budgets — deliberately
// coarse (pdf parameter blocks vary widely) but stable, so budget checks
// stay deterministic across runs.
func (t *Table) TupleCost() int64 {
	return 96 + 48*int64(t.schema.Len()+len(t.deps))
}

// MemEstimate returns the accounting estimate for the table's tuples —
// the value a snapshot clone or join build side charges against a budget.
func (t *Table) MemEstimate() int64 {
	return int64(len(t.tuples)) * t.TupleCost()
}

// Freeze returns an immutable copy-on-write snapshot of the table. The
// snapshot shares the current tuple pointers (capped so no append can leak
// into it) and pins every base pdf its tuples derive from with an extra
// registry reference, so concurrent Deletes on the live table cannot free a
// record a snapshot reader still needs. Callers must pair every Freeze with
// exactly one ReleaseFrozen once no reader uses the snapshot. Delete
// compacts into fresh slices (never in place) to keep frozen views intact.
func (t *Table) Freeze() *Table {
	c := *t
	c.tuples = t.tuples[:len(t.tuples):len(t.tuples)]
	c.reg.retainTuples(c.tuples)
	return &c
}

// ReleaseFrozen drops the registry references a Freeze took. Call it on the
// frozen table exactly once, after the last reader is done.
func (t *Table) ReleaseFrozen() { t.reg.releaseTuples(t.tuples) }

// CloneInto returns a mutable copy of the table bound to reg — a clone
// obtained from Registry.Clone of this table's registry. The copy owns a
// fresh tuple slice, so Inserts and Deletes on it (which maintain refcounts
// in reg, not the original registry) never disturb the original table. It
// is the building block of transaction overlays.
func (t *Table) CloneInto(reg *Registry) *Table {
	c := *t
	c.reg = reg
	c.tuples = append([]*Tuple(nil), t.tuples...)
	// A fresh identity: the clone mutates independently of the original, so
	// sharing (tid, ver) cache keys would let one table's encodings serve
	// the other's diverged state.
	c.tid = newTableID()
	c.ver = 0
	return &c
}

// SetTrackHistory toggles history (Λ) maintenance for subsequently derived
// tables. With tracking off, products of dependent pdfs are incorrectly
// treated as independent — the baseline the paper measures overhead against
// in Fig. 6. New tables default to tracking on.
func (t *Table) SetTrackHistory(on bool) { t.trackHistory = on }

// TrackHistory reports whether history maintenance is enabled.
func (t *Table) TrackHistory() bool { return t.trackHistory }

// SetParallelism sets the degree of parallelism for the table's operators:
// 0 (the default) means one worker per logical CPU, 1 forces sequential
// execution. Derived tables inherit the setting. Results are identical at
// every setting; only wall-clock time changes.
func (t *Table) SetParallelism(n int) { t.par = n }

// Parallelism reports the table's degree-of-parallelism setting (0 =
// hardware default).
func (t *Table) Parallelism() int { return t.par }

// WithParallelism returns a view of the table whose operators run at the
// given degree of parallelism. The view shares the receiver's tuples and
// registry — it is a cheap per-query wrapper, not a copy — so it must not
// outlive base-table mutations the caller isn't serialized against.
func (t *Table) WithParallelism(n int) *Table {
	if n == t.par {
		return t
	}
	c := *t
	c.par = n
	return &c
}

// DepSets returns the dependency information Δ as attribute-name groups,
// including phantom attributes.
func (t *Table) DepSets() [][]string {
	out := make([][]string, len(t.deps))
	for i, d := range t.deps {
		out[i] = append([]string(nil), d.names...)
	}
	return out
}

// PhantomAttrs returns the names of attributes kept in Δ but not visible in
// Σ (the phantom attributes of §II-A/§III-B).
func (t *Table) PhantomAttrs() []string {
	var out []string
	for _, d := range t.deps {
		for i, id := range d.ids {
			if !t.visibleID(id) {
				out = append(out, d.names[i])
			}
		}
	}
	return out
}

func (t *Table) visibleID(id AttrID) bool {
	for _, v := range t.ids {
		if v == id {
			return true
		}
	}
	return false
}

// idOf returns the AttrID of a visible column, or 0.
func (t *Table) idOf(name string) AttrID {
	i := t.schema.Index(name)
	if i < 0 {
		return 0
	}
	return t.ids[i]
}

// depOf returns the index of the dependency set containing the attribute
// id, or -1 (certain attributes belong to no set).
func (t *Table) depOf(id AttrID) int {
	for i, d := range t.deps {
		if d.dimOf(id) >= 0 {
			return i
		}
	}
	return -1
}

// PDF assigns a joint distribution to one dependency set at insert time.
// Attrs must list the set's attributes in the declared order.
type PDF struct {
	Attrs []string
	Dist  dist.Dist
}

// Row is the insert payload: values for the certain columns and one PDF per
// dependency set. Certain columns may be omitted (NULL).
type Row struct {
	Values map[string]Value
	PDFs   []PDF
}

// Insert adds a probabilistic tuple. Each dependency set must be covered by
// exactly one PDF whose attribute list matches the declared order and whose
// dimensionality matches; partial pdfs (mass < 1) are allowed and mean the
// tuple itself is uncertain (§II-B). The pdf is registered as a base pdf
// and becomes its own ancestor (Definition 2).
func (t *Table) Insert(row Row) error {
	tup := &Tuple{certain: make([]Value, t.schema.Len()), nodes: make([]*PDFNode, len(t.deps))}
	for name, v := range row.Values {
		col, ok := t.schema.Lookup(name)
		if !ok {
			return fmt.Errorf("core: insert into %s: unknown column %q", t.Name, name)
		}
		if col.Uncertain {
			return fmt.Errorf("core: insert into %s: column %q is uncertain; supply a PDF", t.Name, name)
		}
		tup.certain[t.schema.Index(name)] = v
	}
	for _, p := range row.PDFs {
		di := t.matchDepSet(p.Attrs)
		if di < 0 {
			return fmt.Errorf("core: insert into %s: %v does not match a dependency set (Δ = %v)", t.Name, p.Attrs, t.DepSets())
		}
		if tup.nodes[di] != nil {
			return fmt.Errorf("core: insert into %s: dependency set %v assigned twice", t.Name, p.Attrs)
		}
		if p.Dist == nil {
			return fmt.Errorf("core: insert into %s: nil distribution for %v", t.Name, p.Attrs)
		}
		if p.Dist.Dim() != len(t.deps[di].ids) {
			return fmt.Errorf("core: insert into %s: %v needs %d dims, distribution has %d",
				t.Name, p.Attrs, len(t.deps[di].ids), p.Dist.Dim())
		}
		id := t.reg.register(t.deps[di].ids, p.Dist)
		vars := make([]varRef, p.Dist.Dim())
		for dim := range vars {
			vars[dim] = varRef{base: id, dim: dim}
		}
		tup.nodes[di] = &PDFNode{Dist: p.Dist, Anc: newAncestorSet(id), vars: vars, self: id, pristine: true}
	}
	for di, n := range tup.nodes {
		if n == nil {
			return fmt.Errorf("core: insert into %s: dependency set %v not assigned", t.Name, t.deps[di].names)
		}
	}
	t.tuples = append(t.tuples, tup)
	t.bumpVersion()
	return nil
}

// matchDepSet returns the index of the dependency set whose names equal
// attrs in order, or -1.
func (t *Table) matchDepSet(attrs []string) int {
	for i, d := range t.deps {
		if len(d.names) != len(attrs) {
			continue
		}
		match := true
		for j := range attrs {
			if d.names[j] != attrs[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// Value returns the certain value of the named column in the tuple, with
// ok=false when the column is uncertain or unknown.
func (t *Table) Value(tup *Tuple, name string) (Value, bool) {
	i := t.schema.Index(name)
	if i < 0 || t.schema.Columns()[i].Uncertain {
		return Null, false
	}
	return tup.certain[i], true
}

// DistOf returns the marginal distribution of the named uncertain column in
// the tuple. The marginal of a partial pdf keeps the tuple's existence
// probability (mass).
func (t *Table) DistOf(tup *Tuple, name string) (dist.Dist, error) {
	id := t.idOf(name)
	if id == 0 {
		return nil, fmt.Errorf("core: unknown column %q", name)
	}
	di := t.depOf(id)
	if di < 0 {
		return nil, fmt.Errorf("core: column %q is certain", name)
	}
	node := tup.nodes[di]
	dim := t.deps[di].dimOf(id)
	if node.Dist.Dim() == 1 {
		return node.Dist, nil
	}
	return node.Dist.Marginal([]int{dim}), nil
}

// NodeOf returns the PDFNode holding the named uncertain column's
// dependency set in the tuple.
func (t *Table) NodeOf(tup *Tuple, name string) (*PDFNode, error) {
	id := t.idOf(name)
	if id == 0 {
		return nil, fmt.Errorf("core: unknown column %q", name)
	}
	di := t.depOf(id)
	if di < 0 {
		return nil, fmt.Errorf("core: column %q is certain", name)
	}
	return tup.nodes[di], nil
}

// DepDist returns the pdf of dependency set i (indexing DepSets()) in the
// tuple, including phantom dimensions.
func (t *Table) DepDist(tup *Tuple, i int) dist.Dist { return tup.nodes[i].Dist }

// ExistenceProb returns the probability that the tuple exists: the product
// of its dependency sets' masses (partial pdfs, §II-B). A freshly inserted
// tuple with complete pdfs has existence probability 1.
func (t *Table) ExistenceProb(tup *Tuple) float64 {
	p := 1.0
	for _, n := range tup.nodes {
		p *= t.nodeMass(n)
	}
	return p
}

// nodeMass returns n.Dist.Mass(), memoized through the registry's mass
// cache when the node is pristine — i.e. its distribution is exactly the
// registered base pdf, so the node's base ID is a stable identity for the
// float. Floored/derived nodes are evaluated directly: their distribution
// is unique to the derivation and would never repeat a key.
func (t *Table) nodeMass(n *PDFNode) float64 {
	if n.self == 0 || !n.pristine {
		return n.Dist.Mass()
	}
	key := exec.MassKey{ID: uint64(n.self), Dim: -1, Kind: exec.EvalMass}
	if v, ok := t.reg.mass.Get(key); ok {
		return v
	}
	v := n.Dist.Mass()
	t.reg.mass.Put(key, v)
	return v
}

// shallowDerived returns a new empty table sharing schema identity,
// registry, and history setting — the starting point of every operator.
func (t *Table) shallowDerived(name string) *Table {
	d := &Table{
		Name:         name,
		schema:       t.schema,
		ids:          t.ids,
		reg:          t.reg,
		trackHistory: t.trackHistory,
		par:          t.par,
	}
	d.deps = make([]*depSet, len(t.deps))
	copy(d.deps, t.deps)
	return d
}

// retainTuple bumps registry references for all ancestors of all nodes, for
// a tuple being added to a derived table.
func (t *Table) retainTuple(tup *Tuple) {
	if !t.trackHistory {
		return
	}
	for _, n := range tup.nodes {
		t.reg.retain(n.Anc)
	}
}

// Restrict returns a derived table holding exactly the given tuples, which
// must belong to the receiver and be listed in the receiver's tuple order.
// It is the index-access-path entry point: a planner that has identified a
// candidate subset via an index materializes it here, then applies the
// residual predicate with the ordinary operators — producing byte-identical
// results to a full scan because tuples, histories, and order are shared.
func (t *Table) Restrict(name string, tups []*Tuple) *Table {
	out := t.shallowDerived(name)
	for _, tup := range tups {
		out.tuples = append(out.tuples, tup)
		out.retainTuple(tup)
	}
	return out
}

// Render formats the table for display: visible columns plus the marginal
// pdf of each uncertain column, one line per tuple.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", t.Name, t.schema.String())
	if ph := t.PhantomAttrs(); len(ph) > 0 {
		fmt.Fprintf(&b, " phantom%v", ph)
	}
	b.WriteByte('\n')
	for _, tup := range t.tuples {
		parts := make([]string, 0, t.schema.Len()+1)
		for _, c := range t.schema.Columns() {
			if c.Uncertain {
				d, err := t.DistOf(tup, c.Name)
				if err != nil {
					parts = append(parts, "?")
					continue
				}
				parts = append(parts, fmt.Sprintf("%s=%s", c.Name, d.String()))
			} else {
				v, _ := t.Value(tup, c.Name)
				parts = append(parts, fmt.Sprintf("%s=%s", c.Name, v.Render()))
			}
		}
		if p := t.ExistenceProb(tup); p < 1 {
			parts = append(parts, fmt.Sprintf("Pr(exists)=%.4g", p))
		}
		fmt.Fprintf(&b, "  [%s]\n", strings.Join(parts, ", "))
	}
	return b.String()
}
