// Package core implements the probabilistic data model of "Database Support
// for Probabilistic Attributes and Tuples" (ICDE 2008): probabilistic
// schemas (Σ, Δ), partial pdfs, history (Λ), and the relational operators —
// selection, projection, cross product, join, and probability-value
// (threshold) selection — that are closed under possible worlds semantics.
//
// A Table has certain and uncertain columns. Uncertain columns are grouped
// into dependency sets (Δ); each tuple carries one possibly-joint,
// possibly-partial pdf per dependency set. Every pdf tracks the base-table
// pdfs it derives from (its ancestors); operations that would multiply
// historically dependent pdfs reconstruct the joint from the common
// ancestors instead of assuming independence — the mechanism that makes the
// Fig. 3 join example come out right.
package core

import (
	"fmt"
	"math"
	"strconv"
)

// AttrType is the declared type of a column.
type AttrType int

// Column types. Uncertain columns must be numeric (IntType or FloatType):
// their domains embed into the real line the pdf layer works over.
// Categorical uncertainty is modeled by dictionary-encoding strings to
// integers (see examples/cleansing).
const (
	IntType AttrType = iota
	FloatType
	StringType
	BoolType
)

// String returns the SQL-ish name of the type.
func (t AttrType) String() string {
	switch t {
	case IntType:
		return "INT"
	case FloatType:
		return "FLOAT"
	case StringType:
		return "TEXT"
	case BoolType:
		return "BOOL"
	}
	return fmt.Sprintf("AttrType(%d)", int(t))
}

// Numeric reports whether the type embeds into the real line.
func (t AttrType) Numeric() bool { return t == IntType || t == FloatType }

// ValueKind discriminates the variants of Value.
type ValueKind int

// Value kinds. NullValue is SQL NULL: an unknown attribute value whose
// tuple still certainly exists — the paper's Table IV contrasts this with
// partial pdfs, where missing mass means the whole tuple may not exist.
const (
	NullValue ValueKind = iota
	IntValue
	FloatValue
	StringValue
	BoolValue
)

// Value is a certain (precise) attribute value.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
	B    bool
}

// Null is the SQL NULL value.
var Null = Value{Kind: NullValue}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: IntValue, I: v} }

// Float returns a floating point value.
func Float(v float64) Value { return Value{Kind: FloatValue, F: v} }

// String returns a string value. The name collides with fmt.Stringer
// convention deliberately not at the method level: Value's Stringer is
// Render.
func Str(v string) Value { return Value{Kind: StringValue, S: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{Kind: BoolValue, B: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == NullValue }

// AsFloat converts a numeric value to float64 for pdf-domain arithmetic.
// It returns false for NULL and non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case IntValue:
		return float64(v.I), true
	case FloatValue:
		return v.F, true
	default:
		return 0, false
	}
}

// Equal reports deep equality of two values (NULL equals nothing, matching
// SQL three-valued logic collapsed to false).
func (v Value) Equal(o Value) bool {
	if v.Kind == NullValue || o.Kind == NullValue {
		return false
	}
	if fa, ok := v.AsFloat(); ok {
		if fb, okb := o.AsFloat(); okb {
			return fa == fb
		}
		return false
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case StringValue:
		return v.S == o.S
	case BoolValue:
		return v.B == o.B
	}
	return false
}

// Compare returns -1, 0, or +1 ordering v against o, and false when the
// values are incomparable (NULLs or mixed non-numeric kinds).
func (v Value) Compare(o Value) (int, bool) {
	if v.Kind == NullValue || o.Kind == NullValue {
		return 0, false
	}
	if fa, ok := v.AsFloat(); ok {
		fb, okb := o.AsFloat()
		if !okb {
			return 0, false
		}
		switch {
		case fa < fb:
			return -1, true
		case fa > fb:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Kind == StringValue && o.Kind == StringValue {
		switch {
		case v.S < o.S:
			return -1, true
		case v.S > o.S:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Kind == BoolValue && o.Kind == BoolValue {
		a, b := 0, 0
		if v.B {
			a = 1
		}
		if o.B {
			b = 1
		}
		return a - b, true
	}
	return 0, false
}

// Render formats the value for display.
func (v Value) Render() string {
	switch v.Kind {
	case NullValue:
		return "NULL"
	case IntValue:
		return strconv.FormatInt(v.I, 10)
	case FloatValue:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case StringValue:
		return strconv.Quote(v.S)
	case BoolValue:
		return strconv.FormatBool(v.B)
	}
	return "?"
}

// valueFromFloat converts a pdf-domain float back to a Value of the given
// column type (used when a merged certain attribute is reported).
func valueFromFloat(f float64, t AttrType) Value {
	if t == IntType && f == math.Trunc(f) {
		return Int(int64(f))
	}
	return Float(f)
}
