package core

import (
	"fmt"

	"probdb/internal/dist"
)

// Alternative is one row-level alternative of an x-tuple: concrete values
// for every uncertain column, with a probability.
type Alternative struct {
	Values map[string]float64
	Prob   float64
}

// InsertAlternatives inserts an x-tuple: a tuple whose uncertain attributes
// jointly take one of the listed alternatives (mutually exclusive), the
// standard tuple-uncertainty idiom of the models the paper generalizes
// ("multiple tuples can have constraints such as mutual exclusion among
// them", §I). It requires the table's uncertain columns to form a single
// dependency set covering all of them — the Δ = {T} extreme of §II-A —
// and builds the joint Discrete pdf from the alternatives. Probabilities
// may sum below 1: the deficit is maybe-ness of the whole tuple.
func (t *Table) InsertAlternatives(certain map[string]Value, alts []Alternative) error {
	var set []string
	if len(t.deps) != 1 {
		return fmt.Errorf("core: InsertAlternatives requires exactly one dependency set covering all uncertain columns (Δ = %v)", t.DepSets())
	}
	set = t.deps[0].names
	pts := make([]dist.Point, len(alts))
	for i, a := range alts {
		x := make([]float64, len(set))
		for j, name := range set {
			v, ok := a.Values[name]
			if !ok {
				return fmt.Errorf("core: alternative %d misses a value for %q", i, name)
			}
			x[j] = v
		}
		if len(a.Values) != len(set) {
			return fmt.Errorf("core: alternative %d has values for unknown attributes", i)
		}
		pts[i] = dist.Point{X: x, P: a.Prob}
	}
	var joint dist.Dist
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: invalid alternatives: %v", r)
			}
		}()
		joint = dist.NewDiscreteJoint(len(set), pts)
		return nil
	}()
	if err != nil {
		return err
	}
	return t.Insert(Row{Values: certain, PDFs: []PDF{{Attrs: set, Dist: joint}}})
}
