package dist

import (
	"math"

	"probdb/internal/region"
)

// Affine returns the distribution of a·X + b for a 1-D distribution X.
// Symbolic families closed under affine maps stay symbolic (Gaussian,
// Uniform; Exponential and Triangular for a > 0 shifts/scales into
// Triangular/Uniform-like shapes only via Grid, so they collapse); Discrete
// and Grid transform exactly. It panics unless d is one-dimensional and
// a != 0.
func Affine(d Dist, a, b float64) Dist {
	if d.Dim() != 1 {
		panic("dist: Affine requires a one-dimensional distribution")
	}
	if a == 0 {
		panic("dist: Affine requires a != 0 (use Unit for constants)")
	}
	switch v := d.(type) {
	case symCont:
		if out, ok := affineModel(v.m, a, b); ok {
			return symCont{out}
		}
	case Floored:
		if out, ok := affineModel(v.m, a, b); ok {
			return newFloored(out, affineSet(v.keep, a, b))
		}
	case symDisc:
		return affineDiscrete(v.backing, a, b)
	case *Discrete:
		return affineDiscrete(v, a, b)
	case *Grid:
		if v.Dim() == 1 {
			return affineGrid(v, a, b)
		}
	}
	// Generic fallback: collapse, then transform the generic form.
	c := Collapse(d, DefaultOptions)
	switch v := c.(type) {
	case *Discrete:
		return affineDiscrete(v, a, b)
	case *Grid:
		return affineGrid(v, a, b)
	}
	panic("dist: Affine fallback failed") // unreachable: Collapse returns Discrete or Grid
}

// affineModel maps closed-form families through x -> a·x + b where the
// family is closed under the map.
func affineModel(m contModel, a, b float64) (contModel, bool) {
	switch v := m.(type) {
	case Gaussian:
		return Gaussian{Mu: a*v.Mu + b, Sigma: math.Abs(a) * v.Sigma}, true
	case Uniform:
		lo, hi := a*v.Lo+b, a*v.Hi+b
		if lo > hi {
			lo, hi = hi, lo
		}
		return Uniform{Lo: lo, Hi: hi}, true
	case Triangular:
		lo, mode, hi := a*v.Lo+b, a*v.Mode+b, a*v.Hi+b
		if lo > hi {
			lo, hi = hi, lo
		}
		return Triangular{Lo: lo, Mode: mode, Hi: hi}, true
	case Exponential:
		if a > 0 && b == 0 {
			return Exponential{Rate: v.Rate / a}, true
		}
	}
	return nil, false
}

func affineSet(s region.Set, a, b float64) region.Set {
	ivs := s.Intervals()
	out := make([]region.Interval, len(ivs))
	for i, iv := range ivs {
		lo, hi := a*iv.Lo+b, a*iv.Hi+b
		loOpen, hiOpen := iv.LoOpen, iv.HiOpen
		if a < 0 {
			lo, hi = hi, lo
			loOpen, hiOpen = hiOpen, loOpen
		}
		out[i] = region.Interval{Lo: lo, Hi: hi, LoOpen: loOpen, HiOpen: hiOpen}
	}
	return region.NewSet(out...)
}

func affineDiscrete(d *Discrete, a, b float64) *Discrete {
	pts := make([]Point, len(d.Points()))
	for i, p := range d.Points() {
		pts[i] = Point{X: []float64{a*p.X[0] + b}, P: p.P}
	}
	return NewDiscreteJoint(1, pts)
}

func affineGrid(g *Grid, a, b float64) Dist {
	ax := g.Axes()[0]
	if ax.Kind == KindDiscrete {
		pts := make([]Point, 0, ax.Cells())
		for i, v := range ax.Values {
			if w := g.Weights()[i]; w > 0 {
				pts = append(pts, Point{X: []float64{a*v + b}, P: w})
			}
		}
		return NewDiscreteJoint(1, pts)
	}
	n := len(ax.Edges)
	edges := make([]float64, n)
	w := make([]float64, len(g.Weights()))
	if a > 0 {
		for i, e := range ax.Edges {
			edges[i] = a*e + b
		}
		copy(w, g.Weights())
	} else {
		for i, e := range ax.Edges {
			edges[n-1-i] = a*e + b
		}
		for i, v := range g.Weights() {
			w[len(w)-1-i] = v
		}
	}
	return NewGrid([]Axis{{Kind: KindContinuous, Edges: edges}}, w)
}

// ConvolveDiscrete returns the exact distribution of X + Y for independent
// 1-D discrete distributions: the building block of exact probabilistic
// aggregation. The result has at most |X|·|Y| points (duplicate sums
// merge). Partial masses multiply: the sum "exists" only when both sides
// do.
func ConvolveDiscrete(a, b *Discrete) *Discrete {
	if a.Dim() != 1 || b.Dim() != 1 {
		panic("dist: ConvolveDiscrete requires one-dimensional distributions")
	}
	pts := make([]Point, 0, len(a.Points())*len(b.Points()))
	for _, pa := range a.Points() {
		for _, pb := range b.Points() {
			pts = append(pts, Point{X: []float64{pa.X[0] + pb.X[0]}, P: pa.P * pb.P})
		}
	}
	return NewDiscreteJoint(1, pts)
}
