package dist

import (
	"testing"

	"probdb/internal/region"
)

func TestAffineGaussian(t *testing.T) {
	g := NewGaussian(10, 2)
	a := Affine(g, 3, -5)
	if !almostEqual(a.Mean(0), 25, 1e-12) || !almostEqual(a.Variance(0), 36, 1e-12) {
		t.Errorf("moments %v/%v", a.Mean(0), a.Variance(0))
	}
	if _, ok := a.(symCont); !ok {
		t.Errorf("gaussian affine should stay symbolic, got %T", a)
	}
	// Negative scale flips, Gaussian stays Gaussian.
	n := Affine(g, -1, 0)
	if !almostEqual(n.Mean(0), -10, 1e-12) || !almostEqual(n.Variance(0), 4, 1e-12) {
		t.Errorf("negated moments %v/%v", n.Mean(0), n.Variance(0))
	}
}

func TestAffineUniformAndTriangular(t *testing.T) {
	u := Affine(NewUniform(0, 1), -2, 4) // maps to [2, 4]
	sup := u.Support()[0]
	if sup.Lo != 2 || sup.Hi != 4 {
		t.Errorf("support = %v", sup)
	}
	tr := Affine(NewTriangular(0, 1, 2), 2, 1)
	if !almostEqual(tr.Mean(0), 3, 1e-12) {
		t.Errorf("triangular mean = %v", tr.Mean(0))
	}
}

func TestAffineExponentialScale(t *testing.T) {
	e := Affine(NewExponential(2), 3, 0)
	if !almostEqual(e.Mean(0), 1.5, 1e-12) {
		t.Errorf("mean = %v", e.Mean(0))
	}
	if _, ok := e.(symCont); !ok {
		t.Errorf("positive scale should stay symbolic, got %T", e)
	}
	// A shift leaves the exponential family: generic fallback.
	sh := Affine(NewExponential(2), 1, 5)
	if !almostEqual(sh.Mean(0), 5.5, 0.05) {
		t.Errorf("shifted mean = %v", sh.Mean(0))
	}
}

func TestAffineDiscreteExact(t *testing.T) {
	d := Affine(NewDiscrete([]float64{1, 2}, []float64{0.3, 0.7}), -2, 10)
	dd := d.(*Discrete)
	if got := dd.At([]float64{8}); !almostEqual(got, 0.3, 1e-15) {
		t.Errorf("P(8) = %v", got)
	}
	if got := dd.At([]float64{6}); !almostEqual(got, 0.7, 1e-15) {
		t.Errorf("P(6) = %v", got)
	}
}

func TestAffineFlooredKeepsRegions(t *testing.T) {
	f := NewGaussian(0, 1).Floor(0, region.Compare(region.LT, 0))
	a := Affine(f, -1, 0) // reflect: keep region becomes x > 0
	fl, ok := a.(Floored)
	if !ok {
		t.Fatalf("affine floored should stay floored, got %T", a)
	}
	if !almostEqual(fl.Mass(), 0.5, 1e-12) {
		t.Errorf("mass = %v", fl.Mass())
	}
	if fl.At([]float64{-1}) != 0 {
		t.Error("reflected floor should zero the negative side")
	}
	if fl.At([]float64{1}) == 0 {
		t.Error("reflected floor should keep the positive side")
	}
}

func TestAffineGridFlip(t *testing.T) {
	h := uniformHist(0, 10, 5)
	a := Affine(h, -1, 10) // maps [0,10] onto [0,10] reversed
	g := a.(*Grid)
	if !almostEqual(g.Mass(), 1, 1e-12) {
		t.Errorf("mass = %v", g.Mass())
	}
	if got := MassInterval(a, 0, 5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("half mass = %v", got)
	}
	// Discrete grid axis.
	dg := NewGrid([]Axis{{Kind: KindDiscrete, Values: []float64{1, 2}}}, []float64{0.4, 0.6})
	ad := Affine(dg, 2, 0).(*Discrete)
	if got := ad.At([]float64{4}); !almostEqual(got, 0.6, 1e-12) {
		t.Errorf("P(4) = %v", got)
	}
}

func TestAffinePanics(t *testing.T) {
	for i, f := range []func(){
		func() { Affine(ProductOf(NewGaussian(0, 1), NewGaussian(0, 1)), 1, 0) },
		func() { Affine(NewGaussian(0, 1), 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestConvolveDiscrete(t *testing.T) {
	a := NewDiscrete([]float64{0, 1}, []float64{0.5, 0.5})
	b := NewDiscrete([]float64{0, 1}, []float64{0.5, 0.5})
	s := ConvolveDiscrete(a, b)
	want := map[float64]float64{0: 0.25, 1: 0.5, 2: 0.25}
	for v, p := range want {
		if got := s.At([]float64{v}); !almostEqual(got, p, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", v, got, p)
		}
	}
	// Partial masses multiply.
	c := NewDiscrete([]float64{5}, []float64{0.5})
	s2 := ConvolveDiscrete(a, c)
	if !almostEqual(s2.Mass(), 0.5, 1e-12) {
		t.Errorf("partial convolution mass = %v", s2.Mass())
	}
}
