package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"probdb/internal/region"
)

// Wire tags for the on-disk encoding. The compactness differences between
// representations — a symbolic Gaussian is 17 bytes, a 25-point discrete
// sampling over 400 — are exactly what drives the I/O separation the paper
// measures in Fig. 5.
const (
	tagGaussian byte = iota + 1
	tagUniform
	tagExponential
	tagTriangular
	tagBernoulli
	tagBinomial
	tagPoisson
	tagGeometric
	tagDiscrete
	tagGrid
	tagFloored
	tagProduct
	tagMultiGaussian
)

// Encode serializes d into a compact binary form readable by Decode.
// Symbolic distributions are stored symbolically (parameters only), floored
// ones as base parameters plus kept regions — the paper's "[Gaus, Floor{…}]"
// representation on disk.
func Encode(d Dist) []byte {
	return AppendEncode(nil, d)
}

// AppendEncode appends the encoding of d to buf and returns the extended
// slice. It panics on distribution types it does not know (everything in
// this package is supported).
func AppendEncode(buf []byte, d Dist) []byte {
	switch v := d.(type) {
	case symCont:
		return appendContModel(buf, v.m)
	case symDisc:
		return appendDiscModel(buf, v.m)
	case Floored:
		buf = append(buf, tagFloored)
		buf = appendContModel(buf, v.m)
		return appendRegionSet(buf, v.keep)
	case *Discrete:
		buf = append(buf, tagDiscrete)
		buf = binary.AppendUvarint(buf, uint64(v.dim))
		buf = binary.AppendUvarint(buf, uint64(len(v.pts)))
		for _, p := range v.pts {
			for _, x := range p.X {
				buf = appendFloat(buf, x)
			}
			buf = appendFloat(buf, p.P)
		}
		return buf
	case *Grid:
		buf = append(buf, tagGrid)
		buf = binary.AppendUvarint(buf, uint64(len(v.axes)))
		for _, a := range v.axes {
			if a.Kind == KindContinuous {
				buf = append(buf, 0)
				buf = binary.AppendUvarint(buf, uint64(len(a.Edges)))
				for _, e := range a.Edges {
					buf = appendFloat(buf, e)
				}
			} else {
				buf = append(buf, 1)
				buf = binary.AppendUvarint(buf, uint64(len(a.Values)))
				for _, e := range a.Values {
					buf = appendFloat(buf, e)
				}
			}
		}
		for _, w := range v.w {
			buf = appendFloat(buf, w)
		}
		return buf
	case *MultiGaussian:
		buf = append(buf, tagMultiGaussian)
		buf = binary.AppendUvarint(buf, uint64(v.Dim()))
		for _, m := range v.mean {
			buf = appendFloat(buf, m)
		}
		for _, row := range v.cov {
			for _, c := range row {
				buf = appendFloat(buf, c)
			}
		}
		return buf
	case *Product:
		buf = append(buf, tagProduct)
		buf = appendFloat(buf, v.scale)
		buf = binary.AppendUvarint(buf, uint64(len(v.factors)))
		for _, f := range v.factors {
			buf = AppendEncode(buf, f)
		}
		return buf
	default:
		panic(fmt.Sprintf("dist: cannot encode %T", d))
	}
}

func appendContModel(buf []byte, m contModel) []byte {
	switch v := m.(type) {
	case Gaussian:
		buf = append(buf, tagGaussian)
		buf = appendFloat(buf, v.Mu)
		return appendFloat(buf, v.Sigma)
	case Uniform:
		buf = append(buf, tagUniform)
		buf = appendFloat(buf, v.Lo)
		return appendFloat(buf, v.Hi)
	case Exponential:
		buf = append(buf, tagExponential)
		return appendFloat(buf, v.Rate)
	case Triangular:
		buf = append(buf, tagTriangular)
		buf = appendFloat(buf, v.Lo)
		buf = appendFloat(buf, v.Mode)
		return appendFloat(buf, v.Hi)
	default:
		panic(fmt.Sprintf("dist: cannot encode continuous model %T", m))
	}
}

func appendDiscModel(buf []byte, m discModel) []byte {
	switch v := m.(type) {
	case Bernoulli:
		buf = append(buf, tagBernoulli)
		return appendFloat(buf, v.P)
	case Binomial:
		buf = append(buf, tagBinomial)
		buf = binary.AppendUvarint(buf, uint64(v.N))
		return appendFloat(buf, v.P)
	case Poisson:
		buf = append(buf, tagPoisson)
		return appendFloat(buf, v.Lambda)
	case Geometric:
		buf = append(buf, tagGeometric)
		return appendFloat(buf, v.P)
	default:
		panic(fmt.Sprintf("dist: cannot encode discrete model %T", m))
	}
}

func appendRegionSet(buf []byte, s region.Set) []byte {
	ivs := s.Intervals()
	buf = binary.AppendUvarint(buf, uint64(len(ivs)))
	for _, iv := range ivs {
		buf = appendFloat(buf, iv.Lo)
		buf = appendFloat(buf, iv.Hi)
		var flags byte
		if iv.LoOpen {
			flags |= 1
		}
		if iv.HiOpen {
			flags |= 2
		}
		buf = append(buf, flags)
	}
	return buf
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// decoder walks an encoded buffer.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) err(format string, args ...any) error {
	return fmt.Errorf("dist: decode at offset %d: %s", d.off, fmt.Sprintf(format, args...))
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, d.err("unexpected end of buffer")
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) float() (float64, error) {
	if d.off+8 > len(d.buf) {
		return 0, d.err("unexpected end of buffer")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, d.err("bad uvarint")
	}
	d.off += n
	return v, nil
}

// Decode deserializes one distribution from buf, returning it and the number
// of bytes consumed.
func Decode(buf []byte) (Dist, int, error) {
	d := &decoder{buf: buf}
	dist, err := d.decode()
	if err != nil {
		return nil, 0, err
	}
	return dist, d.off, nil
}

// maxDecodeCount bounds repeated-element counts so a corrupted length prefix
// cannot trigger an enormous allocation.
const maxDecodeCount = 1 << 26

func (d *decoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxDecodeCount {
		return 0, d.err("count %d exceeds limit", v)
	}
	return int(v), nil
}

func (d *decoder) decode() (Dist, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagGaussian, tagUniform, tagExponential, tagTriangular:
		m, err := d.contModel(tag)
		if err != nil {
			return nil, err
		}
		return symCont{m}, nil
	case tagBernoulli:
		p, err := d.float()
		if err != nil {
			return nil, err
		}
		if !(p >= 0 && p <= 1) {
			return nil, d.err("bernoulli p %v", p)
		}
		return NewBernoulli(p), nil
	case tagBinomial:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxDecodeCount {
			return nil, d.err("binomial n %d exceeds limit", n)
		}
		p, err := d.float()
		if err != nil {
			return nil, err
		}
		if !(p >= 0 && p <= 1) {
			return nil, d.err("binomial p %v", p)
		}
		return NewBinomial(int(n), p), nil
	case tagPoisson:
		l, err := d.float()
		if err != nil {
			return nil, err
		}
		// The enumeration materializes ~lambda points; unbounded lambda from
		// a corrupt payload would overflow the point-count arithmetic.
		if !(l >= 0 && l <= float64(maxDecodeCount)) {
			return nil, d.err("poisson lambda %v", l)
		}
		return NewPoisson(l), nil
	case tagGeometric:
		p, err := d.float()
		if err != nil {
			return nil, err
		}
		// Enumeration needs ~34.5/p points to reach the 1e-15 tail; a
		// denormal p from a corrupt payload would overflow the limit
		// arithmetic (and no encodable Geometric is that small — building
		// one would have required the same impossible enumeration).
		if !(p > 1e-6 && p <= 1) {
			return nil, d.err("geometric p %v", p)
		}
		return NewGeometric(p), nil
	case tagFloored:
		mtag, err := d.byte()
		if err != nil {
			return nil, err
		}
		m, err := d.contModel(mtag)
		if err != nil {
			return nil, err
		}
		keep, err := d.regionSet()
		if err != nil {
			return nil, err
		}
		return newFloored(m, keep), nil
	case tagDiscrete:
		dim, err := d.count()
		if err != nil {
			return nil, err
		}
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		if dim < 1 {
			return nil, d.err("discrete dim %d", dim)
		}
		pts := make([]Point, n)
		var mass float64
		for i := range pts {
			x := make([]float64, dim)
			for j := range x {
				if x[j], err = d.float(); err != nil {
					return nil, err
				}
				if math.IsNaN(x[j]) || math.IsInf(x[j], 0) {
					return nil, d.err("discrete point coordinate %v", x[j])
				}
			}
			p, err := d.float()
			if err != nil {
				return nil, err
			}
			if !(p >= 0 && p <= 1) {
				return nil, d.err("discrete point probability %v", p)
			}
			mass += p
			pts[i] = Point{X: x, P: p}
		}
		// Slightly tighter than the constructor's 1e-9 tolerance so that
		// summation-order differences cannot slip through to its panic.
		if mass > 1+1e-10 {
			return nil, d.err("discrete mass %v exceeds 1", mass)
		}
		return NewDiscreteJoint(dim, pts), nil
	case tagGrid:
		na, err := d.count()
		if err != nil {
			return nil, err
		}
		if na < 1 {
			return nil, d.err("grid axis count %d", na)
		}
		axes := make([]Axis, na)
		cells := 1
		for i := range axes {
			kind, err := d.byte()
			if err != nil {
				return nil, err
			}
			n, err := d.count()
			if err != nil {
				return nil, err
			}
			vals := make([]float64, n)
			for j := range vals {
				if vals[j], err = d.float(); err != nil {
					return nil, err
				}
			}
			if kind == 0 {
				axes[i] = Axis{Kind: KindContinuous, Edges: vals}
			} else {
				axes[i] = Axis{Kind: KindDiscrete, Values: vals}
			}
			if err := axes[i].validate(); err != nil {
				return nil, d.err("%v", err)
			}
			cells *= axes[i].Cells()
			// Checked per axis: a deferred check would let the product
			// overflow int across axes and reach make() negative.
			if cells > maxDecodeCount {
				return nil, d.err("grid cell count %d exceeds limit", cells)
			}
		}
		w := make([]float64, cells)
		var mass float64
		for i := range w {
			if w[i], err = d.float(); err != nil {
				return nil, err
			}
			if !(w[i] >= 0 && w[i] <= 1) {
				return nil, d.err("grid weight %v", w[i])
			}
			mass += w[i]
		}
		if mass > 1+1e-10 {
			return nil, d.err("grid mass %v exceeds 1", mass)
		}
		return NewGrid(axes, w), nil
	case tagMultiGaussian:
		k, err := d.count()
		if err != nil {
			return nil, err
		}
		if k < 1 || k > 64 {
			return nil, d.err("multivariate gaussian dim %d", k)
		}
		mean := make([]float64, k)
		for i := range mean {
			if mean[i], err = d.float(); err != nil {
				return nil, err
			}
		}
		cov := make([][]float64, k)
		for i := range cov {
			cov[i] = make([]float64, k)
			for j := range cov[i] {
				if cov[i][j], err = d.float(); err != nil {
					return nil, err
				}
			}
		}
		mg, err := NewMultiGaussian(mean, cov)
		if err != nil {
			return nil, d.err("%v", err)
		}
		return mg, nil
	case tagProduct:
		scale, err := d.float()
		if err != nil {
			return nil, err
		}
		if !(scale >= 0 && scale <= 1) {
			return nil, d.err("product scale %v", scale)
		}
		n, err := d.count()
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, d.err("product factor count %d", n)
		}
		factors := make([]Dist, n)
		for i := range factors {
			if factors[i], err = d.decode(); err != nil {
				return nil, err
			}
		}
		return newProduct(factors, scale), nil
	default:
		return nil, d.err("unknown tag %d", tag)
	}
}

func (d *decoder) contModel(tag byte) (contModel, error) {
	switch tag {
	case tagGaussian:
		mu, err := d.float()
		if err != nil {
			return nil, err
		}
		sigma, err := d.float()
		if err != nil {
			return nil, err
		}
		if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(mu) || math.IsInf(mu, 0) {
			return nil, d.err("gaussian params %v/%v", mu, sigma)
		}
		return Gaussian{Mu: mu, Sigma: sigma}, nil
	case tagUniform:
		lo, err := d.float()
		if err != nil {
			return nil, err
		}
		hi, err := d.float()
		if err != nil {
			return nil, err
		}
		if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return nil, d.err("uniform bounds %v..%v", lo, hi)
		}
		return Uniform{Lo: lo, Hi: hi}, nil
	case tagExponential:
		rate, err := d.float()
		if err != nil {
			return nil, err
		}
		if !(rate > 0) || math.IsInf(rate, 0) {
			return nil, d.err("exponential rate %v", rate)
		}
		return Exponential{Rate: rate}, nil
	case tagTriangular:
		lo, err := d.float()
		if err != nil {
			return nil, err
		}
		mode, err := d.float()
		if err != nil {
			return nil, err
		}
		hi, err := d.float()
		if err != nil {
			return nil, err
		}
		if !(lo < hi && lo <= mode && mode <= hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return nil, d.err("triangular params %v/%v/%v", lo, mode, hi)
		}
		return Triangular{Lo: lo, Mode: mode, Hi: hi}, nil
	default:
		return nil, d.err("unknown continuous model tag %d", tag)
	}
}

func (d *decoder) regionSet() (region.Set, error) {
	n, err := d.count()
	if err != nil {
		return region.Set{}, err
	}
	ivs := make([]region.Interval, n)
	for i := range ivs {
		lo, err := d.float()
		if err != nil {
			return region.Set{}, err
		}
		hi, err := d.float()
		if err != nil {
			return region.Set{}, err
		}
		flags, err := d.byte()
		if err != nil {
			return region.Set{}, err
		}
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return region.Set{}, d.err("region bounds %v..%v", lo, hi)
		}
		ivs[i] = region.Interval{Lo: lo, Hi: hi, LoOpen: flags&1 != 0, HiOpen: flags&2 != 0}
	}
	return region.NewSet(ivs...), nil
}

// EncodedSize returns the number of bytes Encode(d) produces. It is the
// tuple-size input of the Fig. 5 storage model.
func EncodedSize(d Dist) int { return len(Encode(d)) }
