package dist

import (
	"bytes"
	"math/rand"
	"testing"

	"probdb/internal/region"
)

func roundTrip(t *testing.T, d Dist) Dist {
	t.Helper()
	buf := Encode(d)
	got, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode %v: %v", d, err)
	}
	if n != len(buf) {
		t.Fatalf("decode %v consumed %d of %d bytes", d, n, len(buf))
	}
	return got
}

func TestCodecRoundTripAllTypes(t *testing.T) {
	ds := []Dist{
		NewGaussian(20, 5),
		NewUniform(-1, 3),
		NewExponential(0.25),
		NewTriangular(0, 2, 7),
		NewBernoulli(0.4),
		NewBinomial(12, 0.3),
		NewPoisson(6),
		NewGeometric(0.2),
		NewDiscrete([]float64{0, 1}, []float64{0.1, 0.9}),
		NewDiscreteJoint(2, []Point{{X: []float64{4, 5}, P: 0.9}, {X: []float64{2, 3}, P: 0.1}}),
		uniformHist(0, 10, 5),
		NewGaussian(5, 1).Floor(0, region.Compare(region.LT, 5)),
		NewGaussian(0, 1).Floor(0, region.NewSet(region.Closed(-2, -1), region.Open(1, 2))),
		ProductOf(NewGaussian(0, 1), NewBernoulli(0.5)),
		ProductOf(NewUniform(0, 1).Floor(0, region.Compare(region.GT, 0.5)), NewPoisson(3)),
		MustMultiGaussian([]float64{1, 2}, [][]float64{{2, 0.5}, {0.5, 1}}),
	}
	for _, d := range ds {
		got := roundTrip(t, d)
		if got.Dim() != d.Dim() {
			t.Errorf("%v: dim %d != %d", d, got.Dim(), d.Dim())
			continue
		}
		if !almostEqual(got.Mass(), d.Mass(), 1e-12) {
			t.Errorf("%v: mass %v != %v", d, got.Mass(), d.Mass())
		}
		if got.String() != d.String() {
			t.Errorf("round trip changed rendering: %q != %q", got.String(), d.String())
		}
		// Spot-check density agreement at sampled points.
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 20; i++ {
			x := d.Sample(r)
			if !almostEqual(got.At(x), d.At(x), 1e-12) {
				t.Errorf("%v: At(%v) %v != %v", d, x, got.At(x), d.At(x))
			}
		}
	}
}

func TestCodecGridRoundTripMixed(t *testing.T) {
	axes := []Axis{
		{Kind: KindContinuous, Edges: []float64{0, 1, 2}},
		{Kind: KindDiscrete, Values: []float64{5, 7, 9}},
	}
	g := NewGrid(axes, []float64{0.1, 0.2, 0.05, 0.3, 0.15, 0.2})
	got := roundTrip(t, g).(*Grid)
	if !bytes.Equal(Encode(got), Encode(g)) {
		t.Error("re-encoding is not stable")
	}
}

func TestCodecSizes(t *testing.T) {
	// The Fig. 5 premise: symbolic « histogram « discrete sampling.
	g := NewGaussian(50, 2)
	sym := EncodedSize(g)
	hist := EncodedSize(ToHistogram(g, 5))
	disc := EncodedSize(Discretize(g, 25))
	if sym != 17 {
		t.Errorf("symbolic gaussian size = %d, want 17", sym)
	}
	if !(sym < hist && hist < disc) {
		t.Errorf("size ordering violated: sym=%d hist=%d disc=%d", sym, hist, disc)
	}
	if disc < 4*hist {
		t.Errorf("25-point discrete (%d) should dwarf 5-bin histogram (%d)", disc, hist)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,                           // empty
		{255},                         // unknown tag
		{tagGaussian, 1, 2},           // truncated floats
		{tagDiscrete, 0x80},           // bad uvarint (non-terminating)
		Encode(NewGaussian(0, 1))[:9], // cut in half
	}
	for i, buf := range cases {
		if _, _, err := Decode(buf); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Corrupted parameter: sigma <= 0.
	buf := Encode(NewGaussian(0, 1))
	for i := 9; i < 17; i++ {
		buf[i] = 0
	}
	if _, _, err := Decode(buf); err == nil {
		t.Error("zero sigma should fail validation")
	}
}

func TestDecodeTrailingBytesReported(t *testing.T) {
	buf := append(Encode(NewBernoulli(0.5)), 0xAB, 0xCD)
	_, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf)-2 {
		t.Errorf("consumed %d, want %d", n, len(buf)-2)
	}
}

func TestDecodeHugeCountRejected(t *testing.T) {
	var buf []byte
	buf = append(buf, tagDiscrete)
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F) // dim = huge
	if _, _, err := Decode(buf); err == nil {
		t.Error("huge count should be rejected")
	}
}
