package dist

import (
	"fmt"
	"math"
	"math/rand"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

// contModel is the closed-form core of a 1-D symbolic continuous
// distribution. symCont adapts any contModel to the Dist interface; the
// Floored wrapper reuses the same cdf/quantile machinery for symbolic floors.
type contModel interface {
	pdf(x float64) float64
	cdf(x float64) float64
	quantile(p float64) float64 // p in (0, 1)
	mean() float64
	variance() float64
	support() region.Interval // natural (untruncated) support
	sample(r *rand.Rand) float64
	String() string
}

// symCont is a complete (mass 1) symbolic continuous 1-D distribution.
type symCont struct {
	m contModel
}

var _ Dist = symCont{}

func (s symCont) Dim() int           { return 1 }
func (s symCont) DimKind(i int) Kind { checkDim(i, 1); return KindContinuous }
func (s symCont) Mass() float64      { return 1 }
func (s symCont) At(x []float64) float64 {
	return s.m.pdf(x[0])
}

func (s symCont) MassIn(b region.Box) float64 {
	if len(b) != 1 {
		panic("dist: MassIn box dimensionality mismatch")
	}
	return intervalMassCont(s.m, b[0])
}

// intervalMassCont returns the mass of a continuous model inside iv.
// Endpoint openness is irrelevant for continuous distributions.
func intervalMassCont(m contModel, iv region.Interval) float64 {
	if iv.Empty() {
		return 0
	}
	var lo, hi float64
	if math.IsInf(iv.Lo, -1) {
		lo = 0
	} else {
		lo = m.cdf(iv.Lo)
	}
	if math.IsInf(iv.Hi, 1) {
		hi = 1
	} else {
		hi = m.cdf(iv.Hi)
	}
	return numeric.Clamp01(hi - lo)
}

func (s symCont) MassWhere(pred func([]float64) bool) float64 {
	return Collapse(s, DefaultOptions).MassWhere(pred)
}

func (s symCont) Marginal(keep []int) Dist {
	checkKeep(keep, 1)
	return s
}

func (s symCont) Floor(dim int, keep region.Set) Dist {
	checkDim(dim, 1)
	return newFloored(s.m, keep)
}

func (s symCont) FloorWhere(pred func([]float64) bool) Dist {
	return Collapse(s, DefaultOptions).FloorWhere(pred)
}

func (s symCont) Support() region.Box {
	return region.Box{truncatedSupport(s.m, DefaultOptions.TailEps)}
}

// truncatedSupport clips an unbounded natural support at negligible tail
// mass so that grid collapse has a finite box to work with.
func truncatedSupport(m contModel, tailEps float64) region.Interval {
	iv := m.support()
	if math.IsInf(iv.Lo, -1) {
		iv.Lo = m.quantile(tailEps)
		iv.LoOpen = false
	}
	if math.IsInf(iv.Hi, 1) {
		iv.Hi = m.quantile(1 - tailEps)
		iv.HiOpen = false
	}
	return iv
}

func (s symCont) Mean(dim int) float64     { checkDim(dim, 1); return s.m.mean() }
func (s symCont) Variance(dim int) float64 { checkDim(dim, 1); return s.m.variance() }

func (s symCont) Sample(r *rand.Rand) []float64 {
	return []float64{s.m.sample(r)}
}

func (s symCont) String() string { return s.m.String() }

// Gaussian is the normal distribution N(Mu, Sigma^2). The paper's examples
// write it Gaus(mean, variance); NewGaussian takes the standard deviation
// and NewGaussianVar the variance, matching the paper's notation.
type Gaussian struct {
	Mu, Sigma float64
}

// NewGaussian returns the symbolic normal distribution with mean mu and
// standard deviation sigma. It panics unless sigma > 0.
func NewGaussian(mu, sigma float64) Dist {
	if !(sigma > 0) {
		panic("dist: NewGaussian requires sigma > 0")
	}
	return symCont{Gaussian{Mu: mu, Sigma: sigma}}
}

// NewGaussianVar returns N(mu, variance), the paper's Gaus(mu, variance).
func NewGaussianVar(mu, variance float64) Dist {
	if !(variance > 0) {
		panic("dist: NewGaussianVar requires variance > 0")
	}
	return NewGaussian(mu, math.Sqrt(variance))
}

func (g Gaussian) pdf(x float64) float64      { return numeric.NormalPDF(x, g.Mu, g.Sigma) }
func (g Gaussian) cdf(x float64) float64      { return numeric.NormalCDF(x, g.Mu, g.Sigma) }
func (g Gaussian) quantile(p float64) float64 { return numeric.NormalQuantile(p, g.Mu, g.Sigma) }
func (g Gaussian) mean() float64              { return g.Mu }
func (g Gaussian) variance() float64          { return g.Sigma * g.Sigma }
func (g Gaussian) support() region.Interval {
	return region.Interval{Lo: math.Inf(-1), LoOpen: true, Hi: math.Inf(1), HiOpen: true}
}
func (g Gaussian) sample(r *rand.Rand) float64 { return r.NormFloat64()*g.Sigma + g.Mu }
func (g Gaussian) String() string {
	// %.12g hides the last-ulp noise of sqrt(variance)² round trips, so
	// NewGaussianVar(20, 5) prints Gaus(20,5) like the paper's Table I.
	return fmt.Sprintf("Gaus(%.12g,%.12g)", g.Mu, g.Sigma*g.Sigma)
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns the uniform distribution on [lo, hi]. It panics unless
// lo < hi.
func NewUniform(lo, hi float64) Dist {
	if !(lo < hi) {
		panic("dist: NewUniform requires lo < hi")
	}
	return symCont{Uniform{Lo: lo, Hi: hi}}
}

func (u Uniform) pdf(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

func (u Uniform) cdf(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

func (u Uniform) quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }
func (u Uniform) mean() float64              { return (u.Lo + u.Hi) / 2 }
func (u Uniform) variance() float64          { d := u.Hi - u.Lo; return d * d / 12 }
func (u Uniform) support() region.Interval   { return region.Closed(u.Lo, u.Hi) }
func (u Uniform) sample(r *rand.Rand) float64 {
	return u.Lo + r.Float64()*(u.Hi-u.Lo)
}
func (u Uniform) String() string { return fmt.Sprintf("Unif(%g,%g)", u.Lo, u.Hi) }

// Exponential is the exponential distribution with the given Rate (support
// [0, +inf)).
type Exponential struct {
	Rate float64
}

// NewExponential returns the exponential distribution with rate lambda. It
// panics unless lambda > 0.
func NewExponential(lambda float64) Dist {
	if !(lambda > 0) {
		panic("dist: NewExponential requires rate > 0")
	}
	return symCont{Exponential{Rate: lambda}}
}

func (e Exponential) pdf(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

func (e Exponential) cdf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

func (e Exponential) quantile(p float64) float64 { return -math.Log1p(-p) / e.Rate }
func (e Exponential) mean() float64              { return 1 / e.Rate }
func (e Exponential) variance() float64          { return 1 / (e.Rate * e.Rate) }
func (e Exponential) support() region.Interval {
	return region.Interval{Lo: 0, Hi: math.Inf(1), HiOpen: true}
}
func (e Exponential) sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Rate }
func (e Exponential) String() string              { return fmt.Sprintf("Exp(%g)", e.Rate) }

// Triangular is the triangular distribution on [Lo, Hi] with the given Mode.
type Triangular struct {
	Lo, Mode, Hi float64
}

// NewTriangular returns the triangular distribution on [lo, hi] with mode m.
// It panics unless lo <= m <= hi and lo < hi.
func NewTriangular(lo, m, hi float64) Dist {
	if !(lo < hi && lo <= m && m <= hi) {
		panic("dist: NewTriangular requires lo <= mode <= hi, lo < hi")
	}
	return symCont{Triangular{Lo: lo, Mode: m, Hi: hi}}
}

func (t Triangular) pdf(x float64) float64 {
	switch {
	case x < t.Lo || x > t.Hi:
		return 0
	case x < t.Mode:
		return 2 * (x - t.Lo) / ((t.Hi - t.Lo) * (t.Mode - t.Lo))
	case x == t.Mode:
		return 2 / (t.Hi - t.Lo)
	default:
		return 2 * (t.Hi - x) / ((t.Hi - t.Lo) * (t.Hi - t.Mode))
	}
}

func (t Triangular) cdf(x float64) float64 {
	switch {
	case x <= t.Lo:
		return 0
	case x >= t.Hi:
		return 1
	case x <= t.Mode:
		d := (x - t.Lo)
		return d * d / ((t.Hi - t.Lo) * (t.Mode - t.Lo))
	default:
		d := (t.Hi - x)
		return 1 - d*d/((t.Hi-t.Lo)*(t.Hi-t.Mode))
	}
}

func (t Triangular) quantile(p float64) float64 {
	pivot := (t.Mode - t.Lo) / (t.Hi - t.Lo)
	if p <= pivot {
		return t.Lo + math.Sqrt(p*(t.Hi-t.Lo)*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-p)*(t.Hi-t.Lo)*(t.Hi-t.Mode))
}

func (t Triangular) mean() float64 { return (t.Lo + t.Mode + t.Hi) / 3 }

func (t Triangular) variance() float64 {
	return (t.Lo*t.Lo + t.Mode*t.Mode + t.Hi*t.Hi -
		t.Lo*t.Mode - t.Lo*t.Hi - t.Mode*t.Hi) / 18
}

func (t Triangular) support() region.Interval { return region.Closed(t.Lo, t.Hi) }
func (t Triangular) sample(r *rand.Rand) float64 {
	return t.quantile(r.Float64())
}
func (t Triangular) String() string {
	return fmt.Sprintf("Tri(%g,%g,%g)", t.Lo, t.Mode, t.Hi)
}
