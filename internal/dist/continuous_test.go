package dist

import (
	"math"
	"math/rand"
	"testing"

	"probdb/internal/region"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGaussianBasics(t *testing.T) {
	g := NewGaussian(20, math.Sqrt(5))
	if g.Dim() != 1 || g.DimKind(0) != KindContinuous || g.Mass() != 1 {
		t.Fatal("Gaussian shape wrong")
	}
	if !almostEqual(g.Mean(0), 20, 1e-12) || !almostEqual(g.Variance(0), 5, 1e-12) {
		t.Errorf("mean/var = %v/%v", g.Mean(0), g.Variance(0))
	}
	if got := CDF(g, 20); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("CDF at mean = %v", got)
	}
	if got := g.At([]float64{20}); !almostEqual(got, 1/math.Sqrt(2*math.Pi*5), 1e-12) {
		t.Errorf("density at mean = %v", got)
	}
	if got := NewGaussian(20, 5).String(); got != "Gaus(20,25)" {
		t.Errorf("String = %q", got)
	}
}

func TestGaussianVarMatchesPaperNotation(t *testing.T) {
	// Table I writes Gaus(20,5) meaning mean 20, variance 5.
	g := NewGaussianVar(20, 5)
	if !almostEqual(g.Variance(0), 5, 1e-12) {
		t.Errorf("variance = %v, want 5", g.Variance(0))
	}
}

func TestUniformBasics(t *testing.T) {
	u := NewUniform(2, 6)
	if !almostEqual(u.Mean(0), 4, 1e-12) || !almostEqual(u.Variance(0), 16.0/12, 1e-12) {
		t.Errorf("mean/var = %v/%v", u.Mean(0), u.Variance(0))
	}
	if got := MassInterval(u, 3, 5); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("mass [3,5] = %v", got)
	}
	if got := MassInterval(u, -10, 0); got != 0 {
		t.Errorf("mass outside support = %v", got)
	}
	if got := u.MassIn(region.Box{region.Closed(0, 10)}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("covering mass = %v", got)
	}
	sup := u.Support()[0]
	if sup.Lo != 2 || sup.Hi != 6 {
		t.Errorf("support = %v", sup)
	}
}

func TestExponentialBasics(t *testing.T) {
	e := NewExponential(0.5)
	if !almostEqual(e.Mean(0), 2, 1e-12) || !almostEqual(e.Variance(0), 4, 1e-12) {
		t.Errorf("mean/var = %v/%v", e.Mean(0), e.Variance(0))
	}
	if got := CDF(e, 2); !almostEqual(got, 1-math.Exp(-1), 1e-12) {
		t.Errorf("CDF(2) = %v", got)
	}
	if got := CDF(e, -1); got != 0 {
		t.Errorf("CDF below support = %v", got)
	}
}

func TestTriangularBasics(t *testing.T) {
	tr := NewTriangular(0, 2, 6)
	if !almostEqual(tr.Mean(0), 8.0/3, 1e-12) {
		t.Errorf("mean = %v", tr.Mean(0))
	}
	if got := CDF(tr, 2); !almostEqual(got, 2.0/6, 1e-12) { // (mode-lo)/(hi-lo)
		t.Errorf("CDF at mode = %v", got)
	}
	if got := CDF(tr, 0); got != 0 {
		t.Errorf("CDF at lo = %v", got)
	}
	if got := CDF(tr, 6); got != 1 {
		t.Errorf("CDF at hi = %v", got)
	}
}

func TestContinuousQuantileCDFRoundTrip(t *testing.T) {
	models := []contModel{
		Gaussian{Mu: 3, Sigma: 2},
		Uniform{Lo: -1, Hi: 4},
		Exponential{Rate: 1.5},
		Triangular{Lo: 0, Mode: 1, Hi: 5},
	}
	for _, m := range models {
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := m.quantile(p)
			if got := m.cdf(x); !almostEqual(got, p, 1e-9) {
				t.Errorf("%v: cdf(quantile(%v)) = %v", m, p, got)
			}
		}
	}
}

func TestContinuousPDFIntegratesToCDF(t *testing.T) {
	// MassIn over a partition of the support must total 1.
	ds := []Dist{
		NewGaussian(0, 1),
		NewUniform(0, 1),
		NewExponential(2),
		NewTriangular(-2, 0, 3),
	}
	for _, d := range ds {
		sup := d.Support()[0]
		var total float64
		n := 64
		for i := 0; i < n; i++ {
			lo := sup.Lo + float64(i)*(sup.Hi-sup.Lo)/float64(n)
			hi := sup.Lo + float64(i+1)*(sup.Hi-sup.Lo)/float64(n)
			total += MassInterval(d, lo, hi)
		}
		if !almostEqual(total, 1, 1e-6) {
			t.Errorf("%v: partition mass = %v", d, total)
		}
	}
}

func TestContinuousSampleMoments(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ds := []Dist{
		NewGaussian(10, 3),
		NewUniform(0, 10),
		NewExponential(0.25),
		NewTriangular(0, 5, 10),
	}
	const n = 200_000
	for _, d := range ds {
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := d.Sample(r)[0]
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if !almostEqual(mean, d.Mean(0), 0.05*math.Max(1, math.Abs(d.Mean(0)))) {
			t.Errorf("%v: sample mean %v, want %v", d, mean, d.Mean(0))
		}
		if !almostEqual(variance, d.Variance(0), 0.05*math.Max(1, d.Variance(0))) {
			t.Errorf("%v: sample variance %v, want %v", d, variance, d.Variance(0))
		}
	}
}

func TestContinuousConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewGaussian(0, 0) },
		func() { NewGaussian(0, -1) },
		func() { NewGaussianVar(0, 0) },
		func() { NewUniform(5, 5) },
		func() { NewUniform(5, 2) },
		func() { NewExponential(0) },
		func() { NewTriangular(0, 5, 3) },
		func() { NewTriangular(3, 2, 5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMarginalIdentityOn1D(t *testing.T) {
	g := NewGaussian(0, 1)
	if got := g.Marginal([]int{0}); got != g {
		t.Error("1-D marginal should return the receiver")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty keep should panic")
		}
	}()
	g.Marginal(nil)
}

func TestSupportTruncationCoversBulk(t *testing.T) {
	g := NewGaussian(0, 1)
	sup := g.Support()[0]
	if sup.Lo > -5 || sup.Hi < 5 {
		t.Errorf("truncated support %v too tight", sup)
	}
	if math.IsInf(sup.Lo, 0) || math.IsInf(sup.Hi, 0) {
		t.Errorf("truncated support %v must be finite", sup)
	}
}
