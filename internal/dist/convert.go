package dist

import (
	"fmt"
	"math"

	"probdb/internal/region"
)

// Collapse converts any distribution into a generic representation: an
// exact *Discrete when every dimension is discrete (subject to
// opts.MaxDiscreteCells), otherwise a *Grid. Collapse is the bridge the
// paper describes between symbolic/factored forms and the generic Histogram
// and Discrete fallbacks: symbolic continuous distributions are binned with
// exact per-bin mass (CDF differences), floored distributions have their
// bins refined at floor boundaries so no mass is smeared across a floor, and
// independent products become the outer product of their collapsed factors.
func Collapse(d Dist, opts Options) Dist {
	opts = opts.normalized()
	switch v := d.(type) {
	case *Discrete:
		return v
	case symDisc:
		return v.backing
	case *Grid:
		return v
	case symCont:
		return collapseCont(v.m, region.Full, opts)
	case Floored:
		return collapseCont(v.m, v.keep, opts)
	case *Product:
		return collapseProduct(v, opts)
	case *MultiGaussian:
		return v.collapse()
	default:
		return collapseGeneric(d, opts)
	}
}

// collapseCont bins a (possibly floored) continuous model into a Grid with
// exact per-bin mass. Bin edges are the opts.GridBins equal-width cuts over
// the truncated support, refined at every floor boundary.
func collapseCont(m contModel, keep region.Set, opts Options) *Grid {
	sup := truncatedSupport(m, opts.TailEps)
	lo, hi := sup.Lo, sup.Hi
	// Clip the binning range to the kept region's extent when floored.
	if !keep.IsFull() && !keep.IsEmpty() {
		ivs := keep.Intervals()
		klo, khi := ivs[0].Lo, ivs[len(ivs)-1].Hi
		if klo > lo && !math.IsInf(klo, 0) {
			lo = klo
		}
		if khi < hi && !math.IsInf(khi, 0) {
			hi = khi
		}
	}
	if !(hi > lo) {
		hi = lo + 1 // degenerate support: single empty-ish bin
	}
	edges := make([]float64, 0, opts.GridBins+1)
	step := (hi - lo) / float64(opts.GridBins)
	for i := 0; i <= opts.GridBins; i++ {
		edges = append(edges, lo+float64(i)*step)
	}
	edges[len(edges)-1] = hi
	for _, c := range boundaryPoints(keep, lo, hi) {
		edges = append(edges, c)
	}
	edges = dedupeSorted(edges)
	floored := newFloored(m, keep) // also handles keep == Full via symCont
	masses := make([]float64, len(edges)-1)
	for i := range masses {
		masses[i] = floored.MassIn(region.Box{region.Closed(edges[i], edges[i+1])})
	}
	return NewGrid([]Axis{{Kind: KindContinuous, Edges: edges}}, masses)
}

func dedupeSorted(xs []float64) []float64 {
	sortFloat64s(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// sortFloat64s is a tiny insertion sort for the short, nearly-sorted edge
// slices used during collapse (avoids pulling sort.Float64s into the hot
// path for 30-element slices — and keeps edges bit-exact).
func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// collapseProduct collapses each factor and combines them: an exact sparse
// cross product when all factors are discrete and small enough, otherwise a
// dense Grid outer product.
func collapseProduct(p *Product, opts Options) Dist {
	parts := make([]Dist, len(p.factors))
	allDiscrete := true
	discreteCells := 1
	for i, f := range p.factors {
		parts[i] = Collapse(f, opts)
		if dd, ok := parts[i].(*Discrete); ok {
			if discreteCells < opts.MaxDiscreteCells {
				discreteCells *= maxInt(1, len(dd.Points()))
			}
		} else {
			allDiscrete = false
		}
	}
	if allDiscrete && discreteCells <= opts.MaxDiscreteCells {
		return crossDiscrete(parts, p.scale)
	}
	// Dense outer product of grids. Discrete factors become value axes.
	var axes []Axis
	var weights [][]float64 // flattened per part
	for _, part := range parts {
		g := asGrid(part)
		axes = append(axes, g.axes...)
		weights = append(weights, g.w)
	}
	total := 1
	for _, a := range axes {
		total *= a.Cells()
	}
	w := outerProduct(weights, total, p.scale)
	return NewGrid(axes, w)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// crossDiscrete builds the exact joint of independent discrete parts.
func crossDiscrete(parts []Dist, scale float64) *Discrete {
	dims := 0
	for _, p := range parts {
		dims += p.Dim()
	}
	pts := []Point{{X: nil, P: scale}}
	for _, p := range parts {
		dp := p.(*Discrete)
		next := make([]Point, 0, len(pts)*len(dp.Points()))
		for _, acc := range pts {
			for _, q := range dp.Points() {
				x := make([]float64, 0, dims)
				x = append(x, acc.X...)
				x = append(x, q.X...)
				next = append(next, Point{X: x, P: acc.P * q.P})
			}
		}
		pts = next
	}
	return NewDiscreteJoint(dims, pts)
}

// asGrid views a collapsed part as a Grid (identity for grids; discrete
// parts become per-dimension value axes with the exact joint masses).
func asGrid(d Dist) *Grid {
	switch v := d.(type) {
	case *Grid:
		return v
	case *Discrete:
		return discreteToGrid(v)
	default:
		panic(fmt.Sprintf("dist: asGrid of %T", d))
	}
}

// discreteToGrid densifies a Discrete into a Grid whose axes are the sorted
// unique values per dimension. Exact, but the dense cell count is the
// product of per-dimension cardinalities.
func discreteToGrid(d *Discrete) *Grid {
	dim := d.Dim()
	axes := make([]Axis, dim)
	for i := 0; i < dim; i++ {
		var vals []float64
		for _, p := range d.Points() {
			vals = append(vals, p.X[i])
		}
		vals = dedupeSortedAll(vals)
		axes[i] = Axis{Kind: KindDiscrete, Values: vals}
	}
	n := 1
	for _, a := range axes {
		n *= a.Cells()
	}
	w := make([]float64, n)
	for _, p := range d.Points() {
		flat := 0
		for i, a := range axes {
			flat = flat*a.Cells() + a.locate(p.X[i])
		}
		w[flat] += p.P
	}
	return NewGrid(axes, w)
}

func dedupeSortedAll(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	// Full sort (inputs can be arbitrary order).
	quickSortFloats(sorted)
	out := sorted[:1]
	for _, x := range sorted[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func quickSortFloats(xs []float64) {
	// Defer to insertion sort for small slices; recursive quicksort otherwise.
	if len(xs) < 24 {
		sortFloat64s(xs)
		return
	}
	pivot := xs[len(xs)/2]
	lt, i, gt := 0, 0, len(xs)
	for i < gt {
		switch {
		case xs[i] < pivot:
			xs[lt], xs[i] = xs[i], xs[lt]
			lt++
			i++
		case xs[i] > pivot:
			gt--
			xs[gt], xs[i] = xs[i], xs[gt]
		default:
			i++
		}
	}
	quickSortFloats(xs[:lt])
	quickSortFloats(xs[gt:])
}

// outerProduct computes the Kronecker product of the weight vectors times
// scale, producing total entries.
func outerProduct(weights [][]float64, total int, scale float64) []float64 {
	out := []float64{scale}
	for _, wv := range weights {
		next := make([]float64, 0, len(out)*len(wv))
		for _, a := range out {
			for _, b := range wv {
				next = append(next, a*b)
			}
		}
		out = next
	}
	if len(out) != total {
		panic("dist: outer product size mismatch")
	}
	return out
}

// collapseGeneric is the fallback for distribution types the switch does not
// know: it bins MassIn over the support box. Only 1-D continuous fallbacks
// are supported; everything in this package is covered by the switch, so
// this path exists for external Dist implementations.
func collapseGeneric(d Dist, opts Options) Dist {
	if d.Dim() != 1 || d.DimKind(0) != KindContinuous {
		panic(fmt.Sprintf("dist: cannot collapse unknown distribution %T", d))
	}
	sup := d.Support()[0]
	edges := make([]float64, opts.GridBins+1)
	for i := range edges {
		edges[i] = sup.Lo + float64(i)*(sup.Hi-sup.Lo)/float64(opts.GridBins)
	}
	masses := make([]float64, opts.GridBins)
	for i := range masses {
		masses[i] = d.MassIn(region.Box{region.Closed(edges[i], edges[i+1])})
	}
	return NewGrid([]Axis{{Kind: KindContinuous, Edges: edges}}, masses)
}

// Discretize approximates a 1-D distribution by n value–probability pairs —
// the "discrete sampling" representation the paper's experiments compare
// against (§IV). The points sit at the centers of n equal-width strips over
// the (truncated) support, each carrying that strip's exact mass; a range
// query over the result sees the all-or-nothing boundary error Fig. 4
// measures.
func Discretize(d Dist, n int) *Discrete {
	if d.Dim() != 1 {
		panic("dist: Discretize requires a one-dimensional distribution")
	}
	if n < 1 {
		panic("dist: Discretize requires n >= 1")
	}
	if dd, ok := d.(*Discrete); ok {
		return dd // already discrete: exact
	}
	sup := d.Support()[0]
	lo, hi := sup.Lo, sup.Hi
	if !(hi > lo) {
		hi = lo + 1
	}
	values := make([]float64, n)
	probs := make([]float64, n)
	step := (hi - lo) / float64(n)
	for i := 0; i < n; i++ {
		values[i] = lo + (float64(i)+0.5)*step
		a, b := lo+float64(i)*step, lo+float64(i+1)*step
		if i == 0 {
			a = math.Inf(-1)
		}
		if i == n-1 {
			b = math.Inf(1)
		}
		probs[i] = d.MassIn(region.Box{region.Closed(a, b)})
	}
	return NewDiscrete(values, probs)
}

// ToHistogram approximates a 1-D distribution by a histogram with the given
// number of equal-width buckets over the (truncated) support, with exact
// per-bucket mass — the paper's Hist generic representation.
func ToHistogram(d Dist, bins int) *Grid {
	if d.Dim() != 1 {
		panic("dist: ToHistogram requires a one-dimensional distribution")
	}
	if bins < 1 {
		panic("dist: ToHistogram requires bins >= 1")
	}
	sup := d.Support()[0]
	lo, hi := sup.Lo, sup.Hi
	if !(hi > lo) {
		hi = lo + 1
	}
	edges := make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + float64(i)*(hi-lo)/float64(bins)
	}
	edges[bins] = hi
	masses := make([]float64, bins)
	for i := range masses {
		a, b := edges[i], edges[i+1]
		if i == 0 {
			a = math.Inf(-1)
		}
		if i == bins-1 {
			b = math.Inf(1)
		}
		masses[i] = d.MassIn(region.Box{region.Closed(a, b)})
	}
	return NewGrid([]Axis{{Kind: KindContinuous, Edges: edges}}, masses)
}

// ToHistogramEquiDepth approximates a 1-D continuous distribution by an
// equi-depth histogram: bucket edges at the quantiles, so every bucket
// carries the same mass. Compared to the equi-width ToHistogram it spends
// resolution where the mass is — the classic DB statistics trade-off,
// measured against the paper's equi-width choice in ablation 5.
func ToHistogramEquiDepth(d Dist, bins int) *Grid {
	if d.Dim() != 1 {
		panic("dist: ToHistogramEquiDepth requires a one-dimensional distribution")
	}
	if bins < 1 {
		panic("dist: ToHistogramEquiDepth requires bins >= 1")
	}
	if d.DimKind(0) != KindContinuous {
		panic("dist: ToHistogramEquiDepth requires a continuous distribution")
	}
	mass := d.Mass()
	if mass <= 0 {
		panic("dist: ToHistogramEquiDepth of zero-mass distribution")
	}
	sup := d.Support()[0]
	lo, hi := sup.Lo, sup.Hi
	if !(hi > lo) {
		hi = lo + 1
	}
	edges := make([]float64, bins+1)
	edges[0], edges[bins] = lo, hi
	for i := 1; i < bins; i++ {
		target := mass * float64(i) / float64(bins)
		// Bisect the CDF for the i/bins quantile.
		a, b := lo, hi
		for it := 0; it < 60 && b-a > 1e-12*(1+math.Abs(b)); it++ {
			mid := a + (b-a)/2
			if CDF(d, mid) < target {
				a = mid
			} else {
				b = mid
			}
		}
		edges[i] = a + (b-a)/2
	}
	// Guard against numerically coincident edges in flat CDF regions.
	for i := 1; i <= bins; i++ {
		if edges[i] <= edges[i-1] {
			edges[i] = math.Nextafter(edges[i-1], math.Inf(1))
		}
	}
	masses := make([]float64, bins)
	for i := range masses {
		a, b := edges[i], edges[i+1]
		if i == 0 {
			a = math.Inf(-1)
		}
		if i == bins-1 {
			b = math.Inf(1)
		}
		masses[i] = d.MassIn(region.Box{region.Closed(a, b)})
	}
	return NewGrid([]Axis{{Kind: KindContinuous, Edges: edges}}, masses)
}
