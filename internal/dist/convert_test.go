package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probdb/internal/region"
)

func TestCollapseGaussianPreservesMass(t *testing.T) {
	g := NewGaussian(50, 2)
	c := Collapse(g, DefaultOptions)
	if _, ok := c.(*Grid); !ok {
		t.Fatalf("collapsed gaussian should be *Grid, got %T", c)
	}
	if !almostEqual(c.Mass(), 1, 1e-6) {
		t.Errorf("mass = %v", c.Mass())
	}
	// Range-query agreement within histogram resolution.
	for _, iv := range [][2]float64{{48, 52}, {45, 50}, {50.5, 51.5}} {
		want := MassInterval(g, iv[0], iv[1])
		got := MassInterval(c, iv[0], iv[1])
		if !almostEqual(got, want, 0.01) {
			t.Errorf("mass [%v,%v]: grid %v vs exact %v", iv[0], iv[1], got, want)
		}
	}
}

func TestCollapseFlooredRefinesAtBoundary(t *testing.T) {
	g := NewGaussian(0, 1)
	f := g.Floor(0, region.Compare(region.LT, 0.1234))
	c := Collapse(f, DefaultOptions).(*Grid)
	// The floor boundary must be an edge, so no mass leaks across it.
	if got := c.MassIn(region.Box{region.Closed(0.1234, 100)}); got > 1e-12 {
		t.Errorf("mass above floor boundary = %v", got)
	}
	if !almostEqual(c.Mass(), f.Mass(), 1e-9) {
		t.Errorf("collapsed mass %v vs floored %v", c.Mass(), f.Mass())
	}
}

func TestCollapseDiscreteIsIdentity(t *testing.T) {
	d := NewDiscrete([]float64{1, 2}, []float64{0.3, 0.7})
	if Collapse(d, DefaultOptions) != Dist(d) {
		t.Error("collapse of discrete should be identity")
	}
	b := NewBinomial(4, 0.5)
	c := Collapse(b, DefaultOptions)
	if _, ok := c.(*Discrete); !ok {
		t.Errorf("collapse of symbolic discrete should be *Discrete, got %T", c)
	}
}

func TestCollapseProductOfDiscretesIsExact(t *testing.T) {
	// Table II: f(a) x f(b) for tuple t1 — the paper's product example.
	p := ProductOf(tableIIA(), tableIIB())
	c := Collapse(p, DefaultOptions)
	d, ok := c.(*Discrete)
	if !ok {
		t.Fatalf("product of discretes should collapse to *Discrete, got %T", c)
	}
	want := map[[2]float64]float64{
		{0, 1}: 0.06, {0, 2}: 0.04, {1, 1}: 0.54, {1, 2}: 0.36,
	}
	for k, v := range want {
		if got := d.At([]float64{k[0], k[1]}); !almostEqual(got, v, 1e-12) {
			t.Errorf("P(%v) = %v, want %v", k, got, v)
		}
	}
}

func TestCollapseMixedProduct(t *testing.T) {
	p := ProductOf(NewBernoulli(0.3), NewUniform(0, 1))
	c := Collapse(p, DefaultOptions)
	g, ok := c.(*Grid)
	if !ok {
		t.Fatalf("mixed product should collapse to *Grid, got %T", c)
	}
	if g.DimKind(0) != KindDiscrete || g.DimKind(1) != KindContinuous {
		t.Error("axis kinds wrong")
	}
	if !almostEqual(g.Mass(), 1, 1e-9) {
		t.Errorf("mass = %v", g.Mass())
	}
	box := region.Box{region.Point(1), region.Closed(0, 0.5)}
	if got := g.MassIn(box); !almostEqual(got, 0.15, 1e-9) {
		t.Errorf("mass = %v, want 0.15", got)
	}
}

func TestCollapseProductWithScale(t *testing.T) {
	half := NewUniform(0, 1).Floor(0, region.Compare(region.LT, 0.5))
	p := ProductOf(half, NewUniform(0, 1)).Marginal([]int{1}) // scale 0.5
	c := Collapse(p, DefaultOptions)
	if !almostEqual(c.Mass(), 0.5, 1e-9) {
		t.Errorf("collapsed mass = %v, want 0.5", c.Mass())
	}
}

func TestDiscretizeGaussian(t *testing.T) {
	g := NewGaussian(50, 2)
	for _, n := range []int{5, 25} {
		d := Discretize(g, n)
		if len(d.Points()) != n {
			t.Errorf("n=%d: got %d points", n, len(d.Points()))
		}
		if !almostEqual(d.Mass(), 1, 1e-9) {
			t.Errorf("n=%d: mass = %v", n, d.Mass())
		}
		if !almostEqual(d.Mean(0), 50, 0.5) {
			t.Errorf("n=%d: mean = %v", n, d.Mean(0))
		}
	}
}

func TestDiscretizeOfDiscreteIsIdentity(t *testing.T) {
	d := NewDiscrete([]float64{1, 2}, []float64{0.5, 0.5})
	if Discretize(d, 10) != d {
		t.Error("discretize of discrete should return the receiver")
	}
}

func TestToHistogramGaussian(t *testing.T) {
	g := NewGaussian(50, 2)
	h := ToHistogram(g, 5)
	if h.Axes()[0].Cells() != 5 {
		t.Errorf("bins = %d", h.Axes()[0].Cells())
	}
	if !almostEqual(h.Mass(), 1, 1e-9) {
		t.Errorf("mass = %v", h.Mass())
	}
	// Histogram range queries interpolate: errors should be small even with
	// 5 bins (this is the Fig. 4 claim).
	q := MassInterval(h, 48, 52)
	want := MassInterval(g, 48, 52)
	if !almostEqual(q, want, 0.12) {
		t.Errorf("hist mass = %v vs exact %v", q, want)
	}
}

func TestHistogramBeatsDiscreteOnRangeQueries(t *testing.T) {
	// The qualitative Fig. 4 claim at equal representation budget: a 5-bin
	// histogram approximates range-query mass better on average than a
	// 5-point discretization.
	r := rand.New(rand.NewSource(1234))
	var histErr, discErr float64
	const trials = 400
	for i := 0; i < trials; i++ {
		mu := r.Float64() * 100
		sigma := 2 + r.NormFloat64()*0.5
		if sigma < 0.5 {
			sigma = 0.5
		}
		g := NewGaussian(mu, sigma)
		h := ToHistogram(g, 5)
		d := Discretize(g, 5)
		mid := r.Float64() * 100
		length := 10 + r.NormFloat64()*3
		lo, hi := mid-length/2, mid+length/2
		want := MassInterval(g, lo, hi)
		histErr += math.Abs(MassInterval(h, lo, hi) - want)
		discErr += math.Abs(MassInterval(d, lo, hi) - want)
	}
	if histErr >= discErr {
		t.Errorf("histogram total error %v should beat discrete %v", histErr, discErr)
	}
}

func TestCollapseQuickMassPreserved(t *testing.T) {
	f := func(mu, sigmaRaw float64) bool {
		if math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsNaN(sigmaRaw) || math.IsInf(sigmaRaw, 0) {
			return true
		}
		mu = math.Mod(mu, 1e6)
		sigma := math.Abs(math.Mod(sigmaRaw, 100)) + 0.01
		g := NewGaussian(mu, sigma)
		c := Collapse(g, DefaultOptions)
		return almostEqual(c.Mass(), 1, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSortFloats(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		quickSortFloats(clean)
		for i := 1; i < len(clean); i++ {
			if clean[i] < clean[i-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDiscretizePanics(t *testing.T) {
	g2 := ProductOf(NewGaussian(0, 1), NewGaussian(0, 1))
	for i, f := range []func(){
		func() { Discretize(g2, 5) },
		func() { Discretize(NewGaussian(0, 1), 0) },
		func() { ToHistogram(g2, 5) },
		func() { ToHistogram(NewGaussian(0, 1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestToHistogramEquiDepth(t *testing.T) {
	g := NewGaussian(50, 2)
	h := ToHistogramEquiDepth(g, 8)
	if h.Axes()[0].Cells() != 8 {
		t.Fatalf("bins = %d", h.Axes()[0].Cells())
	}
	if !almostEqual(h.Mass(), 1, 1e-9) {
		t.Errorf("mass = %v", h.Mass())
	}
	// Every bucket carries (approximately) equal mass.
	for i, w := range h.Weights() {
		if !almostEqual(w, 0.125, 0.01) {
			t.Errorf("bucket %d mass = %v, want ~0.125", i, w)
		}
	}
	// Edges concentrate near the mean: the central buckets are narrower.
	edges := h.Axes()[0].Edges
	mid := edges[5] - edges[4]
	outer := edges[1] - edges[0]
	if mid >= outer {
		t.Errorf("central bucket (%v) should be narrower than outer (%v)", mid, outer)
	}
	for i, f := range []func(){
		func() { ToHistogramEquiDepth(ProductOf(g, g), 4) },
		func() { ToHistogramEquiDepth(g, 0) },
		func() { ToHistogramEquiDepth(NewDiscrete([]float64{1}, []float64{1}), 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}
