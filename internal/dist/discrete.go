package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

// Point is one value–probability pair of a Discrete distribution. X has one
// entry per dimension.
type Point struct {
	X []float64
	P float64
}

// Discrete is an exact, possibly-partial, possibly-joint discrete
// distribution: the "discrete sampling" generic representation of §II-A and
// the natural representation for categorical/tuple uncertainty. Points are
// kept sorted lexicographically; duplicates are merged at construction.
type Discrete struct {
	dim  int
	pts  []Point
	cum  []float64 // cumulative masses for sampling
	mass float64
}

var _ Dist = (*Discrete)(nil)

// NewDiscrete builds a 1-D discrete distribution from parallel value and
// probability slices. Probabilities must be non-negative and sum to at most
// 1 (partial pdfs are allowed); values must be finite.
func NewDiscrete(values, probs []float64) *Discrete {
	if len(values) != len(probs) {
		panic("dist: NewDiscrete length mismatch")
	}
	pts := make([]Point, len(values))
	for i, v := range values {
		pts[i] = Point{X: []float64{v}, P: probs[i]}
	}
	return NewDiscreteJoint(1, pts)
}

// NewDiscreteJoint builds a dim-dimensional discrete distribution from
// points. It panics on malformed input: wrong dimensionality, non-finite
// values, negative probabilities, or total mass beyond 1 (modulo float
// slack).
func NewDiscreteJoint(dim int, points []Point) *Discrete {
	if dim <= 0 {
		panic("dist: NewDiscreteJoint requires dim >= 1")
	}
	pts := make([]Point, 0, len(points))
	for _, p := range points {
		if len(p.X) != dim {
			panic(fmt.Sprintf("dist: point has %d coordinates, want %d", len(p.X), dim))
		}
		for _, v := range p.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				panic("dist: discrete point coordinates must be finite")
			}
		}
		if p.P < 0 {
			panic("dist: negative point probability")
		}
		if p.P == 0 {
			continue
		}
		x := make([]float64, dim)
		copy(x, p.X)
		pts = append(pts, Point{X: x, P: p.P})
	}
	sort.Slice(pts, func(i, j int) bool { return lexLess(pts[i].X, pts[j].X) })
	// Merge duplicates.
	merged := pts[:0]
	for _, p := range pts {
		if len(merged) > 0 && lexEqual(merged[len(merged)-1].X, p.X) {
			merged[len(merged)-1].P += p.P
		} else {
			merged = append(merged, p)
		}
	}
	var mass numeric.KahanSum
	cum := make([]float64, len(merged))
	for i, p := range merged {
		mass.Add(p.P)
		cum[i] = mass.Value()
	}
	total := mass.Value()
	if total > 1+1e-9 {
		panic(fmt.Sprintf("dist: discrete mass %v exceeds 1", total))
	}
	return &Discrete{dim: dim, pts: merged, cum: cum, mass: numeric.Clamp01(total)}
}

// Unit returns the identity pdf f0 of §III-C case 2(b): a point mass of
// probability 1 at x.
func Unit(x ...float64) *Discrete {
	return NewDiscreteJoint(len(x), []Point{{X: x, P: 1}})
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func lexEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Points returns the distribution's points in lexicographic order. The
// returned slice and its contents must not be modified.
func (d *Discrete) Points() []Point { return d.pts }

func (d *Discrete) Dim() int           { return d.dim }
func (d *Discrete) DimKind(i int) Kind { checkDim(i, d.dim); return KindDiscrete }
func (d *Discrete) Mass() float64      { return d.mass }

func (d *Discrete) At(x []float64) float64 {
	if len(x) != d.dim {
		panic("dist: At dimensionality mismatch")
	}
	i := sort.Search(len(d.pts), func(i int) bool { return !lexLess(d.pts[i].X, x) })
	if i < len(d.pts) && lexEqual(d.pts[i].X, x) {
		return d.pts[i].P
	}
	return 0
}

func (d *Discrete) MassIn(b region.Box) float64 {
	if len(b) != d.dim {
		panic("dist: MassIn box dimensionality mismatch")
	}
	var s numeric.KahanSum
	for _, p := range d.pts {
		if b.Contains(p.X) {
			s.Add(p.P)
		}
	}
	return numeric.Clamp01(s.Value())
}

func (d *Discrete) MassWhere(pred func([]float64) bool) float64 {
	var s numeric.KahanSum
	for _, p := range d.pts {
		if pred(p.X) {
			s.Add(p.P)
		}
	}
	return numeric.Clamp01(s.Value())
}

func (d *Discrete) Marginal(keep []int) Dist {
	checkKeep(keep, d.dim)
	if identityKeep(keep, d.dim) {
		return d
	}
	pts := make([]Point, len(d.pts))
	for i, p := range d.pts {
		x := make([]float64, len(keep))
		for j, k := range keep {
			x[j] = p.X[k]
		}
		pts[i] = Point{X: x, P: p.P}
	}
	return NewDiscreteJoint(len(keep), pts)
}

func (d *Discrete) Floor(dim int, keep region.Set) Dist {
	checkDim(dim, d.dim)
	return d.FloorWhere(func(x []float64) bool { return keep.Contains(x[dim]) })
}

func (d *Discrete) FloorWhere(pred func([]float64) bool) Dist {
	pts := make([]Point, 0, len(d.pts))
	for _, p := range d.pts {
		if pred(p.X) {
			pts = append(pts, p)
		}
	}
	return NewDiscreteJoint(d.dim, pts)
}

func (d *Discrete) Support() region.Box {
	b := make(region.Box, d.dim)
	if len(d.pts) == 0 {
		for i := range b {
			b[i] = region.Point(0)
		}
		return b
	}
	for i := range b {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range d.pts {
			if p.X[i] < lo {
				lo = p.X[i]
			}
			if p.X[i] > hi {
				hi = p.X[i]
			}
		}
		b[i] = region.Closed(lo, hi)
	}
	return b
}

func (d *Discrete) Mean(dim int) float64 {
	checkDim(dim, d.dim)
	if d.mass == 0 {
		return math.NaN()
	}
	var s numeric.KahanSum
	for _, p := range d.pts {
		s.Add(p.P * p.X[dim])
	}
	return s.Value() / d.mass
}

func (d *Discrete) Variance(dim int) float64 {
	checkDim(dim, d.dim)
	if d.mass == 0 {
		return math.NaN()
	}
	mu := d.Mean(dim)
	var s numeric.KahanSum
	for _, p := range d.pts {
		dd := p.X[dim] - mu
		s.Add(p.P * dd * dd)
	}
	return s.Value() / d.mass
}

func (d *Discrete) Sample(r *rand.Rand) []float64 {
	if d.mass <= 0 {
		panic("dist: Sample of zero-mass Discrete distribution")
	}
	u := r.Float64() * d.mass
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.pts) {
		i = len(d.pts) - 1
	}
	out := make([]float64, d.dim)
	copy(out, d.pts[i].X)
	return out
}

func (d *Discrete) String() string {
	var b strings.Builder
	b.WriteString("Discrete(")
	for i, p := range d.pts {
		if i > 0 {
			b.WriteString(", ")
		}
		if i == 8 && len(d.pts) > 10 {
			fmt.Fprintf(&b, "… %d more", len(d.pts)-i)
			break
		}
		if d.dim == 1 {
			fmt.Fprintf(&b, "%g:%.6g", p.X[0], p.P)
		} else {
			b.WriteByte('{')
			for j, v := range p.X {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%g", v)
			}
			fmt.Fprintf(&b, "}:%.6g", p.P)
		}
	}
	b.WriteByte(')')
	return b.String()
}
