package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probdb/internal/region"
)

// tableIIA is the pdf of attribute a of tuple t1 in the paper's Table II.
func tableIIA() *Discrete { return NewDiscrete([]float64{0, 1}, []float64{0.1, 0.9}) }

// tableIIB is the pdf of attribute b of tuple t1 in the paper's Table II.
func tableIIB() *Discrete { return NewDiscrete([]float64{1, 2}, []float64{0.6, 0.4}) }

func TestDiscreteBasics(t *testing.T) {
	d := tableIIA()
	if d.Dim() != 1 || d.DimKind(0) != KindDiscrete {
		t.Fatal("discrete shape wrong")
	}
	if !almostEqual(d.Mass(), 1, 1e-15) {
		t.Errorf("mass = %v", d.Mass())
	}
	if got := d.At([]float64{1}); got != 0.9 {
		t.Errorf("At(1) = %v", got)
	}
	if got := d.At([]float64{0.5}); got != 0 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := d.Mean(0); !almostEqual(got, 0.9, 1e-15) {
		t.Errorf("mean = %v", got)
	}
	if got := d.Variance(0); !almostEqual(got, 0.09, 1e-12) {
		t.Errorf("variance = %v", got)
	}
	if got := d.String(); got != "Discrete(0:0.1, 1:0.9)" {
		t.Errorf("String = %q", got)
	}
}

func TestDiscreteMergesDuplicates(t *testing.T) {
	d := NewDiscrete([]float64{1, 1, 2}, []float64{0.2, 0.3, 0.5})
	if len(d.Points()) != 2 {
		t.Fatalf("want 2 points, got %d", len(d.Points()))
	}
	if got := d.At([]float64{1}); !almostEqual(got, 0.5, 1e-15) {
		t.Errorf("merged mass = %v", got)
	}
}

func TestDiscreteDropsZeroProb(t *testing.T) {
	d := NewDiscrete([]float64{1, 2}, []float64{0, 1})
	if len(d.Points()) != 1 {
		t.Errorf("zero-probability points should be dropped: %v", d)
	}
}

func TestDiscretePartialMass(t *testing.T) {
	// Table IV row 2: Pr sums to 0.8, tuple missing with probability 0.2.
	d := NewDiscreteJoint(2, []Point{
		{X: []float64{4, 7}, P: 0.2},
		{X: []float64{4.1, 3.7}, P: 0.6},
	})
	if !almostEqual(d.Mass(), 0.8, 1e-15) {
		t.Errorf("partial mass = %v, want 0.8", d.Mass())
	}
}

func TestDiscreteConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewDiscrete([]float64{1}, []float64{1, 2}) },
		func() { NewDiscrete([]float64{1}, []float64{-0.5}) },
		func() { NewDiscrete([]float64{1, 2}, []float64{0.9, 0.9}) },
		func() { NewDiscrete([]float64{math.NaN()}, []float64{1}) },
		func() { NewDiscrete([]float64{math.Inf(1)}, []float64{1}) },
		func() { NewDiscreteJoint(0, nil) },
		func() { NewDiscreteJoint(2, []Point{{X: []float64{1}, P: 1}}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDiscreteMassIn(t *testing.T) {
	d := NewDiscrete([]float64{1, 2, 3, 4}, []float64{0.1, 0.2, 0.3, 0.4})
	if got := d.MassIn(region.Box{region.Closed(2, 3)}); !almostEqual(got, 0.5, 1e-15) {
		t.Errorf("mass [2,3] = %v", got)
	}
	// Open endpoints exclude boundary points — this is where discrete
	// distributions differ from continuous ones.
	if got := d.MassIn(region.Box{region.Open(2, 3)}); got != 0 {
		t.Errorf("mass (2,3) = %v, want 0", got)
	}
}

func TestDiscreteFloor(t *testing.T) {
	d := tableIIB()
	f := d.Floor(0, region.Compare(region.GT, 1))
	if !almostEqual(f.Mass(), 0.4, 1e-15) {
		t.Errorf("floored mass = %v, want 0.4", f.Mass())
	}
	if f.At([]float64{1}) != 0 {
		t.Error("floored point should carry no mass")
	}
}

func TestDiscreteMarginal(t *testing.T) {
	// Joint over (a, b); marginal over b.
	d := NewDiscreteJoint(2, []Point{
		{X: []float64{0, 1}, P: 0.06},
		{X: []float64{0, 2}, P: 0.04},
		{X: []float64{1, 1}, P: 0.54},
		{X: []float64{1, 2}, P: 0.36},
	})
	mb := d.Marginal([]int{1}).(*Discrete)
	if got := mb.At([]float64{1}); !almostEqual(got, 0.6, 1e-12) {
		t.Errorf("marginal P(b=1) = %v", got)
	}
	if got := mb.At([]float64{2}); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("marginal P(b=2) = %v", got)
	}
	// Marginal in reversed order relabels dimensions.
	rev := d.Marginal([]int{1, 0}).(*Discrete)
	if got := rev.At([]float64{2, 1}); !almostEqual(got, 0.36, 1e-12) {
		t.Errorf("reordered marginal P = %v", got)
	}
	// Marginalizing a partial pdf preserves total mass.
	partial := NewDiscreteJoint(2, []Point{{X: []float64{1, 2}, P: 0.5}})
	if got := partial.Marginal([]int{0}).Mass(); !almostEqual(got, 0.5, 1e-15) {
		t.Errorf("partial marginal mass = %v", got)
	}
}

func TestDiscreteFloorWhere(t *testing.T) {
	d := NewDiscreteJoint(2, []Point{
		{X: []float64{0, 1}, P: 0.06},
		{X: []float64{0, 2}, P: 0.04},
		{X: []float64{1, 1}, P: 0.54},
		{X: []float64{1, 2}, P: 0.36},
	})
	// Predicate a < b — the paper's Table II selection.
	f := d.FloorWhere(func(x []float64) bool { return x[0] < x[1] })
	if !almostEqual(f.Mass(), 0.46, 1e-12) {
		t.Errorf("mass after a<b = %v, want 0.46", f.Mass())
	}
	if f.At([]float64{1, 1}) != 0 {
		t.Error("point violating predicate should be floored")
	}
}

func TestDiscreteSampleFrequencies(t *testing.T) {
	d := NewDiscrete([]float64{1, 2, 3}, []float64{0.2, 0.3, 0.5})
	r := rand.New(rand.NewSource(11))
	counts := map[float64]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)[0]]++
	}
	for _, c := range []struct{ v, p float64 }{{1, 0.2}, {2, 0.3}, {3, 0.5}} {
		if got := float64(counts[c.v]) / n; !almostEqual(got, c.p, 0.01) {
			t.Errorf("frequency of %v = %v, want %v", c.v, got, c.p)
		}
	}
}

func TestDiscreteSupport(t *testing.T) {
	d := NewDiscreteJoint(2, []Point{
		{X: []float64{1, -3}, P: 0.5},
		{X: []float64{4, 2}, P: 0.5},
	})
	sup := d.Support()
	if sup[0].Lo != 1 || sup[0].Hi != 4 || sup[1].Lo != -3 || sup[1].Hi != 2 {
		t.Errorf("support = %v", sup)
	}
}

func TestUnitIsIdentityPDF(t *testing.T) {
	u := Unit(7, 3)
	if u.Mass() != 1 || u.At([]float64{7, 3}) != 1 || u.At([]float64{7, 4}) != 0 {
		t.Error("Unit should be a probability-1 point mass")
	}
}

func TestDiscreteFloorPropertyMassNeverGrows(t *testing.T) {
	f := func(vals []float64, cut float64) bool {
		if len(vals) == 0 {
			return true
		}
		n := len(vals)
		if n > 12 {
			n = 12
		}
		probs := make([]float64, n)
		clean := make([]float64, n)
		for i := 0; i < n; i++ {
			v := vals[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			clean[i] = math.Trunc(math.Mod(v, 100))
			probs[i] = 1 / float64(n+1)
		}
		d := NewDiscreteJoint(1, toPoints(clean, probs))
		if math.IsNaN(cut) || math.IsInf(cut, 0) {
			cut = 0
		}
		fl := d.Floor(0, region.Compare(region.LT, math.Mod(cut, 100)))
		return fl.Mass() <= d.Mass()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func toPoints(vals, probs []float64) []Point {
	pts := make([]Point, len(vals))
	for i := range vals {
		pts[i] = Point{X: []float64{vals[i]}, P: probs[i]}
	}
	return pts
}
