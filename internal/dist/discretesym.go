package dist

import (
	"fmt"
	"math"
	"math/rand"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

// discModel is the closed form of a symbolic integer-support distribution.
// enumerate expands it to explicit points (truncating negligible tails), the
// backing representation every Dist operation runs against; the symbolic
// form is retained for display and compact on-disk storage.
type discModel interface {
	enumerate() []Point
	String() string
}

// symDisc is a symbolic discrete distribution. It answers all Dist queries
// through a pre-enumerated Discrete backing; operations that change the
// distribution (floors, marginals) return plain Discrete values, exactly as
// the paper's symbolic representations degrade to generic ones once an
// operation leaves the closed-form family.
type symDisc struct {
	m       discModel
	backing *Discrete
}

var _ Dist = symDisc{}

func newSymDisc(m discModel) symDisc {
	return symDisc{m: m, backing: NewDiscreteJoint(1, m.enumerate())}
}

func (s symDisc) Dim() int                                 { return 1 }
func (s symDisc) DimKind(i int) Kind                       { checkDim(i, 1); return KindDiscrete }
func (s symDisc) Mass() float64                            { return 1 }
func (s symDisc) At(x []float64) float64                   { return s.backing.At(x) }
func (s symDisc) MassIn(b region.Box) float64              { return s.backing.MassIn(b) }
func (s symDisc) MassWhere(p func([]float64) bool) float64 { return s.backing.MassWhere(p) }
func (s symDisc) Marginal(keep []int) Dist                 { checkKeep(keep, 1); return s }
func (s symDisc) Floor(dim int, keep region.Set) Dist      { return s.backing.Floor(dim, keep) }
func (s symDisc) FloorWhere(p func([]float64) bool) Dist   { return s.backing.FloorWhere(p) }
func (s symDisc) Support() region.Box                      { return s.backing.Support() }
func (s symDisc) Mean(dim int) float64                     { return s.backing.Mean(dim) }
func (s symDisc) Variance(dim int) float64                 { return s.backing.Variance(dim) }
func (s symDisc) Sample(r *rand.Rand) []float64            { return s.backing.Sample(r) }
func (s symDisc) String() string                           { return s.m.String() }

// Bernoulli is the distribution taking value 1 with probability P and 0
// otherwise.
type Bernoulli struct {
	P float64
}

// NewBernoulli returns a symbolic Bernoulli(p) distribution. It panics
// unless 0 <= p <= 1.
func NewBernoulli(p float64) Dist {
	if !(p >= 0 && p <= 1) {
		panic("dist: NewBernoulli requires p in [0,1]")
	}
	return newSymDisc(Bernoulli{P: p})
}

func (b Bernoulli) enumerate() []Point {
	return []Point{{X: []float64{0}, P: 1 - b.P}, {X: []float64{1}, P: b.P}}
}

func (b Bernoulli) String() string { return fmt.Sprintf("Bern(%g)", b.P) }

// Binomial is the number of successes in N independent trials of
// probability P.
type Binomial struct {
	N int
	P float64
}

// NewBinomial returns a symbolic Binomial(n, p) distribution. It panics
// unless n >= 0 and 0 <= p <= 1.
func NewBinomial(n int, p float64) Dist {
	if n < 0 || !(p >= 0 && p <= 1) {
		panic("dist: NewBinomial requires n >= 0 and p in [0,1]")
	}
	return newSymDisc(Binomial{N: n, P: p})
}

func (b Binomial) enumerate() []Point {
	pts := make([]Point, 0, b.N+1)
	for k := 0; k <= b.N; k++ {
		if p := numeric.BinomialPMF(k, b.N, b.P); p > 0 {
			pts = append(pts, Point{X: []float64{float64(k)}, P: p})
		}
	}
	return pts
}

func (b Binomial) String() string { return fmt.Sprintf("Binom(%d,%g)", b.N, b.P) }

// Poisson is the Poisson distribution with mean Lambda.
type Poisson struct {
	Lambda float64
}

// NewPoisson returns a symbolic Poisson(lambda) distribution. It panics
// unless lambda >= 0. The unbounded support is truncated where the remaining
// tail mass drops below 1e-15.
func NewPoisson(lambda float64) Dist {
	if !(lambda >= 0) {
		panic("dist: NewPoisson requires lambda >= 0")
	}
	return newSymDisc(Poisson{Lambda: lambda})
}

func (p Poisson) enumerate() []Point {
	const tail = 1e-15
	var pts []Point
	var cum numeric.KahanSum
	// Upper bound: mean + 12*sqrt(mean) + 30 comfortably covers mass 1-1e-15.
	limit := int(p.Lambda+12*math.Sqrt(p.Lambda)) + 30
	for k := 0; k <= limit; k++ {
		pm := numeric.PoissonPMF(k, p.Lambda)
		if pm > 0 {
			pts = append(pts, Point{X: []float64{float64(k)}, P: pm})
		}
		cum.Add(pm)
		if float64(k) > p.Lambda && 1-cum.Value() < tail {
			break
		}
	}
	return pts
}

func (p Poisson) String() string { return fmt.Sprintf("Poisson(%g)", p.Lambda) }

// Geometric counts failures before the first success with success
// probability P (support {0, 1, 2, ...}).
type Geometric struct {
	P float64
}

// NewGeometric returns a symbolic Geometric(p) distribution. It panics
// unless 0 < p <= 1. The unbounded support is truncated where the remaining
// tail mass drops below 1e-15.
func NewGeometric(p float64) Dist {
	if !(p > 0 && p <= 1) {
		panic("dist: NewGeometric requires p in (0,1]")
	}
	return newSymDisc(Geometric{P: p})
}

func (g Geometric) enumerate() []Point {
	const tail = 1e-15
	limit := int(math.Ceil(math.Log(tail)/math.Log1p(-g.P))) + 1
	if g.P == 1 {
		limit = 1
	}
	pts := make([]Point, 0, limit)
	for k := 0; k < limit; k++ {
		if pm := numeric.GeometricPMF(k, g.P); pm > 0 {
			pts = append(pts, Point{X: []float64{float64(k)}, P: pm})
		}
	}
	return pts
}

func (g Geometric) String() string { return fmt.Sprintf("Geom(%g)", g.P) }
