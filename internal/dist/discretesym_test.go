package dist

import (
	"math"
	"testing"

	"probdb/internal/region"
)

func TestBernoulliMoments(t *testing.T) {
	b := NewBernoulli(0.3)
	if !almostEqual(b.Mean(0), 0.3, 1e-12) {
		t.Errorf("mean = %v", b.Mean(0))
	}
	if !almostEqual(b.Variance(0), 0.21, 1e-12) {
		t.Errorf("variance = %v", b.Variance(0))
	}
	if got := b.At([]float64{1}); !almostEqual(got, 0.3, 1e-15) {
		t.Errorf("P(1) = %v", got)
	}
	if b.String() != "Bern(0.3)" {
		t.Errorf("String = %q", b.String())
	}
}

func TestBinomialMoments(t *testing.T) {
	b := NewBinomial(20, 0.4)
	if !almostEqual(b.Mean(0), 8, 1e-9) {
		t.Errorf("mean = %v", b.Mean(0))
	}
	if !almostEqual(b.Variance(0), 4.8, 1e-9) {
		t.Errorf("variance = %v", b.Variance(0))
	}
	if !almostEqual(b.Mass(), 1, 1e-12) {
		t.Errorf("mass = %v", b.Mass())
	}
}

func TestBinomialDegenerate(t *testing.T) {
	for _, p := range []float64{0, 1} {
		b := NewBinomial(5, p)
		want := 5 * p
		if !almostEqual(b.Mean(0), want, 1e-12) {
			t.Errorf("Binomial(5,%v) mean = %v", p, b.Mean(0))
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 30, 200} {
		p := NewPoisson(lambda)
		if !almostEqual(p.Mean(0), lambda, 1e-6*math.Max(1, lambda)) {
			t.Errorf("Poisson(%v) mean = %v", lambda, p.Mean(0))
		}
		if !almostEqual(p.Variance(0), lambda, 1e-5*math.Max(1, lambda)) {
			t.Errorf("Poisson(%v) variance = %v", lambda, p.Variance(0))
		}
	}
}

func TestPoissonZero(t *testing.T) {
	p := NewPoisson(0)
	if got := p.At([]float64{0}); !almostEqual(got, 1, 1e-15) {
		t.Errorf("Poisson(0) should be a point mass at 0, got P(0)=%v", got)
	}
}

func TestGeometricMoments(t *testing.T) {
	g := NewGeometric(0.25)
	// Failures-before-success parameterization: mean (1-p)/p, var (1-p)/p^2.
	if !almostEqual(g.Mean(0), 3, 1e-9) {
		t.Errorf("mean = %v", g.Mean(0))
	}
	if !almostEqual(g.Variance(0), 12, 1e-6) {
		t.Errorf("variance = %v", g.Variance(0))
	}
	one := NewGeometric(1)
	if got := one.At([]float64{0}); !almostEqual(got, 1, 1e-15) {
		t.Errorf("Geometric(1) should be a point mass at 0, got %v", got)
	}
}

func TestSymbolicDiscreteFloorDegradesToDiscrete(t *testing.T) {
	b := NewBinomial(10, 0.5)
	f := b.Floor(0, region.Compare(region.GE, 5))
	if _, ok := f.(*Discrete); !ok {
		t.Fatalf("floored symbolic discrete should be *Discrete, got %T", f)
	}
	// Mass above the median cut: P[X >= 5] for Binomial(10, 0.5).
	want := 0.0
	for k := 5; k <= 10; k++ {
		want += b.At([]float64{float64(k)})
	}
	if !almostEqual(f.Mass(), want, 1e-12) {
		t.Errorf("floored mass = %v, want %v", f.Mass(), want)
	}
}

func TestSymbolicDiscreteConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewBernoulli(-0.1) },
		func() { NewBernoulli(1.1) },
		func() { NewBinomial(-1, 0.5) },
		func() { NewBinomial(5, 2) },
		func() { NewPoisson(-1) },
		func() { NewGeometric(0) },
		func() { NewGeometric(1.5) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestKindOf(t *testing.T) {
	if KindOf(NewGaussian(0, 1)) != KindContinuous {
		t.Error("gaussian should be continuous")
	}
	if KindOf(NewBernoulli(0.5)) != KindDiscrete {
		t.Error("bernoulli should be discrete")
	}
	mixed := ProductOf(NewGaussian(0, 1), NewBernoulli(0.5))
	if KindOf(mixed) != KindMixed {
		t.Error("gaussian x bernoulli should be mixed")
	}
}
