// Package dist implements the probability-distribution layer of the model in
// "Database Support for Probabilistic Attributes and Tuples" (ICDE 2008).
//
// A Dist is a possibly-partial, possibly-joint probability distribution over
// k real dimensions. "Partial" (§II-B of the paper) means the total mass may
// be below 1: under the closed-world reading, 1−Mass() is the probability
// that the owning tuple does not exist at all. The package provides
//
//   - symbolic continuous distributions (Gaussian, Uniform, Exponential,
//     Triangular) stored in closed form,
//   - symbolic discrete distributions (Bernoulli, Binomial, Poisson,
//     Geometric),
//   - the generic fallbacks of §II-A: Discrete (value–probability pairs,
//     any dimensionality) and Grid (a kind-aware k-dimensional histogram),
//   - the Floored wrapper implementing the paper's symbolic floors
//     ("[Gaus(5,1), Floor{[5,∞]}]"), and
//   - the pdf primitives of §III-A: Marginal (marginalize), Floor /
//     FloorWhere (floor), and ProductOf (product of independent pdfs).
//
// History-aware products — the dependent case of §III-A — are the job of the
// model layer (internal/core), which decides *which* pdfs to multiply; this
// package only ever multiplies distributions the caller asserts independent.
package dist

import (
	"fmt"
	"math/rand"

	"probdb/internal/region"
)

// Kind classifies a distribution dimension as carrying a density
// (Continuous) or point masses (Discrete). A joint whose dimensions differ
// is Mixed.
type Kind int

// Distribution kinds.
const (
	KindContinuous Kind = iota
	KindDiscrete
	KindMixed
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindContinuous:
		return "continuous"
	case KindDiscrete:
		return "discrete"
	case KindMixed:
		return "mixed"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dist is a possibly-partial joint pdf over Dim() dimensions. All
// distributions are immutable: mutating operations return new values.
//
// Mean, Variance and Sample are defined *conditionally on existence*, i.e.
// with respect to the distribution normalized to total mass 1; Mass reports
// the unnormalized total. At returns the joint density at x for continuous
// dimensions and the point mass for discrete ones (for mixed joints, the
// product of the two interpretations).
type Dist interface {
	// Dim returns the number of dimensions.
	Dim() int
	// DimKind returns the kind of dimension i.
	DimKind(i int) Kind
	// Mass returns the total probability mass, in [0, 1].
	Mass() float64
	// At evaluates the density / point mass at x (len(x) == Dim()).
	At(x []float64) float64
	// MassIn returns the mass inside the axis-aligned box b.
	MassIn(b region.Box) float64
	// MassWhere returns the mass of the region where pred holds. For
	// continuous dimensions the result may be a controlled approximation
	// (see Options).
	MassWhere(pred func(x []float64) bool) float64
	// Marginal integrates out all dimensions not listed in keep, returning
	// a distribution over the kept dimensions in the given order. The mass
	// of the result equals the mass of the receiver (marginalization of a
	// partial pdf preserves existence probability). keep must be non-empty
	// and contain valid, distinct dimensions.
	Marginal(keep []int) Dist
	// Floor zeroes the distribution outside keep along dimension dim — the
	// paper's floor operation for a rectangular region. Symbolic continuous
	// distributions stay symbolic (a Floored wrapper); generic ones apply
	// the floor eagerly and exactly.
	Floor(dim int, keep region.Set) Dist
	// FloorWhere zeroes the distribution where pred is false. For
	// non-rectangular predicates over continuous dimensions the result is a
	// Grid approximation (see Options).
	FloorWhere(pred func(x []float64) bool) Dist
	// Support returns a bounding box of the support. Unbounded symbolic
	// supports are truncated at negligible tail mass (Options.TailEps).
	Support() region.Box
	// Mean returns the conditional mean of dimension dim.
	Mean(dim int) float64
	// Variance returns the conditional variance of dimension dim.
	Variance(dim int) float64
	// Sample draws a point conditional on existence. It panics on
	// zero-mass distributions.
	Sample(r *rand.Rand) []float64

	fmt.Stringer
}

// KindOf returns the overall kind of d: the common dimension kind, or Mixed.
func KindOf(d Dist) Kind {
	k := d.DimKind(0)
	for i := 1; i < d.Dim(); i++ {
		if d.DimKind(i) != k {
			return KindMixed
		}
	}
	return k
}

// Options tunes the approximation knobs used when symbolic or factored
// representations must be collapsed to generic ones.
type Options struct {
	// GridBins is the number of histogram cells per continuous dimension
	// when collapsing to a Grid.
	GridBins int
	// TailEps is the tail mass cut off on each side when truncating an
	// unbounded support to a finite box.
	TailEps float64
	// CellSamples is the per-dimension subsample count used to estimate the
	// satisfied fraction of a grid cell under a non-rectangular predicate.
	CellSamples int
	// MaxDiscreteCells caps the size of exact discrete cross products; above
	// the cap ProductOf falls back to a Grid.
	MaxDiscreteCells int
}

// DefaultOptions are the package-wide defaults, chosen to keep collapse
// errors well below the approximation errors the paper itself tolerates for
// its generic representations.
var DefaultOptions = Options{
	GridBins:         32,
	TailEps:          1e-9,
	CellSamples:      4,
	MaxDiscreteCells: 1 << 20,
}

func (o Options) normalized() Options {
	d := DefaultOptions
	if o.GridBins <= 0 {
		o.GridBins = d.GridBins
	}
	if o.TailEps <= 0 {
		o.TailEps = d.TailEps
	}
	if o.CellSamples <= 0 {
		o.CellSamples = d.CellSamples
	}
	if o.MaxDiscreteCells <= 0 {
		o.MaxDiscreteCells = d.MaxDiscreteCells
	}
	return o
}

// checkDim panics unless 0 <= i < n.
func checkDim(i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("dist: dimension %d out of range [0,%d)", i, n))
	}
}

// checkKeep validates a Marginal keep list against dimensionality n.
func checkKeep(keep []int, n int) {
	if len(keep) == 0 {
		panic("dist: Marginal requires at least one kept dimension")
	}
	seen := make(map[int]bool, len(keep))
	for _, k := range keep {
		checkDim(k, n)
		if seen[k] {
			panic(fmt.Sprintf("dist: duplicate dimension %d in Marginal", k))
		}
		seen[k] = true
	}
}

// identityKeep reports whether keep is exactly [0, 1, ..., n-1].
func identityKeep(keep []int, n int) bool {
	if len(keep) != n {
		return false
	}
	for i, k := range keep {
		if k != i {
			return false
		}
	}
	return true
}

// CDF returns the mass of d at or below x along its single dimension. It
// panics unless d is one-dimensional.
func CDF(d Dist, x float64) float64 {
	if d.Dim() != 1 {
		panic("dist: CDF requires a one-dimensional distribution")
	}
	return d.MassIn(region.Box{region.Below(x, false)})
}

// MassInterval returns the mass of the 1-D distribution d inside [lo, hi].
func MassInterval(d Dist, lo, hi float64) float64 {
	if d.Dim() != 1 {
		panic("dist: MassInterval requires a one-dimensional distribution")
	}
	return d.MassIn(region.Box{region.Closed(lo, hi)})
}

// MassInSet returns the mass of the 1-D distribution d inside the region s.
func MassInSet(d Dist, s region.Set) float64 {
	if d.Dim() != 1 {
		panic("dist: MassInSet requires a one-dimensional distribution")
	}
	var total float64
	for _, iv := range s.Intervals() {
		total += d.MassIn(region.Box{iv})
	}
	if total > 1 {
		total = 1
	}
	return total
}
