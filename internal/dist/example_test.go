package dist_test

import (
	"fmt"

	"probdb/internal/dist"
	"probdb/internal/region"
)

// Example shows the paper's symbolic floor: selecting x < 5 on Gaus(5,1)
// keeps the closed form and records the floored region.
func Example() {
	g := dist.NewGaussianVar(5, 1)
	f := g.Floor(0, region.Compare(region.LT, 5))
	fmt.Println(f)
	fmt.Printf("mass = %.2f\n", f.Mass())
	// Output:
	// [Gaus(5,1), Floor{[5, +Inf)}]
	// mass = 0.50
}

// ExampleProductOf multiplies independent pdfs into a factored joint —
// the product primitive of §III-A.
func ExampleProductOf() {
	joint := dist.ProductOf(dist.NewGaussian(0, 1), dist.NewUniform(0, 10))
	fmt.Println(joint)
	fmt.Printf("P(x<0, y<5) = %.2f\n", joint.MassIn(region.Box{
		region.Below(0, true), region.Below(5, true),
	}))
	// Output:
	// Gaus(0,1) ⊗ Unif(0,10)
	// P(x<0, y<5) = 0.25
}

// ExampleDiscretize builds the paper's two generic approximations of a
// symbolic pdf and compares their sizes on the wire.
func ExampleDiscretize() {
	g := dist.NewGaussian(50, 2)
	fmt.Printf("symbolic: %d bytes\n", dist.EncodedSize(g))
	fmt.Printf("hist5:    %d bytes\n", dist.EncodedSize(dist.ToHistogram(g, 5)))
	fmt.Printf("disc25:   %d bytes\n", dist.EncodedSize(dist.Discretize(g, 25)))
	// Output:
	// symbolic: 17 bytes
	// hist5:    92 bytes
	// disc25:   403 bytes
}
