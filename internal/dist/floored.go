package dist

import (
	"fmt"
	"math"
	"math/rand"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

// Floored is a symbolic floor (§III-A): a closed-form continuous
// distribution with the regions outside keep zeroed out, *without*
// flattening to a histogram. The paper writes the result of applying the
// predicate x < 5 to Gaus(5,1) as "[Gaus(5,1), Floor{[5,∞]}]"; here the same
// value is a Floored with base Gaus(5,1) and keep = (-∞, 5).
//
// A Floored is in general a partial pdf: its mass is the base mass inside
// keep, and 1−mass is the probability the owning tuple ceased to exist under
// the selection that produced the floor.
type Floored struct {
	m    contModel
	keep region.Set
	mass float64
}

var _ Dist = Floored{}

// newFloored builds a Floored over m keeping only keep, simplifying to the
// plain symbolic distribution when the floor is trivial.
func newFloored(m contModel, keep region.Set) Dist {
	if keep.IsFull() {
		return symCont{m}
	}
	var mass numeric.KahanSum
	for _, iv := range keep.Intervals() {
		mass.Add(intervalMassCont(m, iv))
	}
	return Floored{m: m, keep: keep, mass: numeric.Clamp01(mass.Value())}
}

// Keep returns the kept (non-floored) region.
func (f Floored) Keep() region.Set { return f.keep }

// Base returns the underlying unfloored symbolic distribution.
func (f Floored) Base() Dist { return symCont{f.m} }

func (f Floored) Dim() int           { return 1 }
func (f Floored) DimKind(i int) Kind { checkDim(i, 1); return KindContinuous }
func (f Floored) Mass() float64      { return f.mass }

func (f Floored) At(x []float64) float64 {
	if !f.keep.Contains(x[0]) {
		return 0
	}
	return f.m.pdf(x[0])
}

func (f Floored) MassIn(b region.Box) float64 {
	if len(b) != 1 {
		panic("dist: MassIn box dimensionality mismatch")
	}
	var mass numeric.KahanSum
	for _, iv := range f.keep.Intervals() {
		mass.Add(intervalMassCont(f.m, iv.Intersect(b[0])))
	}
	return numeric.Clamp01(mass.Value())
}

func (f Floored) MassWhere(pred func([]float64) bool) float64 {
	return Collapse(f, DefaultOptions).MassWhere(pred)
}

func (f Floored) Marginal(keep []int) Dist {
	checkKeep(keep, 1)
	return f
}

// Floor composes floors symbolically: successive floors intersect their kept
// regions, so they commute exactly as §III-A requires ("the result would be
// floor(f, F1 ∪ ... ∪ Fk) regardless of the order").
func (f Floored) Floor(dim int, keep region.Set) Dist {
	checkDim(dim, 1)
	return newFloored(f.m, f.keep.Intersect(keep))
}

func (f Floored) FloorWhere(pred func([]float64) bool) Dist {
	return Collapse(f, DefaultOptions).FloorWhere(pred)
}

func (f Floored) Support() region.Box {
	base := truncatedSupport(f.m, DefaultOptions.TailEps)
	ivs := f.keep.Intervals()
	if len(ivs) == 0 {
		return region.Box{region.Point(f.m.mean())} // zero-mass: degenerate box
	}
	lo, hi := ivs[0].Lo, ivs[len(ivs)-1].Hi
	// Infinite keep endpoints clip to the truncated base support. Finite
	// ones stand: the density is positive everywhere inside keep, even when
	// keep lies beyond the base's negligible-tail cutoff (the remaining
	// conditional mass lives exactly there).
	if math.IsInf(lo, -1) {
		lo = base.Lo
	}
	if math.IsInf(hi, 1) {
		hi = base.Hi
	}
	// Shrink toward the bulk when the keep region and the base bulk
	// overlap; a keep region entirely in a far tail keeps its own bounds.
	if clipLo, clipHi := math.Max(lo, base.Lo), math.Min(hi, base.Hi); clipLo <= clipHi {
		lo, hi = clipLo, clipHi
	}
	if lo > hi {
		lo, hi = base.Lo, base.Hi
	}
	return region.Box{region.Closed(lo, hi)}
}

// Mean returns the conditional mean given existence, integrating the base
// density over the kept regions. The result is clamped into the support
// hull: for kept regions so deep in a tail that the CDF saturates in double
// precision (conditional mass ~1e-16), the integral degrades gracefully to
// the nearest support edge instead of drifting outside it.
func (f Floored) Mean(dim int) float64 {
	checkDim(dim, 1)
	m := f.moment(func(x float64) float64 { return x })
	sup := f.Support()[0]
	if m < sup.Lo {
		m = sup.Lo
	}
	if m > sup.Hi {
		m = sup.Hi
	}
	return m
}

func (f Floored) Variance(dim int) float64 {
	checkDim(dim, 1)
	mu := f.Mean(0)
	return f.moment(func(x float64) float64 { d := x - mu; return d * d })
}

// moment integrates g(x)·pdf(x) over the kept region and normalizes by
// mass. The integration runs in CDF space — substituting u = F(x) turns
// ∫ g(x)·f(x) dx into ∫ g(F⁻¹(u)) du — so the integrand stays O(g) even
// when the kept region sits in a far tail where the density underflows;
// that is exactly where all of the conditional mass lives.
func (f Floored) moment(g func(float64) float64) float64 {
	if f.mass == 0 {
		return math.NaN()
	}
	var s numeric.KahanSum
	for _, iv := range f.keep.Intervals() {
		uLo, uHi := 0.0, 1.0
		if !math.IsInf(iv.Lo, -1) {
			uLo = f.m.cdf(iv.Lo)
		}
		if !math.IsInf(iv.Hi, 1) {
			uHi = f.m.cdf(iv.Hi)
		}
		if uHi <= uLo {
			continue
		}
		s.Add(numeric.Integrate(func(u float64) float64 {
			if u <= 0 {
				u = math.SmallestNonzeroFloat64
			}
			if u >= 1 {
				u = 1 - 1e-16
			}
			return g(f.m.quantile(u))
		}, uLo, uHi, 1e-12*math.Max(uHi-uLo, 1e-6)))
	}
	return s.Value() / f.mass
}

// Sample draws from the floored distribution conditional on existence, by
// inverse-CDF restricted to the kept regions. It panics on zero mass.
func (f Floored) Sample(r *rand.Rand) []float64 {
	if f.mass <= 0 {
		panic("dist: Sample of zero-mass Floored distribution")
	}
	u := r.Float64() * f.mass
	for _, iv := range f.keep.Intervals() {
		m := intervalMassCont(f.m, iv)
		if u > m {
			u -= m
			continue
		}
		var base float64
		if !math.IsInf(iv.Lo, -1) {
			base = f.m.cdf(iv.Lo)
		}
		p := base + u
		if p <= 0 {
			p = math.SmallestNonzeroFloat64
		}
		if p >= 1 {
			p = 1 - 1e-16
		}
		return []float64{f.m.quantile(p)}
	}
	// Floating point slack pushed u past the last interval; sample its top.
	ivs := f.keep.Intervals()
	last := ivs[len(ivs)-1]
	hi := last.Hi
	if math.IsInf(hi, 1) {
		hi = f.m.quantile(1 - 1e-12)
	}
	return []float64{hi}
}

func (f Floored) String() string {
	return fmt.Sprintf("[%s, Floor{%s}]", f.m.String(), f.keep.Complement().String())
}
