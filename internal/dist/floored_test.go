package dist

import (
	"math"
	"math/rand"
	"testing"

	"probdb/internal/region"
)

func TestFlooredPaperExample(t *testing.T) {
	// §III-A: Gaus(5,1) with predicate x < 5 keeps mass 0.5 and is written
	// [Gaus(5,1), Floor{[5, +Inf]}].
	g := NewGaussianVar(5, 1)
	f := g.Floor(0, region.Compare(region.LT, 5))
	fl, ok := f.(Floored)
	if !ok {
		t.Fatalf("floor of symbolic gaussian should stay symbolic, got %T", f)
	}
	if !almostEqual(fl.Mass(), 0.5, 1e-12) {
		t.Errorf("mass = %v, want 0.5", fl.Mass())
	}
	if fl.At([]float64{6}) != 0 {
		t.Error("density above the floor must be 0")
	}
	if got, want := fl.At([]float64{4}), g.At([]float64{4}); !almostEqual(got, want, 1e-15) {
		t.Errorf("density below floor = %v, want base %v", got, want)
	}
	if got := fl.String(); got != "[Gaus(5,1), Floor{[5, +Inf)}]" {
		t.Errorf("String = %q", got)
	}
}

func TestFlooredComposeOrderIndependent(t *testing.T) {
	// §III-A: multiple floors can be applied in any order.
	g := NewGaussian(0, 1)
	a := region.Compare(region.GT, -1)
	b := region.Compare(region.LT, 1.5)
	ab := g.Floor(0, a).Floor(0, b)
	ba := g.Floor(0, b).Floor(0, a)
	direct := g.Floor(0, a.Intersect(b))
	for _, x := range []float64{-2, -1, 0, 1, 1.5, 2} {
		p := []float64{x}
		if ab.At(p) != ba.At(p) || ab.At(p) != direct.At(p) {
			t.Errorf("floor order changed density at %v", x)
		}
	}
	if !almostEqual(ab.Mass(), ba.Mass(), 1e-15) || !almostEqual(ab.Mass(), direct.Mass(), 1e-15) {
		t.Errorf("floor order changed mass: %v %v %v", ab.Mass(), ba.Mass(), direct.Mass())
	}
}

func TestFlooredMassIn(t *testing.T) {
	g := NewGaussian(0, 1)
	f := g.Floor(0, region.Compare(region.GT, 0))
	// Mass in [-1, 1] of the floored pdf is mass of base in (0, 1].
	want := MassInterval(g, 0, 1)
	if got := MassInterval(f, -1, 1); !almostEqual(got, want, 1e-12) {
		t.Errorf("MassIn = %v, want %v", got, want)
	}
}

func TestFlooredDisjointRegions(t *testing.T) {
	g := NewGaussian(0, 1)
	keep := region.NewSet(region.Closed(-2, -1), region.Closed(1, 2))
	f := g.Floor(0, keep)
	want := MassInterval(g, -2, -1) + MassInterval(g, 1, 2)
	if !almostEqual(f.Mass(), want, 1e-12) {
		t.Errorf("mass = %v, want %v", f.Mass(), want)
	}
	if f.At([]float64{0}) != 0 {
		t.Error("gap between kept regions must have zero density")
	}
}

func TestFlooredHalfNormalMean(t *testing.T) {
	// For N(0,1) floored to x > 0, the conditional mean is sqrt(2/pi).
	g := NewGaussian(0, 1)
	f := g.Floor(0, region.Compare(region.GT, 0))
	want := math.Sqrt(2 / math.Pi)
	// Tolerance reflects the 1e-9 tail truncation of the support.
	if got := f.Mean(0); !almostEqual(got, want, 1e-6) {
		t.Errorf("half-normal mean = %v, want %v", got, want)
	}
	// Conditional variance of half-normal is 1 - 2/pi.
	if got := f.Variance(0); !almostEqual(got, 1-2/math.Pi, 1e-6) {
		t.Errorf("half-normal variance = %v, want %v", got, 1-2/math.Pi)
	}
}

func TestFlooredSampleStaysInKeep(t *testing.T) {
	g := NewGaussian(0, 1)
	keep := region.NewSet(region.Closed(-2, -0.5), region.Closed(0.5, 2))
	f := g.Floor(0, keep)
	r := rand.New(rand.NewSource(1))
	var nLeft int
	const n = 50_000
	for i := 0; i < n; i++ {
		x := f.Sample(r)[0]
		if !keep.Contains(x) {
			t.Fatalf("sample %v outside kept region", x)
		}
		if x < 0 {
			nLeft++
		}
	}
	// Both sides have equal base mass, so the split should be ~50/50.
	if frac := float64(nLeft) / n; !almostEqual(frac, 0.5, 0.02) {
		t.Errorf("left fraction = %v, want ~0.5", frac)
	}
}

func TestFlooredFullKeepSimplifies(t *testing.T) {
	g := NewGaussian(0, 1)
	if _, ok := g.Floor(0, region.Full).(symCont); !ok {
		t.Error("flooring with the full region should return the plain symbolic distribution")
	}
}

func TestFlooredZeroMass(t *testing.T) {
	u := NewUniform(0, 1)
	f := u.Floor(0, region.Compare(region.GT, 5))
	if f.Mass() != 0 {
		t.Errorf("mass = %v, want 0", f.Mass())
	}
	defer func() {
		if recover() == nil {
			t.Error("sampling a zero-mass distribution should panic")
		}
	}()
	f.Sample(rand.New(rand.NewSource(1)))
}

func TestFlooredUniformExact(t *testing.T) {
	u := NewUniform(0, 10)
	f := u.Floor(0, region.Compare(region.LE, 4))
	if !almostEqual(f.Mass(), 0.4, 1e-12) {
		t.Errorf("mass = %v, want 0.4", f.Mass())
	}
	if got := f.(Floored).Mean(0); !almostEqual(got, 2, 1e-9) {
		t.Errorf("conditional mean = %v, want 2", got)
	}
}

func TestFlooredKeepAndBaseAccessors(t *testing.T) {
	g := NewGaussian(0, 1)
	keep := region.Compare(region.LT, 0)
	f := g.Floor(0, keep).(Floored)
	if !f.Keep().Equal(keep) {
		t.Error("Keep accessor mismatch")
	}
	if f.Base().String() != g.String() {
		t.Error("Base accessor mismatch")
	}
}
