package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

// Axis describes one dimension of a Grid: either a continuous bucketing
// (Edges, one more entry than cells, strictly increasing — the paper's
// histogram buckets) or an explicit list of discrete point values (Values,
// strictly increasing).
type Axis struct {
	Kind   Kind
	Edges  []float64 // Continuous axes: cell i spans [Edges[i], Edges[i+1])
	Values []float64 // Discrete axes: cell i is the point Values[i]
}

// Cells returns the number of cells along the axis.
func (a Axis) Cells() int {
	if a.Kind == KindContinuous {
		return len(a.Edges) - 1
	}
	return len(a.Values)
}

// locate returns the cell index containing x, or -1 when x is outside the
// axis. The last continuous cell is closed on both sides.
func (a Axis) locate(x float64) int {
	if a.Kind == KindContinuous {
		if x < a.Edges[0] || x > a.Edges[len(a.Edges)-1] {
			return -1
		}
		i := sort.SearchFloat64s(a.Edges, x) // first edge >= x
		if i < len(a.Edges) && a.Edges[i] == x {
			if i == len(a.Edges)-1 {
				return i - 1 // top edge belongs to the last cell
			}
			return i
		}
		return i - 1
	}
	i := sort.SearchFloat64s(a.Values, x)
	if i < len(a.Values) && a.Values[i] == x {
		return i
	}
	return -1
}

// width returns the width of cell i (0 for discrete axes).
func (a Axis) width(i int) float64 {
	if a.Kind == KindContinuous {
		return a.Edges[i+1] - a.Edges[i]
	}
	return 0
}

// center returns the representative coordinate of cell i.
func (a Axis) center(i int) float64 {
	if a.Kind == KindContinuous {
		return (a.Edges[i] + a.Edges[i+1]) / 2
	}
	return a.Values[i]
}

func (a Axis) validate() error {
	switch a.Kind {
	case KindContinuous:
		if len(a.Edges) < 2 {
			return fmt.Errorf("continuous axis needs at least 2 edges")
		}
		for i := 1; i < len(a.Edges); i++ {
			if !(a.Edges[i] > a.Edges[i-1]) {
				return fmt.Errorf("axis edges not strictly increasing at %d", i)
			}
		}
		if math.IsInf(a.Edges[0], 0) || math.IsInf(a.Edges[len(a.Edges)-1], 0) {
			return fmt.Errorf("axis edges must be finite")
		}
	case KindDiscrete:
		if len(a.Values) == 0 {
			return fmt.Errorf("discrete axis needs at least one value")
		}
		for i, v := range a.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("axis value must be finite")
			}
			if i > 0 && !(v > a.Values[i-1]) {
				return fmt.Errorf("axis values not strictly increasing at %d", i)
			}
		}
	default:
		return fmt.Errorf("axis kind must be Continuous or Discrete")
	}
	return nil
}

// Grid is a k-dimensional, kind-aware histogram storing probability mass per
// cell. It is the generic representation every other distribution collapses
// to when an operation leaves its closed-form family: the paper's Histogram
// for continuous data, and the exact product space for mixed
// discrete×continuous joints. Weights are mass (not density); At converts to
// density across the continuous dimensions of a cell.
type Grid struct {
	axes []Axis
	w    []float64 // row-major cell masses
	cum  []float64 // cumulative masses for sampling
	mass float64
}

var _ Dist = (*Grid)(nil)

// NewGrid builds a grid over the given axes with the given per-cell masses
// in row-major order (last axis fastest). It panics on malformed axes,
// negative weights, weight-count mismatch, or total mass beyond 1.
func NewGrid(axes []Axis, weights []float64) *Grid {
	if len(axes) == 0 {
		panic("dist: NewGrid requires at least one axis")
	}
	n := 1
	for _, a := range axes {
		if err := a.validate(); err != nil {
			panic("dist: " + err.Error())
		}
		n *= a.Cells()
	}
	if len(weights) != n {
		panic(fmt.Sprintf("dist: NewGrid expects %d weights, got %d", n, len(weights)))
	}
	w := make([]float64, n)
	cum := make([]float64, n)
	var mass numeric.KahanSum
	for i, v := range weights {
		if v < 0 {
			if v > -1e-12 { // tolerate tiny negative float drift
				v = 0
			} else {
				panic("dist: negative grid weight")
			}
		}
		w[i] = v
		mass.Add(v)
		cum[i] = mass.Value()
	}
	total := mass.Value()
	if total > 1+1e-9 {
		panic(fmt.Sprintf("dist: grid mass %v exceeds 1", total))
	}
	ax := make([]Axis, len(axes))
	copy(ax, axes)
	return &Grid{axes: ax, w: w, cum: cum, mass: numeric.Clamp01(total)}
}

// NewHistogram builds the paper's 1-D histogram representation: bucket
// boundaries in edges and probability mass per bucket.
func NewHistogram(edges, masses []float64) *Grid {
	return NewGrid([]Axis{{Kind: KindContinuous, Edges: edges}}, masses)
}

// NewHistogramDensity builds a 1-D histogram from per-bucket densities
// (mass = density × width), the form in which the paper stores Hist pdfs.
func NewHistogramDensity(edges, densities []float64) *Grid {
	if len(densities) != len(edges)-1 {
		panic("dist: NewHistogramDensity expects len(edges)-1 densities")
	}
	masses := make([]float64, len(densities))
	for i, d := range densities {
		masses[i] = d * (edges[i+1] - edges[i])
	}
	return NewHistogram(edges, masses)
}

// Axes returns the grid's axes. The returned slice must not be modified.
func (g *Grid) Axes() []Axis { return g.axes }

// Weights returns the per-cell masses in row-major order. The returned
// slice must not be modified.
func (g *Grid) Weights() []float64 { return g.w }

func (g *Grid) Dim() int { return len(g.axes) }

func (g *Grid) DimKind(i int) Kind {
	checkDim(i, len(g.axes))
	return g.axes[i].Kind
}

func (g *Grid) Mass() float64 { return g.mass }

// eachCell invokes fn for every cell with its flat index and per-axis
// indices. idx is reused between calls.
func (g *Grid) eachCell(fn func(flat int, idx []int)) {
	idx := make([]int, len(g.axes))
	for flat := range g.w {
		fn(flat, idx)
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < g.axes[d].Cells() {
				break
			}
			idx[d] = 0
		}
	}
}

func (g *Grid) At(x []float64) float64 {
	if len(x) != len(g.axes) {
		panic("dist: At dimensionality mismatch")
	}
	flat := 0
	vol := 1.0
	for d, a := range g.axes {
		i := a.locate(x[d])
		if i < 0 {
			return 0
		}
		flat = flat*a.Cells() + i
		if a.Kind == KindContinuous {
			vol *= a.width(i)
		}
	}
	return g.w[flat] / vol
}

func (g *Grid) MassIn(b region.Box) float64 {
	if len(b) != len(g.axes) {
		panic("dist: MassIn box dimensionality mismatch")
	}
	// Per-axis inclusion fraction of every cell.
	fr := make([][]float64, len(g.axes))
	for d, a := range g.axes {
		fr[d] = make([]float64, a.Cells())
		for i := range fr[d] {
			fr[d][i] = cellFraction(a, i, b[d])
		}
	}
	var s numeric.KahanSum
	g.eachCell(func(flat int, idx []int) {
		if g.w[flat] == 0 {
			return
		}
		f := g.w[flat]
		for d := range idx {
			f *= fr[d][idx[d]]
			if f == 0 {
				return
			}
		}
		s.Add(f)
	})
	return numeric.Clamp01(s.Value())
}

// cellFraction returns the fraction of cell i of axis a lying inside iv
// (mass is uniform within a continuous cell, so length fraction = mass
// fraction).
func cellFraction(a Axis, i int, iv region.Interval) float64 {
	if a.Kind == KindDiscrete {
		if iv.Contains(a.Values[i]) {
			return 1
		}
		return 0
	}
	lo, hi := a.Edges[i], a.Edges[i+1]
	clipLo, clipHi := math.Max(lo, iv.Lo), math.Min(hi, iv.Hi)
	if clipHi <= clipLo {
		return 0
	}
	return (clipHi - clipLo) / (hi - lo)
}

func (g *Grid) MassWhere(pred func([]float64) bool) float64 {
	var s numeric.KahanSum
	x := make([]float64, len(g.axes))
	g.eachCell(func(flat int, idx []int) {
		if g.w[flat] == 0 {
			return
		}
		s.Add(g.w[flat] * g.cellSatisfiedFraction(idx, x, pred))
	})
	return numeric.Clamp01(s.Value())
}

// cellSatisfiedFraction estimates the fraction of a cell's mass where pred
// holds: exact for all-discrete cells, a CellSamples^k midpoint subsample
// across the continuous dimensions otherwise. x is scratch space.
func (g *Grid) cellSatisfiedFraction(idx []int, x []float64, pred func([]float64) bool) float64 {
	contDims := make([]int, 0, len(g.axes))
	for d, a := range g.axes {
		if a.Kind == KindContinuous {
			contDims = append(contDims, d)
		} else {
			x[d] = a.Values[idx[d]]
		}
	}
	if len(contDims) == 0 {
		if pred(x) {
			return 1
		}
		return 0
	}
	n := DefaultOptions.CellSamples
	total := 1
	for range contDims {
		total *= n
	}
	sub := make([]int, len(contDims))
	hit := 0
	for c := 0; c < total; c++ {
		for j, d := range contDims {
			a := g.axes[d]
			lo := a.Edges[idx[d]]
			w := a.width(idx[d])
			x[d] = lo + (float64(sub[j])+0.5)/float64(n)*w
		}
		if pred(x) {
			hit++
		}
		for j := len(sub) - 1; j >= 0; j-- {
			sub[j]++
			if sub[j] < n {
				break
			}
			sub[j] = 0
		}
	}
	return float64(hit) / float64(total)
}

func (g *Grid) Marginal(keep []int) Dist {
	checkKeep(keep, len(g.axes))
	if identityKeep(keep, len(g.axes)) {
		return g
	}
	axes := make([]Axis, len(keep))
	for j, k := range keep {
		axes[j] = g.axes[k]
	}
	n := 1
	for _, a := range axes {
		n *= a.Cells()
	}
	w := make([]float64, n)
	g.eachCell(func(flat int, idx []int) {
		if g.w[flat] == 0 {
			return
		}
		out := 0
		for _, k := range keep {
			out = out*g.axes[k].Cells() + idx[k]
		}
		w[out] += g.w[flat]
	})
	return NewGrid(axes, w)
}

// Floor applies a rectangular floor along one dimension. Continuous axes
// are refined at the region boundaries first, so the result is exact (each
// refined cell lies entirely inside or outside keep).
func (g *Grid) Floor(dim int, keep region.Set) Dist {
	checkDim(dim, len(g.axes))
	ref := g
	if g.axes[dim].Kind == KindContinuous {
		cuts := boundaryPoints(keep, g.axes[dim].Edges[0], g.axes[dim].Edges[len(g.axes[dim].Edges)-1])
		ref = g.refineAxis(dim, cuts)
	}
	a := ref.axes[dim]
	zero := make([]bool, a.Cells())
	for i := range zero {
		if a.Kind == KindDiscrete {
			zero[i] = !keep.Contains(a.Values[i])
		} else {
			// Test the midpoint: after refinement no region boundary lies
			// strictly inside the cell.
			zero[i] = !keep.Contains(a.center(i))
		}
	}
	w := make([]float64, len(ref.w))
	copy(w, ref.w)
	ref.eachCell(func(flat int, idx []int) {
		if zero[idx[dim]] {
			w[flat] = 0
		}
	})
	return NewGrid(ref.axes, w)
}

// boundaryPoints collects the finite region endpoints inside (lo, hi).
func boundaryPoints(s region.Set, lo, hi float64) []float64 {
	var pts []float64
	for _, iv := range s.Intervals() {
		for _, v := range [2]float64{iv.Lo, iv.Hi} {
			if v > lo && v < hi && !math.IsInf(v, 0) {
				pts = append(pts, v)
			}
		}
	}
	sort.Float64s(pts)
	return pts
}

// refineAxis splits the cells of a continuous axis at the given cut points,
// distributing mass proportionally to sub-width.
func (g *Grid) refineAxis(dim int, cuts []float64) *Grid {
	if len(cuts) == 0 {
		return g
	}
	old := g.axes[dim]
	edges := make([]float64, 0, len(old.Edges)+len(cuts))
	edges = append(edges, old.Edges...)
	edges = append(edges, cuts...)
	sort.Float64s(edges)
	// Dedupe.
	uniq := edges[:1]
	for _, e := range edges[1:] {
		if e != uniq[len(uniq)-1] {
			uniq = append(uniq, e)
		}
	}
	newAxis := Axis{Kind: KindContinuous, Edges: uniq}
	// Map new cells to old cells and width fractions.
	oldIdx := make([]int, newAxis.Cells())
	frac := make([]float64, newAxis.Cells())
	for i := 0; i < newAxis.Cells(); i++ {
		mid := newAxis.center(i)
		oi := old.locate(mid)
		oldIdx[i] = oi
		frac[i] = newAxis.width(i) / old.width(oi)
	}
	axes := make([]Axis, len(g.axes))
	copy(axes, g.axes)
	axes[dim] = newAxis
	n := 1
	for _, a := range axes {
		n *= a.Cells()
	}
	w := make([]float64, n)
	strideNew := make([]int, len(axes))
	acc := 1
	for i := len(axes) - 1; i >= 0; i-- {
		strideNew[i] = acc
		acc *= axes[i].Cells()
	}
	g.eachCell(func(flat int, idx []int) {
		if g.w[flat] == 0 {
			return
		}
		// Distribute this old cell's mass across the new cells along dim.
		baseFlat := 0
		for d := range idx {
			if d != dim {
				baseFlat += idx[d] * strideNew[d]
			}
		}
		for ni := 0; ni < newAxis.Cells(); ni++ {
			if oldIdx[ni] != idx[dim] {
				continue
			}
			w[baseFlat+ni*strideNew[dim]] += g.w[flat] * frac[ni]
		}
	})
	return NewGrid(axes, w)
}

// FloorWhere scales each cell's mass by the fraction of the cell satisfying
// pred (exact for all-discrete cells, subsampled otherwise). The axes are
// unchanged.
func (g *Grid) FloorWhere(pred func([]float64) bool) Dist {
	w := make([]float64, len(g.w))
	x := make([]float64, len(g.axes))
	g.eachCell(func(flat int, idx []int) {
		if g.w[flat] == 0 {
			return
		}
		w[flat] = g.w[flat] * g.cellSatisfiedFraction(idx, x, pred)
	})
	return NewGrid(g.axes, w)
}

func (g *Grid) Support() region.Box {
	b := make(region.Box, len(g.axes))
	for d, a := range g.axes {
		if a.Kind == KindContinuous {
			b[d] = region.Closed(a.Edges[0], a.Edges[len(a.Edges)-1])
		} else {
			b[d] = region.Closed(a.Values[0], a.Values[len(a.Values)-1])
		}
	}
	return b
}

func (g *Grid) Mean(dim int) float64 {
	checkDim(dim, len(g.axes))
	if g.mass == 0 {
		return math.NaN()
	}
	a := g.axes[dim]
	var s numeric.KahanSum
	g.eachCell(func(flat int, idx []int) {
		if g.w[flat] != 0 {
			s.Add(g.w[flat] * a.center(idx[dim]))
		}
	})
	return s.Value() / g.mass
}

func (g *Grid) Variance(dim int) float64 {
	checkDim(dim, len(g.axes))
	if g.mass == 0 {
		return math.NaN()
	}
	a := g.axes[dim]
	mu := g.Mean(dim)
	var s numeric.KahanSum
	g.eachCell(func(flat int, idx []int) {
		if g.w[flat] == 0 {
			return
		}
		c := a.center(idx[dim])
		d := c - mu
		v := d * d
		if a.Kind == KindContinuous {
			wdt := a.width(idx[dim])
			v += wdt * wdt / 12 // uniform-within-cell second moment
		}
		s.Add(g.w[flat] * v)
	})
	return s.Value() / g.mass
}

func (g *Grid) Sample(r *rand.Rand) []float64 {
	if g.mass <= 0 {
		panic("dist: Sample of zero-mass Grid distribution")
	}
	u := r.Float64() * g.mass
	flat := sort.SearchFloat64s(g.cum, u)
	if flat >= len(g.w) {
		flat = len(g.w) - 1
	}
	// Decompose flat into per-axis indices.
	out := make([]float64, len(g.axes))
	for d := len(g.axes) - 1; d >= 0; d-- {
		a := g.axes[d]
		i := flat % a.Cells()
		flat /= a.Cells()
		if a.Kind == KindContinuous {
			out[d] = a.Edges[i] + r.Float64()*a.width(i)
		} else {
			out[d] = a.Values[i]
		}
	}
	return out
}

func (g *Grid) String() string {
	var b strings.Builder
	if len(g.axes) == 1 && g.axes[0].Kind == KindContinuous {
		fmt.Fprintf(&b, "Hist[%.6g,%.6g;%d bins](mass=%.4g)",
			g.axes[0].Edges[0], g.axes[0].Edges[len(g.axes[0].Edges)-1],
			g.axes[0].Cells(), g.mass)
		return b.String()
	}
	fmt.Fprintf(&b, "Grid[%d dims;", len(g.axes))
	for d, a := range g.axes {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", a.Cells())
	}
	fmt.Fprintf(&b, " cells](mass=%.4g)", g.mass)
	return b.String()
}
