package dist

import (
	"math"
	"math/rand"
	"testing"

	"probdb/internal/region"
)

func uniformHist(lo, hi float64, bins int) *Grid {
	edges := make([]float64, bins+1)
	masses := make([]float64, bins)
	for i := range edges {
		edges[i] = lo + float64(i)*(hi-lo)/float64(bins)
	}
	for i := range masses {
		masses[i] = 1 / float64(bins)
	}
	return NewHistogram(edges, masses)
}

func TestHistogramBasics(t *testing.T) {
	h := uniformHist(0, 10, 5)
	if h.Dim() != 1 || h.DimKind(0) != KindContinuous {
		t.Fatal("histogram shape wrong")
	}
	if !almostEqual(h.Mass(), 1, 1e-12) {
		t.Errorf("mass = %v", h.Mass())
	}
	if got := h.At([]float64{1}); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("density = %v, want 0.1", got)
	}
	if got := h.At([]float64{-1}); got != 0 {
		t.Errorf("density outside = %v", got)
	}
	// The top edge belongs to the last bucket.
	if got := h.At([]float64{10}); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("density at top edge = %v", got)
	}
}

func TestHistogramMassInInterpolates(t *testing.T) {
	h := uniformHist(0, 10, 5)
	// [1, 3] covers half of bucket 0 and half of bucket 1: mass 0.4... no:
	// buckets are [0,2),[2,4),... so [1,3] covers half of each = 0.2.
	if got := MassInterval(h, 1, 3); !almostEqual(got, 0.2, 1e-12) {
		t.Errorf("mass [1,3] = %v, want 0.2", got)
	}
	if got := MassInterval(h, -5, 15); !almostEqual(got, 1, 1e-12) {
		t.Errorf("covering mass = %v", got)
	}
}

func TestHistogramDensityConstructor(t *testing.T) {
	h := NewHistogramDensity([]float64{0, 1, 3}, []float64{0.5, 0.25})
	if !almostEqual(h.Mass(), 1, 1e-12) {
		t.Errorf("mass = %v", h.Mass())
	}
	if got := h.At([]float64{2}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("density = %v", got)
	}
}

func TestGridFloorExactRefinement(t *testing.T) {
	h := uniformHist(0, 10, 5)
	// Floor at x < 3: boundary 3 lies inside bucket [2,4), so the bucket
	// must be split, keeping exactly 0.3 total.
	f := h.Floor(0, region.Compare(region.LT, 3))
	if !almostEqual(f.Mass(), 0.3, 1e-12) {
		t.Errorf("floored mass = %v, want 0.3", f.Mass())
	}
	// Complementary floor keeps the rest: exact conservation.
	g := h.Floor(0, region.Compare(region.GE, 3))
	if !almostEqual(f.Mass()+g.Mass(), 1, 1e-12) {
		t.Errorf("floor + complement = %v", f.Mass()+g.Mass())
	}
	if f.At([]float64{3.5}) != 0 {
		t.Error("density above floor must be 0")
	}
	if got := f.At([]float64{2.5}); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("density below floor = %v, want 0.1", got)
	}
}

func TestGridMarginal(t *testing.T) {
	// 2x3 grid over continuous x discrete.
	axes := []Axis{
		{Kind: KindContinuous, Edges: []float64{0, 1, 2}},
		{Kind: KindDiscrete, Values: []float64{10, 20, 30}},
	}
	w := []float64{
		0.1, 0.2, 0.1, // x in [0,1)
		0.2, 0.3, 0.1, // x in [1,2)
	}
	g := NewGrid(axes, w)
	mx := g.Marginal([]int{0}).(*Grid)
	if !almostEqual(mx.Weights()[0], 0.4, 1e-12) || !almostEqual(mx.Weights()[1], 0.6, 1e-12) {
		t.Errorf("marginal over x = %v", mx.Weights())
	}
	my := g.Marginal([]int{1}).(*Grid)
	if !almostEqual(my.Weights()[1], 0.5, 1e-12) {
		t.Errorf("marginal over y = %v", my.Weights())
	}
	if !almostEqual(my.Mass(), 1, 1e-12) {
		t.Errorf("marginal mass = %v", my.Mass())
	}
}

func TestGridMixedAtAndMassIn(t *testing.T) {
	axes := []Axis{
		{Kind: KindContinuous, Edges: []float64{0, 2}},
		{Kind: KindDiscrete, Values: []float64{5, 7}},
	}
	g := NewGrid(axes, []float64{0.6, 0.4})
	// At a continuous point with a matching discrete coordinate: mass/width.
	if got := g.At([]float64{1, 5}); !almostEqual(got, 0.3, 1e-12) {
		t.Errorf("At = %v, want 0.3", got)
	}
	if got := g.At([]float64{1, 6}); got != 0 {
		t.Errorf("At mismatched discrete coordinate = %v", got)
	}
	box := region.Box{region.Closed(0, 1), region.Point(7)}
	if got := g.MassIn(box); !almostEqual(got, 0.2, 1e-12) {
		t.Errorf("MassIn = %v, want 0.2", got)
	}
}

func TestGridFloorDiscreteAxis(t *testing.T) {
	axes := []Axis{{Kind: KindDiscrete, Values: []float64{1, 2, 3}}}
	g := NewGrid(axes, []float64{0.2, 0.3, 0.5})
	f := g.Floor(0, region.Compare(region.NE, 2))
	if !almostEqual(f.Mass(), 0.7, 1e-12) {
		t.Errorf("mass = %v, want 0.7", f.Mass())
	}
	if f.At([]float64{2}) != 0 {
		t.Error("floored value should carry no mass")
	}
}

func TestGridFloorWhereSubsamples(t *testing.T) {
	// Uniform on [0,1]^2, predicate x < y keeps exactly half the mass. The
	// subsampled estimate should be close (cells straddling the diagonal are
	// estimated at sample resolution).
	axes := []Axis{
		{Kind: KindContinuous, Edges: equalEdges(0, 1, 8)},
		{Kind: KindContinuous, Edges: equalEdges(0, 1, 8)},
	}
	w := make([]float64, 64)
	for i := range w {
		w[i] = 1.0 / 64
	}
	g := NewGrid(axes, w)
	f := g.FloorWhere(func(x []float64) bool { return x[0] < x[1] })
	if !almostEqual(f.Mass(), 0.5, 0.05) {
		t.Errorf("mass after x<y = %v, want ~0.5", f.Mass())
	}
	if got := g.MassWhere(func(x []float64) bool { return x[0] < x[1] }); !almostEqual(got, 0.5, 0.05) {
		t.Errorf("MassWhere = %v, want ~0.5", got)
	}
}

func equalEdges(lo, hi float64, bins int) []float64 {
	e := make([]float64, bins+1)
	for i := range e {
		e[i] = lo + float64(i)*(hi-lo)/float64(bins)
	}
	return e
}

func TestGridMeanVariance(t *testing.T) {
	// Uniform histogram over [0,10] should reproduce uniform moments,
	// including the within-cell variance correction.
	h := uniformHist(0, 10, 5)
	if !almostEqual(h.Mean(0), 5, 1e-12) {
		t.Errorf("mean = %v", h.Mean(0))
	}
	if !almostEqual(h.Variance(0), 100.0/12, 1e-9) {
		t.Errorf("variance = %v, want %v", h.Variance(0), 100.0/12)
	}
}

func TestGridSample(t *testing.T) {
	axes := []Axis{
		{Kind: KindContinuous, Edges: []float64{0, 1, 2}},
		{Kind: KindDiscrete, Values: []float64{5, 7}},
	}
	g := NewGrid(axes, []float64{0.5, 0, 0, 0.5})
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		x := g.Sample(r)
		// Only cells (bin0, 5) and (bin1, 7) carry mass.
		if x[1] == 5 && !(x[0] >= 0 && x[0] < 1) {
			t.Fatalf("sample %v from empty cell", x)
		}
		if x[1] == 7 && !(x[0] >= 1 && x[0] <= 2) {
			t.Fatalf("sample %v from empty cell", x)
		}
		if x[1] != 5 && x[1] != 7 {
			t.Fatalf("discrete coordinate %v invalid", x[1])
		}
	}
}

func TestGridConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewGrid(nil, nil) },
		func() { NewGrid([]Axis{{Kind: KindContinuous, Edges: []float64{0}}}, []float64{}) },
		func() { NewGrid([]Axis{{Kind: KindContinuous, Edges: []float64{0, 0}}}, []float64{1}) },
		func() { NewGrid([]Axis{{Kind: KindContinuous, Edges: []float64{0, 1}}}, []float64{1, 2}) },
		func() { NewGrid([]Axis{{Kind: KindContinuous, Edges: []float64{0, 1}}}, []float64{-0.5}) },
		func() { NewGrid([]Axis{{Kind: KindContinuous, Edges: []float64{0, 1}}}, []float64{2}) },
		func() { NewGrid([]Axis{{Kind: KindDiscrete, Values: nil}}, nil) },
		func() { NewGrid([]Axis{{Kind: KindDiscrete, Values: []float64{2, 1}}}, []float64{0.5, 0.5}) },
		func() { NewHistogramDensity([]float64{0, 1}, []float64{1, 1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAxisLocate(t *testing.T) {
	a := Axis{Kind: KindContinuous, Edges: []float64{0, 1, 2, 4}}
	cases := []struct {
		x    float64
		want int
	}{
		{-0.1, -1}, {0, 0}, {0.5, 0}, {1, 1}, {3.9, 2}, {4, 2}, {4.1, -1},
	}
	for _, c := range cases {
		if got := a.locate(c.x); got != c.want {
			t.Errorf("locate(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	d := Axis{Kind: KindDiscrete, Values: []float64{1, 3, 5}}
	if d.locate(3) != 1 || d.locate(2) != -1 || d.locate(5) != 2 {
		t.Error("discrete locate wrong")
	}
}

func TestGridZeroMassAfterTotalFloor(t *testing.T) {
	h := uniformHist(0, 10, 5)
	f := h.Floor(0, region.Compare(region.GT, 100))
	if f.Mass() != 0 {
		t.Errorf("mass = %v, want 0", f.Mass())
	}
	if !math.IsNaN(f.Mean(0)) {
		t.Errorf("mean of zero-mass grid should be NaN, got %v", f.Mean(0))
	}
}
