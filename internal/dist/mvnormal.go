package dist

import (
	"fmt"
	"math"
	"math/rand"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

// MultiGaussian is the k-dimensional normal distribution N(mean, cov): the
// natural joint pdf for correlated sensor coordinates (the paper's §II-A
// moving-objects motivation, where x and y uncertainty is correlated).
// Marginals, density, moments and sampling are exact; rectangular masses
// and floors go through the Grid fallback like every other non-rectangular
// continuous operation.
type MultiGaussian struct {
	mean []float64
	cov  [][]float64
	chol [][]float64 // lower-triangular factor of cov
	// logNorm is log((2π)^{k/2}·det(L)), the density normalizer.
	logNorm float64
}

var _ Dist = (*MultiGaussian)(nil)

// NewMultiGaussian builds N(mean, cov). cov must be symmetric positive
// definite with len(cov) == len(mean).
func NewMultiGaussian(mean []float64, cov [][]float64) (*MultiGaussian, error) {
	k := len(mean)
	if k == 0 {
		return nil, fmt.Errorf("dist: NewMultiGaussian needs at least one dimension")
	}
	if len(cov) != k {
		return nil, fmt.Errorf("dist: covariance is %dx? for %d dims", len(cov), k)
	}
	for i := range cov {
		if len(cov[i]) != k {
			return nil, fmt.Errorf("dist: covariance row %d has %d entries, want %d", i, len(cov[i]), k)
		}
		for j := range cov[i] {
			if math.Abs(cov[i][j]-cov[j][i]) > 1e-9*(1+math.Abs(cov[i][j])) {
				return nil, fmt.Errorf("dist: covariance is not symmetric at (%d,%d)", i, j)
			}
		}
	}
	chol, err := numeric.Cholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("dist: covariance: %w", err)
	}
	logNorm := float64(k) / 2 * math.Log(2*math.Pi)
	for i := 0; i < k; i++ {
		logNorm += math.Log(chol[i][i])
	}
	m := make([]float64, k)
	copy(m, mean)
	c := make([][]float64, k)
	for i := range c {
		c[i] = append([]float64(nil), cov[i]...)
	}
	return &MultiGaussian{mean: m, cov: c, chol: chol, logNorm: logNorm}, nil
}

// MustMultiGaussian is NewMultiGaussian that panics on error.
func MustMultiGaussian(mean []float64, cov [][]float64) *MultiGaussian {
	g, err := NewMultiGaussian(mean, cov)
	if err != nil {
		panic(err)
	}
	return g
}

// Cov returns the covariance entry (i, j).
func (g *MultiGaussian) Cov(i, j int) float64 {
	checkDim(i, len(g.mean))
	checkDim(j, len(g.mean))
	return g.cov[i][j]
}

func (g *MultiGaussian) Dim() int { return len(g.mean) }

func (g *MultiGaussian) DimKind(i int) Kind {
	checkDim(i, len(g.mean))
	return KindContinuous
}

func (g *MultiGaussian) Mass() float64 { return 1 }

func (g *MultiGaussian) At(x []float64) float64 {
	if len(x) != len(g.mean) {
		panic("dist: At dimensionality mismatch")
	}
	diff := make([]float64, len(x))
	for i := range x {
		diff[i] = x[i] - g.mean[i]
	}
	z := numeric.ForwardSolve(g.chol, diff)
	var q numeric.KahanSum
	for _, v := range z {
		q.Add(v * v)
	}
	return math.Exp(-0.5*q.Value() - g.logNorm)
}

func (g *MultiGaussian) MassIn(b region.Box) float64 {
	if g.Dim() == 1 {
		return NewGaussian(g.mean[0], math.Sqrt(g.cov[0][0])).MassIn(b)
	}
	return g.collapse().MassIn(b)
}

func (g *MultiGaussian) MassWhere(pred func([]float64) bool) float64 {
	return g.collapse().MassWhere(pred)
}

// Marginal is exact: the marginal of a multivariate normal over any subset
// (in any order) is the normal with the corresponding sub-mean and
// sub-covariance.
func (g *MultiGaussian) Marginal(keep []int) Dist {
	checkKeep(keep, g.Dim())
	if identityKeep(keep, g.Dim()) {
		return g
	}
	if len(keep) == 1 {
		i := keep[0]
		return NewGaussian(g.mean[i], math.Sqrt(g.cov[i][i]))
	}
	mean := make([]float64, len(keep))
	cov := make([][]float64, len(keep))
	for a, i := range keep {
		mean[a] = g.mean[i]
		cov[a] = make([]float64, len(keep))
		for b, j := range keep {
			cov[a][b] = g.cov[i][j]
		}
	}
	return MustMultiGaussian(mean, cov)
}

func (g *MultiGaussian) Floor(dim int, keep region.Set) Dist {
	return g.collapse().Floor(dim, keep)
}

func (g *MultiGaussian) FloorWhere(pred func([]float64) bool) Dist {
	return g.collapse().FloorWhere(pred)
}

func (g *MultiGaussian) Support() region.Box {
	b := make(region.Box, g.Dim())
	z := -numeric.NormalQuantile(DefaultOptions.TailEps, 0, 1)
	for i := range b {
		s := z * math.Sqrt(g.cov[i][i])
		b[i] = region.Closed(g.mean[i]-s, g.mean[i]+s)
	}
	return b
}

func (g *MultiGaussian) Mean(dim int) float64 {
	checkDim(dim, g.Dim())
	return g.mean[dim]
}

func (g *MultiGaussian) Variance(dim int) float64 {
	checkDim(dim, g.Dim())
	return g.cov[dim][dim]
}

func (g *MultiGaussian) Sample(r *rand.Rand) []float64 {
	k := g.Dim()
	z := make([]float64, k)
	for i := range z {
		z[i] = r.NormFloat64()
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		v := g.mean[i]
		for j := 0; j <= i; j++ {
			v += g.chol[i][j] * z[j]
		}
		out[i] = v
	}
	return out
}

func (g *MultiGaussian) String() string {
	return fmt.Sprintf("MVN(dim=%d, µ=%v)", g.Dim(), g.mean)
}

// collapse builds the Grid fallback: per-dimension equal-width axes over
// the truncated support, cell masses from center densities normalized to
// total mass 1 (documented approximation, same class as FloorWhere's cell
// subsampling). The per-dimension bin count shrinks with dimensionality to
// bound the cell count.
func (g *MultiGaussian) collapse() *Grid {
	k := g.Dim()
	bins := DefaultOptions.GridBins
	for total := pow(bins, k); total > 1<<20 && bins > 2; total = pow(bins, k) {
		bins /= 2
	}
	sup := g.Support()
	axes := make([]Axis, k)
	for d := 0; d < k; d++ {
		edges := make([]float64, bins+1)
		for i := range edges {
			edges[i] = sup[d].Lo + float64(i)*(sup[d].Hi-sup[d].Lo)/float64(bins)
		}
		axes[d] = Axis{Kind: KindContinuous, Edges: edges}
	}
	total := pow(bins, k)
	w := make([]float64, total)
	x := make([]float64, k)
	idx := make([]int, k)
	var sum numeric.KahanSum
	for flat := 0; flat < total; flat++ {
		vol := 1.0
		for d := 0; d < k; d++ {
			a := axes[d]
			x[d] = a.center(idx[d])
			vol *= a.width(idx[d])
		}
		w[flat] = g.At(x) * vol
		sum.Add(w[flat])
		for d := k - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < bins {
				break
			}
			idx[d] = 0
		}
	}
	if s := sum.Value(); s > 0 {
		for i := range w {
			w[i] /= s
		}
	}
	return NewGrid(axes, w)
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		if out > 1<<30/b {
			return 1 << 30
		}
		out *= b
	}
	return out
}
