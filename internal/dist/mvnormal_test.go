package dist

import (
	"math"
	"math/rand"
	"testing"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

func corr2D(muX, muY, sx, sy, rho float64) *MultiGaussian {
	return MustMultiGaussian(
		[]float64{muX, muY},
		[][]float64{
			{sx * sx, rho * sx * sy},
			{rho * sx * sy, sy * sy},
		},
	)
}

func TestMultiGaussianBasics(t *testing.T) {
	g := corr2D(1, 2, 1, 2, 0.5)
	if g.Dim() != 2 || g.DimKind(0) != KindContinuous || g.Mass() != 1 {
		t.Fatal("shape wrong")
	}
	if g.Mean(0) != 1 || g.Mean(1) != 2 || g.Variance(1) != 4 {
		t.Error("moments wrong")
	}
	if g.Cov(0, 1) != 1 {
		t.Errorf("cov = %v", g.Cov(0, 1))
	}
	// Density at the mean of a standard bivariate normal with rho:
	// 1/(2π·sx·sy·sqrt(1-rho²)).
	want := 1 / (2 * math.Pi * 1 * 2 * math.Sqrt(1-0.25))
	if got := g.At([]float64{1, 2}); !almostEqual(got, want, 1e-12) {
		t.Errorf("density at mean = %v, want %v", got, want)
	}
}

func TestMultiGaussianMarginalExact(t *testing.T) {
	g := corr2D(1, 2, 1, 2, 0.5)
	mx := g.Marginal([]int{0})
	if _, ok := mx.(symCont); !ok {
		t.Fatalf("1-D marginal should be symbolic gaussian, got %T", mx)
	}
	if !almostEqual(mx.Mean(0), 1, 1e-12) || !almostEqual(mx.Variance(0), 1, 1e-12) {
		t.Error("marginal moments wrong")
	}
	// Reordered 2-D marginal swaps everything.
	rev := g.Marginal([]int{1, 0}).(*MultiGaussian)
	if rev.Mean(0) != 2 || rev.Cov(0, 1) != 1 {
		t.Error("reordered marginal wrong")
	}
}

func TestMultiGaussianSampleCovariance(t *testing.T) {
	g := corr2D(0, 0, 1, 1, 0.8)
	r := rand.New(rand.NewSource(5))
	const n = 200_000
	var sx, sy, sxy float64
	for i := 0; i < n; i++ {
		p := g.Sample(r)
		sx += p[0] * p[0]
		sy += p[1] * p[1]
		sxy += p[0] * p[1]
	}
	if got := sxy / n; !almostEqual(got, 0.8, 0.02) {
		t.Errorf("sample covariance = %v, want 0.8", got)
	}
	if got := sx / n; !almostEqual(got, 1, 0.02) {
		t.Errorf("sample var x = %v", got)
	}
	_ = sy
}

func TestMultiGaussianMassInQuadrant(t *testing.T) {
	// For a centered bivariate normal, P[X>0, Y>0] = 1/4 + asin(rho)/(2π).
	rho := 0.6
	g := corr2D(0, 0, 1, 1, rho)
	want := 0.25 + math.Asin(rho)/(2*math.Pi)
	got := g.MassIn(region.Box{region.Above(0, true), region.Above(0, true)})
	if !almostEqual(got, want, 0.02) {
		t.Errorf("quadrant mass = %v, want %v", got, want)
	}
}

func TestMultiGaussianFloorShiftsCorrelatedMarginal(t *testing.T) {
	// Flooring x > 0 on a positively correlated joint must raise E[y].
	g := corr2D(0, 0, 1, 1, 0.7)
	f := g.Floor(0, region.Compare(region.GT, 0))
	my := f.Marginal([]int{1})
	if !(my.Mean(0) > 0.3) {
		t.Errorf("conditional E[y | x>0] = %v, want ≈ 0.7·sqrt(2/π) ≈ 0.56", my.Mean(0))
	}
	if !almostEqual(f.Mass(), 0.5, 0.02) {
		t.Errorf("mass = %v", f.Mass())
	}
}

func TestMultiGaussianConstructorErrors(t *testing.T) {
	if _, err := NewMultiGaussian(nil, nil); err == nil {
		t.Error("empty mean should fail")
	}
	if _, err := NewMultiGaussian([]float64{0, 0}, [][]float64{{1, 0}}); err == nil {
		t.Error("dimension mismatch should fail")
	}
	if _, err := NewMultiGaussian([]float64{0, 0}, [][]float64{{1, 0.5}, {0.2, 1}}); err == nil {
		t.Error("asymmetric covariance should fail")
	}
	if _, err := NewMultiGaussian([]float64{0, 0}, [][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Error("non-PD covariance should fail")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	a := [][]float64{
		{4, 2, 0.6},
		{2, 5, 1.2},
		{0.6, 1.2, 9},
	}
	l, err := numeric.Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += l[i][k] * l[j][k]
			}
			if !almostEqual(s, a[i][j], 1e-12) {
				t.Errorf("(L·Lᵀ)[%d][%d] = %v, want %v", i, j, s, a[i][j])
			}
		}
	}
	// ForwardSolve: L·x = b.
	b := []float64{1, 2, 3}
	x := numeric.ForwardSolve(l, b)
	for i := 0; i < 3; i++ {
		var s float64
		for k := 0; k <= i; k++ {
			s += l[i][k] * x[k]
		}
		if !almostEqual(s, b[i], 1e-12) {
			t.Errorf("solve row %d: %v != %v", i, s, b[i])
		}
	}
}

func TestMultiGaussian3D(t *testing.T) {
	g := MustMultiGaussian(
		[]float64{0, 0, 0},
		[][]float64{
			{1, 0.3, 0},
			{0.3, 1, 0.3},
			{0, 0.3, 1},
		},
	)
	// Grid collapse shrinks bins with dimensionality but keeps mass ≈ 1.
	c := Collapse(g, DefaultOptions)
	if !almostEqual(c.Mass(), 1, 0.01) {
		t.Errorf("collapsed mass = %v", c.Mass())
	}
	m01 := g.Marginal([]int{0, 2}).(*MultiGaussian)
	if m01.Cov(0, 1) != 0 {
		t.Errorf("marginal cov = %v", m01.Cov(0, 1))
	}
}
