package dist

import (
	"fmt"
	"math/rand"
	"strings"

	"probdb/internal/numeric"
	"probdb/internal/region"
)

// Product is the factored joint distribution of independent components —
// the result of the paper's product operation on historically independent
// pdfs (§III-A). Factor i owns the dims [off[i], off[i]+factor.Dim()). The
// representation stays factored as long as operations respect factor
// boundaries: rectangular floors and grouped marginals are exact and cheap;
// anything that entangles factors collapses to a generic representation.
//
// The scale field carries the mass of factors that were marginalized away:
// marginalizing a partial pdf must preserve the tuple-existence probability
// (§III-B keeps projected-out attributes around for exactly this reason; the
// scalar is the degenerate case where only their mass matters).
type Product struct {
	factors []Dist
	off     []int
	dim     int
	scale   float64
}

var _ Dist = (*Product)(nil)

// ProductOf returns the joint distribution of independent ds, flattening
// nested products. With a single argument it returns that argument. The
// caller asserts independence; history-dependent products are the model
// layer's job.
func ProductOf(ds ...Dist) Dist {
	if len(ds) == 0 {
		panic("dist: ProductOf requires at least one distribution")
	}
	var factors []Dist
	scale := 1.0
	for _, d := range ds {
		if p, ok := d.(*Product); ok {
			factors = append(factors, p.factors...)
			scale *= p.scale
		} else {
			factors = append(factors, d)
		}
	}
	if len(factors) == 1 && scale == 1 {
		return factors[0]
	}
	return newProduct(factors, scale)
}

func newProduct(factors []Dist, scale float64) *Product {
	off := make([]int, len(factors))
	dim := 0
	for i, f := range factors {
		off[i] = dim
		dim += f.Dim()
	}
	return &Product{factors: factors, off: off, dim: dim, scale: numeric.Clamp01(scale)}
}

// Factors returns the independent components. The returned slice must not
// be modified.
func (p *Product) Factors() []Dist { return p.factors }

// Scale returns the mass multiplier carried from marginalized-away factors.
func (p *Product) Scale() float64 { return p.scale }

// factorOf returns the index of the factor owning global dimension dim and
// the local dimension within it.
func (p *Product) factorOf(dim int) (int, int) {
	checkDim(dim, p.dim)
	for i := len(p.off) - 1; i >= 0; i-- {
		if dim >= p.off[i] {
			return i, dim - p.off[i]
		}
	}
	panic("unreachable")
}

func (p *Product) Dim() int { return p.dim }

func (p *Product) DimKind(i int) Kind {
	f, l := p.factorOf(i)
	return p.factors[f].DimKind(l)
}

func (p *Product) Mass() float64 {
	m := p.scale
	for _, f := range p.factors {
		m *= f.Mass()
	}
	return numeric.Clamp01(m)
}

func (p *Product) At(x []float64) float64 {
	if len(x) != p.dim {
		panic("dist: At dimensionality mismatch")
	}
	v := p.scale
	for i, f := range p.factors {
		v *= f.At(x[p.off[i] : p.off[i]+f.Dim()])
		if v == 0 {
			return 0
		}
	}
	return v
}

func (p *Product) MassIn(b region.Box) float64 {
	if len(b) != p.dim {
		panic("dist: MassIn box dimensionality mismatch")
	}
	m := p.scale
	for i, f := range p.factors {
		m *= f.MassIn(region.Box(b[p.off[i] : p.off[i]+f.Dim()]))
		if m == 0 {
			return 0
		}
	}
	return numeric.Clamp01(m)
}

func (p *Product) MassWhere(pred func([]float64) bool) float64 {
	return Collapse(p, DefaultOptions).MassWhere(pred)
}

// Marginal keeps the given dimensions. When the kept dimensions respect the
// factor structure (grouped by factor, in ascending order), the result stays
// factored and dropped factors contribute only their mass via the scale
// multiplier. Otherwise the product is collapsed first.
func (p *Product) Marginal(keep []int) Dist {
	checkKeep(keep, p.dim)
	if identityKeep(keep, p.dim) {
		return p
	}
	// Group kept dims by factor, requiring ascending factor and local order.
	perFactor := make([][]int, len(p.factors))
	lastFactor, lastLocal := -1, -1
	grouped := true
	for _, k := range keep {
		f, l := p.factorOf(k)
		if f < lastFactor || (f == lastFactor && l <= lastLocal) {
			grouped = false
			break
		}
		perFactor[f] = append(perFactor[f], l)
		lastFactor, lastLocal = f, l
	}
	if !grouped {
		return Collapse(p, DefaultOptions).Marginal(keep)
	}
	var kept []Dist
	scale := p.scale
	for i, f := range p.factors {
		if len(perFactor[i]) == 0 {
			scale *= f.Mass() // marginalized away: existence mass remains
			continue
		}
		if len(perFactor[i]) == f.Dim() {
			kept = append(kept, f)
		} else {
			kept = append(kept, f.Marginal(perFactor[i]))
		}
	}
	if len(kept) == 0 {
		panic("dist: Marginal eliminated every dimension")
	}
	if len(kept) == 1 && scale == 1 {
		return kept[0]
	}
	return newProduct(kept, scale)
}

// Floor floors the factor owning dim; the factored form is preserved.
func (p *Product) Floor(dim int, keep region.Set) Dist {
	f, l := p.factorOf(dim)
	factors := make([]Dist, len(p.factors))
	copy(factors, p.factors)
	factors[f] = factors[f].Floor(l, keep)
	return newProduct(factors, p.scale)
}

func (p *Product) FloorWhere(pred func([]float64) bool) Dist {
	return Collapse(p, DefaultOptions).FloorWhere(pred)
}

func (p *Product) Support() region.Box {
	b := make(region.Box, 0, p.dim)
	for _, f := range p.factors {
		b = append(b, f.Support()...)
	}
	return b
}

func (p *Product) Mean(dim int) float64 {
	f, l := p.factorOf(dim)
	return p.factors[f].Mean(l)
}

func (p *Product) Variance(dim int) float64 {
	f, l := p.factorOf(dim)
	return p.factors[f].Variance(l)
}

func (p *Product) Sample(r *rand.Rand) []float64 {
	out := make([]float64, 0, p.dim)
	for _, f := range p.factors {
		out = append(out, f.Sample(r)...)
	}
	return out
}

func (p *Product) String() string {
	parts := make([]string, len(p.factors))
	for i, f := range p.factors {
		parts[i] = f.String()
	}
	s := strings.Join(parts, " ⊗ ")
	if p.scale != 1 {
		s = fmt.Sprintf("%g·(%s)", p.scale, s)
	}
	return s
}
