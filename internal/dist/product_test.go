package dist

import (
	"math"
	"math/rand"
	"testing"

	"probdb/internal/region"
)

func TestProductOfIndependentGaussians(t *testing.T) {
	p := ProductOf(NewGaussian(0, 1), NewGaussian(10, 2))
	if p.Dim() != 2 {
		t.Fatal("dim wrong")
	}
	if !almostEqual(p.Mass(), 1, 1e-12) {
		t.Errorf("mass = %v", p.Mass())
	}
	// Joint density factorizes (Fig. 2 of the paper).
	x := []float64{0.5, 9}
	want := NewGaussian(0, 1).At(x[:1]) * NewGaussian(10, 2).At(x[1:])
	if got := p.At(x); !almostEqual(got, want, 1e-15) {
		t.Errorf("joint density = %v, want %v", got, want)
	}
	// Box mass factorizes too.
	box := region.Box{region.Closed(-1, 1), region.Closed(8, 12)}
	wantMass := MassInterval(NewGaussian(0, 1), -1, 1) * MassInterval(NewGaussian(10, 2), 8, 12)
	if got := p.MassIn(box); !almostEqual(got, wantMass, 1e-12) {
		t.Errorf("box mass = %v, want %v", got, wantMass)
	}
}

func TestProductOfFlattensNested(t *testing.T) {
	inner := ProductOf(NewGaussian(0, 1), NewUniform(0, 1))
	outer := ProductOf(inner, NewBernoulli(0.5)).(*Product)
	if len(outer.Factors()) != 3 {
		t.Errorf("nested product should flatten to 3 factors, got %d", len(outer.Factors()))
	}
	if outer.Dim() != 3 {
		t.Errorf("dim = %d", outer.Dim())
	}
}

func TestProductOfSingleReturnsFactor(t *testing.T) {
	g := NewGaussian(0, 1)
	if got := ProductOf(g); got != g {
		t.Error("single-factor product should return the factor")
	}
}

func TestProductFloorStaysFactored(t *testing.T) {
	p := ProductOf(NewGaussian(0, 1), NewGaussian(10, 2))
	f := p.Floor(1, region.Compare(region.LT, 10))
	fp, ok := f.(*Product)
	if !ok {
		t.Fatalf("rectangular floor should preserve factoring, got %T", f)
	}
	if !almostEqual(fp.Mass(), 0.5, 1e-12) {
		t.Errorf("mass = %v, want 0.5", fp.Mass())
	}
	// The unfloored factor is untouched.
	if _, ok := fp.Factors()[0].(symCont); !ok {
		t.Errorf("factor 0 should remain symbolic, got %T", fp.Factors()[0])
	}
	if _, ok := fp.Factors()[1].(Floored); !ok {
		t.Errorf("factor 1 should be floored, got %T", fp.Factors()[1])
	}
}

func TestProductMarginalGroupedStaysFactored(t *testing.T) {
	p := ProductOf(NewGaussian(0, 1), NewUniform(0, 1), NewGaussian(5, 1))
	m := p.Marginal([]int{0, 2})
	mp, ok := m.(*Product)
	if !ok {
		t.Fatalf("grouped marginal should stay factored, got %T", m)
	}
	if mp.Dim() != 2 {
		t.Errorf("dim = %d", mp.Dim())
	}
	if !almostEqual(mp.Mass(), 1, 1e-12) {
		t.Errorf("mass = %v", mp.Mass())
	}
}

func TestProductMarginalDropsPartialFactorKeepsMass(t *testing.T) {
	// A partial factor (mass 0.5) marginalized away must keep contributing
	// its existence probability via the scale (§III-B: projected-out
	// attributes keep their floors).
	half := NewGaussian(0, 1).Floor(0, region.Compare(region.LT, 0))
	p := ProductOf(half, NewUniform(0, 1))
	m := p.Marginal([]int{1})
	if !almostEqual(m.Mass(), 0.5, 1e-12) {
		t.Errorf("marginal mass = %v, want 0.5", m.Mass())
	}
	mp := m.(*Product)
	if !almostEqual(mp.Scale(), 0.5, 1e-12) {
		t.Errorf("scale = %v, want 0.5", mp.Scale())
	}
}

func TestProductMarginalUngroupedCollapses(t *testing.T) {
	p := ProductOf(NewUniform(0, 1), NewUniform(0, 1))
	m := p.Marginal([]int{1, 0}) // crosses factor order
	if m.Dim() != 2 {
		t.Fatalf("dim = %d", m.Dim())
	}
	if !almostEqual(m.Mass(), 1, 1e-9) {
		t.Errorf("mass = %v", m.Mass())
	}
}

func TestProductMeanVarianceDelegate(t *testing.T) {
	p := ProductOf(NewGaussian(3, 2), NewUniform(0, 10))
	if !almostEqual(p.Mean(0), 3, 1e-12) || !almostEqual(p.Mean(1), 5, 1e-12) {
		t.Errorf("means = %v, %v", p.Mean(0), p.Mean(1))
	}
	if !almostEqual(p.Variance(0), 4, 1e-12) {
		t.Errorf("variance = %v", p.Variance(0))
	}
}

func TestProductSampleDims(t *testing.T) {
	p := ProductOf(NewGaussian(0, 1), NewBernoulli(0.5), NewUniform(10, 20))
	r := rand.New(rand.NewSource(5))
	x := p.Sample(r)
	if len(x) != 3 {
		t.Fatalf("sample length = %d", len(x))
	}
	if !(x[1] == 0 || x[1] == 1) {
		t.Errorf("bernoulli coordinate = %v", x[1])
	}
	if !(x[2] >= 10 && x[2] <= 20) {
		t.Errorf("uniform coordinate = %v", x[2])
	}
}

func TestProductDimKind(t *testing.T) {
	p := ProductOf(NewGaussian(0, 1), NewBernoulli(0.5))
	if p.DimKind(0) != KindContinuous || p.DimKind(1) != KindDiscrete {
		t.Error("DimKind wrong")
	}
}

func TestProductSupport(t *testing.T) {
	p := ProductOf(NewUniform(0, 1), NewUniform(5, 6))
	sup := p.Support()
	if sup[0].Lo != 0 || sup[0].Hi != 1 || sup[1].Lo != 5 || sup[1].Hi != 6 {
		t.Errorf("support = %v", sup)
	}
}

func TestProductSampleMarginalMoments(t *testing.T) {
	p := ProductOf(NewGaussian(2, 1), NewExponential(1))
	r := rand.New(rand.NewSource(9))
	var s0, s1 float64
	const n = 100_000
	for i := 0; i < n; i++ {
		x := p.Sample(r)
		s0 += x[0]
		s1 += x[1]
	}
	if !almostEqual(s0/n, 2, 0.05) || !almostEqual(s1/n, 1, 0.05) {
		t.Errorf("sample means = %v, %v", s0/n, s1/n)
	}
}

func TestProductStringMentionsFactors(t *testing.T) {
	p := ProductOf(NewGaussian(0, 1), NewUniform(0, 1))
	s := p.String()
	if s != "Gaus(0,1) ⊗ Unif(0,1)" {
		t.Errorf("String = %q", s)
	}
}

func TestProductMassWhereDiagonal(t *testing.T) {
	// P[X < Y] for independent U(0,1): exactly 1/2; via grid collapse should
	// be close.
	p := ProductOf(NewUniform(0, 1), NewUniform(0, 1))
	got := p.MassWhere(func(x []float64) bool { return x[0] < x[1] })
	if !almostEqual(got, 0.5, 0.03) {
		t.Errorf("P[X<Y] = %v, want ~0.5", got)
	}
}

func TestProductMassWhereGaussians(t *testing.T) {
	// P[X < Y] for X~N(0,1), Y~N(1,1) is Phi(1/sqrt(2)) ≈ 0.7602.
	p := ProductOf(NewGaussian(0, 1), NewGaussian(1, 1))
	want := 0.7602499389065233
	if got := p.MassWhere(func(x []float64) bool { return x[0] < x[1] }); !almostEqual(got, want, 0.02) {
		t.Errorf("P[X<Y] = %v, want ~%v", got, want)
	}
	_ = math.Sqrt2
}
