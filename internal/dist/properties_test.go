package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probdb/internal/region"
)

// randomDist draws a random 1-D distribution of any representation.
func randomDist(r *rand.Rand) Dist {
	switch r.Intn(6) {
	case 0:
		return NewGaussian(r.Float64()*100, 0.1+r.Float64()*5)
	case 1:
		lo := r.Float64() * 50
		return NewUniform(lo, lo+0.1+r.Float64()*50)
	case 2:
		return NewExponential(0.1 + r.Float64()*3)
	case 3:
		n := 1 + r.Intn(6)
		vals := make([]float64, n)
		probs := make([]float64, n)
		for i := range vals {
			vals[i] = math.Trunc(r.Float64() * 50)
			probs[i] = r.Float64() / float64(n)
		}
		return NewDiscrete(vals, probs)
	case 4:
		return ToHistogram(NewGaussian(r.Float64()*100, 0.5+r.Float64()*4), 2+r.Intn(12))
	default:
		keep := region.NewSet(region.Closed(r.Float64()*40, 40+r.Float64()*40))
		return NewGaussian(r.Float64()*80, 0.5+r.Float64()*4).Floor(0, keep)
	}
}

func randomRegion(r *rand.Rand) region.Set {
	n := 1 + r.Intn(3)
	ivs := make([]region.Interval, n)
	for i := range ivs {
		lo := r.Float64()*120 - 10
		ivs[i] = region.Closed(lo, lo+r.Float64()*40)
	}
	return region.NewSet(ivs...)
}

// TestQuickFloorNeverGrowsMass: flooring can only remove probability.
func TestQuickFloorNeverGrowsMass(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		d := randomDist(r)
		keep := randomRegion(r)
		f := d.Floor(0, keep)
		if f.Mass() > d.Mass()+1e-9 {
			t.Fatalf("trial %d: floor grew mass %v -> %v (%v, keep %v)", trial, d.Mass(), f.Mass(), d, keep)
		}
	}
}

// TestQuickFloorIdempotent: flooring twice with the same region is the
// first floor.
func TestQuickFloorIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	for trial := 0; trial < 200; trial++ {
		d := randomDist(r)
		keep := randomRegion(r)
		f1 := d.Floor(0, keep)
		f2 := f1.Floor(0, keep)
		if !almostEqual(f1.Mass(), f2.Mass(), 1e-9) {
			t.Fatalf("trial %d: %v vs %v", trial, f1.Mass(), f2.Mass())
		}
	}
}

// TestQuickFloorsCommute: floor(A) then floor(B) equals floor(B) then
// floor(A) in mass and pointwise density at probes.
func TestQuickFloorsCommute(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for trial := 0; trial < 200; trial++ {
		d := randomDist(r)
		a, b := randomRegion(r), randomRegion(r)
		ab := d.Floor(0, a).Floor(0, b)
		ba := d.Floor(0, b).Floor(0, a)
		if !almostEqual(ab.Mass(), ba.Mass(), 1e-9) {
			t.Fatalf("trial %d: mass %v vs %v", trial, ab.Mass(), ba.Mass())
		}
		for probe := 0; probe < 10; probe++ {
			x := []float64{r.Float64()*120 - 10}
			if !almostEqual(ab.At(x), ba.At(x), 1e-9) {
				t.Fatalf("trial %d: density at %v: %v vs %v", trial, x[0], ab.At(x), ba.At(x))
			}
		}
	}
}

// TestQuickMarginalPreservesMass: marginalizing a joint preserves total
// mass (tuple existence, §III-B).
func TestQuickMarginalPreservesMass(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	for trial := 0; trial < 200; trial++ {
		p := ProductOf(randomDist(r), randomDist(r))
		for _, keep := range [][]int{{0}, {1}} {
			m := p.Marginal(keep)
			if !almostEqual(m.Mass(), p.Mass(), 1e-9) {
				t.Fatalf("trial %d keep=%v: %v vs %v", trial, keep, m.Mass(), p.Mass())
			}
		}
	}
}

// TestQuickProductBoxMassFactorizes: for independent products, box mass is
// the product of per-factor interval masses.
func TestQuickProductBoxMassFactorizes(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	for trial := 0; trial < 200; trial++ {
		a, b := randomDist(r), randomDist(r)
		p := ProductOf(a, b)
		loA, hiA := r.Float64()*100, r.Float64()*100
		if loA > hiA {
			loA, hiA = hiA, loA
		}
		loB, hiB := r.Float64()*100, r.Float64()*100
		if loB > hiB {
			loB, hiB = hiB, loB
		}
		got := p.MassIn(region.Box{region.Closed(loA, hiA), region.Closed(loB, hiB)})
		want := MassInterval(a, loA, hiA) * MassInterval(b, loB, hiB)
		if !almostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: %v vs %v", trial, got, want)
		}
	}
}

// TestQuickCollapsePreservesRangeMass: collapsing any representation keeps
// range-query answers within the grid resolution error.
func TestQuickCollapsePreservesRangeMass(t *testing.T) {
	r := rand.New(rand.NewSource(106))
	for trial := 0; trial < 150; trial++ {
		d := randomDist(r)
		c := Collapse(d, DefaultOptions)
		if !almostEqual(c.Mass(), d.Mass(), 1e-6) {
			t.Fatalf("trial %d: mass %v vs %v (%v)", trial, c.Mass(), d.Mass(), d)
		}
		sup := d.Support()[0]
		width := sup.Hi - sup.Lo
		for probe := 0; probe < 5; probe++ {
			lo := sup.Lo + r.Float64()*width
			hi := lo + r.Float64()*width/2
			got := MassInterval(c, lo, hi)
			want := MassInterval(d, lo, hi)
			// One grid cell of a 32-bin collapse carries at most a few
			// percent of the mass; allow two cells of slack.
			if !almostEqual(got, want, 0.1) {
				t.Fatalf("trial %d: mass[%v,%v] %v vs %v (%v)", trial, lo, hi, got, want, d)
			}
		}
	}
}

// TestQuickCodecRoundTripRandom round-trips random distributions through
// the wire format.
func TestQuickCodecRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for trial := 0; trial < 200; trial++ {
		d := randomDist(r)
		buf := Encode(d)
		back, n, err := Decode(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("trial %d: decode %v / %d of %d", trial, err, n, len(buf))
		}
		if back.String() != d.String() {
			t.Fatalf("trial %d: %q != %q", trial, back.String(), d.String())
		}
	}
}

// TestQuickSampleRespectsSupport: samples always land where density is
// positive (via quick with derived seeds).
func TestQuickSampleRespectsSupport(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDist(r)
		if d.Mass() <= 0 {
			return true
		}
		for i := 0; i < 20; i++ {
			x := d.Sample(r)
			if d.At(x) == 0 && KindOf(d) == KindDiscrete {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickCDFMonotone: the CDF of any representation is nondecreasing.
func TestQuickCDFMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(108))
	for trial := 0; trial < 150; trial++ {
		d := randomDist(r)
		prev := -1.0
		for x := -20.0; x <= 130; x += 7.5 {
			c := CDF(d, x)
			if c < prev-1e-12 {
				t.Fatalf("trial %d: CDF decreased at %v: %v < %v (%v)", trial, x, c, prev, d)
			}
			prev = c
		}
	}
}

// TestQuickMeanWithinSupport: the conditional mean lies inside the support
// box.
func TestQuickMeanWithinSupport(t *testing.T) {
	r := rand.New(rand.NewSource(109))
	for trial := 0; trial < 200; trial++ {
		d := randomDist(r)
		if d.Mass() <= 0 {
			continue
		}
		m := d.Mean(0)
		sup := d.Support()[0]
		if m < sup.Lo-1e-6 || m > sup.Hi+1e-6 {
			t.Fatalf("trial %d: mean %v outside support %v (%v)", trial, m, sup, d)
		}
	}
}
