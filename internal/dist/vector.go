package dist

// This file is the introspection bridge the columnar batch representation
// (internal/colpdf) builds on. The symbolic wrappers symCont/symDisc are
// unexported — deliberately, so nothing outside the package can construct an
// inconsistent one — but the columnar encoder needs to see through them to
// the closed-form model so that a run of, say, Gaussian tuples can be stored
// as two flat parameter lanes instead of a slice of interface values.

// Model returns the closed-form model behind a symbolic distribution: a
// Gaussian, Uniform, Exponential or Triangular value for symbolic continuous
// distributions, a Bernoulli, Binomial, Poisson or Geometric value for
// symbolic discrete ones, and nil for everything else (grids, joints,
// floored or merged pdfs). Callers type-switch on the result; a nil return
// means the distribution has no closed form to vectorize over.
func Model(d Dist) any {
	switch s := d.(type) {
	case symCont:
		return s.m
	case symDisc:
		return s.m
	}
	return nil
}

// BackingPoints returns the pre-enumerated point support of a symbolic
// discrete distribution (the Discrete backing every query runs against), or
// nil when d is not symbolic discrete. The returned slice is the backing's
// own storage and must not be modified. Enumeration is deterministic, so two
// distributions with equal parameters have element-wise identical points —
// which is what lets the columnar dictionary share one point list across
// every tuple of a run.
func BackingPoints(d Dist) []Point {
	if s, ok := d.(symDisc); ok {
		return s.backing.Points()
	}
	return nil
}
