// Package exec is the shared parallel-execution layer of the engine: a
// morsel-style parallel loop used by the relational operators and the
// Monte-Carlo sampler, plus a sharded memoization cache for repeated
// pdf mass/CDF evaluations.
//
// The design goal is determinism: parallel execution must be byte-identical
// to sequential execution. For makes that easy to guarantee — callers give
// every item an index, workers fill per-index result slots, and the caller
// assembles the output by scanning slots in index order. Since per-item
// work never depends on other items, the floats computed at parallelism N
// are exactly the floats computed at parallelism 1.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a degree-of-parallelism knob: values <= 0 mean "one
// worker per logical CPU" (runtime.GOMAXPROCS), anything else is taken
// as-is.
func Resolve(par int) int {
	if par <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return par
}

// morselsPerWorker controls chunking granularity: each worker's share of
// the range is split into this many morsels so that uneven per-item costs
// (a heavy dependency-set merge next to a cheap certain-predicate filter)
// still balance across workers.
const morselsPerWorker = 8

// seqThreshold is the range length below which For always runs inline:
// spawning workers for a handful of items costs more than it saves.
const seqThreshold = 32

// For splits [0, n) into morsels and runs fn(lo, hi) over them on up to
// par workers (par as interpreted by Resolve). It returns the error of the
// lowest-indexed failing morsel — deterministic no matter how the workers
// interleave — and cancels outstanding morsels once any morsel fails.
// fn must be safe to call concurrently on disjoint ranges.
func For(par, n int, fn func(lo, hi int) error) error {
	return ForCtx(context.Background(), par, n, fn)
}

// ForCtx is For with an external cancellation context: morsels stop being
// claimed once ctx is done, and ctx.Err() is returned if no morsel failed
// first.
func ForCtx(ctx context.Context, par, n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	par = Resolve(par)
	if par <= 1 || n < seqThreshold {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(0, n)
	}

	chunk := n / (par * morselsPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	morsels := (n + chunk - 1) / chunk
	if par > morsels {
		par = morsels
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, morsels) // per-morsel outcome, indexed for determinism
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo := m * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if err := fn(lo, hi); err != nil {
					errs[m] = err
					cancel() // first failure stops the claiming of new morsels
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
