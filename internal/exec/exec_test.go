package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 33, 1000, 4096} {
		for _, par := range []int{0, 1, 2, 4, 7} {
			seen := make([]int32, n)
			err := For(par, n, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d par=%d: %v", n, par, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d par=%d: index %d visited %d times", n, par, i, c)
				}
			}
		}
	}
}

func TestForDeterministicOutput(t *testing.T) {
	const n = 10_000
	run := func(par int) []float64 {
		out := make([]float64, n)
		if err := For(par, n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.0000001
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, par := range []int{2, 4, 8} {
		got := run(par)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("par=%d: slot %d differs", par, i)
			}
		}
	}
}

// TestForFirstErrorWins: the reported error is always the lowest-indexed
// failing morsel's, regardless of scheduling.
func TestForFirstErrorWins(t *testing.T) {
	const n = 4096
	for trial := 0; trial < 20; trial++ {
		err := For(8, n, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if i%97 == 0 { // many failing morsels
					return fmt.Errorf("item %d", lo)
				}
			}
			return nil
		})
		if err == nil || err.Error() != "item 0" {
			t.Fatalf("trial %d: got %v, want item 0", trial, err)
		}
	}
}

func TestForStopsClaimingAfterError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := For(2, 1<<20, func(lo, hi int) error {
		calls.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	// With cancellation, far fewer morsels run than exist.
	if c := calls.Load(); c > 64 {
		t.Fatalf("ran %d morsels after first error", c)
	}
}

func TestForCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForCtx(ctx, 4, 1000, func(lo, hi int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v", err)
	}
}

func TestResolve(t *testing.T) {
	if Resolve(3) != 3 {
		t.Fatal("explicit parallelism not honored")
	}
	if Resolve(0) < 1 || Resolve(-1) < 1 {
		t.Fatal("default parallelism must be at least 1")
	}
}
