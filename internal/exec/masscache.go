package exec

import (
	"math"
	"sync"
	"sync/atomic"
)

// MassEvalKind names the memoized pdf evaluation.
type MassEvalKind uint8

// The evaluation kinds the cache distinguishes: total mass, a CDF point,
// and the mass of an interval.
const (
	EvalMass MassEvalKind = iota
	EvalCDF
	EvalInterval
)

// MassKey identifies one pdf evaluation: a stable distribution identity
// (the core layer uses base-registry node IDs, which are never reused), the
// marginalized dimension (-1 for whole-joint evaluations), the evaluation
// kind, and the region bounds. Two keys are equal exactly when the cached
// float is guaranteed identical.
type MassKey struct {
	ID     uint64
	Dim    int32
	Kind   MassEvalKind
	Lo, Hi float64
}

// CacheStats is a hit/miss counter snapshot.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Sub returns the counter delta s - o (for per-statement accounting).
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses}
}

// Add returns the counter sum.
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

const (
	cacheShards = 64
	// shardLimit bounds each shard's entry count; on overflow the shard is
	// dropped wholesale. The cache is a memoization layer, not a store —
	// rebuilding a shard costs only the evaluations it would have saved.
	shardLimit = 4096
)

type cacheShard struct {
	mu sync.Mutex
	m  map[MassKey]float64
}

// MassCache memoizes pdf mass/CDF evaluations. It is sharded by
// distribution identity, so all regions of one pdf live in one shard
// (making per-pdf invalidation a single-shard scan) while distinct pdfs
// spread across shards (keeping lock contention low under parallel
// operators). Hit/miss counters are atomic and monotone.
type MassCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewMassCache returns an empty cache.
func NewMassCache() *MassCache {
	return &MassCache{}
}

func (c *MassCache) shard(id uint64) *cacheShard {
	return &c.shards[id%cacheShards]
}

// Get looks up a memoized evaluation, counting the outcome.
func (c *MassCache) Get(k MassKey) (float64, bool) {
	if c == nil {
		return 0, false
	}
	s := c.shard(k.ID)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put memoizes an evaluation. NaN regions are never cached (NaN keys are
// unequal to themselves under map semantics and would leak entries).
func (c *MassCache) Put(k MassKey, v float64) {
	if c == nil || math.IsNaN(k.Lo) || math.IsNaN(k.Hi) {
		return
	}
	s := c.shard(k.ID)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[MassKey]float64)
	} else if len(s.m) >= shardLimit {
		s.m = make(map[MassKey]float64)
	}
	s.m[k] = v
	s.mu.Unlock()
}

// Invalidate drops every entry of one distribution identity — called when
// the registry frees a base pdf, so a later identity can never alias a
// stale float.
func (c *MassCache) Invalidate(id uint64) {
	if c == nil {
		return
	}
	s := c.shard(id)
	s.mu.Lock()
	for k := range s.m {
		if k.ID == id {
			delete(s.m, k)
		}
	}
	s.mu.Unlock()
}

// Stats returns the monotone hit/miss counters.
func (c *MassCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len returns the number of cached entries (tests).
func (c *MassCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
