package exec

import (
	"math"
	"sync"
	"sync/atomic"

	"probdb/internal/govern"
)

// MassEvalKind names the memoized pdf evaluation.
type MassEvalKind uint8

// The evaluation kinds the cache distinguishes: total mass, a CDF point,
// and the mass of an interval.
const (
	EvalMass MassEvalKind = iota
	EvalCDF
	EvalInterval
)

// MassKey identifies one pdf evaluation: a stable distribution identity
// (the core layer uses base-registry node IDs, which are never reused), the
// marginalized dimension (-1 for whole-joint evaluations), the evaluation
// kind, and the region bounds. Two keys are equal exactly when the cached
// float is guaranteed identical.
type MassKey struct {
	ID     uint64
	Dim    int32
	Kind   MassEvalKind
	Lo, Hi float64
}

// CacheStats is a hit/miss counter snapshot.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Sub returns the counter delta s - o (for per-statement accounting).
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses}
}

// Add returns the counter sum.
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

const (
	cacheShards = 64
	// shardLimit bounds each shard's entry count; on overflow the shard is
	// dropped wholesale. The cache is a memoization layer, not a store —
	// rebuilding a shard costs only the evaluations it would have saved.
	shardLimit = 4096
)

type cacheShard struct {
	mu sync.Mutex
	m  map[MassKey]float64
}

// MassCache memoizes pdf mass/CDF evaluations. It is sharded by
// distribution identity, so all regions of one pdf live in one shard
// (making per-pdf invalidation a single-shard scan) while distinct pdfs
// spread across shards (keeping lock contention low under parallel
// operators). Hit/miss counters are atomic and monotone.
type MassCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
	// bud, when set, is charged per entry. The cache is the cheapest
	// victim under memory pressure: a Put that the budget refuses is
	// simply skipped (memoization is optional), and Shed empties shards
	// wholesale when the server budget needs bytes back.
	bud atomic.Pointer[govern.Budget]
}

// entryCost is the accounting estimate per cached entry: key (29 bytes +
// padding), value float, and amortized map-bucket overhead.
const entryCost = 64

// NewMassCache returns an empty cache.
func NewMassCache() *MassCache {
	return &MassCache{}
}

func (c *MassCache) shard(id uint64) *cacheShard {
	return &c.shards[id%cacheShards]
}

// Get looks up a memoized evaluation, counting the outcome.
func (c *MassCache) Get(k MassKey) (float64, bool) {
	if c == nil {
		return 0, false
	}
	s := c.shard(k.ID)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// SetBudget attaches a budget charged per cached entry. Safe to call
// concurrently with cache traffic; entries cached before the call are not
// retroactively charged (the engine attaches the budget at startup,
// before any traffic).
func (c *MassCache) SetBudget(b *govern.Budget) {
	if c == nil || b == nil {
		return
	}
	c.bud.Store(b)
}

// Put memoizes an evaluation. NaN regions are never cached (NaN keys are
// unequal to themselves under map semantics and would leak entries). When
// a budget is attached and refuses the entry's bytes, the Put is skipped —
// losing a memoization costs one recomputation, never correctness.
func (c *MassCache) Put(k MassKey, v float64) {
	if c == nil || math.IsNaN(k.Lo) || math.IsNaN(k.Hi) {
		return
	}
	bud := c.bud.Load()
	s := c.shard(k.ID)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[MassKey]float64)
	} else if len(s.m) >= shardLimit {
		bud.Release(int64(len(s.m)) * entryCost)
		s.m = make(map[MassKey]float64)
	}
	if _, exists := s.m[k]; !exists {
		if err := bud.Reserve(entryCost); err != nil {
			s.mu.Unlock()
			return
		}
	}
	s.m[k] = v
	s.mu.Unlock()
}

// Invalidate drops every entry of one distribution identity — called when
// the registry frees a base pdf, so a later identity can never alias a
// stale float.
func (c *MassCache) Invalidate(id uint64) {
	if c == nil {
		return
	}
	bud := c.bud.Load()
	s := c.shard(id)
	s.mu.Lock()
	dropped := 0
	for k := range s.m {
		if k.ID == id {
			delete(s.m, k)
			dropped++
		}
	}
	s.mu.Unlock()
	bud.Release(int64(dropped) * entryCost)
}

// Shed empties shards until roughly want bytes are freed (or the cache is
// empty), returning the bytes released. It is the priority-0 reclaimer the
// server budget calls first under pressure — losing memoizations is the
// cheapest possible victim.
func (c *MassCache) Shed(want int64) int64 {
	if c == nil {
		return 0
	}
	bud := c.bud.Load()
	var freed int64
	for i := range c.shards {
		if want > 0 && freed >= want {
			break
		}
		s := &c.shards[i]
		s.mu.Lock()
		n := len(s.m)
		s.m = nil
		s.mu.Unlock()
		if n > 0 {
			bytes := int64(n) * entryCost
			bud.Release(bytes)
			freed += bytes
		}
	}
	return freed
}

// Stats returns the monotone hit/miss counters.
func (c *MassCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len returns the number of cached entries (tests).
func (c *MassCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
