package exec

import (
	"math"
	"sync"
	"testing"
)

func TestMassCacheHitMiss(t *testing.T) {
	c := NewMassCache()
	k := MassKey{ID: 7, Dim: 0, Kind: EvalInterval, Lo: 1, Hi: 2}
	if _, ok := c.Get(k); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(k, 0.25)
	v, ok := c.Get(k)
	if !ok || v != 0.25 {
		t.Fatalf("got %v %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMassCacheKeysDistinguishRegions(t *testing.T) {
	c := NewMassCache()
	c.Put(MassKey{ID: 1, Kind: EvalInterval, Lo: 0, Hi: 1}, 0.5)
	if _, ok := c.Get(MassKey{ID: 1, Kind: EvalInterval, Lo: 0, Hi: 2}); ok {
		t.Fatal("different region must miss")
	}
	if _, ok := c.Get(MassKey{ID: 2, Kind: EvalInterval, Lo: 0, Hi: 1}); ok {
		t.Fatal("different identity must miss")
	}
	if _, ok := c.Get(MassKey{ID: 1, Kind: EvalCDF, Lo: 0, Hi: 1}); ok {
		t.Fatal("different kind must miss")
	}
}

func TestMassCacheInvalidate(t *testing.T) {
	c := NewMassCache()
	// Two ids in the same shard (64 apart), one in another.
	c.Put(MassKey{ID: 3, Kind: EvalMass}, 1)
	c.Put(MassKey{ID: 3 + cacheShards, Kind: EvalMass}, 0.5)
	c.Put(MassKey{ID: 4, Kind: EvalMass}, 0.75)
	c.Invalidate(3)
	if _, ok := c.Get(MassKey{ID: 3, Kind: EvalMass}); ok {
		t.Fatal("invalidated id must miss")
	}
	if v, ok := c.Get(MassKey{ID: 3 + cacheShards, Kind: EvalMass}); !ok || v != 0.5 {
		t.Fatal("shard neighbor evicted")
	}
	if v, ok := c.Get(MassKey{ID: 4, Kind: EvalMass}); !ok || v != 0.75 {
		t.Fatal("other id evicted")
	}
}

func TestMassCacheNaNNeverCached(t *testing.T) {
	c := NewMassCache()
	c.Put(MassKey{ID: 1, Lo: math.NaN()}, 0.5)
	if c.Len() != 0 {
		t.Fatal("NaN key cached")
	}
}

func TestMassCacheShardOverflowResets(t *testing.T) {
	c := NewMassCache()
	id := uint64(5)
	for i := 0; i < shardLimit+10; i++ {
		c.Put(MassKey{ID: id, Kind: EvalInterval, Lo: float64(i)}, 1)
	}
	if n := c.Len(); n > shardLimit {
		t.Fatalf("shard grew past limit: %d", n)
	}
}

func TestMassCacheConcurrent(t *testing.T) {
	c := NewMassCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := MassKey{ID: uint64(i % 100), Kind: EvalInterval, Lo: float64(i % 7)}
				c.Put(k, float64(i%7))
				if v, ok := c.Get(k); ok && v != float64(i%7) {
					t.Errorf("stale value %v", v)
				}
				if i%50 == 0 {
					c.Invalidate(uint64(i % 100))
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNilMassCacheSafe(t *testing.T) {
	var c *MassCache
	if _, ok := c.Get(MassKey{}); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(MassKey{}, 1)
	c.Invalidate(0)
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache not inert")
	}
}
