// Package flakyconn wraps a net.Conn with deterministic fault injection —
// chunked writes, read/write stalls, and mid-stream drops — so server and
// client tests can prove that one misbehaving peer costs one connection,
// never the process. All faults derive from a seeded RNG: the same seed
// replays the same failure, which keeps chaos tests debuggable.
package flakyconn

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config selects which faults to inject. The zero value injects nothing:
// the wrapper becomes a transparent pass-through.
type Config struct {
	// Seed fixes the fault schedule; 0 uses a fixed default so tests are
	// reproducible unless they opt into variety.
	Seed int64
	// ChunkMax splits each Write into underlying writes of at most this
	// many bytes, exercising every partial-read path on the peer. 0
	// disables chunking. Writes still transfer fully (unless dropped) —
	// short-write errors are the peer's bufio stack's problem, not ours.
	ChunkMax int
	// StallEvery sleeps for Stall before every Nth read or write,
	// simulating a slow or wedged peer. 0 disables stalls.
	StallEvery int
	// Stall is the per-stall delay (default 1ms when StallEvery is set).
	Stall time.Duration
	// DropAfter severs the connection once this many bytes have been
	// written through it, mid-frame if that is where the count lands —
	// the canonical "client died while the server streamed to it" fault.
	// 0 disables drops.
	DropAfter int64
}

// Conn is a net.Conn with the configured faults layered over it.
type Conn struct {
	net.Conn
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int
	written int64
	dropped bool
}

// New wraps c. The same (conn, cfg) pair always misbehaves identically.
func New(c net.Conn, cfg Config) *Conn {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	if cfg.StallEvery > 0 && cfg.Stall <= 0 {
		cfg.Stall = time.Millisecond
	}
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Dropped reports whether the drop fault has fired.
func (c *Conn) Dropped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// maybeStall sleeps if this op lands on the stall cadence. Called with
// c.mu held; sleeps outside the lock.
func (c *Conn) stallAndCount() (stall time.Duration) {
	c.ops++
	if c.cfg.StallEvery > 0 && c.ops%c.cfg.StallEvery == 0 {
		return c.cfg.Stall
	}
	return 0
}

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.dropped {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	stall := c.stallAndCount()
	c.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		c.mu.Lock()
		if c.dropped {
			c.mu.Unlock()
			return total, net.ErrClosed
		}
		n := len(p)
		if c.cfg.ChunkMax > 0 && n > c.cfg.ChunkMax {
			n = 1 + c.rng.Intn(c.cfg.ChunkMax)
		}
		drop := false
		if c.cfg.DropAfter > 0 && c.written+int64(n) >= c.cfg.DropAfter {
			n = int(c.cfg.DropAfter - c.written)
			drop = true
		}
		stall := c.stallAndCount()
		c.mu.Unlock()
		if stall > 0 {
			time.Sleep(stall)
		}
		if n > 0 {
			w, err := c.Conn.Write(p[:n])
			total += w
			if err != nil {
				return total, err
			}
			p = p[n:]
		}
		if drop {
			c.mu.Lock()
			c.dropped = true
			c.written += int64(n)
			c.mu.Unlock()
			c.Conn.Close() //nolint:errcheck
			return total, net.ErrClosed
		}
		c.mu.Lock()
		c.written += int64(n)
		c.mu.Unlock()
	}
	return total, nil
}
