package flakyconn

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client end and the raw server end of an
// in-memory duplex pipe, with a goroutine echoing everything it reads into
// buf until the pipe closes.
func pipePair(t *testing.T, cfg Config) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return New(a, cfg), b
}

func TestPassThrough(t *testing.T) {
	c, peer := pipePair(t, Config{})
	msg := []byte("hello probabilistic world")
	go func() {
		if _, err := c.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := readFull(peer, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestChunkedWriteDeliversEverything(t *testing.T) {
	c, peer := pipePair(t, Config{ChunkMax: 3, Seed: 42})
	msg := bytes.Repeat([]byte("abcdefg"), 40)
	errc := make(chan error, 1)
	go func() {
		n, err := c.Write(msg)
		if err == nil && n != len(msg) {
			t.Errorf("short write: %d of %d", n, len(msg))
		}
		errc <- err
	}()
	got := make([]byte, len(msg))
	if _, err := readFull(peer, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("chunked write corrupted the stream")
	}
}

func TestDropAfterSeversMidStream(t *testing.T) {
	c, peer := pipePair(t, Config{DropAfter: 10})
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	n, err := c.Write(bytes.Repeat([]byte("x"), 64))
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("want net.ErrClosed, got n=%d err=%v", n, err)
	}
	if n != 10 {
		t.Fatalf("want exactly 10 bytes through before the drop, got %d", n)
	}
	if !c.Dropped() {
		t.Fatal("Dropped() should report true after the fault fires")
	}
	if _, err := c.Write([]byte("more")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("writes after drop must fail closed, got %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("reads after drop must fail closed, got %v", err)
	}
}

func TestStallDelays(t *testing.T) {
	c, peer := pipePair(t, Config{StallEvery: 1, Stall: 20 * time.Millisecond})
	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("stall not applied: write returned in %v", d)
	}
}

func readFull(c net.Conn, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := c.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
