package govern

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Class partitions admitted work so one statement kind cannot starve the
// others: a flood of analytics SELECTs leaves write and transaction slots
// free, and vice versa.
type Class int

const (
	ClassRead  Class = iota // SELECT, EXPLAIN
	ClassWrite              // INSERT/UPDATE/DELETE/DDL, autocommit
	ClassTxn                // statements inside BEGIN..COMMIT, and the markers
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassTxn:
		return "txn"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ClassifySQL buckets a statement by its first keyword. inTxn wins: every
// statement of an open transaction (including COMMIT/ROLLBACK) uses the
// txn class so a read flood can't wedge half-finished transactions.
func ClassifySQL(sql string, inTxn bool) Class {
	if inTxn {
		return ClassTxn
	}
	s := strings.TrimSpace(sql)
	if i := strings.IndexAny(s, " \t\r\n;("); i > 0 {
		s = s[:i]
	}
	switch strings.ToUpper(s) {
	case "SELECT", "EXPLAIN":
		return ClassRead
	case "BEGIN", "START", "COMMIT", "ROLLBACK":
		return ClassTxn
	default:
		return ClassWrite
	}
}

// QueueFullError is the typed rejection for a class whose admission slots
// (running + queued) are exhausted. RetryAfter is the server's backoff
// hint; it travels to the client in the wire error frame.
type QueueFullError struct {
	Class      Class
	Limit      int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("govern: %s admission queue full (limit %d), retry after %v",
		e.Class, e.Limit, e.RetryAfter)
}

// Retryable reports true: the statement was never executed, so any
// statement kind — including non-idempotent writes — is safe to resubmit.
func (e *QueueFullError) Retryable() bool { return true }

// Admission bounds the number of statements per class that may be either
// queued or running. Acquire is non-blocking — overload answers
// immediately with a typed rejection instead of stacking goroutines.
type Admission struct {
	mu       sync.Mutex
	limit    [numClasses]int
	inflight [numClasses]int
	rejected [numClasses]uint64
	hint     time.Duration
}

// NewAdmission builds an admission controller with per-class slot limits
// (each must be >= 1) and the RetryAfter hint handed to rejected clients.
func NewAdmission(read, write, txn int, hint time.Duration) *Admission {
	a := &Admission{hint: hint}
	a.limit[ClassRead] = max(1, read)
	a.limit[ClassWrite] = max(1, write)
	a.limit[ClassTxn] = max(1, txn)
	if a.hint <= 0 {
		a.hint = 100 * time.Millisecond
	}
	return a
}

// Capacity returns the sum of all class limits — the worker-queue channel
// needs at least this much buffer so an admitted send can never block.
func (a *Admission) Capacity() int {
	return a.limit[ClassRead] + a.limit[ClassWrite] + a.limit[ClassTxn]
}

// Acquire claims a slot for class c, or fails fast with *QueueFullError.
// Every Acquire that returns nil must be paired with exactly one Release.
func (a *Admission) Acquire(c Class) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight[c] >= a.limit[c] {
		a.rejected[c]++
		return &QueueFullError{Class: c, Limit: a.limit[c], RetryAfter: a.hint}
	}
	a.inflight[c]++
	return nil
}

// Release returns a slot for class c.
func (a *Admission) Release(c Class) {
	a.mu.Lock()
	if a.inflight[c] > 0 {
		a.inflight[c]--
	}
	a.mu.Unlock()
}

// Depths returns the in-flight count per class, indexed by Class.
func (a *Admission) Depths() [3]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return [3]int{a.inflight[ClassRead], a.inflight[ClassWrite], a.inflight[ClassTxn]}
}

// Limits returns the per-class slot limits, indexed by Class.
func (a *Admission) Limits() [3]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return [3]int{a.limit[ClassRead], a.limit[ClassWrite], a.limit[ClassTxn]}
}

// Rejections returns the cumulative rejection count across all classes.
func (a *Admission) Rejections() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejected[ClassRead] + a.rejected[ClassWrite] + a.rejected[ClassTxn]
}
