package govern

import (
	"math/rand"
	"sync"
	"time"
)

// Retryable is implemented by errors describing work that was refused
// before execution (admission rejection, budget pressure, queue-deadline
// expiry) — resubmitting after a backoff is always safe, even for writes,
// because the statement never ran.
type Retryable interface {
	error
	Retryable() bool
}

var jitterMu sync.Mutex
var jitterRng = rand.New(rand.NewSource(time.Now().UnixNano()))

// Jitter spreads d uniformly over [d/2, 3d/2) so that a fleet of clients
// rejected at the same instant does not stampede back in lockstep.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	jitterMu.Lock()
	f := 0.5 + jitterRng.Float64()
	jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// Backoff returns the jittered exponential delay for the given retry
// attempt (0-based): base<<attempt capped at maxDelay, then jittered.
// This is the one backoff curve shared by DialRetry reconnects, RetryAfter
// handling in probql, and probgen's conflict-retry loop.
func Backoff(attempt int, base, maxDelay time.Duration) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	return Jitter(d)
}
