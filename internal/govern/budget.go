// Package govern is the resource-governance layer: hierarchical memory
// budgets charged by the allocating operators, bounded per-class admission
// queues, and the jittered-backoff arithmetic retrying clients share. It is
// deliberately free of engine dependencies (standard library only) so every
// layer — core, exec, pipe, wire, server — can import it without cycles.
//
// The model is a tree of Budgets: one server root, one child per session,
// one grandchild per query. Reserve charges a byte count against every
// level on the path to the root and fails with a typed *BudgetError at the
// first level whose limit would be exceeded — so a greedy query dies alone
// when it busts its own budget, and only busts the server budget after the
// root has shed cheaper victims (reclaimers registered in priority order:
// caches first, snapshots next, the largest running query last).
package govern

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// BudgetError is the typed refusal Reserve returns when a budget (or one of
// its ancestors) would exceed its limit even after shedding. It is
// retryable: the pressure that caused it is transient by construction.
type BudgetError struct {
	Budget    string // name of the level that refused
	Requested int64
	Used      int64
	Limit     int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("govern: %s memory budget exceeded (requested %d, used %d of %d)",
		e.Budget, e.Requested, e.Used, e.Limit)
}

// Retryable reports that backing off and retrying is sensible: budget
// pressure passes when other queries finish.
func (e *BudgetError) Retryable() bool { return true }

// Reclaimer frees memory under pressure: asked for want bytes, it returns
// an estimate of the bytes it freed (possibly asynchronously, e.g. by
// cancelling a query whose operators release on close).
type Reclaimer func(want int64) (freed int64)

type reclaimer struct {
	pri int
	f   Reclaimer
}

// Budget is one node of the accounting tree. The zero value is unusable;
// construct roots with NewBudget and descendants with Child. A nil *Budget
// is a valid "unlimited, untracked" budget: every method no-ops.
type Budget struct {
	name   string
	parent *Budget
	limit  int64 // <= 0 means unlimited (still tracked)
	used   atomic.Int64
	high   atomic.Int64 // high-water mark of used

	mu         sync.Mutex
	reclaimers []reclaimer
	shed       atomic.Int64 // cumulative bytes reclaimers reported freed
}

// NewBudget returns a root budget. limit <= 0 means unlimited (the budget
// still tracks usage, so children and high-water accounting work).
func NewBudget(name string, limit int64) *Budget {
	return &Budget{name: name, limit: limit}
}

// Child creates a sub-budget: reservations against the child charge every
// ancestor too.
func (b *Budget) Child(name string, limit int64) *Budget {
	if b == nil {
		return NewBudget(name, limit)
	}
	return &Budget{name: name, parent: b, limit: limit}
}

// Name returns the budget's name.
func (b *Budget) Name() string {
	if b == nil {
		return ""
	}
	return b.name
}

// Used returns the bytes currently reserved at this level.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Limit returns the configured limit (<= 0: unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// HighWater returns the maximum Used ever observed — the overload suites
// assert it never exceeded the limit.
func (b *Budget) HighWater() int64 {
	if b == nil {
		return 0
	}
	return b.high.Load()
}

// ShedBytes returns the cumulative bytes this level's reclaimers reported
// freeing under pressure.
func (b *Budget) ShedBytes() int64 {
	if b == nil {
		return 0
	}
	return b.shed.Load()
}

// AddReclaimer registers a shed hook at this level. Lower priorities run
// first ("cheapest victim first"); registration order breaks ties.
func (b *Budget) AddReclaimer(pri int, f Reclaimer) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.reclaimers = append(b.reclaimers, reclaimer{pri: pri, f: f})
	sort.SliceStable(b.reclaimers, func(i, j int) bool { return b.reclaimers[i].pri < b.reclaimers[j].pri })
	b.mu.Unlock()
}

// tryAdd charges n at this level alone, rolling back on limit excess.
func (b *Budget) tryAdd(n int64) bool {
	nv := b.used.Add(n)
	if b.limit > 0 && nv > b.limit {
		b.used.Add(-n)
		return false
	}
	for {
		h := b.high.Load()
		if nv <= h || b.high.CompareAndSwap(h, nv) {
			return true
		}
	}
}

// reclaim runs this level's shed hooks in priority order until they report
// enough freed bytes or run out. It returns true if any hook freed
// anything (worth one retry).
func (b *Budget) reclaim(want int64) bool {
	b.mu.Lock()
	hooks := append([]reclaimer(nil), b.reclaimers...)
	b.mu.Unlock()
	var freed int64
	for _, r := range hooks {
		got := r.f(want - freed)
		if got > 0 {
			b.shed.Add(got)
			freed += got
		}
		if freed >= want {
			break
		}
	}
	return freed > 0
}

// Reserve charges n bytes against this budget and every ancestor. On the
// first level whose limit would be exceeded the partial charges roll back;
// if that level has reclaimers they shed and the walk retries once. The
// final refusal is a typed *BudgetError naming the refusing level.
func (b *Budget) Reserve(n int64) error {
	if b == nil || n <= 0 {
		return nil
	}
	for attempt := 0; ; attempt++ {
		var fail *Budget
		for cur := b; cur != nil; cur = cur.parent {
			if !cur.tryAdd(n) {
				fail = cur
				break
			}
		}
		if fail == nil {
			return nil
		}
		for cur := b; cur != fail; cur = cur.parent {
			cur.used.Add(-n)
		}
		if attempt == 0 && fail.reclaim(n) {
			continue // a victim was shed: one retry
		}
		return &BudgetError{Budget: fail.name, Requested: n, Used: fail.used.Load(), Limit: fail.limit}
	}
}

// Release returns n bytes to this budget and every ancestor. Releasing
// more than was reserved clamps at zero per level (a paired Reserve never
// triggers this; the clamp is a backstop against double-release bugs).
func (b *Budget) Release(n int64) {
	if b == nil || n <= 0 {
		return
	}
	for cur := b; cur != nil; cur = cur.parent {
		if nv := cur.used.Add(-n); nv < 0 {
			cur.used.Add(-nv) // clamp to zero
		}
	}
}

// Drain releases everything still reserved at this level (and the same
// amount from every ancestor), returning the leaked byte count. It is the
// end-of-query backstop: with correctly paired operators it returns zero.
func (b *Budget) Drain() int64 {
	if b == nil {
		return 0
	}
	n := b.used.Swap(0)
	if n <= 0 {
		return 0
	}
	for cur := b.parent; cur != nil; cur = cur.parent {
		if nv := cur.used.Add(-n); nv < 0 {
			cur.used.Add(-nv)
		}
	}
	return n
}
