package govern

import "context"

type budgetKey struct{}

// WithBudget attaches a budget to the context so allocating operators deep
// in the executor can charge it without plumbing a parameter through every
// layer.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// FromContext returns the budget attached by WithBudget, or nil (the
// unlimited, untracked budget) if none is attached.
func FromContext(ctx context.Context) *Budget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}
