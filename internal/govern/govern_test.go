package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBudgetHierarchy(t *testing.T) {
	root := NewBudget("server", 1000)
	ses := root.Child("session", 600)
	q := ses.Child("query", 400)

	if err := q.Reserve(300); err != nil {
		t.Fatalf("reserve 300: %v", err)
	}
	if got := root.Used(); got != 300 {
		t.Fatalf("root used = %d, want 300", got)
	}
	if got := ses.Used(); got != 300 {
		t.Fatalf("session used = %d, want 300", got)
	}

	// Query limit refuses first, and the refusal names the level.
	err := q.Reserve(200)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("reserve 200: got %v, want *BudgetError", err)
	}
	if be.Budget != "query" {
		t.Fatalf("refusing level = %q, want query", be.Budget)
	}
	if !be.Retryable() {
		t.Fatal("BudgetError must be retryable")
	}
	// A failed reserve must not leave partial charges anywhere.
	if root.Used() != 300 || ses.Used() != 300 || q.Used() != 300 {
		t.Fatalf("partial charge leaked: root=%d ses=%d q=%d", root.Used(), ses.Used(), q.Used())
	}

	q.Release(300)
	if root.Used() != 0 || ses.Used() != 0 || q.Used() != 0 {
		t.Fatalf("release did not propagate: root=%d ses=%d q=%d", root.Used(), ses.Used(), q.Used())
	}
	if hw := root.HighWater(); hw != 300 {
		t.Fatalf("high water = %d, want 300", hw)
	}
}

func TestBudgetMidChainRefusalRollsBack(t *testing.T) {
	root := NewBudget("server", 100)
	ses := root.Child("session", 1000) // child permits more than the parent
	if err := ses.Reserve(150); err == nil {
		t.Fatal("reserve above server limit succeeded")
	}
	if ses.Used() != 0 || root.Used() != 0 {
		t.Fatalf("rollback failed: ses=%d root=%d", ses.Used(), root.Used())
	}
}

func TestBudgetReclaim(t *testing.T) {
	root := NewBudget("server", 100)
	if err := root.Reserve(90); err != nil {
		t.Fatalf("reserve 90: %v", err)
	}
	var order []int
	root.AddReclaimer(1, func(want int64) int64 {
		order = append(order, 1)
		return 0
	})
	root.AddReclaimer(0, func(want int64) int64 {
		order = append(order, 0)
		root.Release(50) // the "cache" gives back memory
		return 50
	})
	if err := root.Reserve(40); err != nil {
		t.Fatalf("reserve after shed: %v", err)
	}
	if len(order) == 0 || order[0] != 0 {
		t.Fatalf("reclaimers ran out of priority order: %v", order)
	}
	if root.ShedBytes() != 50 {
		t.Fatalf("shed bytes = %d, want 50", root.ShedBytes())
	}
}

func TestBudgetDrain(t *testing.T) {
	root := NewBudget("server", 0) // unlimited, still tracked
	q := root.Child("query", 0)
	if err := q.Reserve(123); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if leaked := q.Drain(); leaked != 123 {
		t.Fatalf("drain = %d, want 123", leaked)
	}
	if root.Used() != 0 {
		t.Fatalf("root used after drain = %d", root.Used())
	}
	if q.Drain() != 0 {
		t.Fatal("second drain must be a no-op")
	}
}

func TestBudgetNilSafe(t *testing.T) {
	var b *Budget
	if err := b.Reserve(1 << 40); err != nil {
		t.Fatalf("nil budget must be unlimited: %v", err)
	}
	b.Release(5)
	b.AddReclaimer(0, func(int64) int64 { return 0 })
	if b.Drain() != 0 || b.Used() != 0 || b.HighWater() != 0 {
		t.Fatal("nil budget accessors must return zero")
	}
	child := b.Child("q", 10)
	if child == nil || child.Limit() != 10 {
		t.Fatal("nil.Child must return a usable root")
	}
}

func TestBudgetConcurrent(t *testing.T) {
	root := NewBudget("server", 1<<20)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := root.Child("q", 1<<16)
			for j := 0; j < 1000; j++ {
				if err := q.Reserve(64); err == nil {
					q.Release(64)
				}
			}
			if leaked := q.Drain(); leaked != 0 {
				t.Errorf("leaked %d bytes", leaked)
			}
		}()
	}
	wg.Wait()
	if root.Used() != 0 {
		t.Fatalf("root used = %d after all queries drained", root.Used())
	}
}

func TestAdmission(t *testing.T) {
	a := NewAdmission(2, 1, 1, 250*time.Millisecond)
	if err := a.Acquire(ClassRead); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if err := a.Acquire(ClassRead); err != nil {
		t.Fatalf("second read: %v", err)
	}
	err := a.Acquire(ClassRead)
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("third read: got %v, want *QueueFullError", err)
	}
	if qf.Class != ClassRead || qf.RetryAfter != 250*time.Millisecond || !qf.Retryable() {
		t.Fatalf("bad rejection: %+v", qf)
	}
	// Reads being full must not block writes.
	if err := a.Acquire(ClassWrite); err != nil {
		t.Fatalf("write while reads full: %v", err)
	}
	a.Release(ClassRead)
	if err := a.Acquire(ClassRead); err != nil {
		t.Fatalf("read after release: %v", err)
	}
	if got := a.Rejections(); got != 1 {
		t.Fatalf("rejections = %d, want 1", got)
	}
	d := a.Depths()
	if d[ClassRead] != 2 || d[ClassWrite] != 1 || d[ClassTxn] != 0 {
		t.Fatalf("depths = %v", d)
	}
	if a.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", a.Capacity())
	}
}

func TestClassifySQL(t *testing.T) {
	cases := []struct {
		sql   string
		inTxn bool
		want  Class
	}{
		{"SELECT * FROM t", false, ClassRead},
		{"  explain select 1", false, ClassRead},
		{"INSERT INTO t VALUES (1)", false, ClassWrite},
		{"UPDATE t SET x = 1", false, ClassWrite},
		{"DELETE FROM t", false, ClassWrite},
		{"CREATE TABLE t (x INT)", false, ClassWrite},
		{"BEGIN", false, ClassTxn},
		{"START TRANSACTION", false, ClassTxn},
		{"commit;", false, ClassTxn},
		{"ROLLBACK", false, ClassTxn},
		{"SELECT * FROM t", true, ClassTxn},
		{"CHECKPOINT", false, ClassWrite},
	}
	for _, c := range cases {
		if got := ClassifySQL(c.sql, c.inTxn); got != c.want {
			t.Errorf("ClassifySQL(%q, %v) = %v, want %v", c.sql, c.inTxn, got, c.want)
		}
	}
}

func TestBackoffJitter(t *testing.T) {
	base, cap := 100*time.Millisecond, 2*time.Second
	for attempt := 0; attempt < 10; attempt++ {
		for i := 0; i < 50; i++ {
			d := Backoff(attempt, base, cap)
			raw := base << attempt
			if raw > cap {
				raw = cap
			}
			lo, hi := raw/2, raw+raw/2
			if d < lo || d > hi {
				t.Fatalf("Backoff(%d) = %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
	if Jitter(0) != 0 {
		t.Fatal("Jitter(0) must be 0")
	}
	// Jitter must actually vary (stampede prevention).
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[Jitter(time.Second)] = true
	}
	if len(seen) < 2 {
		t.Fatal("Jitter produced identical delays 32 times")
	}
}

func TestContextBudget(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil budget")
	}
	b := NewBudget("q", 10)
	ctx := WithBudget(context.Background(), b)
	if FromContext(ctx) != b {
		t.Fatal("budget did not round-trip through context")
	}
	if WithBudget(context.Background(), nil) != context.Background() {
		t.Fatal("WithBudget(nil) must be a no-op")
	}
}
