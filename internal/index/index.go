// Package index implements a probabilistic threshold index (PTI) for
// uncertain attributes, after the x-bounds idea of Cheng et al. (VLDB 2004)
// — reference [6] of the paper, the indexing substrate its range queries
// assume. Entries are uncertainty intervals (truncated pdf supports)
// organized in a static augmented interval tree; each entry additionally
// stores a quantile table ("x-bounds") that prunes candidates which cannot
// reach the probability threshold before their pdfs are ever evaluated.
package index

import (
	"math"
	"sort"

	"probdb/internal/dist"
)

// quantGrid is the probability grid of the stored x-bounds. Conservative
// pruning rounds the query threshold down to a grid point.
var quantGrid = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

// Item is one uncertain value to index.
type Item struct {
	RID  int64
	Dist dist.Dist // one-dimensional
}

// entry is an indexed pdf: its support interval, its x-bounds, and the pdf
// itself for exact verification.
type entry struct {
	rid    int64
	lo, hi float64
	leftQ  []float64 // leftQ[i]: the quantGrid[i]-quantile of the pdf
	d      dist.Dist
}

// Index is a probabilistic threshold index over 1-D uncertain values. The
// bulk of the entries live in a static augmented interval tree; DML is
// incremental on top of it — Insert appends to a linearly-scanned overflow
// run, Delete tombstones in place — and once either side's fragmentation
// crosses a threshold the whole structure is rebuilt. It is safe for
// concurrent readers between mutations (mutations need external
// serialization, as with any index in a single-writer engine).
type Index struct {
	entries []entry // sorted by lo
	maxHi   []float64
	// overflow holds entries inserted since the last (re)build, scanned
	// linearly by every query until folded in by a rebuild.
	overflow []entry
	// dead tombstones RIDs removed since the last rebuild. Tombstoned
	// entries stay in place (static layout) and are skipped by queries.
	dead map[int64]bool
}

// Build constructs the index. Items' distributions must be 1-dimensional.
func Build(items []Item) *Index {
	es := make([]entry, 0, len(items))
	for _, it := range items {
		es = append(es, makeEntry(it))
	}
	return buildFrom(es)
}

func buildFrom(es []entry) *Index {
	sort.Slice(es, func(i, j int) bool { return es[i].lo < es[j].lo })
	ix := &Index{entries: es, maxHi: make([]float64, len(es))}
	ix.buildMax(0, len(es))
	return ix
}

// makeEntry truncates the item's support and precomputes its x-bounds.
func makeEntry(it Item) entry {
	if it.Dist.Dim() != 1 {
		panic("index: requires one-dimensional distributions")
	}
	sup := it.Dist.Support()[0]
	e := entry{rid: it.RID, lo: sup.Lo, hi: sup.Hi, d: it.Dist}
	e.leftQ = make([]float64, len(quantGrid))
	for i, q := range quantGrid {
		e.leftQ[i] = quantileOf(it.Dist, sup.Lo, sup.Hi, q)
	}
	return e
}

// Insert adds one item incrementally. The entry lands in the overflow run
// (with its x-bounds computed once, as at Build) and is immediately visible
// to queries; a fragmentation-triggered rebuild folds it into the tree.
func (ix *Index) Insert(it Item) {
	e := makeEntry(it)
	if ix.dead[e.rid] {
		// Reusing a tombstoned RID revives it with the new pdf.
		delete(ix.dead, e.rid)
	}
	ix.overflow = append(ix.overflow, e)
	ix.maybeRebuild()
}

// Delete tombstones the entry with the given RID, reporting whether it was
// present. The slot is reclaimed at the next rebuild.
func (ix *Index) Delete(rid int64) bool {
	for i := range ix.overflow {
		if ix.overflow[i].rid == rid {
			ix.overflow = append(ix.overflow[:i], ix.overflow[i+1:]...)
			ix.maybeRebuild()
			return true
		}
	}
	found := false
	for i := range ix.entries {
		if ix.entries[i].rid == rid {
			found = true
			break
		}
	}
	if !found || ix.dead[rid] {
		return false
	}
	if ix.dead == nil {
		ix.dead = map[int64]bool{}
	}
	ix.dead[rid] = true
	ix.maybeRebuild()
	return true
}

// rebuildFloor is the minimum fragmentation (overflow entries or tombstones)
// before a rebuild is considered; below it the linear overflow scan and the
// tombstone checks are cheaper than recomputing every entry's x-bounds.
const rebuildFloor = 32

// Fragmentation reports the index's incremental debris: entries awaiting a
// fold into the tree and tombstoned slots awaiting reclamation.
func (ix *Index) Fragmentation() (overflow, dead int) {
	return len(ix.overflow), len(ix.dead)
}

// maybeRebuild folds overflow and tombstones back into a fresh static tree
// once either exceeds both the floor and a quarter of the live entry count.
func (ix *Index) maybeRebuild() {
	frag := len(ix.overflow) + len(ix.dead)
	if frag < rebuildFloor || 4*frag < ix.Len() {
		return
	}
	live := make([]entry, 0, ix.Len())
	for _, e := range ix.entries {
		if !ix.dead[e.rid] {
			live = append(live, e)
		}
	}
	live = append(live, ix.overflow...)
	*ix = *buildFrom(live)
}

// buildMax fills the segment-maximum array: maxHi[mid] of a range holds the
// maximum hi within that range (recursive midpoint layout).
func (ix *Index) buildMax(lo, hi int) float64 {
	if lo >= hi {
		return math.Inf(-1)
	}
	mid := (lo + hi) / 2
	m := ix.entries[mid].hi
	if l := ix.buildMax(lo, mid); l > m {
		m = l
	}
	if r := ix.buildMax(mid+1, hi); r > m {
		m = r
	}
	ix.maxHi[mid] = m
	return m
}

// quantileOf computes the q-quantile of a 1-D distribution by bisection on
// its CDF over the truncated support.
func quantileOf(d dist.Dist, lo, hi, q float64) float64 {
	target := q * d.Mass()
	if target <= 0 {
		return lo
	}
	for i := 0; i < 60 && hi-lo > 1e-12*(1+math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		if dist.CDF(d, mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// Len returns the number of live indexed items (tombstones excluded).
func (ix *Index) Len() int { return len(ix.entries) - len(ix.dead) + len(ix.overflow) }

// Stats reports what a query did: how many entries each phase touched.
type Stats struct {
	Visited  int // tree nodes whose intervals were inspected
	Pruned   int // overlapping candidates eliminated by x-bounds
	Verified int // candidates whose exact mass was computed
}

// RangeThreshold returns the RIDs whose probability mass inside [lo, hi] is
// at least p, in ascending RID order, along with query statistics. It is
// exact: x-bounds only ever prune true negatives, and survivors are
// verified against their pdfs.
func (ix *Index) RangeThreshold(lo, hi, p float64) ([]int64, Stats) {
	var out []int64
	var st Stats
	// Conservative grid threshold: the largest grid point strictly below p.
	// Strictness matters: the prune rules only establish mass <= q, so a
	// grid point equal to p would discard pdfs whose mass is exactly p —
	// which satisfy "mass >= p".
	gi := -1
	for i, q := range quantGrid {
		if q < p {
			gi = i
		}
	}
	visit := func(e *entry) {
		// x-bound pruning (both one-sided events bound the range mass):
		// mass[lo,hi] <= CDF(hi), so CDF(hi) <= q < p prunes — detectable
		// as hi < quantile(q) for a grid q < p. Symmetrically via 1-q.
		if gi >= 0 {
			if hi < e.leftQ[gi] {
				st.Pruned++
				return
			}
			// upper bound: mass[lo,hi] <= 1 - CDF(lo).
			ui := len(quantGrid) - 1 - gi // quantGrid[ui] = 1 - quantGrid[gi]
			if lo > e.leftQ[ui] {
				st.Pruned++
				return
			}
		}
		st.Verified++
		if dist.MassInterval(e.d, lo, hi) >= p {
			out = append(out, e.rid)
		}
	}
	ix.walk(0, len(ix.entries), lo, hi, visit, &st)
	ix.scanOverflow(lo, hi, visit, &st)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, st
}

// Candidates returns the RIDs whose support intervals overlap [lo, hi],
// without probability filtering.
func (ix *Index) Candidates(lo, hi float64) []int64 {
	var out []int64
	var st Stats
	collect := func(e *entry) { out = append(out, e.rid) }
	ix.walk(0, len(ix.entries), lo, hi, collect, &st)
	ix.scanOverflow(lo, hi, collect, &st)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scanOverflow linearly visits overflow entries overlapping [lo, hi].
func (ix *Index) scanOverflow(lo, hi float64, fn func(*entry), st *Stats) {
	for i := range ix.overflow {
		st.Visited++
		e := &ix.overflow[i]
		if e.lo <= hi && e.hi >= lo {
			fn(e)
		}
	}
}

// walk visits every entry whose [lo, hi] support overlaps the query range,
// pruning subtrees via the augmented maxima.
func (ix *Index) walk(a, b int, lo, hi float64, fn func(*entry), st *Stats) {
	if a >= b {
		return
	}
	mid := (a + b) / 2
	st.Visited++
	// If no support in this subtree reaches lo, nothing here overlaps.
	if ix.maxHi[mid] < lo {
		return
	}
	ix.walk(a, mid, lo, hi, fn, st)
	e := &ix.entries[mid]
	if e.lo <= hi && e.hi >= lo && !ix.dead[e.rid] {
		fn(e)
	}
	// Entries right of mid have e.lo >= entries[mid].lo; if even mid's lo
	// exceeds the query hi, so do all of theirs.
	if e.lo > hi {
		return
	}
	ix.walk(mid+1, b, lo, hi, fn, st)
}
