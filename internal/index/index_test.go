package index

import (
	"math/rand"
	"sort"
	"testing"

	"probdb/internal/dist"
	"probdb/internal/region"
	"probdb/internal/workload"
)

func buildItems(n int, seed int64) []Item {
	gen := workload.NewGen(seed)
	items := make([]Item, n)
	for i, rd := range gen.Readings(n) {
		items[i] = Item{RID: rd.RID, Dist: rd.Value}
	}
	return items
}

// bruteForce computes the exact answer by scanning.
func bruteForce(items []Item, lo, hi, p float64) []int64 {
	var out []int64
	for _, it := range items {
		if dist.MassInterval(it.Dist, lo, hi) >= p {
			out = append(out, it.RID)
		}
	}
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRangeThresholdMatchesBruteForce(t *testing.T) {
	items := buildItems(500, 21)
	ix := Build(items)
	if ix.Len() != 500 {
		t.Fatalf("len = %d", ix.Len())
	}
	gen := workload.NewGen(22)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		for i := 0; i < 40; i++ {
			q := gen.RangeQuery()
			got, _ := ix.RangeThreshold(q.Lo, q.Hi, p)
			want := bruteForce(items, q.Lo, q.Hi, p)
			if !equalIDs(got, want) {
				t.Fatalf("p=%v query [%v,%v]: got %v want %v", p, q.Lo, q.Hi, got, want)
			}
		}
	}
}

func TestPruningActuallyPrunes(t *testing.T) {
	items := buildItems(2000, 23)
	ix := Build(items)
	_, st := ix.RangeThreshold(40, 45, 0.8)
	if st.Verified >= 2000 {
		t.Errorf("index verified every entry (%d); tree pruning broken", st.Verified)
	}
	if st.Pruned == 0 {
		t.Error("x-bounds never pruned at a high threshold")
	}
	// High thresholds verify fewer candidates than low ones.
	_, lowSt := ix.RangeThreshold(40, 45, 0.05)
	if st.Verified > lowSt.Verified {
		t.Errorf("p=0.8 verified %d > p=0.05 verified %d", st.Verified, lowSt.Verified)
	}
}

func TestCandidatesOverlapOnly(t *testing.T) {
	items := []Item{
		{RID: 1, Dist: dist.NewUniform(0, 10)},
		{RID: 2, Dist: dist.NewUniform(20, 30)},
		{RID: 3, Dist: dist.NewUniform(5, 25)},
	}
	ix := Build(items)
	got := ix.Candidates(8, 12)
	if !equalIDs(got, []int64{1, 3}) {
		t.Errorf("candidates = %v", got)
	}
	if got := ix.Candidates(100, 200); len(got) != 0 {
		t.Errorf("disjoint query matched %v", got)
	}
}

func TestMixedDistributionKinds(t *testing.T) {
	items := []Item{
		{RID: 1, Dist: dist.NewGaussian(10, 1)},
		{RID: 2, Dist: dist.NewDiscrete([]float64{5, 15}, []float64{0.5, 0.5})},
		{RID: 3, Dist: dist.ToHistogram(dist.NewGaussian(20, 2), 5)},
		{RID: 4, Dist: dist.NewGaussian(0, 1).Floor(0, region.Compare(region.LT, 0))},
	}
	ix := Build(items)
	got, _ := ix.RangeThreshold(9, 11, 0.5)
	if !equalIDs(got, []int64{1}) {
		t.Errorf("got %v", got)
	}
	got, _ = ix.RangeThreshold(14, 16, 0.4)
	if !equalIDs(got, []int64{2}) {
		t.Errorf("got %v", got)
	}
}

func TestBuildPanicsOnJoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("joint distribution should panic")
		}
	}()
	Build([]Item{{RID: 1, Dist: dist.ProductOf(dist.NewGaussian(0, 1), dist.NewGaussian(0, 1))}})
}

func TestEmptyIndex(t *testing.T) {
	ix := Build(nil)
	if got, _ := ix.RangeThreshold(0, 1, 0.5); len(got) != 0 {
		t.Errorf("empty index returned %v", got)
	}
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(60)
		items := buildItems(n, int64(trial))
		ix := Build(items)
		lo := r.Float64() * 100
		hi := lo + r.Float64()*20
		p := r.Float64()
		got, _ := ix.RangeThreshold(lo, hi, p)
		want := bruteForce(items, lo, hi, p)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: [%v,%v] p=%v: got %v want %v", trial, lo, hi, p, got, want)
		}
	}
}

// TestInterleavedDML drives a randomized insert/delete/query sequence against
// the incremental index and checks every query against a brute-force scan of
// the live set — through enough churn to cross the rebuild threshold many
// times.
func TestInterleavedDML(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	gen := workload.NewGen(48)
	pool := gen.Readings(600)

	ix := Build(nil)
	live := map[int64]Item{}
	next := 0

	insert := func() {
		if next >= len(pool) {
			return
		}
		rd := pool[next]
		next++
		it := Item{RID: rd.RID, Dist: rd.Value}
		live[it.RID] = it
		ix.Insert(it)
	}
	remove := func() {
		for rid := range live {
			delete(live, rid)
			if !ix.Delete(rid) {
				t.Fatalf("Delete(%d) reported absent for a live RID", rid)
			}
			return
		}
	}
	check := func() {
		lo := r.Float64() * 100
		hi := lo + r.Float64()*20
		p := r.Float64()
		items := make([]Item, 0, len(live))
		for _, it := range live {
			items = append(items, it)
		}
		want := bruteForce(items, lo, hi, p)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got, _ := ix.RangeThreshold(lo, hi, p)
		if !equalIDs(got, want) {
			t.Fatalf("[%v,%v] p=%v: got %v want %v", lo, hi, p, got, want)
		}
		cands := ix.Candidates(lo, hi)
		seen := map[int64]bool{}
		for _, rid := range cands {
			if _, ok := live[rid]; !ok {
				t.Fatalf("Candidates returned deleted/unknown RID %d", rid)
			}
			if seen[rid] {
				t.Fatalf("Candidates returned duplicate RID %d", rid)
			}
			seen[rid] = true
		}
		for _, rid := range want {
			if !seen[rid] {
				t.Fatalf("qualifying RID %d missing from Candidates", rid)
			}
		}
	}

	rebuilt := false
	for step := 0; step < 2000; step++ {
		switch {
		case r.Float64() < 0.5:
			insert()
		case r.Float64() < 0.6:
			remove()
		default:
			check()
		}
		if ov, dead := ix.Fragmentation(); ov == 0 && dead == 0 && len(live) > rebuildFloor {
			rebuilt = true
		}
		if n := ix.Len(); n != len(live) {
			t.Fatalf("step %d: Len = %d, live = %d", step, n, len(live))
		}
	}
	if !rebuilt {
		t.Error("fragmentation never triggered a rebuild during 2000 DML steps")
	}
	check()

	// Deleting a missing RID reports false and changes nothing.
	if ix.Delete(1 << 40) {
		t.Error("Delete of unknown RID reported true")
	}
}
