// Package mc is the Monte-Carlo reference engine: it samples concrete
// worlds from a probabilistic table and evaluates queries on them, serving
// as the testing oracle for *continuous* distributions — the half of the
// model the possible-worlds enumerator (internal/pws) cannot reach. Where
// pws is exact and exponential, mc is approximate with CLT error bars and
// handles any pdf the dist layer can sample.
package mc

import (
	"math"
	"math/rand"

	"probdb/internal/core"
	"probdb/internal/exec"
	"probdb/internal/pws"
)

// SampleWorlds draws n independent concrete worlds from the base table,
// each with probability weight 1/n: per tuple and dependency set, the set's
// pdf either yields a concrete value vector (with probability equal to its
// mass) or marks the tuple absent. The result plugs into the pws package's
// Filter/JoinWorlds/Collapse machinery.
//
// Every world has its own RNG stream derived deterministically from (seed,
// world index), so the sampled worlds are identical at any degree of
// parallelism. SampleWorlds runs at the hardware default; SampleWorldsPar
// exposes the knob.
//
// Base tuples must be independent (Definition 2); do not sample derived
// tables whose tuples share history.
func SampleWorlds(t *core.Table, n int, seed int64, keyCols ...string) []pws.World {
	return SampleWorldsPar(t, n, seed, 0, keyCols...)
}

// SampleWorldsPar is SampleWorlds with an explicit degree of parallelism
// (0 = one worker per logical CPU, 1 = sequential). The output is
// byte-identical across settings.
func SampleWorldsPar(t *core.Table, n int, seed int64, par int, keyCols ...string) []pws.World {
	deps := t.DepSets()
	tuples := t.Tuples()
	nattrs := 0
	for _, set := range deps {
		nattrs += len(set)
	}
	// Tuple identities (key string + certain-column map) are the same in
	// every world; compute them once and share across worlds — rows are
	// read-only downstream, and this was the dominant allocation churn.
	keys := make([]string, len(tuples))
	certains := make([]map[string]core.Value, len(tuples))
	for ti, tup := range tuples {
		keys[ti], certains[ti] = identity(t, tup, keyCols)
	}
	worlds := make([]pws.World, n)
	w := 1 / float64(n)
	_ = exec.For(par, n, func(lo, hi int) error {
		for wi := lo; wi < hi; wi++ {
			r := rand.New(rand.NewSource(worldSeed(seed, wi)))
			rows := make([]pws.Row, 0, len(tuples))
			for ti, tup := range tuples {
				vals, exists := sampleTuple(t, tup, deps, nattrs, r)
				if !exists {
					continue
				}
				rows = append(rows, pws.Row{Key: keys[ti], Vals: vals, Certain: certains[ti]})
			}
			worlds[wi] = pws.World{Prob: w, Rows: rows}
		}
		return nil
	})
	return worlds
}

// worldSeed derives the RNG seed of world i from the caller's seed via a
// splitmix64 finalizer: statistically independent streams per world, and a
// world's stream depends only on (seed, i) — never on which worker drew it
// or how many worlds preceded it.
func worldSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func sampleTuple(t *core.Table, tup *core.Tuple, deps [][]string, nattrs int, r *rand.Rand) (map[string]float64, bool) {
	vals := make(map[string]float64, nattrs)
	for i, set := range deps {
		d := t.DepDist(tup, i)
		mass := d.Mass()
		if mass < 1 && r.Float64() >= mass {
			return nil, false // this dependency set "did not happen"
		}
		x := d.Sample(r)
		for j, name := range set {
			vals[name] = x[j]
		}
	}
	return vals, true
}

func identity(t *core.Table, tup *core.Tuple, keyCols []string) (string, map[string]core.Value) {
	certain := map[string]core.Value{}
	for _, c := range t.Schema().Columns() {
		if !c.Uncertain {
			v, _ := t.Value(tup, c.Name)
			certain[c.Name] = v
		}
	}
	key := ""
	for i, k := range keyCols {
		if i > 0 {
			key += "|"
		}
		key += certain[k].Render()
	}
	return key, certain
}

// Existence estimates, for every key, the probability that the source tuple
// contributes a row satisfying pred — the Monte-Carlo counterpart of a
// selection's per-tuple existence probability.
func Existence(worlds []pws.World, pred func(pws.Row) bool) map[string]float64 {
	out := map[string]float64{}
	for _, w := range worlds {
		for _, row := range w.Rows {
			if pred(row) {
				out[row.Key] += w.Prob
			}
		}
	}
	return out
}

// JoinExistence estimates per key-pair existence probabilities of a join
// between two independently sampled world sequences. Worlds are paired by
// index (both sequences must have equal length), which preserves the
// independence of the two tables while reusing each sample.
func JoinExistence(a, b []pws.World, pred func(ra, rb pws.Row) bool) map[string]float64 {
	if len(a) != len(b) {
		panic("mc: JoinExistence requires equally sized world samples")
	}
	out := map[string]float64{}
	for i := range a {
		for _, ra := range a[i].Rows {
			for _, rb := range b[i].Rows {
				if pred(ra, rb) {
					out[ra.Key+"|"+rb.Key] += a[i].Prob
				}
			}
		}
	}
	return out
}

// Tolerance returns a 4-sigma binomial confidence radius for an estimated
// probability from n samples — the comparison band for oracle checks.
func Tolerance(p float64, n int) float64 {
	v := p * (1 - p)
	if v < 0.25/float64(n) {
		v = 0.25 / float64(n) // floor: at least the worst-case granularity
	}
	return 4 * math.Sqrt(v/float64(n))
}
