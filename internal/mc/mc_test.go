package mc_test

import (
	"math"
	"math/rand"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/mc"
	"probdb/internal/pws"
	"probdb/internal/region"
)

const nWorlds = 60_000

func gaussTable(t *testing.T, reg *core.Registry, name, key, attr string, params [][3]float64) *core.Table {
	t.Helper()
	schema := core.MustSchema(
		core.Column{Name: key, Type: core.IntType},
		core.Column{Name: attr, Type: core.FloatType, Uncertain: true},
	)
	tbl, err := core.NewTable(name, schema, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range params {
		d := dist.Dist(dist.NewGaussian(p[0], p[1]))
		if p[2] > 0 { // pre-floored: a partial base pdf
			d = d.Floor(0, region.Compare(region.LT, p[2]))
		}
		if err := tbl.Insert(core.Row{
			Values: map[string]core.Value{key: core.Int(int64(i))},
			PDFs:   []core.PDF{{Attrs: []string{attr}, Dist: d}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestContinuousSelectMatchesMonteCarlo(t *testing.T) {
	tbl := gaussTable(t, nil, "T", "k", "x", [][3]float64{
		{20, 2, 0}, {25, 3, 0}, {13, 1, 15}, // third is partial (floored at 15)
	})
	sel, err := tbl.Select(core.Cmp(core.Col("x"), region.LT, core.LitF(22)))
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]float64{}
	for _, tup := range sel.Tuples() {
		k, _ := sel.Value(tup, "k")
		model[k.Render()] = sel.ExistenceProb(tup)
	}
	worlds := mc.SampleWorlds(tbl, nWorlds, 1, "k")
	est := mc.Existence(worlds, func(r pws.Row) bool { return r.Vals["x"] < 22 })
	for k, p := range model {
		if math.Abs(p-est[k]) > mc.Tolerance(p, nWorlds) {
			t.Errorf("key %s: model %v vs MC %v (tol %v)", k, p, est[k], mc.Tolerance(p, nWorlds))
		}
	}
}

func TestContinuousCrossAttributeSelectMatchesMonteCarlo(t *testing.T) {
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
		core.Column{Name: "y", Type: core.FloatType, Uncertain: true},
	)
	tbl := core.MustTable("T", schema, nil, nil)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 4; i++ {
		if err := tbl.Insert(core.Row{
			Values: map[string]core.Value{"k": core.Int(int64(i))},
			PDFs: []core.PDF{
				{Attrs: []string{"x"}, Dist: dist.NewGaussian(r.Float64()*10, 1+r.Float64()*2)},
				{Attrs: []string{"y"}, Dist: dist.NewUniform(0, 10+r.Float64()*5)},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := tbl.Select(core.Cmp(core.Col("x"), region.LT, core.Col("y")))
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]float64{}
	for _, tup := range sel.Tuples() {
		k, _ := sel.Value(tup, "k")
		model[k.Render()] = sel.ExistenceProb(tup)
	}
	worlds := mc.SampleWorlds(tbl, nWorlds, 2, "k")
	est := mc.Existence(worlds, func(row pws.Row) bool { return row.Vals["x"] < row.Vals["y"] })
	for k, p := range model {
		// The model's x<y floor goes through the grid approximation; allow
		// the grid's resolution error on top of the MC band.
		tol := mc.Tolerance(p, nWorlds) + 0.02
		if math.Abs(p-est[k]) > tol {
			t.Errorf("key %s: model %v vs MC %v (tol %v)", k, p, est[k], tol)
		}
	}
}

func TestContinuousJoinMatchesMonteCarlo(t *testing.T) {
	reg := core.NewRegistry()
	a := gaussTable(t, reg, "A", "ka", "x", [][3]float64{{5, 2, 0}, {12, 1, 0}})
	b := gaussTable(t, reg, "B", "kb", "y", [][3]float64{{8, 3, 0}})
	j, err := a.Join(b, core.Cmp(core.Col("x"), region.LT, core.Col("y")))
	if err != nil {
		t.Fatal(err)
	}
	model := map[string]float64{}
	for _, tup := range j.Tuples() {
		ka, _ := j.Value(tup, "ka")
		kb, _ := j.Value(tup, "kb")
		model[ka.Render()+"|"+kb.Render()] = j.ExistenceProb(tup)
	}
	wa := mc.SampleWorlds(a, nWorlds, 3, "ka")
	wb := mc.SampleWorlds(b, nWorlds, 4, "kb")
	est := mc.JoinExistence(wa, wb, func(ra, rb pws.Row) bool { return ra.Vals["x"] < rb.Vals["y"] })
	for k, p := range model {
		tol := mc.Tolerance(p, nWorlds) + 0.02
		if math.Abs(p-est[k]) > tol {
			t.Errorf("pair %s: model %v vs MC %v (tol %v)", k, p, est[k], tol)
		}
	}
}

func TestCorrelatedJointSelectMatchesMonteCarlo(t *testing.T) {
	// A correlated 2-D Gaussian dependency set: flooring one coordinate
	// must agree with sampling, including the shifted conditional mean.
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "x", Type: core.FloatType, Uncertain: true},
		core.Column{Name: "y", Type: core.FloatType, Uncertain: true},
	)
	tbl := core.MustTable("T", schema, [][]string{{"x", "y"}}, nil)
	mvn := dist.MustMultiGaussian([]float64{0, 0}, [][]float64{{1, 0.6}, {0.6, 1}})
	if err := tbl.Insert(core.Row{
		Values: map[string]core.Value{"k": core.Int(0)},
		PDFs:   []core.PDF{{Attrs: []string{"x", "y"}, Dist: mvn}},
	}); err != nil {
		t.Fatal(err)
	}
	sel, err := tbl.Select(core.Cmp(core.Col("x"), region.GT, core.LitF(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	modelP := sel.ExistenceProb(sel.Tuples()[0])
	dy, err := sel.DistOf(sel.Tuples()[0], "y")
	if err != nil {
		t.Fatal(err)
	}
	modelEY := dy.Mean(0)

	worlds := mc.SampleWorlds(tbl, nWorlds, 5, "k")
	var hit, sumY float64
	for _, w := range worlds {
		for _, row := range w.Rows {
			if row.Vals["x"] > 0.5 {
				hit += w.Prob
				sumY += row.Vals["y"] * w.Prob
			}
		}
	}
	if math.Abs(modelP-hit) > mc.Tolerance(modelP, nWorlds)+0.02 {
		t.Errorf("existence: model %v vs MC %v", modelP, hit)
	}
	mcEY := sumY / hit
	if math.Abs(modelEY-mcEY) > 0.05 {
		t.Errorf("conditional E[y]: model %v vs MC %v", modelEY, mcEY)
	}
}

func TestAggregateSumMatchesMonteCarlo(t *testing.T) {
	tbl := gaussTable(t, nil, "T", "k", "x", [][3]float64{
		{10, 2, 0}, {20, 3, 0}, {5, 1, 6}, // third partial
	})
	sum, err := tbl.AggregateSum("x", core.AggOptions{})
	if err != nil {
		t.Fatal(err)
	}
	worlds := mc.SampleWorlds(tbl, nWorlds, 6, "k")
	var mean float64
	for _, w := range worlds {
		var s float64
		for _, row := range w.Rows {
			s += row.Vals["x"]
		}
		mean += s * w.Prob
	}
	if math.Abs(sum.Mean(0)*sumMass(sum)-mean) > 0.1 {
		t.Errorf("aggregate mean: model %v vs MC %v", sum.Mean(0)*sumMass(sum), mean)
	}
}

func sumMass(d dist.Dist) float64 { return d.Mass() }

func TestToleranceBehaviour(t *testing.T) {
	if mc.Tolerance(0.5, 10_000) < mc.Tolerance(0.5, 100_000) {
		t.Error("tolerance should shrink with more samples")
	}
	if mc.Tolerance(0, 100) <= 0 {
		t.Error("tolerance floor missing")
	}
}
