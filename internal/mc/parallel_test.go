package mc_test

import (
	"math"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/mc"
)

func sampleTable(t *testing.T) *core.Table {
	t.Helper()
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "v", Type: core.FloatType, Uncertain: true},
		core.Column{Name: "w", Type: core.FloatType, Uncertain: true},
	)
	tbl := core.MustTable("S", schema, nil, nil)
	for i := 0; i < 20; i++ {
		partial := dist.NewDiscrete(
			[]float64{float64(i), float64(i) + 1},
			[]float64{0.4, 0.3},
		)
		if err := tbl.Insert(core.Row{
			Values: map[string]core.Value{"k": core.Int(int64(i))},
			PDFs: []core.PDF{
				{Attrs: []string{"v"}, Dist: dist.NewGaussian(float64(i), 1+float64(i%3))},
				{Attrs: []string{"w"}, Dist: partial},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestSampleWorldsParallelDifferential: the worlds drawn at parallelism 1
// and parallelism 4 are identical — keys, values (bitwise), existence
// pattern, and order.
func TestSampleWorldsParallelDifferential(t *testing.T) {
	tbl := sampleTable(t)
	const n = 200
	seq := mc.SampleWorldsPar(tbl, n, 42, 1, "k")
	par := mc.SampleWorldsPar(tbl, n, 42, 4, "k")
	if len(seq) != len(par) {
		t.Fatalf("world counts differ: %d vs %d", len(seq), len(par))
	}
	for wi := range seq {
		sw, pw := seq[wi], par[wi]
		if sw.Prob != pw.Prob || len(sw.Rows) != len(pw.Rows) {
			t.Fatalf("world %d shape differs: %d/%v vs %d/%v rows",
				wi, len(sw.Rows), sw.Prob, len(pw.Rows), pw.Prob)
		}
		for ri := range sw.Rows {
			sr, pr := sw.Rows[ri], pw.Rows[ri]
			if sr.Key != pr.Key {
				t.Fatalf("world %d row %d key differs: %q vs %q", wi, ri, sr.Key, pr.Key)
			}
			if len(sr.Vals) != len(pr.Vals) {
				t.Fatalf("world %d row %d val count differs", wi, ri)
			}
			for name, sv := range sr.Vals {
				pv, ok := pr.Vals[name]
				if !ok || math.Float64bits(sv) != math.Float64bits(pv) {
					t.Fatalf("world %d row %d %s differs bitwise: %v vs %v", wi, ri, name, sv, pv)
				}
			}
		}
	}
}

// TestSampleWorldsSeedSensitivity: different seeds produce different
// worlds (the per-world streams actually vary).
func TestSampleWorldsSeedSensitivity(t *testing.T) {
	tbl := sampleTable(t)
	a := mc.SampleWorlds(tbl, 50, 1, "k")
	b := mc.SampleWorlds(tbl, 50, 2, "k")
	same := true
outer:
	for wi := range a {
		if len(a[wi].Rows) != len(b[wi].Rows) {
			same = false
			break
		}
		for ri := range a[wi].Rows {
			for name, av := range a[wi].Rows[ri].Vals {
				if bv, ok := b[wi].Rows[ri].Vals[name]; !ok || av != bv {
					same = false
					break outer
				}
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 drew identical world sets")
	}
}

// BenchmarkSampleWorlds tracks the sampler's allocation profile (the
// preallocation/identity-sharing fixes show up in allocs/op).
func BenchmarkSampleWorlds(b *testing.B) {
	tbl := sampleTableB(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mc.SampleWorldsPar(tbl, 100, 7, 1, "k")
	}
}

func sampleTableB(b *testing.B) *core.Table {
	b.Helper()
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "v", Type: core.FloatType, Uncertain: true},
	)
	tbl := core.MustTable("S", schema, nil, nil)
	for i := 0; i < 50; i++ {
		if err := tbl.Insert(core.Row{
			Values: map[string]core.Value{"k": core.Int(int64(i))},
			PDFs:   []core.PDF{{Attrs: []string{"v"}, Dist: dist.NewGaussian(float64(i), 2)}},
		}); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}
