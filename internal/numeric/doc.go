// Package numeric provides the statistical and numerical routines that the
// probability-distribution layer is built on: normal distribution functions,
// log-gamma based combinatorics, compensated (Kahan) summation, adaptive
// Simpson quadrature, and robust root finding.
//
// The package exists because the Go standard library deliberately ships only
// the special functions themselves (math.Erf, math.Lgamma); everything a
// probabilistic database needs on top of them — CDFs, quantiles, numerically
// stable tail probabilities, integration of user-supplied densities — lives
// here. All routines are deterministic and allocation-free unless documented
// otherwise.
package numeric
