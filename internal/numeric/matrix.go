package numeric

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite reports a Cholesky factorization failure.
var ErrNotPositiveDefinite = errors.New("numeric: matrix is not positive definite")

// Cholesky returns the lower-triangular L with L·Lᵀ = A for a symmetric
// positive-definite matrix A (given as rows). The input is not modified.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		if len(a[i]) != n {
			return nil, errors.New("numeric: Cholesky of non-square matrix")
		}
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s KahanSum
			for k := 0; k < j; k++ {
				s.Add(l[i][k] * l[j][k])
			}
			v := a[i][j] - s.Value()
			if i == j {
				if v <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l[i][i] = math.Sqrt(v)
			} else {
				l[i][j] = v / l[j][j]
			}
		}
	}
	return l, nil
}

// ForwardSolve solves L·x = b for lower-triangular L.
func ForwardSolve(l [][]float64, b []float64) []float64 {
	n := len(l)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		v := b[i]
		for k := 0; k < i; k++ {
			v -= l[i][k] * x[k]
		}
		x[i] = v / l[i][i]
	}
	return x
}
