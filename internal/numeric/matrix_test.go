package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyIdentity(t *testing.T) {
	l, err := Cholesky([][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if l[0][0] != 1 || l[1][1] != 1 || l[0][1] != 0 || l[1][0] != 0 {
		t.Errorf("chol(I) = %v", l)
	}
}

func TestCholeskyRandomSPD(t *testing.T) {
	// A·Aᵀ + n·I is symmetric positive definite for any A.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(6)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.NormFloat64()
			}
		}
		spd := make([][]float64, n)
		for i := range spd {
			spd[i] = make([]float64, n)
			for j := range spd[i] {
				for k := 0; k < n; k++ {
					spd[i][j] += a[i][k] * a[j][k]
				}
				if i == j {
					spd[i][j] += float64(n)
				}
			}
		}
		l, err := Cholesky(spd)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// L·Lᵀ must reproduce the input.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += l[i][k] * l[j][k]
				}
				if math.Abs(s-spd[i][j]) > 1e-9*(1+math.Abs(spd[i][j])) {
					t.Fatalf("trial %d: (L·Lᵀ)[%d][%d] = %v, want %v", trial, i, j, s, spd[i][j])
				}
			}
		}
		// ForwardSolve round trip: L·x = b.
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x := ForwardSolve(l, b)
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k <= i; k++ {
				s += l[i][k] * x[k]
			}
			if math.Abs(s-b[i]) > 1e-9*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d: solve row %d: %v != %v", trial, i, s, b[i])
			}
		}
	}
}

func TestCholeskyErrors(t *testing.T) {
	if _, err := Cholesky([][]float64{{1, 2}, {2, 1}}); err != ErrNotPositiveDefinite {
		t.Errorf("non-PD error = %v", err)
	}
	if _, err := Cholesky([][]float64{{-1}}); err != ErrNotPositiveDefinite {
		t.Errorf("negative diagonal error = %v", err)
	}
	if _, err := Cholesky([][]float64{{1, 2}}); err == nil {
		t.Error("non-square matrix should fail")
	}
	if l, err := Cholesky(nil); err != nil || len(l) != 0 {
		t.Errorf("empty matrix: %v, %v", l, err)
	}
}

func TestLogChoosePanics(t *testing.T) {
	for _, c := range [][2]int{{-1, 0}, {2, 3}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogChoose(%d,%d) should panic", c[0], c[1])
				}
			}()
			LogChoose(c[0], c[1])
		}()
	}
}
