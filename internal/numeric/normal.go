package numeric

import "math"

// invSqrt2 is 1/sqrt(2), used to map the normal CDF onto math.Erf.
const invSqrt2 = 0.7071067811865475244008443621048490392848359376884740

// sqrt2Pi is sqrt(2*pi), the normalizing constant of the normal density.
const sqrt2Pi = 2.5066282746310005024157652848110452530069867406099383

// NormalPDF returns the density of the normal distribution with mean mu and
// standard deviation sigma at x. sigma must be positive.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * sqrt2Pi)
}

// NormalCDF returns P[X <= x] for X ~ Normal(mu, sigma^2). sigma must be
// positive. The implementation uses math.Erfc on the appropriate side of the
// mean so that deep tail probabilities do not lose precision to cancellation.
func NormalCDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	if z < 0 {
		return 0.5 * math.Erfc(-z*invSqrt2)
	}
	return 1 - 0.5*math.Erfc(z*invSqrt2)
}

// NormalInterval returns P[lo <= X <= hi] for X ~ Normal(mu, sigma^2). It is
// exact up to floating point for lo <= hi and returns 0 when lo > hi.
func NormalInterval(lo, hi, mu, sigma float64) float64 {
	if lo > hi {
		return 0
	}
	p := NormalCDF(hi, mu, sigma) - NormalCDF(lo, mu, sigma)
	if p < 0 {
		return 0
	}
	return p
}

// NormalQuantile returns the p-quantile of Normal(mu, sigma^2), i.e. the x
// with NormalCDF(x, mu, sigma) = p. It panics if p is outside (0, 1).
//
// The rational approximation of Acklam (relative error < 1.15e-9) is refined
// with one Halley step against the exact CDF, giving results accurate to a
// few ulps across the whole open interval.
func NormalQuantile(p, mu, sigma float64) float64 {
	if !(p > 0 && p < 1) {
		panic("numeric: NormalQuantile requires p in (0,1)")
	}
	return mu + sigma*standardNormalQuantile(p)
}

// Coefficients of Acklam's inverse-normal approximation.
var (
	invNormA = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	invNormB = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	invNormC = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	invNormD = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
)

func standardNormalQuantile(p float64) float64 {
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((invNormC[0]*q+invNormC[1])*q+invNormC[2])*q+invNormC[3])*q+invNormC[4])*q + invNormC[5]) /
			((((invNormD[0]*q+invNormD[1])*q+invNormD[2])*q+invNormD[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((invNormA[0]*r+invNormA[1])*r+invNormA[2])*r+invNormA[3])*r+invNormA[4])*r + invNormA[5]) * q /
			(((((invNormB[0]*r+invNormB[1])*r+invNormB[2])*r+invNormB[3])*r+invNormB[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((invNormC[0]*q+invNormC[1])*q+invNormC[2])*q+invNormC[3])*q+invNormC[4])*q + invNormC[5]) /
			((((invNormD[0]*q+invNormD[1])*q+invNormD[2])*q+invNormD[3])*q + 1)
	}
	// One Halley refinement step against the exact CDF.
	e := 0.5*math.Erfc(-x*invSqrt2) - p
	u := e * sqrt2Pi * math.Exp(0.5*x*x)
	x -= u / (1 + 0.5*x*u)
	return x
}
