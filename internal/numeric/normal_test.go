package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNormalPDFKnownValues(t *testing.T) {
	cases := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.3989422804014327},
		{1, 0, 1, 0.24197072451914337},
		{-1, 0, 1, 0.24197072451914337},
		{20, 20, math.Sqrt(5), 0.17841241161527712},
		{5, 2, 3, 0.08065690817304777},
	}
	for _, c := range cases {
		got := NormalPDF(c.x, c.mu, c.sigma)
		if !almostEqual(got, c.want, 1e-14) {
			t.Errorf("NormalPDF(%v,%v,%v) = %v, want %v", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1.959963984540054, 0, 1, 0.975},
		{-1.959963984540054, 0, 1, 0.025},
		{1, 0, 1, 0.8413447460685429},
		{25, 20, math.Sqrt(5), 0.9873263406612659}, // z = sqrt(5)
	}
	for _, c := range cases {
		got := NormalCDF(c.x, c.mu, c.sigma)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v,%v,%v) = %v, want %v", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormalCDFTails(t *testing.T) {
	if p := NormalCDF(-25, 0, 1); p <= 0 || p > 1e-130 {
		t.Errorf("deep lower tail should be tiny positive, got %v", p)
	}
	if p := NormalCDF(40, 0, 1); p != 1 {
		t.Errorf("deep upper tail should round to 1, got %v", p)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	f := func(z float64) bool {
		z = math.Mod(z, 8)
		lo := NormalCDF(-z, 0, 1)
		hi := NormalCDF(z, 0, 1)
		return almostEqual(lo+hi, 1, 1e-13)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 100), math.Mod(b, 100)
		if a > b {
			a, b = b, a
		}
		return NormalCDF(a, 3, 2) <= NormalCDF(b, 3, 2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalInterval(t *testing.T) {
	// One, two, three sigma coverage of N(0,1).
	for i, want := range []float64{0.6826894921370859, 0.9544997361036416, 0.9973002039367398} {
		z := float64(i + 1)
		got := NormalInterval(-z, z, 0, 1)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("NormalInterval(±%v) = %v, want %v", z, got, want)
		}
	}
	if NormalInterval(5, 3, 0, 1) != 0 {
		t.Error("inverted interval should yield 0")
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-6, 0.01, 0.025, 0.3, 0.5, 0.7, 0.975, 0.99, 1 - 1e-6} {
		x := NormalQuantile(p, 0, 1)
		back := NormalCDF(x, 0, 1)
		if !almostEqual(back, p, 1e-12*math.Max(1, 1/p)) {
			t.Errorf("round trip p=%v -> x=%v -> %v", p, x, back)
		}
	}
}

func TestNormalQuantileShifted(t *testing.T) {
	x := NormalQuantile(0.5, 42, 7)
	if !almostEqual(x, 42, 1e-12) {
		t.Errorf("median of N(42,49) = %v, want 42", x)
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) should panic", p)
				}
			}()
			NormalQuantile(p, 0, 1)
		}()
	}
}

func TestIntegrateNormalPDFMatchesCDF(t *testing.T) {
	got := Integrate(func(x float64) float64 { return NormalPDF(x, 20, math.Sqrt(5)) }, 15, 25, 1e-12)
	want := NormalInterval(15, 25, 20, math.Sqrt(5))
	if !almostEqual(got, want, 1e-10) {
		t.Errorf("integral = %v, CDF difference = %v", got, want)
	}
}
