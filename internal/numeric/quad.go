package numeric

import "math"

// Integrate numerically integrates f over [a, b] with adaptive Simpson
// quadrature to the given absolute tolerance. It handles a == b (returning 0)
// and a > b (returning the negated integral). Recursion depth is bounded; on
// hitting the bound the best available estimate is returned, so the routine
// always terminates even on pathological integrands.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	if a == b {
		return 0
	}
	if a > b {
		return -Integrate(f, b, a, tol)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	fa, fb := f(a), f(b)
	m, fm, whole := simpsonStep(f, a, b, fa, fb)
	return adaptiveSimpson(f, a, b, fa, fb, m, fm, whole, tol, 52)
}

// simpsonStep evaluates one Simpson estimate of the integral over [a, b],
// returning the midpoint, f(midpoint) and the estimate.
func simpsonStep(f func(float64) float64, a, b, fa, fb float64) (m, fm, s float64) {
	m = a + (b-a)/2
	fm = f(m)
	s = (b - a) / 6 * (fa + 4*fm + fb)
	return m, fm, s
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, m, fm, whole, tol float64, depth int) float64 {
	lm, flm, left := simpsonStep(f, a, m, fa, fm)
	rm, frm, right := simpsonStep(f, m, b, fm, fb)
	delta := left + right - whole
	if depth <= 0 || math.Abs(delta) <= 15*tol {
		return left + right + delta/15
	}
	return adaptiveSimpson(f, a, m, fa, fm, lm, flm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, fb, rm, frm, right, tol/2, depth-1)
}

// Bisect finds a root of f in [a, b] assuming f(a) and f(b) bracket one
// (have opposite signs). It returns the midpoint of the final bracket after
// shrinking it below tol, or panics if the root is not bracketed.
func Bisect(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a
	}
	if fb == 0 {
		return b
	}
	if (fa > 0) == (fb > 0) {
		panic("numeric: Bisect requires a sign change over [a,b]")
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 200 && b-a > tol; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 {
			return m
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return a + (b-a)/2
}
