package numeric

import "math"

// LogFactorial returns ln(n!). It panics for negative n. Small values are
// served from a table; larger ones fall back to math.Lgamma.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic("numeric: LogFactorial of negative n")
	}
	if n < len(logFactTable) {
		return logFactTable[n]
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

var logFactTable = buildLogFactTable()

func buildLogFactTable() [128]float64 {
	var t [128]float64
	acc := 0.0
	for i := 2; i < len(t); i++ {
		acc += math.Log(float64(i))
		t[i] = acc
	}
	return t
}

// LogChoose returns ln(C(n, k)), the log binomial coefficient. It panics when
// the arguments do not satisfy 0 <= k <= n.
func LogChoose(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		panic("numeric: LogChoose arguments out of range")
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomialPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// PoissonPMF returns P[X = k] for X ~ Poisson(lambda).
func PoissonPMF(k int, lambda float64) float64 {
	if k < 0 || lambda < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	return math.Exp(float64(k)*math.Log(lambda) - lambda - LogFactorial(k))
}

// GeometricPMF returns P[X = k] for X ~ Geometric(p), counting the number of
// failures before the first success (support {0, 1, 2, ...}).
func GeometricPMF(k int, p float64) float64 {
	if k < 0 || p <= 0 || p > 1 {
		return 0
	}
	if k == 0 {
		return p // avoids 0 * log1p(-1) = NaN when p == 1
	}
	return math.Exp(float64(k)*math.Log1p(-p)) * p
}
