package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorialSmall(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if !almostEqual(got, w, w*1e-12) {
			t.Errorf("exp(LogFactorial(%d)) = %v, want %v", n, got, w)
		}
	}
}

func TestLogFactorialLargeMatchesLgamma(t *testing.T) {
	for _, n := range []int{127, 128, 500, 10000} {
		want, _ := math.Lgamma(float64(n) + 1)
		if got := LogFactorial(n); !almostEqual(got, want, 1e-9) {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestLogFactorialPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LogFactorial(-1) should panic")
		}
	}()
	LogFactorial(-1)
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if !almostEqual(got, c.want, c.want*1e-10) {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0, 0.2, 0.5, 0.9, 1} {
		var s KahanSum
		for k := 0; k <= 40; k++ {
			s.Add(BinomialPMF(k, 40, p))
		}
		if !almostEqual(s.Value(), 1, 1e-12) {
			t.Errorf("Binomial(40,%v) pmf sums to %v", p, s.Value())
		}
	}
}

func TestBinomialPMFOutOfSupport(t *testing.T) {
	if BinomialPMF(-1, 10, 0.5) != 0 || BinomialPMF(11, 10, 0.5) != 0 {
		t.Error("pmf outside support must be 0")
	}
}

func TestPoissonPMFKnown(t *testing.T) {
	// P[X=0] for lambda=2 is e^-2.
	if got := PoissonPMF(0, 2); !almostEqual(got, math.Exp(-2), 1e-14) {
		t.Errorf("PoissonPMF(0,2) = %v", got)
	}
	// Mode of Poisson(4) is at k=3 and k=4 with equal mass.
	if !almostEqual(PoissonPMF(3, 4), PoissonPMF(4, 4), 1e-14) {
		t.Error("Poisson(4) should have equal mass at 3 and 4")
	}
	if PoissonPMF(-1, 2) != 0 {
		t.Error("negative support must have zero mass")
	}
	if PoissonPMF(0, 0) != 1 {
		t.Error("Poisson(0) is a point mass at 0")
	}
}

func TestPoissonPMFNearlySumsToOne(t *testing.T) {
	var s KahanSum
	for k := 0; k < 200; k++ {
		s.Add(PoissonPMF(k, 30))
	}
	if !almostEqual(s.Value(), 1, 1e-10) {
		t.Errorf("Poisson(30) pmf sums to %v over [0,200)", s.Value())
	}
}

func TestGeometricPMF(t *testing.T) {
	if got := GeometricPMF(0, 0.25); !almostEqual(got, 0.25, 1e-15) {
		t.Errorf("GeometricPMF(0,0.25) = %v", got)
	}
	if got := GeometricPMF(2, 0.25); !almostEqual(got, 0.75*0.75*0.25, 1e-15) {
		t.Errorf("GeometricPMF(2,0.25) = %v", got)
	}
	var s KahanSum
	for k := 0; k < 400; k++ {
		s.Add(GeometricPMF(k, 0.1))
	}
	if !almostEqual(s.Value(), 1, 1e-12) {
		t.Errorf("Geometric(0.1) sums to %v", s.Value())
	}
}

func TestKahanSumCompensates(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms entirely.
	var s KahanSum
	s.Add(1)
	for i := 0; i < 10_000_000; i++ {
		s.Add(1e-16)
	}
	if got, want := s.Value(), 1+1e-9; !almostEqual(got, want, 1e-12) {
		t.Errorf("compensated sum = %.18f, want %.18f", got, want)
	}
	s.Reset()
	if s.Value() != 0 {
		t.Error("Reset should zero the accumulator")
	}
}

func TestSumMatchesLoop(t *testing.T) {
	f := func(vs []float64) bool {
		for i, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vs[i] = math.Mod(v, 1e6) // keep magnitudes bounded so plain sum cannot overflow
		}
		var plain float64
		for _, v := range vs {
			plain += v
		}
		// Kahan should be at least as accurate; just require agreement to
		// within a loose relative tolerance for random inputs.
		k := Sum(vs)
		scale := math.Max(1, math.Abs(plain))
		return math.Abs(k-plain) <= 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.0000001, 1},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIntegratePolynomial(t *testing.T) {
	// Integral of x^2 over [0,3] is 9.
	got := Integrate(func(x float64) float64 { return x * x }, 0, 3, 1e-12)
	if !almostEqual(got, 9, 1e-10) {
		t.Errorf("integral = %v, want 9", got)
	}
	// Reversed limits negate.
	if got := Integrate(func(x float64) float64 { return x * x }, 3, 0, 1e-12); !almostEqual(got, -9, 1e-10) {
		t.Errorf("reversed integral = %v, want -9", got)
	}
	if got := Integrate(math.Sin, 2, 2, 1e-12); got != 0 {
		t.Errorf("empty interval integral = %v, want 0", got)
	}
}

func TestIntegrateSharpPeak(t *testing.T) {
	// Narrow Gaussian inside a wide interval still integrates to ~1.
	got := Integrate(func(x float64) float64 { return NormalPDF(x, 50, 0.05) }, 0, 100, 1e-12)
	if !almostEqual(got, 1, 1e-6) {
		t.Errorf("sharp peak integral = %v, want 1", got)
	}
}

func TestBisect(t *testing.T) {
	root := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-13)
	if !almostEqual(root, math.Sqrt2, 1e-12) {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
	if got := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-13); got != 0 {
		t.Errorf("exact endpoint root = %v, want 0", got)
	}
}

func TestBisectPanicsWithoutBracket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bisect without sign change should panic")
		}
	}()
	Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12)
}
