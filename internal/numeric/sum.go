package numeric

// KahanSum accumulates floating point values with Neumaier's improved
// compensated summation. The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add folds v into the running sum.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if abs(k.sum) >= abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated total.
func (k *KahanSum) Value() float64 { return k.sum + k.c }

// Reset clears the accumulator back to zero.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// Sum returns the compensated sum of vs.
func Sum(vs []float64) float64 {
	var k KahanSum
	for _, v := range vs {
		k.Add(v)
	}
	return k.Value()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Clamp01 clips p into the closed interval [0, 1]. Probability arithmetic on
// floats routinely drifts a few ulps past the boundary; every mass or
// probability the package reports is clamped through here.
func Clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
