package pipe

import "container/heap"

// This file is the order-preserving fan-in the cluster router builds its
// scatter-gather on: k already-sorted streams merged into one sorted
// stream, pulling each input lazily so the merge holds one item per input
// — never a materialized union. It is generic over the item type because
// the router merges wire-level rows (with precomputed sort keys), not
// core tuples; the engine-side operators keep their own tuple-typed
// Sort/TopK.

// Cursor is one sorted input of MergeSorted: each call returns the next
// item in that input's order, ok=false at exhaustion. A Cursor must be
// cheap to call — blocking inside one stalls the whole merge.
type Cursor[T any] func() (item T, ok bool, err error)

// mergeEntry is one input's head item in the loser heap.
type mergeEntry[T any] struct {
	item T
	src  int
}

type mergeHeap[T any] struct {
	es   []mergeEntry[T]
	less func(a, b T) bool
	// tie breaks equal items by source index, keeping the merge
	// deterministic when the ordering key alone does not decide.
	tie bool
}

func (h *mergeHeap[T]) Len() int { return len(h.es) }
func (h *mergeHeap[T]) Less(i, j int) bool {
	if h.less(h.es[i].item, h.es[j].item) {
		return true
	}
	if h.tie && !h.less(h.es[j].item, h.es[i].item) {
		return h.es[i].src < h.es[j].src
	}
	return false
}
func (h *mergeHeap[T]) Swap(i, j int)       { h.es[i], h.es[j] = h.es[j], h.es[i] }
func (h *mergeHeap[T]) Push(x any)          { h.es = append(h.es, x.(mergeEntry[T])) }
func (h *mergeHeap[T]) Pop() (x any)        { n := len(h.es); x, h.es = h.es[n-1], h.es[:n-1]; return }
func (h *mergeHeap[T]) head() mergeEntry[T] { return h.es[0] }

// MergeSorted merges the cursors — each already sorted under less — into
// one stream delivered to emit in sorted order. Items comparing equal are
// emitted in cursor order (input 0 first), so a deterministic tie-break in
// less is not required for a deterministic merge. emit returning an error
// aborts the merge and returns that error; limit < 0 means unlimited,
// otherwise the merge stops after limit items (early-out for LIMIT
// pushdown).
func MergeSorted[T any](cursors []Cursor[T], less func(a, b T) bool, limit int, emit func(T) error) error {
	h := &mergeHeap[T]{less: less, tie: true}
	for i, c := range cursors {
		item, ok, err := c()
		if err != nil {
			return err
		}
		if ok {
			h.es = append(h.es, mergeEntry[T]{item: item, src: i})
		}
	}
	heap.Init(h)
	emitted := 0
	for h.Len() > 0 {
		if limit >= 0 && emitted >= limit {
			return nil
		}
		e := h.head()
		if err := emit(e.item); err != nil {
			return err
		}
		emitted++
		item, ok, err := cursors[e.src]()
		if err != nil {
			return err
		}
		if ok {
			h.es[0] = mergeEntry[T]{item: item, src: e.src}
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return nil
}
