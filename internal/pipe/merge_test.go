package pipe

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func sliceCursor(xs []int) Cursor[int] {
	i := 0
	return func() (int, bool, error) {
		if i >= len(xs) {
			return 0, false, nil
		}
		v := xs[i]
		i++
		return v, true, nil
	}
}

// TestMergeSortedRandom merges random pre-sorted partitions and checks the
// output equals the stable sort of the union — including duplicate keys,
// empty inputs, and every limit.
func TestMergeSortedRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(5)
		parts := make([][]int, k)
		var union []int
		for i := range parts {
			n := r.Intn(10)
			for j := 0; j < n; j++ {
				parts[i] = append(parts[i], r.Intn(8)) // heavy duplicates
			}
			sort.Ints(parts[i])
			union = append(union, parts[i]...)
		}
		sort.Ints(union)
		limit := -1
		if trial%3 == 0 {
			limit = r.Intn(len(union) + 2)
		}
		cursors := make([]Cursor[int], k)
		for i := range parts {
			cursors[i] = sliceCursor(parts[i])
		}
		var got []int
		if err := MergeSorted(cursors, func(a, b int) bool { return a < b }, limit, func(v int) error {
			got = append(got, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := union
		if limit >= 0 && limit < len(union) {
			want = union[:limit]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d items, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: item %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeSortedTieOrder: equal keys must come out in cursor order —
// the property the router's shard merge leans on when ordering keys tie.
func TestMergeSortedTieOrder(t *testing.T) {
	type row struct {
		key, src int
	}
	cursors := []Cursor[row]{}
	for s := 0; s < 3; s++ {
		src := s
		rows := []row{{1, src}, {1, src}, {2, src}}
		i := 0
		cursors = append(cursors, func() (row, bool, error) {
			if i >= len(rows) {
				return row{}, false, nil
			}
			v := rows[i]
			i++
			return v, true, nil
		})
	}
	var got []row
	if err := MergeSorted(cursors, func(a, b row) bool { return a.key < b.key }, -1, func(v row) error {
		got = append(got, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []row{{1, 0}, {1, 0}, {1, 1}, {1, 1}, {1, 2}, {1, 2}, {2, 0}, {2, 1}, {2, 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %+v, want %+v (full: %+v)", i, got[i], want[i], got)
		}
	}
}

// TestMergeSortedErrors: cursor and emit errors abort the merge.
func TestMergeSortedErrors(t *testing.T) {
	boom := errors.New("boom")
	bad := func() (int, bool, error) { return 0, false, boom }
	if err := MergeSorted([]Cursor[int]{bad}, func(a, b int) bool { return a < b }, -1,
		func(int) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("cursor error %v, want boom", err)
	}
	if err := MergeSorted([]Cursor[int]{sliceCursor([]int{1, 2})},
		func(a, b int) bool { return a < b }, -1,
		func(v int) error { return fmt.Errorf("emit %d: %w", v, boom) }); !errors.Is(err, boom) {
		t.Fatalf("emit error %v, want boom", err)
	}
}
