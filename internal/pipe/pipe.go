// Package pipe is the pipelined physical-operator layer: a Volcano-style
// Open/Next/Close interface over fixed-size batches of core tuples. The
// paper's closure property Ω makes selection, projection and join emit
// tuples independently of one another, so a tree of these operators
// produces exactly the tuples — bit for bit, in the same order — that the
// materializing *Table methods produce, while holding only O(batch) rows
// at a time and terminating early under LIMIT.
//
// Operators do no relational reasoning of their own: the per-tuple work is
// the compiled kernels of internal/core (Selection, ProbSelection,
// CrossKernel, EquiJoinKernel), planned once by the query layer against
// header tables and evaluated here one batch at a time. That shared
// planning state is what keeps the streaming and materializing executors
// byte-identical.
package pipe

import (
	"container/heap"
	"context"
	"sort"
	"sync/atomic"

	"probdb/internal/core"
	"probdb/internal/exec"
	"probdb/internal/govern"
)

// BatchSize is the default number of tuples per batch: large enough that
// exec.For parallelizes within a batch (its sequential threshold is 32) and
// per-batch overhead vanishes, small enough that a selective LIMIT query
// touches a few hundred rows, not the table.
const BatchSize = 256

// Operator is one node of a physical plan. The contract:
//
//   - Open(ctx) acquires resources; pipeline breakers (TopK, Sort, Project)
//     drain their child here. Open must be called exactly once, before
//     Next, and balanced by Close even when it fails.
//   - Header() is the empty derived table defining the output shape (name,
//     schema, dependency sets); valid once Open has returned.
//   - Next returns the next batch: a non-empty slice, or nil when the
//     stream is exhausted. Batches must not be mutated by callers.
//   - Close releases resources, closes children, and is idempotent.
type Operator interface {
	Header() *core.Table
	Open(ctx context.Context) error
	Next() ([]*core.Tuple, error)
	Close() error
}

// openOps counts currently-open operators, for leak assertions in tests:
// after a query finishes — or is cancelled mid-stream — it must be zero.
var openOps atomic.Int64

// OpenOperators returns the number of operators opened but not yet closed
// across the process.
func OpenOperators() int64 { return openOps.Load() }

// base carries the Open/Close bookkeeping every operator shares, including
// the memory accounting: buffering operators charge their working set
// against the query budget carried in the context (govern.WithBudget), and
// close releases every charge in one step — so a cancelled or failed query
// returns its memory the moment its tree is closed. With no budget in the
// context every charge is a no-op and the operators behave exactly as
// before (the differential-suite guarantee).
type base struct {
	ctx      context.Context
	bud      *govern.Budget
	reserved int64
	opened   bool
	closed   bool
}

func (b *base) open(ctx context.Context) {
	b.ctx = ctx
	b.bud = govern.FromContext(ctx)
	b.opened = true
	openOps.Add(1)
}

// charge reserves n more bytes for this operator's buffers. On refusal the
// typed *govern.BudgetError propagates up and kills only this query; the
// bytes already reserved stay charged until close releases them.
func (b *base) charge(n int64) error {
	if n <= 0 {
		return nil
	}
	if err := b.bud.Reserve(n); err != nil {
		return err
	}
	b.reserved += n
	return nil
}

func (b *base) close() {
	if b.opened && !b.closed {
		openOps.Add(-1)
		b.bud.Release(b.reserved)
		b.reserved = 0
	}
	b.closed = true
}

// Scan is the leaf operator: it hands out a table's tuples in order, one
// batch per Next. The table is whatever the access path produced — the base
// table for a full scan, or a Restrict of the index candidates for a PTI or
// btree probe — so Header is the table itself and downstream kernels plan
// against it directly.
type Scan struct {
	base
	t     *core.Table
	batch int
	pos   int
}

// NewScan returns a scan over the table's tuples.
func NewScan(t *core.Table) *Scan { return &Scan{t: t, batch: BatchSize} }

// SetBatch overrides the batch size (tests use tiny batches to exercise
// boundaries).
func (s *Scan) SetBatch(n int) { s.batch = n }

// Pos reports how many tuples the scan has handed out so far — tests use it
// to prove a LIMIT query stopped before the end of the table.
func (s *Scan) Pos() int { return s.pos }

func (s *Scan) Header() *core.Table { return s.t }

func (s *Scan) Open(ctx context.Context) error {
	s.open(ctx)
	return nil
}

func (s *Scan) Next() ([]*core.Tuple, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	tups := s.t.Tuples()
	if s.pos >= len(tups) {
		return nil, nil
	}
	end := s.pos + s.batch
	if end > len(tups) {
		end = len(tups)
	}
	b := tups[s.pos:end]
	s.pos = end
	return b, nil
}

func (s *Scan) Close() error {
	s.close()
	return nil
}

// Filter applies a compiled Selection kernel batch by batch. Within a batch
// the evaluation is morsel-parallel into index-aligned slots, compacted in
// order — the same discipline Table.Select uses over the whole table, so
// the surviving tuples and their floats are bitwise identical.
type Filter struct {
	base
	child Operator
	sel   *core.Selection
}

// NewFilter wraps child with a selection kernel planned against its header.
func NewFilter(child Operator, sel *core.Selection) *Filter {
	return &Filter{child: child, sel: sel}
}

func (f *Filter) Header() *core.Table { return f.sel.Out() }

func (f *Filter) Open(ctx context.Context) error {
	f.open(ctx)
	return f.child.Open(ctx)
}

func (f *Filter) Next() ([]*core.Tuple, error) {
	par := f.sel.Out().Parallelism()
	for {
		if err := f.ctx.Err(); err != nil {
			return nil, err
		}
		in, err := f.child.Next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		slots := make([]*core.Tuple, len(in))
		if err := f.sel.EvalBatch(in, par, slots); err != nil {
			return nil, err
		}
		out := slots[:0]
		for _, nt := range slots {
			if nt != nil {
				out = append(out, nt)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (f *Filter) Close() error {
	f.close()
	return f.child.Close()
}

// ProbFilter applies a compiled probability-threshold selection (§III-E):
// tuples pass through unchanged, kept or dropped on their probability
// value.
type ProbFilter struct {
	base
	child Operator
	sel   *core.ProbSelection
}

// NewProbFilter wraps child with a threshold kernel planned against its
// header.
func NewProbFilter(child Operator, sel *core.ProbSelection) *ProbFilter {
	return &ProbFilter{child: child, sel: sel}
}

func (f *ProbFilter) Header() *core.Table { return f.sel.Out() }

func (f *ProbFilter) Open(ctx context.Context) error {
	f.open(ctx)
	return f.child.Open(ctx)
}

func (f *ProbFilter) Next() ([]*core.Tuple, error) {
	par := f.sel.Out().Parallelism()
	for {
		if err := f.ctx.Err(); err != nil {
			return nil, err
		}
		in, err := f.child.Next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		keep := make([]bool, len(in))
		if err := f.sel.KeepBatch(in, par, keep); err != nil {
			return nil, err
		}
		var out []*core.Tuple
		for i, tup := range in {
			if keep[i] {
				out = append(out, tup)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (f *ProbFilter) Close() error {
	f.close()
	return f.child.Close()
}

// EquiJoin streams the left child through a compiled hash equi-join kernel
// (the right side was materialized and indexed at plan time). Pairs come
// out in the sequential nested-loop order: left tuples in stream order,
// each matched against the right tuples in table order.
type EquiJoin struct {
	base
	child   Operator
	k       *core.EquiJoinKernel
	pending []*core.Tuple
	maxPend int // high-water of pending, already charged
}

// NewEquiJoin wraps the left child with an equi-join kernel.
func NewEquiJoin(child Operator, k *core.EquiJoinKernel) *EquiJoin {
	return &EquiJoin{child: child, k: k}
}

func (j *EquiJoin) Header() *core.Table { return j.k.Out() }

func (j *EquiJoin) Open(ctx context.Context) error {
	j.open(ctx)
	// The hash build side was materialized at plan time; the operator
	// adopting it is where it becomes query working set.
	if err := j.charge(j.k.BuildSize()); err != nil {
		return err
	}
	return j.child.Open(ctx)
}

func (j *EquiJoin) Next() ([]*core.Tuple, error) {
	par := j.k.Out().Parallelism()
	for len(j.pending) == 0 {
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		in, err := j.child.Next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		matched := make([][]*core.Tuple, len(in))
		_ = exec.For(par, len(in), func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				matched[i] = j.k.Matches(in[i])
			}
			return nil
		})
		for _, pairs := range matched {
			j.pending = append(j.pending, pairs...)
		}
		// A skewed key can explode one input batch into a huge pending
		// buffer; charge its high-water mark.
		if n := len(j.pending); n > j.maxPend {
			if err := j.charge(int64(n-j.maxPend) * j.k.Out().TupleCost()); err != nil {
				return nil, err
			}
			j.maxPend = n
		}
	}
	out := j.pending
	if len(out) > BatchSize {
		out = out[:BatchSize]
		j.pending = j.pending[BatchSize:]
	} else {
		j.pending = nil
	}
	return out, nil
}

func (j *EquiJoin) Close() error {
	j.close()
	return j.child.Close()
}

// CrossJoin streams the left child against a materialized right tuple set,
// emitting pairs in nested-loop order. Used for FROM lists with no usable
// equi-join key; the right side is small or the query was going to be
// quadratic anyway.
type CrossJoin struct {
	base
	child Operator
	k     *core.CrossKernel
	right []*core.Tuple

	cur []*core.Tuple // current left batch
	li  int           // index into cur
	ri  int           // index into right
}

// NewCrossJoin wraps the left child with a cross-product kernel and the
// materialized right tuples.
func NewCrossJoin(child Operator, k *core.CrossKernel, right []*core.Tuple) *CrossJoin {
	return &CrossJoin{child: child, k: k, right: right}
}

func (j *CrossJoin) Header() *core.Table { return j.k.Out() }

func (j *CrossJoin) Open(ctx context.Context) error {
	j.open(ctx)
	if err := j.charge(int64(len(j.right)) * j.k.Out().TupleCost()); err != nil {
		return err
	}
	return j.child.Open(ctx)
}

func (j *CrossJoin) Next() ([]*core.Tuple, error) {
	if len(j.right) == 0 {
		return nil, nil
	}
	var out []*core.Tuple
	for len(out) < BatchSize {
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		if j.li >= len(j.cur) {
			in, err := j.child.Next()
			if err != nil {
				return nil, err
			}
			if in == nil {
				break
			}
			j.cur, j.li, j.ri = in, 0, 0
		}
		a := j.cur[j.li]
		for j.ri < len(j.right) && len(out) < BatchSize {
			out = append(out, j.k.Pair(a, j.right[j.ri]))
			j.ri++
		}
		if j.ri >= len(j.right) {
			j.li++
			j.ri = 0
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func (j *CrossJoin) Close() error {
	j.close()
	return j.child.Close()
}

// Limit passes through at most n tuples and then stops pulling its child —
// the early termination a pipelined executor buys for LIMIT queries.
type Limit struct {
	base
	child Operator
	n     int
	done  bool
}

// NewLimit caps the stream at n tuples.
func NewLimit(child Operator, n int) *Limit {
	return &Limit{child: child, n: n}
}

func (l *Limit) Header() *core.Table { return l.child.Header() }

func (l *Limit) Open(ctx context.Context) error {
	l.open(ctx)
	return l.child.Open(ctx)
}

func (l *Limit) Next() ([]*core.Tuple, error) {
	if l.done || l.n <= 0 {
		return nil, nil
	}
	in, err := l.child.Next()
	if err != nil {
		return nil, err
	}
	if in == nil {
		l.done = true
		return nil, nil
	}
	if len(in) >= l.n {
		in = in[:l.n]
		l.done = true
	}
	l.n -= len(in)
	return in, nil
}

func (l *Limit) Close() error {
	l.close()
	return l.child.Close()
}

// topkEntry tags a tuple with its arrival sequence number so ties under the
// comparator resolve to arrival order — exactly what a stable sort of the
// full input would produce.
type topkEntry struct {
	tup *core.Tuple
	seq int
}

// TopK is the bounded-heap ORDER BY ... LIMIT k operator: a pipeline
// breaker that drains its child holding only the k best tuples seen, then
// emits them in order. With `less` a total order (the query layer's
// comparator sorts NULLs last and never returns incomparable), the output
// equals a stable full sort followed by Head(k), tuple for tuple.
type TopK struct {
	base
	child Operator
	k     int
	less  func(a, b *core.Tuple) bool
	prep  func(*core.Tuple) error

	h   topkHeap
	out []*core.Tuple
	pos int
}

// NewTopK wraps child with a bounded top-k heap. prep, if non-nil, is
// called once per arriving tuple before any comparison — the ORDER BY
// PROB(...) path uses it to compute and cache each tuple's probability,
// failing the query on the first bad tuple just as the sorting path does.
func NewTopK(child Operator, k int, less func(a, b *core.Tuple) bool, prep func(*core.Tuple) error) *TopK {
	return &TopK{child: child, k: k, less: less, prep: prep}
}

// before is the strict total order the heap maintains: the comparator
// first, arrival order as the tiebreak.
func (t *TopK) before(a, b topkEntry) bool {
	if t.less(a.tup, b.tup) {
		return true
	}
	if t.less(b.tup, a.tup) {
		return false
	}
	return a.seq < b.seq
}

// topkHeap is a max-heap under `before`: the root is the worst of the k
// best, the one a better arrival evicts.
type topkHeap struct {
	entries []topkEntry
	before  func(a, b topkEntry) bool
}

func (h *topkHeap) Len() int           { return len(h.entries) }
func (h *topkHeap) Less(i, j int) bool { return h.before(h.entries[j], h.entries[i]) }
func (h *topkHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *topkHeap) Push(x any)         { h.entries = append(h.entries, x.(topkEntry)) }
func (h *topkHeap) Pop() any           { panic("pipe: topkHeap.Pop unused") }

func (t *TopK) Header() *core.Table { return t.child.Header() }

func (t *TopK) Open(ctx context.Context) error {
	t.open(ctx)
	if err := t.child.Open(ctx); err != nil {
		return err
	}
	t.h.before = t.before
	cost := t.child.Header().TupleCost() + 16 // entry: tuple ref + seq
	seq := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		in, err := t.child.Next()
		if err != nil {
			return err
		}
		if in == nil {
			break
		}
		for _, tup := range in {
			if t.prep != nil {
				if err := t.prep(tup); err != nil {
					return err
				}
			}
			e := topkEntry{tup: tup, seq: seq}
			seq++
			if t.k <= 0 {
				continue
			}
			if len(t.h.entries) < t.k {
				// The heap is bounded by k, but k itself can be huge:
				// charge each slot as it first fills (replacement reuses
				// the slot, no new charge).
				if err := t.charge(cost); err != nil {
					return err
				}
				heap.Push(&t.h, e)
			} else if t.before(e, t.h.entries[0]) {
				t.h.entries[0] = e
				heap.Fix(&t.h, 0)
			}
		}
	}
	es := t.h.entries
	sort.Slice(es, func(i, j int) bool { return t.before(es[i], es[j]) })
	t.out = make([]*core.Tuple, len(es))
	for i, e := range es {
		t.out[i] = e.tup
	}
	return nil
}

func (t *TopK) Next() ([]*core.Tuple, error) {
	if t.pos >= len(t.out) {
		return nil, nil
	}
	end := t.pos + BatchSize
	if end > len(t.out) {
		end = len(t.out)
	}
	b := t.out[t.pos:end]
	t.pos = end
	return b, nil
}

func (t *TopK) Close() error {
	t.close()
	return t.child.Close()
}

// Sort is the unbounded ORDER BY breaker: it drains its child and stable-
// sorts the whole input under the comparator, reproducing Table.Sorted.
type Sort struct {
	base
	child Operator
	less  func(a, b *core.Tuple) bool
	prep  func(*core.Tuple) error

	out []*core.Tuple
	pos int
}

// NewSort wraps child with a full stable sort. prep plays the same role as
// in NewTopK.
func NewSort(child Operator, less func(a, b *core.Tuple) bool, prep func(*core.Tuple) error) *Sort {
	return &Sort{child: child, less: less, prep: prep}
}

func (s *Sort) Header() *core.Table { return s.child.Header() }

func (s *Sort) Open(ctx context.Context) error {
	s.open(ctx)
	if err := s.child.Open(ctx); err != nil {
		return err
	}
	// The unbounded buffer this breaker accumulates is the single biggest
	// OOM risk in the executor: charge it batch by batch so a sort that
	// outgrows its query budget dies alone, before it can take down the
	// process.
	cost := s.child.Header().TupleCost()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		in, err := s.child.Next()
		if err != nil {
			return err
		}
		if in == nil {
			break
		}
		if s.prep != nil {
			for _, tup := range in {
				if err := s.prep(tup); err != nil {
					return err
				}
			}
		}
		if err := s.charge(int64(len(in)) * cost); err != nil {
			return err
		}
		s.out = append(s.out, in...)
	}
	sort.SliceStable(s.out, func(i, j int) bool { return s.less(s.out[i], s.out[j]) })
	return nil
}

func (s *Sort) Next() ([]*core.Tuple, error) {
	if s.pos >= len(s.out) {
		return nil, nil
	}
	end := s.pos + BatchSize
	if end > len(s.out) {
		end = len(s.out)
	}
	b := s.out[s.pos:end]
	s.pos = end
	return b, nil
}

func (s *Sort) Close() error {
	s.close()
	return s.child.Close()
}

// Project is a pipeline breaker by necessity: core.Project's decision to
// retain an invisible dependency set as phantoms inspects every tuple's
// mass (tuple-existence information), so the projection cannot be planned
// from the header alone. The planner places it last — after any Limit — so
// for LIMIT queries it buffers at most the limit, not the table.
type Project struct {
	base
	child Operator
	names []string

	t   *core.Table
	pos int
}

// NewProject wraps child with Π_names, applied to the drained input.
func NewProject(child Operator, names []string) *Project {
	return &Project{child: child, names: names}
}

func (p *Project) Header() *core.Table { return p.t }

func (p *Project) Open(ctx context.Context) error {
	p.open(ctx)
	if err := p.child.Open(ctx); err != nil {
		return err
	}
	cost := p.child.Header().TupleCost()
	var tups []*core.Tuple
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		in, err := p.child.Next()
		if err != nil {
			return err
		}
		if in == nil {
			break
		}
		if err := p.charge(int64(len(in)) * cost); err != nil {
			return err
		}
		tups = append(tups, in...)
	}
	hdr := p.child.Header()
	acc := hdr.Restrict(hdr.Name, tups)
	out, err := acc.Project(p.names...)
	if err != nil {
		return err
	}
	p.t = out
	return nil
}

func (p *Project) Next() ([]*core.Tuple, error) {
	tups := p.t.Tuples()
	if p.pos >= len(tups) {
		return nil, nil
	}
	end := p.pos + BatchSize
	if end > len(tups) {
		end = len(tups)
	}
	b := tups[p.pos:end]
	p.pos = end
	return b, nil
}

func (p *Project) Close() error {
	p.close()
	return p.child.Close()
}

// Run opens the tree, pulls it to exhaustion, and calls emit for every
// batch. Even an empty result produces one emit (with a nil batch) so
// sinks always learn the header. The tree is closed on every path,
// including cancellation and emit errors.
func Run(ctx context.Context, root Operator, emit func(hdr *core.Table, batch []*core.Tuple) error) error {
	if err := root.Open(ctx); err != nil {
		root.Close()
		return err
	}
	defer root.Close()
	hdr := root.Header()
	emitted := false
	for {
		b, err := root.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if len(b) == 0 {
			continue
		}
		emitted = true
		if err := emit(hdr, b); err != nil {
			return err
		}
	}
	if !emitted {
		return emit(hdr, nil)
	}
	return nil
}

// Drain runs the tree and materializes its output as a table — the bridge
// back to the materializing world (aggregates, EXPLAIN, the legacy Result
// shape).
func Drain(ctx context.Context, root Operator) (*core.Table, error) {
	var hdr *core.Table
	var tups []*core.Tuple
	err := Run(ctx, root, func(h *core.Table, b []*core.Tuple) error {
		hdr = h
		tups = append(tups, b...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return hdr.Restrict(hdr.Name, tups), nil
}
