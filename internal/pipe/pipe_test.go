package pipe

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

// testTable builds a Readings-style table: certain int rid (with NULLs every
// 7th row, to exercise the NULLS-LAST ordering), certain int grp with heavy
// duplication (ties for the stable-order check), and an uncertain Gaussian
// value.
func testTable(tb testing.TB, n int, seed int64) *core.Table {
	tb.Helper()
	r := rand.New(rand.NewSource(seed))
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "grp", Type: core.IntType},
		core.Column{Name: "value", Type: core.FloatType, Uncertain: true},
	)
	t := core.MustTable("readings", schema, nil, core.NewRegistry())
	for i := 0; i < n; i++ {
		vals := map[string]core.Value{"grp": core.Int(int64(r.Intn(3)))}
		if i%7 != 3 {
			vals["rid"] = core.Int(int64(i))
		}
		if err := t.Insert(core.Row{
			Values: vals,
			PDFs:   []core.PDF{{Attrs: []string{"value"}, Dist: dist.NewGaussian(r.Float64()*100, 1+r.Float64()*4)}},
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return t
}

func mustDrain(tb testing.TB, root Operator) *core.Table {
	tb.Helper()
	out, err := Drain(context.Background(), root)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

func assertRenderEqual(tb testing.TB, want, got *core.Table) {
	tb.Helper()
	if w, g := want.Render(), got.Render(); w != g {
		tb.Fatalf("rendered output differs:\nmaterialized:\n%s\npipelined:\n%s", w, g)
	}
}

// ridLess is the NULLS-LAST total-order comparator over rid the query layer
// uses: NULLs after every value regardless of direction, ties left to the
// caller's stable order / sequence tiebreak.
func ridLess(t *core.Table, desc bool) func(a, b *core.Tuple) bool {
	return func(a, b *core.Tuple) bool {
		av, _ := t.Value(a, "rid")
		bv, _ := t.Value(b, "rid")
		if av.IsNull() || bv.IsNull() {
			return !av.IsNull() && bv.IsNull()
		}
		c, ok := av.Compare(bv)
		if !ok {
			return false
		}
		if desc {
			return c > 0
		}
		return c < 0
	}
}

func TestScanBatches(t *testing.T) {
	tbl := testTable(t, 10, 1)
	s := NewScan(tbl)
	s.SetBatch(3)
	if err := s.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	total := 0
	for {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, len(b))
		total += len(b)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if total != 10 || fmt.Sprint(sizes) != "[3 3 3 1]" {
		t.Fatalf("batches = %v (total %d), want [3 3 3 1]", sizes, total)
	}
	if n := OpenOperators(); n != 0 {
		t.Fatalf("OpenOperators() = %d after close", n)
	}
}

// TestFilterMatchesSelect: a pipelined Filter over a kernel produces the
// same table, byte for byte, as the materializing Table.Select — including
// pdf floors, existence probabilities and tuple order.
func TestFilterMatchesSelect(t *testing.T) {
	tbl := testTable(t, 300, 2)
	atoms := []core.Atom{
		core.Cmp(core.Col("value"), region.GE, core.LitF(30)),
		core.Cmp(core.Col("grp"), region.NE, core.LitI(1)),
	}
	want, err := tbl.Select(atoms...)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tbl.PlanSelect(atoms...)
	if err != nil {
		t.Fatal(err)
	}
	got := mustDrain(t, NewFilter(NewScan(tbl), sel))
	assertRenderEqual(t, want, got)
	if n := OpenOperators(); n != 0 {
		t.Fatalf("OpenOperators() = %d after drain", n)
	}
}

// TestProbFilterMatchesThreshold: ProbFilter over a range-threshold kernel
// matches SelectRangeThreshold.
func TestProbFilterMatchesThreshold(t *testing.T) {
	tbl := testTable(t, 200, 3)
	want, err := tbl.SelectRangeThreshold("value", 20, 60, region.GE, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := mustDrain(t, NewProbFilter(NewScan(tbl), tbl.PlanRangeThreshold("value", 20, 60, region.GE, 0.5)))
	assertRenderEqual(t, want, got)
}

// TestEquiJoinMatchesLegacy: the streaming EquiJoin operator reproduces
// Table.EquiJoin's pair order and content exactly.
func TestEquiJoinMatchesLegacy(t *testing.T) {
	reg := core.NewRegistry()
	mk := func(name, prefix string, n int, seed int64) *core.Table {
		r := rand.New(rand.NewSource(seed))
		schema := core.MustSchema(
			core.Column{Name: prefix + "k", Type: core.IntType},
			core.Column{Name: prefix + "x", Type: core.FloatType, Uncertain: true},
		)
		tb := core.MustTable(name, schema, nil, reg)
		for i := 0; i < n; i++ {
			if err := tb.Insert(core.Row{
				Values: map[string]core.Value{prefix + "k": core.Int(int64(r.Intn(8)))},
				PDFs:   []core.PDF{{Attrs: []string{prefix + "x"}, Dist: dist.NewGaussian(r.Float64()*10, 1)}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	left := mk("l", "l_", 40, 4)
	right := mk("r", "r_", 25, 5)
	want, err := left.EquiJoin(right, "l_k", "r_k")
	if err != nil {
		t.Fatal(err)
	}
	k, err := left.PlanEquiJoin(right, "l_k", "r_k")
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScan(left)
	sc.SetBatch(7)
	got := mustDrain(t, NewEquiJoin(sc, k))
	assertRenderEqual(t, want, got)
}

// TestCrossJoinMatchesLegacy: the streaming CrossJoin reproduces
// Table.CrossProduct's nested-loop order.
func TestCrossJoinMatchesLegacy(t *testing.T) {
	reg := core.NewRegistry()
	mk := func(name, col string, n int) *core.Table {
		schema := core.MustSchema(core.Column{Name: col, Type: core.IntType})
		tb := core.MustTable(name, schema, nil, reg)
		for i := 0; i < n; i++ {
			if err := tb.Insert(core.Row{Values: map[string]core.Value{col: core.Int(int64(i))}}); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	left, right := mk("l", "a", 30), mk("r", "b", 17)
	want, err := left.CrossProduct(right)
	if err != nil {
		t.Fatal(err)
	}
	k, err := left.PlanCross(right)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScan(left)
	sc.SetBatch(11)
	got := mustDrain(t, NewCrossJoin(sc, k, right.Tuples()))
	assertRenderEqual(t, want, got)
}

// TestTopKMatchesSortHead: for every k, the bounded heap equals a stable
// full sort followed by Head(k) — with NULL keys and duplicate keys in
// play, both directions.
func TestTopKMatchesSortHead(t *testing.T) {
	tbl := testTable(t, 100, 6)
	for _, desc := range []bool{false, true} {
		less := ridLess(tbl, desc)
		sorted := tbl.Sorted(func(tb *core.Table, a, b *core.Tuple) bool { return less(a, b) })
		for _, k := range []int{0, 1, 7, 50, 100, 150} {
			want := sorted.Head(k)
			got := mustDrain(t, NewTopK(NewScan(tbl), k, less, nil))
			if want.Render() != got.Render() {
				t.Fatalf("desc=%v k=%d: top-k differs from sort+head:\nsort:\n%s\nheap:\n%s",
					desc, k, want.Render(), got.Render())
			}
		}
	}
}

// TestLimitStopsScan: LIMIT must terminate the pipeline early — the scan
// leaf never reaches the end of a table much larger than the limit.
func TestLimitStopsScan(t *testing.T) {
	tbl := testTable(t, 5000, 7)
	sc := NewScan(tbl)
	root := NewLimit(sc, 10)
	out := mustDrain(t, root)
	if out.Len() != 10 {
		t.Fatalf("limit output = %d rows, want 10", out.Len())
	}
	if sc.Pos() > BatchSize {
		t.Fatalf("scan advanced to %d of %d rows; LIMIT 10 should stop after one batch (%d)",
			sc.Pos(), tbl.Len(), BatchSize)
	}
}

// TestRunEmitsHeaderOnEmptyResult: sinks always learn the result shape,
// even when no tuple survives.
func TestRunEmitsHeaderOnEmptyResult(t *testing.T) {
	tbl := testTable(t, 20, 8)
	sel, err := tbl.PlanSelect(core.Cmp(core.Col("grp"), region.GT, core.LitI(99)))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = Run(context.Background(), NewFilter(NewScan(tbl), sel), func(hdr *core.Table, b []*core.Tuple) error {
		calls++
		if hdr == nil {
			t.Fatal("nil header")
		}
		if b != nil {
			t.Fatalf("expected empty result, got %d tuples", len(b))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times, want exactly 1", calls)
	}
}

// TestCancellationClosesTree: cancelling the context mid-stream aborts the
// pull loop and leaves no operator open.
func TestCancellationClosesTree(t *testing.T) {
	tbl := testTable(t, 2000, 9)
	ctx, cancel := context.WithCancel(context.Background())
	batches := 0
	err := Run(ctx, NewScan(tbl), func(hdr *core.Table, b []*core.Tuple) error {
		batches++
		if batches == 2 {
			cancel()
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if batches != 2 {
		t.Fatalf("emit called %d times after cancel at 2", batches)
	}
	if n := OpenOperators(); n != 0 {
		t.Fatalf("OpenOperators() = %d after cancelled run", n)
	}
	cancel()
}

// TestProjectMatchesLegacy: the Project breaker (drain + core.Project)
// matches the materializing path, phantom retention included.
func TestProjectMatchesLegacy(t *testing.T) {
	tbl := testTable(t, 150, 10)
	sel, err := tbl.PlanSelect(core.Cmp(core.Col("value"), region.LE, core.LitF(55)))
	if err != nil {
		t.Fatal(err)
	}
	legacySel, err := tbl.Select(core.Cmp(core.Col("value"), region.LE, core.LitF(55)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacySel.Project("rid", "grp")
	if err != nil {
		t.Fatal(err)
	}
	got := mustDrain(t, NewProject(NewFilter(NewScan(tbl), sel), []string{"rid", "grp"}))
	assertRenderEqual(t, want, got)
}
