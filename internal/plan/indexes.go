package plan

import (
	"fmt"
	"math"

	"probdb/internal/btree"
	"probdb/internal/core"
	"probdb/internal/index"
	"probdb/internal/region"
	"probdb/internal/storage"
)

// TableIndexes is the access-path state of one table: a PTI per indexed
// uncertain column, a btree per indexed certain column, and the stable
// rowid identity that ties index entries to tuples across DML. All methods
// follow the catalog's locking discipline — probes under the read lock,
// maintenance under the write lock.
type TableIndexes struct {
	pti map[string]*index.Index
	bt  map[string]*certIndex

	rowOf map[*core.Tuple]int64
	next  int64
}

// certIndex is a btree access path over a certain column. Only integer
// values become btree keys; rows whose value is NULL or non-integer land on
// the spill list and are candidates for every probe (candidates must be a
// superset — the residual predicate re-verifies them). Deletes tombstone;
// crossing the same fragmentation threshold as the PTI triggers a rebuild.
type certIndex struct {
	tree  *btree.Tree
	keyOf map[int64]int64 // rowid -> key, for rebuild enumeration
	spill map[int64]bool  // rowids indexed outside the tree
	dead  map[int64]bool  // tombstoned rowids still present in the tree
}

// NewTableIndexes creates an empty index set.
func NewTableIndexes() *TableIndexes {
	return &TableIndexes{
		pti:   map[string]*index.Index{},
		bt:    map[string]*certIndex{},
		rowOf: map[*core.Tuple]int64{},
	}
}

// rowid returns the tuple's stable identity, assigning one on first sight.
func (ti *TableIndexes) rowid(tup *core.Tuple) int64 {
	if id, ok := ti.rowOf[tup]; ok {
		return id
	}
	ti.next++
	ti.rowOf[tup] = ti.next
	return ti.next
}

// ridOf packs a rowid into the btree's payload type.
func ridOf(rowid int64) storage.RID {
	return storage.RID{Page: storage.PageID(rowid >> 16), Slot: uint16(rowid & 0xffff)}
}

func rowidOf(r storage.RID) int64 { return int64(r.Page)<<16 | int64(r.Slot) }

// Has reports whether any index exists on the column.
func (ti *TableIndexes) Has(col string) bool {
	if ti == nil {
		return false
	}
	_, p := ti.pti[col]
	_, b := ti.bt[col]
	return p || b
}

// Cols returns the indexed column names with their access-path kind
// ("pti" or "btree"), for DESCRIBE and manifest persistence.
func (ti *TableIndexes) Cols() map[string]string {
	out := map[string]string{}
	if ti == nil {
		return out
	}
	for c := range ti.pti {
		out[c] = "pti"
	}
	for c := range ti.bt {
		out[c] = "btree"
	}
	return out
}

// Create builds an index over the column from the table's current tuples:
// a PTI when the column is uncertain, a btree when certain.
func (ti *TableIndexes) Create(t *core.Table, col string) error {
	c, ok := t.Schema().Lookup(col)
	if !ok {
		return fmt.Errorf("plan: no column %q in %s", col, t.Name)
	}
	if ti.Has(col) {
		return fmt.Errorf("plan: column %q is already indexed", col)
	}
	if c.Uncertain {
		items := make([]index.Item, 0, t.Len())
		for _, tup := range t.Tuples() {
			d, err := t.DistOf(tup, col)
			if err != nil {
				return err
			}
			items = append(items, index.Item{RID: ti.rowid(tup), Dist: d})
		}
		ti.pti[col] = index.Build(items)
		return nil
	}
	ci := &certIndex{keyOf: map[int64]int64{}, spill: map[int64]bool{}, dead: map[int64]bool{}}
	if err := ci.rebuild(); err != nil {
		return err
	}
	for _, tup := range t.Tuples() {
		v, _ := t.Value(tup, col)
		if err := ci.insert(ti.rowid(tup), v); err != nil {
			return err
		}
	}
	ti.bt[col] = ci
	return nil
}

// NoteInsert maintains every index for a freshly inserted tuple.
func (ti *TableIndexes) NoteInsert(t *core.Table, tup *core.Tuple) error {
	if ti == nil || (len(ti.pti) == 0 && len(ti.bt) == 0) {
		return nil
	}
	id := ti.rowid(tup)
	for col, ix := range ti.pti {
		d, err := t.DistOf(tup, col)
		if err != nil {
			return err
		}
		ix.Insert(index.Item{RID: id, Dist: d})
	}
	for col, ci := range ti.bt {
		v, _ := t.Value(tup, col)
		if err := ci.insert(id, v); err != nil {
			return err
		}
	}
	return nil
}

// NoteDelete removes a deleted tuple from every index and forgets its rowid.
func (ti *TableIndexes) NoteDelete(tup *core.Tuple) error {
	if ti == nil {
		return nil
	}
	id, ok := ti.rowOf[tup]
	if !ok {
		return nil
	}
	delete(ti.rowOf, tup)
	for _, ix := range ti.pti {
		ix.Delete(id)
	}
	for _, ci := range ti.bt {
		if err := ci.delete(id); err != nil {
			return err
		}
	}
	return nil
}

// ProbePTI runs a range-threshold probe against the column's PTI: the
// returned set holds every rowid whose mass inside [lo, hi] is >= p.
func (ti *TableIndexes) ProbePTI(col string, lo, hi, p float64) (map[int64]bool, index.Stats, bool) {
	ix, ok := ti.pti[col]
	if !ok {
		return nil, index.Stats{}, false
	}
	rids, st := ix.RangeThreshold(lo, hi, p)
	set := make(map[int64]bool, len(rids))
	for _, r := range rids {
		set[r] = true
	}
	return set, st, true
}

// ProbeBTree runs a comparison probe against the column's btree, returning
// a candidate superset of the rows satisfying "col op v" (spilled rows are
// always included; the caller re-verifies with the residual predicate).
func (ti *TableIndexes) ProbeBTree(col string, op region.Op, v core.Value) (map[int64]bool, bool) {
	ci, ok := ti.bt[col]
	if !ok {
		return nil, false
	}
	set, err := ci.probe(op, v)
	if err != nil {
		return nil, false
	}
	return set, true
}

// Restrict walks the table's tuples in base order and keeps those whose
// rowid is in the candidate set. Tuples the index layer has never seen
// (defensive: should not happen) are kept — candidates must be a superset.
func (ti *TableIndexes) Restrict(t *core.Table, cand map[int64]bool) []*core.Tuple {
	var out []*core.Tuple
	for _, tup := range t.Tuples() {
		id, ok := ti.rowOf[tup]
		if !ok || cand[id] {
			out = append(out, tup)
		}
	}
	return out
}

// Rebuild reconstructs every index from the table's current tuples —
// recovery installs index definitions this way after a restart.
func (ti *TableIndexes) Rebuild(t *core.Table) error {
	cols := ti.Cols()
	fresh := NewTableIndexes()
	for col := range cols {
		if err := fresh.Create(t, col); err != nil {
			return err
		}
	}
	*ti = *fresh
	return nil
}

func (ci *certIndex) insert(rowid int64, v core.Value) error {
	delete(ci.dead, rowid)
	if v.Kind != core.IntValue {
		ci.spill[rowid] = true
		return nil
	}
	ci.keyOf[rowid] = v.I
	return ci.tree.Insert(v.I, ridOf(rowid))
}

func (ci *certIndex) delete(rowid int64) error {
	if ci.spill[rowid] {
		delete(ci.spill, rowid)
		return nil
	}
	if _, ok := ci.keyOf[rowid]; !ok {
		return nil
	}
	ci.dead[rowid] = true
	if len(ci.dead) >= 32 && 4*len(ci.dead) >= len(ci.keyOf) {
		return ci.compact()
	}
	return nil
}

// compact rebuilds the tree without tombstoned entries.
func (ci *certIndex) compact() error {
	live := make(map[int64]int64, len(ci.keyOf)-len(ci.dead))
	for rowid, key := range ci.keyOf {
		if !ci.dead[rowid] {
			live[rowid] = key
		}
	}
	ci.keyOf = live
	ci.dead = map[int64]bool{}
	if err := ci.rebuild(); err != nil {
		return err
	}
	for rowid, key := range live {
		if err := ci.tree.Insert(key, ridOf(rowid)); err != nil {
			return err
		}
	}
	return nil
}

func (ci *certIndex) rebuild() error {
	pool := storage.NewPool(storage.NewMemPager(), 1024)
	tree, err := btree.Create(pool)
	if err != nil {
		return err
	}
	ci.tree = tree
	return nil
}

func (ci *certIndex) probe(op region.Op, v core.Value) (map[int64]bool, error) {
	out := map[int64]bool{}
	for r := range ci.spill {
		out[r] = true
	}
	add := func(rowid int64) {
		if !ci.dead[rowid] {
			out[rowid] = true
		}
	}
	key, intKey := int64(0), false
	switch v.Kind {
	case core.IntValue:
		key, intKey = v.I, true
	case core.FloatValue:
		// A float bound still prunes: widen to the enclosing integers.
		switch op {
		case region.LT, region.LE:
			key, intKey = int64(math.Floor(v.F)), true
		case region.GT, region.GE:
			key, intKey = int64(math.Ceil(v.F)), true
		case region.EQ:
			if v.F == math.Trunc(v.F) {
				key, intKey = int64(v.F), true
			}
		}
	}
	if !intKey {
		return nil, fmt.Errorf("plan: unindexable literal %s", v.Render())
	}
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	switch op {
	case region.EQ:
		lo, hi = key, key
	case region.LT, region.LE:
		hi = key
	case region.GT, region.GE:
		lo = key
	default:
		return nil, fmt.Errorf("plan: operator %v has no btree path", op)
	}
	err := ci.tree.Range(lo, hi, func(_ int64, rid storage.RID) error {
		add(rowidOf(rid))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
