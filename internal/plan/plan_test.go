package plan

import (
	"math"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

func testTable(t *testing.T, n int) *core.Table {
	t.Helper()
	schema := core.MustSchema(
		core.Column{Name: "rid", Type: core.IntType},
		core.Column{Name: "tag", Type: core.StringType},
		core.Column{Name: "value", Type: core.FloatType, Uncertain: true},
	)
	tb := core.MustTable("readings", schema, nil, nil)
	for i := 0; i < n; i++ {
		row := core.Row{
			Values: map[string]core.Value{"rid": core.Int(int64(i)), "tag": core.Str("s")},
			PDFs:   []core.PDF{{Attrs: []string{"value"}, Dist: dist.NewUniform(float64(i), float64(i)+2)}},
		}
		if err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestAnalyzeHistograms(t *testing.T) {
	tb := testTable(t, 100)
	ts, err := Analyze(tb)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 100 {
		t.Fatalf("rows = %d", ts.Rows)
	}
	cs := ts.Col("rid")
	if cs == nil || cs.Hist == nil {
		t.Fatal("no histogram for rid")
	}
	if cs.Distinct != 100 {
		t.Errorf("distinct = %d", cs.Distinct)
	}
	// Half the rows are below the median.
	sel := cs.SelectivityCmp(region.LT, core.Int(50))
	if math.Abs(sel-0.5) > 0.1 {
		t.Errorf("LT 50 selectivity = %v", sel)
	}
	if got := cs.SelectivityCmp(region.EQ, core.Int(7)); math.Abs(got-0.01) > 0.005 {
		t.Errorf("EQ selectivity = %v", got)
	}
	vs := ts.Col("value")
	if vs == nil || !vs.Uncertain || vs.Hist == nil {
		t.Fatal("no uncertain stats for value")
	}
	// Total expected mass ~ row count (complete pdfs).
	if math.Abs(vs.TotalMass-100) > 1e-6 {
		t.Errorf("total mass = %v", vs.TotalMass)
	}
	// A narrow low range keeps few rows at a high threshold.
	lowSel := vs.SelectivityProbRange(0, 4, 0.9, ts.Rows)
	highSel := vs.SelectivityProbRange(0, 80, 0.1, ts.Rows)
	if lowSel >= highSel {
		t.Errorf("selectivity not monotone: narrow %v >= wide %v", lowSel, highSel)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	tb := testTable(t, 25)
	ts, err := Analyze(tb)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ts.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeStats(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != ts.Rows || len(back.Cols) != len(ts.Cols) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Col("rid").Distinct != 25 {
		t.Errorf("distinct after round trip = %d", back.Col("rid").Distinct)
	}
	if _, err := DecodeStats([]byte("{garbage")); err == nil {
		t.Error("bad payload decoded")
	}
}

func TestIndexProbes(t *testing.T) {
	tb := testTable(t, 200)
	ix := NewTableIndexes()
	if err := ix.Create(tb, "value"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Create(tb, "rid"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Create(tb, "rid"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := ix.Create(tb, "nope"); err == nil {
		t.Error("index on unknown column accepted")
	}

	// PTI probe: uniform(i, i+2) has mass >= 0.5 in [10, 12] only near i=10.
	cand, st, ok := ix.ProbePTI("value", 10, 12, 0.5)
	if !ok {
		t.Fatal("pti probe failed")
	}
	if st.Verified >= 200 {
		t.Errorf("probe verified every pdf (%d)", st.Verified)
	}
	tups := ix.Restrict(tb, cand)
	for _, tup := range tups {
		d, _ := tb.DistOf(tup, "value")
		if dist.MassInterval(d, 10, 12) < 0.5 {
			t.Errorf("candidate below threshold")
		}
	}
	if len(tups) == 0 {
		t.Error("no candidates for a satisfiable probe")
	}

	// BTree probe: rid <= 5 is a superset of {0..5}.
	bcand, ok := ix.ProbeBTree("rid", region.LE, core.Int(5))
	if !ok {
		t.Fatal("btree probe failed")
	}
	btups := ix.Restrict(tb, bcand)
	if len(btups) < 6 || len(btups) >= 200 {
		t.Errorf("btree candidates = %d", len(btups))
	}
	for _, tup := range btups[:6] {
		v, _ := tb.Value(tup, "rid")
		if v.I > 5 {
			t.Errorf("missing low rid; got %d", v.I)
		}
	}
}

func TestIndexDML(t *testing.T) {
	tb := testTable(t, 50)
	ix := NewTableIndexes()
	if err := ix.Create(tb, "value"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Create(tb, "rid"); err != nil {
		t.Fatal(err)
	}
	// Delete the first 10 tuples, tell the index, and verify probes exclude
	// them while the rest stay reachable.
	victims := append([]*core.Tuple(nil), tb.Tuples()[:10]...)
	tb.Delete(func(t *core.Table, tup *core.Tuple) bool {
		v, _ := t.Value(tup, "rid")
		return v.I < 10
	})
	for _, tup := range victims {
		if err := ix.NoteDelete(tup); err != nil {
			t.Fatal(err)
		}
	}
	cand, _, _ := ix.ProbePTI("value", 0, 100, 0.9)
	if got := len(ix.Restrict(tb, cand)); got != 40 {
		t.Errorf("post-delete candidates = %d, want 40", got)
	}
	// Insert a fresh tuple and find it through both indexes.
	if err := tb.Insert(core.Row{
		Values: map[string]core.Value{"rid": core.Int(999), "tag": core.Str("s")},
		PDFs:   []core.PDF{{Attrs: []string{"value"}, Dist: dist.NewUniform(500, 502)}},
	}); err != nil {
		t.Fatal(err)
	}
	fresh := tb.Tuples()[tb.Len()-1]
	if err := ix.NoteInsert(tb, fresh); err != nil {
		t.Fatal(err)
	}
	cand, _, _ = ix.ProbePTI("value", 500, 502, 0.9)
	if got := ix.Restrict(tb, cand); len(got) != 1 || got[0] != fresh {
		t.Errorf("fresh tuple not found via PTI: %d candidates", len(got))
	}
	bcand, ok := ix.ProbeBTree("rid", region.EQ, core.Int(999))
	if !ok || len(ix.Restrict(tb, bcand)) != 1 {
		t.Errorf("fresh tuple not found via btree")
	}
}

func TestChoosePrefersSelectiveProbe(t *testing.T) {
	tb := testTable(t, 100)
	ts, err := Analyze(tb)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewTableIndexes()
	if err := ix.Create(tb, "value"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Create(tb, "rid"); err != nil {
		t.Fatal(err)
	}
	conj := []Conjunct{
		{Kind: ConjCmp, Orig: 0, Col: "rid", Op: region.LT, Val: core.Int(90)},
		{Kind: ConjProbRange, Orig: 1, ProbCols: []string{"value"}, Lo: 10, Hi: 12, Op: region.GE, Threshold: 0.8},
	}
	p := Choose(ts, ix, conj, false)
	if p.Access != AccessPTI || p.Col != "value" || !p.Consumed {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.ResidualProb) != 0 {
		t.Errorf("consumed conjunct left in residual: %v", p.ResidualProb)
	}
	if p.EstCand >= 50 {
		t.Errorf("est candidates = %v for a narrow probe", p.EstCand)
	}

	// GT keeps the conjunct for re-verification.
	conj[1].Op = region.GT
	p = Choose(ts, ix, conj, false)
	if p.Access != AccessPTI || p.Consumed || len(p.ResidualProb) != 1 {
		t.Fatalf("GT plan = %+v", p)
	}

	// Forcing a scan disables every index path.
	p = Choose(ts, ix, conj, true)
	if p.Access != AccessScan || p.Reason != "forced" {
		t.Fatalf("forced plan = %+v", p)
	}

	// An uncertain-column comparison disables the PTI but not the btree.
	conj = append(conj, Conjunct{Kind: ConjCmp, Orig: 2, Col: "value", ColUncertain: true, Op: region.LT, Val: core.Float(50)})
	p = Choose(ts, ix, conj, false)
	if p.Access != AccessBTree || p.Col != "rid" {
		t.Fatalf("floored plan = %+v", p)
	}
}

func TestChooseResidualOrdering(t *testing.T) {
	tb := testTable(t, 100)
	ts, err := Analyze(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Two prob-range conjuncts: the narrow one (more selective) should run
	// first regardless of written order.
	conj := []Conjunct{
		{Kind: ConjProbRange, Orig: 0, ProbCols: []string{"value"}, Lo: 0, Hi: 200, Op: region.GE, Threshold: 0.01},
		{Kind: ConjProbRange, Orig: 1, ProbCols: []string{"value"}, Lo: 10, Hi: 11, Op: region.GE, Threshold: 0.9},
	}
	p := Choose(ts, nil, conj, false)
	if p.Access != AccessScan {
		t.Fatalf("no indexes but access = %v", p.Access)
	}
	if len(p.ResidualProb) != 2 || p.ResidualProb[0] != 1 {
		t.Errorf("residual order = %v, want narrow conjunct first", p.ResidualProb)
	}
	// Without stats the written order is preserved.
	p = Choose(nil, nil, conj, false)
	if len(p.ResidualProb) != 2 || p.ResidualProb[0] != 0 {
		t.Errorf("statless residual order = %v, want written order", p.ResidualProb)
	}
	if p.Reason == "" {
		t.Error("scan fallback carries no reason")
	}
}
