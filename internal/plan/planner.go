package plan

import (
	"fmt"
	"sort"
	"strings"

	"probdb/internal/core"
	"probdb/internal/region"
)

// ConjKind discriminates the planner's view of a WHERE conjunct.
type ConjKind int

// Conjunct kinds, mirroring the query layer's condition kinds.
const (
	ConjCmp ConjKind = iota
	ConjProb
	ConjProbRange
)

// Conjunct is one WHERE conjunct as the planner sees it: enough structure
// to match access paths and estimate selectivity, nothing more. The query
// layer owns the executable form; Orig ties the two together.
type Conjunct struct {
	Kind ConjKind
	Orig int // position in the original WHERE list

	// ConjCmp, normalized with the column on the left when simple. Col is
	// "" for column-vs-column or otherwise unindexable comparisons.
	Col          string
	ColUncertain bool
	Op           region.Op
	Val          core.Value

	// ConjProb / ConjProbRange.
	ProbCols  []string
	Lo, Hi    float64
	Threshold float64
}

// AccessKind is the chosen physical access path.
type AccessKind int

// Access paths, cheapest-first when applicable.
const (
	AccessScan AccessKind = iota
	AccessPTI
	AccessBTree
)

func (k AccessKind) String() string {
	switch k {
	case AccessPTI:
		return "pti"
	case AccessBTree:
		return "btree"
	default:
		return "scan"
	}
}

// Plan is the planner's decision for one single-table SELECT: which access
// path opens the table (and which conjunct it serves), whether that
// conjunct is fully consumed by the probe or must be re-verified, and the
// evaluation order of the residual probability conjuncts. Comparison
// conjuncts always run in written order — their pdf floors are order-
// sensitive at the bit level — while probability-threshold conjuncts are
// pure filters that commute exactly, so only those are reordered.
type Plan struct {
	Access   AccessKind
	Col      string // indexed column ("" for scan)
	Probe    int    // Orig of the conjunct the probe serves (-1 for scan)
	Consumed bool   // probe answers the conjunct exactly; drop it from residual

	ResidualProb []int // Orig order for prob conjuncts (excluding a consumed one)

	EstRows float64 // estimated result cardinality
	EstCand float64 // estimated candidates surviving the access path
	Reason  string  // why the planner fell back to a scan ("" when indexed)
}

// Counters aggregates planner activity over one or more queries; the
// server surfaces them per query through wire.Stats.
type Counters struct {
	IndexProbes      uint64 // index probes executed
	IndexPruned      uint64 // pdf evaluations avoided by an index
	PlannerFallbacks uint64 // queries the planner routed to a full scan
	VecTuples        uint64 // filter-kernel tuples evaluated on the vectorized lanes
	ScalarTuples     uint64 // filter-kernel tuples evaluated on the scalar path
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.IndexProbes += o.IndexProbes
	c.IndexPruned += o.IndexPruned
	c.PlannerFallbacks += o.PlannerFallbacks
	c.VecTuples += o.VecTuples
	c.ScalarTuples += o.ScalarTuples
}

// Choose picks the access path and residual order for a single-table query.
// ts and ix may be nil (no ANALYZE, no indexes); force disables index paths
// for differential testing. The decision is conservative by construction:
// an index path is chosen only when the candidate set it yields provably
// contains every tuple the naive path would keep.
func Choose(ts *TableStats, ix *TableIndexes, conj []Conjunct, force bool) *Plan {
	p := &Plan{Probe: -1}
	rows := float64(1)
	if ts != nil {
		rows = float64(ts.Rows)
	}

	// Any comparison touching an uncertain column floors pdfs before the
	// probability conjuncts run; the PTI holds pristine pdfs, so its probes
	// are disabled for such queries (the btree path stays safe: it only
	// pre-filters on certain values).
	uncertainFloors := false
	for _, c := range conj {
		if c.Kind == ConjCmp && c.ColUncertain {
			uncertainFloors = true
		}
	}

	type option struct {
		kind     AccessKind
		col      string
		orig     int
		consumed bool
		sel      float64
	}
	var opts []option
	for _, c := range conj {
		switch c.Kind {
		case ConjProbRange:
			if force || ix == nil || uncertainFloors || len(c.ProbCols) != 1 {
				continue
			}
			col := c.ProbCols[0]
			if _, ok := ix.pti[col]; !ok {
				continue
			}
			// The PTI returns exactly {mass >= p}: GE is answered outright,
			// GT keeps the conjunct for re-verification. Other operators
			// keep low-mass tuples and have no index path.
			if c.Op != region.GE && c.Op != region.GT {
				continue
			}
			sel := defaultSelectivity
			if ts != nil {
				sel = ts.Col(col).SelectivityProbRange(c.Lo, c.Hi, c.Threshold, ts.Rows)
			}
			opts = append(opts, option{AccessPTI, col, c.Orig, c.Op == region.GE, sel})
		case ConjCmp:
			if force || ix == nil || c.Col == "" || c.ColUncertain {
				continue
			}
			if _, ok := ix.bt[c.Col]; !ok {
				continue
			}
			switch c.Op {
			case region.EQ, region.LT, region.LE, region.GT, region.GE:
			default:
				continue
			}
			sel := defaultSelectivity
			if ts != nil {
				sel = ts.Col(c.Col).SelectivityCmp(c.Op, c.Val)
			}
			// The btree candidate set is a superset (spill list, widened
			// float bounds), so the conjunct always stays in the residual.
			opts = append(opts, option{AccessBTree, c.Col, c.Orig, false, sel})
		}
	}
	// Most selective probe wins; PTI breaks ties (pruning pdf evaluations
	// is worth more than pruning certain comparisons). Position breaks the
	// rest, keeping the choice deterministic.
	sort.SliceStable(opts, func(i, j int) bool {
		if opts[i].sel != opts[j].sel {
			return opts[i].sel < opts[j].sel
		}
		if opts[i].kind != opts[j].kind {
			return opts[i].kind == AccessPTI
		}
		return opts[i].orig < opts[j].orig
	})
	if len(opts) > 0 {
		best := opts[0]
		p.Access = best.kind
		p.Col = best.col
		p.Probe = best.orig
		p.Consumed = best.consumed
		p.EstCand = best.sel * rows
	} else {
		p.EstCand = rows
		switch {
		case force:
			p.Reason = "forced"
		case ix == nil || (len(ix.pti) == 0 && len(ix.bt) == 0):
			p.Reason = "no index"
		case uncertainFloors:
			p.Reason = "uncertain column floored by comparison"
		default:
			p.Reason = "no indexable conjunct"
		}
	}

	// Residual probability conjuncts: cheapest-times-most-selective first.
	// Cost models the per-tuple work (range integration beats a cached
	// point probability only on the second visit, so it is priced higher);
	// the sort is stable, so unestimable conjuncts keep written order.
	type ranked struct {
		orig  int
		score float64
	}
	var probs []ranked
	est := 1.0
	for _, c := range conj {
		sel := defaultSelectivity
		cost := 1.0
		switch c.Kind {
		case ConjCmp:
			if ts != nil && c.Col != "" && !c.ColUncertain {
				sel = ts.Col(c.Col).SelectivityCmp(c.Op, c.Val)
			}
			est *= sel
			continue
		case ConjProb:
			cost = 1
		case ConjProbRange:
			cost = 2
			if ts != nil && len(c.ProbCols) == 1 {
				sel = ts.Col(c.ProbCols[0]).SelectivityProbRange(c.Lo, c.Hi, c.Threshold, ts.Rows)
			}
		}
		est *= sel
		if c.Orig == p.Probe && p.Consumed {
			continue
		}
		probs = append(probs, ranked{c.Orig, sel * cost})
	}
	sort.SliceStable(probs, func(i, j int) bool { return probs[i].score < probs[j].score })
	for _, r := range probs {
		p.ResidualProb = append(p.ResidualProb, r.orig)
	}
	p.EstRows = est * rows
	return p
}

// Describe renders the access-path decision for EXPLAIN.
func (p *Plan) Describe(conj []Conjunct) string {
	var b strings.Builder
	switch p.Access {
	case AccessScan:
		fmt.Fprintf(&b, "access: scan")
		if p.Reason != "" {
			fmt.Fprintf(&b, " (%s)", p.Reason)
		}
	default:
		fmt.Fprintf(&b, "access: %s(%s)", p.Access, p.Col)
		for _, c := range conj {
			if c.Orig != p.Probe {
				continue
			}
			if c.Kind == ConjProbRange {
				fmt.Fprintf(&b, " Pr[%g,%g] %v %g", c.Lo, c.Hi, c.Op, c.Threshold)
			} else {
				fmt.Fprintf(&b, " %v %s", c.Op, c.Val.Render())
			}
		}
		if p.Consumed {
			b.WriteString(" [consumed]")
		} else {
			b.WriteString(" [re-verified]")
		}
	}
	return b.String()
}
