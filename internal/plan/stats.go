// Package plan is the cost-based query planner: a statistics catalog
// populated by ANALYZE, index bookkeeping for the PTI and btree access
// paths, and the access-path/conjunct-ordering decision itself. The planner
// never changes results — only which tuples have their pdfs evaluated (the
// expensive operation a probabilistic DBMS must minimize) and in what order
// the residual filters run.
package plan

import (
	"encoding/json"
	"fmt"
	"math"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

// histBuckets is the resolution of every histogram ANALYZE builds. Equi-width
// keeps the manifest encoding trivial and estimation O(1) per bucket.
const histBuckets = 32

// defaultSelectivity is assumed for any predicate the catalog cannot
// estimate (no ANALYZE yet, unknown column, non-numeric comparison).
const defaultSelectivity = 0.5

// Histogram is an equi-width histogram over [Lo, Hi]. For a certain column
// the weights are row counts; for an uncertain column they are expected
// probability mass (each row contributes its pdf's exact mass inside each
// bucket), so the total weight is the column's cumulative mass, not its row
// count.
type Histogram struct {
	Lo      float64   `json:"lo"`
	Hi      float64   `json:"hi"`
	Weights []float64 `json:"weights"`
}

// total returns the histogram's cumulative weight.
func (h *Histogram) total() float64 {
	var s float64
	for _, w := range h.Weights {
		s += w
	}
	return s
}

// massBelow returns the cumulative weight left of x, interpolating linearly
// inside the bucket containing x.
func (h *Histogram) massBelow(x float64) float64 {
	if h == nil || len(h.Weights) == 0 || h.Hi <= h.Lo {
		return 0
	}
	if x <= h.Lo {
		return 0
	}
	if x >= h.Hi {
		return h.total()
	}
	width := (h.Hi - h.Lo) / float64(len(h.Weights))
	pos := (x - h.Lo) / width
	idx := int(pos)
	var s float64
	for i := 0; i < idx; i++ {
		s += h.Weights[i]
	}
	return s + h.Weights[idx]*(pos-float64(idx))
}

// massIn returns the cumulative weight inside [lo, hi].
func (h *Histogram) massIn(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	return h.massBelow(hi) - h.massBelow(lo)
}

// ColStats is the ANALYZE output for one visible column.
type ColStats struct {
	Name      string     `json:"name"`
	Uncertain bool       `json:"uncertain"`
	Nulls     int64      `json:"nulls,omitempty"`    // certain: NULL count
	Distinct  int64      `json:"distinct,omitempty"` // certain: exact distinct non-null values
	TotalMass float64    `json:"total_mass,omitempty"`
	Hist      *Histogram `json:"hist,omitempty"`
}

// TableStats is the ANALYZE output for one table.
type TableStats struct {
	Rows int64                `json:"rows"`
	Cols map[string]*ColStats `json:"cols"`
}

// Analyze scans the table once and builds its statistics: the row count,
// a value histogram + exact distinct count per certain column, and an
// expected-mass histogram over the support per uncertain column.
func Analyze(t *core.Table) (*TableStats, error) {
	ts := &TableStats{Rows: int64(t.Len()), Cols: map[string]*ColStats{}}
	for _, col := range t.Schema().Columns() {
		var cs *ColStats
		var err error
		if col.Uncertain {
			cs, err = analyzeUncertain(t, col.Name)
		} else {
			cs = analyzeCertain(t, col.Name)
		}
		if err != nil {
			return nil, err
		}
		ts.Cols[col.Name] = cs
	}
	return ts, nil
}

func analyzeCertain(t *core.Table, name string) *ColStats {
	cs := &ColStats{Name: name}
	distinct := map[core.Value]struct{}{}
	var vals []float64
	for _, tup := range t.Tuples() {
		v, _ := t.Value(tup, name)
		if v.IsNull() {
			cs.Nulls++
			continue
		}
		distinct[v] = struct{}{}
		if f, ok := v.AsFloat(); ok {
			vals = append(vals, f)
		}
	}
	cs.Distinct = int64(len(distinct))
	if len(vals) == 0 {
		return cs
	}
	lo, hi := vals[0], vals[0]
	for _, f := range vals[1:] {
		lo, hi = math.Min(lo, f), math.Max(hi, f)
	}
	if hi == lo {
		hi = lo + 1 // degenerate domain: one bucket catches everything
	}
	h := &Histogram{Lo: lo, Hi: hi, Weights: make([]float64, histBuckets)}
	width := (hi - lo) / histBuckets
	for _, f := range vals {
		i := int((f - lo) / width)
		if i >= histBuckets {
			i = histBuckets - 1
		}
		h.Weights[i]++
	}
	cs.Hist = h
	return cs
}

func analyzeUncertain(t *core.Table, name string) (*ColStats, error) {
	cs := &ColStats{Name: name, Uncertain: true}
	type sup struct {
		d      dist.Dist
		lo, hi float64
	}
	var sups []sup
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, tup := range t.Tuples() {
		d, err := t.DistOf(tup, name)
		if err != nil {
			return nil, err
		}
		s := d.Support()[0]
		sups = append(sups, sup{d: d, lo: s.Lo, hi: s.Hi})
		lo, hi = math.Min(lo, s.Lo), math.Max(hi, s.Hi)
	}
	if len(sups) == 0 || hi <= lo {
		return cs, nil
	}
	h := &Histogram{Lo: lo, Hi: hi, Weights: make([]float64, histBuckets)}
	width := (hi - lo) / histBuckets
	for _, s := range sups {
		cs.TotalMass += s.d.Mass()
		// Exact expected mass: integrate the pdf over each bucket its
		// support overlaps (typically a handful of the 32).
		first := int((s.lo - lo) / width)
		last := int((s.hi - lo) / width)
		if last >= histBuckets {
			last = histBuckets - 1
		}
		for i := first; i <= last; i++ {
			blo := lo + float64(i)*width
			h.Weights[i] += dist.MassInterval(s.d, math.Max(blo, s.lo), math.Min(blo+width, s.hi))
		}
	}
	cs.Hist = h
	return cs, nil
}

// Col returns the named column's stats, or nil.
func (ts *TableStats) Col(name string) *ColStats {
	if ts == nil {
		return nil
	}
	return ts.Cols[name]
}

// SelectivityCmp estimates the fraction of rows a "col op literal"
// comparison keeps on a certain column.
func (cs *ColStats) SelectivityCmp(op region.Op, v core.Value) float64 {
	if cs == nil || cs.Uncertain {
		return defaultSelectivity
	}
	rows := cs.Nulls + nonNullRows(cs)
	if rows == 0 {
		return defaultSelectivity
	}
	switch op {
	case region.EQ:
		if cs.Distinct > 0 {
			return clamp01(float64(nonNullRows(cs)) / float64(rows) / float64(cs.Distinct))
		}
		return defaultSelectivity
	case region.NE:
		if cs.Distinct > 0 {
			return clamp01(1 - 1/float64(cs.Distinct))
		}
		return defaultSelectivity
	}
	f, ok := v.AsFloat()
	if !ok || cs.Hist == nil {
		return defaultSelectivity
	}
	total := cs.Hist.total()
	if total == 0 {
		return defaultSelectivity
	}
	below := cs.Hist.massBelow(f)
	var kept float64
	switch op {
	case region.LT, region.LE:
		kept = below
	case region.GT, region.GE:
		kept = total - below
	default:
		return defaultSelectivity
	}
	return clamp01(kept / float64(rows))
}

func nonNullRows(cs *ColStats) int64 {
	if cs.Hist == nil {
		return cs.Distinct
	}
	return int64(cs.Hist.total())
}

// SelectivityProbRange estimates the fraction of rows whose probability mass
// inside [lo, hi] reaches the threshold p, using the Markov bound
// Pr(mass >= p) <= E[mass]/p over the expected-mass histogram.
func (cs *ColStats) SelectivityProbRange(lo, hi, p float64, rows int64) float64 {
	if cs == nil || !cs.Uncertain || cs.Hist == nil || rows == 0 || p <= 0 {
		return defaultSelectivity
	}
	expected := cs.Hist.massIn(lo, hi) / float64(rows)
	return clamp01(expected / p)
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

// Encode serializes the stats for the manifest (one line, no spaces or
// newlines inside thanks to JSON).
func (ts *TableStats) Encode() ([]byte, error) { return json.Marshal(ts) }

// DecodeStats parses a manifest stats payload.
func DecodeStats(b []byte) (*TableStats, error) {
	var ts TableStats
	if err := json.Unmarshal(b, &ts); err != nil {
		return nil, fmt.Errorf("plan: bad stats payload: %w", err)
	}
	return &ts, nil
}
