package pws_test

import (
	"fmt"
	"math/rand"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/pws"
	"probdb/internal/region"
)

// TestRandomJoinsMatchPWS joins two random discrete tables on a random
// uncertain predicate and compares against world-by-world evaluation.
func TestRandomJoinsMatchPWS(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	ops := []region.Op{region.LT, region.LE, region.GT, region.GE, region.EQ, region.NE}
	for trial := 0; trial < 60; trial++ {
		reg := core.NewRegistry()
		a, err := randomKeyed(r, reg, "A", "ka", "x")
		if err != nil {
			t.Fatal(err)
		}
		b, err := randomKeyed(r, reg, "B", "kb", "y")
		if err != nil {
			t.Fatal(err)
		}
		op := ops[r.Intn(len(ops))]

		wa, err := pws.Enumerate(a, "ka")
		if err != nil {
			t.Fatal(err)
		}
		wb, err := pws.Enumerate(b, "kb")
		if err != nil {
			t.Fatal(err)
		}
		oracle := pws.Collapse(pws.JoinWorlds(wa, wb, func(ra, rb pws.Row) bool {
			return op.Eval(ra.Vals["x"], rb.Vals["y"])
		}), []string{"x", "y"})

		j, err := a.Join(b, core.Cmp(core.Col("x"), op, core.Col("y")))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := pws.FromTable(j, []string{"ka", "kb"}, []string{"x", "y"})
		if err != nil {
			t.Fatal(err)
		}
		if d := pws.Diff(oracle, got, 1e-9); d != "" {
			t.Fatalf("trial %d (op %v): %s\nA:\n%s\nB:\n%s", trial, op, d, a.Render(), b.Render())
		}
	}
}

// TestRandomProjectThenSelectMatchesPWS runs σ ∘ π ∘ σ pipelines over
// random joint tables: projections must keep enough phantom state for the
// later selection to stay PWS-consistent.
func TestRandomProjectThenSelectMatchesPWS(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 60; trial++ {
		tbl, err := randomJointTable(r)
		if err != nil {
			t.Fatal(err)
		}
		c1 := float64(r.Intn(4))
		c2 := float64(r.Intn(4))

		worlds, err := pws.Enumerate(tbl, "k")
		if err != nil {
			t.Fatal(err)
		}
		oracle := pws.Collapse(pws.Filter(worlds, func(row pws.Row) bool {
			return row.Vals["b"] >= c1 && row.Vals["a"] <= c2
		}), []string{"a"})

		// Model: select on b, project away b, then select on a.
		s1, err := tbl.Select(core.Cmp(core.Col("b"), region.GE, core.LitF(c1)))
		if err != nil {
			t.Fatal(err)
		}
		p, err := s1.Project("k", "a")
		if err != nil {
			t.Fatal(err)
		}
		s2, err := p.Select(core.Cmp(core.Col("a"), region.LE, core.LitF(c2)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := pws.FromTable(s2, []string{"k"}, []string{"a"})
		if err != nil {
			t.Fatal(err)
		}
		if d := pws.Diff(oracle, got, 1e-9); d != "" {
			t.Fatalf("trial %d (b>=%v, a<=%v): %s\ntable:\n%s", trial, c1, c2, d, tbl.Render())
		}
	}
}

// TestProjectThenRejoinMatchesPWS is the randomized Fig. 3: project a joint
// into two views, floor one, rejoin — the history machinery must produce
// the world-consistent joint for every random instance.
func TestProjectThenRejoinMatchesPWS(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		tbl, err := randomJointTable(r)
		if err != nil {
			t.Fatal(err)
		}
		cut := float64(r.Intn(4))

		worlds, err := pws.Enumerate(tbl, "k")
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: per world, join π_{k,a} with π_{k,b}(σ_{b>cut}) on key.
		oracle := pws.ResultDist{}
		for _, w := range worlds {
			for _, ra := range w.Rows {
				for _, rb := range w.Rows {
					if ra.Key != rb.Key || !(rb.Vals["b"] > cut) {
						continue
					}
					key := ra.Key + "|" + rb.Key
					sig := fmt.Sprintf("%g,%g", ra.Vals["a"], rb.Vals["b"])
					m, ok := oracle[key]
					if !ok {
						m = map[string]float64{}
						oracle[key] = m
					}
					m[sig] += w.Prob
				}
			}
		}

		ta, err := tbl.Project("k", "a")
		if err != nil {
			t.Fatal(err)
		}
		ta, err = ta.Renamed(map[string]string{"k": "ka"})
		if err != nil {
			t.Fatal(err)
		}
		sel, err := tbl.Select(core.Cmp(core.Col("b"), region.GT, core.LitF(cut)))
		if err != nil {
			t.Fatal(err)
		}
		tb, err := sel.Project("k", "b")
		if err != nil {
			t.Fatal(err)
		}
		tb, err = tb.Renamed(map[string]string{"k": "kb", "b": "b2"})
		if err != nil {
			t.Fatal(err)
		}
		joined, err := ta.EquiJoin(tb, "ka", "kb")
		if err != nil {
			t.Fatal(err)
		}
		merged, err := joined.MergeDeps("a", "b2")
		if err != nil {
			t.Fatal(err)
		}
		got, err := pws.FromTable(merged, []string{"ka", "kb"}, []string{"a", "b2"})
		if err != nil {
			t.Fatal(err)
		}
		if d := pws.Diff(oracle, got, 1e-9); d != "" {
			t.Fatalf("trial %d (cut %v): %s\ntable:\n%s", trial, cut, d, tbl.Render())
		}
	}
}

func randomKeyed(r *rand.Rand, reg *core.Registry, name, key, attr string) (*core.Table, error) {
	schema := core.MustSchema(
		core.Column{Name: key, Type: core.IntType},
		core.Column{Name: attr, Type: core.IntType, Uncertain: true},
	)
	tbl, err := core.NewTable(name, schema, nil, reg)
	if err != nil {
		return nil, err
	}
	n := 1 + r.Intn(2)
	for i := 0; i < n; i++ {
		np := 1 + r.Intn(3)
		vals := make([]float64, np)
		probs := make([]float64, np)
		for j := range vals {
			vals[j] = float64(r.Intn(4))
			probs[j] = r.Float64() / float64(np)
		}
		err := tbl.Insert(core.Row{
			Values: map[string]core.Value{key: core.Int(int64(i))},
			PDFs:   []core.PDF{{Attrs: []string{attr}, Dist: dist.NewDiscrete(vals, probs)}},
		})
		if err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

func randomJointTable(r *rand.Rand) (*core.Table, error) {
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "a", Type: core.IntType, Uncertain: true},
		core.Column{Name: "b", Type: core.IntType, Uncertain: true},
	)
	tbl, err := core.NewTable("J", schema, [][]string{{"a", "b"}}, nil)
	if err != nil {
		return nil, err
	}
	n := 1 + r.Intn(2)
	for i := 0; i < n; i++ {
		np := 1 + r.Intn(3)
		pts := make([]dist.Point, np)
		for j := range pts {
			pts[j] = dist.Point{
				X: []float64{float64(r.Intn(4)), float64(r.Intn(4))},
				P: r.Float64() / float64(np),
			}
		}
		err := tbl.Insert(core.Row{
			Values: map[string]core.Value{"k": core.Int(int64(i))},
			PDFs:   []core.PDF{{Attrs: []string{"a", "b"}, Dist: dist.NewDiscreteJoint(2, pts)}},
		})
		if err != nil {
			return nil, err
		}
	}
	return tbl, nil
}
