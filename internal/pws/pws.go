// Package pws is the possible-worlds reference engine: it expands a
// discrete probabilistic table into the explicit set of possible worlds of
// Fig. 1, evaluates queries world-by-world with ordinary relational
// semantics, and collapses the results back into per-tuple distributions.
//
// It exists as the testing oracle for the model layer: Theorems 1–2 of the
// paper claim the operators are consistent with possible worlds semantics,
// and the tests in internal/core verify exactly that by comparing operator
// output against this package's brute-force enumeration. It is exponential
// by design and only usable on small discrete tables.
package pws

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"probdb/internal/core"
	"probdb/internal/dist"
)

// Row is one concrete tuple inside a possible world: the designated key
// values, the concrete values of the uncertain attributes, and the certain
// values.
type Row struct {
	Key     string
	Vals    map[string]float64
	Certain map[string]core.Value
}

// World is one possible world: a concrete relation and its probability.
type World struct {
	Prob float64
	Rows []Row
}

// setOutcome is one resolution of a dependency set in a tuple: either a
// concrete value vector or non-existence.
type setOutcome struct {
	prob   float64
	exists bool
	vals   []float64
}

// Enumerate expands the table into its possible worlds. Key columns name
// certain columns whose rendered values identify source tuples across
// worlds. All pdfs must be discrete (or collapsible to discrete).
//
// Base tuples are assumed independent, matching the model's Definition 2;
// do not enumerate derived tables whose tuples share history — enumerate
// the base table and apply the query per world instead.
func Enumerate(t *core.Table, keyCols ...string) ([]World, error) {
	deps := t.DepSets()
	worlds := []World{{Prob: 1}}
	for _, tup := range t.Tuples() {
		outcomes, err := tupleOutcomes(t, tup, deps)
		if err != nil {
			return nil, err
		}
		key, certain := rowIdentity(t, tup, keyCols)
		next := make([]World, 0, len(worlds)*len(outcomes))
		for _, w := range worlds {
			for _, o := range outcomes {
				nw := World{Prob: w.Prob * o.prob, Rows: w.Rows}
				if o.exists {
					vals := map[string]float64{}
					off := 0
					for _, set := range deps {
						for _, name := range set {
							vals[name] = o.vals[off]
							off++
						}
					}
					rows := make([]Row, len(w.Rows), len(w.Rows)+1)
					copy(rows, w.Rows)
					nw.Rows = append(rows, Row{Key: key, Vals: vals, Certain: certain})
				}
				if nw.Prob > 0 {
					next = append(next, nw)
				}
			}
		}
		worlds = next
	}
	return worlds, nil
}

// tupleOutcomes enumerates the joint resolutions of all dependency sets of
// one tuple: the cross product of per-set outcomes, with non-existence of
// any set collapsing to non-existence of the tuple.
func tupleOutcomes(t *core.Table, tup *core.Tuple, deps [][]string) ([]setOutcome, error) {
	outs := []setOutcome{{prob: 1, exists: true}}
	for i := range deps {
		d := t.DepDist(tup, i)
		dd, ok := dist.Collapse(d, dist.DefaultOptions).(*dist.Discrete)
		if !ok {
			return nil, fmt.Errorf("pws: dependency set %v is not discrete (%T)", deps[i], d)
		}
		var setOuts []setOutcome
		for _, p := range dd.Points() {
			setOuts = append(setOuts, setOutcome{prob: p.P, exists: true, vals: p.X})
		}
		if miss := 1 - dd.Mass(); miss > 1e-12 {
			setOuts = append(setOuts, setOutcome{prob: miss})
		}
		next := make([]setOutcome, 0, len(outs)*len(setOuts))
		for _, a := range outs {
			for _, b := range setOuts {
				o := setOutcome{prob: a.prob * b.prob, exists: a.exists && b.exists}
				if o.exists {
					o.vals = append(append([]float64{}, a.vals...), b.vals...)
				}
				if o.prob > 0 {
					next = append(next, o)
				}
			}
		}
		outs = next
	}
	// Merge non-existence outcomes.
	var merged []setOutcome
	var dead float64
	for _, o := range outs {
		if o.exists {
			merged = append(merged, o)
		} else {
			dead += o.prob
		}
	}
	if dead > 0 {
		merged = append(merged, setOutcome{prob: dead})
	}
	return merged, nil
}

func rowIdentity(t *core.Table, tup *core.Tuple, keyCols []string) (string, map[string]core.Value) {
	certain := map[string]core.Value{}
	for _, c := range t.Schema().Columns() {
		if !c.Uncertain {
			v, _ := t.Value(tup, c.Name)
			certain[c.Name] = v
		}
	}
	parts := make([]string, len(keyCols))
	for i, k := range keyCols {
		parts[i] = certain[k].Render()
	}
	return strings.Join(parts, "|"), certain
}

// Filter applies a per-row predicate inside every world — the world-by-
// world execution of a selection (Fig. 1).
func Filter(worlds []World, pred func(Row) bool) []World {
	out := make([]World, len(worlds))
	for i, w := range worlds {
		var rows []Row
		for _, r := range w.Rows {
			if pred(r) {
				rows = append(rows, r)
			}
		}
		out[i] = World{Prob: w.Prob, Rows: rows}
	}
	return out
}

// JoinWorlds pairs two world sets (over independent base tables) and joins
// their rows with the given predicate.
func JoinWorlds(a, b []World, pred func(Row, Row) bool) []World {
	var out []World
	for _, wa := range a {
		for _, wb := range b {
			var rows []Row
			for _, ra := range wa.Rows {
				for _, rb := range wb.Rows {
					if pred(ra, rb) {
						rows = append(rows, mergeRows(ra, rb))
					}
				}
			}
			out = append(out, World{Prob: wa.Prob * wb.Prob, Rows: rows})
		}
	}
	return out
}

func mergeRows(a, b Row) Row {
	vals := map[string]float64{}
	certain := map[string]core.Value{}
	for k, v := range a.Vals {
		vals[k] = v
	}
	for k, v := range b.Vals {
		vals[k] = v
	}
	for k, v := range a.Certain {
		certain[k] = v
	}
	for k, v := range b.Certain {
		certain[k] = v
	}
	return Row{Key: a.Key + "|" + b.Key, Vals: vals, Certain: certain}
}

// ResultDist is the collapsed result of a query: for every source key, the
// probability of each concrete value combination of the listed attributes,
// aggregated over all worlds ("collapse" in Fig. 1).
type ResultDist map[string]map[string]float64

// Collapse aggregates worlds into a ResultDist over the given attributes.
func Collapse(worlds []World, attrs []string) ResultDist {
	out := ResultDist{}
	for _, w := range worlds {
		for _, r := range w.Rows {
			sig := valueSig(r, attrs)
			m, ok := out[r.Key]
			if !ok {
				m = map[string]float64{}
				out[r.Key] = m
			}
			m[sig] += w.Prob
		}
	}
	return out
}

func valueSig(r Row, attrs []string) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		if v, ok := r.Vals[a]; ok {
			parts[i] = strconv.FormatFloat(v, 'g', 12, 64)
		} else if cv, ok := r.Certain[a]; ok {
			parts[i] = cv.Render()
		} else {
			parts[i] = "?"
		}
	}
	return strings.Join(parts, ",")
}

// Existence returns per-key existence probabilities (the chance the source
// tuple contributes any row).
func (rd ResultDist) Existence() map[string]float64 {
	out := map[string]float64{}
	for k, m := range rd {
		var s float64
		for _, p := range m {
			s += p
		}
		out[k] = s
	}
	return out
}

// FromTable computes the same ResultDist shape directly from a model-layer
// table: for every tuple (keyed by keyCols) the joint probability of each
// value combination of attrs, multiplying in the masses of uncovered
// dependency sets (tuple existence requires every set to resolve).
// Dependency sets are treated as independent within a tuple, which holds
// for any table the model produces (dependent sets are merged by Ω).
func FromTable(t *core.Table, keyCols, attrs []string) (ResultDist, error) {
	deps := t.DepSets()
	want := map[string]bool{}
	for _, a := range attrs {
		want[a] = true
	}
	out := ResultDist{}
	for _, tup := range t.Tuples() {
		key, certain := rowIdentity(t, tup, keyCols)
		type partial struct {
			prob float64
			vals map[string]float64
		}
		parts := []partial{{prob: 1, vals: map[string]float64{}}}
		for i, set := range deps {
			covers := false
			for _, name := range set {
				if want[name] {
					covers = true
					break
				}
			}
			d := t.DepDist(tup, i)
			if !covers {
				for j := range parts {
					parts[j].prob *= d.Mass()
				}
				continue
			}
			dd, ok := dist.Collapse(d, dist.DefaultOptions).(*dist.Discrete)
			if !ok {
				return nil, fmt.Errorf("pws: dependency set %v is not discrete (%T)", set, d)
			}
			var next []partial
			for _, pt := range parts {
				for _, p := range dd.Points() {
					vals := map[string]float64{}
					for k, v := range pt.vals {
						vals[k] = v
					}
					for j, name := range set {
						vals[name] = p.X[j]
					}
					next = append(next, partial{prob: pt.prob * p.P, vals: vals})
				}
			}
			parts = next
		}
		m, ok := out[key]
		if !ok {
			m = map[string]float64{}
			out[key] = m
		}
		for _, pt := range parts {
			if pt.prob <= 0 {
				continue
			}
			r := Row{Vals: pt.vals, Certain: certain}
			m[valueSig(r, attrs)] += pt.prob
		}
	}
	return out, nil
}

// Diff compares two ResultDists and returns a description of the first
// discrepancy beyond tol, or "" when they agree.
func Diff(a, b ResultDist, tol float64) string {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		am, bm := a[k], b[k]
		sigs := map[string]bool{}
		for s := range am {
			sigs[s] = true
		}
		for s := range bm {
			sigs[s] = true
		}
		var ss []string
		for s := range sigs {
			ss = append(ss, s)
		}
		sort.Strings(ss)
		for _, s := range ss {
			pa, pb := am[s], bm[s]
			if diff := pa - pb; diff > tol || diff < -tol {
				return fmt.Sprintf("key %q values (%s): %.9g vs %.9g", k, s, pa, pb)
			}
		}
	}
	return ""
}
