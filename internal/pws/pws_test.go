package pws_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/pws"
	"probdb/internal/region"
)

// tableII builds the paper's Table II with a key column.
func tableII(t *testing.T) *core.Table {
	t.Helper()
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "a", Type: core.IntType, Uncertain: true},
		core.Column{Name: "b", Type: core.IntType, Uncertain: true},
	)
	tbl := core.MustTable("T", schema, [][]string{{"a"}, {"b"}}, nil)
	must(t, tbl.Insert(core.Row{
		Values: map[string]core.Value{"k": core.Int(1)},
		PDFs: []core.PDF{
			{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{0, 1}, []float64{0.1, 0.9})},
			{Attrs: []string{"b"}, Dist: dist.NewDiscrete([]float64{1, 2}, []float64{0.6, 0.4})},
		},
	}))
	must(t, tbl.Insert(core.Row{
		Values: map[string]core.Value{"k": core.Int(2)},
		PDFs: []core.PDF{
			{Attrs: []string{"a"}, Dist: dist.NewDiscrete([]float64{7}, []float64{1})},
			{Attrs: []string{"b"}, Dist: dist.NewDiscrete([]float64{3}, []float64{1})},
		},
	}))
	return tbl
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateTableIII(t *testing.T) {
	// Table III: four worlds, probabilities 0.06, 0.04, 0.54, 0.36.
	tbl := tableII(t)
	worlds, err := pws.Enumerate(tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 4 {
		t.Fatalf("got %d worlds, want 4", len(worlds))
	}
	want := map[[2]float64]float64{
		{0, 1}: 0.06, {0, 2}: 0.04, {1, 1}: 0.54, {1, 2}: 0.36,
	}
	var total float64
	for _, w := range worlds {
		if len(w.Rows) != 2 {
			t.Fatalf("world with %d rows", len(w.Rows))
		}
		r1 := w.Rows[0]
		key := [2]float64{r1.Vals["a"], r1.Vals["b"]}
		if p, ok := want[key]; !ok || math.Abs(p-w.Prob) > 1e-12 {
			t.Errorf("world %v prob %v, want %v", key, w.Prob, p)
		}
		// Tuple 2 is certain in every world.
		if w.Rows[1].Vals["a"] != 7 || w.Rows[1].Vals["b"] != 3 {
			t.Errorf("tuple 2 wrong: %v", w.Rows[1].Vals)
		}
		total += w.Prob
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("world probabilities total %v", total)
	}
}

func TestSelectMatchesPWS(t *testing.T) {
	// σ_{a<b} evaluated by the model must equal world-by-world evaluation.
	tbl := tableII(t)
	worlds, err := pws.Enumerate(tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	oracle := pws.Collapse(
		pws.Filter(worlds, func(r pws.Row) bool { return r.Vals["a"] < r.Vals["b"] }),
		[]string{"a", "b"},
	)
	sel, err := tbl.Select(core.Cmp(core.Col("a"), region.LT, core.Col("b")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pws.FromTable(sel, []string{"k"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if d := pws.Diff(oracle, got, 1e-9); d != "" {
		t.Errorf("mismatch: %s", d)
	}
}

func TestProjectionMatchesPWS(t *testing.T) {
	tbl := tableII(t)
	worlds, err := pws.Enumerate(tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := tbl.Select(core.Cmp(core.Col("b"), region.GE, core.LitI(2)))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := sel.Project("k", "a")
	if err != nil {
		t.Fatal(err)
	}
	oracle := pws.Collapse(
		pws.Filter(worlds, func(r pws.Row) bool { return r.Vals["b"] >= 2 }),
		[]string{"a"},
	)
	got, err := pws.FromTable(proj, []string{"k"}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if d := pws.Diff(oracle, got, 1e-9); d != "" {
		t.Errorf("mismatch: %s", d)
	}
}

func TestJoinMatchesPWS(t *testing.T) {
	reg := core.NewRegistry()
	mk := func(name, key, attr string, rows [][3][]float64) *core.Table {
		schema := core.MustSchema(
			core.Column{Name: key, Type: core.IntType},
			core.Column{Name: attr, Type: core.IntType, Uncertain: true},
		)
		tbl := core.MustTable(name, schema, nil, reg)
		for i, r := range rows {
			must(t, tbl.Insert(core.Row{
				Values: map[string]core.Value{key: core.Int(int64(i + 1))},
				PDFs:   []core.PDF{{Attrs: []string{attr}, Dist: dist.NewDiscrete(r[0], r[1])}},
			}))
		}
		return tbl
	}
	a := mk("A", "ka", "x", [][3][]float64{
		{{1, 2}, {0.5, 0.5}},
		{{3}, {0.8}}, // partial
	})
	b := mk("B", "kb", "y", [][3][]float64{
		{{2, 3}, {0.4, 0.6}},
	})

	wa, err := pws.Enumerate(a, "ka")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := pws.Enumerate(b, "kb")
	if err != nil {
		t.Fatal(err)
	}
	oracle := pws.Collapse(
		pws.JoinWorlds(wa, wb, func(ra, rb pws.Row) bool { return ra.Vals["x"] < rb.Vals["y"] }),
		[]string{"x", "y"},
	)

	j, err := a.Join(b, core.Cmp(core.Col("x"), region.LT, core.Col("y")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pws.FromTable(j, []string{"ka", "kb"}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if d := pws.Diff(oracle, got, 1e-9); d != "" {
		t.Errorf("mismatch: %s", d)
	}
}

func TestFig3PipelineMatchesPWS(t *testing.T) {
	// The full Fig. 3 pipeline — Ta = π_a(T), Tb = π_b(σ_{b>4}(T)),
	// Ta ⋈ Tb — evaluated world-by-world, against the model with histories.
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "a", Type: core.IntType, Uncertain: true},
		core.Column{Name: "b", Type: core.IntType, Uncertain: true},
	)
	tbl := core.MustTable("T", schema, [][]string{{"a", "b"}}, nil)
	must(t, tbl.Insert(core.Row{
		Values: map[string]core.Value{"k": core.Int(1)},
		PDFs: []core.PDF{{Attrs: []string{"a", "b"}, Dist: dist.NewDiscreteJoint(2, []dist.Point{
			{X: []float64{4, 5}, P: 0.9},
			{X: []float64{2, 3}, P: 0.1},
		})}},
	}))
	must(t, tbl.Insert(core.Row{
		Values: map[string]core.Value{"k": core.Int(2)},
		PDFs: []core.PDF{{Attrs: []string{"a", "b"}, Dist: dist.NewDiscreteJoint(2, []dist.Point{
			{X: []float64{7, 3}, P: 0.7},
		})}},
	}))

	// Oracle: per world, join π_a(T) with π_b(σ_{b>4}(T)).
	worlds, err := pws.Enumerate(tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	oracle := pws.ResultDist{}
	for _, w := range worlds {
		for _, ra := range w.Rows {
			for _, rb := range w.Rows {
				if rb.Vals["b"] > 4 {
					key := ra.Key + "|" + rb.Key
					sig := fmt.Sprintf("%g,%g", ra.Vals["a"], rb.Vals["b"])
					m, ok := oracle[key]
					if !ok {
						m = map[string]float64{}
						oracle[key] = m
					}
					m[sig] += w.Prob
				}
			}
		}
	}

	// Model: the same pipeline with histories.
	ta, err := tbl.Project("k", "a")
	must(t, err)
	ta, err = ta.Renamed(map[string]string{"k": "ka"})
	must(t, err)
	sel, err := tbl.Select(core.Cmp(core.Col("b"), region.GT, core.LitI(4)))
	must(t, err)
	tb, err := sel.Project("k", "b")
	must(t, err)
	tb, err = tb.Renamed(map[string]string{"k": "kb", "b": "b2"})
	must(t, err)
	cross, err := ta.CrossProduct(tb)
	must(t, err)
	joined, err := cross.MergeDeps("a", "b2")
	must(t, err)
	got, err := pws.FromTable(joined, []string{"ka", "kb"}, []string{"a", "b2"})
	must(t, err)
	if d := pws.Diff(oracle, got, 1e-9); d != "" {
		t.Errorf("mismatch: %s", d)
	}
}

// TestRandomSelectsMatchPWS is the property-style oracle test: random small
// discrete tables and random conjunctive selections, model vs enumeration.
func TestRandomSelectsMatchPWS(t *testing.T) {
	r := rand.New(rand.NewSource(20080415))
	for trial := 0; trial < 120; trial++ {
		tbl, err := randomTable(r, trial%3 == 0)
		if err != nil {
			t.Fatal(err)
		}
		atoms := randomAtoms(r)
		worlds, err := pws.Enumerate(tbl, "k")
		if err != nil {
			t.Fatal(err)
		}
		oracle := pws.Collapse(pws.Filter(worlds, func(row pws.Row) bool {
			for _, a := range atoms {
				if !evalAtomOnRow(a, row) {
					return false
				}
			}
			return true
		}), []string{"a", "b"})

		sel, err := tbl.Select(atoms...)
		if err != nil {
			t.Fatalf("trial %d: select: %v", trial, err)
		}
		got, err := pws.FromTable(sel, []string{"k"}, []string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		if d := pws.Diff(oracle, got, 1e-9); d != "" {
			t.Fatalf("trial %d (atoms %v): %s\ntable:\n%s", trial, atoms, d, tbl.Render())
		}
	}
}

// randomTable builds a table with key k and uncertain a, b — jointly
// distributed when joint is true, independent otherwise — over small
// integer domains with possibly-partial pdfs.
func randomTable(r *rand.Rand, joint bool) (*core.Table, error) {
	schema := core.MustSchema(
		core.Column{Name: "k", Type: core.IntType},
		core.Column{Name: "a", Type: core.IntType, Uncertain: true},
		core.Column{Name: "b", Type: core.IntType, Uncertain: true},
	)
	var deps [][]string
	if joint {
		deps = [][]string{{"a", "b"}}
	} else {
		deps = [][]string{{"a"}, {"b"}}
	}
	tbl, err := core.NewTable("R", schema, deps, nil)
	if err != nil {
		return nil, err
	}
	nTuples := 1 + r.Intn(3)
	for i := 0; i < nTuples; i++ {
		row := core.Row{Values: map[string]core.Value{"k": core.Int(int64(i))}}
		if joint {
			n := 1 + r.Intn(3)
			pts := make([]dist.Point, n)
			for j := range pts {
				pts[j] = dist.Point{
					X: []float64{float64(r.Intn(4)), float64(r.Intn(4))},
					P: randProb(r, n),
				}
			}
			row.PDFs = []core.PDF{{Attrs: []string{"a", "b"}, Dist: dist.NewDiscreteJoint(2, pts)}}
		} else {
			row.PDFs = []core.PDF{
				{Attrs: []string{"a"}, Dist: randomDiscrete(r)},
				{Attrs: []string{"b"}, Dist: randomDiscrete(r)},
			}
		}
		if err := tbl.Insert(row); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

func randomDiscrete(r *rand.Rand) *dist.Discrete {
	n := 1 + r.Intn(3)
	vals := make([]float64, n)
	probs := make([]float64, n)
	for i := range vals {
		vals[i] = float64(r.Intn(4))
		probs[i] = randProb(r, n)
	}
	return dist.NewDiscrete(vals, probs)
}

func randProb(r *rand.Rand, n int) float64 {
	// At most 1/n each so totals stay <= 1; sometimes partial.
	return r.Float64() / float64(n)
}

func randomAtoms(r *rand.Rand) []core.Atom {
	ops := []region.Op{region.LT, region.LE, region.GT, region.GE, region.EQ, region.NE}
	n := 1 + r.Intn(2)
	atoms := make([]core.Atom, n)
	for i := range atoms {
		op := ops[r.Intn(len(ops))]
		switch r.Intn(3) {
		case 0:
			atoms[i] = core.Cmp(core.Col("a"), op, core.LitI(int64(r.Intn(4))))
		case 1:
			atoms[i] = core.Cmp(core.Col("b"), op, core.LitI(int64(r.Intn(4))))
		default:
			atoms[i] = core.Cmp(core.Col("a"), op, core.Col("b"))
		}
	}
	return atoms
}

func evalAtomOnRow(a core.Atom, row pws.Row) bool {
	val := func(o core.Operand) float64 {
		s := o.String()
		if v, ok := row.Vals[s]; ok {
			return v
		}
		var f float64
		fmt.Sscanf(s, "%g", &f)
		return f
	}
	return a.Op.Eval(val(a.Left), val(a.Right))
}
