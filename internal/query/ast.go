package query

import (
	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// CreateTable is CREATE TABLE name (col TYPE [UNCERTAIN], ...,
// DEPENDENT(a, b), ...).
type CreateTable struct {
	Name string
	Cols []core.Column
	Deps [][]string
}

// Insert is INSERT INTO name (targets) VALUES (...), (...). A target is
// either one column or a parenthesized group naming a dependency set that
// receives a joint pdf.
type Insert struct {
	Table   string
	Targets []InsertTarget
	Rows    [][]Expr
}

// InsertTarget is one column or dependency-set group in an INSERT target
// list.
type InsertTarget struct {
	Cols  []string
	Group bool
}

// SelectStmt is SELECT cols FROM refs [WHERE conds]. When Agg is set the
// statement is an aggregate query — SELECT SUM(col) / AVG(col) / COUNT(*) —
// whose result is a distribution (the probabilistic aggregates of §I).
type SelectStmt struct {
	Star   bool
	Cols   []string
	Agg    string // "", "SUM", "AVG", "COUNT"
	AggCol string // aggregated column ("" for COUNT(*))
	From   []TableRef
	Where  []Cond
	// ORDER BY: by a certain column, or by Pr(column) when OrderProb is
	// set — the top-k-most-probable-tuples ranking of probabilistic DBs.
	OrderCol  string
	OrderProb bool
	OrderDesc bool
	// LIMIT caps the result size (applied after ordering).
	Limit *int
}

// TableRef is one FROM entry, optionally aliased.
type TableRef struct {
	Name  string
	Alias string
}

// Delete is DELETE FROM name [WHERE conds].
type Delete struct {
	Table string
	Where []Cond
}

// Explain is EXPLAIN SELECT ...: it executes the query and reports the
// operator chain, dependency structure and result cardinality instead of
// the rows.
type Explain struct{ Query SelectStmt }

// Drop is DROP TABLE name.
type Drop struct{ Name string }

// Analyze is ANALYZE [table]: collect planner statistics for one table or,
// with no table, for every table in the catalog.
type Analyze struct{ Table string }

// CreateIndex is CREATE INDEX [name] ON table (col). The index kind follows
// the column: a probabilistic threshold index for uncertain columns, a
// btree for certain ones.
type CreateIndex struct {
	Name  string
	Table string
	Col   string
}

// ShowTables is SHOW TABLES.
type ShowTables struct{}

// Describe is DESCRIBE name.
type Describe struct{ Name string }

// Begin is BEGIN [TRANSACTION] / START TRANSACTION: opens an explicit
// transaction on the session. Transactions are a server-session concept —
// the bare query.DB rejects the statement.
type Begin struct{}

// Commit is COMMIT: atomically publish the session's buffered writes.
type Commit struct{}

// Rollback is ROLLBACK: discard the session's buffered writes.
type Rollback struct{}

func (CreateTable) stmt() {}
func (CreateIndex) stmt() {}
func (Analyze) stmt()     {}
func (Explain) stmt()     {}
func (Insert) stmt()      {}
func (SelectStmt) stmt()  {}
func (Delete) stmt()      {}
func (Drop) stmt()        {}
func (ShowTables) stmt()  {}
func (Describe) stmt()    {}
func (Begin) stmt()       {}
func (Commit) stmt()      {}
func (Rollback) stmt()    {}

// Expr is an INSERT value: a literal or a pdf constructor.
type Expr interface{ expr() }

// LitExpr is a certain literal value.
type LitExpr struct{ V core.Value }

// PDFExpr is a distribution literal, already built by the parser.
type PDFExpr struct{ D dist.Dist }

func (LitExpr) expr() {}
func (PDFExpr) expr() {}

// CondKind discriminates WHERE conditions.
type CondKind int

// Condition kinds: ordinary comparisons (PWS selections), probability
// thresholds over attributes (§III-E), and probability thresholds over a
// range event.
const (
	CondCmp CondKind = iota
	CondProb
	CondProbRange
)

// Cond is one conjunct of a WHERE clause.
type Cond struct {
	Kind CondKind
	// CondCmp:
	Left, Right Operand
	Op          region.Op
	// CondProb / CondProbRange:
	ProbCols  []string
	Lo, Hi    float64 // CondProbRange only
	Threshold float64
}

// Operand is a column reference (possibly alias-qualified) or a literal.
type Operand struct {
	Col   string // "" when literal
	Lit   core.Value
	IsCol bool
}
