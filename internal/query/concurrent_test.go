package query

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSessions is the -race regression for the server's shared
// catalog: 8 goroutines run mixed DDL/DML/SELECT against one DB. Each
// session owns a private table (created, filled, queried, dropped in a
// loop) and all sessions hammer one shared table with interleaved inserts
// and probability-threshold selects.
func TestConcurrentSessions(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE shared (k INT, v FLOAT UNCERTAIN)"); err != nil {
		t.Fatal(err)
	}

	const sessions = 8
	const rounds = 30
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mine := fmt.Sprintf("t%d", id)
			for i := 0; i < rounds; i++ {
				// DDL: private table lifecycle.
				stmts := []string{
					fmt.Sprintf("CREATE TABLE %s (k INT, x FLOAT UNCERTAIN)", mine),
					fmt.Sprintf("INSERT INTO %s (k, x) VALUES (%d, GAUSSIAN(%d, 2))", mine, i, 10+id),
					fmt.Sprintf("SELECT k FROM %s WHERE PROB(x) > 0.1", mine),
					fmt.Sprintf("DROP TABLE %s", mine),
					// DML + queries on the shared table.
					fmt.Sprintf("INSERT INTO shared (k, v) VALUES (%d, GAUSSIAN(%d, 3))", id*1000+i, i%50),
					"SELECT k, v FROM shared WHERE v < 40 AND PROB(v) > 0.5",
					"SELECT COUNT(*) FROM shared",
				}
				for _, sql := range stmts {
					if _, err := db.Exec(sql); err != nil {
						t.Errorf("session %d: %q: %v", id, sql, err)
						return
					}
				}
				if i%7 == 0 {
					if _, err := db.Exec(fmt.Sprintf("DELETE FROM shared WHERE k = %d", id*1000+i)); err != nil {
						t.Errorf("session %d delete: %v", id, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The catalog must end with exactly the shared table (every private
	// table was dropped), and it must still answer queries.
	names := db.TableNames()
	if len(names) != 1 || names[0] != "shared" {
		t.Fatalf("catalog after run: %v", names)
	}
	r, err := db.Exec("SELECT k FROM shared WHERE PROB(v) > 0")
	if err != nil {
		t.Fatal(err)
	}
	if r.Table == nil {
		t.Fatal("expected a table result")
	}
	if got := strings.Count(r.Table.Render(), "k="); got != r.Table.Len() {
		t.Fatalf("render shows %d rows, table has %d", got, r.Table.Len())
	}
}
