package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/exec"
	"probdb/internal/plan"
)

// DB is a catalog of probabilistic tables sharing one base-pdf registry,
// with a SQL-ish Exec interface. It is safe for concurrent sessions: DDL
// and DML statements take the catalog's write lock, while SELECT, EXPLAIN
// and the introspection statements run under the read lock, so concurrent
// readers proceed in parallel and never observe a half-applied mutation
// (the base-pdf registry below carries its own finer-grained lock).
type DB struct {
	mu     sync.RWMutex
	reg    *core.Registry
	tables map[string]*core.Table
	par    int // degree of parallelism for operators (0 = one worker per CPU)

	// Planner state (see planner.go): ANALYZE statistics and index sets per
	// table, maintained under the same write lock as the DML that changes
	// them; forceScan disables index access paths for differential testing.
	stats     map[string]*plan.TableStats
	indexes   map[string]*plan.TableIndexes
	forceScan bool

	// legacyExec forces the materializing execution strategy for SELECT
	// (stream.go builds pipelined operator trees by default). The
	// differential suite and bench.Stream flip it to compare the two.
	legacyExec bool
}

// Open creates an empty database.
func Open() *DB {
	return OpenWith(core.NewRegistry())
}

// OpenWith creates an empty database over an existing base-pdf registry.
// The server uses it to build MVCC snapshot catalogs (frozen tables share
// the authoritative registry) and transaction overlays (cloned tables over
// a cloned registry).
func OpenWith(reg *core.Registry) *DB {
	return &DB{
		reg:     reg,
		tables:  map[string]*core.Table{},
		stats:   map[string]*plan.TableStats{},
		indexes: map[string]*plan.TableIndexes{},
	}
}

// Result is the outcome of one statement: a table for queries, a message
// and affected-row count for commands. Planner carries the query's access-
// path activity (zero-valued for statements the planner never sees).
type Result struct {
	Table    *core.Table
	Message  string
	Affected int
	Planner  plan.Counters
}

// String renders the result for a console.
func (r *Result) String() string {
	if r.Table != nil {
		return r.Table.Render()
	}
	return r.Message
}

// Table returns the named table.
func (db *DB) Table(name string) (*core.Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Attach installs an externally built table (for example one loaded from a
// heap file by internal/store) into the catalog under its own name. The
// table's base pdfs must be registered in this database's Registry().
func (db *DB) Attach(t *core.Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[t.Name]; dup {
		return fmt.Errorf("query: table %q already exists", t.Name)
	}
	db.tables[t.Name] = t
	return nil
}

// TableNames returns the catalog's table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registry returns the database-wide base-pdf registry.
func (db *DB) Registry() *core.Registry { return db.reg }

// SetParallelism fixes the degree of parallelism used by per-tuple operator
// loops (Select, Join, threshold selections): 0 means one worker per logical
// CPU, 1 forces sequential execution. Results are byte-identical at every
// setting; the knob trades cores for latency only.
func (db *DB) SetParallelism(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.par = n
}

// Parallelism reports the configured degree of parallelism (0 = auto).
func (db *DB) Parallelism() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.par
}

// Exec parses and executes a single statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.execStmt(stmt)
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error, and returns the per-statement results so far.
func (db *DB) ExecScript(sql string) ([]*Result, error) {
	stmts, err := ParseScript(sql)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, 0, len(stmts))
	for _, s := range stmts {
		r, err := db.execStmt(s)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

func (db *DB) execStmt(stmt Stmt) (*Result, error) {
	// Read-only statements share the catalog under the read lock; anything
	// that mutates a table or the catalog map takes the write lock.
	switch stmt.(type) {
	case SelectStmt, Explain, ShowTables, Describe:
		db.mu.RLock()
		defer db.mu.RUnlock()
	default:
		db.mu.Lock()
		defer db.mu.Unlock()
	}
	switch s := stmt.(type) {
	case CreateTable:
		return db.execCreate(s)
	case Insert:
		return db.execInsert(s)
	case SelectStmt:
		return db.execSelect(s)
	case Explain:
		return db.execExplain(s)
	case Delete:
		return db.execDelete(s)
	case Analyze:
		return db.execAnalyze(s)
	case CreateIndex:
		return db.execCreateIndex(s)
	case Drop:
		if _, ok := db.tables[s.Name]; !ok {
			return nil, fmt.Errorf("query: no table %q", s.Name)
		}
		delete(db.tables, s.Name)
		db.dropPlannerState(s.Name)
		return &Result{Message: fmt.Sprintf("dropped %s", s.Name)}, nil
	case ShowTables:
		names := make([]string, 0, len(db.tables))
		for n := range db.tables {
			names = append(names, n)
		}
		sort.Strings(names)
		return &Result{Message: strings.Join(names, "\n")}, nil
	case Describe:
		t, ok := db.tables[s.Name]
		if !ok {
			return nil, fmt.Errorf("query: no table %q", s.Name)
		}
		msg := fmt.Sprintf("%s %s\nΔ = %v", s.Name, t.Schema().String(), t.DepSets())
		if ph := t.PhantomAttrs(); len(ph) > 0 {
			msg += fmt.Sprintf("\nphantom: %v", ph)
		}
		if cols := db.indexes[s.Name].Cols(); len(cols) > 0 {
			names := make([]string, 0, len(cols))
			for c := range cols {
				names = append(names, c)
			}
			sort.Strings(names)
			parts := make([]string, len(names))
			for i, c := range names {
				parts[i] = fmt.Sprintf("%s(%s)", c, cols[c])
			}
			msg += "\nindexes: " + strings.Join(parts, ", ")
		}
		if ts := db.stats[s.Name]; ts != nil {
			msg += fmt.Sprintf("\nstats: analyzed at %d rows", ts.Rows)
		}
		return &Result{Message: msg}, nil
	case Begin, Commit, Rollback:
		return nil, fmt.Errorf("query: transactions require a server session (probql -connect); the embedded catalog is autocommit-only")
	default:
		return nil, fmt.Errorf("query: unsupported statement %T", stmt)
	}
}

func (db *DB) execCreate(s CreateTable) (*Result, error) {
	if _, dup := db.tables[s.Name]; dup {
		return nil, fmt.Errorf("query: table %q already exists", s.Name)
	}
	schema, err := core.NewSchema(s.Cols)
	if err != nil {
		return nil, err
	}
	t, err := core.NewTable(s.Name, schema, s.Deps, db.reg)
	if err != nil {
		return nil, err
	}
	db.tables[s.Name] = t
	return &Result{Message: fmt.Sprintf("created %s %s", s.Name, schema.String())}, nil
}

func (db *DB) execInsert(s Insert) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("query: no table %q", s.Table)
	}
	before := t.Len()
	for _, row := range s.Rows {
		r := core.Row{Values: map[string]core.Value{}}
		for i, target := range s.Targets {
			switch e := row[i].(type) {
			case LitExpr:
				if target.Group {
					return nil, fmt.Errorf("query: dependency-set target %v needs a pdf, got literal", target.Cols)
				}
				col, found := t.Schema().Lookup(target.Cols[0])
				if !found {
					return nil, fmt.Errorf("query: no column %q in %s", target.Cols[0], s.Table)
				}
				if col.Uncertain {
					return nil, fmt.Errorf("query: column %q is uncertain; supply a pdf literal", col.Name)
				}
				r.Values[col.Name] = e.V
			case PDFExpr:
				r.PDFs = append(r.PDFs, core.PDF{Attrs: target.Cols, Dist: e.D})
			default:
				return nil, fmt.Errorf("query: unsupported value expression %T", row[i])
			}
		}
		if err := t.Insert(r); err != nil {
			return nil, err
		}
	}
	if err := db.noteInserted(s.Table, t, before); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("inserted %d", len(s.Rows)), Affected: len(s.Rows)}, nil
}

func (db *DB) execSelect(s SelectStmt) (*Result, error) {
	if db.legacyExec {
		return db.execSelectLegacy(s)
	}
	return db.execSelectPipelined(s)
}

// execSelectLegacy is the materializing execution strategy: every operator
// builds its full output table before the next runs. Kept (behind
// SetLegacyExec) as the differential baseline the pipelined executor must
// match byte for byte, and as the memory-usage baseline of bench.Stream.
func (db *DB) execSelectLegacy(s SelectStmt) (*Result, error) {
	pr, err := db.selectPipeline(s)
	if err != nil {
		return nil, err
	}
	acc := pr.acc
	if s.Agg != "" {
		r, err := execAggregate(s, acc)
		if err != nil {
			return nil, err
		}
		r.Planner = pr.counters
		return r, nil
	}
	if s.OrderCol != "" {
		if acc, err = execOrderBy(s, acc); err != nil {
			return nil, err
		}
	}
	if s.Limit != nil {
		acc = acc.Head(*s.Limit)
	}
	if !s.Star {
		if acc, err = acc.Project(s.Cols...); err != nil {
			return nil, err
		}
	}
	return &Result{Table: acc, Affected: acc.Len(), Planner: pr.counters}, nil
}

// execExplain reports the chosen physical plan: the operator chain (the
// derived table name spells out the applied operators), the access path
// with estimated vs actual cardinality and index probe/prune counters, the
// dependency information after closure, phantom attributes, the degree of
// parallelism, and the pdf-mass cache traffic. It runs the filtering stages
// (the actual cardinality requires them) but materializes nothing past
// them: no ordering, no projection of the rows, no aggregation, no
// rendering.
func (db *DB) execExplain(s Explain) (*Result, error) {
	before := db.reg.MassCache().Stats()
	colHitsBefore, colMissesBefore := db.reg.ColCache().Counters()
	pr, err := db.selectPipeline(s.Query)
	if err != nil {
		return nil, err
	}
	acc := pr.acc
	// The dependency/phantom shape needs the projection applied (phantom
	// retention depends on the surviving tuples' masses), but projection is
	// pointer work — no pdfs are evaluated and no rows rendered.
	shape := acc
	chain := acc.Name
	if !s.Query.Star && s.Query.Agg == "" {
		if shape, err = acc.Project(s.Query.Cols...); err != nil {
			return nil, err
		}
		chain = "π(" + chain + ")"
	}
	delta := db.reg.MassCache().Stats().Sub(before)
	colHits, colMisses := db.reg.ColCache().Counters()
	footer := fmt.Sprintf("parallelism: %d\nmass cache: %d hits, %d misses\ncol cache: %d hits, %d misses",
		exec.Resolve(db.par), delta.Hits, delta.Misses,
		colHits-colHitsBefore, colMisses-colMissesBefore)

	msg := fmt.Sprintf("plan: %s\n%s", chain, describePlan(pr))
	if s.Query.Agg != "" {
		label := s.Query.Agg + "(" + s.Query.AggCol + ")"
		if s.Query.Agg == "COUNT" && s.Query.AggCol == "" {
			label = "COUNT(*)"
		}
		msg += fmt.Sprintf("\naggregate: %s (not computed)", label)
	}
	msg += fmt.Sprintf("\nΔ = %v", shape.DepSets())
	if ph := shape.PhantomAttrs(); len(ph) > 0 {
		msg += fmt.Sprintf("\nphantom: %v", ph)
	}
	msg += fmt.Sprintf("\nrows: %d\n%s", acc.Len(), footer)
	return &Result{Message: msg, Planner: pr.counters}, nil
}

// execAggregate evaluates SUM/AVG/COUNT over the filtered table, returning
// the aggregate's distribution (§I: aggregates over uncertain data are
// themselves uncertain, approximated continuously when the exact support
// explodes).
func execAggregate(s SelectStmt, acc *core.Table) (*Result, error) {
	var d dist.Dist
	var err error
	label := s.Agg + "(" + s.AggCol + ")"
	switch s.Agg {
	case "SUM":
		d, err = acc.AggregateSum(s.AggCol, core.AggOptions{})
	case "AVG":
		d, err = acc.AggregateAvg(s.AggCol, core.AggOptions{})
	case "COUNT":
		d, err = acc.AggregateCount(core.AggOptions{})
		label = "COUNT(*)"
	default:
		err = fmt.Errorf("query: unsupported aggregate %q", s.Agg)
	}
	if err != nil {
		return nil, err
	}
	msg := fmt.Sprintf("%s = %v   (mean=%.6g, stddev=%.6g)", label, d, d.Mean(0), sqrt(d.Variance(0)))
	return &Result{Message: msg}, nil
}

func sqrt(v float64) float64 {
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// execOrderBy sorts the result by a certain column or by Pr(column) — the
// latter is the classic most-probable-tuples ranking. Both executors share
// orderComparator (stream.go), so a stable full sort here and the bounded
// top-k heap there produce the same ordering, tuple for tuple.
func execOrderBy(s SelectStmt, acc *core.Table) (*core.Table, error) {
	less, prep, err := orderComparator(acc, s)
	if err != nil {
		return nil, err
	}
	if prep != nil {
		// Precompute probabilities once; fail fast on bad tuples.
		for _, tup := range acc.Tuples() {
			if err := prep(tup); err != nil {
				return nil, err
			}
		}
	}
	return acc.Sorted(func(_ *core.Table, a, b *core.Tuple) bool {
		return less(a, b)
	}), nil
}

// fromClause resolves the FROM list into one (possibly crossed/joined)
// table. With multiple tables, every table's columns are exposed as
// "<alias-or-name>.<column>"; a single table keeps bare names. A certain
// equality predicate between two adjacent tables upgrades the cross product
// to a hash equi-join.
func (db *DB) fromClause(s SelectStmt) (*core.Table, error) {
	refs := s.From
	if len(refs) == 0 {
		return nil, fmt.Errorf("query: empty FROM")
	}
	if len(refs) == 1 {
		return db.resolveRef(refs[0], false)
	}
	acc, err := db.resolveRef(refs[0], true)
	if err != nil {
		return nil, err
	}
	for _, ref := range refs[1:] {
		next, err := db.resolveRef(ref, true)
		if err != nil {
			return nil, err
		}
		l, r, joined := equiJoinKeys(s, acc, next)
		if joined {
			if acc, err = acc.EquiJoin(next, l, r); err != nil {
				return nil, err
			}
		} else {
			if acc, err = acc.CrossProduct(next); err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// resolveRef looks up one FROM entry, applying the per-query parallelism
// view and (for multi-table FROM lists) the "<alias-or-name>." column
// prefix. The catalog table itself is never mutated under the read lock.
func (db *DB) resolveRef(ref TableRef, qualify bool) (*core.Table, error) {
	t, ok := db.tables[ref.Name]
	if !ok {
		return nil, fmt.Errorf("query: no table %q", ref.Name)
	}
	t = t.WithParallelism(db.par)
	if !qualify {
		return t, nil
	}
	prefix := ref.Name
	if ref.Alias != "" {
		prefix = ref.Alias
	}
	return t.Prefixed(prefix + ".")
}

// equiJoinKeys finds the first certain = certain WHERE condition with one
// side in acc and the other in next — the equi-join upgrade both executors
// apply. Only schemas are consulted, so the streaming builder can make the
// identical decision from an operator header.
func equiJoinKeys(s SelectStmt, acc, next *core.Table) (left, right string, ok bool) {
	for _, c := range s.Where {
		if c.Kind != CondCmp || c.Op.String() != "=" || !c.Left.IsCol || !c.Right.IsCol {
			continue
		}
		l, r := c.Left.Col, c.Right.Col
		if certainCol(acc, l) && certainCol(next, r) {
			return l, r, true
		}
		if certainCol(acc, r) && certainCol(next, l) {
			return r, l, true
		}
	}
	return "", "", false
}

func certainCol(t *core.Table, name string) bool {
	col, ok := t.Schema().Lookup(name)
	return ok && !col.Uncertain
}

func toCoreOperand(o Operand) core.Operand {
	if o.IsCol {
		return core.Col(o.Col)
	}
	return core.Lit(o.Lit)
}

func (db *DB) execDelete(s Delete) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("query: no table %q", s.Table)
	}
	// Validate: DELETE predicates may touch certain columns and probability
	// thresholds, but not floor pdfs (deletion is base-table maintenance,
	// not a PWS query).
	for _, c := range s.Where {
		if c.Kind != CondCmp {
			continue
		}
		for _, o := range []Operand{c.Left, c.Right} {
			if !o.IsCol {
				continue
			}
			col, found := t.Schema().Lookup(o.Col)
			if !found {
				return nil, fmt.Errorf("query: no column %q in %s", o.Col, s.Table)
			}
			if col.Uncertain {
				return nil, fmt.Errorf("query: DELETE cannot compare uncertain column %q; use PROB(...)", o.Col)
			}
		}
	}
	var evalErr error
	var removed []*core.Tuple
	n := t.Delete(func(tb *core.Table, tup *core.Tuple) bool {
		for _, c := range s.Where {
			ok, err := evalDeleteCond(tb, tup, c)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return false
			}
		}
		removed = append(removed, tup)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	if err := db.noteDeleted(s.Table, removed); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("deleted %d", n), Affected: n}, nil
}

func evalDeleteCond(t *core.Table, tup *core.Tuple, c Cond) (bool, error) {
	switch c.Kind {
	case CondCmp:
		lv, err := deleteOperandValue(t, tup, c.Left)
		if err != nil {
			return false, err
		}
		rv, err := deleteOperandValue(t, tup, c.Right)
		if err != nil {
			return false, err
		}
		if lv.IsNull() || rv.IsNull() {
			return false, nil
		}
		cmp, ok := lv.Compare(rv)
		if !ok {
			return lv.Equal(rv) == (c.Op.String() == "="), nil
		}
		return c.Op.Eval(float64(cmp), 0), nil
	case CondProb:
		p, err := t.Prob(tup, c.ProbCols...)
		if err != nil {
			return false, err
		}
		return c.Op.Eval(p, c.Threshold), nil
	case CondProbRange:
		p, err := t.ProbInRange(tup, c.ProbCols[0], c.Lo, c.Hi)
		if err != nil {
			return false, err
		}
		return c.Op.Eval(p, c.Threshold), nil
	}
	return false, fmt.Errorf("query: unsupported DELETE condition")
}

func deleteOperandValue(t *core.Table, tup *core.Tuple, o Operand) (core.Value, error) {
	if !o.IsCol {
		return o.Lit, nil
	}
	v, ok := t.Value(tup, o.Col)
	if !ok {
		return core.Null, fmt.Errorf("query: cannot read column %q", o.Col)
	}
	return v, nil
}
