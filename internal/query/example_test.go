package query_test

import (
	"fmt"

	"probdb/internal/query"
)

// Example runs the paper's running example end-to-end through SQL.
func Example() {
	db := query.Open()
	db.Exec("CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN)")
	db.Exec(`INSERT INTO readings (rid, value) VALUES
		(1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), (3, GAUSSIAN(13, 1))`)
	r, _ := db.Exec("SELECT rid, value FROM readings WHERE value < 25 AND PROB(value) > 0.4 ORDER BY PROB(value) DESC")
	for _, tup := range r.Table.Tuples() {
		rid, _ := r.Table.Value(tup, "rid")
		p, _ := r.Table.Prob(tup, "value")
		fmt.Printf("rid=%s Pr=%.4f\n", rid.Render(), p)
	}
	// Output:
	// rid=3 Pr=1.0000
	// rid=1 Pr=0.9873
	// rid=2 Pr=0.5000
}

// Example_aggregate shows a probabilistic SUM through SQL.
func Example_aggregate() {
	db := query.Open()
	db.Exec("CREATE TABLE t (x INT UNCERTAIN)")
	db.Exec("INSERT INTO t (x) VALUES (DISCRETE(1:0.5, 2:0.5)), (DISCRETE(10:1.0))")
	r, _ := db.Exec("SELECT SUM(x) FROM t")
	fmt.Println(r.Message)
	// Output:
	// SUM(x) = Discrete(11:0.5, 12:0.5)   (mean=11.5, stddev=0.5)
}
