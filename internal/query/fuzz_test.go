package query

import (
	"math/rand"
	"strings"
	"testing"
)

// TestFuzzParserNeverPanics feeds random token soup to the full
// parse-and-execute path: every input must produce a value or an error,
// never a panic. This is the SQL surface's crash-safety contract.
func TestFuzzParserNeverPanics(t *testing.T) {
	words := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "CREATE",
		"TABLE", "DELETE", "DROP", "AND", "PROB", "IN", "AS", "UNCERTAIN",
		"DEPENDENT", "GAUSSIAN", "DISCRETE", "HISTOGRAM", "SUM", "COUNT",
		"ANALYZE", "INDEX", "ON",
		"t", "x", "y", "readings", "value",
		"(", ")", ",", ";", ":", ".", "*", "<", "<=", ">", ">=", "=", "<>",
		"[", "]", "-", "0", "1", "0.5", "2.5e3", "'str'", "NULL",
	}
	r := rand.New(rand.NewSource(42))
	db := Open()
	if _, err := db.Exec("CREATE TABLE t (k INT, x FLOAT UNCERTAIN)"); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3000; trial++ {
		n := 1 + r.Intn(14)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[r.Intn(len(words))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on %q: %v", src, rec)
				}
			}()
			_, _ = db.Exec(src) //nolint:errcheck // errors are the expected outcome
		}()
	}
}

// TestFuzzValidStatementsExecute generates structurally valid statements
// and requires them to succeed — the complement of the soup test.
func TestFuzzValidStatementsExecute(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	db := Open()
	if _, err := db.Exec("CREATE TABLE s (k INT, x FLOAT UNCERTAIN, a INT UNCERTAIN)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ins := "INSERT INTO s (k, x, a) VALUES (" +
			itoa(r.Intn(100)) + ", GAUSSIAN(" + itoa(r.Intn(100)) + ", " + itoa(1+r.Intn(9)) + ")" +
			", DISCRETE(" + itoa(r.Intn(5)) + ":0.5, " + itoa(5+r.Intn(5)) + ":0.5))"
		if _, err := db.Exec(ins); err != nil {
			t.Fatalf("%q: %v", ins, err)
		}
	}
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	for trial := 0; trial < 200; trial++ {
		// Interleave planner DDL so SELECTs exercise both the naive and the
		// index-backed pipelines (and re-ANALYZE sees evolving stats).
		switch trial {
		case 20:
			if _, err := db.Exec("CREATE INDEX ON s (x)"); err != nil {
				t.Fatal(err)
			}
		case 40:
			if _, err := db.Exec("CREATE INDEX s_k ON s (k)"); err != nil {
				t.Fatal(err)
			}
		case 60, 120:
			if _, err := db.Exec("ANALYZE s"); err != nil {
				t.Fatal(err)
			}
		case 90:
			if _, err := db.Exec("ANALYZE"); err != nil {
				t.Fatal(err)
			}
		}
		var conds []string
		for i := 0; i <= r.Intn(2); i++ {
			switch r.Intn(5) {
			case 0:
				conds = append(conds, "x "+ops[r.Intn(len(ops))]+" "+itoa(r.Intn(100)))
			case 1:
				conds = append(conds, "a "+ops[r.Intn(len(ops))]+" "+itoa(r.Intn(10)))
			case 2:
				conds = append(conds, "PROB(x) > 0."+itoa(r.Intn(9)+1))
			case 3:
				conds = append(conds, "k "+ops[r.Intn(len(ops))]+" "+itoa(r.Intn(100)))
			default:
				conds = append(conds, "PROB(x IN ["+itoa(r.Intn(50))+", "+itoa(50+r.Intn(50))+"]) >= 0.1")
			}
		}
		sql := "SELECT k, x FROM s WHERE " + strings.Join(conds, " AND ")
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
