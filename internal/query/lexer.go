// Package query provides the SQL-ish surface over the probabilistic model:
// a lexer, a recursive-descent parser, a catalog, and an executor that
// translates statements into the operators of internal/core. It plays the
// role PostgreSQL's parser/executor played for the paper's Orion extension:
//
//	CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN);
//	INSERT INTO readings (rid, value) VALUES (1, GAUSSIAN(20, 5));
//	SELECT rid FROM readings WHERE value < 25 AND PROB(value) > 0.5;
//
// Distribution literals follow the paper's notation: GAUSSIAN(mean,
// variance), UNIFORM(lo, hi), EXPONENTIAL(rate), TRIANGULAR(lo, mode, hi),
// BERNOULLI(p), BINOMIAL(n, p), POISSON(lambda), GEOMETRIC(p),
// DISCRETE(v:p, ...) — with tuple values DISCRETE((4,5):0.9, ...) for joint
// sets — and HISTOGRAM((e0,e1,...):(m1,...)).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers upper-cased for keywords is NOT done here; raw text
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer splits a statement into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

var symbols = []string{
	"<=", ">=", "<>", "!=", "(", ")", ",", ";", ":", ".", "*", "<", ">", "=", "[", "]", "-", "+",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if !l.lexSymbol() {
				return nil, fmt.Errorf("query: unexpected character %q at %d", c, l.pos)
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// SQL line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsDigit(rune(c)):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("query: unterminated string at %d", start)
}

func (l *lexer) lexSymbol() bool {
	for _, s := range symbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.emit(token{kind: tokSymbol, text: s, pos: l.pos})
			l.pos += len(s)
			return true
		}
	}
	return false
}
