package query

import (
	"fmt"
	"strconv"
	"strings"

	"probdb/internal/core"
	"probdb/internal/dist"
	"probdb/internal/region"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("query: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for {
		for p.acceptSym(";") {
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptSym(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input, got %v", p.peek())
		}
	}
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// acceptKw consumes the next token if it is the given keyword
// (case-insensitive).
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, got %v", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, got %v", s, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %v", t)
	}
	p.pos++
	return t.text, nil
}

// number parses a possibly negated numeric literal.
func (p *parser) number() (float64, error) {
	neg := false
	if p.acceptSym("-") {
		neg = true
	} else if p.acceptSym("+") {
		neg = false
	}
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected number, got %v", t)
	}
	p.pos++
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errf("bad number %q: %v", t.text, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.acceptKw("CREATE"):
		if p.acceptKw("INDEX") {
			return p.createIndex()
		}
		return p.createTable()
	case p.acceptKw("ANALYZE"):
		st := Analyze{}
		if p.peek().kind == tokIdent {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Table = name
		}
		return st, nil
	case p.acceptKw("INSERT"):
		return p.insert()
	case p.acceptKw("SELECT"):
		return p.selectStmt()
	case p.acceptKw("EXPLAIN"):
		if err := p.expectKw("SELECT"); err != nil {
			return nil, err
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return Explain{Query: sel.(SelectStmt)}, nil
	case p.acceptKw("DELETE"):
		return p.deleteStmt()
	case p.acceptKw("DROP"):
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Drop{Name: name}, nil
	case p.acceptKw("SHOW"):
		if err := p.expectKw("TABLES"); err != nil {
			return nil, err
		}
		return ShowTables{}, nil
	case p.acceptKw("DESCRIBE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return Describe{Name: name}, nil
	case p.acceptKw("BEGIN"):
		p.acceptKw("TRANSACTION") // optional noise word
		return Begin{}, nil
	case p.acceptKw("START"):
		if err := p.expectKw("TRANSACTION"); err != nil {
			return nil, err
		}
		return Begin{}, nil
	case p.acceptKw("COMMIT"):
		return Commit{}, nil
	case p.acceptKw("ROLLBACK"):
		return Rollback{}, nil
	default:
		return nil, p.errf("expected a statement, got %v", p.peek())
	}
}

// createIndex parses CREATE INDEX [name] ON table (col). "INDEX" has been
// consumed.
func (p *parser) createIndex() (Stmt, error) {
	st := CreateIndex{}
	if !strings.EqualFold(p.peek().text, "ON") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Name = name
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	if st.Col, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if st.Name == "" {
		st.Name = table + "_" + st.Col + "_idx"
	}
	return st, nil
}

func (p *parser) createTable() (Stmt, error) {
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	st := CreateTable{Name: name}
	for {
		if p.acceptKw("DEPENDENT") {
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			var group []string
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				group = append(group, col)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			st.Deps = append(st.Deps, group)
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ty, err := p.columnType()
			if err != nil {
				return nil, err
			}
			c := core.Column{Name: col, Type: ty}
			if p.acceptKw("UNCERTAIN") {
				c.Uncertain = true
			}
			st.Cols = append(st.Cols, c)
		}
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) columnType() (core.AttrType, error) {
	t, err := p.ident()
	if err != nil {
		return 0, err
	}
	switch strings.ToUpper(t) {
	case "INT", "INTEGER", "BIGINT":
		return core.IntType, nil
	case "FLOAT", "REAL", "DOUBLE":
		return core.FloatType, nil
	case "TEXT", "VARCHAR", "STRING":
		return core.StringType, nil
	case "BOOL", "BOOLEAN":
		return core.BoolType, nil
	}
	return 0, p.errf("unknown type %q", t)
}

func (p *parser) insert() (Stmt, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := Insert{Table: name}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		if p.acceptSym("(") {
			var group []string
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				group = append(group, col)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			st.Targets = append(st.Targets, InsertTarget{Cols: group, Group: true})
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Targets = append(st.Targets, InsertTarget{Cols: []string{col}})
		}
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.valueExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		if len(row) != len(st.Targets) {
			return nil, p.errf("row has %d values, target list has %d", len(row), len(st.Targets))
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptSym(",") {
			break
		}
	}
	return st, nil
}

// valueExpr parses a literal or pdf constructor.
func (p *parser) valueExpr() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokString:
		p.pos++
		return LitExpr{V: core.Str(t.text)}, nil
	case t.kind == tokNumber || (t.kind == tokSymbol && (t.text == "-" || t.text == "+")):
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		if v == float64(int64(v)) && !strings.ContainsAny(t.text, ".eE") {
			return LitExpr{V: core.Int(int64(v))}, nil
		}
		return LitExpr{V: core.Float(v)}, nil
	case t.kind == tokIdent:
		switch strings.ToUpper(t.text) {
		case "NULL":
			p.pos++
			return LitExpr{V: core.Null}, nil
		case "TRUE":
			p.pos++
			return LitExpr{V: core.Bool(true)}, nil
		case "FALSE":
			p.pos++
			return LitExpr{V: core.Bool(false)}, nil
		default:
			d, err := p.pdfLiteral()
			if err != nil {
				return nil, err
			}
			return PDFExpr{D: d}, nil
		}
	}
	return nil, p.errf("expected a value, got %v", t)
}

// pdfLiteral parses NAME(args) distribution constructors.
func (p *parser) pdfLiteral() (dist.Dist, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	upper := strings.ToUpper(name)
	var d dist.Dist
	switch upper {
	case "GAUSSIAN", "GAUS", "NORMAL":
		args, err := p.numberArgs(2)
		if err != nil {
			return nil, err
		}
		// Paper notation: Gaus(mean, variance).
		if !(args[1] > 0) {
			return nil, p.errf("GAUSSIAN variance must be positive")
		}
		d = dist.NewGaussianVar(args[0], args[1])
	case "UNIFORM", "UNIF":
		args, err := p.numberArgs(2)
		if err != nil {
			return nil, err
		}
		d = safeDist(func() dist.Dist { return dist.NewUniform(args[0], args[1]) })
	case "EXPONENTIAL", "EXP":
		args, err := p.numberArgs(1)
		if err != nil {
			return nil, err
		}
		d = safeDist(func() dist.Dist { return dist.NewExponential(args[0]) })
	case "TRIANGULAR", "TRI":
		args, err := p.numberArgs(3)
		if err != nil {
			return nil, err
		}
		d = safeDist(func() dist.Dist { return dist.NewTriangular(args[0], args[1], args[2]) })
	case "BERNOULLI", "BERN":
		args, err := p.numberArgs(1)
		if err != nil {
			return nil, err
		}
		d = safeDist(func() dist.Dist { return dist.NewBernoulli(args[0]) })
	case "BINOMIAL", "BINOM":
		args, err := p.numberArgs(2)
		if err != nil {
			return nil, err
		}
		d = safeDist(func() dist.Dist { return dist.NewBinomial(int(args[0]), args[1]) })
	case "POISSON":
		args, err := p.numberArgs(1)
		if err != nil {
			return nil, err
		}
		d = safeDist(func() dist.Dist { return dist.NewPoisson(args[0]) })
	case "GEOMETRIC", "GEOM":
		args, err := p.numberArgs(1)
		if err != nil {
			return nil, err
		}
		d = safeDist(func() dist.Dist { return dist.NewGeometric(args[0]) })
	case "DISCRETE":
		return p.discreteLiteral()
	case "MVN", "MULTIGAUSSIAN":
		return p.mvnLiteral()
	case "HISTOGRAM", "HIST":
		return p.histogramLiteral()
	default:
		return nil, p.errf("unknown distribution %q", name)
	}
	if d == nil {
		return nil, p.errf("invalid parameters for %s", upper)
	}
	return d, nil
}

// safeDist converts constructor panics (invalid parameters) into nil.
func safeDist(f func() dist.Dist) (d dist.Dist) {
	defer func() { recover() }()
	return f()
}

// numberArgs parses exactly n comma-separated numbers and the closing paren.
func (p *parser) numberArgs(n int) ([]float64, error) {
	args := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			if err := p.expectSym(","); err != nil {
				return nil, err
			}
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, p.expectSym(")")
}

// discreteLiteral parses DISCRETE(v:p, ...) or DISCRETE((v1,v2):p, ...).
func (p *parser) discreteLiteral() (dist.Dist, error) {
	var pts []dist.Point
	dim := -1
	for {
		var xs []float64
		if p.acceptSym("(") {
			for {
				v, err := p.number()
				if err != nil {
					return nil, err
				}
				xs = append(xs, v)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
		} else {
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			xs = []float64{v}
		}
		if err := p.expectSym(":"); err != nil {
			return nil, err
		}
		prob, err := p.number()
		if err != nil {
			return nil, err
		}
		if dim == -1 {
			dim = len(xs)
		} else if dim != len(xs) {
			return nil, p.errf("DISCRETE points mix %d and %d dimensions", dim, len(xs))
		}
		pts = append(pts, dist.Point{X: xs, P: prob})
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	var d dist.Dist
	var buildErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				buildErr = fmt.Errorf("query: invalid DISCRETE literal: %v", r)
			}
		}()
		d = dist.NewDiscreteJoint(dim, pts)
	}()
	return d, buildErr
}

// mvnLiteral parses MVN((mu1, mu2, ...):((c11, c12, ...), (c21, ...), ...)):
// a joint Gaussian with mean vector and covariance matrix, the natural
// literal for correlated dependency sets.
func (p *parser) mvnLiteral() (dist.Dist, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var mean []float64
	for {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		mean = append(mean, v)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectSym(":"); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	cov := make([][]float64, 0, len(mean))
	for {
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		var row []float64
		for {
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		cov = append(cov, row)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	d, err := dist.NewMultiGaussian(mean, cov)
	if err != nil {
		return nil, fmt.Errorf("query: invalid MVN literal: %v", err)
	}
	return d, nil
}

// histogramLiteral parses HISTOGRAM((e0, e1, ...):(m1, ...)).
func (p *parser) histogramLiteral() (dist.Dist, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var edges []float64
	for {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		edges = append(edges, v)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectSym(":"); err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var masses []float64
	for {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		masses = append(masses, v)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	var d dist.Dist
	var buildErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				buildErr = fmt.Errorf("query: invalid HISTOGRAM literal: %v", r)
			}
		}()
		d = dist.NewHistogram(edges, masses)
	}()
	return d, buildErr
}

func (p *parser) selectStmt() (Stmt, error) {
	st := SelectStmt{}
	if p.acceptSym("*") {
		st.Star = true
	} else if agg := p.peekAggregate(); agg != "" {
		p.pos += 2 // aggregate name and '('
		st.Agg = agg
		if agg == "COUNT" && p.acceptSym("*") {
			// COUNT(*)
		} else {
			col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			st.AggCol = col
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
	} else {
		for {
			col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name}
		if p.acceptKw("AS") {
			if ref.Alias, err = p.ident(); err != nil {
				return nil, err
			}
		} else if p.peek().kind == tokIdent && !isKeyword(p.peek().text) {
			ref.Alias, _ = p.ident()
		}
		st.From = append(st.From, ref)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		conds, err := p.whereClause()
		if err != nil {
			return nil, err
		}
		st.Where = conds
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if p.acceptKw("PROB") {
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			st.OrderProb = true
			st.OrderCol = col
		} else {
			col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			st.OrderCol = col
		}
		if p.acceptKw("DESC") {
			st.OrderDesc = true
		} else {
			p.acceptKw("ASC")
		}
	}
	if p.acceptKw("LIMIT") {
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		if v < 0 || v != float64(int(v)) {
			return nil, p.errf("LIMIT must be a non-negative integer")
		}
		n := int(v)
		st.Limit = &n
	}
	return st, nil
}

// peekAggregate reports whether the next tokens open an aggregate call.
func (p *parser) peekAggregate() string {
	t := p.peek()
	if t.kind != tokIdent || p.toks[p.pos+1].kind != tokSymbol || p.toks[p.pos+1].text != "(" {
		return ""
	}
	switch strings.ToUpper(t.text) {
	case "SUM", "AVG", "COUNT":
		return strings.ToUpper(t.text)
	}
	return ""
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "FROM", "AND", "VALUES", "AS", "SELECT", "JOIN", "ON",
		"ORDER", "BY", "LIMIT", "DESC", "ASC":
		return true
	}
	return false
}

func (p *parser) deleteStmt() (Stmt, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := Delete{Table: name}
	if p.acceptKw("WHERE") {
		conds, err := p.whereClause()
		if err != nil {
			return nil, err
		}
		st.Where = conds
	}
	return st, nil
}

// whereClause parses cond (AND cond)*.
func (p *parser) whereClause() ([]Cond, error) {
	var conds []Cond
	for {
		c, err := p.condition()
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		if !p.acceptKw("AND") {
			break
		}
	}
	return conds, nil
}

func (p *parser) condition() (Cond, error) {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, "PROB") {
		return p.probCondition()
	}
	left, err := p.operand()
	if err != nil {
		return Cond{}, err
	}
	op, err := p.compareOp()
	if err != nil {
		return Cond{}, err
	}
	right, err := p.operand()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Kind: CondCmp, Left: left, Op: op, Right: right}, nil
}

// probCondition parses PROB(col [, col...]) op num and
// PROB(col IN [lo, hi]) op num.
func (p *parser) probCondition() (Cond, error) {
	p.pos++ // PROB
	if err := p.expectSym("("); err != nil {
		return Cond{}, err
	}
	col, err := p.qualifiedName()
	if err != nil {
		return Cond{}, err
	}
	c := Cond{ProbCols: []string{col}}
	if p.acceptKw("IN") {
		c.Kind = CondProbRange
		if err := p.expectSym("["); err != nil {
			return Cond{}, err
		}
		if c.Lo, err = p.number(); err != nil {
			return Cond{}, err
		}
		if err := p.expectSym(","); err != nil {
			return Cond{}, err
		}
		if c.Hi, err = p.number(); err != nil {
			return Cond{}, err
		}
		if err := p.expectSym("]"); err != nil {
			return Cond{}, err
		}
	} else {
		c.Kind = CondProb
		for p.acceptSym(",") {
			more, err := p.qualifiedName()
			if err != nil {
				return Cond{}, err
			}
			c.ProbCols = append(c.ProbCols, more)
		}
	}
	if err := p.expectSym(")"); err != nil {
		return Cond{}, err
	}
	op, err := p.compareOp()
	if err != nil {
		return Cond{}, err
	}
	c.Op = op
	if c.Threshold, err = p.number(); err != nil {
		return Cond{}, err
	}
	return c, nil
}

func (p *parser) compareOp() (region.Op, error) {
	t := p.peek()
	if t.kind != tokSymbol {
		return 0, p.errf("expected comparison operator, got %v", t)
	}
	var op region.Op
	switch t.text {
	case "<":
		op = region.LT
	case "<=":
		op = region.LE
	case ">":
		op = region.GT
	case ">=":
		op = region.GE
	case "=":
		op = region.EQ
	case "<>", "!=":
		op = region.NE
	default:
		return 0, p.errf("expected comparison operator, got %v", t)
	}
	p.pos++
	return op, nil
}

// operand parses a column reference or literal.
func (p *parser) operand() (Operand, error) {
	t := p.peek()
	switch {
	case t.kind == tokIdent:
		if strings.EqualFold(t.text, "NULL") {
			p.pos++
			return Operand{Lit: core.Null}, nil
		}
		if strings.EqualFold(t.text, "TRUE") || strings.EqualFold(t.text, "FALSE") {
			p.pos++
			return Operand{Lit: core.Bool(strings.EqualFold(t.text, "TRUE"))}, nil
		}
		name, err := p.qualifiedName()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Col: name, IsCol: true}, nil
	case t.kind == tokString:
		p.pos++
		return Operand{Lit: core.Str(t.text)}, nil
	case t.kind == tokNumber || (t.kind == tokSymbol && (t.text == "-" || t.text == "+")):
		raw := t.text
		v, err := p.number()
		if err != nil {
			return Operand{}, err
		}
		if v == float64(int64(v)) && !strings.ContainsAny(raw, ".eE") {
			return Operand{Lit: core.Int(int64(v))}, nil
		}
		return Operand{Lit: core.Float(v)}, nil
	}
	return Operand{}, p.errf("expected column or literal, got %v", t)
}

// qualifiedName parses IDENT or IDENT.IDENT into a single dotted name.
func (p *parser) qualifiedName() (string, error) {
	a, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.acceptSym(".") {
		b, err := p.ident()
		if err != nil {
			return "", err
		}
		return a + "." + b, nil
	}
	return a, nil
}
