package query

import (
	"fmt"
	"sort"
	"strings"

	"probdb/internal/core"
	"probdb/internal/plan"
)

// This file routes SELECT/EXPLAIN through the cost-based planner of
// internal/plan and owns the planner's catalog state: per-table statistics
// (ANALYZE) and per-table index sets (CREATE INDEX), maintained under the
// same write lock as the DML that invalidates them.
//
// Correctness discipline — the planner must be invisible in the results:
//   - Comparison conjuncts always execute in written order within one
//     Select call; their pdf floors are order-sensitive at the bit level.
//   - Probability-threshold conjuncts are pure filters (no pdf mutation),
//     so reordering them is byte-exact.
//   - An index probe only ever narrows the scan to a candidate superset of
//     the tuples the probed conjunct keeps; unless the probe answers the
//     conjunct exactly (PTI with >=), the conjunct stays in the residual
//     and re-verifies every candidate.
//   - The PTI holds pristine base pdfs, so PTI probes are disabled whenever
//     a comparison conjunct would floor an uncertain column first.

// SetForceScan disables index access paths (the planner still orders
// residual conjuncts). The differential suite uses it to compare planner
// results against forced full scans.
func (db *DB) SetForceScan(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.forceScan = on
}

// TableStats returns the ANALYZE statistics for a table, or nil.
func (db *DB) TableStats(name string) *plan.TableStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stats[name]
}

// InstallStats installs externally restored statistics (manifest recovery).
func (db *DB) InstallStats(name string, ts *plan.TableStats) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stats[name] = ts
}

// IndexedCols reports the indexed columns of a table and their access-path
// kind ("pti" or "btree"), for DESCRIBE and manifest persistence.
func (db *DB) IndexedCols(name string) map[string]string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.indexes[name].Cols()
}

// execAnalyze collects statistics for one table, or all tables when the
// statement names none. Runs under the catalog write lock.
func (db *DB) execAnalyze(s Analyze) (*Result, error) {
	names := []string{s.Table}
	if s.Table == "" {
		names = names[:0]
		for n := range db.tables {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	rows := 0
	for _, n := range names {
		t, ok := db.tables[n]
		if !ok {
			return nil, fmt.Errorf("query: no table %q", n)
		}
		ts, err := plan.Analyze(t)
		if err != nil {
			return nil, err
		}
		db.stats[n] = ts
		rows += t.Len()
	}
	return &Result{
		Message:  fmt.Sprintf("analyzed %d table(s), %d rows", len(names), rows),
		Affected: rows,
	}, nil
}

// execCreateIndex builds an index over one column: a PTI when the column is
// uncertain, a btree otherwise. Runs under the catalog write lock.
func (db *DB) execCreateIndex(s CreateIndex) (*Result, error) {
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("query: no table %q", s.Table)
	}
	ix := db.indexes[s.Table]
	if ix == nil {
		ix = plan.NewTableIndexes()
		db.indexes[s.Table] = ix
	}
	if err := ix.Create(t, s.Col); err != nil {
		return nil, err
	}
	kind := ix.Cols()[s.Col]
	return &Result{Message: fmt.Sprintf("created %s index %s on %s(%s)", kind, s.Name, s.Table, s.Col)}, nil
}

// noteInserted maintains indexes and invalidates stats after an INSERT
// appended the tuples t.Tuples()[from:].
func (db *DB) noteInserted(name string, t *core.Table, from int) error {
	if ix := db.indexes[name]; ix != nil {
		for _, tup := range t.Tuples()[from:] {
			if err := ix.NoteInsert(t, tup); err != nil {
				return err
			}
		}
	}
	return nil
}

// noteDeleted maintains indexes after a DELETE removed the given tuples.
func (db *DB) noteDeleted(name string, removed []*core.Tuple) error {
	ix := db.indexes[name]
	if ix == nil {
		return nil
	}
	for _, tup := range removed {
		if err := ix.NoteDelete(tup); err != nil {
			return err
		}
	}
	return nil
}

// dropPlannerState discards stats and indexes when a table is dropped.
func (db *DB) dropPlannerState(name string) {
	delete(db.stats, name)
	delete(db.indexes, name)
}

// pipelineResult is the outcome of the filtering stages of a SELECT: the
// filtered table before aggregation/ordering/projection, plus everything
// EXPLAIN needs to describe what happened.
type pipelineResult struct {
	acc      *core.Table
	plan     *plan.Plan      // nil when the naive multi-table path ran
	conj     []plan.Conjunct // planner's view of the WHERE clause
	hasStats bool
	counters plan.Counters

	// kernels are the filter kernels this query planned, in stage order.
	// harvestKernels snapshots their reports after execution — kernels count
	// on worker goroutines while batches stream, so reports are meaningful
	// only once the tree has drained.
	kernels []kernelReporter
	reports []core.KernelReport
}

// kernelReporter is the facet of Selection/ProbSelection the query layer
// keeps: a post-execution evaluation summary.
type kernelReporter interface {
	Report() core.KernelReport
}

// harvestKernels folds every kernel's report into the planner counters and
// keeps the per-stage reports for EXPLAIN. Call exactly once, after the
// query's filter stages have run.
func (pr *pipelineResult) harvestKernels() {
	for _, k := range pr.kernels {
		rep := k.Report()
		pr.counters.VecTuples += rep.Vec
		pr.counters.ScalarTuples += rep.Scalar
		pr.reports = append(pr.reports, rep)
	}
}

// selectPipeline resolves FROM and applies the WHERE clause, routing
// single-table queries through the planner. Callers hold (at least) the
// read lock.
func (db *DB) selectPipeline(s SelectStmt) (*pipelineResult, error) {
	if len(s.From) == 1 {
		if t, ok := db.tables[s.From[0].Name]; ok {
			return db.plannedPipeline(s, t)
		}
	}
	return db.naivePipeline(s)
}

// naivePipeline is the original execution strategy: full scans, conjuncts
// in written order. Multi-table queries (joins, cross products) always take
// it; the fallback counter records when that bypassed an existing index.
func (db *DB) naivePipeline(s SelectStmt) (*pipelineResult, error) {
	pr := &pipelineResult{}
	for _, ref := range s.From {
		if db.indexes[ref.Name] != nil {
			pr.counters.PlannerFallbacks++
			break
		}
	}
	acc, err := db.fromClause(s)
	if err != nil {
		return nil, err
	}
	var atoms []core.Atom
	var probConds []Cond
	for _, c := range s.Where {
		switch c.Kind {
		case CondCmp:
			atoms = append(atoms, core.Cmp(toCoreOperand(c.Left), c.Op, toCoreOperand(c.Right)))
		default:
			probConds = append(probConds, c)
		}
	}
	if len(atoms) > 0 {
		sel, serr := acc.PlanSelect(atoms...)
		if serr != nil {
			return nil, serr
		}
		pr.kernels = append(pr.kernels, sel)
		if acc, err = acc.RunSelection(sel); err != nil {
			return nil, err
		}
	}
	for _, c := range probConds {
		if acc, err = applyProbCond(pr, acc, c); err != nil {
			return nil, err
		}
	}
	pr.acc = acc
	pr.harvestKernels() // materializing path: stages have already run
	return pr, nil
}

// plannedPipeline executes a single-table WHERE clause through the planner:
// index probe (when safe), comparison conjuncts in written order, residual
// probability conjuncts in the planner's order.
func (db *DB) plannedPipeline(s SelectStmt, base *core.Table) (*pipelineResult, error) {
	acc, pr := db.planAccess(s, base)
	// Comparison conjuncts: written order, one Select call — exactly the
	// naive path, just over fewer tuples.
	var atoms []core.Atom
	for _, c := range s.Where {
		if c.Kind == CondCmp {
			atoms = append(atoms, core.Cmp(toCoreOperand(c.Left), c.Op, toCoreOperand(c.Right)))
		}
	}
	var err error
	if len(atoms) > 0 {
		sel, serr := acc.PlanSelect(atoms...)
		if serr != nil {
			return nil, serr
		}
		pr.kernels = append(pr.kernels, sel)
		if acc, err = acc.RunSelection(sel); err != nil {
			return nil, err
		}
	}
	for _, orig := range pr.plan.ResidualProb {
		if acc, err = applyProbCond(pr, acc, s.Where[orig]); err != nil {
			return nil, err
		}
	}
	pr.acc = acc
	pr.harvestKernels() // materializing path: stages have already run
	return pr, nil
}

// planAccess runs the access-path half of the planned pipeline: choose a
// plan, probe the index, and narrow the scan to the candidate set. It
// returns the source table the filter stages run over — the base table for
// a scan plan, or a Restrict of the index candidates — and the plan record
// with the probe counters filled in. Both the materializing and the
// pipelined executor start from here, which is what keeps their access
// decisions (and therefore their results) identical.
func (db *DB) planAccess(s SelectStmt, base *core.Table) (*core.Table, *pipelineResult) {
	name := s.From[0].Name
	t := base.WithParallelism(db.par)
	conj := db.planConjuncts(t, s.Where)
	stats := db.stats[name]
	ix := db.indexes[name]
	pl := plan.Choose(stats, ix, conj, db.forceScan)
	pr := &pipelineResult{plan: pl, conj: conj, hasStats: stats != nil}

	acc := t
	if pl.Access != plan.AccessScan {
		probed := s.Where[pl.Probe]
		var cand map[int64]bool
		ok := false
		switch pl.Access {
		case plan.AccessPTI:
			if set, st, got := ix.ProbePTI(pl.Col, probed.Lo, probed.Hi, probed.Threshold); got {
				cand, ok = set, true
				pr.counters.IndexProbes++
				// Every live pdf the probe did not integrate is work the
				// naive scan would have done.
				if skipped := t.Len() - st.Verified; skipped > 0 {
					pr.counters.IndexPruned += uint64(skipped)
				}
			}
		case plan.AccessBTree:
			lit := probed.Right.Lit
			op := probed.Op
			if !probed.Left.IsCol {
				lit, op = probed.Left.Lit, probed.Op.Flip()
			}
			if set, got := ix.ProbeBTree(pl.Col, op, lit); got {
				cand, ok = set, true
				pr.counters.IndexProbes++
			}
		}
		if !ok {
			// Probe unusable at runtime (e.g. unindexable literal): degrade
			// to the scan plan — never to a wrong answer.
			pl.Access = plan.AccessScan
			pl.Consumed = false
			pl.Reason = "probe degraded to scan"
			pl.ResidualProb = residualAll(conj)
			pr.counters.PlannerFallbacks++
		} else {
			tups := ix.Restrict(t, cand)
			if pl.Access == plan.AccessBTree {
				if skipped := t.Len() - len(tups); skipped > 0 {
					pr.counters.IndexPruned += uint64(skipped)
				}
			}
			acc = t.Restrict(fmt.Sprintf("%s[%s:%s]", t.Name, pl.Access, pl.Col), tups)
		}
	} else if ix != nil && len(s.Where) > 0 {
		pr.counters.PlannerFallbacks++
	}
	return acc, pr
}

// residualAll returns every probability conjunct's position in written
// order, for plans degraded after Choose.
func residualAll(conj []plan.Conjunct) []int {
	var out []int
	for _, c := range conj {
		if c.Kind != plan.ConjCmp {
			out = append(out, c.Orig)
		}
	}
	return out
}

func applyProbCond(pr *pipelineResult, acc *core.Table, c Cond) (*core.Table, error) {
	var sel *core.ProbSelection
	switch c.Kind {
	case CondProb:
		sel = acc.PlanProbSelect(c.ProbCols, c.Op, c.Threshold)
	case CondProbRange:
		sel = acc.PlanRangeThreshold(c.ProbCols[0], c.Lo, c.Hi, c.Op, c.Threshold)
	default:
		return nil, fmt.Errorf("query: unsupported condition kind %d", c.Kind)
	}
	pr.kernels = append(pr.kernels, sel)
	return acc.RunProbSelection(sel)
}

// planConjuncts translates the WHERE clause into the planner's view,
// resolving column certainty against the table's schema.
func (db *DB) planConjuncts(t *core.Table, where []Cond) []plan.Conjunct {
	out := make([]plan.Conjunct, 0, len(where))
	uncertain := func(name string) (bool, bool) {
		col, ok := t.Schema().Lookup(name)
		return col.Uncertain, ok
	}
	for i, c := range where {
		pc := plan.Conjunct{Orig: i, Op: c.Op}
		switch c.Kind {
		case CondCmp:
			pc.Kind = plan.ConjCmp
			switch {
			case c.Left.IsCol && !c.Right.IsCol:
				pc.Col, pc.Val = c.Left.Col, c.Right.Lit
			case c.Right.IsCol && !c.Left.IsCol:
				pc.Col, pc.Val, pc.Op = c.Right.Col, c.Left.Lit, c.Op.Flip()
			}
			for _, o := range []Operand{c.Left, c.Right} {
				if !o.IsCol {
					continue
				}
				if unc, ok := uncertain(o.Col); ok && unc {
					pc.ColUncertain = true
				}
			}
			if pc.Col != "" {
				if _, ok := uncertain(pc.Col); !ok {
					pc.Col = "" // unknown column: let Select report it
				}
			}
		case CondProb:
			pc.Kind = plan.ConjProb
			pc.ProbCols = c.ProbCols
			pc.Threshold = c.Threshold
		case CondProbRange:
			pc.Kind = plan.ConjProbRange
			pc.ProbCols = c.ProbCols
			pc.Lo, pc.Hi, pc.Threshold = c.Lo, c.Hi, c.Threshold
		}
		out = append(out, pc)
	}
	return out
}

// describePlan renders the physical plan for EXPLAIN.
func describePlan(pr *pipelineResult) string {
	var b strings.Builder
	if pr.plan == nil {
		b.WriteString("access: scan (multi-table: planner handles single-table queries)")
	} else {
		b.WriteString(pr.plan.Describe(pr.conj))
		if pr.hasStats {
			fmt.Fprintf(&b, "\nest rows: %.1f (candidates: %.1f)", pr.plan.EstRows, pr.plan.EstCand)
		} else {
			b.WriteString("\nest rows: n/a (run ANALYZE)")
		}
	}
	c := pr.counters
	fmt.Fprintf(&b, "\nindex: %d probes, %d pruned, %d fallbacks",
		c.IndexProbes, c.IndexPruned, c.PlannerFallbacks)
	for _, rep := range pr.reports {
		b.WriteString("\n" + describeKernel(rep))
	}
	return b.String()
}

// describeKernel renders one filter kernel's strategy line for EXPLAIN:
// which evaluation path its tuples took, over which distribution families
// and how many columnar runs.
func describeKernel(rep core.KernelReport) string {
	if rep.Vec == 0 && rep.Scalar > 0 {
		return fmt.Sprintf("kernel %s: scalar fallback (%d tuples)", rep.Name, rep.Scalar)
	}
	fams := "none"
	if len(rep.Families) > 0 {
		fams = strings.Join(rep.Families, ",")
	}
	s := fmt.Sprintf("kernel %s: vectorized(%s×%d runs, %d tuples)", rep.Name, fams, rep.Runs, rep.Vec)
	if rep.Scalar > 0 {
		s += fmt.Sprintf(" + scalar fallback (%d tuples)", rep.Scalar)
	}
	return s
}
