package query

import (
	"fmt"
	"strings"
	"testing"
)

// plannerFixture loads a table with a spread of pdf kinds, certain values,
// NULLs and a string column, so index paths must cope with every value
// class.
func plannerFixture(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE sensors (sid INT, site TEXT, temp FLOAT UNCERTAIN, hum FLOAT UNCERTAIN)`)
	for i := 0; i < 120; i++ {
		temp := fmt.Sprintf("GAUSSIAN(%d, 4)", 10+i%40)
		if i%7 == 0 {
			temp = fmt.Sprintf("UNIFORM(%d, %d)", i%30, i%30+5)
		}
		hum := fmt.Sprintf("UNIFORM(%d, %d)", 40+i%20, 50+i%20)
		site := fmt.Sprintf("'s%d'", i%5)
		sid := fmt.Sprintf("%d", i)
		if i%11 == 0 {
			sid = "NULL"
		}
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO sensors (sid, site, temp, hum) VALUES (%s, %s, %s, %s)`,
			sid, site, temp, hum))
	}
}

// renderRows strips the header (the derived table name differs between
// access paths by design) and returns the rendered tuple lines — the bytes
// the differential suite compares.
func renderRows(r *Result) string {
	if r.Table == nil {
		return r.Message
	}
	s := r.Table.Render()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// differentialQueries is the battery every planner change must keep
// byte-identical to the forced-scan path.
var differentialQueries = []string{
	`SELECT * FROM sensors`,
	`SELECT sid, temp FROM sensors WHERE PROB(temp IN [20, 30]) >= 0.5`,
	`SELECT sid FROM sensors WHERE PROB(temp IN [20, 30]) > 0.5`,
	`SELECT sid FROM sensors WHERE PROB(temp IN [20, 30]) < 0.5`,
	`SELECT sid FROM sensors WHERE PROB(temp IN [0, 100]) >= 0.99`,
	`SELECT sid FROM sensors WHERE sid < 40 AND PROB(temp IN [20, 30]) >= 0.6`,
	`SELECT sid FROM sensors WHERE sid >= 100`,
	`SELECT sid FROM sensors WHERE sid = 55`,
	`SELECT sid FROM sensors WHERE sid <= 10 AND site = 's0'`,
	`SELECT sid FROM sensors WHERE site = 's3' AND PROB(hum IN [45, 55]) >= 0.3`,
	`SELECT sid FROM sensors WHERE PROB(temp IN [15, 25]) >= 0.4 AND PROB(hum IN [40, 60]) >= 0.5`,
	`SELECT sid FROM sensors WHERE temp < 25 AND PROB(temp) > 0.5`,
	`SELECT sid FROM sensors WHERE temp < 25 AND PROB(temp IN [10, 20]) >= 0.2`,
	`SELECT sid FROM sensors WHERE sid > 20 AND sid < 80 AND PROB(hum) >= 0.9`,
	`SELECT SUM(temp) FROM sensors WHERE PROB(temp IN [20, 28]) >= 0.5`,
	`SELECT COUNT(*) FROM sensors WHERE sid < 60`,
	`SELECT sid FROM sensors WHERE PROB(temp IN [20, 30]) >= 0.5 ORDER BY sid DESC LIMIT 7`,
	`SELECT sid FROM sensors WHERE sid <> 4 AND PROB(temp IN [12, 22]) >= 0.5`,
	`SELECT sid FROM sensors WHERE sid = 3.5`,
	`SELECT sid FROM sensors WHERE sid >= 59.5 AND sid <= 60.5`,
}

// TestPlannerDifferential asserts that planner-chosen plans (stats +
// indexes on) return byte-identical rows to the forced-full-scan path, at
// both sequential and parallel execution.
func TestPlannerDifferential(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			db := Open()
			db.SetParallelism(par)
			plannerFixture(t, db)
			mustExec(t, db, `ANALYZE sensors`)
			mustExec(t, db, `CREATE INDEX ON sensors (temp)`)
			mustExec(t, db, `CREATE INDEX ON sensors (hum)`)
			mustExec(t, db, `CREATE INDEX ON sensors (sid)`)

			probesTotal := uint64(0)
			for _, q := range differentialQueries {
				db.SetForceScan(true)
				want := renderRows(mustExec(t, db, q))
				db.SetForceScan(false)
				got := mustExec(t, db, q)
				if renderRows(got) != want {
					t.Errorf("%s:\nplanner: %s\nscan:    %s", q, renderRows(got), want)
				}
				probesTotal += got.Planner.IndexProbes
			}
			if probesTotal == 0 {
				t.Error("no query used an index probe")
			}
		})
	}
}

// TestPlannerDifferentialUnderDML re-checks a probe query against the scan
// path across interleaved inserts and deletes, exercising incremental index
// maintenance end to end.
func TestPlannerDifferentialUnderDML(t *testing.T) {
	db := Open()
	db.SetParallelism(1)
	plannerFixture(t, db)
	mustExec(t, db, `CREATE INDEX ON sensors (temp)`)
	mustExec(t, db, `CREATE INDEX ON sensors (sid)`)
	check := func() {
		t.Helper()
		for _, q := range []string{
			`SELECT sid FROM sensors WHERE PROB(temp IN [18, 26]) >= 0.5`,
			`SELECT sid FROM sensors WHERE sid < 30`,
		} {
			db.SetForceScan(true)
			want := renderRows(mustExec(t, db, q))
			db.SetForceScan(false)
			if got := renderRows(mustExec(t, db, q)); got != want {
				t.Fatalf("%s diverged after DML:\nplanner: %s\nscan:    %s", q, got, want)
			}
		}
	}
	check()
	for round := 0; round < 5; round++ {
		mustExec(t, db, fmt.Sprintf(`DELETE FROM sensors WHERE sid >= %d AND sid < %d`, round*10, round*10+5))
		for i := 0; i < 8; i++ {
			mustExec(t, db, fmt.Sprintf(
				`INSERT INTO sensors (sid, site, temp, hum) VALUES (%d, 's9', GAUSSIAN(%d, 2), UNIFORM(40, 50))`,
				1000+round*10+i, 15+i))
		}
		check()
	}
}

func TestAnalyzeAndCreateIndexStatements(t *testing.T) {
	db := Open()
	plannerFixture(t, db)
	r := mustExec(t, db, `ANALYZE`)
	if !strings.Contains(r.Message, "analyzed 1 table(s)") {
		t.Errorf("ANALYZE message = %q", r.Message)
	}
	if db.TableStats("sensors") == nil {
		t.Fatal("no stats after ANALYZE")
	}
	if _, err := db.Exec(`ANALYZE nope`); err == nil {
		t.Error("ANALYZE of a missing table succeeded")
	}
	r = mustExec(t, db, `CREATE INDEX temp_idx ON sensors (temp)`)
	if !strings.Contains(r.Message, "pti") {
		t.Errorf("uncertain index message = %q", r.Message)
	}
	r = mustExec(t, db, `CREATE INDEX ON sensors (sid)`)
	if !strings.Contains(r.Message, "btree") || !strings.Contains(r.Message, "sensors_sid_idx") {
		t.Errorf("certain index message = %q", r.Message)
	}
	if _, err := db.Exec(`CREATE INDEX ON sensors (temp)`); err == nil {
		t.Error("duplicate index succeeded")
	}
	if _, err := db.Exec(`CREATE INDEX ON nope (x)`); err == nil {
		t.Error("index on missing table succeeded")
	}
	desc := mustExec(t, db, `DESCRIBE sensors`).Message
	if !strings.Contains(desc, "indexes: sid(btree), temp(pti)") {
		t.Errorf("DESCRIBE lacks indexes: %q", desc)
	}
	if !strings.Contains(desc, "stats: analyzed at 120 rows") {
		t.Errorf("DESCRIBE lacks stats: %q", desc)
	}
	// DROP discards planner state; recreating the table starts clean.
	mustExec(t, db, `DROP TABLE sensors`)
	if db.TableStats("sensors") != nil {
		t.Error("stats survived DROP")
	}
	if len(db.IndexedCols("sensors")) != 0 {
		t.Error("indexes survived DROP")
	}
}

func TestExplainUsesIndexWithoutMaterializing(t *testing.T) {
	db := Open()
	plannerFixture(t, db)
	mustExec(t, db, `ANALYZE sensors`)
	mustExec(t, db, `CREATE INDEX ON sensors (temp)`)

	r := mustExec(t, db, `EXPLAIN SELECT sid FROM sensors WHERE PROB(temp IN [20, 30]) >= 0.6`)
	msg := r.Message
	for _, want := range []string{"access: pti(temp)", "[consumed]", "est rows:", "rows: ", "index: 1 probes"} {
		if !strings.Contains(msg, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, msg)
		}
	}
	if r.Planner.IndexPruned == 0 {
		t.Error("EXPLAIN reported no pruned pdfs despite the PTI")
	}
	// The actual cardinality must match the executed query.
	got := mustExec(t, db, `SELECT sid FROM sensors WHERE PROB(temp IN [20, 30]) >= 0.6`)
	if !strings.Contains(msg, fmt.Sprintf("rows: %d\n", got.Affected)) {
		t.Errorf("EXPLAIN cardinality diverges from execution (%d):\n%s", got.Affected, msg)
	}

	// A GT threshold keeps the conjunct for re-verification.
	msg = mustExec(t, db, `EXPLAIN SELECT sid FROM sensors WHERE PROB(temp IN [20, 30]) > 0.6`).Message
	if !strings.Contains(msg, "[re-verified]") {
		t.Errorf("GT probe not re-verified:\n%s", msg)
	}
	// An unindexable query reports the scan fallback.
	msg = mustExec(t, db, `EXPLAIN SELECT sid FROM sensors WHERE PROB(temp IN [20, 30]) < 0.6`).Message
	if !strings.Contains(msg, "access: scan") {
		t.Errorf("LT threshold should scan:\n%s", msg)
	}
	// A comparison flooring the probed column disables the PTI.
	msg = mustExec(t, db, `EXPLAIN SELECT sid FROM sensors WHERE temp < 25 AND PROB(temp IN [20, 30]) >= 0.6`).Message
	if !strings.Contains(msg, "access: scan (uncertain column floored by comparison)") {
		t.Errorf("floored query should scan:\n%s", msg)
	}
}

func TestPlannerCountersOnResult(t *testing.T) {
	db := Open()
	plannerFixture(t, db)
	mustExec(t, db, `CREATE INDEX ON sensors (temp)`)
	r := mustExec(t, db, `SELECT sid FROM sensors WHERE PROB(temp IN [20, 24]) >= 0.7`)
	if r.Planner.IndexProbes != 1 || r.Planner.IndexPruned == 0 {
		t.Errorf("counters = %+v", r.Planner)
	}
	// Join queries fall back to the naive path and say so.
	mustExec(t, db, `CREATE TABLE sites (site TEXT, zone INT)`)
	mustExec(t, db, `INSERT INTO sites (site, zone) VALUES ('s0', 1), ('s1', 2)`)
	r = mustExec(t, db, `SELECT sensors.sid FROM sensors, sites WHERE sensors.site = sites.site`)
	if r.Planner.PlannerFallbacks == 0 {
		t.Error("multi-table query over an indexed table did not count a fallback")
	}
}

func TestParseAnalyzeCreateIndex(t *testing.T) {
	if s, err := Parse(`ANALYZE`); err != nil || s.(Analyze).Table != "" {
		t.Errorf("ANALYZE parse = %v, %v", s, err)
	}
	if s, err := Parse(`analyze readings;`); err != nil || s.(Analyze).Table != "readings" {
		t.Errorf("analyze readings parse = %v, %v", s, err)
	}
	s, err := Parse(`CREATE INDEX foo ON readings (value)`)
	if err != nil {
		t.Fatal(err)
	}
	ci := s.(CreateIndex)
	if ci.Name != "foo" || ci.Table != "readings" || ci.Col != "value" {
		t.Errorf("parse = %+v", ci)
	}
	if s, err = Parse(`CREATE INDEX ON readings (value)`); err != nil {
		t.Fatal(err)
	}
	if ci = s.(CreateIndex); ci.Name != "readings_value_idx" {
		t.Errorf("default name = %q", ci.Name)
	}
	for _, bad := range []string{
		`CREATE INDEX`,
		`CREATE INDEX ON readings`,
		`CREATE INDEX ON readings ()`,
		`CREATE INDEX ON (value)`,
		`ANALYZE 42`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q parsed", bad)
		}
	}
}
