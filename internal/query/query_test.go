package query

import (
	"math"
	"strings"
	"testing"

	"probdb/internal/core"
	"probdb/internal/dist"
)

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	r, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return r
}

func sensorDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, "CREATE TABLE readings (rid INT, value FLOAT UNCERTAIN)")
	mustExec(t, db, `INSERT INTO readings (rid, value) VALUES
		(1, GAUSSIAN(20, 5)),
		(2, GAUSSIAN(25, 4)),
		(3, GAUSSIAN(13, 1))`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := sensorDB(t)
	r := mustExec(t, db, "SELECT rid FROM readings WHERE rid = 1")
	if r.Table.Len() != 1 {
		t.Fatalf("rows = %d", r.Table.Len())
	}
	r = mustExec(t, db, "SELECT * FROM readings")
	if r.Table.Len() != 3 {
		t.Fatalf("rows = %d", r.Table.Len())
	}
	if !strings.Contains(r.Table.Render(), "Gaus(20,5)") {
		t.Errorf("render:\n%s", r.Table.Render())
	}
}

func TestSelectFloorsUncertain(t *testing.T) {
	db := sensorDB(t)
	r := mustExec(t, db, "SELECT rid, value FROM readings WHERE value < 25")
	if r.Table.Len() != 3 {
		t.Fatalf("rows = %d (gaussian tails survive)", r.Table.Len())
	}
	tup := r.Table.Tuples()[1] // rid 2: Gaus(25,4) floored at 25
	d, err := r.Table.DistOf(tup, "value")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mass()-0.5) > 1e-12 {
		t.Errorf("mass = %v, want 0.5", d.Mass())
	}
}

func TestProbThreshold(t *testing.T) {
	db := sensorDB(t)
	// After flooring at value < 20, sensor 2's survival probability is tiny.
	r := mustExec(t, db, "SELECT rid FROM readings WHERE value < 20 AND PROB(value) > 0.4")
	if r.Table.Len() != 2 {
		t.Fatalf("rows = %d, want 2", r.Table.Len())
	}
}

func TestProbRangeThreshold(t *testing.T) {
	db := sensorDB(t)
	r := mustExec(t, db, "SELECT rid FROM readings WHERE PROB(value IN [18, 22]) >= 0.5")
	if r.Table.Len() != 1 {
		t.Fatalf("rows = %d, want 1", r.Table.Len())
	}
	v, _ := r.Table.Value(r.Table.Tuples()[0], "rid")
	if v.I != 1 {
		t.Errorf("kept rid %v", v.Render())
	}
}

func TestJointDependencySets(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE obj (id INT, x FLOAT UNCERTAIN, y FLOAT UNCERTAIN, DEPENDENT(x, y))`)
	mustExec(t, db, `INSERT INTO obj (id, (x, y)) VALUES
		(1, DISCRETE((4,5):0.9, (2,3):0.1))`)
	r := mustExec(t, db, "SELECT * FROM obj WHERE x > 3")
	if r.Table.Len() != 1 {
		t.Fatalf("rows = %d", r.Table.Len())
	}
	d, err := r.Table.DistOf(r.Table.Tuples()[0], "y")
	if err != nil {
		t.Fatal(err)
	}
	// x > 3 keeps only (4,5): the y marginal is 5 with mass 0.9.
	if got := d.At([]float64{5}); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("P(y=5) = %v, want 0.9", got)
	}
	// DESCRIBE shows the dependency set.
	msg := mustExec(t, db, "DESCRIBE obj").Message
	if !strings.Contains(msg, "x y") && !strings.Contains(msg, "[x y]") {
		t.Errorf("describe missing Δ: %s", msg)
	}
}

func TestCrossAttributePredicate(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT UNCERTAIN, b INT UNCERTAIN)")
	mustExec(t, db, `INSERT INTO t ((a), (b)) VALUES
		(DISCRETE(0:0.1, 1:0.9), DISCRETE(1:0.6, 2:0.4)),
		(DISCRETE(7:1.0), DISCRETE(3:1.0))`)
	r := mustExec(t, db, "SELECT a, b FROM t WHERE a < b")
	if r.Table.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (the paper's Table II example)", r.Table.Len())
	}
	if got := r.Table.ExistenceProb(r.Table.Tuples()[0]); math.Abs(got-0.46) > 1e-12 {
		t.Errorf("existence = %v, want 0.46", got)
	}
}

func TestMultiTableJoin(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE s (sid INT, x FLOAT UNCERTAIN)")
	mustExec(t, db, "CREATE TABLE r (rid INT, name TEXT)")
	mustExec(t, db, "INSERT INTO s (sid, x) VALUES (1, GAUSSIAN(10, 1)), (2, GAUSSIAN(20, 1))")
	mustExec(t, db, "INSERT INTO r (rid, name) VALUES (1, 'lab'), (2, 'office')")
	res := mustExec(t, db, "SELECT s.sid, r.name FROM s, r WHERE s.sid = r.rid")
	if res.Table.Len() != 2 {
		t.Fatalf("rows = %d", res.Table.Len())
	}
	for _, tup := range res.Table.Tuples() {
		sid, _ := res.Table.Value(tup, "s.sid")
		name, _ := res.Table.Value(tup, "r.name")
		want := map[int64]string{1: "lab", 2: "office"}
		if name.S != want[sid.I] {
			t.Errorf("sid %d paired with %q", sid.I, name.S)
		}
	}
}

func TestJoinOnUncertain(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE a (x FLOAT UNCERTAIN)")
	mustExec(t, db, "CREATE TABLE b (y FLOAT UNCERTAIN)")
	mustExec(t, db, "INSERT INTO a (x) VALUES (GAUSSIAN(0, 1))")
	mustExec(t, db, "INSERT INTO b (y) VALUES (GAUSSIAN(1, 1))")
	r := mustExec(t, db, "SELECT * FROM a, b WHERE a.x < b.y")
	if r.Table.Len() != 1 {
		t.Fatal("join should keep the pair")
	}
	got := r.Table.ExistenceProb(r.Table.Tuples()[0])
	if math.Abs(got-0.7602) > 0.02 {
		t.Errorf("P[X<Y] = %v", got)
	}
}

func TestDeleteStatement(t *testing.T) {
	db := sensorDB(t)
	r := mustExec(t, db, "DELETE FROM readings WHERE rid = 2")
	if r.Affected != 1 {
		t.Fatalf("deleted %d", r.Affected)
	}
	if mustExec(t, db, "SELECT * FROM readings").Table.Len() != 2 {
		t.Error("wrong remaining count")
	}
	// Probability-threshold deletes.
	r = mustExec(t, db, "DELETE FROM readings WHERE PROB(value IN [12, 14]) > 0.5")
	if r.Affected != 1 {
		t.Fatalf("prob delete removed %d", r.Affected)
	}
	if _, err := db.Exec("DELETE FROM readings WHERE value < 10"); err == nil {
		t.Error("uncertain comparison in DELETE should fail")
	}
}

func TestDropShowDescribe(t *testing.T) {
	db := sensorDB(t)
	mustExec(t, db, "CREATE TABLE other (x INT)")
	if got := mustExec(t, db, "SHOW TABLES").Message; got != "other\nreadings" {
		t.Errorf("show tables = %q", got)
	}
	mustExec(t, db, "DROP TABLE other")
	if got := mustExec(t, db, "SHOW TABLES").Message; got != "readings" {
		t.Errorf("after drop = %q", got)
	}
	if _, err := db.Exec("DROP TABLE nope"); err == nil {
		t.Error("drop unknown should fail")
	}
	if _, err := db.Exec("DESCRIBE nope"); err == nil {
		t.Error("describe unknown should fail")
	}
}

func TestAllDistributionLiterals(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE d (x FLOAT UNCERTAIN)")
	literals := []string{
		"GAUSSIAN(0, 1)", "UNIFORM(0, 10)", "EXPONENTIAL(0.5)", "TRIANGULAR(0, 1, 2)",
		"BERNOULLI(0.3)", "BINOMIAL(5, 0.5)", "POISSON(4)", "GEOMETRIC(0.25)",
		"DISCRETE(1:0.5, 2:0.5)", "HISTOGRAM((0, 5, 10):(0.4, 0.6))",
	}
	for _, lit := range literals {
		if _, err := db.Exec("INSERT INTO d (x) VALUES (" + lit + ")"); err != nil {
			t.Errorf("literal %s: %v", lit, err)
		}
	}
	if got := mustExec(t, db, "SELECT * FROM d").Table.Len(); got != len(literals) {
		t.Errorf("rows = %d", got)
	}
}

func TestExecScript(t *testing.T) {
	db := Open()
	results, err := db.ExecScript(`
		-- sensor demo
		CREATE TABLE s (id INT, x FLOAT UNCERTAIN);
		INSERT INTO s (id, x) VALUES (1, GAUSSIAN(20, 5));
		SELECT * FROM s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[2].Table.Len() != 1 {
		t.Error("script select wrong")
	}
}

func TestParserErrors(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (x FLOAT UNCERTAIN)")
	bad := []string{
		"",
		"FROB x",
		"CREATE TABLE",
		"CREATE TABLE z (x WIBBLE)",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x <",
		"SELECT * FROM t WHERE PROB(x IN [1 2]) > 0.5",
		"INSERT INTO t (x) VALUES (GAUSSIAN(0, -1))",
		"INSERT INTO t (x) VALUES (WEIBULL(1, 2))",
		"INSERT INTO t (x) VALUES (DISCRETE(1:0.5, (1,2):0.5))",
		"INSERT INTO t (x) VALUES (1)", // certain literal for uncertain col
		"SELECT * FROM t WHERE 'a' < 1 AND",
		"CREATE TABLE u (x TEXT UNCERTAIN)",
		"SELECT * FROM t; SELECT * FROM t", // Exec is single-statement
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (x FLOAT UNCERTAIN)")
	bad := []string{
		"CREATE TABLE t (y INT)", // duplicate table
		"INSERT INTO nope (x) VALUES (1)",
		"INSERT INTO t (zz) VALUES (1)",
		"SELECT * FROM nope",
		"SELECT zz FROM t",
		"SELECT * FROM t WHERE zz < 1",
		"DELETE FROM nope",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a.b, 'it''s' FROM t -- comment\nWHERE x <= 1.5e3;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", "FROM", "t", "WHERE", "x", "<=", "1.5e3", ";"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v", texts)
	}
	if _, err := lex("a @ b"); err == nil {
		t.Error("bad character should fail")
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestPaperExampleEndToEnd(t *testing.T) {
	// The paper's running example, end to end through SQL: Table I and the
	// selection σ_{id=1} (§III-C case 1).
	db := sensorDB(t)
	r := mustExec(t, db, "SELECT rid, value FROM readings WHERE rid = 1")
	d, err := r.Table.DistOf(r.Table.Tuples()[0], "value")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "Gaus(20,5)" {
		t.Errorf("pdf = %v", d)
	}
	_ = dist.CDF // keep dist imported for clarity of intent
}

func TestAggregateSQL(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (k INT, x INT UNCERTAIN)")
	mustExec(t, db, `INSERT INTO t (k, x) VALUES
		(1, DISCRETE(1:0.5, 2:0.5)),
		(2, DISCRETE(10:1.0))`)
	r := mustExec(t, db, "SELECT SUM(x) FROM t")
	if !strings.Contains(r.Message, "SUM(x)") || !strings.Contains(r.Message, "mean=11.5") {
		t.Errorf("sum message = %q", r.Message)
	}
	r = mustExec(t, db, "SELECT COUNT(*) FROM t")
	if !strings.Contains(r.Message, "COUNT(*)") || !strings.Contains(r.Message, "mean=2") {
		t.Errorf("count message = %q", r.Message)
	}
	r = mustExec(t, db, "SELECT AVG(x) FROM t WHERE k = 2")
	if !strings.Contains(r.Message, "mean=10") {
		t.Errorf("avg message = %q", r.Message)
	}
	if _, err := db.Exec("SELECT SUM(zz) FROM t"); err == nil {
		t.Error("aggregate over unknown column should fail")
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := sensorDB(t)
	// Rank by survival probability after a floor: most-probable first.
	r := mustExec(t, db, "SELECT rid FROM readings WHERE value < 20 ORDER BY PROB(value) DESC LIMIT 2")
	if r.Table.Len() != 2 {
		t.Fatalf("rows = %d", r.Table.Len())
	}
	// Sensor 3 (Gaus(13,1), nearly all mass below 20) first, then sensor 1.
	first, _ := r.Table.Value(r.Table.Tuples()[0], "rid")
	second, _ := r.Table.Value(r.Table.Tuples()[1], "rid")
	if first.I != 3 || second.I != 1 {
		t.Errorf("ranking = %d, %d; want 3, 1", first.I, second.I)
	}
	// Certain-column ordering.
	r = mustExec(t, db, "SELECT rid FROM readings ORDER BY rid DESC")
	if v, _ := r.Table.Value(r.Table.Tuples()[0], "rid"); v.I != 3 {
		t.Errorf("desc order starts at %d", v.I)
	}
	r = mustExec(t, db, "SELECT rid FROM readings ORDER BY rid ASC LIMIT 1")
	if v, _ := r.Table.Value(r.Table.Tuples()[0], "rid"); v.I != 1 {
		t.Errorf("asc limit 1 got %d", v.I)
	}
	// Errors.
	if _, err := db.Exec("SELECT rid FROM readings ORDER BY value"); err == nil {
		t.Error("ordering by a raw uncertain column should fail")
	}
	if _, err := db.Exec("SELECT rid FROM readings LIMIT -1"); err == nil {
		t.Error("negative limit should fail")
	}
	if _, err := db.Exec("SELECT rid FROM readings LIMIT 1.5"); err == nil {
		t.Error("fractional limit should fail")
	}
}

func TestMVNLiteral(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE obj (id INT, x FLOAT UNCERTAIN, y FLOAT UNCERTAIN, DEPENDENT(x, y))")
	mustExec(t, db, "INSERT INTO obj (id, (x, y)) VALUES (1, MVN((0, 0):((1, 0.7), (0.7, 1))))")
	r := mustExec(t, db, "SELECT * FROM obj WHERE x > 0")
	if r.Table.Len() != 1 {
		t.Fatal("tuple should survive")
	}
	d, err := r.Table.DistOf(r.Table.Tuples()[0], "y")
	if err != nil {
		t.Fatal(err)
	}
	if !(d.Mean(0) > 0.3) {
		t.Errorf("correlated conditional mean = %v, want > 0.3", d.Mean(0))
	}
	if _, err := db.Exec("INSERT INTO obj (id, (x, y)) VALUES (2, MVN((0, 0):((1, 2), (2, 1))))"); err == nil {
		t.Error("non-positive-definite MVN should fail")
	}
}

func TestExplain(t *testing.T) {
	db := sensorDB(t)
	r := mustExec(t, db, "EXPLAIN SELECT rid FROM readings WHERE value < 25 AND PROB(value) > 0.4")
	if !strings.Contains(r.Message, "plan: π(σPr(σ(readings)))") {
		t.Errorf("explain plan = %q", r.Message)
	}
	if !strings.Contains(r.Message, "rows: 3") {
		t.Errorf("explain missing cardinality: %q", r.Message)
	}
	if !strings.Contains(r.Message, "phantom") {
		t.Errorf("explain should list the phantom value column: %q", r.Message)
	}
	if !strings.Contains(r.Message, "parallelism: ") {
		t.Errorf("explain should report the degree of parallelism: %q", r.Message)
	}
	if !strings.Contains(r.Message, "mass cache: ") {
		t.Errorf("explain should report mass-cache traffic: %q", r.Message)
	}
	r = mustExec(t, db, "EXPLAIN SELECT SUM(value) FROM readings")
	if !strings.Contains(r.Message, "aggregate") {
		t.Errorf("aggregate explain = %q", r.Message)
	}
	if !strings.Contains(r.Message, "parallelism: ") {
		t.Errorf("aggregate explain should report parallelism: %q", r.Message)
	}
	if _, err := db.Exec("EXPLAIN DROP TABLE readings"); err == nil {
		t.Error("EXPLAIN of non-SELECT should fail")
	}

	// An explicitly sequential database reports parallelism 1, renders the
	// filter kernel's strategy, and a repeated range-probability query hits
	// the warmed columnar encoding cache.
	db.SetParallelism(1)
	r = mustExec(t, db, "EXPLAIN SELECT rid FROM readings WHERE PROB(value IN [10, 30]) >= 0.2")
	if !strings.Contains(r.Message, "parallelism: 1") {
		t.Errorf("sequential explain = %q", r.Message)
	}
	if !strings.Contains(r.Message, "kernel ") || !strings.Contains(r.Message, "vectorized(") {
		t.Errorf("explain should report the kernel strategy: %q", r.Message)
	}
	r = mustExec(t, db, "EXPLAIN SELECT rid FROM readings WHERE PROB(value IN [10, 30]) >= 0.2")
	if strings.Contains(r.Message, "col cache: 0 hits") {
		t.Errorf("second run should hit the columnar encoding cache: %q", r.Message)
	}

	// With vectorization forced off, the same query reports the scalar
	// fallback strategy and warms the mass cache instead.
	core.SetVectorizedKernels(false)
	defer core.SetVectorizedKernels(true)
	mustExec(t, db, "EXPLAIN SELECT rid FROM readings WHERE PROB(value IN [11, 29]) >= 0.2")
	r = mustExec(t, db, "EXPLAIN SELECT rid FROM readings WHERE PROB(value IN [11, 29]) >= 0.2")
	if !strings.Contains(r.Message, "scalar fallback") {
		t.Errorf("scalar explain should report the fallback strategy: %q", r.Message)
	}
	if strings.Contains(r.Message, "mass cache: 0 hits") {
		t.Errorf("second scalar run should hit the mass cache: %q", r.Message)
	}
}
