package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"probdb/internal/core"
)

// This file renders parsed statements back to the grammar of Parse — the
// inverse the cluster router needs to rewrite a statement (add a hidden
// column, change a projection) and forward it to shards as SQL. The
// contract is semantic round-tripping: Parse(Render(stmt)) yields a
// statement that executes identically to stmt. INSERT is deliberately
// absent — pdf literals carry constructed dist values with no canonical
// SQL spelling, so the router slices the original INSERT text instead.

// Render re-renders a parsed statement as SQL. Statements holding values
// that cannot round-trip (INSERT with pdf literals, non-finite floats)
// return an error.
func Render(stmt Stmt) (string, error) {
	switch s := stmt.(type) {
	case SelectStmt:
		return renderSelect(s)
	case CreateTable:
		return renderCreateTable(s)
	case Delete:
		return renderDelete(s)
	case Drop:
		return "DROP TABLE " + s.Name, nil
	case Analyze:
		if s.Table == "" {
			return "ANALYZE", nil
		}
		return "ANALYZE " + s.Table, nil
	case CreateIndex:
		return fmt.Sprintf("CREATE INDEX ON %s (%s)", s.Table, s.Col), nil
	case ShowTables:
		return "SHOW TABLES", nil
	case Describe:
		return "DESCRIBE " + s.Name, nil
	case Explain:
		q, err := renderSelect(s.Query)
		if err != nil {
			return "", err
		}
		return "EXPLAIN " + q, nil
	case Begin:
		return "BEGIN", nil
	case Commit:
		return "COMMIT", nil
	case Rollback:
		return "ROLLBACK", nil
	case Insert:
		return "", fmt.Errorf("query: INSERT cannot be re-rendered (pdf literals have no canonical SQL form)")
	}
	return "", fmt.Errorf("query: cannot render %T", stmt)
}

// RenderValue formats a literal as its SQL spelling: the exact text the
// lexer parses back to the same core.Value.
func RenderValue(v core.Value) (string, error) {
	switch v.Kind {
	case core.NullValue:
		return "NULL", nil
	case core.IntValue:
		return strconv.FormatInt(v.I, 10), nil
	case core.FloatValue:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return "", fmt.Errorf("query: float %v has no SQL literal", v.F)
		}
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		// An integral float like 3 must stay a float through the lexer's
		// "no .eE means int" rule.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, nil
	case core.StringValue:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'", nil
	case core.BoolValue:
		if v.B {
			return "TRUE", nil
		}
		return "FALSE", nil
	}
	return "", fmt.Errorf("query: cannot render value kind %d", v.Kind)
}

func renderSelect(s SelectStmt) (string, error) {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case s.Agg != "":
		if s.AggCol == "" {
			b.WriteString(s.Agg + "(*)")
		} else {
			b.WriteString(s.Agg + "(" + s.AggCol + ")")
		}
	case s.Star:
		b.WriteString("*")
	default:
		b.WriteString(strings.Join(s.Cols, ", "))
	}
	b.WriteString(" FROM ")
	for i, ref := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ref.Name)
		if ref.Alias != "" {
			b.WriteString(" AS " + ref.Alias)
		}
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			cs, err := renderCond(c)
			if err != nil {
				return "", err
			}
			b.WriteString(cs)
		}
	}
	if s.OrderCol != "" {
		b.WriteString(" ORDER BY ")
		if s.OrderProb {
			b.WriteString("PROB(" + s.OrderCol + ")")
		} else {
			b.WriteString(s.OrderCol)
		}
		if s.OrderDesc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT " + strconv.Itoa(*s.Limit))
	}
	return b.String(), nil
}

func renderCond(c Cond) (string, error) {
	num := func(f float64) (string, error) {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return "", fmt.Errorf("query: threshold %v has no SQL literal", f)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	}
	switch c.Kind {
	case CondCmp:
		l, err := renderOperand(c.Left)
		if err != nil {
			return "", err
		}
		r, err := renderOperand(c.Right)
		if err != nil {
			return "", err
		}
		return l + " " + c.Op.String() + " " + r, nil
	case CondProb:
		th, err := num(c.Threshold)
		if err != nil {
			return "", err
		}
		return "PROB(" + strings.Join(c.ProbCols, ", ") + ") " + c.Op.String() + " " + th, nil
	case CondProbRange:
		lo, err := num(c.Lo)
		if err != nil {
			return "", err
		}
		hi, err := num(c.Hi)
		if err != nil {
			return "", err
		}
		th, err := num(c.Threshold)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("PROB(%s IN [%s, %s]) %s %s", c.ProbCols[0], lo, hi, c.Op.String(), th), nil
	}
	return "", fmt.Errorf("query: cannot render condition kind %d", c.Kind)
}

func renderOperand(o Operand) (string, error) {
	if o.IsCol {
		return o.Col, nil
	}
	return RenderValue(o.Lit)
}

func renderDelete(s Delete) (string, error) {
	b := "DELETE FROM " + s.Table
	if len(s.Where) > 0 {
		var conds []string
		for _, c := range s.Where {
			cs, err := renderCond(c)
			if err != nil {
				return "", err
			}
			conds = append(conds, cs)
		}
		b += " WHERE " + strings.Join(conds, " AND ")
	}
	return b, nil
}

func renderCreateTable(s CreateTable) (string, error) {
	var parts []string
	for _, c := range s.Cols {
		tn, err := typeName(c.Type)
		if err != nil {
			return "", err
		}
		p := c.Name + " " + tn
		if c.Uncertain {
			p += " UNCERTAIN"
		}
		parts = append(parts, p)
	}
	for _, dep := range s.Deps {
		parts = append(parts, "DEPENDENT("+strings.Join(dep, ", ")+")")
	}
	return "CREATE TABLE " + s.Name + " (" + strings.Join(parts, ", ") + ")", nil
}

func typeName(t core.AttrType) (string, error) {
	switch t {
	case core.IntType:
		return "INT", nil
	case core.FloatType:
		return "FLOAT", nil
	case core.StringType:
		return "TEXT", nil
	case core.BoolType:
		return "BOOL", nil
	}
	return "", fmt.Errorf("query: cannot render column type %d", t)
}
