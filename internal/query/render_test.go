package query

import (
	"reflect"
	"testing"

	"probdb/internal/core"
)

// TestRenderRoundTrip: Parse(Render(Parse(sql))) must equal Parse(sql) —
// the router's rewrite path depends on the renderer speaking exactly the
// parser's grammar.
func TestRenderRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t",
		"SELECT a FROM t AS x, u AS y",
		"SELECT SUM(a) FROM t",
		"SELECT AVG(a) FROM t",
		"SELECT COUNT(*) FROM t",
		"SELECT * FROM t WHERE a < 5 AND b >= 2.5 AND c = 'it''s' AND d <> TRUE AND e = NULL",
		"SELECT * FROM t WHERE a = b",
		"SELECT * FROM t WHERE PROB(x) > 0.5",
		"SELECT * FROM t WHERE PROB(x, y) <= 0.25",
		"SELECT * FROM t WHERE PROB(x IN [1.5, 2.5]) >= 0.9",
		"SELECT * FROM t ORDER BY a",
		"SELECT * FROM t ORDER BY a DESC LIMIT 10",
		"SELECT * FROM t ORDER BY PROB(x) DESC LIMIT 3",
		"SELECT a FROM t WHERE a > 1e+20 LIMIT 0",
		"CREATE TABLE t (k INT, v FLOAT UNCERTAIN, s TEXT, b BOOL)",
		"CREATE TABLE t (k INT, a FLOAT UNCERTAIN, b FLOAT UNCERTAIN, DEPENDENT(a, b))",
		"DELETE FROM t",
		"DELETE FROM t WHERE k = 3",
		"DELETE FROM t WHERE PROB(x) < 0.1",
		"DROP TABLE t",
		"ANALYZE",
		"ANALYZE t",
		"CREATE INDEX ON t (k)",
		"SHOW TABLES",
		"DESCRIBE t",
		"EXPLAIN SELECT * FROM t WHERE a < 5",
		"BEGIN",
		"COMMIT",
		"ROLLBACK",
	} {
		want, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		rendered, err := Render(want)
		if err != nil {
			t.Fatalf("render %q: %v", sql, err)
		}
		got, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse %q (rendered from %q): %v", rendered, sql, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip drift:\n  sql      %q\n  rendered %q\n  want %#v\n  got  %#v", sql, rendered, want, got)
		}
	}
}

// TestRenderRejects: statements and values with no SQL spelling error
// instead of emitting text that would parse to something else.
func TestRenderRejects(t *testing.T) {
	if _, err := Render(Insert{Table: "t"}); err == nil {
		t.Fatal("INSERT rendered")
	}
	if _, err := RenderValue(core.Float(floatNaN())); err == nil {
		t.Fatal("NaN rendered")
	}
}

func floatNaN() float64 {
	z := 0.0
	return z / z
}

// TestRenderValueIntegralFloat: an integral float must render with a
// decimal point so the lexer does not reparse it as an int.
func TestRenderValueIntegralFloat(t *testing.T) {
	s, err := RenderValue(core.Float(3))
	if err != nil {
		t.Fatal(err)
	}
	if s != "3.0" {
		t.Fatalf("Float(3) rendered %q", s)
	}
}
