package query

import (
	"fmt"
	"strings"
)

// InsertRowSpans returns the byte span [start, end) of each parenthesized
// VALUES row group in an INSERT statement's source text, in row order. The
// cluster router uses the spans to slice an INSERT apart by partition key:
// pdf literals carry constructed distributions with no canonical SQL form
// (Render refuses them), so the router forwards each row's original text
// verbatim instead of re-rendering it. The spans come from the same lexer
// Parse uses, so strings, escapes and comments are skipped identically.
func InsertRowSpans(src string) ([][2]int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	sym := func(i int, s string) bool { return toks[i].kind == tokSymbol && toks[i].text == s }
	// Find the VALUES keyword outside any parens (the target list).
	i, depth := 0, 0
	for ; ; i++ {
		t := toks[i]
		if t.kind == tokEOF {
			return nil, fmt.Errorf("query: INSERT has no VALUES clause")
		}
		if t.kind == tokSymbol {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			}
			continue
		}
		if depth == 0 && t.kind == tokIdent && strings.EqualFold(t.text, "VALUES") {
			i++
			break
		}
	}
	var spans [][2]int
	for {
		if !sym(i, "(") {
			return nil, fmt.Errorf("query: expected '(' after VALUES, got %v", toks[i])
		}
		start := toks[i].pos
		depth = 1
		for depth > 0 {
			i++
			t := toks[i]
			if t.kind == tokEOF {
				return nil, fmt.Errorf("query: unterminated VALUES row at offset %d", start)
			}
			if t.kind == tokSymbol {
				switch t.text {
				case "(":
					depth++
				case ")":
					depth--
				}
			}
		}
		spans = append(spans, [2]int{start, toks[i].pos + 1})
		i++
		if sym(i, ",") {
			i++
			continue
		}
		break
	}
	for sym(i, ";") {
		i++
	}
	if toks[i].kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input after VALUES rows: %v", toks[i])
	}
	return spans, nil
}
