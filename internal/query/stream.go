package query

import (
	"context"
	"fmt"

	"probdb/internal/core"
	"probdb/internal/pipe"
)

// This file is the pipelined execution strategy: SELECT statements compile
// to a tree of internal/pipe operators over the same core kernels the
// materializing path uses, so the two strategies produce byte-identical
// tables while the pipelined one holds O(batch) rows, stops the scan early
// under LIMIT, and can stream batches to a sink before the scan finishes.
//
// Plan shape (mirroring the legacy operator chain exactly):
//
//	Scan(access path) → Filter(all comparison atoms, one kernel)
//	                  → ProbFilter* (planner's residual order)
//	                  → TopK(k) | Sort | Limit
//	                  → Project (breaker; placed after Limit so it buffers
//	                    at most the limit)

// SetLegacyExec forces the materializing execution strategy for SELECT.
// Results are identical either way; the knob exists for differential tests
// and memory benchmarks.
func (db *DB) SetLegacyExec(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.legacyExec = on
}

// execSelectPipelined runs a SELECT through the operator tree. Aggregates
// drain the filter stages (an aggregate consumes its whole input by
// definition); everything else drains the full tree into a Result table.
func (db *DB) execSelectPipelined(s SelectStmt) (*Result, error) {
	root, pr, err := db.buildFilterTree(s)
	if err != nil {
		return nil, err
	}
	if s.Agg != "" {
		acc, err := pipe.Drain(context.Background(), root)
		if err != nil {
			return nil, err
		}
		pr.harvestKernels()
		r, err := execAggregate(s, acc)
		if err != nil {
			return nil, err
		}
		r.Planner = pr.counters
		return r, nil
	}
	root, err = addOrderStages(root, s)
	if err != nil {
		root.Close() //nolint:errcheck
		return nil, err
	}
	acc, err := pipe.Drain(context.Background(), root)
	if err != nil {
		return nil, err
	}
	pr.harvestKernels()
	return &Result{Table: acc, Affected: acc.Len(), Planner: pr.counters}, nil
}

// ExecStream parses and executes one statement, streaming a SELECT's
// result batches to sink as they are produced: the first batch arrives
// before the scan has finished. sink runs under the catalog read lock and
// is called at least once (with a nil batch when the result is empty), its
// header argument describing the result shape. A sink error — typically a
// dead client connection — aborts the tree mid-stream and is returned.
//
// Statements without streamable row output (DDL, DML, aggregates, EXPLAIN)
// execute normally: the Result carries their message/table and sink is
// never called.
func (db *DB) ExecStream(ctx context.Context, sql string, sink func(hdr *core.Table, batch []*core.Tuple) error) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	s, ok := stmt.(SelectStmt)
	if !ok || s.Agg != "" {
		return db.execStmt(stmt)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	root, pr, err := db.buildFilterTree(s)
	if err != nil {
		return nil, err
	}
	root, err = addOrderStages(root, s)
	if err != nil {
		root.Close() //nolint:errcheck
		return nil, err
	}
	rows := 0
	err = pipe.Run(ctx, root, func(hdr *core.Table, batch []*core.Tuple) error {
		rows += len(batch)
		return sink(hdr, batch)
	})
	if err != nil {
		return nil, err
	}
	pr.harvestKernels()
	return &Result{Affected: rows, Planner: pr.counters}, nil
}

// buildFilterTree compiles FROM + WHERE into a streaming operator tree:
// the access-path leaf, one Filter kernel holding every comparison atom in
// written order (their pdf floors are order-sensitive at the bit level),
// and ProbFilters for the probability conjuncts. Callers hold (at least)
// the read lock.
func (db *DB) buildFilterTree(s SelectStmt) (pipe.Operator, *pipelineResult, error) {
	if len(s.From) == 1 {
		if t, ok := db.tables[s.From[0].Name]; ok {
			return db.buildPlannedTree(s, t)
		}
	}
	return db.buildNaiveTree(s)
}

// buildPlannedTree is the single-table path: the planner chooses the
// access path (shared with the legacy executor via planAccess), then the
// residual conjuncts stream.
func (db *DB) buildPlannedTree(s SelectStmt, base *core.Table) (pipe.Operator, *pipelineResult, error) {
	src, pr := db.planAccess(s, base)
	var root pipe.Operator = pipe.NewScan(src)
	var atoms []core.Atom
	for _, c := range s.Where {
		if c.Kind == CondCmp {
			atoms = append(atoms, core.Cmp(toCoreOperand(c.Left), c.Op, toCoreOperand(c.Right)))
		}
	}
	if len(atoms) > 0 {
		sel, err := src.PlanSelect(atoms...)
		if err != nil {
			return nil, nil, err
		}
		pr.kernels = append(pr.kernels, sel)
		root = pipe.NewFilter(root, sel)
	}
	for _, orig := range pr.plan.ResidualProb {
		var err error
		if root, err = addProbFilter(pr, root, s.Where[orig]); err != nil {
			return nil, nil, err
		}
	}
	return root, pr, nil
}

// buildNaiveTree is the multi-table path: a left-deep join tree replicating
// fromClause's equi-join upgrade decisions (made on operator headers — the
// decisions only read schemas), then every comparison atom in one Filter
// and the probability conjuncts in written order.
func (db *DB) buildNaiveTree(s SelectStmt) (pipe.Operator, *pipelineResult, error) {
	if len(s.From) == 0 {
		return nil, nil, fmt.Errorf("query: empty FROM")
	}
	pr := &pipelineResult{}
	for _, ref := range s.From {
		if db.indexes[ref.Name] != nil {
			pr.counters.PlannerFallbacks++
			break
		}
	}
	multi := len(s.From) > 1
	first, err := db.resolveRef(s.From[0], multi)
	if err != nil {
		return nil, nil, err
	}
	var root pipe.Operator = pipe.NewScan(first)
	for _, ref := range s.From[1:] {
		next, err := db.resolveRef(ref, true)
		if err != nil {
			return nil, nil, err
		}
		hdr := root.Header()
		if l, r, ok := equiJoinKeys(s, hdr, next); ok {
			k, err := hdr.PlanEquiJoin(next, l, r)
			if err != nil {
				return nil, nil, err
			}
			root = pipe.NewEquiJoin(root, k)
		} else {
			k, err := hdr.PlanCross(next)
			if err != nil {
				return nil, nil, err
			}
			root = pipe.NewCrossJoin(root, k, next.Tuples())
		}
	}
	var atoms []core.Atom
	var probConds []Cond
	for _, c := range s.Where {
		switch c.Kind {
		case CondCmp:
			atoms = append(atoms, core.Cmp(toCoreOperand(c.Left), c.Op, toCoreOperand(c.Right)))
		default:
			probConds = append(probConds, c)
		}
	}
	if len(atoms) > 0 {
		sel, err := root.Header().PlanSelect(atoms...)
		if err != nil {
			return nil, nil, err
		}
		pr.kernels = append(pr.kernels, sel)
		root = pipe.NewFilter(root, sel)
	}
	for _, c := range probConds {
		if root, err = addProbFilter(pr, root, c); err != nil {
			return nil, nil, err
		}
	}
	return root, pr, nil
}

// addProbFilter wraps the tree with one probability-threshold conjunct,
// planned against the current header and recorded for report harvesting.
func addProbFilter(pr *pipelineResult, root pipe.Operator, c Cond) (pipe.Operator, error) {
	hdr := root.Header()
	var sel *core.ProbSelection
	switch c.Kind {
	case CondProb:
		sel = hdr.PlanProbSelect(c.ProbCols, c.Op, c.Threshold)
	case CondProbRange:
		sel = hdr.PlanRangeThreshold(c.ProbCols[0], c.Lo, c.Hi, c.Op, c.Threshold)
	default:
		return nil, fmt.Errorf("query: unsupported condition kind %d", c.Kind)
	}
	pr.kernels = append(pr.kernels, sel)
	return pipe.NewProbFilter(root, sel), nil
}

// addOrderStages appends ORDER BY / LIMIT / projection to the tree. ORDER
// BY with LIMIT becomes the bounded top-k heap; ORDER BY alone a full
// sort; LIMIT alone an early-terminating pass-through. Projection runs
// last — it is a pipeline breaker (phantom retention inspects tuple
// masses), so placing it after the limit bounds what it buffers.
func addOrderStages(root pipe.Operator, s SelectStmt) (pipe.Operator, error) {
	if s.OrderCol != "" {
		less, prep, err := orderComparator(root.Header(), s)
		if err != nil {
			return root, err
		}
		if s.Limit != nil {
			root = pipe.NewTopK(root, *s.Limit, less, prep)
		} else {
			root = pipe.NewSort(root, less, prep)
		}
	} else if s.Limit != nil {
		root = pipe.NewLimit(root, *s.Limit)
	}
	if !s.Star {
		root = pipe.NewProject(root, s.Cols)
	}
	return root, nil
}

// orderComparator builds the ORDER BY comparator both executors share: a
// total order (so the stable full sort and the bounded top-k heap agree on
// every prefix) with NULL keys after all values regardless of direction.
// For ORDER BY PROB(col), prep computes each tuple's probability exactly
// once before any comparison and fails the query on the first bad tuple.
func orderComparator(t *core.Table, s SelectStmt) (less func(a, b *core.Tuple) bool, prep func(*core.Tuple) error, err error) {
	if s.OrderProb {
		probs := map[*core.Tuple]float64{}
		prep = func(tup *core.Tuple) error {
			p, err := t.Prob(tup, s.OrderCol)
			if err != nil {
				return err
			}
			probs[tup] = p
			return nil
		}
		less = func(a, b *core.Tuple) bool {
			if s.OrderDesc {
				return probs[a] > probs[b]
			}
			return probs[a] < probs[b]
		}
		return less, prep, nil
	}
	col, ok := t.Schema().Lookup(s.OrderCol)
	if !ok {
		return nil, nil, fmt.Errorf("query: no column %q", s.OrderCol)
	}
	if col.Uncertain {
		return nil, nil, fmt.Errorf("query: ORDER BY uncertain column %q needs PROB(...)", s.OrderCol)
	}
	less = func(a, b *core.Tuple) bool {
		va, _ := t.Value(a, s.OrderCol)
		vb, _ := t.Value(b, s.OrderCol)
		if va.IsNull() || vb.IsNull() {
			// NULLS LAST in both directions: a sorts first iff it has a
			// value and b does not.
			return !va.IsNull() && vb.IsNull()
		}
		cmp, comparable := va.Compare(vb)
		if !comparable {
			return false
		}
		if s.OrderDesc {
			return cmp > 0
		}
		return cmp < 0
	}
	return less, nil, nil
}
