package query

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"probdb/internal/core"
	"probdb/internal/pipe"
)

// renderFull is the strictest comparison: the whole rendered table, header
// (derived-table name, schema, phantoms) included. The pipelined executor
// must reproduce the legacy executor's operator-chain names too.
func renderFull(r *Result) string {
	if r.Table == nil {
		return r.Message
	}
	return r.Table.Render()
}

// streamDifferentialQueries extends the planner battery with the stages the
// pipelined executor rewrites: ORDER BY (certain column with NULL keys, and
// PROB ranking), LIMIT (top-k heap vs sort+head), and projections after
// both.
var streamDifferentialQueries = []string{
	`SELECT * FROM sensors ORDER BY sid`,
	`SELECT * FROM sensors ORDER BY sid DESC`,
	`SELECT sid, site FROM sensors ORDER BY sid LIMIT 5`,
	`SELECT sid, site FROM sensors ORDER BY sid DESC LIMIT 17`,
	`SELECT sid FROM sensors ORDER BY sid LIMIT 115`,
	`SELECT sid FROM sensors ORDER BY sid LIMIT 500`,
	`SELECT * FROM sensors LIMIT 0`,
	`SELECT * FROM sensors LIMIT 10`,
	`SELECT site FROM sensors WHERE sid < 50 LIMIT 3`,
	`SELECT sid FROM sensors ORDER BY PROB(temp) DESC LIMIT 9`,
	`SELECT sid FROM sensors ORDER BY PROB(temp)`,
	`SELECT sid FROM sensors WHERE PROB(temp IN [15, 30]) >= 0.4 ORDER BY PROB(temp) DESC LIMIT 6`,
	`SELECT site FROM sensors WHERE temp < 25 ORDER BY sid LIMIT 8`,
}

// TestPipelinedMatchesLegacyDifferential: every query in the planner corpus
// plus the ordering/limit battery, executed by the pipelined operator tree,
// must render byte-identically to the materializing path — with indexes on
// and off, at sequential and parallel execution.
func TestPipelinedMatchesLegacyDifferential(t *testing.T) {
	queries := append(append([]string{}, differentialQueries...), streamDifferentialQueries...)
	for _, par := range []int{1, 4} {
		for _, indexed := range []bool{false, true} {
			t.Run(fmt.Sprintf("par=%d,indexed=%v", par, indexed), func(t *testing.T) {
				db := Open()
				db.SetParallelism(par)
				plannerFixture(t, db)
				if indexed {
					mustExec(t, db, `ANALYZE sensors`)
					mustExec(t, db, `CREATE INDEX ON sensors (temp)`)
					mustExec(t, db, `CREATE INDEX ON sensors (sid)`)
				}
				for _, q := range queries {
					db.SetLegacyExec(true)
					want := renderFull(mustExec(t, db, q))
					db.SetLegacyExec(false)
					got := renderFull(mustExec(t, db, q))
					if got != want {
						t.Errorf("%s:\nlegacy:\n%s\npipelined:\n%s", q, want, got)
					}
				}
				if n := pipe.OpenOperators(); n != 0 {
					t.Fatalf("pipe.OpenOperators() = %d after differential run", n)
				}
			})
		}
	}
}

// joinFixture builds two joinable tables plus a pair for uncertain cross
// predicates.
func joinFixture(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE s (id INT, x FLOAT UNCERTAIN)`)
	mustExec(t, db, `CREATE TABLE r (rid INT, name TEXT)`)
	for i := 0; i < 25; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO s (id, x) VALUES (%d, GAUSSIAN(%d, 3))`, i%9, 10+i*3))
	}
	for i := 0; i < 12; i++ {
		mustExec(t, db, fmt.Sprintf(
			`INSERT INTO r (rid, name) VALUES (%d, 'n%d')`, i, i))
	}
	mustExec(t, db, `CREATE TABLE a (x FLOAT UNCERTAIN)`)
	mustExec(t, db, `CREATE TABLE b (y FLOAT UNCERTAIN)`)
	for i := 0; i < 6; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO a (x) VALUES (UNIFORM(%d, %d))`, i*5, i*5+10))
		mustExec(t, db, fmt.Sprintf(`INSERT INTO b (y) VALUES (GAUSSIAN(%d, 2))`, 8+i*4))
	}
}

// TestPipelinedJoinsDifferential: the streaming left-deep join trees
// (equi-join upgrade and cross product) match the materializing fromClause
// byte for byte.
func TestPipelinedJoinsDifferential(t *testing.T) {
	queries := []string{
		`SELECT s.id, r.name FROM s, r WHERE s.id = r.rid`,
		`SELECT * FROM s, r WHERE s.id = r.rid AND PROB(s.x IN [0, 60]) >= 0.3`,
		`SELECT s.id FROM s, r WHERE s.id = r.rid ORDER BY s.id DESC LIMIT 4`,
		`SELECT s.id, r.name FROM s, r LIMIT 30`,
		`SELECT * FROM a, b WHERE a.x < b.y`,
		`SELECT * FROM a, b WHERE a.x < b.y LIMIT 5`,
		`SELECT r.name, s.id FROM r, s WHERE s.id = r.rid AND r.rid < 6 ORDER BY r.name LIMIT 10`,
	}
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			db := Open()
			db.SetParallelism(par)
			joinFixture(t, db)
			for _, q := range queries {
				db.SetLegacyExec(true)
				want := renderFull(mustExec(t, db, q))
				db.SetLegacyExec(false)
				got := renderFull(mustExec(t, db, q))
				if got != want {
					t.Errorf("%s:\nlegacy:\n%s\npipelined:\n%s", q, want, got)
				}
			}
		})
	}
}

// TestExecStreamMatchesExec: the batches ExecStream hands the sink
// concatenate to exactly the rows Exec materializes, and large results
// arrive in multiple batches.
func TestExecStreamMatchesExec(t *testing.T) {
	db := Open()
	plannerFixture(t, db)
	q := `SELECT * FROM sensors WHERE sid >= 0`
	want := mustExec(t, db, q)

	var hdr *core.Table
	var got []*core.Tuple
	batches := 0
	res, err := db.ExecStream(context.Background(), q, func(h *core.Table, b []*core.Tuple) error {
		hdr = h
		got = append(got, b...)
		batches++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != want.Table.Len() {
		t.Fatalf("Affected = %d, want %d", res.Affected, want.Table.Len())
	}
	if w, g := want.Table.Render(), hdr.Restrict(hdr.Name, got).Render(); w != g {
		t.Fatalf("streamed rows differ:\nexec:\n%s\nstream:\n%s", w, g)
	}
	if n := pipe.OpenOperators(); n != 0 {
		t.Fatalf("pipe.OpenOperators() = %d after stream", n)
	}
}

// TestExecStreamEmptyResult: the sink still learns the header exactly once.
func TestExecStreamEmptyResult(t *testing.T) {
	db := Open()
	plannerFixture(t, db)
	calls := 0
	_, err := db.ExecStream(context.Background(), `SELECT sid FROM sensors WHERE sid > 9000`,
		func(h *core.Table, b []*core.Tuple) error {
			calls++
			if h == nil {
				t.Fatal("nil header")
			}
			if len(b) != 0 {
				t.Fatalf("unexpected rows: %d", len(b))
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times, want 1", calls)
	}
}

// TestExecStreamNonSelect: statements without row output execute normally
// and never touch the sink.
func TestExecStreamNonSelect(t *testing.T) {
	db := Open()
	for _, sql := range []string{
		`CREATE TABLE t (x INT)`,
		`INSERT INTO t (x) VALUES (1)`,
		`SELECT COUNT(*) FROM t`,
	} {
		res, err := db.ExecStream(context.Background(), sql, func(h *core.Table, b []*core.Tuple) error {
			t.Fatalf("sink called for %q", sql)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Message == "" {
			t.Fatalf("%q: expected a message result", sql)
		}
	}
}

// TestExecStreamSinkErrorAborts: a failing sink (a dead client) aborts the
// tree mid-stream and leaves no operator open.
func TestExecStreamSinkErrorAborts(t *testing.T) {
	db := Open()
	plannerFixture(t, db)
	boom := errors.New("client went away")
	calls := 0
	_, err := db.ExecStream(context.Background(), `SELECT * FROM sensors`,
		func(h *core.Table, b []*core.Tuple) error {
			calls++
			return boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after first error", calls)
	}
	if n := pipe.OpenOperators(); n != 0 {
		t.Fatalf("pipe.OpenOperators() = %d after aborted stream", n)
	}
}

// TestOrderByNullsLast: NULL keys sort after every value in both
// directions, in both executors, and a LIMIT below the non-NULL count never
// surfaces a NULL.
func TestOrderByNullsLast(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE n (k INT, tag TEXT)`)
	for _, row := range []string{`(3, 'c')`, `(NULL, 'x')`, `(1, 'a')`, `(NULL, 'y')`, `(2, 'b')`} {
		mustExec(t, db, `INSERT INTO n (k, tag) VALUES `+row)
	}
	for _, mode := range []bool{true, false} {
		db.SetLegacyExec(mode)
		for _, q := range []string{`SELECT tag FROM n ORDER BY k`, `SELECT tag FROM n ORDER BY k DESC`} {
			res := mustExec(t, db, q)
			tags := make([]string, 0, res.Table.Len())
			for _, tup := range res.Table.Tuples() {
				v, _ := res.Table.Value(tup, "tag")
				tags = append(tags, v.Render())
			}
			// NULL-key rows ('x', 'y') must be the final two, in arrival order.
			if len(tags) != 5 || tags[3] != `"x"` || tags[4] != `"y"` {
				t.Fatalf("legacy=%v %s: order = %v, want NULL keys last", mode, q, tags)
			}
		}
		res := mustExec(t, db, `SELECT k, tag FROM n ORDER BY k DESC LIMIT 3`)
		for _, tup := range res.Table.Tuples() {
			v, _ := res.Table.Value(tup, "k")
			if v.IsNull() {
				t.Fatalf("legacy=%v: LIMIT 3 of 3 non-NULL keys surfaced a NULL", mode)
			}
		}
	}
}
