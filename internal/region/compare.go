package region

import "fmt"

// Op enumerates the comparison operators that compile to 1-D regions.
type Op int

// Comparison operators.
const (
	LT Op = iota // strictly less than
	LE           // less than or equal
	GT           // strictly greater than
	GE           // greater than or equal
	EQ           // equal
	NE           // not equal
)

// String returns the SQL spelling of the operator.
func (op Op) String() string {
	switch op {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "="
	case NE:
		return "<>"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Negate returns the complementary operator (e.g. LT -> GE).
func (op Op) Negate() Op {
	switch op {
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	case EQ:
		return NE
	case NE:
		return EQ
	}
	panic("region: unknown Op")
}

// Flip returns the operator with its operands swapped (e.g. a < b becomes
// b > a).
func (op Op) Flip() Op {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default: // EQ, NE are symmetric
		return op
	}
}

// Eval reports whether "a op b" holds.
func (op Op) Eval(a, b float64) bool {
	switch op {
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	case EQ:
		return a == b
	case NE:
		return a != b
	}
	panic("region: unknown Op")
}

// Compare returns the set of x satisfying "x op c". This is the compilation
// step from a selection predicate with a constant right-hand side to the
// region a pdf is floored against.
func Compare(op Op, c float64) Set {
	switch op {
	case LT:
		return NewSet(Below(c, true))
	case LE:
		return NewSet(Below(c, false))
	case GT:
		return NewSet(Above(c, true))
	case GE:
		return NewSet(Above(c, false))
	case EQ:
		return NewSet(Point(c))
	case NE:
		return NewSet(Point(c)).Complement()
	}
	panic("region: unknown Op")
}

// Box is an axis-aligned N-dimensional box (one interval per dimension).
type Box []Interval

// Contains reports whether the point x (len(x) == len(b)) lies in the box.
func (b Box) Contains(x []float64) bool {
	if len(x) != len(b) {
		panic("region: Box.Contains dimension mismatch")
	}
	for i, iv := range b {
		if !iv.Contains(x[i]) {
			return false
		}
	}
	return true
}

// Empty reports whether any dimension of the box is empty.
func (b Box) Empty() bool {
	for _, iv := range b {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// Intersect returns the per-dimension intersection of two boxes of equal
// dimensionality.
func (b Box) Intersect(o Box) Box {
	if len(b) != len(o) {
		panic("region: Box.Intersect dimension mismatch")
	}
	out := make(Box, len(b))
	for i := range b {
		out[i] = b[i].Intersect(o[i])
	}
	return out
}
