// Package region implements the region algebra behind the model's floor
// operation. A selection predicate over an uncertain attribute compiles to a
// Set — the set of domain points that *survive* the predicate — and flooring
// a pdf means zeroing it outside that set (§III-A of the paper). Sets are
// finite unions of intervals over the extended real line, with exact
// open/closed endpoint bookkeeping so that discrete distributions (where a
// boundary point carries mass) are floored correctly.
package region

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a possibly-degenerate interval of the real line. Lo and Hi may
// be ±Inf. LoOpen/HiOpen record whether the corresponding endpoint is
// excluded. The zero value is the degenerate closed interval [0, 0].
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool {
	if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
		return true
	}
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi {
		if iv.LoOpen || iv.HiOpen {
			return true
		}
		// A point at infinity is not a real point.
		return math.IsInf(iv.Lo, 0)
	}
	return false
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool {
	if x < iv.Lo || x > iv.Hi {
		return false
	}
	if x == iv.Lo && iv.LoOpen {
		return false
	}
	if x == iv.Hi && iv.HiOpen {
		return false
	}
	return true
}

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	r := iv
	if o.Lo > r.Lo || (o.Lo == r.Lo && o.LoOpen) {
		r.Lo, r.LoOpen = o.Lo, o.LoOpen
	}
	if o.Hi < r.Hi || (o.Hi == r.Hi && o.HiOpen) {
		r.Hi, r.HiOpen = o.Hi, o.HiOpen
	}
	return r
}

// String renders the interval in conventional bracket notation.
func (iv Interval) String() string {
	lb, rb := "[", "]"
	if iv.LoOpen {
		lb = "("
	}
	if iv.HiOpen {
		rb = ")"
	}
	return fmt.Sprintf("%s%g, %g%s", lb, iv.Lo, iv.Hi, rb)
}

// Convenience constructors.

// Closed returns the closed interval [lo, hi].
func Closed(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

// Open returns the open interval (lo, hi).
func Open(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi, LoOpen: true, HiOpen: true} }

// Point returns the degenerate interval {x}.
func Point(x float64) Interval { return Interval{Lo: x, Hi: x} }

// Below returns (-inf, x) if open, else (-inf, x].
func Below(x float64, open bool) Interval {
	return Interval{Lo: math.Inf(-1), LoOpen: true, Hi: x, HiOpen: open}
}

// Above returns (x, +inf) if open, else [x, +inf).
func Above(x float64, open bool) Interval {
	return Interval{Lo: x, LoOpen: open, Hi: math.Inf(1), HiOpen: true}
}

// Set is a normalized finite union of disjoint, non-adjacent intervals in
// ascending order. The zero value is the empty set. Sets are immutable:
// every operation returns a new Set.
type Set struct {
	ivs []Interval
}

// Empty is the empty set.
var Empty = Set{}

// Full is the whole real line.
var Full = NewSet(Interval{Lo: math.Inf(-1), LoOpen: true, Hi: math.Inf(1), HiOpen: true})

// NewSet builds a normalized set from arbitrary (possibly overlapping,
// possibly empty) intervals.
func NewSet(ivs ...Interval) Set {
	kept := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			kept = append(kept, iv)
		}
	}
	if len(kept) == 0 {
		return Set{}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		// Closed lower endpoint sorts before open at the same coordinate.
		return !a.LoOpen && b.LoOpen
	})
	out := kept[:1]
	for _, iv := range kept[1:] {
		last := &out[len(out)-1]
		if mergeable(*last, iv) {
			if iv.Hi > last.Hi || (iv.Hi == last.Hi && !iv.HiOpen) {
				last.Hi, last.HiOpen = iv.Hi, iv.HiOpen
			}
		} else {
			out = append(out, iv)
		}
	}
	norm := make([]Interval, len(out))
	copy(norm, out)
	return Set{ivs: norm}
}

// mergeable reports whether two intervals with a.Lo <= b.Lo union to a single
// interval (overlap or touch with at least one closed endpoint).
func mergeable(a, b Interval) bool {
	if b.Lo < a.Hi {
		return true
	}
	if b.Lo == a.Hi {
		return !a.HiOpen || !b.LoOpen
	}
	return false
}

// Intervals returns the normalized intervals of the set. Callers must not
// modify the returned slice.
func (s Set) Intervals() []Interval { return s.ivs }

// IsEmpty reports whether the set contains no points.
func (s Set) IsEmpty() bool { return len(s.ivs) == 0 }

// IsFull reports whether the set is the whole real line.
func (s Set) IsFull() bool {
	return len(s.ivs) == 1 &&
		math.IsInf(s.ivs[0].Lo, -1) && math.IsInf(s.ivs[0].Hi, 1)
}

// Contains reports whether x is in the set.
func (s Set) Contains(x float64) bool {
	// Binary search for the first interval with Hi >= x.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= x })
	return i < len(s.ivs) && s.ivs[i].Contains(x)
}

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	all := make([]Interval, 0, len(s.ivs)+len(o.ivs))
	all = append(all, s.ivs...)
	all = append(all, o.ivs...)
	return NewSet(all...)
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		iv := s.ivs[i].Intersect(o.ivs[j])
		if !iv.Empty() {
			out = append(out, iv)
		}
		// Advance whichever interval ends first.
		if endsBefore(s.ivs[i], o.ivs[j]) {
			i++
		} else {
			j++
		}
	}
	return Set{ivs: out}
}

func endsBefore(a, b Interval) bool {
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.HiOpen && !b.HiOpen
}

// Complement returns the complement of s over the real line.
func (s Set) Complement() Set {
	if len(s.ivs) == 0 {
		return Full
	}
	var out []Interval
	lo, loOpen := math.Inf(-1), true
	for _, iv := range s.ivs {
		gap := Interval{Lo: lo, LoOpen: loOpen, Hi: iv.Lo, HiOpen: !iv.LoOpen}
		if !gap.Empty() {
			out = append(out, gap)
		}
		lo, loOpen = iv.Hi, !iv.HiOpen
	}
	last := Interval{Lo: lo, LoOpen: loOpen, Hi: math.Inf(1), HiOpen: true}
	if !last.Empty() {
		out = append(out, last)
	}
	return Set{ivs: out}
}

// Minus returns s \ o.
func (s Set) Minus(o Set) Set { return s.Intersect(o.Complement()) }

// Equal reports whether two sets contain exactly the same points.
func (s Set) Equal(o Set) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

// String renders the set as a union of intervals, or "∅" when empty.
func (s Set) String() string {
	if len(s.ivs) == 0 {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}
