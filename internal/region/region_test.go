package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalEmpty(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Closed(1, 2), false},
		{Closed(2, 1), true},
		{Point(3), false},
		{Open(3, 3), true},
		{Interval{Lo: 3, Hi: 3, LoOpen: true}, true},
		{Interval{Lo: math.Inf(1), Hi: math.Inf(1)}, true},
		{Interval{Lo: math.NaN(), Hi: 1}, true},
	}
	for _, c := range cases {
		if got := c.iv.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 5, LoOpen: true}
	if iv.Contains(1) {
		t.Error("open lower endpoint should be excluded")
	}
	if !iv.Contains(5) {
		t.Error("closed upper endpoint should be included")
	}
	if !iv.Contains(3) || iv.Contains(0) || iv.Contains(6) {
		t.Error("interior/exterior membership wrong")
	}
}

func TestSetNormalization(t *testing.T) {
	s := NewSet(Closed(1, 3), Closed(2, 5), Closed(7, 8))
	if got := len(s.Intervals()); got != 2 {
		t.Fatalf("expected 2 intervals after merge, got %d: %v", got, s)
	}
	if !s.Contains(4) || s.Contains(6) || !s.Contains(7.5) {
		t.Error("membership after merge wrong")
	}
}

func TestSetAdjacencyMerging(t *testing.T) {
	// [1,2] and (2,3] touch at a closed point: must merge.
	s := NewSet(Closed(1, 2), Interval{Lo: 2, LoOpen: true, Hi: 3})
	if len(s.Intervals()) != 1 {
		t.Errorf("touching intervals should merge: %v", s)
	}
	// [1,2) and (2,3] leave the point 2 uncovered: must NOT merge.
	s = NewSet(Interval{Lo: 1, Hi: 2, HiOpen: true}, Interval{Lo: 2, LoOpen: true, Hi: 3})
	if len(s.Intervals()) != 2 {
		t.Errorf("gapped intervals should stay separate: %v", s)
	}
	if s.Contains(2) {
		t.Error("point 2 should be excluded")
	}
}

func TestSetComplementRoundTrip(t *testing.T) {
	s := NewSet(Closed(0, 1), Open(2, 3), Point(5))
	c := s.Complement()
	for _, x := range []float64{0, 0.5, 1, 2.5, 5} {
		if c.Contains(x) {
			t.Errorf("complement should exclude %v", x)
		}
	}
	for _, x := range []float64{-1, 1.5, 2, 3, 4, 6} {
		if !c.Contains(x) {
			t.Errorf("complement should include %v", x)
		}
	}
	if !s.Complement().Complement().Equal(s) {
		t.Error("double complement should be identity")
	}
	if !Empty.Complement().Equal(Full) || !Full.Complement().Equal(Empty) {
		t.Error("complement of empty/full wrong")
	}
}

func TestSetIntersect(t *testing.T) {
	a := NewSet(Closed(0, 10))
	b := NewSet(Closed(5, 15), Closed(20, 30))
	got := a.Intersect(b)
	want := NewSet(Closed(5, 10))
	if !got.Equal(want) {
		t.Errorf("intersect = %v, want %v", got, want)
	}
	if !a.Intersect(Empty).IsEmpty() {
		t.Error("intersect with empty should be empty")
	}
	if !a.Intersect(Full).Equal(a) {
		t.Error("intersect with full should be identity")
	}
}

func TestSetMinus(t *testing.T) {
	a := NewSet(Closed(0, 10))
	got := a.Minus(NewSet(Open(2, 4)))
	if !got.Contains(2) || !got.Contains(4) || got.Contains(3) {
		t.Errorf("minus open interval wrong: %v", got)
	}
}

func TestSetUnionCommutesAndIdempotent(t *testing.T) {
	f := func(raw []float64) bool {
		ivs := randomIntervals(raw)
		a := NewSet(ivs...)
		b := NewSet(reverse(ivs)...)
		return a.Equal(b) && a.Union(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetOpsAgreeWithPointwise(t *testing.T) {
	// Property: for random sets and probe points, the set operations agree
	// with boolean logic on membership.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randomSet(r)
		b := randomSet(r)
		union, inter, minus := a.Union(b), a.Intersect(b), a.Minus(b)
		for probe := 0; probe < 50; probe++ {
			x := math.Floor(r.Float64()*40-20) / 2 // includes many endpoint hits
			ina, inb := a.Contains(x), b.Contains(x)
			if union.Contains(x) != (ina || inb) {
				t.Fatalf("union mismatch at %v: a=%v b=%v", x, a, b)
			}
			if inter.Contains(x) != (ina && inb) {
				t.Fatalf("intersect mismatch at %v: a=%v b=%v", x, a, b)
			}
			if minus.Contains(x) != (ina && !inb) {
				t.Fatalf("minus mismatch at %v: a=%v b=%v", x, a, b)
			}
			if a.Complement().Contains(x) == ina {
				t.Fatalf("complement mismatch at %v: a=%v", x, a)
			}
		}
	}
}

func randomSet(r *rand.Rand) Set {
	n := r.Intn(4)
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := math.Floor(r.Float64()*40-20) / 2
		hi := lo + math.Floor(r.Float64()*10)/2
		ivs[i] = Interval{Lo: lo, Hi: hi, LoOpen: r.Intn(2) == 0, HiOpen: r.Intn(2) == 0}
	}
	return NewSet(ivs...)
}

func randomIntervals(raw []float64) []Interval {
	var ivs []Interval
	for i := 0; i+1 < len(raw); i += 2 {
		lo, hi := raw[i], raw[i+1]
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			continue
		}
		lo, hi = math.Mod(lo, 100), math.Mod(hi, 100)
		if lo > hi {
			lo, hi = hi, lo
		}
		ivs = append(ivs, Closed(lo, hi))
	}
	return ivs
}

func reverse(ivs []Interval) []Interval {
	out := make([]Interval, len(ivs))
	for i, iv := range ivs {
		out[len(ivs)-1-i] = iv
	}
	return out
}

func TestCompare(t *testing.T) {
	cases := []struct {
		op      Op
		c       float64
		in, out []float64
	}{
		{LT, 5, []float64{4, -100}, []float64{5, 6}},
		{LE, 5, []float64{4, 5}, []float64{5.0001}},
		{GT, 5, []float64{5.0001, 100}, []float64{5, 4}},
		{GE, 5, []float64{5, 100}, []float64{4.999}},
		{EQ, 5, []float64{5}, []float64{4.999, 5.001}},
		{NE, 5, []float64{4.999, 5.001}, []float64{5}},
	}
	for _, c := range cases {
		s := Compare(c.op, c.c)
		for _, x := range c.in {
			if !s.Contains(x) {
				t.Errorf("Compare(%v,%v) should contain %v", c.op, c.c, x)
			}
		}
		for _, x := range c.out {
			if s.Contains(x) {
				t.Errorf("Compare(%v,%v) should not contain %v", c.op, c.c, x)
			}
		}
	}
}

func TestOpNegateFlipEval(t *testing.T) {
	ops := []Op{LT, LE, GT, GE, EQ, NE}
	pairs := [][2]float64{{1, 2}, {2, 1}, {3, 3}}
	for _, op := range ops {
		for _, p := range pairs {
			if op.Eval(p[0], p[1]) == op.Negate().Eval(p[0], p[1]) {
				t.Errorf("%v and its negation agree on %v", op, p)
			}
			if op.Eval(p[0], p[1]) != op.Flip().Eval(p[1], p[0]) {
				t.Errorf("%v flip mismatch on %v", op, p)
			}
		}
	}
}

func TestBox(t *testing.T) {
	b := Box{Closed(0, 10), Closed(0, 5)}
	if !b.Contains([]float64{5, 2}) || b.Contains([]float64{5, 6}) {
		t.Error("box membership wrong")
	}
	if b.Empty() {
		t.Error("non-degenerate box reported empty")
	}
	inter := b.Intersect(Box{Closed(8, 20), Closed(-5, 1)})
	if !inter.Contains([]float64{9, 0.5}) || inter.Contains([]float64{7, 0.5}) {
		t.Error("box intersection wrong")
	}
	if !(Box{Closed(3, 1), Closed(0, 1)}).Empty() {
		t.Error("degenerate box should be empty")
	}
}

func TestSetString(t *testing.T) {
	if Empty.String() != "∅" {
		t.Errorf("empty set renders as %q", Empty.String())
	}
	s := NewSet(Closed(1, 2), Open(3, 4)).String()
	if s != "[1, 2] ∪ (3, 4)" {
		t.Errorf("unexpected rendering %q", s)
	}
}
