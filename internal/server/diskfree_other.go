//go:build !unix

package server

import "math"

// osDiskFree has no portable implementation off unix; report ample space
// so the watchdog never degrades the engine on platforms it can't probe.
func osDiskFree(dir string) (int64, error) {
	return math.MaxInt64, nil
}
