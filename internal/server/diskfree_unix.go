//go:build unix

package server

import "syscall"

// osDiskFree reports the bytes available to unprivileged writers on the
// filesystem holding dir — the default probe behind Config.DiskFree.
func osDiskFree(dir string) (int64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0, err
	}
	return int64(st.Bavail) * int64(st.Bsize), nil
}
